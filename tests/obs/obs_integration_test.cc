// End-to-end observability: run the paper's standard trial and check that
// the protocol layers actually populated the registry and journal — the
// per-node election gauges respect the §4 six-message bound, phase spans
// recorded, and the journal's JSONL parses back with attribution.
#include <gtest/gtest.h>

#include <memory>

#include "api/experiment.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"
#include "obs/span.h"

namespace snapq {
namespace {

SensitivityConfig SmallConfig() {
  SensitivityConfig config;
  config.num_nodes = 30;
  config.num_classes = 3;
  config.seed = 5;
  return config;
}

TEST(ObsIntegrationTest, ElectionPopulatesPerNodeGauges) {
  SensitivityOutcome outcome = RunSensitivityTrial(SmallConfig());
  obs::MetricRegistry& reg = outcome.network->sim().registry();
  EXPECT_EQ(reg.GetCounter("election.runs")->value(), 1u);

  const obs::MetricRegistry::Snapshot snap = reg.TakeSnapshot();
  size_t node_gauges = 0;
  for (const auto& [name, value] : snap) {
    if (name.rfind("election.messages_sent{", 0) != 0) continue;
    ++node_gauges;
    // §4: the election costs each node at most six messages.
    EXPECT_LE(value, 6.0) << name;
  }
  EXPECT_EQ(node_gauges, SmallConfig().num_nodes);

  // The election span recorded both wall and sim time.
  EXPECT_GE(snap.at("election.wall_us.count"), 1.0);
  EXPECT_GE(snap.at("election.sim_ticks.count"), 1.0);
  EXPECT_GT(snap.at("election.sim_ticks.sum"), 0.0);

  // The histogram saw every live node.
  obs::Histogram* per_node = reg.GetHistogram(
      "election.messages_per_node", {0, 1, 2, 3, 4, 5, 6, 8, 12, 16});
  EXPECT_EQ(per_node->count(), SmallConfig().num_nodes);
  EXPECT_LE(per_node->max_seen(), 6.0);
}

TEST(ObsIntegrationTest, MetricsFacadeSharesTheRegistry) {
  SensitivityOutcome outcome = RunSensitivityTrial(SmallConfig());
  Simulator& sim = outcome.network->sim();
  // The façade's counters and the registry's named instruments are the
  // same storage.
  EXPECT_EQ(sim.metrics().total_sent(),
            sim.registry().GetCounter("net.sent")->value());
  EXPECT_GT(sim.metrics().total_sent(), 0u);
  // The election-phase delta captured in the outcome is bounded by the
  // run's total traffic.
  EXPECT_GT(outcome.election_traffic.total_sent, 0u);
  EXPECT_LE(outcome.election_traffic.total_sent,
            sim.metrics().total_sent());
  EXPECT_GT(
      outcome.election_traffic.sent[static_cast<size_t>(
          MessageType::kInvitation)],
      0u);
}

TEST(ObsIntegrationTest, JournalCapturesElectionWithAttribution) {
  SensitivityConfig config = SmallConfig();
  auto network = BuildSensitivityNetwork(config);
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      network->sim().journal().SetSink(
          std::make_unique<obs::MemoryJournalSink>()));
  network->RunUntil(config.discovery_time);
  network->RunElection(config.discovery_time);

  size_t mode_events = 0;
  bool saw_done = false;
  for (const std::string& line : sink->lines()) {
    const std::optional<obs::JournalEvent> event =
        obs::JournalEvent::Parse(line);
    ASSERT_TRUE(event.has_value()) << line;
    if (event->name() == "election.mode") {
      ++mode_events;
      EXPECT_TRUE(event->GetInt("node").has_value());
      EXPECT_TRUE(event->GetInt("epoch").has_value());
      const std::optional<std::string> mode = event->GetStr("mode");
      ASSERT_TRUE(mode.has_value());
      EXPECT_TRUE(*mode == "active" || *mode == "passive");
    } else if (event->name() == "election.done") {
      saw_done = true;
      EXPECT_LE(event->GetNum("max_messages_per_node").value_or(99.0), 6.0);
    }
  }
  // Every node settles into a mode at least once.
  EXPECT_GE(mode_events, config.num_nodes);
  EXPECT_TRUE(saw_done);
  EXPECT_EQ(network->sim().journal().events_emitted(),
            sink->lines().size());
}

TEST(ObsIntegrationTest, TrialsMergeIntoGlobalRegistry) {
  const uint64_t before =
      obs::GlobalMetrics().GetCounter("election.runs")->value();
  RunSensitivityTrial(SmallConfig());
  RunSensitivityTrial(SmallConfig());
  obs::MetricRegistry& global = obs::GlobalMetrics();
  EXPECT_EQ(global.GetCounter("election.runs")->value(), before + 2);
  // Merged gauges are high-watermarks, so the bound survives aggregation.
  const obs::MetricRegistry::Snapshot snap = global.TakeSnapshot();
  for (const auto& [name, value] : snap) {
    if (name.rfind("election.messages_sent{", 0) == 0) {
      EXPECT_LE(value, 6.0) << name;
    }
  }
}

TEST(ObsIntegrationTest, QueryExecutionInstrumented) {
  SensitivityOutcome outcome = RunSensitivityTrial(SmallConfig());
  SensorNetwork& net = *outcome.network;
  obs::MetricRegistry& reg = net.sim().registry();
  const uint64_t before = reg.GetCounter("query.executions")->value();

  ExecutionOptions options;
  options.sink = 0;
  const Rect region{0.0, 0.0, 1.0, 1.0};
  net.executor().ExecuteRegion(region, /*use_snapshot=*/true,
                               AggregateFunction::kAvg, options);
  EXPECT_EQ(reg.GetCounter("query.executions")->value(), before + 1);
  EXPECT_GE(reg.GetCounter("query.snapshot_executions")->value(), 1u);
  obs::Histogram* participants = reg.GetHistogram(
      "query.participants", {0, 1, 2, 5, 10, 20, 50, 100, 200, 500});
  EXPECT_GE(participants->count(), 1u);
}

}  // namespace
}  // namespace snapq
