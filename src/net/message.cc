#include "net/message.h"

#include "common/string_util.h"

namespace snapq {

const char* RadioEventKindName(RadioEventKind kind) {
  switch (kind) {
    case RadioEventKind::kSend:
      return "send";
    case RadioEventKind::kDeliver:
      return "deliver";
    case RadioEventKind::kSnoop:
      return "snoop";
    case RadioEventKind::kLoss:
      return "loss";
  }
  return "?";
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kInvitation:
      return "Invitation";
    case MessageType::kCandList:
      return "CandList";
    case MessageType::kAccept:
      return "Accept";
    case MessageType::kRecall:
      return "Recall";
    case MessageType::kStayActive:
      return "StayActive";
    case MessageType::kRepAck:
      return "RepAck";
    case MessageType::kHeartbeat:
      return "Heartbeat";
    case MessageType::kHeartbeatReply:
      return "HeartbeatReply";
    case MessageType::kResign:
      return "Resign";
    case MessageType::kData:
      return "Data";
    case MessageType::kQueryRequest:
      return "QueryRequest";
    case MessageType::kQueryReply:
      return "QueryReply";
    case MessageType::kMessageTypeCount:
      break;  // sentinel, never sent
  }
  return "Unknown";
}

size_t Message::SizeBytes() const {
  constexpr size_t kHeader = 7;  // type + from + to + epoch, packed
  size_t payload = 0;
  switch (type) {
    case MessageType::kInvitation:
    case MessageType::kHeartbeat:
    case MessageType::kData:
      payload = 4;  // one float
      break;
    case MessageType::kHeartbeatReply:
      payload = 1 + 6 * ids.size();  // 2-byte id + 4-byte estimate each
      break;
    case MessageType::kCandList:
      payload = 1 + 2 * ids.size();  // count byte + 2-byte ids
      break;
    case MessageType::kRepAck:
      payload = 1 + 4 * ids.size();  // 2-byte id + 2-byte epoch each
      break;
    case MessageType::kResign:
      payload = 1 + 2 * ids.size();
      break;
    case MessageType::kAccept:
    case MessageType::kRecall:
    case MessageType::kStayActive:
      payload = 0;
      break;
    case MessageType::kQueryRequest:
      payload = 16;  // query descriptor: rect + flags
      break;
    case MessageType::kQueryReply:
      payload = 4 + 2 * ids.size();  // aggregate value + contributor ids
      break;
    case MessageType::kMessageTypeCount:
      break;  // sentinel, never sent
  }
  return kHeader + payload;
}

std::string Message::ToString() const {
  return StrFormat("%s from=%u to=%u epoch=%lld value=%.3f n_ids=%zu",
                   MessageTypeName(type), from, to,
                   static_cast<long long>(epoch), value, ids.size());
}

}  // namespace snapq
