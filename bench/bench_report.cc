#include "bench_report.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <numeric>

#include "obs/json.h"

namespace snapq::bench {

namespace {

using obs::JsonEscape;
using obs::JsonNumber;

void AppendSummary(std::string* out, const char* key, const StatSummary& s) {
  *out += '"';
  *out += key;
  *out += "\":{\"median\":" + JsonNumber(s.median);
  *out += ",\"mean\":" + JsonNumber(s.mean);
  *out += ",\"min\":" + JsonNumber(s.min);
  *out += ",\"max\":" + JsonNumber(s.max);
  *out += ",\"reps\":" + std::to_string(s.reps) + "}";
}

}  // namespace

StatSummary StatSummary::FromSamples(std::vector<double> samples) {
  StatSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  s.reps = static_cast<int>(n);
  s.min = samples.front();
  s.max = samples.back();
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(n);
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  return s;
}

std::string BenchReport::ToJson() const {
  std::string out = "{";
  out += "\"schema_version\":" + std::to_string(kBenchSchemaVersion);
  out += ",\"git_sha\":\"" + JsonEscape(git_sha) + "\"";
  out += ",\"timestamp\":\"" + JsonEscape(timestamp) + "\"";
  out += std::string(",\"quick\":") + (quick ? "true" : "false");
  out += ",\"harness_repetitions\":" + std::to_string(harness_repetitions);
  out += ",\"driver_repetitions\":" + std::to_string(driver_repetitions);
  out += ",\"benchmarks\":[";
  bool first_bench = true;
  for (const BenchmarkResult& b : benchmarks) {
    if (!first_bench) out += ',';
    first_bench = false;
    out += "{\"name\":\"" + JsonEscape(b.name) + "\",";
    AppendSummary(&out, "wall_ms", b.wall_ms);
    out += ',';
    AppendSummary(&out, "cpu_ms", b.cpu_ms);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [key, value] : b.counters) {
      if (!first) out += ',';
      first = false;
      out += "\"" + JsonEscape(key) + "\":" + std::to_string(value);
    }
    out += "},\"throughput\":{";
    first = true;
    for (const auto& [key, value] : b.throughput) {
      if (!first) out += ',';
      first = false;
      out += "\"" + JsonEscape(key) + "\":" + JsonNumber(value);
    }
    out += "},\"latency_us\":{";
    first = true;
    for (const PhaseLatency& p : b.latency_us) {
      if (!first) out += ',';
      first = false;
      out += "\"" + JsonEscape(p.phase) + "\":{";
      out += "\"count\":" + std::to_string(p.count);
      out += ",\"p50\":" + JsonNumber(p.p50);
      out += ",\"p95\":" + JsonNumber(p.p95);
      out += ",\"p99\":" + JsonNumber(p.p99);
      out += ",\"max\":" + JsonNumber(p.max);
      out += "}";
    }
    out += "},\"peak_rss_kb\":" + std::to_string(b.peak_rss_kb) + "}";
  }
  out += "]}";
  return out;
}

std::string GitSha() {
  for (const char* var : {"SNAPQ_GIT_SHA", "GITHUB_SHA"}) {
    if (const char* env = std::getenv(var); env != nullptr && *env != '\0') {
      return env;
    }
  }
  if (FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128] = {};
    const size_t n = fread(buf, 1, sizeof(buf) - 1, pipe);
    const int status = pclose(pipe);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (status == 0 && sha.size() == 40) return sha;
  }
  return "unknown";
}

std::string IsoTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32] = {};
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

int64_t PeakRssKb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss);  // kilobytes on Linux
}

}  // namespace snapq::bench
