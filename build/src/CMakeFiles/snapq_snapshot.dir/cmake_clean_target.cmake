file(REMOVE_RECURSE
  "libsnapq_snapshot.a"
)
