# Empty compiler generated dependencies file for snapq_api.
# This may be replaced when dependencies are built.
