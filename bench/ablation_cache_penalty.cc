// Ablation for DESIGN.md §6 item 2: the cache manager's cross-line
// eviction penalty computed from *total* benefits (our implementation)
// versus §4's literal per-pair-average formula. Averaged across different
// line lengths, the penalty goes negative whenever the surviving pairs
// merely have larger magnitude, so augment requests strip healthy lines
// down to one pair — and one-pair (constant) models cannot track drifting
// data, inflating the snapshot.
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"

namespace {

using namespace snapq;

double MeanReps(size_t num_classes, PenaltyCurrency currency,
                size_t repetitions, int jobs) {
  return MeanOverSeeds(repetitions, bench::kBaseSeed,
                       [&](uint64_t seed) {
                         SensitivityConfig config;
                         config.num_classes = num_classes;
                         config.cache_penalty = currency;
                         config.seed = seed;
                         return static_cast<double>(
                             RunSensitivityTrial(config).stats.num_active);
                       },
                       jobs)
      .mean();
}

}  // namespace

SNAPQ_BENCHMARK(ablation_cache_penalty,
                "Ablation: eviction-penalty currency (total vs averaged)") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Ablation: eviction-penalty currency (DESIGN.md §6, item 2)",
      "Fig 6 setup; representatives elected with total-benefit vs literal "
      "per-pair-average penalties");

  const size_t reps = static_cast<size_t>(ctx.repetitions);
  TablePrinter table({"K", "total-benefit penalty (ours)",
                      "averaged penalty (literal §4)"});
  for (size_t k : {1u, 5u, 10u, 50u}) {
    table.AddRow(
        {std::to_string(k),
         TablePrinter::Num(
             MeanReps(k, PenaltyCurrency::kTotalBenefit, reps, ctx.jobs), 1),
         TablePrinter::Num(
             MeanReps(k, PenaltyCurrency::kAverageBenefit, reps, ctx.jobs),
             1)});
  }
  table.Print(std::cout);
  std::printf("\n(the paper reports 1 representative at K=1; the averaged "
              "formula cannot sustain it)\n");
}
