#include "obs/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace snapq::obs {
namespace {

TEST(ObsJournalTest, EventJsonRoundTrip) {
  JournalEvent event("election.mode", 101);
  event.Node(17).Epoch(3).Str("mode", "active").Num("score", 2.5).Bool(
      "snooped", true);
  const std::string line = event.ToJsonLine();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const std::optional<JournalEvent> parsed = JournalEvent::Parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name(), "election.mode");
  EXPECT_EQ(parsed->time(), 101);
  EXPECT_EQ(parsed->GetInt("node"), 17);
  EXPECT_EQ(parsed->GetInt("epoch"), 3);
  EXPECT_EQ(parsed->GetStr("mode"), "active");
  EXPECT_EQ(parsed->GetNum("score"), 2.5);
  EXPECT_EQ(parsed->GetBool("snooped"), true);
  EXPECT_FALSE(parsed->GetInt("absent").has_value());
  // Num() reads integer fields too (attribution scripts don't care).
  EXPECT_EQ(parsed->GetNum("node"), 17.0);
}

TEST(ObsJournalTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(JournalEvent::Parse("").has_value());
  EXPECT_FALSE(JournalEvent::Parse("not json").has_value());
  EXPECT_FALSE(JournalEvent::Parse("{\"t\":1}").has_value());  // no event
  EXPECT_FALSE(
      JournalEvent::Parse("{\"event\":\"x\"}").has_value());  // no t
  EXPECT_FALSE(JournalEvent::Parse("{\"event\":\"x\",\"t\":1")
                   .has_value());  // truncated
}

TEST(ObsJournalTest, EscapedStringsSurviveRoundTrip) {
  JournalEvent event("q", 0);
  event.Str("sql", "SELECT \"x\"\n\tFROM y\\z");
  const std::optional<JournalEvent> parsed =
      JournalEvent::Parse(event.ToJsonLine());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->GetStr("sql"), "SELECT \"x\"\n\tFROM y\\z");
}

TEST(ObsJournalTest, DisabledJournalSkipsFillCallback) {
  EventJournal journal;
  EXPECT_FALSE(journal.enabled());
  bool fill_ran = false;
  journal.Emit("x", 1, [&](JournalEvent&) { fill_ran = true; });
  EXPECT_FALSE(fill_ran);
  EXPECT_EQ(journal.events_emitted(), 0u);
}

TEST(ObsJournalTest, MemorySinkRecordsAndCaps) {
  EventJournal journal;
  auto* sink = static_cast<MemoryJournalSink*>(
      journal.SetSink(std::make_unique<MemoryJournalSink>(3)));
  EXPECT_TRUE(journal.enabled());
  for (int i = 0; i < 5; ++i) {
    journal.Emit("tick", i, [&](JournalEvent& e) { e.Int("i", i); });
  }
  EXPECT_EQ(journal.events_emitted(), 5u);
  ASSERT_EQ(sink->lines().size(), 3u);  // capped, oldest dropped
  const std::optional<JournalEvent> first =
      JournalEvent::Parse(sink->lines().front());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->GetInt("i"), 2);
}

TEST(ObsJournalTest, FileSinkWritesJsonlThatParsesBack) {
  const std::string path =
      testing::TempDir() + "/obs_journal_test.jsonl";
  {
    EventJournal journal;
    journal.SetSink(std::make_unique<FileJournalSink>(path));
    journal.Emit("a", 1, [](JournalEvent& e) { e.Node(4); });
    journal.Emit("b", 2);
    journal.Flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t parsed = 0;
  while (std::getline(in, line)) {
    ASSERT_TRUE(JournalEvent::Parse(line).has_value()) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace snapq::obs
