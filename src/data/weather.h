// Synthetic wind-speed workload standing in for the University of Washington
// weather-station data used in §6.3 (1-minute wind speed for 2002; the
// original URL is dead and the data is not redistributable).
//
// Substitution (documented in DESIGN.md §5): we simulate one long station
// series with a mean-reverting AR(1) core, a diurnal (1440-minute) cycle and
// occasional exponentially-decaying gust bursts, then carve it into
// non-overlapping per-node windows exactly as the paper does. Parameters are
// calibrated so the per-window sample statistics match the paper's reported
// summary (mean ~= 5.8, average per-window variance ~= 2.8). The snapshot
// algorithms only consume the cross-window linear-correlation structure and
// the marginal scale, both of which this preserves.
#ifndef SNAPQ_DATA_WEATHER_H_
#define SNAPQ_DATA_WEATHER_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "data/timeseries.h"

namespace snapq {

/// Parameters of the synthetic station process. Defaults are calibrated to
/// the paper's reported sample statistics.
struct WeatherConfig {
  double mean = 5.8;                ///< long-run wind speed mean
  double reversion = 0.004;         ///< AR(1) pull toward the (diurnal) mean
  double noise_sigma = 0.14;        ///< innovation std-dev per minute
  double diurnal_amplitude = 0.8;   ///< day/night swing of the local mean
  size_t diurnal_period = 1440;     ///< minutes per day
  double gust_probability = 0.004;  ///< chance a gust starts (while windy)
  double gust_magnitude = 3.0;      ///< initial gust boost (scaled randomly)
  double gust_decay = 0.92;         ///< per-minute multiplicative decay
  /// Volatility regimes: real wind has long calm stretches interleaved
  /// with shorter windy episodes; calm windows are nearly constant and
  /// hence highly representable, which drives the snapshot sizes of
  /// Fig 11. The asymmetric switch probabilities put the station in the
  /// calm regime ~80% of the time.
  double calm_to_windy_probability = 1.0 / 960.0;   ///< per minute
  double windy_to_calm_probability = 1.0 / 240.0;   ///< per minute
  double calm_sigma_factor = 0.15;  ///< innovation scale while calm
  double windy_sigma_factor = 3.0;  ///< innovation scale while windy
};

/// Generates one station series of `length` minutes.
TimeSeries GenerateStationSeries(const WeatherConfig& config, size_t length,
                                 Rng& rng);

/// Carves `num_nodes` non-overlapping windows of `window` values out of a
/// station series (generated with `config`), assigning windows to nodes in a
/// random order, as in §6.3. The station series generated has exactly
/// num_nodes * window values.
std::vector<TimeSeries> GenerateWeatherWindows(const WeatherConfig& config,
                                               size_t num_nodes,
                                               size_t window, Rng& rng);

}  // namespace snapq

#endif  // SNAPQ_DATA_WEATHER_H_
