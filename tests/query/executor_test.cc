// Query executor tests: the §6.2 participation accounting, snapshot
// response rule, coverage metric, epoch-based duplicate filtering and
// energy charging.
#include "query/executor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "snapshot/election.h"

namespace snapq {
namespace {

SnapshotConfig TestConfig() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  config.heartbeat_timeout = 2;
  config.heartbeat_miss_limit = 1;  // deterministic single-round failover in tests
  return config;
}

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  std::unique_ptr<QueryExecutor> executor;

  Net(std::vector<Point> positions, double range, SimConfig sim_config = {}) {
    const size_t n = positions.size();
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, range),
                                      sim_config);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(
          std::make_unique<SnapshotAgent>(i, sim.get(), TestConfig(),
                                          900 + i));
      agents.back()->Install();
    }
    executor = std::make_unique<QueryExecutor>(
        sim.get(), &agents,
        Catalog::WithStandardRegions(Rect::UnitSquare()));
  }

  void Teach(NodeId rep, NodeId target) {
    const double vi = agents[rep]->measurement();
    const double vj = agents[target]->measurement();
    agents[rep]->models().cache().Observe(target, vi - 1, vj - 1, 0);
    agents[rep]->models().cache().Observe(target, vi + 1, vj + 1, 0);
  }

  void TeachAllPairs() {
    for (NodeId i = 0; i < agents.size(); ++i) {
      for (NodeId j = 0; j < agents.size(); ++j) {
        if (i != j) Teach(i, j);
      }
    }
  }

  void Elect() { RunGlobalElection(*sim, agents, sim->now(), TestConfig()); }
};

/// Four nodes in the unit square, all in range; values 10 + i.
Net MeshNet(SimConfig sim_config = {}) {
  Net net({{0.1, 0.1}, {0.3, 0.1}, {0.5, 0.1}, {0.7, 0.1}}, 10.0,
          sim_config);
  for (NodeId i = 0; i < 4; ++i) {
    net.agents[i]->SetMeasurement(10.0 + i);
  }
  return net;
}

const Rect kAll{0.0, 0.0, 1.0, 1.0};

TEST(ExecutorTest, RegularQueryCountsAllMatchingNodes) {
  Net net = MeshNet();
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/false, AggregateFunction::kSum, {});
  EXPECT_EQ(r.matching_nodes, 4u);
  EXPECT_EQ(r.responders, 4u);
  EXPECT_EQ(r.participants, 4u);  // full mesh: everyone is 1 hop from sink
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 10.0 + 11.0 + 12.0 + 13.0);
  EXPECT_DOUBLE_EQ(*r.true_aggregate, *r.aggregate);
}

TEST(ExecutorTest, SnapshotQueryUsesRepresentativesOnly) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  // All-pairs perfect models: node 3 represents everyone.
  ASSERT_EQ(net.agents[3]->mode(), NodeMode::kActive);
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/true, AggregateFunction::kSum, {});
  EXPECT_EQ(r.responders, 1u);
  // Node 3 responds; path 3 -> sink 0.
  EXPECT_EQ(r.participants, 2u);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_NEAR(*r.aggregate, 46.0, 1e-6);  // exact linear models
}

TEST(ExecutorTest, SnapshotRespondsForOutOfRegionRepOfInRegionNode) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  // Region contains only node 1 (passive, represented by node 3 outside).
  const Rect region{0.25, 0.0, 0.35, 1.0};
  const QueryResult r = net.executor->ExecuteRegion(
      region, /*use_snapshot=*/true, AggregateFunction::kAvg, {});
  EXPECT_EQ(r.matching_nodes, 1u);
  EXPECT_EQ(r.responders, 1u);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_NEAR(*r.aggregate, 11.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(ExecutorTest, PassiveNodesDoNotRespondToSnapshotQueries) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/true, AggregateFunction::kNone, {});
  for (const QueryRow& row : r.rows) {
    if (row.loc != 3) {
      EXPECT_EQ(row.reporter, 3u);
      EXPECT_TRUE(row.estimated);
    } else {
      EXPECT_FALSE(row.estimated);
    }
  }
  ASSERT_EQ(r.rows.size(), 4u);
}

TEST(ExecutorTest, DeadNodeReducesRegularCoverageButNotSnapshot) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  net.sim->Kill(1);  // a passive node dies
  const QueryResult regular = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/false, AggregateFunction::kSum, {});
  EXPECT_EQ(regular.covered_nodes, 3u);
  EXPECT_DOUBLE_EQ(regular.coverage, 0.75);
  // Snapshot: node 3's model still answers for the dead node (the paper's
  // redundancy argument: the rep takes over for an unreachable node).
  const QueryResult snap = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/true, AggregateFunction::kSum, {});
  EXPECT_EQ(snap.covered_nodes, 4u);
  EXPECT_DOUBLE_EQ(snap.coverage, 1.0);
}

TEST(ExecutorTest, UnreachableRespondersDoNotParticipate) {
  // Chain 0-1-2; region covers node 2; kill router 1.
  Net net({{0.1, 0.5}, {0.45, 0.5}, {0.8, 0.5}}, 0.4);
  for (NodeId i = 0; i < 3; ++i) net.agents[i]->SetMeasurement(5.0);
  net.sim->Kill(1);
  const QueryResult r = net.executor->ExecuteRegion(
      Rect{0.7, 0.0, 1.0, 1.0}, /*use_snapshot=*/false,
      AggregateFunction::kSum, {});
  EXPECT_EQ(r.matching_nodes, 1u);
  EXPECT_EQ(r.responders, 0u);
  EXPECT_EQ(r.participants, 0u);
  EXPECT_DOUBLE_EQ(r.coverage, 0.0);
}

TEST(ExecutorTest, RoutersAreCountedAsParticipants) {
  // Chain 0-1-2, sink 0, region covers only node 2: node 1 routes.
  Net net({{0.1, 0.5}, {0.45, 0.5}, {0.8, 0.5}}, 0.4);
  for (NodeId i = 0; i < 3; ++i) net.agents[i]->SetMeasurement(5.0);
  const QueryResult r = net.executor->ExecuteRegion(
      Rect{0.7, 0.0, 1.0, 1.0}, /*use_snapshot=*/false,
      AggregateFunction::kSum, {});
  EXPECT_EQ(r.responders, 1u);
  EXPECT_EQ(r.participants, 3u);  // responder + router + sink
}

TEST(ExecutorTest, ChargeEnergyDrainsParticipants) {
  SimConfig sim_config;
  sim_config.energy.initial_battery = 10.0;
  Net net({{0.1, 0.5}, {0.45, 0.5}, {0.8, 0.5}}, 0.4, sim_config);
  for (NodeId i = 0; i < 3; ++i) net.agents[i]->SetMeasurement(5.0);
  ExecutionOptions options;
  options.charge_energy = true;
  net.executor->ExecuteRegion(Rect{0.7, 0.0, 1.0, 1.0},
                              /*use_snapshot=*/false,
                              AggregateFunction::kSum, options);
  EXPECT_DOUBLE_EQ(net.sim->battery(2).remaining(), 9.0);  // responder
  EXPECT_DOUBLE_EQ(net.sim->battery(1).remaining(), 9.0);  // router
  EXPECT_DOUBLE_EQ(net.sim->battery(0).remaining(), 10.0);  // sink: no radio
}

TEST(ExecutorTest, SpuriousClaimFilteredByLatestEpoch) {
  Net net = MeshNet();
  // First election: only node 1 can represent node 3.
  net.Teach(1, 3);
  net.Elect();
  ASSERT_EQ(net.agents[3]->representative(), 1u);
  ASSERT_EQ(net.agents[1]->represents().count(3), 1u);
  // Sever 3 -> 1 so the recall (and heartbeat) from 3 never reaches 1, and
  // 2 -> 1 so node 2's RepAck broadcast cannot trigger the epoch-based
  // self-correction either; then let node 3 re-elect toward node 2.
  net.sim->mutable_links().SetLinkLoss(3, 1, 1.0);
  net.sim->mutable_links().SetLinkLoss(2, 1, 1.0);
  net.agents[2]->SetMeasurement(net.agents[2]->measurement());
  net.Teach(2, 3);
  net.agents[3]->MaintenanceTick();  // heartbeat lost -> re-election
  net.sim->RunAll();
  ASSERT_EQ(net.agents[3]->representative(), 2u);
  // Node 1 still believes it represents node 3: spurious.
  ASSERT_EQ(net.agents[1]->represents().count(3), 1u);
  EXPECT_EQ(CaptureSnapshot(net.agents).CountSpurious(), 1u);

  // A snapshot query over node 3's location gets exactly one value for
  // node 3, reported by the *newer* representative.
  const Rect region{0.65, 0.0, 0.75, 1.0};  // node 3 at x=0.7
  const QueryResult r = net.executor->ExecuteRegion(
      region, /*use_snapshot=*/true, AggregateFunction::kNone, {});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].loc, 3u);
  EXPECT_EQ(r.rows[0].reporter, 2u);
}

TEST(ExecutorTest, ExecuteSqlEndToEnd) {
  Net net = MeshNet();
  const Result<QueryResult> r = net.executor->ExecuteSql(
      "SELECT sum(value) FROM sensors WHERE loc IN SOUTH_HALF", {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // All four nodes are at y=0.1 (south half).
  EXPECT_EQ(r->responders, 4u);
  ASSERT_TRUE(r->aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r->aggregate, 46.0);
}

TEST(ExecutorTest, ExecuteSqlRejectsUnknownColumn) {
  Net net = MeshNet();
  const Result<QueryResult> r = net.executor->ExecuteSql(
      "SELECT humidity FROM sensors", {});
  EXPECT_FALSE(r.ok());
}

TEST(ExecutorTest, ExecuteSqlRejectsUnknownRegion) {
  Net net = MeshNet();
  const Result<QueryResult> r = net.executor->ExecuteSql(
      "SELECT value FROM sensors WHERE loc IN MOON", {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, DrillThroughRowsSortedByLoc) {
  Net net = MeshNet();
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/false, AggregateFunction::kNone, {});
  ASSERT_EQ(r.rows.size(), 4u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LT(r.rows[i - 1].loc, r.rows[i].loc);
  }
  EXPECT_DOUBLE_EQ(r.rows[2].value, 12.0);
}

TEST(ExecutorTest, EmptyRegionHasFullCoverage) {
  Net net = MeshNet();
  const QueryResult r = net.executor->ExecuteRegion(
      Rect{0.9, 0.9, 0.95, 0.95}, /*use_snapshot=*/false,
      AggregateFunction::kNone, {});
  EXPECT_EQ(r.matching_nodes, 0u);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_TRUE(r.rows.empty());
}

TEST(ExecutorTest, SleepingPassiveNodesDoNotRouteFullMesh) {
  // Full mesh: node 3 represents everyone; with passive_nodes_sleep the
  // passive nodes (1, 2) drop out of routing entirely and the query is
  // served by the representative plus the sink alone. The sink (node 0)
  // never sleeps -- it is the query gateway -- even when passive.
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  ASSERT_EQ(net.agents[3]->mode(), NodeMode::kActive);
  ExecutionOptions options;
  options.passive_nodes_sleep = true;
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/true, AggregateFunction::kSum, options);
  EXPECT_EQ(r.responders, 1u);
  EXPECT_EQ(r.participants, 2u);  // rep 3 + sink 0
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_NEAR(*r.aggregate, 46.0, 1e-6);
}

TEST(ExecutorTest, SleepingPassivesCanDisconnectResponders) {
  // Chain 0-1-2: the sink's neighbor (node 1) is passive under node 0 and
  // node 2 is a lone active responder two hops out. Asleep, node 1 cannot
  // route and node 2's data is unreachable -- the documented trade-off of
  // the §5 severe-energy mode. Awake, the same query succeeds.
  Net net({{0.05, 0.5}, {0.3, 0.5}, {0.55, 0.5}}, 0.3);
  for (NodeId i = 0; i < 3; ++i) net.agents[i]->SetMeasurement(10.0 + i);
  net.Teach(0, 1);
  net.Elect();
  ASSERT_EQ(net.agents[1]->mode(), NodeMode::kPassive);
  ASSERT_EQ(net.agents[2]->mode(), NodeMode::kActive);

  ExecutionOptions options;
  options.passive_nodes_sleep = true;
  const Rect region{0.5, 0.0, 0.6, 1.0};  // only node 2 matches
  const QueryResult r = net.executor->ExecuteRegion(
      region, /*use_snapshot=*/true, AggregateFunction::kSum, options);
  EXPECT_EQ(r.responders, 0u);
  EXPECT_DOUBLE_EQ(r.coverage, 0.0);
  const QueryResult awake = net.executor->ExecuteRegion(
      region, /*use_snapshot=*/true, AggregateFunction::kSum,
      ExecutionOptions{});
  EXPECT_EQ(awake.responders, 1u);
  EXPECT_DOUBLE_EQ(awake.coverage, 1.0);
}

TEST(ExecutorTest, EstimatedRowsCarryModelError) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/true, AggregateFunction::kNone, {});
  ASSERT_EQ(r.rows.size(), 4u);
  for (const QueryRow& row : r.rows) {
    if (row.estimated) {
      ASSERT_TRUE(row.model_error.has_value()) << "node " << row.loc;
      // Exact linear models: estimate == truth.
      EXPECT_NEAR(*row.model_error, 0.0, 1e-9);
    } else {
      EXPECT_FALSE(row.model_error.has_value()) << "node " << row.loc;
    }
  }
}

TEST(ExecutorTest, ModelErrorIsSignedEstimateMinusTruth) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  // Drift node 1's true reading after the models were learned: its rep
  // still answers with the stale estimate, and model_error reports the
  // signed gap.
  net.agents[1]->SetMeasurement(11.0 + 2.5);
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/true, AggregateFunction::kNone, {});
  for (const QueryRow& row : r.rows) {
    if (row.loc != 1) continue;
    ASSERT_TRUE(row.model_error.has_value());
    EXPECT_NEAR(*row.model_error, -2.5, 1e-6);  // estimate lags the truth
  }
}

TEST(ExecutorTest, ChargeEnergyAttributesPerNodeTxCounters) {
  SimConfig sim_config;
  sim_config.energy.initial_battery = 10.0;
  Net net({{0.1, 0.5}, {0.45, 0.5}, {0.8, 0.5}}, 0.4, sim_config);
  for (NodeId i = 0; i < 3; ++i) net.agents[i]->SetMeasurement(5.0);
  ExecutionOptions options;
  options.charge_energy = true;
  net.executor->ExecuteRegion(Rect{0.7, 0.0, 1.0, 1.0},
                              /*use_snapshot=*/false,
                              AggregateFunction::kSum, options);
  obs::MetricRegistry& reg = net.sim->registry();
  EXPECT_EQ(reg.GetCounter("query.energy.tx", 2)->value(), 1u);  // responder
  EXPECT_EQ(reg.GetCounter("query.energy.tx", 1)->value(), 1u);  // router
  EXPECT_EQ(reg.GetCounter("query.energy.tx", 0)->value(), 0u);  // sink
  EXPECT_DOUBLE_EQ(reg.GetGauge("query.energy.drained")->value(), 2.0);
}

TEST(ExecutorTest, ExecuteRejectsExplainSpecs) {
  // EXPLAIN statements have a dedicated entry point; Execute() refuses
  // them instead of silently running the query.
  Net net = MeshNet();
  const Result<QueryResult> r = net.executor->ExecuteSql(
      "EXPLAIN SELECT value FROM sensors", {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecutorTest, ProvenanceHookCapturesClaimsAndCost) {
  Net net = MeshNet();
  net.TeachAllPairs();
  net.Elect();
  ASSERT_EQ(net.agents[3]->mode(), NodeMode::kActive);
  QueryProvenance prov;
  ExecutionOptions options;
  options.provenance = &prov;
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/true, AggregateFunction::kSum, options);
  EXPECT_EQ(prov.matching_nodes, r.matching_nodes);
  EXPECT_EQ(prov.responders, r.responders);
  EXPECT_EQ(prov.participants, r.participants);
  EXPECT_EQ(prov.reachable_nodes, 4u);
  EXPECT_EQ(prov.messages, 1u);  // rep 3 -> sink; the sink itself is free
  EXPECT_EQ(prov.tree_depth, 1);
  ASSERT_EQ(prov.claims.size(), 4u);
  EXPECT_EQ(prov.claims.at(1).reporter, 3u);
  EXPECT_TRUE(prov.claims.at(1).estimated);
  EXPECT_EQ(prov.claims.at(3).reporter, 3u);
  EXPECT_FALSE(prov.claims.at(3).estimated);
  EXPECT_EQ(prov.claims.at(3).epoch, kQueryClaimSelfEpoch);
  ASSERT_EQ(prov.depth.size(), 4u);
  EXPECT_EQ(prov.depth[0], 0);
}

TEST(ExecutorTest, CountAggregate) {
  Net net = MeshNet();
  const QueryResult r = net.executor->ExecuteRegion(
      kAll, /*use_snapshot=*/false, AggregateFunction::kCount, {});
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 4.0);
}

}  // namespace
}  // namespace snapq
