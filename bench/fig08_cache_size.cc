// Figure 8: number of representatives vs per-node cache size, K = 10,
// comparing the model-aware cache manager of §4 against the round-robin
// (FIFO/LRU-equivalent) baseline.
//
// Paper shape: below ~500 bytes the two coincide (one pair per line);
// around 1.1 KB the model-aware manager needs less than half the
// representatives; past ~2.5 KB they converge again (2-3 pairs per line
// suffice for this data).
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"

SNAPQ_BENCHMARK(fig08_cache_size,
                "Figure 8: representatives vs cache size (K=10)") {
  using namespace snapq;
  bench::Driver driver(ctx, "Figure 8: representatives vs cache size (K=10)",
                       "N=100, range=sqrt(2), P_loss=0, T=1, sse, K=10; "
                       "model-aware vs round-robin replacement");

  auto mean_reps = [&](size_t cache_bytes, CachePolicy policy) {
    return MeanOverSeeds(static_cast<size_t>(ctx.repetitions),
                         bench::kBaseSeed,
                         [&](uint64_t seed) {
                           SensitivityConfig config;
                           config.num_classes = 10;
                           config.cache_bytes = cache_bytes;
                           config.cache_policy = policy;
                           config.seed = seed;
                           return static_cast<double>(
                               RunSensitivityTrial(config).stats.num_active);
                         },
                         ctx.jobs)
        .mean();
  };

  TablePrinter table({"cache (bytes)", "model-aware", "round-robin"});
  for (size_t bytes : {200u, 400u, 600u, 800u, 1100u, 1400u, 1700u, 2048u,
                       2500u, 3000u, 4096u}) {
    table.AddRow({std::to_string(bytes),
                  TablePrinter::Num(mean_reps(bytes, CachePolicy::kModelAware), 1),
                  TablePrinter::Num(mean_reps(bytes, CachePolicy::kRoundRobin), 1)});
  }
  table.Print(std::cout);
}
