# Empty dependencies file for cache_line_test.
# This may be replaced when dependencies are built.
