#include "net/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace snapq {
namespace {

std::vector<NodeId> Candidates(const SpatialIndex& index, const Point& center,
                               double radius) {
  std::vector<NodeId> out;
  index.ForEachCandidate(center, radius,
                         [&](NodeId id) { out.push_back(id); });
  return out;
}

TEST(SpatialIndexTest, EmptyIndex) {
  const SpatialIndex index;
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_TRUE(Candidates(index, {0.5, 0.5}, 1.0).empty());
  EXPECT_TRUE(index.CellOf({0.5, 0.5}).empty());
}

TEST(SpatialIndexTest, CandidatesCoverEveryNodeInRadius) {
  Rng rng(7);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  const double edge = 0.2;
  const SpatialIndex index(pts, edge);
  for (int probe = 0; probe < 50; ++probe) {
    const Point c{rng.NextDouble(), rng.NextDouble()};
    const double radius = rng.UniformDouble(0.0, edge);
    const std::vector<NodeId> cand = Candidates(index, c, radius);
    for (NodeId i = 0; i < pts.size(); ++i) {
      if (DistanceSquared(pts[i], c) <= radius * radius) {
        EXPECT_NE(std::find(cand.begin(), cand.end(), i), cand.end())
            << "node " << i << " within radius but not a candidate";
      }
    }
  }
}

TEST(SpatialIndexTest, CandidateStreamIsPlacementDeterministic) {
  // The candidate order must be a pure function of the positions: an index
  // that arrived at the same placement through churn yields the same
  // stream as one built fresh.
  Rng rng(11);
  std::vector<Point> start, end;
  for (int i = 0; i < 60; ++i) {
    start.push_back({rng.UniformDouble(-1, 1), rng.UniformDouble(-1, 1)});
    end.push_back({rng.UniformDouble(-1, 1), rng.UniformDouble(-1, 1)});
  }
  SpatialIndex churned(start, 0.25);
  for (NodeId i = 0; i < start.size(); ++i) {
    churned.Move(i, start[i], end[i]);
  }
  const SpatialIndex fresh(end, 0.25);
  for (int probe = 0; probe < 30; ++probe) {
    const Point c{rng.UniformDouble(-1, 1), rng.UniformDouble(-1, 1)};
    const double radius = rng.UniformDouble(0.0, 0.25);
    EXPECT_EQ(Candidates(churned, c, radius), Candidates(fresh, c, radius));
  }
}

TEST(SpatialIndexTest, BucketsKeepAscendingIdOrder) {
  // All nodes share one cell; the bucket (and thus the candidate stream)
  // must come out id-sorted regardless of churn.
  std::vector<Point> pts(10, Point{0.5, 0.5});
  SpatialIndex index(pts, 1.0);
  const std::vector<NodeId> ids = Candidates(index, {0.5, 0.5}, 0.0);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(ids.size(), 10u);
  // Bounce node 3 out and back in; order must be restored, not appended.
  index.Move(3, {0.5, 0.5}, {10.0, 10.0});
  index.Move(3, {10.0, 10.0}, {0.5, 0.5});
  EXPECT_EQ(Candidates(index, {0.5, 0.5}, 0.0), ids);
}

TEST(SpatialIndexTest, MoveWithinCellIsANoOp) {
  std::vector<Point> pts = {{0.1, 0.1}, {0.2, 0.2}};
  SpatialIndex index(pts, 1.0);
  index.Move(0, {0.1, 0.1}, {0.3, 0.3});  // same unit cell
  EXPECT_EQ(Candidates(index, {0.2, 0.2}, 0.5).size(), 2u);
  EXPECT_EQ(index.num_cells(), 1u);
}

TEST(SpatialIndexTest, MoveAcrossCellsMigrates) {
  std::vector<Point> pts = {{0.5, 0.5}, {2.5, 0.5}};
  SpatialIndex index(pts, 1.0);
  EXPECT_EQ(Candidates(index, {0.5, 0.5}, 0.4), std::vector<NodeId>{0});
  index.Move(0, {0.5, 0.5}, {2.4, 0.5});
  EXPECT_TRUE(Candidates(index, {0.5, 0.5}, 0.4).empty());
  const std::vector<NodeId> far = Candidates(index, {2.5, 0.5}, 0.4);
  EXPECT_EQ(far, (std::vector<NodeId>{0, 1}));
}

TEST(SpatialIndexTest, TableGrowthPreservesCells) {
  // Far more distinct cells than the initial table capacity forces several
  // rehashes mid-construction.
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({static_cast<double>(i) * 3.0, 0.0});
  }
  const SpatialIndex index(pts, 1.0);
  EXPECT_EQ(index.num_cells(), 500u);
  for (NodeId i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(Candidates(index, pts[i], 0.5), std::vector<NodeId>{i});
  }
}

TEST(SpatialIndexTest, FarAwayCoordinatesClampWithoutOverflow) {
  std::vector<Point> pts = {{0.0, 0.0}, {1e18, 1e18}, {-1e18, -1e18}};
  const SpatialIndex index(pts, 0.5);
  // The clamped far nodes are in some boundary cell; the near query must
  // not see them, and a query at their own position must.
  EXPECT_EQ(Candidates(index, {0.0, 0.0}, 0.5), std::vector<NodeId>{0});
  const std::vector<NodeId> far = Candidates(index, {1e18, 1e18}, 0.5);
  EXPECT_NE(std::find(far.begin(), far.end(), 1u), far.end());
}

}  // namespace
}  // namespace snapq
