// Extension study (message-level TAG engine): aggregate quality under
// radio loss, regular vs snapshot execution. Snapshot queries concentrate
// data on far fewer carriers and shorter paths, so fewer readings are
// exposed to loss — the data-centric layer improves not just energy but
// answer fidelity on a lossy channel (the concern [3] addresses with
// sketches).
#include <cmath>
#include <iostream>
#include <utility>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "query/innetwork.h"

namespace {

using namespace snapq;

/// Mean relative error of SUM over the whole network.
double MeanRelativeError(double loss, bool use_snapshot, uint64_t seed,
                         int queries) {
  SensitivityConfig config;
  config.num_classes = 1;
  config.transmission_range = 0.35;  // multi-hop trees
  config.loss_probability = loss;
  config.seed = seed;
  SensitivityOutcome outcome = RunSensitivityTrial(config);
  SensorNetwork& net = *outcome.network;

  InNetworkAggregator aggregator(&net.sim(), &net.agents());
  Rng rng(seed ^ 0xA66E55ULL);
  RunningStats err;
  for (int q = 0; q < queries; ++q) {
    const NodeId sink = static_cast<NodeId>(rng.UniformInt(0, 99));
    double truth = 0.0;
    for (NodeId i = 0; i < net.num_nodes(); ++i) {
      truth += net.agent(i).measurement();
    }
    const InNetworkResult r = aggregator.Execute(
        Rect::UnitSquare(), AggregateFunction::kSum, sink, use_snapshot);
    const double answer = r.aggregate.value_or(0.0);
    if (truth != 0.0) {
      err.Add(std::abs(answer - truth) / std::abs(truth));
    }
  }
  return err.mean();
}

}  // namespace

SNAPQ_BENCHMARK(ablation_innetwork_loss,
                "Extension: in-network SUM error under loss") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Extension: in-network SUM error under loss (message-level TAG)",
      "N=100, K=1, range=0.35 (multi-hop), whole-network SUM, 50 queries; "
      "relative error vs ground truth");

  const int reps = static_cast<int>(ctx.Scaled(5));
  const int queries = static_cast<int>(ctx.Scaled(50));
  TablePrinter table({"P_loss", "regular rel. error", "snapshot rel. error"});
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const auto samples = exec::ParallelMap<std::pair<double, double>>(
        static_cast<size_t>(reps), ctx.jobs, [&](size_t r) {
          const uint64_t seed = bench::kBaseSeed + r;
          return std::pair<double, double>(
              MeanRelativeError(loss, false, seed, queries),
              MeanRelativeError(loss, true, seed, queries));
        });
    RunningStats regular, snapshot;
    for (const auto& [reg, snap] : samples) {
      regular.Add(reg);
      snapshot.Add(snap);
    }
    table.AddRow({TablePrinter::Num(loss, 2),
                  TablePrinter::Num(100.0 * regular.mean(), 1) + "%",
                  TablePrinter::Num(100.0 * snapshot.mean(), 1) + "%"});
  }
  table.Print(std::cout);
}
