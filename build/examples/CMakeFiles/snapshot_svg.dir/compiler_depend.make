# Empty compiler generated dependencies file for snapshot_svg.
# This may be replaced when dependencies are built.
