#include "sim/simulator.h"

#include <utility>

#include "common/check.h"
#include "obs/profiler.h"

namespace snapq {

Simulator::Simulator(std::vector<Point> positions, std::vector<double> ranges,
                     const SimConfig& config)
    : links_(std::move(positions), std::move(ranges),
             config.loss_probability),
      config_(config),
      metrics_(&registry_),
      rng_(config.seed) {
  const size_t n = links_.num_nodes();
  batteries_.assign(n, Battery(config_.energy.initial_battery));
  handlers_.resize(n);
  sent_by_.assign(n, 0);
  // One broadcast can enqueue up to n-1 deliveries; pre-sizing the pool
  // bookkeeping keeps the first full-fanout round allocation-quiet too.
  delivery_pool_.reserve(n);
  free_deliveries_.reserve(n);
}

void Simulator::SetHandler(NodeId id, MessageHandler handler) {
  SNAPQ_CHECK_LT(id, handlers_.size());
  handlers_[id] = std::move(handler);
}

void Simulator::ScheduleAt(Time t, std::function<void()> action) {
  // Thread the scheduler's causal context into the deferred action so
  // trace trees span timer hops (heartbeat timeouts, query reply slots).
  // The capture only happens when tracing is live *and* the current event
  // is sampled — otherwise this is the same single move as before.
  if (tracer_ != nullptr && tracer_->enabled() && current_trace_.sampled()) {
    queue_.ScheduleAt(t, [this, ctx = current_trace_,
                          inner = std::move(action)]() {
      TraceScope scope(*this, ctx);
      inner();
    });
    return;
  }
  queue_.ScheduleAt(t, std::move(action));
}

void Simulator::ScheduleAfter(Time delta, std::function<void()> action) {
  SNAPQ_CHECK_GE(delta, 0);
  ScheduleAt(queue_.now() + delta, std::move(action));
}

TraceContext Simulator::MintTraceRoot(obs::TraceRootKind kind, NodeId node,
                                      int64_t value) {
  if (tracer_ == nullptr || !tracer_->enabled()) return current_trace_;
  const TraceContext root =
      tracer_->StartTrace(kind, node, queue_.now(), value, current_trace_);
  return root.sampled() ? root : current_trace_;
}

int Simulator::RootSlotOf(const TraceContext& ctx) const {
  if (tracer_ == nullptr || !tracer_->enabled() || !ctx.sampled()) return -1;
  return tracer_->RootKindIndex(ctx.trace_id);
}

void Simulator::OnNodeDeath(NodeId id, const char* cause) {
  metrics_.CountNodeDeath();
  if (energy_ledger_ != nullptr) {
    energy_ledger_->RecordDeath(id, queue_.now());
  }
  journal_.Emit("node_death", queue_.now(), [&](obs::JournalEvent& e) {
    e.Int("node", static_cast<int64_t>(id)).Str("cause", cause);
  });
}

bool Simulator::Send(const Message& msg) {
  const NodeId from = msg.from;
  SNAPQ_CHECK_LT(from, num_nodes());
  if (!batteries_[from].alive()) return false;
  // A node may die on its final transmission; the message still goes out.
  double applied = 0.0;
  const DrainOutcome drain =
      batteries_[from].Consume(config_.energy.tx_cost, &applied);
  if (energy_ledger_ != nullptr) {
    energy_ledger_->RecordMessage(
        from, msg.type, obs::EnergyDirection::kTx, applied,
        RootSlotOf(msg.trace.sampled() ? msg.trace : current_trace_));
  }
  if (drain == DrainOutcome::kDiedNow) OnNodeDeath(from, "tx");
  obs::ProfCount(obs::HotOp::kMessagesSent);
  metrics_.CountSent(msg.type);
  ++sent_by_[from];
  // Causal tracing: this transmission becomes a span under the sender's
  // context — the message's own stamp when the sender forwarded a traced
  // message verbatim, else the ambient context of the executing event.
  TraceContext span_ctx;
  if (tracer_ != nullptr && tracer_->enabled()) {
    const TraceContext& parent =
        msg.trace.sampled() ? msg.trace : current_trace_;
    if (parent.sampled()) {
      span_ctx = tracer_->BeginMessageSpan(parent, msg.type, from,
                                           queue_.now());
    }
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{TraceEvent::Kind::kSend, queue_.now(),
                              msg.type, from, kInvalidNode, msg.epoch,
                              span_ctx.trace_id, span_ctx.span_id});
  }

  for (NodeId receiver : links_.Reachable(from)) {
    const bool addressed =
        msg.to == kBroadcastId || msg.to == receiver;
    bool snooped = false;
    if (!addressed) {
      // Unaddressed neighbors overhear with the snoop probability.
      if (config_.snoop_probability <= 0.0 ||
          !rng_.Bernoulli(config_.snoop_probability)) {
        continue;
      }
      snooped = true;
    }
    const double type_loss = type_loss_[static_cast<size_t>(msg.type)];
    if (links_.SampleLoss(from, receiver, rng_) ||
        (type_loss > 0.0 && rng_.Bernoulli(type_loss))) {
      if (addressed) {
        metrics_.CountLost(msg.type);
        // Lost snoop copies are invisible to the link's delivery ratio:
        // they were never owed to the receiver.
        if (link_observer_ != nullptr) {
          link_observer_->RecordLoss(from, receiver, queue_.now());
        }
      }
      if (span_ctx.sampled()) {
        tracer_->RecordDelivery(span_ctx, receiver, queue_.now(),
                                RadioEventKind::kLoss);
      }
      if (trace_ != nullptr) {
        trace_->Record(TraceEvent{TraceEvent::Kind::kLoss, queue_.now(),
                                  msg.type, from, receiver, msg.epoch,
                                  span_ctx.trace_id, span_ctx.span_id});
      }
      continue;
    }
    // Copy the message into a pooled delivery event; the sender may
    // mutate or destroy its copy after Send returns. Copy-assignment into
    // the pooled record reuses the vector payloads' capacity, and the
    // scheduled closure is two pointers, so a steady-state delivery
    // performs no heap allocation. The copy carries the message span so
    // the receiver's handler inherits this transmission's context.
    DeliveryEvent* event = AcquireDelivery();
    event->receiver = receiver;
    event->snooped = snooped;
    event->msg = msg;
    event->msg.trace = span_ctx;
    queue_.ScheduleAt(queue_.now(), [this, event] { RunDelivery(event); });
  }
  return true;
}

Simulator::DeliveryEvent* Simulator::AcquireDelivery() {
  if (free_deliveries_.empty()) {
    delivery_pool_.push_back(std::make_unique<DeliveryEvent>());
    return delivery_pool_.back().get();
  }
  DeliveryEvent* event = free_deliveries_.back();
  free_deliveries_.pop_back();
  return event;
}

void Simulator::RunDelivery(DeliveryEvent* event) {
  Deliver(event->receiver, event->msg, event->snooped);
  free_deliveries_.push_back(event);
}

void Simulator::Deliver(NodeId to, const Message& msg, bool snooped) {
  if (!batteries_[to].alive()) return;
  double applied = 0.0;
  const DrainOutcome drain =
      batteries_[to].Consume(config_.energy.rx_cost, &applied);
  if (energy_ledger_ != nullptr) {
    energy_ledger_->RecordMessage(
        to, msg.type,
        snooped ? obs::EnergyDirection::kSnoop : obs::EnergyDirection::kRx,
        applied, RootSlotOf(msg.trace));
  }
  if (drain == DrainOutcome::kDiedNow) OnNodeDeath(to, "rx");
  if (snooped) {
    obs::ProfCount(obs::HotOp::kMessagesSnooped);
    metrics_.CountSnooped(msg.type);
    if (link_observer_ != nullptr) {
      link_observer_->RecordSnoop(msg.from, to, queue_.now());
    }
  } else {
    obs::ProfCount(obs::HotOp::kMessagesDelivered);
    metrics_.CountDelivered(msg.type);
    if (link_observer_ != nullptr) {
      link_observer_->RecordDelivery(msg.from, to, queue_.now());
    }
  }
  if (msg.trace.sampled() && tracer_ != nullptr) {
    tracer_->RecordDelivery(
        msg.trace, to, queue_.now(),
        snooped ? RadioEventKind::kSnoop : RadioEventKind::kDeliver);
  }
  if (trace_ != nullptr) {
    trace_->Record(TraceEvent{snooped ? TraceEvent::Kind::kSnoop
                                      : TraceEvent::Kind::kDeliver,
                              queue_.now(), msg.type, msg.from, to,
                              msg.epoch, msg.trace.trace_id,
                              msg.trace.span_id});
  }
  if (handlers_[to]) {
    TraceScope scope(*this, msg.trace);
    handlers_[to](msg, snooped);
  }
}

void Simulator::ChargeCacheOp(NodeId id) {
  SNAPQ_CHECK_LT(id, num_nodes());
  double applied = 0.0;
  const DrainOutcome drain =
      batteries_[id].Consume(config_.energy.cache_op_cost, &applied);
  if (energy_ledger_ != nullptr) {
    energy_ledger_->RecordCacheOp(id, applied, RootSlotOf(current_trace_));
  }
  if (drain == DrainOutcome::kDiedNow) OnNodeDeath(id, "cache");
  obs::ProfCount(obs::HotOp::kCacheOps);
  metrics_.CountCacheOp();
}

void Simulator::Drain(NodeId id, double amount) {
  double applied = 0.0;
  const DrainOutcome drain = batteries_[id].Consume(amount, &applied);
  if (energy_ledger_ != nullptr) {
    energy_ledger_->RecordDirect(id, applied, RootSlotOf(current_trace_));
  }
  if (drain == DrainOutcome::kDiedNow) OnNodeDeath(id, "drain");
}

void Simulator::DrainAs(NodeId id, double amount, MessageType as_type) {
  double applied = 0.0;
  const DrainOutcome drain = batteries_[id].Consume(amount, &applied);
  if (energy_ledger_ != nullptr) {
    energy_ledger_->RecordMessage(id, as_type, obs::EnergyDirection::kTx,
                                  applied, RootSlotOf(current_trace_));
  }
  if (drain == DrainOutcome::kDiedNow) OnNodeDeath(id, "drain");
}

void Simulator::Kill(NodeId id) {
  const bool was_alive = batteries_[id].alive();
  const double discarded = batteries_[id].remaining();
  batteries_[id].Kill();
  if (!was_alive) return;
  if (energy_ledger_ != nullptr) {
    energy_ledger_->RecordKillDiscard(id, discarded);
  }
  OnNodeDeath(id, "killed");
}

void Simulator::ResetPerNodeCounters() {
  sent_by_.assign(sent_by_.size(), 0);
}

}  // namespace snapq
