// Weather monitoring (the paper's §6.3 scenario): a 100-node deployment
// collecting wind-speed readings, long-running continuous queries at
// multiple error tolerances, and snapshot maintenance keeping the
// representative set fresh as the data drifts.
//
//   $ ./build/examples/weather_monitoring
#include <cstdio>

#include "api/network.h"
#include "data/weather.h"
#include "snapshot/multi_resolution.h"

using namespace snapq;

int main() {
  NetworkConfig config;
  config.num_nodes = 100;
  config.transmission_range = 0.7;
  config.snoop_probability = 0.05;
  config.snapshot.threshold = 0.5;
  config.seed = 11;
  SensorNetwork net(config);

  // Wind-speed series (synthetic substitute for the UW station data).
  Rng data_rng(5);
  Result<Dataset> data =
      Dataset::Create(GenerateWeatherWindows(WeatherConfig{}, 100, 1001,
                                             data_rng));
  if (!net.AttachDataset(std::move(*data)).ok()) return 1;

  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(50);
  const ElectionStats stats = net.RunElection(50);
  std::printf("initial snapshot: %zu representatives (T=%.1f)\n",
              stats.num_active, config.snapshot.threshold);

  // Multi-resolution snapshots (§3.1): register the current snapshot under
  // its threshold; queries with looser tolerances can reuse it.
  MultiResolutionRegistry registry;
  registry.Register(config.snapshot.threshold, net.Snapshot());
  for (double t : {0.5, 1.0, 5.0}) {
    const SnapshotView* view = registry.Resolve(t);
    std::printf("a query tolerating error %.1f %s\n", t,
                view == nullptr
                    ? "needs a fresh (tighter) election"
                    : "reuses the registered snapshot");
  }

  // Maintain the snapshot every 100 time units while the network runs a
  // continuous query.
  std::printf("\nmaintaining the snapshot every 100 time units:\n");
  net.ScheduleMaintenance(
      net.now() + 100, 1000, 100, [](const MaintenanceRoundStats& s) {
        std::printf("  t=%4lld  snapshot=%zu  msgs/node=%.2f  spurious=%zu\n",
                    static_cast<long long>(s.round_start), s.snapshot_size,
                    s.avg_messages_per_node, s.num_spurious);
      });
  net.RunAll();

  // One final drill-through over a named region.
  const Result<QueryResult> result = net.Query(
      "SELECT loc, value FROM sensors WHERE loc IN SOUTH_EAST_QUADRANT "
      "USE SNAPSHOT");
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSOUTH_EAST_QUADRANT drill-through: %zu rows from %zu "
              "participating nodes (coverage %.0f%%)\n",
              result->rows.size(), result->participants,
              100.0 * result->coverage);
  for (size_t i = 0; i < result->rows.size() && i < 5; ++i) {
    const QueryRow& row = result->rows[i];
    std::printf("  loc=%-3u value=%6.2f %s\n", row.loc, row.value,
                row.estimated ? "(estimated by its representative)" : "");
  }
  return 0;
}
