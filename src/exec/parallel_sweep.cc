#include "exec/parallel_sweep.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "exec/thread_pool.h"

namespace snapq::exec {

int HardwareJobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveJobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SNAPQ_JOBS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return HardwareJobs();
}

namespace internal {

void RunIndexed(size_t n, int jobs, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(jobs), n));
  ThreadPool pool(workers);
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&body, i] { body(i); });
  }
  pool.WaitIdle();
}

}  // namespace internal

}  // namespace snapq::exec
