// End-to-end causal tracing over the real protocol stack:
//   * a clean 100-node election honors the paper's ≤ 6 msgs/node bound,
//     and the analyzer's verdict says so;
//   * a model violation detected during a heartbeat round becomes its own
//     trace root, causally linked back to that round, and terminates in
//     re-election traffic (fig13-style spurious-reconfiguration forensics);
//   * USE SNAPSHOT queries are answered only by non-passive nodes;
//   * health sampling feeds the derived gauges.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/experiment.h"
#include "api/network.h"
#include "obs/trace_analyzer.h"
#include "obs/tracer.h"
#include "snapshot/election.h"
#include "snapshot/maintenance.h"

namespace snapq {
namespace {

const obs::TraceReport* FindByKind(
    const std::vector<obs::TraceReport>& reports, obs::TraceRootKind kind) {
  for (const obs::TraceReport& r : reports) {
    if (r.root_kind == kind) return &r;
  }
  return nullptr;
}

TEST(TracingIntegrationTest, CleanHundredNodeElectionHonorsMessageBound) {
  SensitivityConfig config;  // the paper's defaults: N=100, P_loss=0
  config.trace_sampling = 1.0;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  const obs::Tracer* tracer = outcome.network->tracer();
  ASSERT_NE(tracer, nullptr);

  const obs::TraceAnalyzer analyzer(tracer);
  EXPECT_TRUE(analyzer.FindOrphans().empty());
  const std::vector<obs::TraceReport> reports = analyzer.AnalyzeAll();
  const obs::TraceReport* election =
      FindByKind(reports, obs::TraceRootKind::kElection);
  ASSERT_NE(election, nullptr);
  EXPECT_GT(election->num_messages, 0u);
  EXPECT_LE(election->max_messages_per_node,
            obs::TraceAnalyzer::kElectionMessageBound);
  ASSERT_EQ(election->verdicts.size(), 1u);
  EXPECT_EQ(election->verdicts[0].invariant, "election.message_bound");
  EXPECT_TRUE(election->verdicts[0].pass) << election->ToString();
}

TEST(TracingIntegrationTest, SnapshotQueryAnsweredOnlyByRepresentatives) {
  SensitivityConfig config;
  config.num_nodes = 30;
  config.num_classes = 5;
  config.trace_sampling = 1.0;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  SensorNetwork& net = *outcome.network;
  ASSERT_TRUE(
      net.Query("SELECT avg(value) FROM sensors WHERE loc IN EVERYWHERE "
                "USE SNAPSHOT")
          .ok());

  const obs::TraceAnalyzer analyzer(net.tracer());
  const std::vector<obs::TraceReport> reports = analyzer.AnalyzeAll();
  const obs::TraceReport* query =
      FindByKind(reports, obs::TraceRootKind::kQuery);
  ASSERT_NE(query, nullptr);
  ASSERT_EQ(query->verdicts.size(), 1u);
  EXPECT_EQ(query->verdicts[0].invariant, "query.snapshot_responders");
  EXPECT_TRUE(query->verdicts[0].pass) << query->ToString();
}

TEST(TracingIntegrationTest,
     ViolationRootLinksToHeartbeatRoundAndEndsInReelection) {
  // Three nodes, taught pairwise models, one representative. Drifting the
  // passive nodes' values makes the rep's heartbeat-reply estimate miss by
  // far more than T, so the next maintenance round detects a violation.
  SnapshotConfig cfg;
  cfg.threshold = 1.0;
  cfg.max_wait = 4;
  cfg.heartbeat_timeout = 2;
  cfg.heartbeat_miss_limit = 1;
  Simulator sim({{0.0, 0.0}, {0.05, 0.0}, {0.1, 0.0}}, {10.0, 10.0, 10.0},
                SimConfig{});
  obs::TracerConfig tracer_config;
  tracer_config.sampling = 1.0;
  obs::Tracer tracer(tracer_config);
  sim.SetTracer(&tracer);
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  for (NodeId i = 0; i < 3; ++i) {
    agents.push_back(std::make_unique<SnapshotAgent>(i, &sim, cfg, 700 + i));
    agents.back()->Install();
  }
  for (NodeId i = 0; i < 3; ++i) agents[i]->SetMeasurement(10.0 + i);
  for (NodeId i = 0; i < 3; ++i) {
    for (NodeId j = 0; j < 3; ++j) {
      if (i == j) continue;
      const double vi = agents[i]->measurement();
      const double vj = agents[j]->measurement();
      agents[i]->models().cache().Observe(j, vi - 1, vj - 1, 0);
      agents[i]->models().cache().Observe(j, vi + 1, vj + 1, 0);
    }
  }
  RunGlobalElection(sim, agents, sim.now(), cfg);
  ASSERT_EQ(CaptureSnapshot(agents).CountActive(), 1u);

  const SnapshotView view = CaptureSnapshot(agents);
  for (NodeId i = 0; i < 3; ++i) {
    if (view.node(i).mode == NodeMode::kPassive) {
      agents[i]->SetMeasurement(10000.0 + i);
    }
  }
  MaintenanceDriver driver(&sim, &agents, /*interval=*/50);
  driver.ScheduleRounds(sim.now() + 1, sim.now() + 2, {});
  sim.RunAll();

  const obs::TraceAnalyzer analyzer(&tracer);
  EXPECT_TRUE(analyzer.FindOrphans().empty());
  const std::vector<obs::TraceReport> reports = analyzer.AnalyzeAll();
  const obs::TraceReport* round =
      FindByKind(reports, obs::TraceRootKind::kHeartbeatRound);
  ASSERT_NE(round, nullptr);
  const obs::TraceReport* violation =
      FindByKind(reports, obs::TraceRootKind::kViolation);
  ASSERT_NE(violation, nullptr);

  // The violation is causally linked to the heartbeat round whose reply
  // exposed the broken model...
  EXPECT_EQ(violation->link_trace_id, round->trace_id);
  const obs::TraceSpan* linked = tracer.FindSpan(violation->link_span_id);
  ASSERT_NE(linked, nullptr);
  EXPECT_EQ(linked->trace_id, round->trace_id);
  // ...and its trace contains the re-election traffic it triggered.
  EXPECT_GT(violation->messages_by_type[static_cast<size_t>(
                MessageType::kInvitation)],
            0u);
  ASSERT_EQ(violation->verdicts.size(), 1u);
  EXPECT_EQ(violation->verdicts[0].invariant, "violation.termination");
  EXPECT_TRUE(violation->verdicts[0].pass) << violation->ToString();
}

TEST(TracingIntegrationTest, HealthSamplingDerivesGauges) {
  SensitivityConfig config;
  config.num_nodes = 30;
  config.num_classes = 5;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  SensorNetwork& net = *outcome.network;
  const obs::HealthSample sample = net.SampleHealth();
  ASSERT_NE(net.health_monitor(), nullptr);
  EXPECT_EQ(net.health_monitor()->num_samples(), 1u);
  EXPECT_EQ(sample.num_live, 30u);
  EXPECT_EQ(sample.num_active + sample.num_passive + sample.num_undefined,
            30u);

  obs::MetricRegistry& reg = net.sim().registry();
  const double coverage = reg.GetGauge("health.coverage")->value();
  EXPECT_DOUBLE_EQ(coverage,
                   static_cast<double>(sample.num_active +
                                       sample.num_passive) /
                       30.0);
  // After a full election everyone is inside the snapshot.
  EXPECT_DOUBLE_EQ(coverage, 1.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("health.spurious_reps")->value(),
                   static_cast<double>(sample.num_spurious));
  EXPECT_GE(reg.GetGauge("health.model_staleness")->value(), 0.0);
  // A second sample right away sees no new violations/re-elections.
  net.SampleHealth();
  EXPECT_DOUBLE_EQ(reg.GetGauge("health.violation_rate")->value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("health.reelection_rate")->value(), 0.0);
}

}  // namespace
}  // namespace snapq
