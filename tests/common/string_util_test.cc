#include "common/string_util.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, TrailingDelimiterYieldsEmptyTail) {
  const auto parts = Split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(EqualsIgnoreCaseTest, Basic) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "sElEcT"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "SELEC"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(ToUpperTest, UppercasesAsciiOnly) {
  EXPECT_EQ(ToUpper("snapshot_42"), "SNAPSHOT_42");
}

TEST(ParseDoubleTest, ValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  7 "), 7.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2").ok());
}

TEST(ParseIntTest, ValidIntegers) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-17"), -17);
  EXPECT_EQ(*ParseInt(" 0 "), 0);
}

TEST(ParseIntTest, RejectsGarbageAndFloats) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("12abc").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, LongOutputs) {
  const std::string long_str(500, 'y');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 500u);
}

}  // namespace
}  // namespace snapq
