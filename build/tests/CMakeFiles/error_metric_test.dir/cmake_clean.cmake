file(REMOVE_RECURSE
  "CMakeFiles/error_metric_test.dir/model/error_metric_test.cc.o"
  "CMakeFiles/error_metric_test.dir/model/error_metric_test.cc.o.d"
  "error_metric_test"
  "error_metric_test.pdb"
  "error_metric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
