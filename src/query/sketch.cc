#include "query/sketch.h"

#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace snapq {
namespace {

/// Flajolet-Martin magic constant (phi).
constexpr double kPhi = 0.77351;

/// Stateless 64-bit mix (SplitMix64 finalizer with a fixed salt) — the
/// sketch hash must be identical on every node.
uint64_t Hash(uint64_t key) {
  uint64_t state = key ^ 0x5EED5EED5EED5EEDULL;
  return SplitMix64(state);
}

}  // namespace

FmSketch::FmSketch(size_t num_bitmaps) : bitmaps_(num_bitmaps, 0) {
  SNAPQ_CHECK_GT(num_bitmaps, 0u);
}

void FmSketch::InsertItem(uint64_t key) {
  const uint64_t h = Hash(key);
  const size_t bitmap = static_cast<size_t>(h % bitmaps_.size());
  // Geometric bit index: the number of trailing zeros of the remaining
  // hash bits sets bit k with probability 2^-(k+1).
  const uint64_t rest = h / bitmaps_.size();
  const int k = std::min(31, std::countr_zero(rest | (1ULL << 32)));
  bitmaps_[bitmap] |= 1u << k;
}

void FmSketch::Merge(const FmSketch& other) {
  SNAPQ_CHECK_EQ(bitmaps_.size(), other.bitmaps_.size());
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    bitmaps_[i] |= other.bitmaps_[i];
  }
}

double FmSketch::EstimateCount() const {
  // Mean index of the lowest unset bit across bitmaps.
  double total_r = 0.0;
  for (uint32_t bits : bitmaps_) {
    total_r += std::countr_one(bits);
  }
  const double m = static_cast<double>(bitmaps_.size());
  return (m / kPhi) * std::pow(2.0, total_r / m);
}

FmSketch FmSketch::FromWire(const std::vector<uint32_t>& bitmaps) {
  FmSketch s(bitmaps.size());
  s.bitmaps_ = bitmaps;
  return s;
}

SumSketch::SumSketch(size_t num_bitmaps) : sketch_(num_bitmaps) {}

void SumSketch::AddValue(NodeId node, double value) {
  SNAPQ_CHECK_GE(value, 0.0);
  const uint64_t units = static_cast<uint64_t>(std::ceil(value));
  for (uint64_t u = 0; u < units; ++u) {
    sketch_.InsertItem((static_cast<uint64_t>(node) << 32) | u);
  }
}

SumSketch SumSketch::FromWire(const std::vector<uint32_t>& bitmaps) {
  SumSketch s(bitmaps.size());
  s.sketch_ = FmSketch::FromWire(bitmaps);
  return s;
}

}  // namespace snapq
