#include "obs/span.h"

#include <utility>

#include "obs/tracer.h"

namespace snapq::obs {

const std::vector<double>& Span::WallMicrosBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      1, 10, 100, 1000, 10000, 100000, 1000000};
  return *bounds;
}

const std::vector<double>& Span::SimTicksBounds() {
  static const std::vector<double>* bounds = new std::vector<double>{
      0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000};
  return *bounds;
}

Span::Span(MetricRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)) {
  if (registry_ != nullptr) {
    wall_start_ = std::chrono::steady_clock::now();
  }
}

void Span::BeginSim(int64_t sim_now) {
  sim_start_ = sim_now;
  sim_start_set_ = true;
}

void Span::EndSim(int64_t sim_now) {
  sim_end_ = sim_now;
  sim_end_set_ = true;
}

void Span::AttachTrace(Tracer* tracer, const TraceContext& ctx) {
  tracer_ = tracer;
  trace_ctx_ = ctx;
}

void Span::End() {
  if (ended_) return;
  ended_ = true;
  if (tracer_ != nullptr && trace_ctx_.sampled() && sim_start_set_ &&
      sim_end_set_) {
    tracer_->RecordPhase(trace_ctx_, name_, sim_start_, sim_end_);
  }
  if (registry_ == nullptr) return;
  const auto wall_end = std::chrono::steady_clock::now();
  const double micros =
      std::chrono::duration<double, std::micro>(wall_end - wall_start_)
          .count();
  registry_->GetHistogram(name_ + ".wall_us", WallMicrosBounds())
      ->Observe(micros);
  if (sim_start_set_ && sim_end_set_) {
    registry_->GetHistogram(name_ + ".sim_ticks", SimTicksBounds())
        ->Observe(static_cast<double>(sim_end_ - sim_start_));
  }
}

}  // namespace snapq::obs
