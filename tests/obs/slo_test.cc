// The SLO rule grammar and the watchdog's breach semantics: sustain
// windows, once-per-episode firing with re-arm on recovery, the journal
// breach event and the blackbox callback hook.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/metric_registry.h"
#include "obs/timeseries.h"

namespace snapq::obs {
namespace {

TEST(SloRuleTest, ParsesTheCanonicalGrammar) {
  std::optional<SloRule> rule =
      SloRule::Parse("health.coverage value >= 0.9 for 500");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->metric, "health.coverage");
  EXPECT_EQ(rule->stat, SloRule::Stat::kValue);
  EXPECT_EQ(rule->op, SloRule::Op::kGe);
  EXPECT_DOUBLE_EQ(rule->threshold, 0.9);
  EXPECT_EQ(rule->for_ticks, 500);
  // ToString round-trips through Parse.
  std::optional<SloRule> again = SloRule::Parse(rule->ToString());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->ToString(), rule->ToString());

  rule = SloRule::Parse("proc.rss_kb slope <= 1.5");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->stat, SloRule::Stat::kSlope);
  EXPECT_EQ(rule->op, SloRule::Op::kLe);
  EXPECT_EQ(rule->for_ticks, 0);

  rule = SloRule::Parse("  x  EWMA  <=  -2  for  7  ");  // spacing + case
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->stat, SloRule::Stat::kEwma);
  EXPECT_DOUBLE_EQ(rule->threshold, -2.0);
}

TEST(SloRuleTest, StrictComparisonsAliasTheInclusiveOps) {
  // Thresholds are doubles, so `>` and `<` are accepted as spellings of
  // the inclusive ops — `accuracy.violation_rate value > 0.05 for 10`
  // reads naturally even though the evaluation is >=.
  std::optional<SloRule> rule =
      SloRule::Parse("accuracy.violation_rate value > 0.05 for 10");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->op, SloRule::Op::kGe);
  EXPECT_DOUBLE_EQ(rule->threshold, 0.05);
  EXPECT_EQ(rule->for_ticks, 10);

  rule = SloRule::Parse("accuracy.budget_burn ewma < 1");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->op, SloRule::Op::kLe);
}

TEST(SloRuleTest, RejectsMalformedRules) {
  const char* bad[] = {
      "",
      "metric",
      "metric value",
      "metric value >=",
      "metric value >= abc",
      "metric median >= 1",      // unknown stat
      "metric value == 1",       // unsupported op
      "metric value => 1",       // misspelled op
      "metric value >= 1 for",   // missing ticks
      "metric value >= 1 for -3",
      "metric value >= 1 for 3 extra",
      "metric value >= 1 whenever 3",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(SloRule::Parse(text).has_value()) << text;
  }
}

class SloWatchdogTest : public ::testing::Test {
 protected:
  SloWatchdogTest() : recorder_({}, &registry_) {
    gauge_ = registry_.GetGauge("g");
    recorder_.TrackGauge("g");
  }

  void Sample(Time t, double value) {
    gauge_->Set(value);
    recorder_.SampleNow(t);
  }

  MetricRegistry registry_;
  TelemetryRecorder recorder_;
  Gauge* gauge_ = nullptr;
};

TEST_F(SloWatchdogTest, SustainWindowGatesTheBreach) {
  SloWatchdog watchdog(&recorder_);
  ASSERT_TRUE(watchdog.AddRule("g value >= 1 for 30"));

  // A short dip inside the window is not an incident.
  Sample(0, 2.0);
  watchdog.Evaluate(0);
  Sample(10, 0.5);
  watchdog.Evaluate(10);
  Sample(20, 0.5);
  watchdog.Evaluate(20);
  Sample(30, 2.0);  // recovered before 30 violating ticks
  watchdog.Evaluate(30);
  EXPECT_TRUE(watchdog.healthy());

  // A sustained violation confirms exactly when the window elapses.
  for (Time t = 40; t <= 80; t += 10) {
    Sample(t, 0.5);
    watchdog.Evaluate(t);
  }
  EXPECT_FALSE(watchdog.healthy());
  ASSERT_EQ(watchdog.breaches().size(), 1u);
  EXPECT_EQ(watchdog.breaches()[0].violated_since, 40);
  EXPECT_EQ(watchdog.breaches()[0].confirmed_at, 70);  // 40 + 30
  EXPECT_DOUBLE_EQ(watchdog.breaches()[0].observed, 0.5);
}

TEST_F(SloWatchdogTest, FiresOncePerEpisodeAndReArmsOnRecovery) {
  SloWatchdog watchdog(&recorder_);
  ASSERT_TRUE(watchdog.AddRule("g value >= 1 for 10"));

  for (Time t = 0; t < 100; t += 5) {  // one long violating episode
    Sample(t, 0.0);
    watchdog.Evaluate(t);
  }
  EXPECT_EQ(watchdog.breaches().size(), 1u);

  Sample(100, 5.0);  // recover: the rule re-arms
  watchdog.Evaluate(100);
  for (Time t = 105; t < 130; t += 5) {  // second episode
    Sample(t, 0.0);
    watchdog.Evaluate(t);
  }
  EXPECT_EQ(watchdog.breaches().size(), 2u);
  EXPECT_EQ(watchdog.BreachesFor("g"), 2u);
  EXPECT_EQ(watchdog.BreachesFor("other"), 0u);
}

TEST_F(SloWatchdogTest, EvaluatesEwmaAndSlopeStats) {
  SloWatchdog watchdog(&recorder_);
  ASSERT_TRUE(watchdog.AddRule("g ewma <= 10"));
  ASSERT_TRUE(watchdog.AddRule("g slope <= 0.5"));

  // A steeply growing series violates both: the ewma climbs past 10 and
  // the slope is ~2 per tick.
  for (Time t = 0; t < 200; ++t) {
    Sample(t, 2.0 * static_cast<double>(t));
    watchdog.Evaluate(t);
  }
  EXPECT_EQ(watchdog.breaches().size(), 2u);
}

TEST_F(SloWatchdogTest, UnknownMetricNeverFires) {
  SloWatchdog watchdog(&recorder_);
  ASSERT_TRUE(watchdog.AddRule("never.tracked value >= 1"));
  Sample(0, 0.0);
  watchdog.Evaluate(0);
  EXPECT_TRUE(watchdog.healthy());
  EXPECT_NE(watchdog.ToString().find("NO DATA"), std::string::npos);
}

TEST_F(SloWatchdogTest, RejectsMalformedRuleText) {
  SloWatchdog watchdog(&recorder_);
  EXPECT_FALSE(watchdog.AddRule("g wibble >= 1"));
  EXPECT_EQ(watchdog.num_rules(), 0u);
}

TEST_F(SloWatchdogTest, BreachEmitsJournalEventAndCallback) {
  EventJournal journal;
  auto* sink = static_cast<MemoryJournalSink*>(
      journal.SetSink(std::make_unique<MemoryJournalSink>()));
  SloWatchdog watchdog(&recorder_, &journal);
  ASSERT_TRUE(watchdog.AddRule("g value >= 1 for 5"));
  std::vector<SloBreach> seen;
  watchdog.SetBreachCallback(
      [&seen](const SloBreach& b) { seen.push_back(b); });

  for (Time t = 0; t < 20; ++t) {
    Sample(t, 0.0);
    watchdog.Evaluate(t);
  }
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].confirmed_at, 5);

  ASSERT_EQ(sink->lines().size(), 1u);
  std::optional<JournalEvent> event = JournalEvent::Parse(sink->lines()[0]);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->name(), "slo.breach");
  EXPECT_EQ(event->GetStr("metric"), "g");
  EXPECT_EQ(event->GetStr("stat"), "value");
  EXPECT_EQ(event->GetInt("since"), 0);
  EXPECT_EQ(event->GetNum("threshold"), 1.0);
}

}  // namespace
}  // namespace snapq::obs
