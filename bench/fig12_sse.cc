// Figure 12: the average sse of the representatives' estimates, for the
// Figure 11 runs. The point of the figure: the *measured* error is in
// practice significantly smaller than the threshold T used during
// discovery.
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"

SNAPQ_BENCHMARK(fig12_sse,
                "Figure 12: average sse of representative estimates") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Figure 12: average sse of representative estimates (weather data)",
      "same runs as Figure 11; sse measured at discovery time over all "
      "represented nodes");

  TablePrinter table({"T", "avg sse", "sse / T"});
  for (double t : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const RunningStats sse = MeanOverSeeds(
        static_cast<size_t>(ctx.repetitions), bench::kBaseSeed,
        [&](uint64_t seed) {
          SensitivityConfig config;
          config.workload = WorkloadKind::kWeather;
          config.threshold = t;
          config.seed = seed;
          const SensitivityOutcome outcome = RunSensitivityTrial(config);
          return AverageRepresentationSse(*outcome.network);
        },
        ctx.jobs);
    table.AddRow({TablePrinter::Num(t, 1), TablePrinter::Num(sse.mean(), 4),
                  TablePrinter::Num(sse.mean() / t, 3)});
  }
  table.Print(std::cout);
}
