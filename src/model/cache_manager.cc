#include "model/cache_manager.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace snapq {
namespace {

/// Sufficient statistics of a hypothetical line without materializing it.
RegressionStats StatsPlus(const RegressionStats& base, double x, double y) {
  RegressionStats s = base;
  s.Add(x, y);
  return s;
}

RegressionStats StatsMinusOldestPlus(const CacheLine& line, double x,
                                     double y) {
  RegressionStats s = line.stats();
  if (!line.empty()) {
    const ObservationPair& oldest = line.oldest();
    s.Remove(oldest.x, oldest.y);
  }
  s.Add(x, y);
  return s;
}

}  // namespace

const char* CacheActionName(CacheManager::Action action) {
  switch (action) {
    case CacheManager::Action::kInsertedFree:
      return "inserted-free";
    case CacheManager::Action::kInsertedNewcomer:
      return "inserted-newcomer";
    case CacheManager::Action::kTimeShifted:
      return "time-shifted";
    case CacheManager::Action::kAugmented:
      return "augmented";
    case CacheManager::Action::kRejected:
      return "rejected";
  }
  return "unknown";
}

CacheManager::CacheManager(const CacheConfig& config) : config_(config) {}

CacheManager::LineTable::iterator CacheManager::LowerBound(NodeId j) {
  return std::lower_bound(
      lines_.begin(), lines_.end(), j,
      [](const Entry& e, NodeId id) { return e.id < id; });
}

CacheManager::LineTable::iterator CacheManager::Find(NodeId j) {
  auto it = LowerBound(j);
  return (it != lines_.end() && it->id == j) ? it : lines_.end();
}

CacheManager::LineTable::const_iterator CacheManager::Find(NodeId j) const {
  auto it = std::lower_bound(
      lines_.begin(), lines_.end(), j,
      [](const Entry& e, NodeId id) { return e.id < id; });
  return (it != lines_.end() && it->id == j) ? it : lines_.end();
}

CacheManager::Entry& CacheManager::LineFor(NodeId j) {
  auto it = LowerBound(j);
  if (it == lines_.end() || it->id != j) {
    it = lines_.insert(it, Entry{});
    it->id = j;
  }
  return *it;
}

void CacheManager::EraseLine(NodeId j) {
  auto it = Find(j);
  if (it != lines_.end()) lines_.erase(it);
}

void CacheManager::BindObservability(obs::MetricRegistry* registry,
                                     obs::EventJournal* journal,
                                     NodeId self) {
  journal_ = journal;
  self_ = self;
  if (registry == nullptr) {
    action_counters_.fill(nullptr);
    refit_counter_ = nullptr;
    return;
  }
  for (size_t i = 0; i < kNumActions; ++i) {
    action_counters_[i] = registry->GetCounter(
        std::string("cache.action.") +
        CacheActionName(static_cast<Action>(i)));
  }
  refit_counter_ = registry->GetCounter("model.refits");
}

CacheManager::Action CacheManager::Observe(NodeId j, double x, double y,
                                           Time t) {
  if (config_.capacity_pairs() == 0) return Action::kRejected;
  observe_time_ = t;
  Action action = Action::kRejected;
  switch (config_.policy) {
    case CachePolicy::kModelAware:
      action = ObserveModelAware(j, x, y, t);
      break;
    case CachePolicy::kRoundRobin:
      action = ObserveRoundRobin(j, x, y, t);
      break;
  }
  CountAction(action);
  return action;
}

CacheManager::Action CacheManager::ObserveModelAware(NodeId j, double x,
                                                     double y, Time t) {
  const ObservationPair incoming{x, y, t};
  Entry& entry = LineFor(j);  // creates an empty line if absent

  // Free capacity: always store.
  if (used_pairs_ < config_.capacity_pairs()) {
    entry.line.PushNewest(incoming);
    entry.penalty.reset();
    ++used_pairs_;
    return Action::kInsertedFree;
  }

  // Newcomer (no history for j): the benefit heuristic would assign the
  // unbounded gain x_j(t)^2, so §4 prescribes a round-robin victim instead,
  // protecting established models of small-amplitude neighbors.
  if (entry.line.empty()) {
    auto victim = PickRoundRobinVictim(j);
    if (victim == lines_.end()) {
      // No other line exists to evict from; reject.
      EraseLine(j);
      return Action::kRejected;
    }
    EvictOldest(victim);
    Entry& fresh = LineFor(j);  // the erase above may have invalidated refs
    fresh.line.PushNewest(incoming);
    fresh.penalty.reset();
    ++used_pairs_;
    return Action::kInsertedNewcomer;
  }

  // Full cache, existing line: weigh reject / time-shift / augment. All
  // candidate models are evaluated on c_aug (every known observation of j,
  // including the incoming pair).
  const RegressionStats aug = StatsPlus(entry.line.stats(), x, y);
  const RegressionStats shift = StatsMinusOldestPlus(entry.line, x, y);

  // The full-cache decision refits three candidate models.
  if (refit_counter_ != nullptr) refit_counter_->Inc(3);

  const LinearModel model_current = entry.line.stats().Fit();
  const LinearModel model_shift = shift.Fit();
  const LinearModel model_aug = aug.Fit();

  // All three candidates are evaluated on c_aug, so total and per-pair
  // average benefits order identically; the currency only matters for the
  // comparison against the cross-line eviction penalty below, where it
  // follows config_.penalty (totals by default, §4's literal averages for
  // the ablation study).
  const bool average =
      config_.penalty == PenaltyCurrency::kAverageBenefit;
  const double benefit_current =
      average ? aug.Benefit(model_current) : aug.BenefitSum(model_current);
  const double benefit_shift =
      average ? aug.Benefit(model_shift) : aug.BenefitSum(model_shift);
  const double benefit_aug =
      average ? aug.Benefit(model_aug) : aug.BenefitSum(model_aug);

  // Test 1: the current model already explains all observations best.
  if (benefit_current >= benefit_shift && benefit_current >= benefit_aug) {
    return Action::kRejected;
  }
  // Test 2: shifting beats augmenting.
  if (benefit_shift >= benefit_aug) {
    entry.line.PopOldest();
    entry.line.PushNewest(incoming);
    entry.penalty.reset();
    return Action::kTimeShifted;
  }

  // Augmenting reduces the error most; look for the cheapest victim in
  // another line.
  const double gain_augment = benefit_aug - benefit_shift;
  auto victim = lines_.end();
  double best_penalty = std::numeric_limits<double>::infinity();
  for (auto it = lines_.begin(); it != lines_.end(); ++it) {
    if (it->id == j || it->line.empty()) continue;
    const double penalty = PenaltyEvict(*it);
    if (penalty < gain_augment && penalty < best_penalty) {
      best_penalty = penalty;
      victim = it;
    }
  }
  if (victim != lines_.end()) {
    EvictOldest(victim);
    Entry& target = LineFor(j);
    target.line.PushNewest(incoming);
    target.penalty.reset();
    ++used_pairs_;
    return Action::kAugmented;
  }

  // No affordable victim: fall back to time-shifting when it still beats
  // keeping the cache untouched.
  if (benefit_shift > benefit_current) {
    entry.line.PopOldest();
    entry.line.PushNewest(incoming);
    entry.penalty.reset();
    return Action::kTimeShifted;
  }
  return Action::kRejected;
}

CacheManager::Action CacheManager::ObserveRoundRobin(NodeId j, double x,
                                                     double y, Time t) {
  const ObservationPair incoming{x, y, t};
  Action action = Action::kInsertedFree;
  if (used_pairs_ >= config_.capacity_pairs()) {
    // Evict the globally oldest pair (FIFO; with this write-dominated access
    // pattern FIFO == LRU == round-robin, §6.1).
    SNAPQ_CHECK(!fifo_order_.empty());
    const NodeId owner = fifo_order_.front();
    fifo_order_.pop_front();
    auto it = Find(owner);
    SNAPQ_CHECK(it != lines_.end());
    EvictOldest(it);
    action = owner == j ? Action::kTimeShifted : Action::kAugmented;
  }
  Entry& entry = LineFor(j);
  entry.line.PushNewest(incoming);
  entry.penalty.reset();
  ++used_pairs_;
  fifo_order_.push_back(j);
  return action;
}

double CacheManager::PenaltyEvict(const Entry& entry) const {
  if (entry.penalty.has_value()) return *entry.penalty;
  const CacheLine& line = entry.line;
  SNAPQ_DCHECK(!line.empty());
  // §4 defines the penalty as benefit(c') - benefit(c' minus its oldest
  // pair). We compute both benefits as totals rather than the paper's
  // per-pair averages: averaging across the two different lengths makes
  // the penalty negative whenever the surviving pairs merely have larger
  // magnitude (e.g. any rising series), which lets every augment request
  // strip healthy lines down to a single pair. With totals the penalty is
  // exactly the squared-error evidence the oldest pair contributes — large
  // for load-bearing history, and negative only when the oldest pair is an
  // outlier that actively distorts the fit (evicting it is then correct).
  const bool average =
      config_.penalty == PenaltyCurrency::kAverageBenefit;
  const double benefit_full =
      average ? line.stats().Benefit(line.stats().Fit())
              : line.stats().BenefitSum(line.stats().Fit());
  RegressionStats without = line.stats();
  const ObservationPair& oldest = line.oldest();
  without.Remove(oldest.x, oldest.y);
  // benefit of an empty line is zero (no model, no values).
  const double benefit_without =
      without.n() == 0
          ? 0.0
          : (average ? without.Benefit(without.Fit())
                     : without.BenefitSum(without.Fit()));
  const double penalty = benefit_full - benefit_without;
  entry.penalty = penalty;
  return penalty;
}

void CacheManager::EvictOldest(LineTable::iterator it) {
  SNAPQ_CHECK(it != lines_.end());
  SNAPQ_CHECK(!it->line.empty());
  const NodeId victim = it->id;
  it->line.PopOldest();
  it->penalty.reset();
  SNAPQ_CHECK_GT(used_pairs_, 0u);
  --used_pairs_;
  const bool emptied = it->line.empty();
  if (emptied) {
    lines_.erase(it);
  }
  if (journal_ != nullptr) {
    journal_->Emit("cache.evict", observe_time_,
                   [&](obs::JournalEvent& e) {
                     e.Node(self_)
                         .Int("victim", static_cast<int64_t>(victim))
                         .Bool("line_emptied", emptied);
                   });
  }
}

CacheManager::LineTable::iterator CacheManager::PickRoundRobinVictim(
    NodeId j) {
  // First non-empty line with key >= cursor (wrapping), skipping j.
  auto usable = [&](LineTable::iterator it) {
    return it->id != j && !it->line.empty();
  };
  auto it = LowerBound(rr_cursor_);
  for (size_t scanned = 0; scanned <= lines_.size(); ++scanned) {
    if (it == lines_.end()) it = lines_.begin();
    if (it == lines_.end()) return lines_.end();  // table is empty
    if (usable(it)) {
      rr_cursor_ = it->id + 1;
      return it;
    }
    ++it;
  }
  return lines_.end();
}

const CacheLine* CacheManager::Line(NodeId j) const {
  const auto it = Find(j);
  return it == lines_.end() ? nullptr : &it->line;
}

std::optional<LinearModel> CacheManager::ModelFor(NodeId j) const {
  const CacheLine* line = Line(j);
  if (line == nullptr || line->empty()) return std::nullopt;
  return line->FitModel();
}

std::optional<double> CacheManager::Estimate(NodeId j, double own_x) const {
  const std::optional<LinearModel> model = ModelFor(j);
  if (!model.has_value()) return std::nullopt;
  return model->Estimate(own_x);
}

std::vector<NodeId> CacheManager::CachedNeighbors() const {
  std::vector<NodeId> out;
  out.reserve(lines_.size());
  for (const Entry& entry : lines_) {
    if (!entry.line.empty()) out.push_back(entry.id);
  }
  return out;
}

double CacheManager::TotalBenefit() const {
  double total = 0.0;
  for (const Entry& entry : lines_) {
    if (entry.line.empty()) continue;
    total += entry.line.stats().Benefit(entry.line.stats().Fit());
  }
  return total;
}

}  // namespace snapq
