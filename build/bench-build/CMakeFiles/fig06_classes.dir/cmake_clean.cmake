file(REMOVE_RECURSE
  "../bench/fig06_classes"
  "../bench/fig06_classes.pdb"
  "CMakeFiles/fig06_classes.dir/fig06_classes.cc.o"
  "CMakeFiles/fig06_classes.dir/fig06_classes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
