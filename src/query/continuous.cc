#include "query/continuous.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "query/parser.h"
#include "query/predicate.h"

namespace snapq {

ContinuousQueryRunner::ContinuousQueryRunner(Simulator* sim,
                                             QueryExecutor* executor)
    : sim_(sim), executor_(executor) {
  SNAPQ_CHECK(sim != nullptr && executor != nullptr);
}

Result<int64_t> ContinuousQueryRunner::Schedule(
    const QuerySpec& spec, Time start, const ExecutionOptions& options,
    EpochCallback callback) {
  if (start < sim_->now()) {
    return Status::InvalidArgument("start time is in the past");
  }
  // Validate the query up front so scheduling errors surface immediately
  // rather than mid-run.
  SNAPQ_RETURN_IF_ERROR(ValidateColumns(spec, executor_->catalog()));
  if (spec.region_name.has_value()) {
    Result<Rect> region =
        executor_->catalog().LookupRegion(*spec.region_name);
    if (!region.ok()) return region.status();
  }

  // Epoch schedule: single-shot without SAMPLE INTERVAL; otherwise one
  // round per interval across the duration (inclusive of the first round).
  int64_t epochs = 1;
  Time interval = 1;
  if (spec.sample_interval > 0.0) {
    interval = std::max<Time>(1, static_cast<Time>(
                                     std::llround(spec.sample_interval)));
    if (spec.duration > 0.0) {
      epochs = std::max<int64_t>(
          1, static_cast<int64_t>(spec.duration / spec.sample_interval));
    }
  }

  // The spec is shared by all epochs.
  auto shared_spec = std::make_shared<QuerySpec>(spec);
  for (int64_t e = 0; e < epochs; ++e) {
    const Time at = start + interval * e;
    sim_->ScheduleAt(at, [this, shared_spec, options, callback, e, at] {
      Result<QueryResult> result = executor_->Execute(*shared_spec, options);
      if (!result.ok() || !callback) return;
      EpochResult epoch_result;
      epoch_result.epoch = e;
      epoch_result.time = at;
      epoch_result.result = std::move(*result);
      callback(epoch_result);
    });
  }
  return epochs;
}

Result<int64_t> ContinuousQueryRunner::ScheduleSql(
    const std::string& sql, Time start, const ExecutionOptions& options,
    EpochCallback callback) {
  Result<QuerySpec> spec = ParseQuery(sql);
  if (!spec.ok()) return spec.status();
  return Schedule(*spec, start, options, std::move(callback));
}

}  // namespace snapq
