// Ablation for DESIGN.md §6 item 3: the refinement-phase retry machinery
// (StayActive re-sends + re-broadcast acknowledgments) under message loss.
// Disabling retries is approximated by a resend interval larger than the
// whole refinement window.
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"

namespace {

using namespace snapq;

double MeanReps(double loss, bool retries, size_t repetitions, int jobs) {
  return MeanOverSeeds(repetitions, bench::kBaseSeed,
                       [&](uint64_t seed) {
                         NetworkConfig nc;
                         nc.loss_probability = loss;
                         if (!retries) {
                           nc.snapshot.stay_active_resend = 1000;  // never
                         }
                         nc.seed = seed;
                         SensorNetwork network(nc);
                         Rng data_rng = Rng(seed).SplitNamed("data");
                         RandomWalkConfig walk;
                         walk.num_nodes = nc.num_nodes;
                         walk.num_classes = 1;
                         walk.horizon = 101;
                         auto ds = Dataset::Create(
                             GenerateRandomWalk(walk, data_rng).series);
                         SNAPQ_CHECK(ds.ok());
                         SNAPQ_CHECK(
                             network.AttachDataset(std::move(*ds)).ok());
                         network.ScheduleTrainingBroadcasts(0, 10);
                         network.RunUntil(100);
                         const double active = static_cast<double>(
                             network.RunElection(100).num_active);
                         obs::MetricSink().MergeFrom(
                             network.sim().registry());
                         return active;
                       },
                       jobs)
      .mean();
}

}  // namespace

SNAPQ_BENCHMARK(ablation_retries,
                "Ablation: refinement retries under message loss") {
  using namespace snapq;
  bench::Driver driver(
      ctx,
      "Ablation: refinement retries under message loss (DESIGN.md §6, "
      "item 3)",
      "Fig 7 setup (K=1); StayActive retry + re-acknowledgment on vs off");

  const size_t reps = static_cast<size_t>(ctx.repetitions);
  TablePrinter table({"P_loss", "with retries", "without retries"});
  for (double loss : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    table.AddRow({TablePrinter::Num(loss, 1),
                  TablePrinter::Num(MeanReps(loss, true, reps, ctx.jobs), 1),
                  TablePrinter::Num(MeanReps(loss, false, reps, ctx.jobs),
                                    1)});
  }
  table.Print(std::cout);
}
