// Fitting the correlation line under error metrics other than sse. §4
// notes that "there is a vast literature on linear regression that can be
// of use for optimizing other error metrics such as relative or absolute
// error"; this module provides those fits over a cache line's pairs:
//
//   * sse       — ordinary least squares (Lemma 1);
//   * absolute  — least absolute deviations via iteratively reweighted
//                 least squares (IRLS with weights 1/|residual|);
//   * relative  — IRLS for the weighted-LAD objective sum |r_k|/max(s,|y_k|)
//                 (weights 1/(max(s,|y_k|) * |r_k|)).
//
// Both IRLS fits start from the least-squares line and keep the best
// iterate under the target metric, so they never do worse than plain LS
// on the cached pairs (asserted by property tests).
#ifndef SNAPQ_MODEL_ROBUST_FIT_H_
#define SNAPQ_MODEL_ROBUST_FIT_H_

#include <span>
#include <vector>

#include "model/cache_line.h"
#include "model/error_metric.h"
#include "model/linear_model.h"
#include "obs/metric_registry.h"

namespace snapq {

/// Weighted least squares over (x, y, w) triples; falls back to the
/// weighted-mean constant model for degenerate predictors.
LinearModel FitWeighted(std::span<const ObservationPair> pairs,
                        const std::vector<double>& weights);

/// The metric-optimal line over `pairs` (see file comment). For the sse
/// metric this equals RegressionStats::Fit(). When `registry` is non-null
/// the fit is timed into its "model.refit.wall_us" histogram (the IRLS
/// fits are the expensive ones; a null registry costs nothing).
LinearModel FitForMetric(std::span<const ObservationPair> pairs,
                         const ErrorMetric& metric,
                         obs::MetricRegistry* registry = nullptr);

/// Total error of `model` over `pairs` under `metric` (the objective
/// FitForMetric approximately minimizes).
double TotalError(std::span<const ObservationPair> pairs,
                  const ErrorMetric& metric, const LinearModel& model);

}  // namespace snapq

#endif  // SNAPQ_MODEL_ROBUST_FIT_H_
