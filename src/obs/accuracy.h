// Ground-truth accuracy auditing: turns the residual between what a
// representative claimed and what the represented sensor actually read
// into first-class telemetry. The paper's bargain (§3) is that a
// representative answers for its members within the error bound T; after
// six PRs of systems observability nothing measured whether that promise
// *holds over time* — QueryRow::model_error surfaces per query via
// EXPLAIN, and the health monitor tracks coverage, not accuracy. The
// auditor closes that gap:
//
//   accuracy.violation_rate   fraction of audited estimates in the current
//                             budget window with d(x, x̂) > effective T;
//   accuracy.budget_burn      violation_rate / error_budget — 1.0 means
//                             the window's budget is exactly spent;
//   accuracy.max_abs_error    largest |x − x̂| audited since construction;
//   accuracy.mean_abs_error   mean |x − x̂| since construction;
//   accuracy.audited /        cumulative estimates audited / found in
//   accuracy.violations       violation (counters, so the timeseries
//                             engine can trend their rates);
//   accuracy.rounds           audit rounds completed.
//
// Because these are ordinary registry instruments, the existing
// TelemetryRecorder, SLO grammar ("accuracy.violation_rate value <= 0.05
// for 10") and flight-recorder blackbox pick them up with zero new
// plumbing. Each completed round additionally emits one frozen-schema
// `accuracy_audit` journal event.
//
// Layering: obs cannot depend on the model layer, so the auditor ingests
// plain doubles — the caller (the query executor, or the api-level
// sweep) computes the signed error and the metric distance d(x, x̂) and
// passes the effective threshold per round. Per-node attribution reuses
// the profiler's fixed-memory LogHistogram; everything is preallocated
// at construction, so BeginRound/ObserveEstimate/EndRound never allocate
// (with the journal disabled) — pinned by the audit allocation test.
//
// This is also ROADMAP item 4(c)'s detection signal: a byzantine or
// faulty representative serving stale/corrupted estimates shows up as a
// per-reporter violation concentration (ReporterViolations).
#ifndef SNAPQ_OBS_ACCURACY_H_
#define SNAPQ_OBS_ACCURACY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/node_id.h"
#include "obs/gauge_pack.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"
#include "obs/profiler.h"

namespace snapq::obs {

/// What triggered an audit round.
enum class AuditSource : uint8_t {
  kQuery = 0,  ///< a snapshot-answered query round (ExecutionOptions hook)
  kSweep,      ///< a sampled-tick sweep over the representation state
};
/// Stable name ("query" / "sweep"), used in the journal event.
const char* AuditSourceName(AuditSource source);

struct AccuracyAuditConfig {
  /// Fraction of audited estimates per window allowed to exceed the
  /// effective threshold. budget_burn = violation_rate / error_budget, so
  /// an SLO on `accuracy.budget_burn value <= 1` enforces it directly.
  double error_budget = 0.01;
  /// Tumbling budget-window length in sim ticks. Window counters (and the
  /// violation_rate / budget_burn gauges) reset when a round starts in a
  /// later window.
  Time window = 100;
  /// Keep a per-node error histogram + violation counter (one LogHistogram
  /// is ~1.7 KB per node). Disable for very large networks; the
  /// network-wide aggregates remain.
  bool per_node = true;
};

/// Cumulative audit aggregate for one node (shell `\accuracy` table and
/// the EXPLAIN ANALYZE "audited" column).
struct AuditNodeStats {
  uint64_t audited = 0;
  uint64_t violations = 0;
  /// Signed error of the most recent audit of this node.
  double last_error = 0.0;
  double mean_abs_error = 0.0;
  double p95_abs_error = 0.0;
  double max_abs_error = 0.0;
};

/// The shadow ground-truth auditor. Feed it rounds:
///
///   auditor.BeginRound(AuditSource::kQuery, sink, effective_t, now);
///   for (each estimated claim)
///     auditor.ObserveEstimate(node, reporter, estimate - truth,
///                             metric.Distance(truth, estimate));
///   auditor.EndRound();  // updates gauges, emits `accuracy_audit`
///
/// Not thread-safe (like the registry): one auditor per simulation.
class AccuracyAuditor {
 public:
  /// Gauges/counters are registered on `registry` immediately and cached;
  /// `journal` (optional) receives one `accuracy_audit` event per round.
  AccuracyAuditor(const AccuracyAuditConfig& config, size_t num_nodes,
                  MetricRegistry* registry, EventJournal* journal = nullptr);

  /// Starts a round audited against `threshold` (the query's effective T).
  /// `origin` is the query sink, or -1 for a sweep. Rolls the budget
  /// window when `t` has moved past it.
  void BeginRound(AuditSource source, int64_t origin, double threshold,
                  Time t);
  /// One estimated answer: representative `reporter` claimed a value for
  /// `node` that is `signed_error` away from ground truth, at metric
  /// distance `distance`. Violation iff distance > the round's threshold.
  /// Must be called between BeginRound and EndRound.
  void ObserveEstimate(NodeId node, NodeId reporter, double signed_error,
                       double distance);
  /// Closes the round: folds it into the counters/gauges and emits the
  /// journal event (one branch when no sink is installed).
  void EndRound();

  // -- Cumulative accessors ---------------------------------------------------
  uint64_t audited_total() const { return audited_; }
  uint64_t violations_total() const { return violations_; }
  uint64_t rounds() const { return rounds_; }
  /// Violations / audited in the current budget window (0 when empty).
  double violation_rate() const;
  /// violation_rate() / error_budget (0 when the budget is non-positive).
  double budget_burn() const;
  /// Network-wide |x − x̂| histogram (bucket-exact percentiles).
  const LogHistogram& error_histogram() const { return error_hist_; }
  /// Per-node cumulative stats; zeros when per_node is off or the node was
  /// never audited.
  AuditNodeStats NodeStats(NodeId node) const;
  /// Violations attributed to `reporter` across all rounds — the
  /// byzantine-representative detection signal (ROADMAP 4(c)).
  uint64_t ReporterViolations(NodeId reporter) const;
  size_t num_nodes() const { return num_nodes_; }
  const AccuracyAuditConfig& config() const { return config_; }

  /// Per-node error table + network summary (shell `\accuracy`).
  std::string ToTable() const;

 private:
  /// Slots of gauges_ (published by UpdateGauges).
  enum Slot : size_t {
    kViolationRate = 0,
    kBudgetBurn,
    kMaxAbsError,
    kMeanAbsError,
  };

  void UpdateGauges();

  const AccuracyAuditConfig config_;
  const size_t num_nodes_;
  EventJournal* const journal_;

  // Cached instrument handles (registered at construction; see
  // MetricRegistry's hot-path contract).
  GaugePack gauges_;
  Counter* audited_counter_;
  Counter* violations_counter_;
  Counter* rounds_counter_;

  // Cumulative state.
  LogHistogram error_hist_;
  uint64_t audited_ = 0;
  uint64_t violations_ = 0;
  uint64_t rounds_ = 0;
  std::vector<LogHistogram> node_hist_;       // per_node only
  std::vector<uint64_t> node_violations_;     // per_node only
  std::vector<double> node_last_error_;       // per_node only
  std::vector<uint64_t> reporter_violations_;

  // Tumbling budget window.
  Time window_start_ = 0;
  uint64_t window_audited_ = 0;
  uint64_t window_violations_ = 0;

  // Current round.
  bool in_round_ = false;
  AuditSource round_source_ = AuditSource::kQuery;
  int64_t round_origin_ = -1;
  double round_threshold_ = 0.0;
  Time round_time_ = 0;
  uint64_t round_audited_ = 0;
  uint64_t round_violations_ = 0;
  double round_sum_abs_ = 0.0;
  double round_max_abs_ = 0.0;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_ACCURACY_H_
