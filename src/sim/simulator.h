// The network simulator: binds the link model, energy accounting, the event
// queue and per-node message handlers. Protocol agents (election,
// maintenance, queries) are built on top of this interface.
//
// Faithfulness notes:
//  * every transmission is physically a broadcast; `Message::to` narrows the
//    intended recipient, and other nodes in range may snoop unicasts with a
//    configurable probability (§3: nodes build models by snooping);
//  * loss is sampled independently per (message, receiver);
//  * dead nodes (empty battery or forced kill) neither send nor receive;
//  * sending charges the sender one tx cost; a send that exhausts the
//    battery still goes out (the node dies transmitting).
#ifndef SNAPQ_SIM_SIMULATOR_H_
#define SNAPQ_SIM_SIMULATOR_H_

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/energy.h"
#include "net/link_model.h"
#include "net/message.h"
#include "net/node_id.h"
#include "net/trace_context.h"
#include "obs/energy_ledger.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"
#include "obs/topo.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace snapq {

/// Simulator-wide knobs.
struct SimConfig {
  /// Default per-delivery loss probability (the paper's P_loss).
  double loss_probability = 0.0;
  /// Probability that a node in range overhears a unicast not addressed to
  /// it (§6.3 uses 5%).
  double snoop_probability = 0.0;
  /// Energy model; use EnergyModel::Unlimited() to ignore energy.
  EnergyModel energy = EnergyModel::Unlimited();
  /// Root seed for all randomness drawn by the simulator (loss, snooping).
  uint64_t seed = 1;
};

/// Discrete-event sensor network simulator.
class Simulator {
 public:
  /// Handler invoked on message delivery. `snooped` is true when the node
  /// overheard a unicast addressed to someone else.
  using MessageHandler = std::function<void(const Message&, bool snooped)>;

  Simulator(std::vector<Point> positions, std::vector<double> ranges,
            const SimConfig& config);

  size_t num_nodes() const { return links_.num_nodes(); }
  Time now() const { return queue_.now(); }

  /// Installs the delivery callback for `id`. A node without a handler
  /// silently drops deliveries (useful in unit tests).
  void SetHandler(NodeId id, MessageHandler handler);

  /// Schedules an action at absolute time t >= now().
  void ScheduleAt(Time t, std::function<void()> action);
  /// Schedules an action `delta` >= 0 time units from now.
  void ScheduleAfter(Time delta, std::function<void()> action);

  /// Transmits `msg` (msg.from must be a live node). Deliveries are
  /// scheduled at now() (radio latency is negligible at the paper's
  /// time-unit granularity) after loss sampling. Returns false if the
  /// sender was dead and nothing was transmitted.
  bool Send(const Message& msg);

  /// Charges `id` one cache-maintenance CPU operation.
  void ChargeCacheOp(NodeId id);

  /// Drains `amount` energy units from `id` directly (used by layers that
  /// account traffic in aggregate, e.g. the query executor's tree traffic).
  void Drain(NodeId id, double amount);

  /// Drains `amount` from `id`, attributed in the energy ledger as a
  /// transmission of `as_type` (aggregate accounting that stands in for
  /// real traffic — the query executor's per-reply tree hops).
  void DrainAs(NodeId id, double amount, MessageType as_type);

  bool alive(NodeId id) const { return batteries_[id].alive(); }
  const Battery& battery(NodeId id) const { return batteries_[id]; }
  /// Forced node failure (failure injection in tests/experiments). The
  /// discarded charge is attributed to the ledger's "killed" cause so the
  /// conservation invariant survives failure injection.
  void Kill(NodeId id);

  /// Moves node `id` (mobility): subsequent transmissions use the new
  /// position's reachability.
  void MoveNode(NodeId id, const Point& position) {
    links_.SetPosition(id, position);
  }

  /// Failure injection: additionally drops every delivery of `type` with
  /// probability `p` (independent of the link loss). Lets tests sever one
  /// protocol path — e.g. lose every Accept — and check the recovery rules.
  void SetTypeLoss(MessageType type, double p) {
    type_loss_[static_cast<size_t>(type)] = p;
  }

  /// Failure injection: changes the uniform link loss probability mid-run
  /// (e.g. a soak driver simulating a loss burst or a partition).
  void SetLossProbability(double p) { config_.loss_probability = p; }

  const LinkModel& links() const { return links_; }
  LinkModel& mutable_links() { return links_; }
  const SimConfig& config() const { return config_; }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// The simulation's metric registry: protocol layers register their own
  /// named instruments here (the Metrics façade above is backed by it).
  obs::MetricRegistry& registry() { return registry_; }
  const obs::MetricRegistry& registry() const { return registry_; }

  /// The structured event journal. Disabled (null sink) by default;
  /// attach a sink to record protocol events as JSONL.
  obs::EventJournal& journal() { return journal_; }
  const obs::EventJournal& journal() const { return journal_; }

  /// Number of messages node `id` has transmitted (Fig 15 reports the
  /// per-node average during maintenance).
  uint64_t messages_sent_by(NodeId id) const { return sent_by_[id]; }
  /// Resets the per-node sent counters (metrics object is left untouched).
  void ResetPerNodeCounters();

  Rng& rng() { return rng_; }

  /// Attaches an event tracer (nullptr detaches). Not owned.
  void SetTrace(TraceRecorder* trace) { trace_ = trace; }

  /// Attaches a causal tracer (nullptr detaches). Not owned. With a tracer
  /// attached, Send mints a message span per transmission (child of the
  /// sender's context), stamps it on every delivered copy, and records
  /// deliver/snoop/loss outcomes; handlers and ScheduleAt callbacks run
  /// under the causal context that scheduled them.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() { return tracer_; }

  /// Attaches an energy ledger (nullptr detaches). Not owned. With a
  /// ledger attached every charge site reports its applied drain — typed
  /// by message, direction and (when tracing) causal root kind; without
  /// one each site pays a single null-pointer branch.
  void SetEnergyLedger(obs::EnergyLedger* ledger) { energy_ledger_ = ledger; }
  obs::EnergyLedger* energy_ledger() { return energy_ledger_; }

  /// Attaches a per-link observer (nullptr detaches). Not owned. With one
  /// attached, every addressed delivery/loss and every snoop records the
  /// directed link's outcome (a fixed-table probe, never allocating);
  /// without one each site pays a single null-pointer branch.
  void SetLinkObserver(obs::LinkObserver* observer) {
    link_observer_ = observer;
  }
  obs::LinkObserver* link_observer() { return link_observer_; }

  /// True when a tracer is attached and its sampling is non-zero.
  bool tracing_enabled() const {
    return tracer_ != nullptr && tracer_->enabled();
  }

  /// The causal context of the event currently executing (unsampled when
  /// tracing is off or the current event has no traced cause).
  const TraceContext& current_trace() const { return current_trace_; }

  /// Mints a trace root at now() with the current context recorded as a
  /// causal link. Returns the new root context — or, when the root was not
  /// sampled (tracing off / sampling draw failed / budget gone), the
  /// *current* context unchanged, so callers can scope it unconditionally
  /// without severing an enclosing trace.
  TraceContext MintTraceRoot(obs::TraceRootKind kind, NodeId node,
                             int64_t value = 0);

  /// RAII: installs `ctx` as the simulator's current causal context for
  /// the scope's lifetime (plain POD swap — safe to use unconditionally).
  class TraceScope {
   public:
    TraceScope(Simulator& sim, const TraceContext& ctx)
        : sim_(sim), saved_(sim.current_trace_) {
      sim.current_trace_ = ctx;
    }
    ~TraceScope() { sim_.current_trace_ = saved_; }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

   private:
    Simulator& sim_;
    TraceContext saved_;
  };

  // Event loop control.
  bool RunNext() { return queue_.RunNext(); }
  void RunUntil(Time t) { queue_.RunUntil(t); }
  void RunAll() { queue_.RunAll(); }
  bool idle() const { return queue_.empty(); }

 private:
  /// A pooled in-flight delivery: the message copy plus its addressing.
  /// Pooling reuses the Message's vector payloads (ids/epochs/values)
  /// across deliveries, so a steady-state Send schedules each receiver's
  /// delivery with zero heap allocations (the closure pushed into the
  /// event queue is just {this, event*} and stays inline).
  struct DeliveryEvent {
    Message msg;
    NodeId receiver = kInvalidNode;
    bool snooped = false;
  };

  void Deliver(NodeId to, const Message& msg, bool snooped);
  /// Ledger attribution slot of `ctx`'s trace root (-1 when untraced).
  int RootSlotOf(const TraceContext& ctx) const;
  /// Death bookkeeping shared by every charge site: net.node_deaths,
  /// ledger death tick, and the frozen-schema node_death journal event.
  void OnNodeDeath(NodeId id, const char* cause);
  /// Pops a pooled delivery record (allocating only when the pool is dry).
  DeliveryEvent* AcquireDelivery();
  /// Runs one pooled delivery and returns the record to the pool.
  void RunDelivery(DeliveryEvent* event);

  LinkModel links_;
  SimConfig config_;
  EventQueue queue_;
  obs::MetricRegistry registry_;  // must precede metrics_ (façade over it)
  obs::EventJournal journal_;
  Metrics metrics_;
  Rng rng_;
  std::vector<Battery> batteries_;
  std::vector<MessageHandler> handlers_;
  std::vector<uint64_t> sent_by_;
  /// Owns every delivery record ever created; free_deliveries_ holds the
  /// currently idle ones. Records are stable on the heap (unique_ptr) so
  /// scheduled closures can carry raw pointers across heap sifts.
  std::vector<std::unique_ptr<DeliveryEvent>> delivery_pool_;
  std::vector<DeliveryEvent*> free_deliveries_;
  std::array<double, kNumMessageTypes> type_loss_{};
  TraceRecorder* trace_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::EnergyLedger* energy_ledger_ = nullptr;
  obs::LinkObserver* link_observer_ = nullptr;
  TraceContext current_trace_{};
};

}  // namespace snapq

#endif  // SNAPQ_SIM_SIMULATOR_H_
