file(REMOVE_RECURSE
  "CMakeFiles/election_walkthrough.dir/election_walkthrough.cpp.o"
  "CMakeFiles/election_walkthrough.dir/election_walkthrough.cpp.o.d"
  "election_walkthrough"
  "election_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
