// Snapshot health monitoring: turns point-in-time protocol state samples
// into registry gauges and journal events so dashboards (and the shell's
// \health command) can watch representation quality drift:
//
//   health.coverage          fraction of live nodes that are ACTIVE or
//                            PASSIVE (i.e. inside the snapshot);
//   health.violation_rate    model violations detected since the previous
//                            sample (per-epoch rate);
//   health.reelection_rate   local re-elections since the previous sample;
//   health.spurious_reps     spurious representation entries right now;
//   health.model_staleness   mean ticks since a representative last
//                            observed each member it represents.
//
// The monitor lives in obs and consumes plain HealthSample values; the
// snapshot layer fills them in (snapshot/health_probe.h) so obs stays
// free of protocol dependencies.
#ifndef SNAPQ_OBS_HEALTH_MONITOR_H_
#define SNAPQ_OBS_HEALTH_MONITOR_H_

#include <cstdint>
#include <string>

#include "net/node_id.h"
#include "obs/gauge_pack.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"

namespace snapq::obs {

/// One point-in-time observation of snapshot health.
struct HealthSample {
  uint64_t num_nodes = 0;
  uint64_t num_live = 0;
  uint64_t num_active = 0;     ///< representatives
  uint64_t num_passive = 0;    ///< represented nodes
  uint64_t num_undefined = 0;  ///< live nodes outside the snapshot
  uint64_t num_spurious = 0;   ///< stale representation entries
  /// Cumulative protocol counters at sample time (monitor differences
  /// successive samples to derive rates).
  uint64_t violations = 0;
  uint64_t reelections = 0;
  /// Mean ticks since a representative last observed each represented
  /// member (0 when nothing is represented).
  double mean_model_staleness = 0.0;
};

class SnapshotHealthMonitor {
 public:
  /// Gauges are registered on `registry` immediately; `journal` (optional)
  /// receives one "health.sample" event per Observe call.
  explicit SnapshotHealthMonitor(MetricRegistry* registry,
                                 EventJournal* journal = nullptr);

  /// Ingests a sample taken at sim-time `t`.
  void Observe(const HealthSample& sample, Time t);

  uint64_t num_samples() const { return num_samples_; }
  Time last_time() const { return last_time_; }
  const HealthSample& last_sample() const { return last_; }

  /// Derived values of the most recent sample.
  double coverage() const;
  double violation_rate() const { return violation_rate_; }
  double reelection_rate() const { return reelection_rate_; }

  /// One-screen summary (shell `\health`).
  std::string ToString() const;

 private:
  /// Slots of gauges_ (published in Observe).
  enum Slot : size_t {
    kCoverage = 0,
    kViolationRate,
    kReelectionRate,
    kSpurious,
    kStaleness,
  };

  EventJournal* journal_;
  GaugePack gauges_;
  Counter* samples_counter_;
  HealthSample last_;
  Time last_time_ = 0;
  uint64_t num_samples_ = 0;
  double violation_rate_ = 0.0;
  double reelection_rate_ = 0.0;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_HEALTH_MONITOR_H_
