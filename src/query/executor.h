// Query execution over the simulated network, with the §6.2 accounting:
//
//  * regular execution — every live node matching the spatial predicate
//    responds; the aggregation tree routes partial results to the sink;
//  * snapshot execution (USE SNAPSHOT) — a node responds iff it is not
//    represented and matches the predicate, or it represents a node that
//    matches; represented (PASSIVE) nodes stay idle, though they may still
//    be asked to route;
//  * participants = responders plus every node on a responder's routing
//    path (routers included, as the paper counts them);
//  * coverage = measurements available to the query / measurements an
//    infinite-battery network would deliver (Fig 10's metric);
//  * duplicate claims from spurious representatives are filtered by latest
//    election epoch, "transparently from the application" (§3).
#ifndef SNAPQ_QUERY_EXECUTOR_H_
#define SNAPQ_QUERY_EXECUTOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "query/ast.h"
#include "query/catalog.h"
#include "query/routing_tree.h"
#include "sim/simulator.h"
#include "snapshot/agent.h"

namespace snapq {

namespace obs {
class AccuracyAuditor;
}  // namespace obs

/// One returned row (drill-through queries).
struct QueryRow {
  NodeId loc = kInvalidNode;   ///< the node whose measurement this is
  NodeId reporter = kInvalidNode;  ///< who produced it (rep or the node)
  double value = 0.0;
  bool estimated = false;      ///< true when a representative's model answered
  /// Estimate − ground truth (signed), on estimated rows — the simulator
  /// knows the represented node's true current reading even though the
  /// network never transmitted it. Absent on self-reported rows.
  std::optional<double> model_error;
};

/// Sentinel epoch for self-reports: a node's own reading always supersedes
/// any representative's claim about it.
inline constexpr int64_t kQueryClaimSelfEpoch =
    std::numeric_limits<int64_t>::max();

/// One deduplicated claim "reporter says node j's value is v". `epoch` is
/// the election epoch of the representation backing the claim
/// (kQueryClaimSelfEpoch for a node reporting its own reading).
struct QueryClaim {
  NodeId reporter = kInvalidNode;
  int64_t epoch = -1;
  double value = 0.0;
  bool estimated = false;
};

/// Answer provenance + §6.2 cost of one query round. Produced two ways:
///
///  * PlanRegion() — a side-effect-free *estimate* from the current
///    snapshot state (EXPLAIN's plan);
///  * ExecutionOptions::provenance — *actuals* captured while ExecuteRegion
///    runs (EXPLAIN ANALYZE joins the two).
///
/// Filling one allocates; leave the hook null on hot paths — a null hook
/// adds zero heap allocations to execution (see explain_alloc_test).
struct QueryProvenance {
  /// Nodes matching the predicate (dead or alive).
  size_t matching_nodes = 0;
  /// Responders that can reach the sink.
  size_t responders = 0;
  /// Responders plus routers on their paths.
  size_t participants = 0;
  /// Nodes with a route to the sink (the flood's reach).
  size_t reachable_nodes = 0;
  /// kQueryReply transmissions the round induces: one per participant,
  /// the sink excluded (it hands the result to the base station).
  size_t messages = 0;
  /// Energy those messages drain (0 unless charge_energy).
  double energy = 0.0;
  /// Max routing-tree depth over reachable responders; -1 when none.
  int tree_depth = -1;
  /// Winning (deduplicated) claims, one per covered node.
  std::map<NodeId, QueryClaim> claims;
  /// Routing-tree depth per node; -1 = unreachable from the sink.
  std::vector<int> depth;
};

/// Result + cost accounting of one query round.
struct QueryResult {
  /// Nodes that transmitted for this query (responders + routers).
  size_t participants = 0;
  /// Nodes that produced data (themselves or on behalf of others).
  size_t responders = 0;
  /// Nodes matching the predicate, dead or alive (coverage denominator).
  size_t matching_nodes = 0;
  /// Measurements delivered (coverage numerator).
  size_t covered_nodes = 0;
  /// covered / matching, 1.0 for an empty region.
  double coverage = 1.0;

  /// Aggregate answer (aggregate queries only).
  std::optional<double> aggregate;
  /// Ground-truth aggregate over all matching nodes' true current values
  /// (dead or alive) — for error reporting in experiments.
  std::optional<double> true_aggregate;

  /// Drill-through rows, ordered by loc.
  std::vector<QueryRow> rows;
};

/// Per-execution knobs.
struct ExecutionOptions {
  NodeId sink = 0;
  /// Charge one transmission per participant (the paper's Fig 10
  /// accounting). Leave false for pure counting experiments.
  bool charge_energy = false;
  /// Bias routing-tree parent selection toward representatives (§3.1).
  bool favor_representatives = false;
  /// §5: under severe energy constraints passive nodes "ask their
  /// representative to replace them on all user queries" — they sleep
  /// entirely and do not even route. Snapshot queries then traverse
  /// representatives (and undecided nodes) only; coverage may drop where
  /// the active subgraph disconnects. Ignored for regular queries.
  bool passive_nodes_sleep = false;
  /// Provenance hook: when non-null, ExecuteRegion fills it with the
  /// round's actual claims, routing depths and cost. Null (the default)
  /// costs one branch and no allocations.
  QueryProvenance* provenance = nullptr;
  /// Accuracy-audit hook: when non-null, every snapshot round compares
  /// each estimated claim against the represented node's true reading (the
  /// simulator knows it) and feeds the residuals into the auditor. Same
  /// discipline as the provenance hook: null (the default) costs one
  /// branch and no heap allocations (see the audit allocation test) — and
  /// the auditor's observe path is itself allocation-free, so enabling it
  /// does not disturb the query path either.
  obs::AccuracyAuditor* audit = nullptr;
  /// The effective threshold audited estimates are judged against: the
  /// per-query USE SNAPSHOT ERROR override when the caller filled it
  /// (Execute and ExplainQuery do), else the agents' configured T.
  std::optional<double> audit_threshold;
};

/// Executes queries against the agents' current state.
class QueryExecutor {
 public:
  QueryExecutor(Simulator* sim,
                std::vector<std::unique_ptr<SnapshotAgent>>* agents,
                Catalog catalog);

  /// Parses, validates, resolves and executes `sql` (single round).
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 const ExecutionOptions& options);

  /// Executes a parsed query (single round).
  Result<QueryResult> Execute(const QuerySpec& spec,
                              const ExecutionOptions& options);

  /// Core entry point: executes one round over `region`.
  QueryResult ExecuteRegion(const Rect& region, bool use_snapshot,
                            AggregateFunction aggregate,
                            const ExecutionOptions& options);

  /// Side-effect-free planning: the routing tree, responder set, winning
  /// claims and §6.2 cost the executor would use for one round executed
  /// right now. Nothing is transmitted, charged or journaled — this is
  /// EXPLAIN's estimate, joined against the actuals captured through
  /// ExecutionOptions::provenance by EXPLAIN ANALYZE.
  QueryProvenance PlanRegion(const Rect& region, bool use_snapshot,
                             const ExecutionOptions& options) const;

  /// The nodes that respond to this query, per the snapshot rule
  /// (public for the EXPLAIN planner).
  std::vector<NodeId> CollectResponders(const Rect& region,
                                        bool use_snapshot) const;

  const Catalog& catalog() const { return catalog_; }
  Catalog& catalog() { return catalog_; }

  Simulator& sim() { return *sim_; }
  const std::vector<std::unique_ptr<SnapshotAgent>>& agents() const {
    return *agents_;
  }

 private:
  /// Deduplicates claims from `responders` over the matching nodes by
  /// latest election epoch (spurious-representative filtering, §3).
  void CollectClaims(bool use_snapshot,
                     const std::vector<NodeId>& responders,
                     const std::vector<bool>& matching,
                     std::map<NodeId, QueryClaim>* claims) const;

  Simulator* const sim_;
  std::vector<std::unique_ptr<SnapshotAgent>>* const agents_;
  Catalog catalog_;
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_EXECUTOR_H_
