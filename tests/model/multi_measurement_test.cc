#include "model/multi_measurement.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

CacheConfig Pairs(size_t n) {
  CacheConfig config;
  config.capacity_bytes = n * 8;
  return config;
}

TEST(MultiSensorStoreTest, TracksOwnValuesPerMeasurement) {
  MultiSensorStore store(0, 3, Pairs(16));
  store.SetOwnValue(0, 20.5, 1);  // temperature
  store.SetOwnValue(1, 0.4, 1);   // humidity
  store.SetOwnValue(2, 5.8, 1);   // wind
  EXPECT_DOUBLE_EQ(store.own_value(0), 20.5);
  EXPECT_DOUBLE_EQ(store.own_value(1), 0.4);
  EXPECT_DOUBLE_EQ(store.own_value(2), 5.8);
  EXPECT_EQ(store.num_measurements(), 3u);
}

TEST(MultiSensorStoreTest, MeasurementsLearnIndependentModels) {
  MultiSensorStore store(0, 2, Pairs(16));
  // Temperature: neighbor = 2 * mine. Humidity: neighbor = mine + 5.
  store.SetOwnValue(0, 10.0, 0);
  store.SetOwnValue(1, 1.0, 0);
  store.Observe(7, 0, 20.0, 0);
  store.Observe(7, 1, 6.0, 0);
  store.SetOwnValue(0, 20.0, 1);
  store.SetOwnValue(1, 2.0, 1);
  store.Observe(7, 0, 40.0, 1);
  store.Observe(7, 1, 7.0, 1);

  store.SetOwnValue(0, 30.0, 2);
  store.SetOwnValue(1, 3.0, 2);
  ASSERT_TRUE(store.Estimate(7, 0).has_value());
  ASSERT_TRUE(store.Estimate(7, 1).has_value());
  EXPECT_NEAR(*store.Estimate(7, 0), 60.0, 1e-9);
  EXPECT_NEAR(*store.Estimate(7, 1), 8.0, 1e-9);
}

TEST(MultiSensorStoreTest, MeasurementsDoNotBleedAcrossIds) {
  MultiSensorStore store(0, 2, Pairs(16));
  store.SetOwnValue(0, 1.0, 0);
  store.Observe(3, 0, 10.0, 0);
  EXPECT_TRUE(store.Estimate(3, 0).has_value());
  EXPECT_FALSE(store.Estimate(3, 1).has_value());
}

TEST(MultiSensorStoreTest, SharedBudgetAcrossMeasurements) {
  // 4 pairs total; feeding 2 measurements x 2 neighbors x many pairs must
  // never exceed the shared budget.
  MultiSensorStore store(0, 2, Pairs(4));
  for (Time t = 0; t < 20; ++t) {
    const double v = static_cast<double>(t);
    store.SetOwnValue(0, v, t);
    store.SetOwnValue(1, 2.0 * v, t);
    store.Observe(1, 0, 3.0 * v, t);
    store.Observe(1, 1, 4.0 * v, t);
    store.Observe(2, 0, 5.0 * v, t);
    store.Observe(2, 1, 6.0 * v, t);
    ASSERT_LE(store.cache().used_pairs(), 4u);
  }
}

TEST(MultiSensorStoreTest, CanRepresentPerMeasurement) {
  MultiSensorStore store(0, 2, Pairs(16));
  store.SetOwnValue(0, 1.0, 0);
  store.Observe(5, 0, 10.0, 0);
  store.SetOwnValue(0, 2.0, 1);
  store.Observe(5, 0, 20.0, 1);
  store.SetOwnValue(0, 3.0, 2);
  const ErrorMetric sse = ErrorMetric::SumSquared();
  EXPECT_TRUE(store.CanRepresent(5, 0, 30.5, sse, 1.0));
  EXPECT_FALSE(store.CanRepresent(5, 0, 32.0, sse, 1.0));
  // No humidity model: cannot represent that measurement at any threshold.
  EXPECT_FALSE(store.CanRepresent(5, 1, 0.0, sse, 1e9));
}

TEST(MultiSensorStoreTest, CanRepresentAllRequiresEveryMeasurement) {
  MultiSensorStore store(0, 2, Pairs(16));
  for (Time t = 0; t < 2; ++t) {
    const double v = static_cast<double>(t);
    store.SetOwnValue(0, 1.0 + v, t);
    store.SetOwnValue(1, 10.0 + v, t);
    store.Observe(5, 0, 2.0 * (1.0 + v), t);
    store.Observe(5, 1, 10.0 + v + 3.0, t);
  }
  store.SetOwnValue(0, 4.0, 3);
  store.SetOwnValue(1, 13.0, 3);
  const ErrorMetric sse = ErrorMetric::SumSquared();
  // True values: temp 8.0, humidity 16.0.
  EXPECT_TRUE(store.CanRepresentAll(5, {8.1, 16.1}, sse, {1.0, 1.0}));
  // One measurement out of bounds sinks the whole representation.
  EXPECT_FALSE(store.CanRepresentAll(5, {8.1, 26.0}, sse, {1.0, 1.0}));
  EXPECT_FALSE(store.CanRepresentAll(5, {18.0, 16.1}, sse, {1.0, 1.0}));
  // Per-measurement thresholds.
  EXPECT_TRUE(store.CanRepresentAll(5, {8.1, 18.0}, sse, {1.0, 5.0}));
}

TEST(MultiSensorStoreDeathTest, BoundsChecked) {
  MultiSensorStore store(0, 2, Pairs(4));
  EXPECT_DEATH(store.SetOwnValue(2, 1.0, 0), "SNAPQ_CHECK");
  EXPECT_DEATH(store.own_value(5), "SNAPQ_CHECK");
  EXPECT_DEATH(MultiSensorStore(0, 0, Pairs(4)), "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
