// Shared helpers for the experiment drivers in bench/. Each driver
// regenerates one table or figure of the paper and prints the same
// rows/series the paper reports (averaged over the paper's 10 repetitions,
// overridable via SNAPQ_REPETITIONS or --quick).
#ifndef SNAPQ_BENCH_BENCH_UTIL_H_
#define SNAPQ_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_registry.h"
#include "bench_report.h"
#include "obs/energy_ledger.h"
#include "obs/metric_registry.h"
#include "obs/perfetto_export.h"
#include "obs/topo.h"
#include "obs/tracer.h"

namespace snapq::bench {

/// Number of repetitions per data point (§6.1: "We repeated each
/// experiment ten times and present the average values").
inline constexpr int kRepetitions = 10;
inline constexpr uint64_t kBaseSeed = 1;

/// kRepetitions unless the SNAPQ_REPETITIONS environment variable names a
/// positive integer — CI quick passes set it instead of editing sources.
inline int Repetitions() {
  if (const char* env = std::getenv("SNAPQ_REPETITIONS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<int>(parsed);
  }
  return kRepetitions;
}

inline void PrintHeader(const char* experiment, const char* setup,
                        int repetitions) {
  std::printf("=== %s ===\n", experiment);
  std::printf("%s\n", setup);
  std::printf("(averages over %d seeded repetitions)\n\n", repetitions);
}

/// Where a driver's `<name><suffix>` sidecar goes. The name is always the
/// binary's basename (argv0 is canonicalized first, so a relative
/// invocation from another CWD or a symlinked driver cannot mislabel the
/// file); the directory is `SNAPQ_METRICS_DIR` when set, else the
/// directory the binary resolves to.
inline std::string SidecarPath(const char* argv0, const char* suffix) {
  namespace fs = std::filesystem;
  fs::path exe(argv0 != nullptr && *argv0 != '\0' ? argv0 : "driver");
  std::error_code ec;
  const fs::path resolved = fs::weakly_canonical(exe, ec);
  if (!ec && !resolved.empty()) exe = resolved;
  std::string name = exe.filename().string();
  if (name.empty()) name = "driver";
  fs::path dir = exe.parent_path();
  if (const char* env = std::getenv("SNAPQ_METRICS_DIR");
      env != nullptr && *env != '\0') {
    dir = env;
  }
  if (dir.empty()) dir = ".";
  return (dir / (name + suffix)).string();
}

/// Atomically replaces `path` with `contents`: stages into a `.tmp.<pid>`
/// sibling and renames over the target, so a reader (or a concurrently
/// running driver pointed at the same SNAPQ_METRICS_DIR) never observes a
/// half-written sidecar. Returns false when the write or rename failed.
inline bool WriteFileAtomic(const std::string& path,
                            const std::string& contents) {
  namespace fs = std::filesystem;
  const std::string staged =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(staged);
    if (!out) return false;
    out << contents;
    if (!out.good()) {
      std::error_code ec;
      fs::remove(staged, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(staged, path, ec);
  if (ec) {
    std::error_code cleanup;
    fs::remove(staged, cleanup);
    return false;
  }
  return true;
}

/// Writes the process-wide metric registry (every trial merges its
/// simulation registry into it) as a machine-readable sidecar:
/// `<basename(argv0)>.metrics.json` (see SidecarPath). Called by
/// Driver's destructor so each table/figure run leaves its instruments on
/// disk.
inline void WriteMetricsSidecar(const char* argv0) {
  const std::string path = SidecarPath(argv0, ".metrics.json");
  if (!WriteFileAtomic(path, obs::GlobalMetrics().ToJson() + '\n')) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::printf("\nmetrics sidecar: %s\n", path.c_str());
}

/// Writes `tracer`'s spans as Chrome trace-event JSON to
/// `<basename(argv0)>.trace.json` — drag it into ui.perfetto.dev to see
/// per-node tracks with message arrows.
inline void WriteTraceSidecar(const char* argv0, const obs::Tracer& tracer) {
  const std::string path = SidecarPath(argv0, ".trace.json");
  if (!obs::WriteChromeTraceFile(tracer, path)) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::printf("trace sidecar: %s (%zu spans, %llu traces)\n", path.c_str(),
              tracer.spans().size(),
              static_cast<unsigned long long>(tracer.num_traces()));
}

/// Writes an energy ledger snapshot as the schema-versioned
/// `<basename(argv0)>.energymap.json` sidecar (node positions, per-cause
/// joule breakdown, remaining charge, lifetime forecasts). Consumed by
/// tools/energy_report.py — including the CI energy-savings gate.
inline void WriteEnergyMapSidecar(const char* argv0,
                                  const obs::EnergyLedgerSnapshot& snap,
                                  const std::vector<Point>& positions,
                                  const obs::EnergyMapMeta& meta) {
  const std::string path = SidecarPath(argv0, ".energymap.json");
  if (!WriteFileAtomic(path, obs::EnergyMapToJson(snap, positions, meta))) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::printf("energymap sidecar: %s (%zu nodes, %llu runs)\n", path.c_str(),
              snap.num_nodes, static_cast<unsigned long long>(snap.runs));
}

/// Writes a topology snapshot as the schema-versioned
/// `<basename(argv0)>.topo.json` sidecar (structural summary, per-node
/// positions/components, bridge and articulation lists, observed link
/// quality). Consumed by tools/topo_report.py — including the CI
/// tools-check gate.
inline void WriteTopoSidecar(const char* argv0,
                             const obs::TopologySnapshot& snap,
                             const std::vector<Point>& positions,
                             const std::vector<obs::LinkStats>& links,
                             const obs::TopoMapMeta& meta) {
  const std::string path = SidecarPath(argv0, ".topo.json");
  if (!WriteFileAtomic(path, obs::TopoMapToJson(snap, positions, links,
                                                meta))) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::printf("topo sidecar: %s (%zu nodes, %zu partition%s, %zu links)\n",
              path.c_str(), snap.num_nodes, snap.partitions,
              snap.partitions == 1 ? "" : "s", links.size());
}

/// RAII frame around one driver body: prints the standard header on entry
/// and writes the metrics sidecar on exit (when the context asks for
/// sidecars), replacing the PrintHeader/WriteMetricsSidecar pairs every
/// driver used to repeat. Trace sidecars go through WriteTrace so only
/// the drivers that trace pay for it.
class Driver {
 public:
  Driver(const RunContext& ctx, const char* experiment, const char* setup)
      : ctx_(ctx) {
    PrintHeader(experiment, setup, ctx.repetitions);
    if (ctx.quick) {
      std::printf("(quick mode: repetitions and horizons scaled down)\n\n");
    }
  }

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  ~Driver() {
    if (ctx_.write_sidecars) WriteMetricsSidecar(SidecarBase().c_str());
  }

  void WriteTrace(const obs::Tracer& tracer) const {
    if (ctx_.write_sidecars) WriteTraceSidecar(SidecarBase().c_str(), tracer);
  }

  /// Writes the `.energymap.json` sidecar, stamping the benchmark name,
  /// git sha and quick flag from the run context. `t` is the sim tick the
  /// snapshot was taken at; `extras` carries driver-specific scalars
  /// (AUCs, savings ratios) for the report tooling.
  void WriteEnergyMap(
      const obs::EnergyLedgerSnapshot& snap,
      const std::vector<Point>& positions, Time t,
      std::vector<std::pair<std::string, double>> extras) const {
    if (!ctx_.write_sidecars) return;
    obs::EnergyMapMeta meta;
    meta.benchmark = ctx_.name;
    meta.git_sha = GitSha();
    meta.quick = ctx_.quick;
    meta.t = t;
    meta.extras = std::move(extras);
    WriteEnergyMapSidecar(SidecarBase().c_str(), snap, positions, meta);
  }

  /// Writes the `.topo.json` sidecar, stamping the benchmark name, git sha
  /// and quick flag from the run context. `t` is the sim tick the snapshot
  /// was analyzed at; `extras` carries driver-specific scalars (per-range
  /// partition counts, horizons) for the report tooling.
  void WriteTopoMap(const obs::TopologySnapshot& snap,
                    const std::vector<Point>& positions,
                    const std::vector<obs::LinkStats>& links, Time t,
                    std::vector<std::pair<std::string, double>> extras) const {
    if (!ctx_.write_sidecars) return;
    obs::TopoMapMeta meta;
    meta.benchmark = ctx_.name;
    meta.git_sha = GitSha();
    meta.quick = ctx_.quick;
    meta.t = t;
    meta.extras = std::move(extras);
    WriteTopoSidecar(SidecarBase().c_str(), snap, positions, links, meta);
  }

 private:
  /// Standalone runs label sidecars by binary path; harness runs (empty
  /// argv0) fall back to the benchmark name, resolved against the CWD or
  /// SNAPQ_METRICS_DIR by SidecarPath.
  std::string SidecarBase() const {
    return ctx_.argv0.empty() ? ctx_.name : ctx_.argv0;
  }

  const RunContext& ctx_;
};

}  // namespace snapq::bench

#endif  // SNAPQ_BENCH_BENCH_UTIL_H_
