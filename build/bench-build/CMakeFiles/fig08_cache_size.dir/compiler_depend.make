# Empty compiler generated dependencies file for fig08_cache_size.
# This may be replaced when dependencies are built.
