#include "query/parser.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(ParserTest, PaperExampleQuery) {
  // The query from §3.1 of the paper (modulo its typos).
  const auto q = ParseQuery(
      "SELECT loc, temperature FROM sensors "
      "WHERE loc IN SOUTH_EAST_QUADRANT "
      "SAMPLE INTERVAL 1s FOR 5min USE SNAPSHOT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[0].column, "loc");
  EXPECT_EQ(q->select[1].column, "temperature");
  EXPECT_EQ(q->table, "sensors");
  ASSERT_TRUE(q->region_name.has_value());
  EXPECT_EQ(*q->region_name, "SOUTH_EAST_QUADRANT");
  EXPECT_DOUBLE_EQ(q->sample_interval, 1.0);
  EXPECT_DOUBLE_EQ(q->duration, 300.0);
  EXPECT_TRUE(q->use_snapshot);
  EXPECT_FALSE(q->snapshot_threshold.has_value());
  EXPECT_FALSE(q->IsAggregate());
}

TEST(ParserTest, MinimalQuery) {
  const auto q = ParseQuery("select value from sensors");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select.size(), 1u);
  EXPECT_FALSE(q->use_snapshot);
  EXPECT_FALSE(q->region.has_value());
  EXPECT_FALSE(q->region_name.has_value());
}

TEST(ParserTest, SelectStar) {
  const auto q = ParseQuery("SELECT * FROM sensors");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].column, "*");
}

TEST(ParserTest, Aggregates) {
  for (const auto& [sql, agg] :
       std::vector<std::pair<std::string, AggregateFunction>>{
           {"SELECT sum(value) FROM sensors", AggregateFunction::kSum},
           {"SELECT avg(value) FROM sensors", AggregateFunction::kAvg},
           {"SELECT min(value) FROM sensors", AggregateFunction::kMin},
           {"SELECT max(value) FROM sensors", AggregateFunction::kMax},
           {"SELECT count(*) FROM sensors", AggregateFunction::kCount}}) {
    const auto q = ParseQuery(sql);
    ASSERT_TRUE(q.ok()) << sql;
    EXPECT_TRUE(q->IsAggregate()) << sql;
    EXPECT_EQ(q->TheAggregate(), agg) << sql;
  }
}

TEST(ParserTest, AggregateWithLocColumn) {
  const auto q = ParseQuery("SELECT loc, max(value) FROM sensors");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->TheAggregate(), AggregateFunction::kMax);
}

TEST(ParserTest, RectRegion) {
  const auto q = ParseQuery(
      "SELECT value FROM sensors WHERE loc IN RECT(0.1, 0.2, 0.5, 0.8)");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->region.has_value());
  EXPECT_DOUBLE_EQ(q->region->min_x, 0.1);
  EXPECT_DOUBLE_EQ(q->region->min_y, 0.2);
  EXPECT_DOUBLE_EQ(q->region->max_x, 0.5);
  EXPECT_DOUBLE_EQ(q->region->max_y, 0.8);
}

TEST(ParserTest, SnapshotWithPerQueryThreshold) {
  // §3.1 extension: each query may define its own error threshold.
  const auto q =
      ParseQuery("SELECT avg(value) FROM sensors USE SNAPSHOT ERROR 2.5");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->use_snapshot);
  ASSERT_TRUE(q->snapshot_threshold.has_value());
  EXPECT_DOUBLE_EQ(*q->snapshot_threshold, 2.5);
}

TEST(ParserTest, DurationUnits) {
  const auto q = ParseQuery(
      "SELECT value FROM sensors SAMPLE INTERVAL 500 ms FOR 2 hours");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->sample_interval, 0.5);
  EXPECT_DOUBLE_EQ(q->duration, 7200.0);
}

TEST(ParserTest, BareDurationDefaultsToSeconds) {
  const auto q = ParseQuery("SELECT value FROM sensors SAMPLE INTERVAL 3");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->sample_interval, 3.0);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  const auto q = ParseQuery(
      "select Value from Sensors where LOC in north_half use snapshot");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->use_snapshot);
  EXPECT_EQ(*q->region_name, "north_half");
}

TEST(ParserTest, ToStringRoundTripsThroughParser) {
  const auto q = ParseQuery(
      "SELECT avg(value) FROM sensors WHERE loc IN RECT(0, 0, 1, 1) "
      "SAMPLE INTERVAL 2 FOR 10 USE SNAPSHOT ERROR 0.5");
  ASSERT_TRUE(q.ok());
  const auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString() << " -> " << q2.status().ToString();
  EXPECT_EQ(q2->select, q->select);
  EXPECT_EQ(q2->region, q->region);
  EXPECT_DOUBLE_EQ(q2->sample_interval, q->sample_interval);
  EXPECT_EQ(q2->use_snapshot, q->use_snapshot);
}

TEST(ParserTest, ExplainPrefix) {
  const auto q = ParseQuery("EXPLAIN SELECT value FROM sensors USE SNAPSHOT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->explain, ExplainMode::kPlan);
  EXPECT_TRUE(q->use_snapshot);
}

TEST(ParserTest, ExplainAnalyzePrefix) {
  const auto q = ParseQuery(
      "explain analyze SELECT avg(value) FROM sensors "
      "WHERE loc IN RECT(0.5, 0.0, 1.0, 0.5) USE SNAPSHOT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->explain, ExplainMode::kAnalyze);
  EXPECT_EQ(q->TheAggregate(), AggregateFunction::kAvg);
}

TEST(ParserTest, PlainQueryHasNoExplainMode) {
  const auto q = ParseQuery("SELECT value FROM sensors");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->explain, ExplainMode::kNone);
}

TEST(ParserTest, ExplainToStringRoundTrips) {
  for (const char* sql :
       {"EXPLAIN SELECT value FROM sensors",
        "EXPLAIN ANALYZE SELECT avg(value) FROM sensors USE SNAPSHOT"}) {
    const auto q = ParseQuery(sql);
    ASSERT_TRUE(q.ok()) << sql;
    const auto q2 = ParseQuery(q->ToString());
    ASSERT_TRUE(q2.ok()) << q->ToString();
    EXPECT_EQ(q2->explain, q->explain) << sql;
  }
}

// --- error cases -----------------------------------------------------------

TEST(ParserTest, RejectsMissingSelect) {
  EXPECT_FALSE(ParseQuery("FROM sensors").ok());
}

TEST(ParserTest, RejectsMissingFrom) {
  EXPECT_FALSE(ParseQuery("SELECT value").ok());
}

TEST(ParserTest, RejectsDoubleAggregate) {
  EXPECT_FALSE(
      ParseQuery("SELECT sum(value), avg(value) FROM sensors").ok());
}

TEST(ParserTest, RejectsMixingAggregateWithPlainColumn) {
  EXPECT_FALSE(ParseQuery("SELECT value, sum(value) FROM sensors").ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseQuery("SELECT value FROM sensors banana").ok());
}

TEST(ParserTest, RejectsMalformedRect) {
  EXPECT_FALSE(
      ParseQuery("SELECT value FROM sensors WHERE loc IN RECT(1,2,3)").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT value FROM sensors WHERE loc IN RECT(1 2 3 4)")
          .ok());
}

TEST(ParserTest, RejectsInvertedRect) {
  EXPECT_FALSE(
      ParseQuery("SELECT value FROM sensors WHERE loc IN RECT(1,0,0,1)")
          .ok());
}

TEST(ParserTest, RejectsNonPositiveSnapshotError) {
  EXPECT_FALSE(
      ParseQuery("SELECT value FROM sensors USE SNAPSHOT ERROR 0").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT value FROM sensors USE SNAPSHOT ERROR -1").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT value FROM sensors USE SNAPSHOT ERROR -3").ok());
}

TEST(ParserTest, RejectsNonNumericSnapshotError) {
  EXPECT_FALSE(
      ParseQuery("SELECT value FROM sensors USE SNAPSHOT ERROR banana").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT value FROM sensors USE SNAPSHOT ERROR").ok());
}

TEST(ParserTest, RejectsNestedExplain) {
  const auto q = ParseQuery("EXPLAIN EXPLAIN SELECT value FROM sensors");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("nested"), std::string::npos);
  EXPECT_FALSE(
      ParseQuery("EXPLAIN ANALYZE EXPLAIN SELECT value FROM sensors").ok());
}

TEST(ParserTest, ExplainOnMalformedQueryReturnsError) {
  // The prefix must not mask (or crash on) downstream parse errors.
  EXPECT_FALSE(ParseQuery("EXPLAIN").ok());
  EXPECT_FALSE(ParseQuery("EXPLAIN ANALYZE").ok());
  EXPECT_FALSE(ParseQuery("EXPLAIN FROM sensors").ok());
  EXPECT_FALSE(ParseQuery("EXPLAIN SELECT value").ok());
  EXPECT_FALSE(ParseQuery("EXPLAIN SELECT value FROM sensors banana").ok());
  EXPECT_FALSE(
      ParseQuery("EXPLAIN ANALYZE SELECT value FROM sensors "
                 "USE SNAPSHOT ERROR banana")
          .ok());
  EXPECT_FALSE(
      ParseQuery("EXPLAIN SELECT value FROM sensors USE SNAPSHOT ERROR -3")
          .ok());
}

TEST(ParserTest, RejectsUseWithoutSnapshot) {
  EXPECT_FALSE(ParseQuery("SELECT value FROM sensors USE MAGIC").ok());
}

TEST(ParserTest, RejectsWhereWithoutLocIn) {
  EXPECT_FALSE(ParseQuery("SELECT value FROM sensors WHERE x IN y").ok());
  EXPECT_FALSE(ParseQuery("SELECT value FROM sensors WHERE loc EQ y").ok());
}

TEST(ParserTest, ErrorsMentionOffset) {
  const auto q = ParseQuery("SELECT value FROM sensors banana");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace snapq
