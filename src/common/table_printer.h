// Fixed-width ASCII table printer used by the experiment drivers to emit the
// paper's tables/series in a uniform, diff-friendly format.
#ifndef SNAPQ_COMMON_TABLE_PRINTER_H_
#define SNAPQ_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace snapq {

/// Collects rows of string cells and renders them with aligned columns.
///
/// Usage:
///   TablePrinter t({"K", "representatives"});
///   t.AddRow({"1", "1.0"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row. Rows shorter than the header are padded with empty
  /// cells; longer rows widen the table.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  /// Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snapq

#endif  // SNAPQ_COMMON_TABLE_PRINTER_H_
