// Causal-tree analysis over a Tracer's recorded spans. The analyzer
// reconstructs each trace's span tree and produces a per-trace report:
// message counts by type and by node, tree depth, sim duration, radio
// outcome totals — plus verdicts on the paper's causal invariants:
//
//   election.message_bound   an election/re-election trace costs no
//                            participating node more than 6 messages (§4);
//   query.snapshot_responders  a USE SNAPSHOT query is answered only by
//                            nodes that are not PASSIVE at respond time;
//   violation.termination    a model-violation trace ends in a model
//                            update or a re-election (invitations sent).
#ifndef SNAPQ_OBS_TRACE_ANALYZER_H_
#define SNAPQ_OBS_TRACE_ANALYZER_H_

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/node_id.h"
#include "obs/tracer.h"

namespace snapq::obs {

/// Outcome of one invariant check on one trace.
struct InvariantVerdict {
  std::string invariant;
  bool pass = false;
  std::string detail;
};

/// Per-trace causal report.
struct TraceReport {
  uint64_t trace_id = 0;
  TraceRootKind root_kind = TraceRootKind::kElection;
  NodeId root_node = kInvalidNode;
  uint64_t link_trace_id = 0;
  uint64_t link_span_id = 0;
  size_t num_spans = 0;     ///< all spans of the trace, root included
  size_t num_messages = 0;  ///< kMessage spans (radio transmissions)
  std::array<uint64_t, kNumMessageTypes> messages_by_type{};
  std::map<NodeId, uint64_t> messages_by_node;  ///< sends per sender
  uint64_t max_messages_per_node = 0;
  NodeId busiest_node = kInvalidNode;
  size_t max_depth = 0;  ///< longest root-to-leaf chain, in edges
  Time sim_start = 0;
  Time sim_end = 0;
  size_t deliveries = 0;
  size_t snoops = 0;
  size_t losses = 0;
  std::vector<InvariantVerdict> verdicts;

  Time sim_duration() const { return sim_end - sim_start; }
  bool AllPass() const;
  /// Multi-line human-readable summary (shell `\trace <id>`).
  std::string ToString() const;
};

class TraceAnalyzer {
 public:
  /// §4: a clean election costs each node at most 6 messages (invitation,
  /// cand-list, accept/recall/stay-active traffic, rep-ack).
  static constexpr uint64_t kElectionMessageBound = 6;

  /// `tracer` must outlive the analyzer. Not owned.
  explicit TraceAnalyzer(const Tracer* tracer) : tracer_(tracer) {}

  std::vector<uint64_t> TraceIds() const { return tracer_->TraceIds(); }

  /// Full report for one trace; nullopt for an unknown trace id.
  std::optional<TraceReport> Analyze(uint64_t trace_id) const;

  /// Reports for every recorded trace, in minting order.
  std::vector<TraceReport> AnalyzeAll() const;

  /// Context-propagation health: recorded non-root spans whose parent span
  /// was never recorded. Empty unless propagation is broken (the tracer's
  /// drop policy keeps budget exhaustion from orphaning spans).
  std::vector<const TraceSpan*> FindOrphans() const;

 private:
  const Tracer* tracer_;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_TRACE_ANALYZER_H_
