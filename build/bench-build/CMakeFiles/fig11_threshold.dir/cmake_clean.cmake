file(REMOVE_RECURSE
  "../bench/fig11_threshold"
  "../bench/fig11_threshold.pdb"
  "CMakeFiles/fig11_threshold.dir/fig11_threshold.cc.o"
  "CMakeFiles/fig11_threshold.dir/fig11_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
