#include "query/predicate.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace snapq {
namespace {

Catalog StdCatalog() {
  return Catalog::WithStandardRegions(Rect::UnitSquare());
}

TEST(ResolveRegionTest, LiteralRectWins) {
  const auto q = ParseQuery(
      "SELECT value FROM sensors WHERE loc IN RECT(0.1, 0.1, 0.2, 0.2)");
  ASSERT_TRUE(q.ok());
  const Result<Rect> r =
      ResolveRegion(*q, StdCatalog(), Rect::UnitSquare());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->min_x, 0.1);
}

TEST(ResolveRegionTest, NamedRegionResolvesThroughCatalog) {
  const auto q =
      ParseQuery("SELECT value FROM sensors WHERE loc IN NORTH_HALF");
  ASSERT_TRUE(q.ok());
  const Result<Rect> r =
      ResolveRegion(*q, StdCatalog(), Rect::UnitSquare());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->min_y, 0.5);
}

TEST(ResolveRegionTest, UnknownNameFails) {
  const auto q =
      ParseQuery("SELECT value FROM sensors WHERE loc IN NOWHERE_LAND");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(ResolveRegion(*q, StdCatalog(), Rect::UnitSquare()).ok());
}

TEST(ResolveRegionTest, NoWhereClauseUsesDefault) {
  const auto q = ParseQuery("SELECT value FROM sensors");
  ASSERT_TRUE(q.ok());
  const Rect fallback{0, 0, 2, 2};
  const Result<Rect> r = ResolveRegion(*q, StdCatalog(), fallback);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, fallback);
}

TEST(ValidateColumnsTest, AcceptsKnownColumns) {
  Catalog c = StdCatalog();
  c.RegisterMeasurementColumn("temperature");
  const auto q =
      ParseQuery("SELECT loc, temperature FROM sensors");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(ValidateColumns(*q, c).ok());
}

TEST(ValidateColumnsTest, RejectsUnknownColumn) {
  const auto q = ParseQuery("SELECT humidity FROM sensors");
  ASSERT_TRUE(q.ok());
  const Status s = ValidateColumns(*q, StdCatalog());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("humidity"), std::string::npos);
}

TEST(ValidateColumnsTest, CountStarAllowed) {
  const auto q = ParseQuery("SELECT count(*) FROM sensors");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(ValidateColumns(*q, StdCatalog()).ok());
}

TEST(ValidateColumnsTest, SumStarRejected) {
  const auto q = ParseQuery("SELECT sum(*) FROM sensors");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(ValidateColumns(*q, StdCatalog()).ok());
}

}  // namespace
}  // namespace snapq
