file(REMOVE_RECURSE
  "CMakeFiles/snapq_net.dir/net/energy.cc.o"
  "CMakeFiles/snapq_net.dir/net/energy.cc.o.d"
  "CMakeFiles/snapq_net.dir/net/link_model.cc.o"
  "CMakeFiles/snapq_net.dir/net/link_model.cc.o.d"
  "CMakeFiles/snapq_net.dir/net/message.cc.o"
  "CMakeFiles/snapq_net.dir/net/message.cc.o.d"
  "CMakeFiles/snapq_net.dir/net/topology.cc.o"
  "CMakeFiles/snapq_net.dir/net/topology.cc.o.d"
  "libsnapq_net.a"
  "libsnapq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
