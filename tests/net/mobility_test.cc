// Mobility: moving nodes updates reachability, and the snapshot protocol
// self-heals when a represented node walks out of its representative's
// radio range ("changes in connectivity among nodes due to mobility", §3).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link_model.h"
#include "snapshot/election.h"

namespace snapq {
namespace {

TEST(LinkModelMobilityTest, MoveUpdatesBothDirections) {
  LinkModel lm({{0, 0}, {1, 0}, {5, 0}}, {1.2, 1.2, 1.2}, 0.0);
  EXPECT_TRUE(lm.CanReach(0, 1));
  EXPECT_FALSE(lm.CanReach(0, 2));

  lm.SetPosition(2, {2.0, 0.0});
  EXPECT_TRUE(lm.CanReach(1, 2));
  EXPECT_TRUE(lm.CanReach(2, 1));
  EXPECT_FALSE(lm.CanReach(0, 2));

  lm.SetPosition(1, {10.0, 0.0});
  EXPECT_FALSE(lm.CanReach(0, 1));
  EXPECT_FALSE(lm.CanReach(1, 2));
}

TEST(LinkModelMobilityTest, ReachableRowsStaySortedAndConsistent) {
  LinkModel lm({{0, 0}, {0.5, 0}, {1.0, 0}, {1.5, 0}},
               {0.6, 0.6, 0.6, 0.6}, 0.0);
  lm.SetPosition(3, {0.25, 0.0});  // now between 0 and 1
  for (NodeId i = 0; i < 4; ++i) {
    const auto& row = lm.Reachable(i);
    for (size_t k = 1; k < row.size(); ++k) {
      EXPECT_LT(row[k - 1], row[k]);
    }
    for (NodeId j = 0; j < 4; ++j) {
      const bool in_row =
          std::find(row.begin(), row.end(), j) != row.end();
      EXPECT_EQ(in_row, lm.CanReach(i, j)) << i << "->" << j;
    }
  }
}

TEST(SimulatorMobilityTest, MovedNodeChangesDeliveries) {
  Simulator sim({{0, 0}, {1, 0}, {5, 0}}, {1.2, 1.2, 1.2}, SimConfig{});
  int received_by_2 = 0;
  sim.SetHandler(2, [&](const Message&, bool) { ++received_by_2; });
  Message m;
  m.from = 0;
  sim.Send(m);
  sim.RunAll();
  EXPECT_EQ(received_by_2, 0);
  sim.MoveNode(2, {1.0, 0.5});
  sim.Send(m);
  sim.RunAll();
  EXPECT_EQ(received_by_2, 1);
}

TEST(MobilityIntegrationTest, SnapshotSelfHealsWhenMemberWalksAway) {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  config.heartbeat_miss_limit = 1;
  // Three nodes close together.
  Simulator sim({{0.1, 0.5}, {0.2, 0.5}, {0.3, 0.5}},
                std::vector<double>(3, 0.4), SimConfig{});
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  for (NodeId i = 0; i < 3; ++i) {
    agents.push_back(
        std::make_unique<SnapshotAgent>(i, &sim, config, 60 + i));
    agents.back()->Install();
    agents.back()->SetMeasurement(10.0 + i);
  }
  // Node 2 can represent 0 and 1.
  for (NodeId j = 0; j < 2; ++j) {
    const double vi = agents[2]->measurement();
    const double vj = agents[j]->measurement();
    agents[2]->models().cache().Observe(j, vi - 1, vj - 1, 0);
    agents[2]->models().cache().Observe(j, vi + 1, vj + 1, 0);
  }
  RunGlobalElection(sim, agents, 0, config);
  ASSERT_EQ(agents[0]->representative(), 2u);
  ASSERT_EQ(agents[0]->mode(), NodeMode::kPassive);

  // Node 0 wanders out of range of everyone.
  sim.MoveNode(0, {5.0, 5.0});
  // Its heartbeat can no longer reach node 2: after the miss limit it
  // re-elects, finds no candidates in range, and represents itself.
  for (auto& a : agents) a->MaintenanceTick();
  sim.RunAll();
  EXPECT_EQ(agents[0]->mode(), NodeMode::kActive);
  EXPECT_EQ(agents[0]->representative(), 0u);
  // Node 1 stays happily represented.
  EXPECT_EQ(agents[1]->mode(), NodeMode::kPassive);
  EXPECT_EQ(agents[1]->representative(), 2u);
}

TEST(MobilityIntegrationTest, NewcomerJoinsNeighborhoodAndMerges) {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  // Node 2 starts far away, then moves next to 0/1 after their election.
  Simulator sim({{0.1, 0.5}, {0.2, 0.5}, {5.0, 5.0}},
                std::vector<double>(3, 0.4), SimConfig{});
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  for (NodeId i = 0; i < 3; ++i) {
    agents.push_back(
        std::make_unique<SnapshotAgent>(i, &sim, config, 80 + i));
    agents.back()->Install();
    agents.back()->SetMeasurement(10.0 + i);
  }
  const double v1 = agents[1]->measurement();
  const double v0 = agents[0]->measurement();
  agents[1]->models().cache().Observe(0, v1 - 1, v0 - 1, 0);
  agents[1]->models().cache().Observe(0, v1 + 1, v0 + 1, 0);
  RunGlobalElection(sim, agents, 0, config);
  ASSERT_EQ(agents[2]->mode(), NodeMode::kActive);  // isolated -> lone

  // Node 2 moves in; node 1 (the local rep) learns its values from its
  // announcements, then a maintenance round lets the lone active find a
  // representative.
  sim.MoveNode(2, {0.3, 0.5});
  agents[1]->SetMeasurement(20.0);
  agents[2]->SetMeasurement(30.0);
  agents[2]->BroadcastValue();
  sim.RunAll();
  agents[1]->SetMeasurement(21.0);
  agents[2]->SetMeasurement(31.0);
  agents[2]->BroadcastValue();
  sim.RunAll();
  for (auto& a : agents) a->MaintenanceTick();
  sim.RunAll();
  EXPECT_EQ(agents[2]->mode(), NodeMode::kPassive);
  EXPECT_EQ(agents[2]->representative(), 1u);
}

}  // namespace
}  // namespace snapq
