#include "model/model_store.h"

namespace snapq {

ModelStore::ModelStore(NodeId self, const CacheConfig& cache_config)
    : self_(self), cache_(cache_config) {}

void ModelStore::SetOwnValue(double x, Time t) {
  own_value_ = x;
  own_value_time_ = t;
}

CacheManager::Action ModelStore::Observe(NodeId j, double y, Time t) {
  return cache_.Observe(j, own_value_, y, t);
}

bool ModelStore::CanRepresent(NodeId j, double actual_y,
                              const ErrorMetric& metric,
                              double threshold) const {
  const std::optional<double> estimate = Estimate(j);
  if (!estimate.has_value()) return false;
  return metric.Within(actual_y, *estimate, threshold);
}

}  // namespace snapq
