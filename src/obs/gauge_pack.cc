#include "obs/gauge_pack.h"

#include <utility>

namespace snapq::obs {

GaugePack::GaugePack(MetricRegistry* registry, std::vector<std::string> names)
    : names_(std::move(names)) {
  gauges_.reserve(names_.size());
  for (const std::string& name : names_) {
    gauges_.push_back(registry->GetGauge(name));
  }
}

}  // namespace snapq::obs
