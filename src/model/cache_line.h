// A cache line: the history node N_i keeps about neighbor N_j, as a list of
// simultaneously-collected pairs (x_i(t_k), x_j(t_k)), oldest first (§4).
// Victims are always the oldest pair, which both shifts the cache toward
// newer observations and keeps updates linear-time.
//
// Pairs live in a contiguous vector rather than a deque: lines are small
// (bounded by the cache's pair budget), so popping the front is a short
// memmove, while fits and benefit scans walk contiguous memory and moving
// a line (the flat cache directory shifts entries) never allocates.
#ifndef SNAPQ_MODEL_CACHE_LINE_H_
#define SNAPQ_MODEL_CACHE_LINE_H_

#include <vector>

#include "common/check.h"
#include "model/linear_model.h"
#include "net/node_id.h"

namespace snapq {

/// One (x_i, x_j) observation.
struct ObservationPair {
  double x = 0.0;  ///< the caching node's own measurement x_i(t)
  double y = 0.0;  ///< the neighbor's measurement x_j(t)
  Time time = 0;

  bool operator==(const ObservationPair&) const = default;
};

/// Ordered pair history with incrementally-maintained regression
/// statistics.
class CacheLine {
 public:
  CacheLine() = default;

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  const ObservationPair& oldest() const {
    SNAPQ_DCHECK(!pairs_.empty());
    return pairs_.front();
  }
  const ObservationPair& newest() const {
    SNAPQ_DCHECK(!pairs_.empty());
    return pairs_.back();
  }
  const std::vector<ObservationPair>& pairs() const { return pairs_; }

  /// Appends a new (most recent) observation.
  void PushNewest(const ObservationPair& p);

  /// Removes and returns the oldest observation.
  ObservationPair PopOldest();

  /// The line's sufficient statistics (kept in sync incrementally).
  const RegressionStats& stats() const { return stats_; }

  /// Convenience: the sse-optimal model for this line's pairs.
  LinearModel FitModel() const { return stats_.Fit(); }

 private:
  std::vector<ObservationPair> pairs_;
  RegressionStats stats_;
};

}  // namespace snapq

#endif  // SNAPQ_MODEL_CACHE_LINE_H_
