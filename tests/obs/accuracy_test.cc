// The ground-truth accuracy auditor: violation counting against the
// round's effective threshold, the tumbling budget window behind the
// violation_rate / budget_burn gauges, per-node and per-reporter
// attribution, the frozen `accuracy_audit` journal event, and the shell
// table rendering.
#include "obs/accuracy.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/journal.h"
#include "obs/metric_registry.h"

namespace snapq::obs {
namespace {

class AccuracyAuditorTest : public ::testing::Test {
 protected:
  MetricRegistry registry_;
};

TEST_F(AccuracyAuditorTest, CountsViolationsAgainstTheRoundThreshold) {
  AccuracyAuditor audit({}, /*num_nodes=*/4, &registry_);
  audit.BeginRound(AuditSource::kQuery, /*origin=*/0, /*threshold=*/1.0,
                   /*t=*/0);
  audit.ObserveEstimate(1, 0, /*signed_error=*/0.5, /*distance=*/0.25);
  audit.ObserveEstimate(2, 0, /*signed_error=*/-2.0, /*distance=*/4.0);
  audit.ObserveEstimate(3, 0, /*signed_error=*/1.0, /*distance=*/1.0);
  audit.EndRound();

  EXPECT_EQ(audit.audited_total(), 3u);
  // distance > T strictly: 4.0 violates, 1.0 (== T) does not.
  EXPECT_EQ(audit.violations_total(), 1u);
  EXPECT_EQ(audit.rounds(), 1u);
  EXPECT_DOUBLE_EQ(audit.violation_rate(), 1.0 / 3.0);
  EXPECT_EQ(audit.error_histogram().count(), 3u);
  EXPECT_DOUBLE_EQ(audit.error_histogram().max_seen(), 2.0);
}

TEST_F(AccuracyAuditorTest, EachRoundJudgesAgainstItsOwnEffectiveT) {
  // A per-query USE SNAPSHOT ERROR override tightens T for that round
  // only; the same residual can pass under the deployment T and violate
  // under the override.
  AccuracyAuditor audit({}, 2, &registry_);
  audit.BeginRound(AuditSource::kQuery, 0, /*threshold=*/1.0, 0);
  audit.ObserveEstimate(1, 0, 0.7, 0.49);
  audit.EndRound();
  EXPECT_EQ(audit.violations_total(), 0u);

  audit.BeginRound(AuditSource::kQuery, 0, /*threshold=*/0.25, 1);
  audit.ObserveEstimate(1, 0, 0.7, 0.49);
  audit.EndRound();
  EXPECT_EQ(audit.violations_total(), 1u);
}

TEST_F(AccuracyAuditorTest, BudgetWindowTumblesAndResetsTheRate) {
  AccuracyAuditConfig config;
  config.error_budget = 0.5;
  config.window = 100;
  AccuracyAuditor audit(config, 2, &registry_);

  audit.BeginRound(AuditSource::kSweep, -1, 1.0, /*t=*/10);
  audit.ObserveEstimate(1, 0, 3.0, 9.0);  // violation
  audit.EndRound();
  EXPECT_DOUBLE_EQ(audit.violation_rate(), 1.0);
  EXPECT_DOUBLE_EQ(audit.budget_burn(), 2.0);  // 1.0 / 0.5

  // Same window: the rate accumulates.
  audit.BeginRound(AuditSource::kSweep, -1, 1.0, /*t=*/90);
  audit.ObserveEstimate(1, 0, 0.1, 0.01);
  audit.EndRound();
  EXPECT_DOUBLE_EQ(audit.violation_rate(), 0.5);

  // t=250 starts a new window (aligned to multiples of 100): the window
  // rate resets, the cumulative totals do not.
  audit.BeginRound(AuditSource::kSweep, -1, 1.0, /*t=*/250);
  audit.ObserveEstimate(1, 0, 0.1, 0.01);
  audit.EndRound();
  EXPECT_DOUBLE_EQ(audit.violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(audit.budget_burn(), 0.0);
  EXPECT_EQ(audit.violations_total(), 1u);
  EXPECT_EQ(audit.audited_total(), 3u);
}

TEST_F(AccuracyAuditorTest, ExposesGaugesAndCountersOnTheRegistry) {
  AccuracyAuditor audit({}, 2, &registry_);
  // Registered at construction: visible to telemetry/SLOs before the
  // first round.
  EXPECT_DOUBLE_EQ(registry_.GetGauge("accuracy.violation_rate")->value(),
                   0.0);

  audit.BeginRound(AuditSource::kQuery, 0, 1.0, 0);
  audit.ObserveEstimate(1, 0, 2.0, 4.0);
  audit.ObserveEstimate(0, 1, 0.5, 0.25);
  audit.EndRound();

  EXPECT_DOUBLE_EQ(registry_.GetGauge("accuracy.violation_rate")->value(),
                   0.5);
  EXPECT_DOUBLE_EQ(registry_.GetGauge("accuracy.budget_burn")->value(),
                   0.5 / 0.01);
  EXPECT_DOUBLE_EQ(registry_.GetGauge("accuracy.max_abs_error")->value(), 2.0);
  EXPECT_DOUBLE_EQ(registry_.GetGauge("accuracy.mean_abs_error")->value(),
                   1.25);
  EXPECT_EQ(registry_.GetCounter("accuracy.audited")->value(), 2u);
  EXPECT_EQ(registry_.GetCounter("accuracy.violations")->value(), 1u);
  EXPECT_EQ(registry_.GetCounter("accuracy.rounds")->value(), 1u);
}

TEST_F(AccuracyAuditorTest, AttributesErrorsPerNodeAndPerReporter) {
  AccuracyAuditor audit({}, 4, &registry_);
  audit.BeginRound(AuditSource::kQuery, 0, 1.0, 0);
  audit.ObserveEstimate(/*node=*/1, /*reporter=*/3, -2.0, 4.0);
  audit.ObserveEstimate(/*node=*/2, /*reporter=*/3, 0.5, 0.25);
  audit.EndRound();
  audit.BeginRound(AuditSource::kSweep, -1, 1.0, 1);
  audit.ObserveEstimate(/*node=*/1, /*reporter=*/3, -0.25, 0.0625);
  audit.EndRound();

  const AuditNodeStats n1 = audit.NodeStats(1);
  EXPECT_EQ(n1.audited, 2u);
  EXPECT_EQ(n1.violations, 1u);
  EXPECT_DOUBLE_EQ(n1.last_error, -0.25);
  EXPECT_DOUBLE_EQ(n1.mean_abs_error, (2.0 + 0.25) / 2.0);
  EXPECT_DOUBLE_EQ(n1.max_abs_error, 2.0);

  EXPECT_EQ(audit.NodeStats(0).audited, 0u);
  EXPECT_EQ(audit.ReporterViolations(3), 1u);  // the 4(c) byzantine signal
  EXPECT_EQ(audit.ReporterViolations(0), 0u);
}

TEST_F(AccuracyAuditorTest, PerNodeTrackingCanBeDisabled) {
  AccuracyAuditConfig config;
  config.per_node = false;
  AccuracyAuditor audit(config, 4, &registry_);
  audit.BeginRound(AuditSource::kQuery, 0, 1.0, 0);
  audit.ObserveEstimate(1, 3, -2.0, 4.0);
  audit.EndRound();
  // Network-wide aggregates remain; per-node stats read as zeros.
  EXPECT_EQ(audit.audited_total(), 1u);
  EXPECT_EQ(audit.NodeStats(1).audited, 0u);
}

TEST_F(AccuracyAuditorTest, EmitsTheFrozenJournalEventPerRound) {
  EventJournal journal;
  auto* sink = static_cast<MemoryJournalSink*>(
      journal.SetSink(std::make_unique<MemoryJournalSink>()));

  AccuracyAuditor audit({}, 4, &registry_, &journal);
  audit.BeginRound(AuditSource::kQuery, /*origin=*/2, /*threshold=*/0.5,
                   /*t=*/7);
  audit.ObserveEstimate(1, 0, 1.5, 2.25);
  audit.ObserveEstimate(3, 0, 0.25, 0.0625);
  audit.EndRound();

  ASSERT_EQ(sink->lines().size(), 1u);
  std::optional<JournalEvent> event = JournalEvent::Parse(sink->lines()[0]);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->name(), "accuracy_audit");
  EXPECT_EQ(event->time(), 7);
  EXPECT_EQ(event->GetInt("node"), 2);
  EXPECT_EQ(event->GetStr("source"), "query");
  EXPECT_EQ(event->GetNum("threshold"), 0.5);
  EXPECT_EQ(event->GetInt("audited"), 2);
  EXPECT_EQ(event->GetInt("violations"), 1);
  EXPECT_EQ(event->GetNum("max_abs_error"), 1.5);
  EXPECT_EQ(event->GetNum("mean_abs_error"), 0.875);
  EXPECT_EQ(event->GetNum("violation_rate"), 0.5);
  EXPECT_EQ(event->GetNum("budget_burn"), 50.0);

  // A sweep round carries origin -1 and source "sweep".
  audit.BeginRound(AuditSource::kSweep, -1, 0.5, 8);
  audit.EndRound();
  ASSERT_EQ(sink->lines().size(), 2u);
  event = JournalEvent::Parse(sink->lines()[1]);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->GetInt("node"), -1);
  EXPECT_EQ(event->GetStr("source"), "sweep");
  EXPECT_EQ(event->GetInt("audited"), 0);
}

TEST_F(AccuracyAuditorTest, ToTableListsAuditedNodesAndTheSummary) {
  AccuracyAuditor audit({}, 4, &registry_);
  audit.BeginRound(AuditSource::kQuery, 0, 1.0, 0);
  audit.ObserveEstimate(1, 0, 2.0, 4.0);
  audit.ObserveEstimate(2, 0, 0.5, 0.25);
  audit.EndRound();

  const std::string table = audit.ToTable();
  EXPECT_NE(table.find("node"), std::string::npos);
  EXPECT_NE(table.find("viol"), std::string::npos);
  // Nodes 0 and 3 were never audited: no rows for them beyond the header.
  EXPECT_NE(table.find("2 audited"), std::string::npos)
      << table;  // summary line
}

}  // namespace
}  // namespace snapq::obs
