// Figure 11: number of representatives vs the error threshold T on the
// weather workload (§6.3): 100 non-overlapping windows of 100 one-minute
// wind-speed values (synthetic substitute calibrated to the paper's
// mean ~5.8, variance ~2.8), first 10 values for training, discovery after
// the 100th, cache 2048 bytes, range sqrt(2).
//
// Paper shape: ~14% of the network at T = 0.1 falling quickly to ~1.5% at
// T = 10.
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"

SNAPQ_BENCHMARK(fig11_threshold,
                "Figure 11: representatives vs error threshold T (weather)") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Figure 11: representatives vs error threshold T (weather data)",
      "N=100, range=sqrt(2), P_loss=0, cache=2048B, sse; synthetic wind "
      "substitute for the UW station data");

  TablePrinter table({"T", "representatives (n1)", "% of N"});
  for (double t : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const RunningStats reps = MeanOverSeeds(
        static_cast<size_t>(ctx.repetitions), bench::kBaseSeed,
        [&](uint64_t seed) {
          SensitivityConfig config;
          config.workload = WorkloadKind::kWeather;
          config.threshold = t;
          config.seed = seed;
          return static_cast<double>(
              RunSensitivityTrial(config).stats.num_active);
        },
        ctx.jobs);
    table.AddRow({TablePrinter::Num(t, 1), TablePrinter::Num(reps.mean(), 1),
                  TablePrinter::Num(reps.mean(), 1) + "%"});
  }
  table.Print(std::cout);
}
