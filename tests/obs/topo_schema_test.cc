// Golden test freezing the `.topo.json` schema. The document is consumed
// by tools/topo_report.py (including the CI tools-check gate), so a
// change here is a cross-tool schema change: update kTopoMapSchemaVersion,
// the golden below, and topo_report.py together.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/geometry.h"
#include "net/link_model.h"
#include "obs/json.h"
#include "obs/topo.h"

namespace snapq::obs {
namespace {

/// A tiny deterministic scenario exercising every section of the
/// document: a 3-node path (two bridges, one articulation node), one
/// cluster around the middle node, and three observed links covering the
/// delivered / lost / snooped-only EWMA states.
struct GoldenScenario {
  TopologySnapshot snap;
  std::vector<Point> positions;
  std::vector<LinkStats> links;
};

GoldenScenario BuildGolden() {
  GoldenScenario g;
  g.positions = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  const LinkModel links(g.positions, {1.1, 1.1, 1.1}, 0.0);
  ClusterView view;
  view.Resize(3);
  view.is_rep[1] = 1;
  view.representative[0] = 1;
  view.representative[2] = 1;

  LinkObserver observer(3);
  observer.RecordDelivery(1, 0, 5);  // ewma 1
  observer.RecordLoss(1, 2, 6);      // ewma 0
  observer.RecordSnoop(0, 2, 8);     // never addressed: ewma stays -1

  g.snap = AnalyzeTopology(links, view, 9);
  g.snap.weak_links = 1;  // what the monitor would fill from the observer
  g.links = observer.SortedLinks();
  return g;
}

std::string GoldenJson() {
  const GoldenScenario g = BuildGolden();
  TopoMapMeta meta;
  meta.benchmark = "golden";
  meta.git_sha = "deadbeef";
  meta.quick = true;
  meta.t = 9;
  meta.extras = {{"alpha", 0.5}};
  return TopoMapToJson(g.snap, g.positions, g.links, meta);
}

constexpr char kGolden[] = R"({
  "schema_version": 1,
  "kind": "snapq-topo",
  "benchmark": "golden",
  "git_sha": "deadbeef",
  "quick": true,
  "t": 9,
  "num_nodes": 3,
  "live": 3,
  "summary": {"partitions": 1, "bridges": 2, "articulation_nodes": 1, "isolated": 0, "avg_degree": 1.33333333333, "max_degree": 2, "weak_links": 1, "links_observed": 3},
  "clusters": [{"rep": 1, "size": 3, "radius": 1, "depth": 1}],
  "bridges": [[0, 1], [1, 2]],
  "articulation": [1],
  "extras": {"alpha": 0.5},
  "nodes": [
    {"id": 0, "x": 0, "y": 0, "alive": true, "degree": 1, "component": 0, "rep": 1},
    {"id": 1, "x": 1, "y": 0, "alive": true, "degree": 2, "component": 0, "rep": 1},
    {"id": 2, "x": 2, "y": 0, "alive": true, "degree": 1, "component": 0, "rep": 1}
  ],
  "links": [
    {"from": 0, "to": 2, "deliveries": 0, "snoops": 1, "losses": 0, "ewma": -1, "last": 8},
    {"from": 1, "to": 0, "deliveries": 1, "snoops": 0, "losses": 0, "ewma": 1, "last": 5},
    {"from": 1, "to": 2, "deliveries": 0, "snoops": 0, "losses": 1, "ewma": 0, "last": 6}
  ]
}
)";

TEST(TopoSchemaTest, GoldenDocumentIsFrozen) {
  EXPECT_EQ(GoldenJson(), kGolden);
}

TEST(TopoSchemaTest, GoldenDocumentIsValidJson) {
  EXPECT_TRUE(ValidateJson(GoldenJson()));
}

TEST(TopoSchemaTest, DeadAndPartitionedNodesRenderFiniteValues) {
  // One dead node and two separated survivors: components -1/0/1, no
  // infinities or nulls anywhere in the document.
  std::vector<Point> positions = {{0.0, 0.0}, {1.0, 0.0}, {9.0, 0.0}};
  const LinkModel links(positions, {1.1, 1.1, 1.1}, 0.0);
  ClusterView view;
  view.Resize(3);
  view.alive[1] = 0;
  const TopologySnapshot snap = AnalyzeTopology(links, view, 3);
  TopoMapMeta meta;
  meta.benchmark = "partitioned";
  const std::string json = TopoMapToJson(snap, positions, {}, meta);
  EXPECT_TRUE(ValidateJson(json));
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("null"), std::string::npos);
  EXPECT_NE(json.find("\"partitions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"alive\": false"), std::string::npos);
  EXPECT_NE(json.find("\"component\": -1"), std::string::npos);
}

}  // namespace
}  // namespace snapq::obs
