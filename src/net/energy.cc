#include "net/energy.h"

namespace snapq {

DrainOutcome Battery::Consume(double amount, double* applied) {
  if (remaining_ <= 0.0) {
    if (applied != nullptr) *applied = 0.0;
    return DrainOutcome::kAlreadyDead;
  }
  if (amount >= remaining_) {
    // Exactly draining the last unit is still a successful transmission
    // (the node dies transmitting); an overdraft applies only what was
    // left. Either way the battery is empty afterwards.
    if (applied != nullptr) *applied = remaining_;
    remaining_ = 0.0;
    return DrainOutcome::kDiedNow;
  }
  remaining_ -= amount;
  if (applied != nullptr) *applied = amount;
  return DrainOutcome::kOk;
}

}  // namespace snapq
