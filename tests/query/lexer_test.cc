#include "query/lexer.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(LexerTest, EmptyInputYieldsEnd) {
  const auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_TRUE(tokens->front().Is(TokenType::kEnd));
}

TEST(LexerTest, IdentifiersAndKeywords) {
  const auto tokens = Tokenize("SELECT loc FROM sensors");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[1].Is(TokenType::kIdentifier));
  EXPECT_EQ((*tokens)[1].text, "loc");
  EXPECT_TRUE((*tokens)[2].IsKeyword("FROM"));
}

TEST(LexerTest, Punctuation) {
  const auto tokens = Tokenize("sum ( * ) ,");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].Is(TokenType::kLeftParen));
  EXPECT_TRUE((*tokens)[2].Is(TokenType::kStar));
  EXPECT_TRUE((*tokens)[3].Is(TokenType::kRightParen));
  EXPECT_TRUE((*tokens)[4].Is(TokenType::kComma));
}

TEST(LexerTest, Numbers) {
  const auto tokens = Tokenize("1 2.5 -3 1e3 0.5e-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 1.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 2.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, -3.0);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].number, 0.005);
}

TEST(LexerTest, DurationSuffixSplitsIntoNumberPlusIdentifier) {
  const auto tokens = Tokenize("1s 5min");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // 1, s, 5, min, END
  EXPECT_TRUE((*tokens)[0].Is(TokenType::kNumber));
  EXPECT_EQ((*tokens)[1].text, "s");
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 5.0);
  EXPECT_EQ((*tokens)[3].text, "min");
}

TEST(LexerTest, OffsetsPointIntoInput) {
  const auto tokens = Tokenize("ab cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 3u);
}

TEST(LexerTest, UnderscoredIdentifiers) {
  const auto tokens = Tokenize("SOUTH_EAST_QUADRANT _x x_1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SOUTH_EAST_QUADRANT");
  EXPECT_EQ((*tokens)[1].text, "_x");
  EXPECT_EQ((*tokens)[2].text, "x_1");
}

TEST(LexerTest, RejectsUnexpectedCharacters) {
  EXPECT_FALSE(Tokenize("select @foo").ok());
  EXPECT_FALSE(Tokenize("a;b").ok());
}

TEST(LexerTest, IsKeywordOnlyMatchesIdentifiers) {
  const auto tokens = Tokenize("42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_FALSE((*tokens)[0].IsKeyword("42"));
}

TEST(LexerTest, WhitespaceVariantsIgnored) {
  const auto tokens = Tokenize("a\tb\nc\r d");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 5u);
}

}  // namespace
}  // namespace snapq
