// A measurement time series: the value stream one sensor node reports.
#ifndef SNAPQ_DATA_TIMESERIES_H_
#define SNAPQ_DATA_TIMESERIES_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace snapq {

/// Dense series of measurements sampled at consecutive integer time units
/// (the paper's granularity). Index t holds the node's reading at time t.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values)
      : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double at(size_t t) const {
    SNAPQ_DCHECK(t < values_.size());
    return values_[t];
  }
  double operator[](size_t t) const { return at(t); }

  void Append(double v) { values_.push_back(v); }

  const std::vector<double>& values() const { return values_; }

  /// Summary statistics over the whole series.
  RunningStats Summarize() const;

  /// Sub-series [begin, begin+len). Requires the range to be in bounds.
  TimeSeries Slice(size_t begin, size_t len) const;

 private:
  std::vector<double> values_;
};

}  // namespace snapq

#endif  // SNAPQ_DATA_TIMESERIES_H_
