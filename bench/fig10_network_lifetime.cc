// Figure 10: network coverage over time for regular vs snapshot queries
// (K = 1, T = 1, range 0.7). Setup (§6.2): every node starts with a
// battery worth 500 transmissions; running the cache-maintenance
// algorithm costs 0.1 of a transmission; random spatial queries of area
// 0.1 are executed continuously. Coverage = measurements available to a
// query / measurements an infinite-battery network would deliver.
//
// The snapshot run additionally pays for electing and maintaining the
// representatives; the regular run's only drain is query participation.
//
// Paper shape: regular coverage holds at 100% to about the middle of the
// run, then collapses below 20% (uniform drain kills most nodes at once);
// snapshot coverage declines gradually (representatives drain faster) and
// the area under the curve is substantially larger.
#include <cmath>
#include <iostream>
#include <vector>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "query/executor.h"

namespace {

using namespace snapq;

constexpr Time kTrainTicks = 10;
constexpr Time kDiscovery = 20;
/// First query tick: after the snapshot run's election window has settled
/// (the same instant is used for the regular run, for comparability).
constexpr Time kQueryStart = 90;
constexpr Time kFullHorizon = 9000;
constexpr int kFullRepetitions = 5;
// The paper's "simple maintenance protocol that replaced representative
// nodes as they died out": heartbeats every 100 units (the paper's update
// cadence, Fig 14) with single-miss failover.
constexpr Time kMaintenanceInterval = 100;
constexpr int kBuckets = 20;

struct LifetimeCurve {
  std::vector<RunningStats> coverage;  // per time bucket
  LifetimeCurve() : coverage(kBuckets) {}
};

/// One run's raw coverage samples, per time bucket, in observation order.
/// Runs execute in parallel; the driver folds the samples into the
/// RunningStats curves sequentially so the accumulators see the same
/// addition order regardless of --jobs.
using LifetimeSamples = std::vector<std::vector<double>>;

/// Everything one lifetime run hands back to the driver: the coverage
/// samples plus the run's energy ledger snapshot and node layout, so the
/// driver can attribute the drain and write the spatial energy map.
struct LifetimeRun {
  LifetimeSamples samples;
  obs::EnergyLedgerSnapshot energy;
  std::vector<Point> positions;
  Time end = 0;
};

LifetimeRun RunLifetime(bool use_snapshot, uint64_t seed, Time horizon) {
  NetworkConfig config;
  config.num_nodes = 100;
  config.transmission_range = 0.7;
  config.energy = EnergyModel();  // the paper's 500-transmission battery
  config.snapshot.threshold = 1.0;
  config.snapshot.heartbeat_miss_limit = 1;  // replace dead reps promptly
  config.seed = seed;
  SensorNetwork net(config);

  // K=1 random-walk data over the whole horizon.
  Rng data_rng = Rng(seed).SplitNamed("data");
  RandomWalkConfig walk;
  walk.num_nodes = 100;
  walk.num_classes = 1;
  walk.horizon = static_cast<size_t>(horizon) + 1;
  Result<Dataset> dataset =
      Dataset::Create(GenerateRandomWalk(walk, data_rng).series);
  SNAPQ_CHECK(dataset.ok());
  SNAPQ_CHECK(net.AttachDataset(std::move(*dataset)).ok());

  // Attribute every joule of the run: tx/rx per message type, cache
  // maintenance, and (in the snapshot run) the election/heartbeat
  // machinery all land in distinct ledger cells.
  obs::EnergyLedger& ledger = net.EnableEnergyLedger();

  if (use_snapshot) {
    // Election + maintenance only happen in the snapshot run; the regular
    // run spends no energy on the snapshot machinery.
    net.ScheduleTrainingBroadcasts(0, kTrainTicks);
    net.RunUntil(kDiscovery);
    net.RunElection(kDiscovery);
    net.ScheduleMaintenance(net.now() + kMaintenanceInterval, horizon,
                            kMaintenanceInterval);
  }

  LifetimeSamples samples(kBuckets);
  Rng query_rng = Rng(seed).SplitNamed("queries");
  const double w = std::sqrt(0.1);
  for (Time t = kQueryStart; t < horizon; ++t) {
    net.RunUntil(t);
    ExecutionOptions options;
    // The query attaches to a live gateway node (a user would not pick a
    // dead sink); identical policy for both runs.
    NodeId sink = static_cast<NodeId>(query_rng.UniformInt(0, 99));
    for (int tries = 0; tries < 200 && !net.sim().alive(sink); ++tries) {
      sink = static_cast<NodeId>(query_rng.UniformInt(0, 99));
    }
    options.sink = sink;
    options.charge_energy = true;
    const Point center{query_rng.NextDouble(), query_rng.NextDouble()};
    const QueryResult result = net.executor().ExecuteRegion(
        Rect::CenteredSquare(center, w), use_snapshot,
        AggregateFunction::kSum, options);
    if (result.matching_nodes > 0) {
      const size_t bucket = static_cast<size_t>(
          (t - kQueryStart) * kBuckets / (horizon - kQueryStart));
      samples[std::min<size_t>(bucket, kBuckets - 1)].push_back(
          result.coverage);
    }
    // Per-tick gauge refresh feeds the min/median remaining-charge trend
    // series the first-death / coverage-knee forecasts project from.
    ledger.UpdateGauges(t);
  }
  ledger.UpdateGauges(net.now());
  obs::MetricSink().MergeFrom(net.sim().registry());

  LifetimeRun run;
  run.samples = std::move(samples);
  run.energy = ledger.TakeSnapshot();
  run.positions.reserve(config.num_nodes);
  for (NodeId id = 0; id < static_cast<NodeId>(config.num_nodes); ++id) {
    run.positions.push_back(net.position(id));
  }
  run.end = net.now();
  return run;
}

}  // namespace

SNAPQ_BENCHMARK(fig10_network_lifetime,
                "Figure 10: network coverage over time (K=1, range=0.7)") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Figure 10: network coverage over time (K=1, range=0.7)",
      "battery=500 tx, cache op=0.1 tx, continuous random queries of area "
      "0.1; coverage = available measurements / ideal measurements");

  // Quick mode keeps the bucket structure but shortens the horizon; the
  // paper's full run is 9,000 time units x 5 repetitions.
  const Time horizon =
      std::max<Time>(ctx.Scaled(kFullHorizon), kQueryStart + kBuckets);
  const int reps = static_cast<int>(ctx.Scaled(kFullRepetitions));

  // Even task indices are the regular runs, odd the snapshot runs, both
  // ordered by seed — the same order the old serial loop used, so the
  // index-ordered reduction reproduces it exactly.
  const auto per_run = exec::ParallelMap<LifetimeRun>(
      static_cast<size_t>(reps) * 2, ctx.jobs, [&](size_t i) {
        return RunLifetime(/*use_snapshot=*/(i % 2) == 1,
                           bench::kBaseSeed + static_cast<uint64_t>(i / 2),
                           horizon);
      });
  LifetimeCurve regular, snapshot;
  RunningStats drained_regular, drained_snapshot, deaths_regular,
      deaths_snapshot;
  for (size_t i = 0; i < per_run.size(); ++i) {
    LifetimeCurve& curve = (i % 2) == 1 ? snapshot : regular;
    for (size_t b = 0; b < static_cast<size_t>(kBuckets); ++b) {
      for (double coverage : per_run[i].samples[b]) {
        curve.coverage[b].Add(coverage);
      }
    }
    const obs::EnergyLedgerSnapshot& energy = per_run[i].energy;
    ((i % 2) == 1 ? drained_snapshot : drained_regular)
        .Add(energy.TotalDrained());
    ((i % 2) == 1 ? deaths_snapshot : deaths_regular)
        .Add(static_cast<double>(energy.TotalDeaths()));
  }

  TablePrinter table({"time", "regular coverage", "snapshot coverage"});
  double area_regular = 0.0;
  double area_snapshot = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const Time t = kQueryStart + (horizon - kQueryStart) * (b + 1) / kBuckets;
    area_regular += regular.coverage[static_cast<size_t>(b)].mean();
    area_snapshot += snapshot.coverage[static_cast<size_t>(b)].mean();
    table.AddRow(
        {std::to_string(t),
         TablePrinter::Num(100.0 * regular.coverage[static_cast<size_t>(b)].mean(), 1) + "%",
         TablePrinter::Num(100.0 * snapshot.coverage[static_cast<size_t>(b)].mean(), 1) + "%"});
  }
  table.Print(std::cout);
  std::printf("\narea under curve: regular=%.2f snapshot=%.2f (of %d)\n",
              area_regular, area_snapshot, kBuckets);

  // Energy attribution (rep 0): where the joules went and when the runs
  // started losing nodes. The spatial map sidecar uses the snapshot run —
  // it is the one with per-cause structure (election/maintenance vs
  // query) worth mapping; per-node cells cannot be merged across seeds
  // because each seed lays the nodes out differently.
  const LifetimeRun& showcase = per_run[1];
  std::printf("energy drained per run (mean J): regular=%.1f snapshot=%.1f\n",
              drained_regular.mean(), drained_snapshot.mean());
  std::printf("node deaths per run (mean):      regular=%.1f snapshot=%.1f\n",
              deaths_regular.mean(), deaths_snapshot.mean());
  if (showcase.energy.first_death_runs > 0) {
    std::printf("snapshot rep 0 first death: tick %.0f\n",
                showcase.energy.first_death_sum);
  }
  driver.WriteEnergyMap(
      showcase.energy, showcase.positions, showcase.end,
      {{"auc_regular", area_regular},
       {"auc_snapshot", area_snapshot},
       {"drained_mean_regular", drained_regular.mean()},
       {"drained_mean_snapshot", drained_snapshot.mean()},
       {"deaths_mean_regular", deaths_regular.mean()},
       {"deaths_mean_snapshot", deaths_snapshot.mean()}});
}
