// Unit tests for the topology & churn observatory (src/obs/topo.h):
// LinkObserver bookkeeping and overflow, AnalyzeTopology on hand-built
// placements (partitions, bridges, articulation, cluster radius/depth),
// ChurnTracker sweep differencing, and TopologyMonitor gauge publishing.
#include "obs/topo.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "net/link_model.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"

namespace snapq {
namespace {

// ---------------------------------------------------------------------------
// LinkObserver

TEST(LinkObserverTest, RecordsOutcomesAndEwma) {
  obs::LinkObserver observer(4);
  EXPECT_EQ(observer.capacity(), 12u);  // 4*3 ordered pairs
  observer.RecordDelivery(0, 1, 10);
  const obs::LinkStats* link = observer.Find(0, 1);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->deliveries, 1u);
  EXPECT_EQ(link->attempts(), 1u);
  EXPECT_DOUBLE_EQ(link->ewma_delivery, 1.0);  // first outcome seeds
  EXPECT_EQ(link->last_activity, 10);

  observer.RecordLoss(0, 1, 11);
  EXPECT_EQ(link->losses, 1u);
  EXPECT_EQ(link->attempts(), 2u);
  EXPECT_DOUBLE_EQ(link->ewma_delivery, 1.0 - obs::kLinkEwmaAlpha);
  EXPECT_EQ(link->last_activity, 11);

  // Snoops count separately and do not move the delivery EWMA.
  observer.RecordSnoop(0, 1, 12);
  EXPECT_EQ(link->snoops, 1u);
  EXPECT_EQ(link->attempts(), 2u);
  EXPECT_DOUBLE_EQ(link->ewma_delivery, 1.0 - obs::kLinkEwmaAlpha);

  // A link whose first outcome is a loss seeds the EWMA at 0.
  observer.RecordLoss(1, 0, 13);
  ASSERT_NE(observer.Find(1, 0), nullptr);
  EXPECT_DOUBLE_EQ(observer.Find(1, 0)->ewma_delivery, 0.0);

  EXPECT_EQ(observer.num_links(), 2u);
  EXPECT_EQ(observer.Find(2, 3), nullptr);
  EXPECT_EQ(observer.dropped_records(), 0u);
}

TEST(LinkObserverTest, SortedLinksOrderedByFromThenTo) {
  obs::LinkObserver observer(5);
  observer.RecordDelivery(3, 1, 1);
  observer.RecordDelivery(0, 4, 2);
  observer.RecordDelivery(0, 2, 3);
  observer.RecordDelivery(3, 0, 4);
  const std::vector<obs::LinkStats> links = observer.SortedLinks();
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[0].from, 0u);
  EXPECT_EQ(links[0].to, 2u);
  EXPECT_EQ(links[1].from, 0u);
  EXPECT_EQ(links[1].to, 4u);
  EXPECT_EQ(links[2].from, 3u);
  EXPECT_EQ(links[2].to, 0u);
  EXPECT_EQ(links[3].from, 3u);
  EXPECT_EQ(links[3].to, 1u);
}

TEST(LinkObserverTest, CapacityOverflowCountsDroppedRecords) {
  obs::LinkObserver observer(100, /*max_links=*/2);
  observer.RecordDelivery(0, 1, 1);
  observer.RecordDelivery(0, 2, 1);
  observer.RecordDelivery(0, 3, 1);  // table full: dropped
  observer.RecordLoss(0, 4, 2);      // dropped too
  observer.RecordDelivery(0, 1, 3);  // existing link still updates
  EXPECT_EQ(observer.num_links(), 2u);
  EXPECT_EQ(observer.dropped_records(), 2u);
  EXPECT_EQ(observer.Find(0, 3), nullptr);
  EXPECT_EQ(observer.Find(0, 1)->deliveries, 2u);
}

TEST(LinkObserverTest, CountWeakLinksHonorsThresholdAndMinAttempts) {
  obs::LinkObserver observer(4);
  // Link (0,1): 10 losses -> ewma 0, attempts 10: weak.
  for (int i = 0; i < 10; ++i) observer.RecordLoss(0, 1, i);
  // Link (0,2): 10 deliveries -> ewma 1: strong.
  for (int i = 0; i < 10; ++i) observer.RecordDelivery(0, 2, i);
  // Link (0,3): 2 losses -> too few attempts to call.
  observer.RecordLoss(0, 3, 0);
  observer.RecordLoss(0, 3, 1);
  EXPECT_EQ(observer.CountWeakLinks(0.5, 8), 1u);
  EXPECT_EQ(observer.CountWeakLinks(0.5, 2), 2u);
}

// ---------------------------------------------------------------------------
// AnalyzeTopology

/// A LinkModel with uniform `range` over `positions` and no loss.
LinkModel MakeLinks(std::vector<Point> positions, double range) {
  const size_t n = positions.size();
  return LinkModel(std::move(positions), std::vector<double>(n, range), 0.0);
}

/// A fully-live, unclustered view sized for `n` nodes.
obs::ClusterView LiveView(size_t n) {
  obs::ClusterView view;
  view.Resize(n);
  return view;
}

TEST(AnalyzeTopologyTest, DetectsPartitionsAndComponentIds) {
  // Two pairs far apart: {0,1} and {2,3}.
  const LinkModel links =
      MakeLinks({{0.0, 0.0}, {0.1, 0.0}, {5.0, 0.0}, {5.1, 0.0}}, 0.2);
  const obs::TopologySnapshot snap =
      obs::AnalyzeTopology(links, LiveView(4), 7);
  EXPECT_EQ(snap.t, 7);
  EXPECT_EQ(snap.num_live, 4u);
  EXPECT_EQ(snap.partitions, 2u);
  // Component ids ascend with their lowest member id.
  EXPECT_EQ(snap.component[0], 0);
  EXPECT_EQ(snap.component[1], 0);
  EXPECT_EQ(snap.component[2], 1);
  EXPECT_EQ(snap.component[3], 1);
  EXPECT_EQ(snap.isolated, 0u);
  EXPECT_DOUBLE_EQ(snap.avg_degree, 1.0);
}

TEST(AnalyzeTopologyTest, FindsBridgesAndArticulationOnAPath) {
  // Path 0 - 1 - 2: both edges are bridges, node 1 is the articulation.
  const LinkModel links =
      MakeLinks({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}}, 1.1);
  const obs::TopologySnapshot snap =
      obs::AnalyzeTopology(links, LiveView(3), 0);
  EXPECT_EQ(snap.partitions, 1u);
  ASSERT_EQ(snap.bridges.size(), 2u);
  EXPECT_EQ(snap.bridges[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(snap.bridges[1], (std::pair<NodeId, NodeId>{1, 2}));
  ASSERT_EQ(snap.articulation.size(), 1u);
  EXPECT_EQ(snap.articulation[0], 1u);
  EXPECT_EQ(snap.degree[1], 2u);
  EXPECT_EQ(snap.max_degree, 2u);
}

TEST(AnalyzeTopologyTest, TriangleHasNoCutStructure) {
  const LinkModel links =
      MakeLinks({{0.0, 0.0}, {1.0, 0.0}, {0.5, 0.8}}, 1.1);
  const obs::TopologySnapshot snap =
      obs::AnalyzeTopology(links, LiveView(3), 0);
  EXPECT_EQ(snap.partitions, 1u);
  EXPECT_TRUE(snap.bridges.empty());
  EXPECT_TRUE(snap.articulation.empty());
}

TEST(AnalyzeTopologyTest, AsymmetricRangeStillConnectsEitherDirection) {
  // Node 0 can reach node 1 but not vice versa; the undirected closure
  // (LinkModel::IsConnected's relation) still links them.
  LinkModel links({{0.0, 0.0}, {1.0, 0.0}}, {1.5, 0.1}, 0.0);
  const obs::TopologySnapshot snap =
      obs::AnalyzeTopology(links, LiveView(2), 0);
  EXPECT_EQ(snap.partitions, 1u);
  EXPECT_EQ(snap.degree[0], 1u);
  EXPECT_EQ(snap.degree[1], 1u);
}

TEST(AnalyzeTopologyTest, DeadNodeSplitsThePathAndIsExcluded) {
  obs::ClusterView view = LiveView(3);
  view.alive[1] = 0;  // the articulation node dies
  const LinkModel links =
      MakeLinks({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}}, 1.1);
  const obs::TopologySnapshot snap = obs::AnalyzeTopology(links, view, 0);
  EXPECT_EQ(snap.num_live, 2u);
  EXPECT_EQ(snap.partitions, 2u);
  EXPECT_EQ(snap.component[1], -1);
  EXPECT_EQ(snap.degree[1], 0u);
  EXPECT_EQ(snap.isolated, 2u);  // 0 and 2 lost their only neighbor
}

TEST(AnalyzeTopologyTest, ClusterRadiusAndDepth) {
  // Chain 0 - 1 - 2 - 3, rep 0 represents everyone.
  obs::ClusterView view = LiveView(4);
  view.is_rep[0] = 1;
  for (NodeId i = 0; i < 4; ++i) view.representative[i] = 0;
  const LinkModel links = MakeLinks(
      {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}}, 1.1);
  const obs::TopologySnapshot snap = obs::AnalyzeTopology(links, view, 0);
  ASSERT_EQ(snap.clusters.size(), 1u);
  EXPECT_EQ(snap.clusters[0].rep, 0u);
  EXPECT_EQ(snap.clusters[0].size, 4u);
  EXPECT_DOUBLE_EQ(snap.clusters[0].radius, 3.0);
  EXPECT_EQ(snap.clusters[0].depth, 3);
}

TEST(AnalyzeTopologyTest, UnreachableMemberMarksClusterBroken) {
  // Rep 0 claims node 2, but node 2 sits in another component.
  obs::ClusterView view = LiveView(3);
  view.is_rep[0] = 1;
  view.representative[1] = 0;
  view.representative[2] = 0;
  const LinkModel links =
      MakeLinks({{0.0, 0.0}, {0.5, 0.0}, {9.0, 0.0}}, 1.0);
  const obs::TopologySnapshot snap = obs::AnalyzeTopology(links, view, 0);
  ASSERT_EQ(snap.clusters.size(), 1u);
  EXPECT_EQ(snap.clusters[0].size, 3u);
  EXPECT_EQ(snap.clusters[0].depth, -1);
  EXPECT_DOUBLE_EQ(snap.clusters[0].radius, 9.0);
}

TEST(AnalyzeTopologyTest, EmptyViewDefaultsToAllAliveUnclustered) {
  const LinkModel links = MakeLinks({{0.0, 0.0}, {0.5, 0.0}}, 1.0);
  const obs::TopologySnapshot snap =
      obs::AnalyzeTopology(links, obs::ClusterView{}, 3);
  EXPECT_EQ(snap.num_live, 2u);
  EXPECT_EQ(snap.partitions, 1u);
  EXPECT_TRUE(snap.clusters.empty());
  EXPECT_EQ(snap.representative[1], 1u);
}

// ---------------------------------------------------------------------------
// ChurnTracker

TEST(ChurnTrackerTest, FirstSweepCountsElectionsButNotFlaps) {
  obs::MetricRegistry registry;
  obs::ChurnTracker churn(3, /*grid=*/1, &registry);
  const LinkModel links =
      MakeLinks({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}}, 5.0);
  obs::ClusterView view = LiveView(3);
  view.is_rep[0] = 1;
  view.representative[1] = 0;
  view.representative[2] = 0;
  churn.Observe(view, links, 10);
  EXPECT_EQ(churn.elections_total(), 1u);
  EXPECT_EQ(churn.flaps_total(), 0u);  // no previous sweep to differ from
  EXPECT_DOUBLE_EQ(churn.election_rate(), 1.0);
  EXPECT_EQ(registry.GetCounter("churn.elections")->value(), 1u);

  // Steady state: same view again, nothing moves.
  churn.Observe(view, links, 20);
  EXPECT_EQ(churn.elections_total(), 1u);
  EXPECT_EQ(churn.flaps_total(), 0u);
  EXPECT_DOUBLE_EQ(churn.election_rate(), 0.0);
}

TEST(ChurnTrackerTest, FlapAndTenureOnRepresentativeChange) {
  obs::MetricRegistry registry;
  obs::ChurnTracker churn(3, 1, &registry);
  const LinkModel links =
      MakeLinks({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}}, 5.0);
  obs::ClusterView view = LiveView(3);
  view.is_rep[0] = 1;
  view.representative[1] = 0;
  view.representative[2] = 0;
  churn.Observe(view, links, 0);
  // Ongoing tenure stands in for the p50 while nothing completed.
  churn.Observe(view, links, 40);
  EXPECT_DOUBLE_EQ(churn.tenure_p50(), 40.0);

  // Node 2 takes over: node 0 resigns, members repoint.
  view.is_rep[0] = 0;
  view.is_rep[2] = 1;
  view.representative[0] = 2;
  view.representative[1] = 2;
  view.representative[2] = 2;
  churn.Observe(view, links, 100);
  // All three nodes changed representative (0 -> 2).
  EXPECT_EQ(churn.flaps_total(), 3u);
  EXPECT_DOUBLE_EQ(churn.flap_rate(), 3.0);
  EXPECT_EQ(churn.elections_total(), 2u);
  EXPECT_EQ(churn.completed_tenures(), 1u);
  // Node 0 held the role for the full 100 ticks; the p50 now comes from
  // the completed-tenure histogram (log-bucketed, so approximate).
  EXPECT_GT(churn.tenure_p50(), 50.0);
  EXPECT_EQ(registry.GetCounter("churn.tenures_completed")->value(), 1u);
}

TEST(ChurnTrackerTest, DeadNodesNeitherFlapNorComplete) {
  obs::MetricRegistry registry;
  obs::ChurnTracker churn(2, 1, &registry);
  const LinkModel links = MakeLinks({{0.0, 0.0}, {1.0, 0.0}}, 5.0);
  obs::ClusterView view = LiveView(2);
  view.is_rep[0] = 1;
  view.representative[1] = 0;
  churn.Observe(view, links, 0);
  view.alive[1] = 0;
  view.representative[1] = 1;  // stale self-pointer on a dead node
  churn.Observe(view, links, 10);
  EXPECT_EQ(churn.flaps_total(), 0u);

  // The rep dying completes its tenure.
  view.alive[0] = 0;
  view.is_rep[0] = 0;
  churn.Observe(view, links, 20);
  EXPECT_EQ(churn.completed_tenures(), 1u);
}

TEST(ChurnTrackerTest, RegionElectionsBucketByPosition) {
  obs::MetricRegistry registry;
  obs::ChurnTracker churn(4, /*grid=*/2, &registry);
  // One node per quadrant of the unit square.
  const LinkModel links = MakeLinks(
      {{0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}, {0.9, 0.9}}, 5.0);
  obs::ClusterView view = LiveView(4);
  view.is_rep[0] = 1;  // bottom-left cell 0
  view.is_rep[3] = 1;  // top-right cell 3
  churn.Observe(view, links, 0);
  EXPECT_EQ(churn.RegionElections(0), 1u);
  EXPECT_EQ(churn.RegionElections(1), 0u);
  EXPECT_EQ(churn.RegionElections(2), 0u);
  EXPECT_EQ(churn.RegionElections(3), 1u);
  EXPECT_EQ(
      registry.GetCounter("churn.region_elections", /*node=*/0)->value(), 1u);
}

// ---------------------------------------------------------------------------
// TopologyMonitor

TEST(TopologyMonitorTest, SamplePublishesGaugesAndJournalEvent) {
  obs::MetricRegistry registry;
  obs::EventJournal journal;
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      journal.SetSink(std::make_unique<obs::MemoryJournalSink>()));
  obs::TopologyMonitor monitor(obs::TopologyConfig{}, 3, &registry,
                               &journal);
  const LinkModel links =
      MakeLinks({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}}, 1.1);
  obs::ClusterView& view = monitor.mutable_view();
  view.is_rep[1] = 1;
  view.representative[0] = 1;
  view.representative[2] = 1;

  // Feed the observer one weak link (>= 8 addressed outcomes, all lost).
  for (int i = 0; i < 10; ++i) {
    monitor.link_observer().RecordLoss(0, 1, i);
  }
  const obs::TopologySnapshot& snap = monitor.Sample(links, 50);
  EXPECT_EQ(snap.partitions, 1u);
  EXPECT_EQ(snap.weak_links, 1u);
  EXPECT_EQ(monitor.num_samples(), 1u);

  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.partitions")->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.bridges")->value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.articulation_nodes")->value(),
                   1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.isolated_nodes")->value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.weak_links")->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.live_nodes")->value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.links_observed")->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("churn.election_rate")->value(), 1.0);
  EXPECT_EQ(registry.GetCounter("topo.samples")->value(), 1u);

  ASSERT_EQ(sink->lines().size(), 1u);
  EXPECT_NE(sink->lines()[0].find("\"event\":\"topo.sample\""),
            std::string::npos);
  EXPECT_NE(sink->lines()[0].find("\"partitions\":1"), std::string::npos);

  const std::string text = monitor.ToString();
  EXPECT_NE(text.find("partitions    1"), std::string::npos);
  EXPECT_NE(text.find("weakest links"), std::string::npos);
}

TEST(TopologyMonitorTest, ToStringBeforeFirstSample) {
  obs::MetricRegistry registry;
  obs::TopologyMonitor monitor(obs::TopologyConfig{}, 2, &registry);
  EXPECT_NE(monitor.ToString().find("no samples"), std::string::npos);
}

}  // namespace
}  // namespace snapq
