#include "model/multi_measurement.h"

#include "common/check.h"

namespace snapq {

MultiSensorStore::MultiSensorStore(NodeId self, size_t num_measurements,
                                   const CacheConfig& cache_config)
    : self_(self), cache_(cache_config) {
  SNAPQ_CHECK_GT(num_measurements, 0u);
  SNAPQ_CHECK_LE(num_measurements, 256u);
  own_values_.assign(num_measurements, 0.0);
  own_times_.assign(num_measurements, 0);
}

NodeId MultiSensorStore::PackKey(NodeId j, MeasurementId m) {
  SNAPQ_DCHECK(j < (kBroadcastId >> 8));
  return (j << 8) | m;
}

void MultiSensorStore::SetOwnValue(MeasurementId m, double value, Time t) {
  SNAPQ_CHECK_LT(m, own_values_.size());
  own_values_[m] = value;
  own_times_[m] = t;
}

double MultiSensorStore::own_value(MeasurementId m) const {
  SNAPQ_CHECK_LT(m, own_values_.size());
  return own_values_[m];
}

CacheManager::Action MultiSensorStore::Observe(NodeId j, MeasurementId m,
                                               double y, Time t) {
  SNAPQ_CHECK_LT(m, own_values_.size());
  return cache_.Observe(PackKey(j, m), own_values_[m], y, t);
}

std::optional<double> MultiSensorStore::Estimate(NodeId j,
                                                 MeasurementId m) const {
  SNAPQ_CHECK_LT(m, own_values_.size());
  return cache_.Estimate(PackKey(j, m), own_values_[m]);
}

bool MultiSensorStore::CanRepresent(NodeId j, MeasurementId m,
                                    double actual_y,
                                    const ErrorMetric& metric,
                                    double threshold) const {
  const std::optional<double> estimate = Estimate(j, m);
  if (!estimate.has_value()) return false;
  return metric.Within(actual_y, *estimate, threshold);
}

bool MultiSensorStore::CanRepresentAll(
    NodeId j, const std::vector<double>& actuals, const ErrorMetric& metric,
    const std::vector<double>& thresholds) const {
  SNAPQ_CHECK_EQ(actuals.size(), thresholds.size());
  SNAPQ_CHECK_LE(actuals.size(), own_values_.size());
  for (size_t m = 0; m < actuals.size(); ++m) {
    if (!CanRepresent(j, static_cast<MeasurementId>(m), actuals[m], metric,
                      thresholds[m])) {
      return false;
    }
  }
  return true;
}

}  // namespace snapq
