#include "net/link_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace snapq {
namespace {

LinkModel Line3(double range, double loss = 0.0) {
  // Nodes at x = 0, 1, 2 on a line.
  return LinkModel({{0, 0}, {1, 0}, {2, 0}},
                   {range, range, range}, loss);
}

TEST(LinkModelTest, ReachabilityByRange) {
  const LinkModel lm = Line3(1.0);
  EXPECT_TRUE(lm.CanReach(0, 1));
  EXPECT_FALSE(lm.CanReach(0, 2));
  EXPECT_TRUE(lm.CanReach(1, 0));
  EXPECT_TRUE(lm.CanReach(1, 2));
}

TEST(LinkModelTest, RangeBoundaryIsInclusive) {
  const LinkModel lm = Line3(1.0);
  EXPECT_TRUE(lm.CanReach(0, 1));  // distance exactly 1.0
}

TEST(LinkModelTest, SelfIsNotReachable) {
  const LinkModel lm = Line3(10.0);
  EXPECT_FALSE(lm.CanReach(1, 1));
  for (NodeId j : lm.Reachable(1)) {
    EXPECT_NE(j, 1u);
  }
}

TEST(LinkModelTest, AsymmetricRanges) {
  // Node 0 shouts far, node 1 whispers.
  const LinkModel lm({{0, 0}, {5, 0}}, {10.0, 1.0}, 0.0);
  EXPECT_TRUE(lm.CanReach(0, 1));
  EXPECT_FALSE(lm.CanReach(1, 0));
  EXPECT_EQ(lm.Reachable(0).size(), 1u);
  EXPECT_TRUE(lm.Reachable(1).empty());
}

TEST(LinkModelTest, ReachableListsMatchCanReach) {
  const LinkModel lm = Line3(1.5);
  for (NodeId i = 0; i < 3; ++i) {
    size_t count = 0;
    for (NodeId j = 0; j < 3; ++j) {
      if (lm.CanReach(i, j)) ++count;
    }
    EXPECT_EQ(lm.Reachable(i).size(), count);
  }
}

TEST(LinkModelTest, ZeroLossNeverDrops) {
  const LinkModel lm = Line3(1.0, 0.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(lm.SampleLoss(0, 1, rng));
  }
}

TEST(LinkModelTest, FullLossAlwaysDrops) {
  const LinkModel lm = Line3(1.0, 1.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(lm.SampleLoss(0, 1, rng));
  }
}

TEST(LinkModelTest, LossFrequencyMatchesProbability) {
  const LinkModel lm = Line3(1.0, 0.3);
  Rng rng(3);
  int losses = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    losses += lm.SampleLoss(0, 1, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(losses) / n, 0.3, 0.01);
}

TEST(LinkModelTest, PerLinkOverrideModelsObstacle) {
  LinkModel lm = Line3(2.0, 0.0);
  lm.SetLinkLoss(0, 1, 1.0);  // obstacle 0 -> 1 only
  Rng rng(4);
  EXPECT_TRUE(lm.SampleLoss(0, 1, rng));
  EXPECT_FALSE(lm.SampleLoss(1, 0, rng));
  EXPECT_FALSE(lm.SampleLoss(0, 2, rng));
}

TEST(LinkModelTest, ConnectivityDetection) {
  EXPECT_TRUE(Line3(1.0).IsConnected());
  EXPECT_FALSE(Line3(0.5).IsConnected());
}

TEST(LinkModelTest, ConnectedThroughAsymmetricLink) {
  // Undirected closure: one working direction connects the graph.
  const LinkModel lm({{0, 0}, {5, 0}}, {10.0, 1.0}, 0.0);
  EXPECT_TRUE(lm.IsConnected());
}

TEST(LinkModelTest, SqrtTwoRangeCoversUnitSquare) {
  // The paper's default: range sqrt(2) lets every node hear everyone in
  // the unit square.
  Rng rng(5);
  std::vector<Point> pts;
  std::vector<double> ranges;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.NextDouble(), rng.NextDouble()});
    ranges.push_back(std::sqrt(2.0));
  }
  const LinkModel lm(std::move(pts), std::move(ranges), 0.0);
  for (NodeId i = 0; i < 30; ++i) {
    EXPECT_EQ(lm.Reachable(i).size(), 29u);
  }
}

TEST(LinkModelTest, SetPositionRecomputesReachabilityBothDirections) {
  // Asymmetric ranges: after the whisperer moves next to the shouter,
  // both directions must reflect the new distance, and moving it far
  // away must sever both.
  LinkModel lm({{0, 0}, {5, 0}}, {10.0, 1.0}, 0.0);
  ASSERT_TRUE(lm.CanReach(0, 1));
  ASSERT_FALSE(lm.CanReach(1, 0));

  lm.SetPosition(1, {0.5, 0});
  EXPECT_TRUE(lm.CanReach(0, 1));
  EXPECT_TRUE(lm.CanReach(1, 0));  // now within the whisperer's range
  EXPECT_EQ(lm.Reachable(1).size(), 1u);

  lm.SetPosition(1, {20, 0});
  EXPECT_FALSE(lm.CanReach(0, 1));
  EXPECT_FALSE(lm.CanReach(1, 0));
  EXPECT_TRUE(lm.Reachable(1).empty());
  EXPECT_FALSE(lm.IsConnected());
}

TEST(LinkModelTest, SetPositionOfAThirdNodeLeavesOtherLinksAlone) {
  LinkModel lm = Line3(1.0);
  lm.SetPosition(2, {1, 1});  // 2 moves closer to 1, still out of 0's range
  EXPECT_TRUE(lm.CanReach(0, 1));
  EXPECT_TRUE(lm.CanReach(1, 2));
  EXPECT_FALSE(lm.CanReach(0, 2));
  EXPECT_EQ(lm.position(2).x, 1.0);
  EXPECT_EQ(lm.position(2).y, 1.0);
}

TEST(LinkModelTest, PerLinkLossOverridesSurviveMoves) {
  LinkModel lm = Line3(2.0, 0.0);
  lm.SetLinkLoss(0, 1, 1.0);
  lm.SetPosition(1, {0.5, 0});  // the obstacle moves with the link
  Rng rng(6);
  EXPECT_TRUE(lm.SampleLoss(0, 1, rng));
  EXPECT_FALSE(lm.SampleLoss(1, 0, rng));
}

TEST(LinkModelTest, SingleNodeNetwork) {
  const LinkModel lm({{0.5, 0.5}}, {1.0}, 0.0);
  EXPECT_TRUE(lm.Reachable(0).empty());
  EXPECT_TRUE(lm.IsConnected());
}

}  // namespace
}  // namespace snapq
