// The timeline sidecar: the canonical JSON document a soak/bench run
// leaves next to BENCH.json, holding every telemetry series (all-time
// aggregates + retained bins) and the SLO verdicts. Schema v1 is frozen —
// tools/timeline_check.py validates and diffs it, and the soak-smoke CI
// job gates on it; update both together with the golden test.
#ifndef SNAPQ_OBS_TIMELINE_H_
#define SNAPQ_OBS_TIMELINE_H_

#include <string>

#include "net/node_id.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace snapq::obs {

inline constexpr int kTimelineSchemaVersion = 1;

struct TimelineMeta {
  std::string benchmark;
  std::string git_sha = "unknown";
  bool quick = false;
  Time horizon = 0;
};

/// Appends the {"name": {...}, ...} series map body (used by the timeline
/// document and the blackbox dump).
void AppendSeriesJson(const TelemetryRecorder& recorder, std::string* out);

/// Appends the {"rules": [...], "breaches": [...], "verdict": ...} object.
void AppendSloJson(const SloWatchdog& watchdog, std::string* out);

/// The full timeline document (schema v1). `watchdog` may be null (a run
/// without SLO rules emits an empty rule set and a "pass" verdict).
std::string TimelineToJson(const TelemetryRecorder& recorder,
                           const SloWatchdog* watchdog,
                           const TimelineMeta& meta);

/// Atomically replaces `path` with `contents` (stage + rename), so readers
/// never observe a half-written sidecar. Returns false on failure.
bool WriteTextFileAtomic(const std::string& path, const std::string& contents);

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_TIMELINE_H_
