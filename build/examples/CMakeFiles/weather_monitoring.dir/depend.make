# Empty dependencies file for weather_monitoring.
# This may be replaced when dependencies are built.
