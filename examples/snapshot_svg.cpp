// Renders a Figure-1-style picture of an elected network snapshot as SVG:
// dark circles are representatives, light circles passive nodes, and a
// line connects each representative to the nodes it represents.
//
//   $ ./build/examples/snapshot_svg > snapshot.svg
#include <cstdio>

#include "api/experiment.h"

using namespace snapq;

int main() {
  SensitivityConfig config;
  config.num_classes = 10;
  config.transmission_range = 0.5;
  config.seed = 4;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  SensorNetwork& net = *outcome.network;
  const SnapshotView view = net.Snapshot();

  const double size = 640.0;
  auto sx = [&](double x) { return 20.0 + x * (size - 40.0); };
  auto sy = [&](double y) { return 20.0 + (1.0 - y) * (size - 40.0); };

  std::printf("<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
              "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
              size, size, size, size);
  std::printf("  <rect width=\"%.0f\" height=\"%.0f\" fill=\"white\"/>\n",
              size, size);

  // Representation edges first (under the nodes).
  for (NodeId rep = 0; rep < net.num_nodes(); ++rep) {
    for (const auto& [member, epoch] : view.node(rep).represents) {
      if (!view.RepresentsCurrently(rep, member)) continue;
      const Point& a = net.position(rep);
      const Point& b = net.position(member);
      std::printf("  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                  "stroke=\"#888\" stroke-width=\"1\"/>\n",
                  sx(a.x), sy(a.y), sx(b.x), sy(b.y));
    }
  }
  for (NodeId i = 0; i < net.num_nodes(); ++i) {
    const bool active = view.node(i).mode == NodeMode::kActive;
    const Point& p = net.position(i);
    std::printf("  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"%s\" fill=\"%s\" "
                "stroke=\"black\"/>\n",
                sx(p.x), sy(p.y), active ? "8" : "5",
                active ? "#222" : "#ddd");
  }
  std::printf("  <text x=\"24\" y=\"%.0f\" font-family=\"sans-serif\" "
              "font-size=\"14\">%zu representatives of %zu nodes "
              "(K=%zu, T=%.1f, range=%.2f)</text>\n",
              size - 8.0, view.CountActive(), net.num_nodes(),
              config.num_classes, config.threshold,
              config.transmission_range);
  std::printf("</svg>\n");
  std::fprintf(stderr, "snapshot: %zu representatives of %zu nodes\n",
               view.CountActive(), net.num_nodes());
  return 0;
}
