#include "data/dataset.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace snapq {

Result<Dataset> Dataset::Create(std::vector<TimeSeries> series) {
  if (series.empty()) {
    return Status::InvalidArgument("dataset requires at least one series");
  }
  const size_t len = series.front().size();
  for (size_t i = 1; i < series.size(); ++i) {
    if (series[i].size() != len) {
      return Status::InvalidArgument(StrFormat(
          "series %zu has length %zu, expected %zu", i, series[i].size(),
          len));
    }
  }
  return Dataset(std::move(series));
}

Status Dataset::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (size_t i = 0; i < series_.size(); ++i) {
    out << (i == 0 ? "" : ",") << "node" << i;
  }
  out << "\n";
  for (size_t t = 0; t < horizon(); ++t) {
    for (size_t i = 0; i < series_.size(); ++i) {
      if (i != 0) out << ",";
      out << series_[i].at(t);
    }
    out << "\n";
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Result<Dataset> Dataset::ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::vector<TimeSeries> series;
  std::string line;
  size_t line_no = 0;
  bool first_data_row = true;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    const auto cells = Split(stripped, ',');
    // Header detection: if any cell of the first row is non-numeric, skip it.
    if (line_no == 1) {
      bool numeric = true;
      for (const auto& c : cells) {
        if (!ParseDouble(c).ok()) {
          numeric = false;
          break;
        }
      }
      if (!numeric) continue;
    }
    if (first_data_row) {
      series.resize(cells.size());
      first_data_row = false;
    }
    if (cells.size() != series.size()) {
      return Status::ParseError(
          StrFormat("%s:%zu: expected %zu columns, found %zu", path.c_str(),
                    line_no, series.size(), cells.size()));
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      Result<double> v = ParseDouble(cells[i]);
      if (!v.ok()) {
        return Status::ParseError(StrFormat("%s:%zu: column %zu: %s",
                                            path.c_str(), line_no, i,
                                            v.status().message().c_str()));
      }
      series[i].Append(*v);
    }
  }
  if (series.empty()) {
    return Status::ParseError("no data rows in " + path);
  }
  return Dataset::Create(std::move(series));
}

}  // namespace snapq
