// Continuous queries: the paper's SAMPLE INTERVAL ... FOR ... clause
// (§3.1). A continuous query runs one execution round per sampling epoch;
// the monotonically increasing epoch id doubles as the global counter the
// paper suggests for timestamping in the absence of synchronized clocks
// (§3).
#ifndef SNAPQ_QUERY_CONTINUOUS_H_
#define SNAPQ_QUERY_CONTINUOUS_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "query/executor.h"

namespace snapq {

/// One sampling epoch's outcome.
struct EpochResult {
  int64_t epoch = 0;  ///< 0-based epoch id within this query
  Time time = 0;      ///< simulation time the round executed at
  QueryResult result;
};

/// Schedules and drives continuous queries against a QueryExecutor.
class ContinuousQueryRunner {
 public:
  using EpochCallback = std::function<void(const EpochResult&)>;

  ContinuousQueryRunner(Simulator* sim, QueryExecutor* executor);

  /// Schedules `spec` starting at absolute time `start` (>= now()):
  /// one round per sample interval for the query's duration (single-shot
  /// when no SAMPLE INTERVAL is given). Intervals shorter than one time
  /// unit are clamped to one. Returns the number of epochs scheduled.
  Result<int64_t> Schedule(const QuerySpec& spec, Time start,
                           const ExecutionOptions& options,
                           EpochCallback callback);

  /// Parses `sql` and schedules it.
  Result<int64_t> ScheduleSql(const std::string& sql, Time start,
                              const ExecutionOptions& options,
                              EpochCallback callback);

 private:
  Simulator* const sim_;
  QueryExecutor* const executor_;
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_CONTINUOUS_H_
