#include "api/network.h"

#include <utility>

#include "common/check.h"
#include "net/topology.h"
#include "snapshot/health_probe.h"

namespace snapq {

SensorNetwork::SensorNetwork(const NetworkConfig& config) : config_(config) {
  SNAPQ_CHECK_GT(config.num_nodes, 0u);
  SNAPQ_CHECK_GT(config.transmission_range, 0.0);

  Rng root(config.seed);
  std::vector<Point> positions = config.positions;
  if (positions.empty()) {
    Rng placement = root.SplitNamed("placement");
    positions = PlaceUniform(config.num_nodes, config.area, placement);
  }
  SNAPQ_CHECK_EQ(positions.size(), config.num_nodes);

  SimConfig sim_config;
  sim_config.loss_probability = config.loss_probability;
  sim_config.snoop_probability = config.snoop_probability;
  sim_config.energy = config.energy;
  sim_config.seed = root.SplitNamed("simulator").NextUint64();

  std::vector<double> ranges(config.num_nodes, config.transmission_range);
  sim_ = std::make_unique<Simulator>(std::move(positions), std::move(ranges),
                                     sim_config);

  Rng agent_seeds = root.SplitNamed("agents");
  agents_.reserve(config.num_nodes);
  for (NodeId i = 0; i < config.num_nodes; ++i) {
    agents_.push_back(std::make_unique<SnapshotAgent>(
        i, sim_.get(), config.snapshot, agent_seeds.NextUint64()));
    agents_.back()->Install();
  }

  executor_ = std::make_unique<QueryExecutor>(
      sim_.get(), &agents_, Catalog::WithStandardRegions(config.area));
  continuous_ =
      std::make_unique<ContinuousQueryRunner>(sim_.get(), executor_.get());
}

Status SensorNetwork::AttachDataset(Dataset data) {
  if (data.num_nodes() != agents_.size()) {
    return Status::InvalidArgument(
        "dataset node count does not match the network");
  }
  dataset_ = std::move(data);
  const Dataset& ds = *dataset_;
  // Data events for tick t are scheduled now, ahead of any protocol event
  // later scheduled for t, so the FIFO tie-break delivers fresh readings
  // before the protocol acts on them.
  for (Time t = sim_->now(); t < static_cast<Time>(ds.horizon()); ++t) {
    sim_->ScheduleAt(t, [this, t] {
      for (NodeId i = 0; i < agents_.size(); ++i) {
        agents_[i]->SetMeasurement(
            dataset_->Value(i, static_cast<size_t>(t)));
      }
    });
  }
  return Status::Ok();
}

void SensorNetwork::SetMeasurements(const std::vector<double>& values) {
  SNAPQ_CHECK_EQ(values.size(), agents_.size());
  for (NodeId i = 0; i < agents_.size(); ++i) {
    agents_[i]->SetMeasurement(values[i]);
  }
}

void SensorNetwork::ScheduleTrainingBroadcasts(Time from, Time to) {
  for (Time t = from; t < to; ++t) {
    sim_->ScheduleAt(t, [this] {
      for (auto& agent : agents_) {
        if (sim_->alive(agent->id())) agent->BroadcastValue();
      }
    });
  }
}

ElectionStats SensorNetwork::RunElection(Time t0) {
  return RunGlobalElection(*sim_, agents_, t0, config_.snapshot);
}

void SensorNetwork::ScheduleMaintenance(
    Time first, Time horizon, Time interval,
    MaintenanceDriver::RoundCallback callback) {
  maintenance_ =
      std::make_unique<MaintenanceDriver>(sim_.get(), &agents_, interval);
  maintenance_->ScheduleRounds(first, horizon, std::move(callback));
}

obs::Tracer& SensorNetwork::EnableTracing(const obs::TracerConfig& config) {
  tracer_ = std::make_unique<obs::Tracer>(config);
  sim_->SetTracer(tracer_.get());
  return *tracer_;
}

obs::HealthSample SensorNetwork::SampleHealth() {
  if (monitor_ == nullptr) {
    monitor_ = std::make_unique<obs::SnapshotHealthMonitor>(&sim_->registry(),
                                                            &sim_->journal());
  }
  const obs::HealthSample sample = ProbeSnapshotHealth(*sim_, agents_);
  monitor_->Observe(sample, sim_->now());
  return sample;
}

void SensorNetwork::ScheduleHealthSampling(Time first, Time horizon,
                                           Time interval) {
  SNAPQ_CHECK_GT(interval, 0);
  for (Time t = first; t < horizon; t += interval) {
    sim_->ScheduleAt(t, [this] { SampleHealth(); });
  }
}

Result<QueryResult> SensorNetwork::Query(const std::string& sql,
                                         const ExecutionOptions& options) {
  return executor_->ExecuteSql(sql, options);
}

Result<ExplainReport> SensorNetwork::Explain(const std::string& sql,
                                             const ExecutionOptions& options) {
  return ExplainSql(*executor_, sql, options);
}

Result<int64_t> SensorNetwork::RunContinuousQuery(
    const std::string& sql, Time start,
    ContinuousQueryRunner::EpochCallback callback,
    const ExecutionOptions& options) {
  return continuous_->ScheduleSql(sql, start, options, std::move(callback));
}

}  // namespace snapq
