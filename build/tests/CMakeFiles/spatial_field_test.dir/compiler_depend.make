# Empty compiler generated dependencies file for spatial_field_test.
# This may be replaced when dependencies are built.
