#include "query/innetwork.h"

#include <algorithm>

#include "common/check.h"

namespace snapq {

InNetworkAggregator::InNetworkAggregator(
    Simulator* sim, std::vector<std::unique_ptr<SnapshotAgent>>* agents,
    const InNetworkConfig& config)
    : sim_(sim), agents_(agents), config_(config) {
  SNAPQ_CHECK(sim != nullptr && agents != nullptr);
  SNAPQ_CHECK_GT(config_.max_depth, 0);
  for (auto& agent : *agents_) {
    const NodeId self = agent->id();
    agent->SetQueryHandler(
        [this, self](const Message& msg) { OnQueryMessage(self, msg); });
  }
}

InNetworkAggregator::~InNetworkAggregator() {
  for (auto& agent : *agents_) {
    agent->SetQueryHandler({});
  }
}

InNetworkResult InNetworkAggregator::Execute(const Rect& region,
                                             AggregateFunction function,
                                             NodeId sink, bool use_snapshot) {
  SNAPQ_CHECK(function != AggregateFunction::kNone);
  SNAPQ_CHECK_LT(sink, agents_->size());
  SNAPQ_CHECK(!active_);

  ++query_id_;
  region_ = region;
  function_ = function;
  use_snapshot_ = use_snapshot;
  sink_ = sink;
  start_ = sim_->now();
  states_.clear();
  states_.resize(agents_->size());
  active_ = true;

  const uint64_t requests_before =
      sim_->metrics().sent(MessageType::kQueryRequest);
  const uint64_t replies_before =
      sim_->metrics().sent(MessageType::kQueryReply);

  // Root cause: the injected in-network query. The request flood, reply
  // slots and replies all descend from this context (the re-flooded
  // requests chain through each hop's message span).
  const TraceContext qroot = sim_->MintTraceRoot(
      obs::TraceRootKind::kQuery, sink, use_snapshot ? 1 : 0);

  InNetworkResult result;
  if (sim_->alive(sink)) {
    Simulator::TraceScope scope(*sim_, qroot);
    // The sink roots the tree and floods the request.
    NodeState& root = states_[sink];
    root.saw_request = true;
    root.depth = 0;
    root.partial = std::make_unique<PartialAggregate>(function);
    Message request;
    request.type = MessageType::kQueryRequest;
    request.from = sink;
    request.to = kBroadcastId;
    request.epoch = query_id_;
    request.value = 0.0;  // sender depth
    request.aux = static_cast<double>(function);
    request.values = {region.min_x, region.min_y, region.max_x,
                      region.max_y};
    sim_->Send(request);
    root.transmitted = true;
  }

  // Collection deadline: depth-d nodes reply at start + 2*max_depth - d;
  // the sink finalizes one unit later.
  const Time deadline = start_ + 2 * config_.max_depth + 1;
  sim_->RunUntil(deadline);

  NodeState& root = states_[sink];
  if (sim_->alive(sink) && root.partial != nullptr) {
    // The sink finalizes outside any delivered-message context; restore
    // the query root so its contribution instants join the trace.
    Simulator::TraceScope scope(*sim_, qroot);
    ContributeLocal(sink);
    if (root.readings > 0) {
      result.aggregate = root.partial->Finalize();
      result.readings = root.readings;
    }
  }
  for (NodeId i = 0; i < states_.size(); ++i) {
    // Participants: nodes that carried data (the §6.2 accounting);
    // request flooding is counted separately.
    if (i == sink_) continue;
    const NodeState& s = states_[i];
    if (s.transmitted && s.readings > 0) ++result.participants;
  }
  if (result.aggregate.has_value()) {
    // The sink carries data but transmits nothing upward.
    ++result.participants;
  }
  result.request_messages =
      sim_->metrics().sent(MessageType::kQueryRequest) - requests_before;
  result.reply_messages =
      sim_->metrics().sent(MessageType::kQueryReply) - replies_before;
  active_ = false;
  return result;
}

void InNetworkAggregator::OnQueryMessage(NodeId self, const Message& msg) {
  if (!active_ || msg.epoch != query_id_) return;
  switch (msg.type) {
    case MessageType::kQueryRequest:
      HandleRequest(self, msg);
      return;
    case MessageType::kQueryReply:
      HandleReply(self, msg);
      return;
    default:
      return;
  }
}

void InNetworkAggregator::HandleRequest(NodeId self, const Message& msg) {
  NodeState& state = states_[self];
  if (state.saw_request) return;  // first-heard sender becomes the parent
  state.saw_request = true;
  state.parent = msg.from;
  state.depth = static_cast<Time>(msg.value) + 1;
  state.partial = std::make_unique<PartialAggregate>(function_);

  // Re-flood (bounded by max_depth) so deeper nodes join the tree.
  if (state.depth < config_.max_depth) {
    Message forward = msg;
    forward.from = self;
    forward.value = static_cast<double>(state.depth);
    sim_->Send(forward);
    // Forwarding the request is radio traffic but not data-carrying
    // participation; `transmitted` marks data senders only when readings
    // accompany them (see Execute()).
    state.transmitted = true;
  }

  // Reply slot: deeper nodes first, so parents fold children's partials.
  const Time reply_at =
      start_ + 2 * config_.max_depth - std::min(state.depth,
                                                config_.max_depth);
  sim_->ScheduleAt(reply_at, [this, self, id = query_id_] {
    if (active_ && query_id_ == id) SendReply(self);
  });
}

void InNetworkAggregator::HandleReply(NodeId self, const Message& msg) {
  NodeState& state = states_[self];
  if (!state.saw_request || state.partial == nullptr) return;
  if (state.replied) return;  // a child's late reply: its data is lost
  SNAPQ_CHECK_EQ(msg.values.size(), 3u);
  const PartialAggregate child = PartialAggregate::FromWire(
      function_, static_cast<uint64_t>(msg.aux), msg.values[0],
      msg.values[1], msg.values[2]);
  state.partial->Merge(child);
  state.readings += child.count();
}

void InNetworkAggregator::ContributeLocal(NodeId self) {
  NodeState& state = states_[self];
  const SnapshotAgent& agent = *(*agents_)[self];
  const bool in_region = region_.Contains(sim_->links().position(self));
  const size_t readings_before = state.readings;
  if (!use_snapshot_) {
    if (in_region) {
      state.partial->AddValue(agent.measurement());
      ++state.readings;
    }
  } else {
    // Snapshot rule (§3.1): self-report when unrepresented and matching...
    if (in_region && agent.mode() != NodeMode::kPassive) {
      state.partial->AddValue(agent.measurement());
      ++state.readings;
    }
    // ...and estimates for represented matching nodes.
    for (const auto& [member, epoch] : agent.represents()) {
      if (!region_.Contains(sim_->links().position(member))) continue;
      const std::optional<double> estimate = agent.EstimateFor(member);
      if (estimate.has_value()) {
        state.partial->AddValue(*estimate);
        ++state.readings;
      }
    }
  }
  // Trace annotation mirroring the analytic executor: this node answered
  // (from own reading or on behalf of members); a PASSIVE responder breaks
  // the snapshot invariant.
  const TraceContext& ctx = sim_->current_trace();
  if (state.readings > readings_before && ctx.sampled() &&
      sim_->tracer() != nullptr) {
    const bool passive =
        use_snapshot_ && agent.mode() == NodeMode::kPassive;
    sim_->tracer()->RecordInstant(ctx, "query.respond", self, sim_->now(),
                                  passive ? 1 : 0);
  }
}

void InNetworkAggregator::SendReply(NodeId self) {
  NodeState& state = states_[self];
  if (state.replied || !state.saw_request || !sim_->alive(self)) return;
  state.replied = true;
  if (self == sink_) return;  // the sink finalizes locally
  ContributeLocal(self);
  if (state.readings == 0) return;  // nothing to report: stay silent
  Message reply;
  reply.type = MessageType::kQueryReply;
  reply.from = self;
  reply.to = state.parent;
  reply.epoch = query_id_;
  reply.aux = static_cast<double>(state.partial->count());
  reply.values = {state.partial->sum(), state.partial->min(),
                  state.partial->max()};
  sim_->Send(reply);
  state.transmitted = true;
}

}  // namespace snapq
