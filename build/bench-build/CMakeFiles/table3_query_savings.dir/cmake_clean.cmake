file(REMOVE_RECURSE
  "../bench/table3_query_savings"
  "../bench/table3_query_savings.pdb"
  "CMakeFiles/table3_query_savings.dir/table3_query_savings.cc.o"
  "CMakeFiles/table3_query_savings.dir/table3_query_savings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_query_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
