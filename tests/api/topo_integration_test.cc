// End-to-end tests of the topology & churn observatory through the
// public API: the link observer rides real protocol traffic, a forced
// partition moves topo.partitions and trips a topology SLO exactly when
// the network splits, re-election shows up as churn, and the topo series
// register with telemetry in either enable order.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/network.h"
#include "data/random_walk.h"
#include "obs/journal.h"
#include "obs/topo.h"

namespace snapq {
namespace {

/// A 7-node dumbbell: two triangles joined only through node 3 — node 3
/// is an articulation node, and killing it partitions the network.
NetworkConfig DumbbellConfig() {
  NetworkConfig config;
  config.num_nodes = 7;
  config.positions = {{0.0, 0.0}, {0.1, 0.0}, {0.2, 0.0}, {0.5, 0.0},
                      {0.8, 0.0}, {0.9, 0.0}, {1.0, 0.0}};
  config.transmission_range = 0.35;
  config.snapshot.threshold = 10.0;  // keep representation quiet
  config.seed = 5;
  return config;
}

TEST(TopoIntegrationTest, PartitionMovesGaugesAndTripsTheSloExactlyOnce) {
  SensorNetwork net(DumbbellConfig());
  net.EnableTelemetry();
  net.EnableTopologyMonitor();
  ASSERT_TRUE(net.AddSloRule("topo.partitions value <= 1"));

  auto* sink = static_cast<obs::MemoryJournalSink*>(
      net.sim().journal().SetSink(std::make_unique<obs::MemoryJournalSink>()));

  // Intact dumbbell: one component held together by node 3.
  net.SampleTelemetry();
  obs::MetricRegistry& registry = net.sim().registry();
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.partitions")->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.live_nodes")->value(), 7.0);
  EXPECT_GE(registry.GetGauge("topo.bridges")->value(), 2.0);
  const obs::TopologySnapshot& before = net.topology_monitor()->last();
  ASSERT_FALSE(before.articulation.empty());
  EXPECT_TRUE(std::find(before.articulation.begin(),
                        before.articulation.end(),
                        NodeId{3}) != before.articulation.end());
  EXPECT_TRUE(net.watchdog()->healthy());

  // Coverage collapses: the cut node dies, the network splits in two.
  net.sim().Kill(3);
  net.SampleTelemetry();
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.partitions")->value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("topo.live_nodes")->value(), 6.0);
  EXPECT_FALSE(net.watchdog()->healthy());
  EXPECT_EQ(net.watchdog()->breaches().size(), 1u);
  EXPECT_EQ(net.watchdog()->breaches()[0].rule.metric, "topo.partitions");

  // The breach confirms once per episode, not once per sample.
  net.SampleTelemetry();
  EXPECT_EQ(net.watchdog()->breaches().size(), 1u);

  // Both the per-sample event and the breach verdict hit the journal.
  bool saw_topo_sample = false, saw_breach = false;
  for (const std::string& line : sink->lines()) {
    if (line.find("\"event\":\"topo.sample\"") != std::string::npos) {
      saw_topo_sample = true;
    }
    if (line.find("\"event\":\"slo.breach\"") != std::string::npos &&
        line.find("topo.partitions") != std::string::npos) {
      saw_breach = true;
    }
  }
  EXPECT_TRUE(saw_topo_sample);
  EXPECT_TRUE(saw_breach);
}

TEST(TopoIntegrationTest, LinkObserverRidesProtocolTraffic) {
  NetworkConfig config;
  config.num_nodes = 10;
  config.transmission_range = 0.8;
  config.loss_probability = 0.2;
  config.snoop_probability = 0.3;
  config.seed = 3;
  SensorNetwork net(config);
  net.EnableTopologyMonitor();  // without telemetry: observer still feeds
  net.RunElection(0);

  const obs::LinkObserver& observer =
      net.topology_monitor()->link_observer();
  EXPECT_GT(observer.num_links(), 0u);
  uint64_t deliveries = 0, losses = 0;
  for (const obs::LinkStats& l : observer.SortedLinks()) {
    deliveries += l.deliveries;
    losses += l.losses;
  }
  EXPECT_GT(deliveries, 0u);
  EXPECT_GT(losses, 0u);  // 20% loss over an election: some must drop

  // Sampling without telemetry publishes gauges directly.
  const obs::TopologySnapshot& snap = net.SampleTopologyNow();
  EXPECT_EQ(snap.num_live, 10u);
  EXPECT_GT(net.sim().registry().GetGauge("topo.links_observed")->value(),
            0.0);
}

TEST(TopoIntegrationTest, ReElectionRegistersAsChurn) {
  // Real clusters need correlated data: train models over a 3-class
  // random walk so the election produces representatives with passive
  // members, then kill every representative and re-elect.
  NetworkConfig config;
  config.num_nodes = 30;
  config.transmission_range = 0.8;
  config.snapshot.threshold = 1.0;
  config.snapshot.max_wait = 8;
  config.seed = 17;
  SensorNetwork net(config);
  Rng rng(17);
  RandomWalkConfig walk;
  walk.num_nodes = 30;
  walk.num_classes = 3;
  walk.horizon = 200;
  Result<Dataset> data =
      Dataset::Create(GenerateRandomWalk(walk, rng).series);
  ASSERT_TRUE(net.AttachDataset(std::move(data).value()).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(50);
  net.EnableTopologyMonitor();
  const ElectionStats election = net.RunElection(50);
  ASSERT_GT(election.num_passive, 0u);  // clustering actually happened
  net.SampleTopologyNow();

  const obs::ChurnTracker& churn = net.topology_monitor()->churn();
  const uint64_t initial_elections = churn.elections_total();
  EXPECT_GT(initial_elections, 0u);  // the first sweep sees the winners

  // Kill every current representative and re-elect: passive members must
  // find new winners, which the next sweep counts as elections, and the
  // members' representative switch as flaps.
  for (NodeId i = 0; i < net.num_nodes(); ++i) {
    if (net.agent(i).mode() == NodeMode::kActive &&
        !net.agent(i).represents().empty()) {
      net.sim().Kill(i);
    }
  }
  net.RunElection(net.now() + 1);
  net.SampleTopologyNow();
  EXPECT_GT(churn.elections_total(), initial_elections);
  EXPECT_GT(churn.flaps_total(), 0u);
  EXPECT_GT(churn.completed_tenures(), 0u);  // the dead reps' tenures end
}

TEST(TopoIntegrationTest, TopoSeriesRegisterInEitherEnableOrder) {
  for (const bool telemetry_first : {true, false}) {
    NetworkConfig config;
    config.num_nodes = 4;
    config.transmission_range = 2.0;
    config.seed = 2;
    SensorNetwork net(config);
    if (telemetry_first) {
      net.EnableTelemetry();
      net.EnableTopologyMonitor();
    } else {
      net.EnableTopologyMonitor();
      net.EnableTelemetry();
    }
    for (const char* name :
         {"topo.partitions", "topo.bridges", "topo.articulation_nodes",
          "topo.avg_degree", "topo.isolated_nodes", "topo.weak_links",
          "churn.flap_rate", "churn.election_rate", "churn.rep_tenure_p50"}) {
      EXPECT_NE(net.telemetry()->series(name), nullptr)
          << name << " (telemetry_first=" << telemetry_first << ")";
    }
    // One end-to-end sample through SampleTelemetry reaches the series.
    net.SampleTelemetry();
    EXPECT_GT(net.telemetry()->series("topo.partitions")->num_samples(), 0u);
  }
}

}  // namespace
}  // namespace snapq
