// The structured event journal: an append-only JSONL stream of protocol
// events (election state transitions, representative changes, cache
// evictions, query plans) with sim-time, node and epoch attribution. It
// supersedes the ad-hoc ToString() dumps for anything a script needs to
// read back.
//
// One event per line:
//
//   {"event":"election.mode","t":101,"node":17,"epoch":3,"mode":"active"}
//
// "event" and "t" are reserved keys; everything else is a flat field.
//
// Sinks are pluggable: a file (experiments), an in-memory buffer (tests,
// the shell's \journal command), or none — the default. With no sink the
// journal is disabled and Emit() is a single branch: the field-building
// callback never runs, so instrumented hot paths cost nothing beyond the
// check.
#ifndef SNAPQ_OBS_JOURNAL_H_
#define SNAPQ_OBS_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/node_id.h"

namespace snapq::obs {

/// One journal record, buildable (writer side) and inspectable (parsed
/// back from a JSONL line in tests and tooling).
class JournalEvent {
 public:
  JournalEvent(std::string_view name, int64_t t) : name_(name), time_(t) {}

  // Builder interface; all return *this for chaining.
  JournalEvent& Node(NodeId node) {
    return Int("node", static_cast<int64_t>(node));
  }
  JournalEvent& Epoch(int64_t epoch) { return Int("epoch", epoch); }
  JournalEvent& Int(std::string_view key, int64_t value);
  JournalEvent& Num(std::string_view key, double value);
  JournalEvent& Str(std::string_view key, std::string_view value);
  JournalEvent& Bool(std::string_view key, bool value);

  const std::string& name() const { return name_; }
  int64_t time() const { return time_; }

  // Field lookup (parsed or built events); nullopt when absent or of a
  // different kind. Num() also reads integer fields.
  std::optional<int64_t> GetInt(std::string_view key) const;
  std::optional<double> GetNum(std::string_view key) const;
  std::optional<std::string> GetStr(std::string_view key) const;
  std::optional<bool> GetBool(std::string_view key) const;
  size_t num_fields() const { return fields_.size(); }

  /// (key, type) view of the fields in emission order, with type one of
  /// "int", "num", "str", "bool". For schema-stability tests: asserts on
  /// field names/types without widening the per-kind lookup API. Note a
  /// parsed-back event reports integral JSON numbers as "int" regardless
  /// of the writer-side kind (JSON does not distinguish them).
  std::vector<std::pair<std::string, std::string>> Fields() const;

  /// The JSONL form, no trailing newline.
  std::string ToJsonLine() const;

  /// Parses a line produced by ToJsonLine(). Returns nullopt on malformed
  /// input or a missing "event"/"t" key.
  static std::optional<JournalEvent> Parse(std::string_view line);

 private:
  struct Field {
    enum class Kind { kInt, kNum, kStr, kBool };
    std::string key;
    Kind kind = Kind::kInt;
    int64_t i = 0;
    double d = 0.0;
    std::string s;
    bool b = false;
  };

  const Field* Find(std::string_view key) const;

  std::string name_;
  int64_t time_ = 0;
  std::vector<Field> fields_;
};

/// Where journal lines go.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void Write(const std::string& line) = 0;
  virtual void Flush() {}
};

/// Appends lines to a file. Check ok() after construction.
class FileJournalSink : public JournalSink {
 public:
  explicit FileJournalSink(const std::string& path);
  ~FileJournalSink() override;
  bool ok() const { return file_ != nullptr; }
  void Write(const std::string& line) override;
  void Flush() override;

 private:
  std::FILE* file_ = nullptr;
};

/// Buffers lines in memory (tests, interactive inspection). Keeps at most
/// `max_lines` recent lines (0 = unbounded).
class MemoryJournalSink : public JournalSink {
 public:
  explicit MemoryJournalSink(size_t max_lines = 0) : max_lines_(max_lines) {}
  void Write(const std::string& line) override;
  const std::vector<std::string>& lines() const { return lines_; }
  void Clear() { lines_.clear(); }

 private:
  size_t max_lines_;
  std::vector<std::string> lines_;
};

/// The journal itself. Disabled (null sink) by default.
class EventJournal {
 public:
  EventJournal() = default;
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Installs `sink` (nullptr disables). Returns the raw pointer for
  /// convenience (e.g. keeping a MemoryJournalSink* to read back).
  JournalSink* SetSink(std::unique_ptr<JournalSink> sink) {
    sink_ = std::move(sink);
    return sink_.get();
  }
  /// Installs `sink` and returns the previous one — the tee pattern: wrap
  /// the old sink (e.g. in a FlightRecorder forward) instead of dropping
  /// it, so an observer can splice itself in front of an existing stream.
  std::unique_ptr<JournalSink> ReplaceSink(std::unique_ptr<JournalSink> sink) {
    std::unique_ptr<JournalSink> old = std::move(sink_);
    sink_ = std::move(sink);
    return old;
  }
  bool enabled() const { return sink_ != nullptr; }
  uint64_t events_emitted() const { return emitted_; }

  /// Emits an event with fields added by `fill(JournalEvent&)`. When the
  /// journal is disabled this is one branch; `fill` does not run.
  template <typename Fn>
  void Emit(std::string_view name, int64_t t, Fn&& fill) {
    if (sink_ == nullptr) return;
    JournalEvent event(name, t);
    fill(event);
    WriteEvent(event);
  }

  /// Field-free event.
  void Emit(std::string_view name, int64_t t) {
    if (sink_ == nullptr) return;
    WriteEvent(JournalEvent(name, t));
  }

  void Flush() {
    if (sink_ != nullptr) sink_->Flush();
  }

 private:
  void WriteEvent(const JournalEvent& event);

  std::unique_ptr<JournalSink> sink_;
  uint64_t emitted_ = 0;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_JOURNAL_H_
