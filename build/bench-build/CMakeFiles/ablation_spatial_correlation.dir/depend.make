# Empty dependencies file for ablation_spatial_correlation.
# This may be replaced when dependencies are built.
