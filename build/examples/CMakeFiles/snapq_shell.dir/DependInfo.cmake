
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/snapq_shell.cpp" "examples/CMakeFiles/snapq_shell.dir/snapq_shell.cpp.o" "gcc" "examples/CMakeFiles/snapq_shell.dir/snapq_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snapq_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
