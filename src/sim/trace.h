// Protocol event tracing: an optional ring buffer of radio events
// (transmissions, deliveries, losses, snoops) attachable to a Simulator.
// Used for debugging protocol interleavings and by tests that assert on
// message sequences.
#ifndef SNAPQ_SIM_TRACE_H_
#define SNAPQ_SIM_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/node_id.h"
#include "net/trace_context.h"

namespace snapq {

/// One traced radio event.
struct TraceEvent {
  /// The shared radio-event taxonomy (net/trace_context.h); `Kind` remains
  /// as an alias so existing call sites keep compiling.
  using Kind = RadioEventKind;
  Kind kind = Kind::kSend;
  Time time = 0;
  MessageType type = MessageType::kData;
  NodeId from = kInvalidNode;
  /// Receiver for deliver/snoop/loss; kInvalidNode for sends.
  NodeId node = kInvalidNode;
  int64_t epoch = 0;
  /// Causal ids stamped by the attached obs::Tracer; 0 when the event was
  /// not part of a sampled trace.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  std::string ToString() const;
};

inline const char* TraceEventKindName(TraceEvent::Kind kind) {
  return RadioEventKindName(kind);
}

/// Fixed-capacity ring buffer of trace events; old events are overwritten.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 4096);

  void Record(const TraceEvent& event);

  /// Number of retained events (<= capacity).
  size_t size() const { return count_; }
  size_t capacity() const { return buffer_.size(); }
  /// Total events ever recorded (including overwritten ones).
  uint64_t total_recorded() const { return total_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Retained events matching (kind, type), oldest first.
  std::vector<TraceEvent> Filter(TraceEvent::Kind kind,
                                 MessageType type) const;

  /// Multi-line dump of the newest `limit` events.
  std::string Dump(size_t limit = 50) const;

  void Clear();

 private:
  std::vector<TraceEvent> buffer_;
  size_t next_ = 0;
  size_t count_ = 0;
  uint64_t total_ = 0;
};

}  // namespace snapq

#endif  // SNAPQ_SIM_TRACE_H_
