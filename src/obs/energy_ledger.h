// The energy ledger: per-node, per-cause attribution of every joule a
// simulation drains. The paper's headline claim is energy (§6.2, Fig 10,
// Table 3) — snapshot queries trade a small election/maintenance budget
// for large query-time savings — yet the simulator charged batteries at
// three anonymous sites. The ledger closes that gap: every drain is
// recorded against
//
//   * the message type that caused it (election / maintenance / data /
//     query, via msg.type) and the direction (tx / rx / snoop);
//   * cache-maintenance CPU charges;
//   * direct drains (the query executor's aggregate tree traffic);
//   * forced-kill discards (failure injection empties the battery without
//     a transmission — the discarded charge is attributed so conservation
//     still holds);
//   * the causal trace-root kind (election / re-election / heartbeat /
//     query / violation) when tracing is on, network-wide.
//
// Conservation invariant: per node, the attributed cells sum to
// `initial_battery − remaining()`. The ledger additionally mirrors the
// battery's remaining charge using the exact subtraction sequence the
// Battery applies, so `remaining(i)` equals `battery(i).remaining()`
// bitwise under any cost model (property-tested; see
// energy_conservation_test).
//
// Registry instruments (registered at construction, handles cached):
//
//   energy.drained             total joules drained network-wide (gauge)
//   energy.burn_rate           joules per tick since the last UpdateGauges
//   energy.cause.<cause>       per-cause totals (election, maintenance,
//                              data, query, cache, direct, killed)
//   energy.remaining_total     sum of per-node remaining charge   (finite
//   energy.remaining_min       lowest per-node remaining charge    battery
//   energy.first_death_tick    projected tick of the first node    only —
//                              death (actual once one happened)    infinite
//   energy.coverage_knee_tick  projected tick the median node      gauges
//                              dies — where coverage collapse      render
//                              accelerates                         as JSON
//                                                                  null)
//
// Because these are ordinary registry instruments, the telemetry recorder,
// the SLO grammar ("energy.burn_rate slope >= 0.5 for 10") and the
// flight-recorder blackbox pick them up with zero new plumbing. Forecasts
// come from two internal fixed-memory TimeSeries (min and median remaining
// charge) via their least-squares Slope().
//
// Cost model (the repo's observability contract): with no ledger attached
// the simulator's charge sites pay a single null-pointer branch; with a
// ledger attached each drain is a handful of double adds into
// preallocated arrays — ZERO heap allocations either way (pinned by
// energy_ledger_alloc_test). UpdateGauges is likewise allocation-free.
//
// Layering: obs depends on net (message taxonomy) and common only — the
// simulator pushes drains in; nothing here calls back into sim.
#ifndef SNAPQ_OBS_ENERGY_LEDGER_H_
#define SNAPQ_OBS_ENERGY_LEDGER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "net/energy.h"
#include "net/message.h"
#include "net/node_id.h"
#include "obs/gauge_pack.h"
#include "obs/metric_registry.h"
#include "obs/timeseries.h"

namespace snapq::obs {

/// Which side of a radio event drained the charge.
enum class EnergyDirection : uint8_t {
  kTx = 0,    ///< the sender's transmission cost
  kRx = 1,    ///< an addressed receiver's rx cost
  kSnoop = 2  ///< an overhearing neighbor's rx cost
};
inline constexpr size_t kNumEnergyDirections = 3;
const char* EnergyDirectionName(EnergyDirection dir);

/// The per-cause rollup reported by gauges, EXPLAIN ANALYZE and the
/// energy map. Message types fold into the first four; the last three are
/// the non-message charge sites.
enum class EnergyCause : uint8_t {
  kElection = 0,  ///< invitation / cand-list / accept / recall /
                  ///< stay-active / rep-ack
  kMaintenance,   ///< heartbeat / heartbeat-reply / resign
  kData,          ///< measurement broadcasts (training, announcements)
  kQuery,         ///< query request / reply traffic
  kCache,         ///< cache-maintenance CPU charges
  kDirect,        ///< untyped direct drains (Simulator::Drain)
  kKilled,        ///< charge discarded by a forced Kill
};
inline constexpr size_t kNumEnergyCauses = 7;
const char* EnergyCauseName(EnergyCause cause);
/// The cause a message type rolls up into.
EnergyCause EnergyCauseOf(MessageType type);

/// Trace-root attribution slots: one per obs::TraceRootKind, plus a
/// trailing slot for drains with no sampled causal context.
inline constexpr size_t kNumEnergyRootSlots = 6;
inline constexpr size_t kEnergyUntracedSlot = kNumEnergyRootSlots - 1;
/// Stable name per slot ("election", ..., "untraced").
const char* EnergyRootSlotName(size_t slot);

/// Per-node attribution cells: every (direction, message type) pair, then
/// cache, direct and killed. Flat layout so the hot path is one indexed
/// add into a preallocated vector.
inline constexpr size_t kEnergyCellsPerNode =
    kNumEnergyDirections * kNumMessageTypes + 3;

/// Value capture of a ledger, for deterministic cross-run folding: bench
/// drivers snapshot each parallel trial's ledger and MergeFrom them in
/// task-index order, so a --jobs N run produces bit-identical energy maps
/// to the serial run (cells and drains add; `remaining` sums across runs
/// and is reported as the per-run mean).
struct EnergyLedgerSnapshot {
  uint64_t runs = 0;
  size_t num_nodes = 0;
  double initial_battery = 0.0;
  std::vector<double> cells;      ///< num_nodes * kEnergyCellsPerNode
  std::vector<double> drained;    ///< per node, summed across runs
  std::vector<double> remaining;  ///< per node, summed across runs
  std::vector<uint64_t> deaths;   ///< per node, death count across runs
  std::vector<double> root_kind;  ///< kNumEnergyRootSlots totals
  // Forecast folding: sums over the runs that had a forecast.
  double first_death_sum = 0.0;
  uint64_t first_death_runs = 0;
  double knee_sum = 0.0;
  uint64_t knee_runs = 0;

  /// Joules a node spent on one cause (summed across runs).
  double NodeCauseJoules(NodeId node, EnergyCause cause) const;
  /// Network-wide joules per cause / per direction.
  double CauseJoules(EnergyCause cause) const;
  double DirectionJoules(EnergyDirection dir) const;
  double TotalDrained() const;
  uint64_t TotalDeaths() const;

  /// Folds `other` in (index-order reduction). Returns false — leaving
  /// this snapshot untouched — on a shape mismatch (different node count
  /// or cell layout).
  bool MergeFrom(const EnergyLedgerSnapshot& other);
};

/// Everything the energy map sidecar records beyond the snapshot itself.
struct EnergyMapMeta {
  std::string benchmark;
  std::string git_sha;
  bool quick = false;
  Time t = 0;
  /// Driver-specific scalars ("auc_snapshot", "savings_mean", ...),
  /// emitted in order under the "extras" key.
  std::vector<std::pair<std::string, double>> extras;
};

inline constexpr int kEnergyMapSchemaVersion = 1;

/// Renders the schema-versioned `*.energymap.json` document: metadata,
/// network-wide totals (per cause / direction / trace-root kind),
/// lifetime forecasts, and one entry per node with its position, per-cause
/// breakdown, remaining charge and death count. `positions` must have one
/// entry per node. Golden-tested in energy_ledger_test; consumed by
/// tools/energy_report.py.
std::string EnergyMapToJson(const EnergyLedgerSnapshot& snap,
                            const std::vector<Point>& positions,
                            const EnergyMapMeta& meta);

/// The ledger. One per simulation; attach with Simulator::SetEnergyLedger.
/// Not thread-safe (like the registry): parallel trials each own a ledger
/// and fold snapshots afterwards.
class EnergyLedger {
 public:
  /// Gauges are registered on `registry` immediately and cached. When
  /// `model.unlimited()`, the remaining/forecast gauges are skipped
  /// entirely — they would be infinite, and infinite gauges serialize as
  /// JSON null, polluting timeline/blackbox sidecars.
  EnergyLedger(const EnergyModel& model, size_t num_nodes,
               MetricRegistry* registry);

  // -- Hot path (a few double adds; never allocates) -------------------------

  /// One message-layer drain of `applied` joules. `root_slot` is the
  /// drain's causal trace-root kind as an index into the root slots (-1 or
  /// out-of-range folds into the untraced slot).
  void RecordMessage(NodeId node, MessageType type, EnergyDirection dir,
                     double applied, int root_slot = -1);
  /// One cache-maintenance CPU charge.
  void RecordCacheOp(NodeId node, double applied, int root_slot = -1);
  /// One untyped direct drain (Simulator::Drain).
  void RecordDirect(NodeId node, double applied, int root_slot = -1);
  /// Charge discarded by a forced kill (attributed so conservation holds).
  void RecordKillDiscard(NodeId node, double discarded);
  /// Marks `node` dead at tick `t` (first call wins).
  void RecordDeath(NodeId node, Time t);

  // -- Reads ------------------------------------------------------------------

  size_t num_nodes() const { return num_nodes_; }
  const EnergyModel& model() const { return model_; }
  bool unlimited() const { return model_.unlimited(); }

  /// Total joules attributed to `node` / network-wide.
  double drained(NodeId node) const { return drained_[node]; }
  double total_drained() const { return total_drained_; }
  /// The ledger's mirror of the node's remaining charge (bitwise equal to
  /// the battery's, see the conservation invariant above).
  double remaining(NodeId node) const { return remaining_[node]; }
  /// One attribution cell (direction x type; see CellIndex).
  double cell(NodeId node, size_t cell_index) const {
    return cells_[node * kEnergyCellsPerNode + cell_index];
  }
  double CauseJoules(EnergyCause cause) const {
    return cause_totals_[static_cast<size_t>(cause)];
  }
  double RootKindJoules(size_t slot) const { return root_kind_[slot]; }
  uint64_t deaths() const { return deaths_; }
  /// Tick the node died at, or -1 while alive.
  Time death_tick(NodeId node) const { return death_tick_[node]; }

  /// Flat cell index of a (direction, type) pair / the trailing cells.
  static size_t CellIndex(EnergyDirection dir, MessageType type) {
    return static_cast<size_t>(dir) * kNumMessageTypes +
           static_cast<size_t>(type);
  }
  static size_t CacheCell() { return kEnergyCellsPerNode - 3; }
  static size_t DirectCell() { return kEnergyCellsPerNode - 2; }
  static size_t KilledCell() { return kEnergyCellsPerNode - 1; }

  // -- Sampling / forecasting -------------------------------------------------

  /// Publishes the gauges and advances the forecast series at sim-time
  /// `now`. Called from SensorNetwork::SampleTelemetry (so telemetry, SLO
  /// rules and blackboxes see fresh values) and before snapshots are
  /// exported. Allocation-free.
  void UpdateGauges(Time now);

  /// Projected tick of the first node death: the actual first death tick
  /// once one happened, else now + min_remaining / burn-slope from the
  /// min-remaining series trend; -1 while no forecast exists (unlimited
  /// battery, flat trend, or fewer than two samples).
  double first_death_tick() const { return first_death_tick_; }
  /// Projected tick the median node's charge hits zero — the knee where
  /// coverage collapse accelerates (Fig 10's regular-execution cliff);
  /// -1 while no forecast exists.
  double coverage_knee_tick() const { return coverage_knee_tick_; }

  const TimeSeries& min_remaining_series() const { return min_series_; }
  const TimeSeries& median_remaining_series() const { return median_series_; }

  /// Value capture for cross-run folding and the energy map sidecar.
  EnergyLedgerSnapshot TakeSnapshot() const;

  /// Multi-line human-readable summary (shell `\energy`).
  std::string ToTable() const;

 private:
  void Record(NodeId node, size_t cell, EnergyCause cause, double applied,
              int root_slot);

  const EnergyModel model_;
  const size_t num_nodes_;

  // Cached instrument handles. The pack holds the unconditional gauges
  // (drained, burn_rate, one per cause — slot constants in the .cc); the
  // remaining/forecast handles stay null when skipped for unlimited
  // models.
  GaugePack gauges_;
  Gauge* remaining_total_gauge_ = nullptr;
  Gauge* remaining_min_gauge_ = nullptr;
  Gauge* first_death_gauge_ = nullptr;
  Gauge* knee_gauge_ = nullptr;

  // Attribution state (all preallocated at construction).
  std::vector<double> cells_;      // num_nodes_ * kEnergyCellsPerNode
  std::vector<double> drained_;    // per node
  std::vector<double> remaining_;  // per node, battery mirror
  std::vector<Time> death_tick_;   // per node, -1 while alive
  double cause_totals_[kNumEnergyCauses] = {};
  double root_kind_[kNumEnergyRootSlots] = {};
  double total_drained_ = 0.0;
  uint64_t deaths_ = 0;

  // Forecast state.
  TimeSeries min_series_;
  TimeSeries median_series_;
  std::vector<double> median_scratch_;  // preallocated for nth_element
  double first_death_tick_ = -1.0;
  double coverage_knee_tick_ = -1.0;
  Time first_death_time_ = -1;  // actual, dominates the projection
  Time knee_time_ = -1;         // tick the median node was observed dead
  Time last_update_time_ = -1;
  double last_update_drained_ = 0.0;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_ENERGY_LEDGER_H_
