#include "snapshot/node_state.h"

namespace snapq {

const char* NodeModeName(NodeMode mode) {
  switch (mode) {
    case NodeMode::kUndefined:
      return "UNDEFINED";
    case NodeMode::kActive:
      return "ACTIVE";
    case NodeMode::kPassive:
      return "PASSIVE";
  }
  return "?";
}

size_t SnapshotView::CountActive() const {
  size_t n = 0;
  for (const NodeInfo& info : nodes_) {
    if (info.alive && info.mode == NodeMode::kActive) ++n;
  }
  return n;
}

size_t SnapshotView::CountPassive() const {
  size_t n = 0;
  for (const NodeInfo& info : nodes_) {
    if (info.alive && info.mode == NodeMode::kPassive) ++n;
  }
  return n;
}

size_t SnapshotView::CountUndefined() const {
  size_t n = 0;
  for (const NodeInfo& info : nodes_) {
    if (info.alive && info.mode == NodeMode::kUndefined) ++n;
  }
  return n;
}

bool SnapshotView::RepresentsCurrently(NodeId rep, NodeId j) const {
  if (rep == j) return true;
  const NodeInfo& holder = nodes_[rep];
  const auto it = holder.represents.find(j);
  if (it == holder.represents.end()) return false;
  const NodeInfo& target = nodes_[j];
  // Stale when the represented node has moved on: different representative
  // or a newer election epoch than the one the holder recorded.
  return target.representative == rep && target.epoch == it->second;
}

size_t SnapshotView::CountSpurious() const {
  size_t n = 0;
  for (NodeId rep = 0; rep < nodes_.size(); ++rep) {
    const NodeInfo& holder = nodes_[rep];
    if (!holder.alive) continue;
    for (const auto& [j, epoch] : holder.represents) {
      if (!RepresentsCurrently(rep, j)) {
        ++n;
        break;  // count nodes, not entries
      }
    }
  }
  return n;
}

NodeId SnapshotView::ResponderFor(NodeId j) const {
  const NodeInfo& info = nodes_[j];
  if (info.mode != NodeMode::kPassive) {
    return info.alive ? j : kInvalidNode;
  }
  const NodeId rep = info.representative;
  if (rep == kInvalidNode || rep == j) {
    return info.alive ? j : kInvalidNode;
  }
  if (nodes_[rep].alive && RepresentsCurrently(rep, j)) {
    return rep;
  }
  return kInvalidNode;
}

}  // namespace snapq
