# Empty compiler generated dependencies file for fig13_spurious.
# This may be replaced when dependencies are built.
