// TraceAnalyzer tests on hand-built span trees: report aggregation, the
// three paper-invariant verdicts, and orphan detection.
#include "obs/trace_analyzer.h"

#include <gtest/gtest.h>

#include "obs/tracer.h"

namespace snapq::obs {
namespace {

Tracer MakeTracer() {
  TracerConfig config;
  config.sampling = 1.0;
  return Tracer(config);
}

TEST(TraceAnalyzerTest, UnknownTraceIdReturnsNullopt) {
  Tracer tracer = MakeTracer();
  const TraceAnalyzer analyzer(&tracer);
  EXPECT_FALSE(analyzer.Analyze(7).has_value());
  EXPECT_TRUE(analyzer.AnalyzeAll().empty());
}

TEST(TraceAnalyzerTest, ReportAggregatesMessagesAndRadioOutcomes) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 10);
  const TraceContext inv =
      tracer.BeginMessageSpan(root, MessageType::kInvitation, 1, 10);
  tracer.RecordDelivery(inv, 2, 10, RadioEventKind::kDeliver);
  tracer.RecordDelivery(inv, 3, 10, RadioEventKind::kSnoop);
  tracer.RecordDelivery(inv, 4, 10, RadioEventKind::kLoss);
  const TraceContext reply =
      tracer.BeginMessageSpan(inv, MessageType::kAccept, 2, 12);
  tracer.RecordDelivery(reply, 1, 12, RadioEventKind::kDeliver);

  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->root_kind, TraceRootKind::kElection);
  EXPECT_EQ(report->num_spans, 3u);
  EXPECT_EQ(report->num_messages, 2u);
  EXPECT_EQ(
      report->messages_by_type[static_cast<size_t>(MessageType::kInvitation)],
      1u);
  EXPECT_EQ(
      report->messages_by_type[static_cast<size_t>(MessageType::kAccept)],
      1u);
  EXPECT_EQ(report->messages_by_node.at(1), 1u);
  EXPECT_EQ(report->messages_by_node.at(2), 1u);
  EXPECT_EQ(report->deliveries, 2u);
  EXPECT_EQ(report->snoops, 1u);
  EXPECT_EQ(report->losses, 1u);
  EXPECT_EQ(report->max_depth, 2u);  // root -> invitation -> accept
  EXPECT_EQ(report->sim_start, 10);
  EXPECT_EQ(report->sim_end, 12);
  EXPECT_EQ(report->sim_duration(), 2);
}

TEST(TraceAnalyzerTest, ElectionWithinBoundPasses) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  for (int i = 0; i < 6; ++i) {
    tracer.BeginMessageSpan(root, MessageType::kInvitation, 3, i);
  }
  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_EQ(report->verdicts[0].invariant, "election.message_bound");
  EXPECT_TRUE(report->verdicts[0].pass);
  EXPECT_TRUE(report->AllPass());
}

TEST(TraceAnalyzerTest, ElectionOverBoundFails) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kReelection, 3, 0);
  for (int i = 0; i < 7; ++i) {
    tracer.BeginMessageSpan(root, MessageType::kInvitation, 3, i);
  }
  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->max_messages_per_node, 7u);
  EXPECT_EQ(report->busiest_node, 3u);
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_FALSE(report->verdicts[0].pass);
  EXPECT_FALSE(report->AllPass());
  EXPECT_NE(report->ToString().find("[FAIL] election.message_bound"),
            std::string::npos);
}

TEST(TraceAnalyzerTest, SnapshotQueryWithActiveRespondersPasses) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kQuery, 0, 0, /*value=*/1);
  tracer.RecordInstant(root, "query.respond", 4, 1, /*value=*/0);
  tracer.RecordInstant(root, "query.respond", 9, 1, /*value=*/0);
  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_EQ(report->verdicts[0].invariant, "query.snapshot_responders");
  EXPECT_TRUE(report->verdicts[0].pass);
}

TEST(TraceAnalyzerTest, SnapshotQueryWithPassiveResponderFails) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kQuery, 0, 0, /*value=*/1);
  tracer.RecordInstant(root, "query.respond", 4, 1, /*value=*/0);
  tracer.RecordInstant(root, "query.respond", 9, 1, /*value=*/1);  // passive!
  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_FALSE(report->verdicts[0].pass);
  EXPECT_NE(report->verdicts[0].detail.find("1 of 2"), std::string::npos);
}

TEST(TraceAnalyzerTest, NonSnapshotQueryHasNoResponderVerdict) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kQuery, 0, 0, /*value=*/0);
  tracer.RecordInstant(root, "query.respond", 9, 1, /*value=*/1);
  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->verdicts.empty());
}

TEST(TraceAnalyzerTest, ViolationEndingInReelectionPasses) {
  Tracer tracer = MakeTracer();
  const TraceContext cause =
      tracer.StartTrace(TraceRootKind::kHeartbeatRound, kInvalidNode, 5);
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kViolation, 7, 6, 0, cause);
  tracer.BeginMessageSpan(root, MessageType::kInvitation, 7, 6);
  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->link_trace_id, cause.trace_id);
  EXPECT_EQ(report->link_span_id, cause.span_id);
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_EQ(report->verdicts[0].invariant, "violation.termination");
  EXPECT_TRUE(report->verdicts[0].pass);
}

TEST(TraceAnalyzerTest, ViolationEndingInModelUpdatePasses) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kViolation, 7, 6);
  tracer.RecordInstant(root, "model.update", 7, 7);
  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_TRUE(report->verdicts[0].pass);
}

TEST(TraceAnalyzerTest, DanglingViolationFails) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kViolation, 7, 6);
  tracer.BeginMessageSpan(root, MessageType::kHeartbeat, 7, 6);
  const auto report = TraceAnalyzer(&tracer).Analyze(root.trace_id);
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_FALSE(report->verdicts[0].pass);
}

TEST(TraceAnalyzerTest, FindOrphansFlagsMissingParents) {
  Tracer tracer = MakeTracer();
  const TraceContext root =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  tracer.BeginMessageSpan(root, MessageType::kData, 1, 0);
  const TraceAnalyzer analyzer(&tracer);
  EXPECT_TRUE(analyzer.FindOrphans().empty());
  // Fabricate a context whose span was never recorded: its child becomes
  // an orphan the analyzer must flag.
  TraceContext bogus = root;
  bogus.span_id = 9999;
  tracer.BeginMessageSpan(bogus, MessageType::kData, 2, 1);
  const auto orphans = analyzer.FindOrphans();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0]->parent_span_id, 9999u);
}

TEST(TraceAnalyzerTest, AnalyzeAllReportsEveryTraceInMintingOrder) {
  Tracer tracer = MakeTracer();
  const TraceContext a =
      tracer.StartTrace(TraceRootKind::kElection, kInvalidNode, 0);
  const TraceContext b = tracer.StartTrace(TraceRootKind::kQuery, 2, 1);
  const auto reports = TraceAnalyzer(&tracer).AnalyzeAll();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].trace_id, a.trace_id);
  EXPECT_EQ(reports[1].trace_id, b.trace_id);
}

}  // namespace
}  // namespace snapq::obs
