file(REMOVE_RECURSE
  "CMakeFiles/innetwork_aggregation.dir/innetwork_aggregation.cpp.o"
  "CMakeFiles/innetwork_aggregation.dir/innetwork_aggregation.cpp.o.d"
  "innetwork_aggregation"
  "innetwork_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innetwork_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
