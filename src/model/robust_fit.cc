#include "model/robust_fit.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "obs/span.h"

namespace snapq {
namespace {

constexpr int kIrlsIterations = 25;
constexpr double kResidualFloor = 1e-9;

}  // namespace

LinearModel FitWeighted(std::span<const ObservationPair> pairs,
                        const std::vector<double>& weights) {
  SNAPQ_CHECK_EQ(pairs.size(), weights.size());
  double sw = 0.0, swx = 0.0, swy = 0.0, swxx = 0.0, swxy = 0.0;
  for (size_t k = 0; k < pairs.size(); ++k) {
    const double w = weights[k];
    sw += w;
    swx += w * pairs[k].x;
    swy += w * pairs[k].y;
    swxx += w * pairs[k].x * pairs[k].x;
    swxy += w * pairs[k].x * pairs[k].y;
  }
  if (sw <= 0.0) return LinearModel{0.0, 0.0};
  const double denom = sw * swxx - swx * swx;
  const double scale = sw * swxx + swx * swx;
  if (denom <= 1e-12 * std::max(1.0, scale)) {
    return LinearModel{0.0, swy / sw};  // constant predictor
  }
  const double a = (sw * swxy - swx * swy) / denom;
  const double b = (swy - a * swx) / sw;
  return LinearModel{a, b};
}

LinearModel FitForMetric(std::span<const ObservationPair> pairs,
                         const ErrorMetric& metric,
                         obs::MetricRegistry* registry) {
  obs::Span span(registry, "model.refit");
  if (pairs.empty()) return LinearModel{0.0, 0.0};
  switch (metric.kind()) {
    case ErrorMetricKind::kSumSquared: {
      RegressionStats stats;
      for (const ObservationPair& p : pairs) stats.Add(p.x, p.y);
      return stats.Fit();
    }
    case ErrorMetricKind::kRelative:
    case ErrorMetricKind::kAbsolute: {
      // IRLS for (scaled) least absolute deviations: both metrics are
      // linear in the residual, differing only in the per-point scale
      // s_k = 1 (absolute) or s_k = max(s, |y_k|) (relative). Reweight by
      // 1/(s_k * |residual|), refit, and keep the best iterate; starting
      // from the LS line guarantees the result never loses to it.
      std::vector<double> scale(pairs.size(), 1.0);
      if (metric.kind() == ErrorMetricKind::kRelative) {
        for (size_t k = 0; k < pairs.size(); ++k) {
          scale[k] = std::max(metric.sanity_bound(), std::abs(pairs[k].y));
        }
      }
      RegressionStats stats;
      for (const ObservationPair& p : pairs) stats.Add(p.x, p.y);
      LinearModel model = stats.Fit();
      std::vector<double> weights(pairs.size(), 1.0);
      double best_err = TotalError(pairs, metric, model);
      LinearModel best = model;
      for (int it = 0; it < kIrlsIterations; ++it) {
        for (size_t k = 0; k < pairs.size(); ++k) {
          const double r =
              std::abs(pairs[k].y - model.Estimate(pairs[k].x));
          weights[k] = 1.0 / (scale[k] * std::max(kResidualFloor, r));
        }
        model = FitWeighted(pairs, weights);
        const double err = TotalError(pairs, metric, model);
        if (err < best_err) {
          best_err = err;
          best = model;
        }
      }
      return best;
    }
  }
  return LinearModel{0.0, 0.0};
}

double TotalError(std::span<const ObservationPair> pairs,
                  const ErrorMetric& metric, const LinearModel& model) {
  double total = 0.0;
  for (const ObservationPair& p : pairs) {
    total += metric.Distance(p.y, model.Estimate(p.x));
  }
  return total;
}

}  // namespace snapq
