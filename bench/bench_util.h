// Shared helpers for the experiment drivers in bench/. Each driver
// regenerates one table or figure of the paper and prints the same
// rows/series the paper reports (averaged over the paper's 10 repetitions).
#ifndef SNAPQ_BENCH_BENCH_UTIL_H_
#define SNAPQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace snapq::bench {

/// Number of repetitions per data point (§6.1: "We repeated each
/// experiment ten times and present the average values").
inline constexpr int kRepetitions = 10;
inline constexpr uint64_t kBaseSeed = 1;

inline void PrintHeader(const char* experiment, const char* setup) {
  std::printf("=== %s ===\n", experiment);
  std::printf("%s\n", setup);
  std::printf("(averages over %d seeded repetitions)\n\n", kRepetitions);
}

}  // namespace snapq::bench

#endif  // SNAPQ_BENCH_BENCH_UTIL_H_
