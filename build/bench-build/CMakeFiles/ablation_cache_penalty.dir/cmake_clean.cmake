file(REMOVE_RECURSE
  "../bench/ablation_cache_penalty"
  "../bench/ablation_cache_penalty.pdb"
  "CMakeFiles/ablation_cache_penalty.dir/ablation_cache_penalty.cc.o"
  "CMakeFiles/ablation_cache_penalty.dir/ablation_cache_penalty.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
