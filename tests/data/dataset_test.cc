#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace snapq {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(DatasetTest, CreateValidatesEqualLengths) {
  std::vector<TimeSeries> series;
  series.emplace_back(std::vector<double>{1.0, 2.0});
  series.emplace_back(std::vector<double>{3.0, 4.0});
  const Result<Dataset> ds = Dataset::Create(std::move(series));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_nodes(), 2u);
  EXPECT_EQ(ds->horizon(), 2u);
  EXPECT_DOUBLE_EQ(ds->Value(1, 0), 3.0);
}

TEST_F(DatasetTest, CreateRejectsRaggedSeries) {
  std::vector<TimeSeries> series;
  series.emplace_back(std::vector<double>{1.0, 2.0});
  series.emplace_back(std::vector<double>{3.0});
  const Result<Dataset> ds = Dataset::Create(std::move(series));
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetTest, CreateRejectsEmpty) {
  EXPECT_FALSE(Dataset::Create({}).ok());
}

TEST_F(DatasetTest, CsvRoundTrip) {
  std::vector<TimeSeries> series;
  series.emplace_back(std::vector<double>{1.5, 2.5, 3.5});
  series.emplace_back(std::vector<double>{-1.0, 0.0, 1.0});
  const Result<Dataset> ds = Dataset::Create(std::move(series));
  ASSERT_TRUE(ds.ok());

  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(ds->WriteCsv(path).ok());

  const Result<Dataset> back = Dataset::ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), 2u);
  EXPECT_EQ(back->horizon(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t t = 0; t < 3; ++t) {
      EXPECT_DOUBLE_EQ(back->Value(i, t), ds->Value(i, t));
    }
  }
  std::remove(path.c_str());
}

TEST_F(DatasetTest, ReadCsvWithoutHeader) {
  const std::string path = TempPath("noheader.csv");
  {
    std::ofstream out(path);
    out << "1,2\n3,4\n";
  }
  const Result<Dataset> ds = Dataset::ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_nodes(), 2u);
  EXPECT_EQ(ds->horizon(), 2u);
  EXPECT_DOUBLE_EQ(ds->Value(0, 1), 3.0);
  std::remove(path.c_str());
}

TEST_F(DatasetTest, ReadCsvSkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n\n3,4\n";
  }
  const Result<Dataset> ds = Dataset::ReadCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->horizon(), 2u);
  std::remove(path.c_str());
}

TEST_F(DatasetTest, ReadCsvRejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  {
    std::ofstream out(path);
    out << "1,2\n3\n";
  }
  const Result<Dataset> ds = Dataset::ReadCsv(path);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(DatasetTest, ReadCsvRejectsNonNumericCell) {
  const std::string path = TempPath("garbage.csv");
  {
    std::ofstream out(path);
    out << "1,2\n3,oops\n";
  }
  EXPECT_FALSE(Dataset::ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(DatasetTest, ReadCsvMissingFile) {
  const Result<Dataset> ds = Dataset::ReadCsv("/nonexistent/nope.csv");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIoError);
}

TEST_F(DatasetTest, ReadCsvEmptyFile) {
  const std::string path = TempPath("empty.csv");
  { std::ofstream out(path); }
  EXPECT_FALSE(Dataset::ReadCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace snapq
