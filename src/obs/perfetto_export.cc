#include "obs/perfetto_export.h"

#include <fstream>
#include <set>

#include "common/string_util.h"
#include "obs/json.h"

namespace snapq::obs {
namespace {

/// Sim ticks → trace-event microseconds (1 tick rendered as 1 ms).
constexpr int64_t kTickUs = 1000;

/// Track id for a span: node tracks are tid = node + 1; node-less spans
/// (whole-network roots and phases) land on the "protocol" track, tid 0.
int64_t TidFor(NodeId node) {
  return node == kInvalidNode ? 0 : static_cast<int64_t>(node) + 1;
}

std::string ArgsJson(const TraceSpan& span) {
  std::string args = StrFormat(
      "{\"trace\":%llu,\"span\":%llu,\"parent\":%llu",
      static_cast<unsigned long long>(span.trace_id),
      static_cast<unsigned long long>(span.span_id),
      static_cast<unsigned long long>(span.parent_span_id));
  if (span.value != 0) {
    args += StrFormat(",\"value\":%lld", static_cast<long long>(span.value));
  }
  if (span.link_trace_id != 0) {
    args += StrFormat(",\"link_trace\":%llu,\"link_span\":%llu",
                      static_cast<unsigned long long>(span.link_trace_id),
                      static_cast<unsigned long long>(span.link_span_id));
  }
  args += '}';
  return args;
}

void AppendEvent(std::string* out, const std::string& event, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += event;
}

}  // namespace

std::string ExportChromeTrace(const Tracer& tracer) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;

  // Thread-name metadata for every track we will emit events on.
  std::set<int64_t> tids;
  for (const TraceSpan& span : tracer.spans()) {
    tids.insert(TidFor(span.node));
    for (const TraceDelivery& d : span.deliveries) tids.insert(TidFor(d.node));
  }
  AppendEvent(&out,
              "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
              "\"args\":{\"name\":\"snapq\"}}",
              &first);
  for (int64_t tid : tids) {
    const std::string name =
        tid == 0 ? "protocol"
                 : StrFormat("node %lld", static_cast<long long>(tid - 1));
    AppendEvent(&out,
                StrFormat("{\"ph\":\"M\",\"pid\":0,\"tid\":%lld,"
                          "\"name\":\"thread_name\","
                          "\"args\":{\"name\":\"%s\"}}",
                          static_cast<long long>(tid),
                          JsonEscape(name).c_str()),
                &first);
  }

  for (const TraceSpan& span : tracer.spans()) {
    const int64_t ts = span.start * kTickUs;
    const int64_t dur =
        span.end > span.start ? (span.end - span.start) * kTickUs : 1;
    AppendEvent(
        &out,
        StrFormat("{\"ph\":\"X\",\"pid\":0,\"tid\":%lld,\"ts\":%lld,"
                  "\"dur\":%lld,\"name\":\"%s\",\"cat\":\"%s\","
                  "\"args\":%s}",
                  static_cast<long long>(TidFor(span.node)),
                  static_cast<long long>(ts), static_cast<long long>(dur),
                  JsonEscape(span.name).c_str(),
                  TraceSpanKindName(span.kind), ArgsJson(span).c_str()),
        &first);
    if (span.kind != TraceSpanKind::kMessage) continue;
    // One flow arrow per successful delivery/snoop; losses become instants
    // on the would-be receiver's track (no arrow — the message never
    // arrived). Flow ids pack (span, delivery ordinal) to stay unique.
    for (size_t i = 0; i < span.deliveries.size(); ++i) {
      const TraceDelivery& d = span.deliveries[i];
      const int64_t dts = d.t * kTickUs;
      if (d.outcome == RadioEventKind::kLoss) {
        AppendEvent(
            &out,
            StrFormat("{\"ph\":\"i\",\"pid\":0,\"tid\":%lld,\"ts\":%lld,"
                      "\"s\":\"t\",\"name\":\"loss %s\",\"cat\":\"radio\"}",
                      static_cast<long long>(TidFor(d.node)),
                      static_cast<long long>(dts),
                      JsonEscape(span.name).c_str()),
            &first);
        continue;
      }
      const unsigned long long flow_id =
          (static_cast<unsigned long long>(span.span_id) << 12) |
          (static_cast<unsigned long long>(i) & 0xfffu);
      AppendEvent(
          &out,
          StrFormat("{\"ph\":\"s\",\"pid\":0,\"tid\":%lld,\"ts\":%lld,"
                    "\"id\":%llu,\"name\":\"%s\",\"cat\":\"radio\"}",
                    static_cast<long long>(TidFor(span.node)),
                    static_cast<long long>(ts), flow_id,
                    JsonEscape(span.name).c_str()),
          &first);
      AppendEvent(
          &out,
          StrFormat("{\"ph\":\"f\",\"pid\":0,\"tid\":%lld,\"ts\":%lld,"
                    "\"id\":%llu,\"bp\":\"e\",\"name\":\"%s\","
                    "\"cat\":\"radio\"}",
                    static_cast<long long>(TidFor(d.node)),
                    static_cast<long long>(dts), flow_id,
                    JsonEscape(span.name).c_str()),
          &first);
    }
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool WriteChromeTraceFile(const Tracer& tracer, const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) return false;
  file << ExportChromeTrace(tracer);
  return file.good();
}

}  // namespace snapq::obs
