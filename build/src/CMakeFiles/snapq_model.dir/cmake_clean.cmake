file(REMOVE_RECURSE
  "CMakeFiles/snapq_model.dir/model/cache_line.cc.o"
  "CMakeFiles/snapq_model.dir/model/cache_line.cc.o.d"
  "CMakeFiles/snapq_model.dir/model/cache_manager.cc.o"
  "CMakeFiles/snapq_model.dir/model/cache_manager.cc.o.d"
  "CMakeFiles/snapq_model.dir/model/error_metric.cc.o"
  "CMakeFiles/snapq_model.dir/model/error_metric.cc.o.d"
  "CMakeFiles/snapq_model.dir/model/linear_model.cc.o"
  "CMakeFiles/snapq_model.dir/model/linear_model.cc.o.d"
  "CMakeFiles/snapq_model.dir/model/model_store.cc.o"
  "CMakeFiles/snapq_model.dir/model/model_store.cc.o.d"
  "CMakeFiles/snapq_model.dir/model/multi_measurement.cc.o"
  "CMakeFiles/snapq_model.dir/model/multi_measurement.cc.o.d"
  "CMakeFiles/snapq_model.dir/model/robust_fit.cc.o"
  "CMakeFiles/snapq_model.dir/model/robust_fit.cc.o.d"
  "libsnapq_model.a"
  "libsnapq_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
