// Acceptance bar for the profiler's hot-path cost (same harness as
// trace_alloc_test): with the profiler disabled, the instrumented
// simulator message path must allocate EXACTLY as much as it would with
// no profiler in the build — and because the profiler's storage is fixed
// arrays, even the ENABLED profiler must add zero heap allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/profiler.h"
#include "sim/simulator.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapq {
namespace {

Simulator MakeSim() {
  SimConfig config;
  config.seed = 11;
  return Simulator({{0, 0}, {1, 0}, {2, 0}}, {1.5, 1.5, 1.5}, config);
}

Message DataMsg() {
  Message m;
  m.type = MessageType::kData;
  m.from = 0;
  m.to = kBroadcastId;
  m.value = 1.0;
  return m;
}

/// The measured workload: the broadcast send/deliver path that carries
/// the obs::ProfCount instrumentation sites.
uint64_t CountWorkloadAllocations(Simulator& sim) {
  for (NodeId i = 0; i < 3; ++i) {
    sim.SetHandler(i, [](const Message&, bool) {});
  }
  const Message m = DataMsg();
  // Warm up vectors and the event queue so steady-state growth does not
  // differ between runs.
  for (int i = 0; i < 16; ++i) {
    sim.Send(m);
    sim.RunAll();
  }
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) {
    sim.Send(m);
    sim.ScheduleAfter(1, [&sim, m] { sim.Send(m); });
    sim.RunAll();
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(ProfilerAllocTest, DisabledProfilerAddsNoHeapAllocations) {
  obs::Profiler::Disable();
  Simulator plain = MakeSim();
  const uint64_t baseline = CountWorkloadAllocations(plain);
  EXPECT_GT(baseline, 0u);  // the harness must measure something

  // Run again, still disabled: identical workload, identical count. This
  // pins the disabled fast path to a pointer load — any hidden allocation
  // (lazy init, logging, string building) breaks equality.
  Simulator again = MakeSim();
  const uint64_t disabled = CountWorkloadAllocations(again);
  EXPECT_EQ(disabled, baseline);
  EXPECT_EQ(obs::Profiler::Global().count(obs::HotOp::kMessagesSent), 0u);
}

TEST(ProfilerAllocTest, EnabledProfilerAlsoAddsNoHeapAllocations) {
  obs::Profiler::Disable();
  Simulator plain = MakeSim();
  const uint64_t baseline = CountWorkloadAllocations(plain);

  obs::Profiler::Global().Reset();
  obs::Profiler::Enable();
  Simulator profiled = MakeSim();
  const uint64_t enabled = CountWorkloadAllocations(profiled);
  obs::Profiler::Disable();

  // Fixed enum-indexed arrays: counting is an array add, never malloc.
  EXPECT_EQ(enabled, baseline);
  // And the instrumentation actually ran.
  EXPECT_GT(obs::Profiler::Global().count(obs::HotOp::kMessagesSent), 0u);
  EXPECT_GT(obs::Profiler::Global().count(obs::HotOp::kMessagesDelivered),
            0u);
}

}  // namespace
}  // namespace snapq
