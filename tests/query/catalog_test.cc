#include "query/catalog.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(CatalogTest, StandardRegionsCoverQuadrants) {
  const Catalog c = Catalog::WithStandardRegions(Rect::UnitSquare());
  const Result<Rect> se = c.LookupRegion("SOUTH_EAST_QUADRANT");
  ASSERT_TRUE(se.ok());
  EXPECT_DOUBLE_EQ(se->min_x, 0.5);
  EXPECT_DOUBLE_EQ(se->max_x, 1.0);
  EXPECT_DOUBLE_EQ(se->min_y, 0.0);
  EXPECT_DOUBLE_EQ(se->max_y, 0.5);

  const Result<Rect> everywhere = c.LookupRegion("EVERYWHERE");
  ASSERT_TRUE(everywhere.ok());
  EXPECT_EQ(*everywhere, Rect::UnitSquare());
}

TEST(CatalogTest, LookupIsCaseInsensitive) {
  const Catalog c = Catalog::WithStandardRegions(Rect::UnitSquare());
  EXPECT_TRUE(c.LookupRegion("south_east_quadrant").ok());
  EXPECT_TRUE(c.LookupRegion("South_East_Quadrant").ok());
}

TEST(CatalogTest, UnknownRegionIsNotFound) {
  const Catalog c;
  const Result<Rect> r = c.LookupRegion("ATLANTIS");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RegisterAndReplace) {
  Catalog c;
  c.RegisterRegion("lab", Rect{0, 0, 0.1, 0.1});
  c.RegisterRegion("LAB", Rect{0, 0, 0.2, 0.2});  // same key, replaces
  const Result<Rect> r = c.LookupRegion("Lab");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->max_x, 0.2);
}

TEST(CatalogTest, RegionNamesSorted) {
  Catalog c;
  c.RegisterRegion("zeta", Rect{0, 0, 1, 1});
  c.RegisterRegion("alpha", Rect{0, 0, 1, 1});
  const auto names = c.RegionNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "ALPHA");
  EXPECT_EQ(names[1], "ZETA");
}

TEST(CatalogTest, BuiltinColumnsAlwaysValid) {
  const Catalog c;
  EXPECT_TRUE(c.IsValidColumn("loc"));
  EXPECT_TRUE(c.IsValidColumn("LOC"));
  EXPECT_TRUE(c.IsValidColumn("value"));
  EXPECT_TRUE(c.IsValidColumn("*"));
  EXPECT_FALSE(c.IsValidColumn("temperature"));
}

TEST(CatalogTest, RegisteredMeasurementColumns) {
  Catalog c;
  c.RegisterMeasurementColumn("temperature");
  EXPECT_TRUE(c.IsValidColumn("temperature"));
  EXPECT_TRUE(c.IsValidColumn("TEMPERATURE"));
  EXPECT_FALSE(c.IsValidColumn("humidity"));
}

TEST(CatalogTest, HalvesPartitionTheArea) {
  const Catalog c = Catalog::WithStandardRegions(Rect::UnitSquare());
  const Rect north = *c.LookupRegion("NORTH_HALF");
  const Rect south = *c.LookupRegion("SOUTH_HALF");
  EXPECT_DOUBLE_EQ(north.Area() + south.Area(), 1.0);
  EXPECT_TRUE(north.Contains({0.5, 0.9}));
  EXPECT_TRUE(south.Contains({0.5, 0.1}));
}

TEST(CatalogTest, NonUnitAreaRegions) {
  const Catalog c = Catalog::WithStandardRegions(Rect{0, 0, 10, 4});
  const Rect ne = *c.LookupRegion("NORTH_EAST_QUADRANT");
  EXPECT_DOUBLE_EQ(ne.min_x, 5.0);
  EXPECT_DOUBLE_EQ(ne.min_y, 2.0);
  EXPECT_DOUBLE_EQ(ne.max_x, 10.0);
  EXPECT_DOUBLE_EQ(ne.max_y, 4.0);
}

}  // namespace
}  // namespace snapq
