// Property test for context propagation: across random interleavings —
// heavy random loss, snooping, forced per-type loss, mid-run data drift,
// maintenance rounds, queries, node death, and a starved span budget — the
// tracer must never record an orphan span (a span whose recorded parent is
// missing). The drop policy guarantees it: when the budget rejects a span,
// the *parent* context keeps propagating instead.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "obs/trace_analyzer.h"
#include "obs/tracer.h"
#include "sim/simulator.h"
#include "snapshot/election.h"
#include "snapshot/maintenance.h"

namespace snapq {
namespace {

struct FuzzNet {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  SnapshotConfig config;

  FuzzNet(size_t n, const SimConfig& sim_config) {
    config.threshold = 1.0;
    config.max_wait = 4;
    config.rule4_hard_cap = 8;
    config.heartbeat_timeout = 2;
    config.heartbeat_miss_limit = 1;
    std::vector<Point> positions;
    for (size_t i = 0; i < n; ++i) {
      positions.push_back({0.05 * static_cast<double>(i), 0.0});
    }
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, 10.0),
                                      sim_config);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(
          std::make_unique<SnapshotAgent>(i, sim.get(), config, 900 + i));
      agents.back()->Install();
    }
  }

  void Teach(double base) {
    for (NodeId i = 0; i < agents.size(); ++i) {
      agents[i]->SetMeasurement(base + i);
    }
    for (NodeId i = 0; i < agents.size(); ++i) {
      for (NodeId j = 0; j < agents.size(); ++j) {
        if (i == j) continue;
        const double vi = agents[i]->measurement();
        const double vj = agents[j]->measurement();
        agents[i]->models().cache().Observe(j, vi - 1, vj - 1, 0);
        agents[i]->models().cache().Observe(j, vi + 1, vj + 1, 0);
      }
    }
  }
};

void ExpectNoOrphansAndRootedChains(const obs::Tracer& tracer) {
  const obs::TraceAnalyzer analyzer(&tracer);
  const auto orphans = analyzer.FindOrphans();
  EXPECT_TRUE(orphans.empty()) << orphans.size() << " orphan spans, first: "
                               << orphans.front()->name;
  // Every span's parent chain must terminate at its trace's root without
  // cycles or cross-trace hops.
  for (const obs::TraceSpan& span : tracer.spans()) {
    const obs::TraceSpan* cur = &span;
    size_t hops = 0;
    while (cur->parent_span_id != 0) {
      ASSERT_LE(++hops, tracer.spans().size()) << "parent cycle";
      const obs::TraceSpan* parent = tracer.FindSpan(cur->parent_span_id);
      ASSERT_NE(parent, nullptr);
      ASSERT_EQ(parent->trace_id, cur->trace_id);
      cur = parent;
    }
    EXPECT_EQ(cur->kind, obs::TraceSpanKind::kRoot);
  }
}

TEST(TraceFuzzTest, RandomInterleavingsWithForcedLossNeverOrphanSpans) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(static_cast<int>(seed));
    Rng rng(seed * 7919);
    SimConfig sim_config;
    sim_config.loss_probability = 0.2 + 0.5 * rng.NextDouble();
    sim_config.snoop_probability = 0.3 * rng.NextDouble();
    sim_config.seed = seed;
    const size_t n = 5 + static_cast<size_t>(rng.UniformInt(0, 6));
    FuzzNet net(n, sim_config);
    net.Teach(10.0);

    obs::TracerConfig tracer_config;
    tracer_config.sampling = 1.0;
    // Half the runs starve the span budget to exercise the drop/fallback
    // path; the other half record everything.
    tracer_config.max_spans = (seed % 2 == 0) ? 48 : 65536;
    tracer_config.seed = seed;
    obs::Tracer tracer(tracer_config);
    net.sim->SetTracer(&tracer);

    // Sever one protocol path entirely at random — recovery rules must
    // still leave a well-formed trace forest.
    const MessageType victims[] = {MessageType::kAccept,
                                   MessageType::kRepAck,
                                   MessageType::kHeartbeatReply};
    net.sim->SetTypeLoss(victims[seed % 3], 0.5);

    RunGlobalElection(*net.sim, net.agents, net.sim->now(), net.config);

    // Random drift + a node death between maintenance rounds.
    for (NodeId i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) {
        net.agents[i]->SetMeasurement(5000.0 + 17.0 * i);
      }
    }
    if (rng.Bernoulli(0.5)) {
      net.sim->Kill(static_cast<NodeId>(rng.UniformInt(
          0, static_cast<int>(n) - 1)));
    }
    MaintenanceDriver driver(net.sim.get(), &net.agents, /*interval=*/20);
    driver.ScheduleRounds(net.sim->now() + 1, net.sim->now() + 60,
                          [](const MaintenanceRoundStats&) {});
    net.sim->RunAll();

    if (tracer_config.max_spans == 48) {
      EXPECT_GT(tracer.dropped_spans(), 0u);  // the starved path was hit
    }
    ExpectNoOrphansAndRootedChains(tracer);
  }
}

}  // namespace
}  // namespace snapq
