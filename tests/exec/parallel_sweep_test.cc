// The engine's acceptance bar (DESIGN.md §12): a --jobs N sweep must be
// bit-identical to --jobs 1 — same per-seed election stats, same merged
// metric snapshot, same journal event counts — because each task owns its
// whole trial and every reduction happens in task-index order on the
// calling thread.
#include "exec/parallel_sweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"

namespace snapq::exec {
namespace {

/// Temporarily sets (or clears) an environment variable.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      saved_ = old;
      had_value_ = true;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ResolveJobsTest, ExplicitRequestWins) {
  ScopedEnv env("SNAPQ_JOBS", "5");
  EXPECT_EQ(ResolveJobs(3), 3);
  EXPECT_EQ(ResolveJobs(1), 1);
}

TEST(ResolveJobsTest, EnvironmentFillsInWhenUnrequested) {
  ScopedEnv env("SNAPQ_JOBS", "5");
  EXPECT_EQ(ResolveJobs(0), 5);
  EXPECT_EQ(ResolveJobs(-1), 5);
}

TEST(ResolveJobsTest, InvalidEnvironmentFallsBackToHardware) {
  const int hardware = HardwareJobs();
  EXPECT_GE(hardware, 1);
  {
    ScopedEnv env("SNAPQ_JOBS", "0");
    EXPECT_EQ(ResolveJobs(0), hardware);
  }
  {
    ScopedEnv env("SNAPQ_JOBS", "junk");
    EXPECT_EQ(ResolveJobs(0), hardware);
  }
  {
    ScopedEnv env("SNAPQ_JOBS", nullptr);
    EXPECT_EQ(ResolveJobs(0), hardware);
  }
}

TEST(ParallelMapTest, ResultsComeBackInIndexOrder) {
  for (int jobs : {1, 4}) {
    const std::vector<int> out = ParallelMap<int>(
        100, jobs, [](size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) * 3);
    }
  }
}

TEST(ParallelMapTest, ZeroTasksIsANoOp) {
  const std::vector<int> out =
      ParallelMap<int>(0, 8, [](size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMapTest, TaskExceptionPropagatesToCaller) {
  EXPECT_THROW(ParallelMap<int>(16, 4,
                                [](size_t i) -> int {
                                  if (i == 7) {
                                    throw std::runtime_error("task 7");
                                  }
                                  return 0;
                                }),
               std::runtime_error);
}

TEST(ParallelMapTest, MetricMergesFoldIntoCallersSinkInIndexOrder) {
  obs::MetricRegistry captured;
  for (int jobs : {1, 4}) {
    obs::ScopedMetricSink scoped(&captured);
    captured.Reset();
    ParallelMap<int>(20, jobs, [](size_t i) {
      obs::MetricSink().GetCounter("sweep.trials")->Inc();
      obs::MetricSink().GetGauge("sweep.max_index")->SetMax(
          static_cast<double>(i));
      return 0;
    });
    EXPECT_EQ(captured.GetCounter("sweep.trials")->value(), 20u)
        << "jobs=" << jobs;
    EXPECT_EQ(captured.GetGauge("sweep.max_index")->value(), 19.0)
        << "jobs=" << jobs;
  }
}

/// One full trial, as the bench drivers run it: build the §6.1 network
/// (training broadcasts pre-scheduled), journal enabled, run to the
/// discovery instant, elect, merge the sim's registry into the ambient
/// metric sink.
struct TrialResult {
  ElectionStats stats;
  uint64_t journal_events = 0;
};

TrialResult RunOneTrial(uint64_t seed) {
  SensitivityConfig config;
  config.num_nodes = 40;
  config.num_classes = 4;
  config.transmission_range = 0.5;
  config.discovery_time = 60;
  config.seed = seed;
  std::unique_ptr<SensorNetwork> net = BuildSensitivityNetwork(config);
  net->sim().journal().SetSink(std::make_unique<obs::MemoryJournalSink>(1));
  net->RunUntil(config.discovery_time);
  TrialResult result;
  result.stats = net->RunElection(config.discovery_time);
  result.journal_events = net->sim().journal().events_emitted();
  obs::MetricSink().MergeFrom(net->sim().registry());
  return result;
}

struct SweepOutput {
  std::vector<TrialResult> trials;
  obs::MetricRegistry::Snapshot metrics;
};

SweepOutput RunSweep(int jobs) {
  constexpr size_t kSeeds = 10;
  SweepOutput out;
  obs::MetricRegistry captured;
  {
    obs::ScopedMetricSink scoped(&captured);
    out.trials = ParallelMap<TrialResult>(
        kSeeds, jobs, [](size_t i) { return RunOneTrial(100 + i); });
  }
  out.metrics = captured.TakeSnapshot();
  // Phase-span timing histograms measure real elapsed time — the one
  // thing that legitimately differs across scheduling. Everything else
  // (protocol counters, per-node message gauges, cache stats) is covered
  // by the bit-identity contract.
  for (auto it = out.metrics.begin(); it != out.metrics.end();) {
    if (it->first.find(".wall_us.") != std::string::npos ||
        it->first.find(".cpu_us.") != std::string::npos) {
      it = out.metrics.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

TEST(ParallelSweepDeterminismTest, JobsEightIsBitIdenticalToJobsOne) {
  const SweepOutput serial = RunSweep(1);
  const SweepOutput parallel = RunSweep(8);

  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (size_t i = 0; i < serial.trials.size(); ++i) {
    const ElectionStats& a = serial.trials[i].stats;
    const ElectionStats& b = parallel.trials[i].stats;
    EXPECT_EQ(a.num_active, b.num_active) << "seed index " << i;
    EXPECT_EQ(a.num_passive, b.num_passive) << "seed index " << i;
    EXPECT_EQ(a.num_undefined, b.num_undefined) << "seed index " << i;
    EXPECT_EQ(a.num_spurious, b.num_spurious) << "seed index " << i;
    // Bit-identical, not approximately equal: same seed, same RNG stream,
    // same float operations in the same order.
    EXPECT_EQ(a.avg_messages_per_node, b.avg_messages_per_node)
        << "seed index " << i;
    EXPECT_EQ(a.max_messages_per_node, b.max_messages_per_node)
        << "seed index " << i;
    EXPECT_EQ(serial.trials[i].journal_events,
              parallel.trials[i].journal_events)
        << "seed index " << i;
    EXPECT_GT(serial.trials[i].journal_events, 0u) << "seed index " << i;
  }

  // The merged metric snapshots (every counter, gauge and histogram the
  // 10 trials produced) must match key-for-key, bit-for-bit.
  EXPECT_FALSE(serial.metrics.empty());
  for (const auto& [key, value] : serial.metrics) {
    auto it = parallel.metrics.find(key);
    if (it == parallel.metrics.end()) {
      ADD_FAILURE() << "key only in serial: " << key;
    } else if (it->second != value) {
      ADD_FAILURE() << "key " << key << ": serial=" << value
                    << " parallel=" << it->second;
    }
  }
  EXPECT_EQ(serial.metrics, parallel.metrics);

  // And repeating the parallel sweep is itself deterministic.
  const SweepOutput again = RunSweep(8);
  EXPECT_EQ(parallel.metrics, again.metrics);
}

}  // namespace
}  // namespace snapq::exec
