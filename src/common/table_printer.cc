#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace snapq {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  print_row(header_);
  os << "|";
  for (size_t i = 0; i < cols; ++i) {
    os << std::string(width[i] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace snapq
