// Minimal 2-D geometry used for node placement, transmission ranges and
// spatial query predicates. The paper deploys nodes in the unit square
// [0,1) x [0,1).
#ifndef SNAPQ_COMMON_GEOMETRY_H_
#define SNAPQ_COMMON_GEOMETRY_H_

#include <cmath>
#include <string>

namespace snapq {

/// A point in the plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point&) const = default;
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (no sqrt; preferred in hot loops).
double DistanceSquared(const Point& a, const Point& b);

/// An axis-aligned rectangle [min_x, max_x] x [min_y, max_y]; closed on all
/// sides. Degenerate (point/line) rectangles are allowed.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  bool operator==(const Rect&) const = default;

  /// Rectangle of side `w` centered at `center` (the paper's spatial filter
  /// "loc in [x-W/2, x+W/2] x [y-W/2, y+W/2]").
  static Rect CenteredSquare(const Point& center, double w);

  /// The unit square used for all paper experiments.
  static Rect UnitSquare() { return Rect{0.0, 0.0, 1.0, 1.0}; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return Width() * Height(); }

  /// Valid iff min <= max on both axes.
  bool IsValid() const { return min_x <= max_x && min_y <= max_y; }

  std::string ToString() const;
};

}  // namespace snapq

#endif  // SNAPQ_COMMON_GEOMETRY_H_
