// Simulation-wide counters: message traffic by type, energy, cache
// activity. Experiments read these to report the paper's metrics (messages
// per node, nodes participating in a query, etc.).
#ifndef SNAPQ_SIM_METRICS_H_
#define SNAPQ_SIM_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "net/message.h"

namespace snapq {

/// Plain counters; reset between experiment phases via snapshots/deltas.
class Metrics {
 public:
  void CountSent(MessageType type) { ++sent_[Index(type)]; ++total_sent_; }
  void CountDelivered(MessageType type) {
    ++delivered_[Index(type)];
    ++total_delivered_;
  }
  void CountLost(MessageType type) { ++lost_[Index(type)]; ++total_lost_; }
  void CountSnooped(MessageType type) { ++snooped_[Index(type)]; }
  void CountCacheOp() { ++cache_ops_; }

  uint64_t sent(MessageType type) const { return sent_[Index(type)]; }
  uint64_t delivered(MessageType type) const {
    return delivered_[Index(type)];
  }
  uint64_t lost(MessageType type) const { return lost_[Index(type)]; }
  uint64_t snooped(MessageType type) const { return snooped_[Index(type)]; }

  uint64_t total_sent() const { return total_sent_; }
  uint64_t total_delivered() const { return total_delivered_; }
  uint64_t total_lost() const { return total_lost_; }
  uint64_t cache_ops() const { return cache_ops_; }

  void Reset();

  /// Multi-line human-readable dump (used by traces and examples).
  std::string ToString() const;

 private:
  static constexpr size_t kNumTypes =
      static_cast<size_t>(MessageType::kQueryReply) + 1;
  static size_t Index(MessageType t) { return static_cast<size_t>(t); }

  std::array<uint64_t, kNumTypes> sent_{};
  std::array<uint64_t, kNumTypes> delivered_{};
  std::array<uint64_t, kNumTypes> lost_{};
  std::array<uint64_t, kNumTypes> snooped_{};
  uint64_t total_sent_ = 0;
  uint64_t total_delivered_ = 0;
  uint64_t total_lost_ = 0;
  uint64_t cache_ops_ = 0;
};

}  // namespace snapq

#endif  // SNAPQ_SIM_METRICS_H_
