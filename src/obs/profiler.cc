#include "obs/profiler.h"

#include <time.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/table_printer.h"
#include "obs/metric_registry.h"

namespace snapq::obs {

std::atomic<Profiler*> Profiler::active_{nullptr};

int LogHistogram::BucketIndex(double v) {
  if (!(v > 0.0) || std::isnan(v)) return 0;  // 0, negatives, NaN
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // v lies in the octave [2^(exp-1), 2^exp); quarter it by mantissa.
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((m - 0.5) * 2.0 * kSubBuckets));
  const int index = (exp - 1 - kMinExp) * kSubBuckets + sub + 1;
  return std::clamp(index, 0, kNumBuckets - 1);
}

double LogHistogram::BucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  return std::exp2(kMinExp + static_cast<double>(index - 1) / kSubBuckets);
}

double LogHistogram::BucketUpperBound(int index) {
  return std::exp2(kMinExp + static_cast<double>(index) / kSubBuckets);
}

void LogHistogram::Observe(double v) {
  if (std::isnan(v)) v = 0.0;
  v = std::max(v, 0.0);
  ++buckets_[static_cast<size_t>(BucketIndex(v))];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double LogHistogram::Percentile(double pct) const {
  if (count_ == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  if (pct >= 100.0) return max_;
  const double target =
      std::max(1.0, std::ceil(pct / 100.0 * static_cast<double>(count_)));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= target) {
      const double before = static_cast<double>(cumulative - in_bucket);
      const double fraction =
          (target - before) / static_cast<double>(in_bucket);
      const double lower = BucketLowerBound(i);
      const double upper = BucketUpperBound(i);
      return std::clamp(lower + fraction * (upper - lower), min_, max_);
    }
  }
  return max_;  // unreachable: counts always sum to count_
}

void LogHistogram::MergeFrom(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

const char* HotOpName(HotOp op) {
  switch (op) {
    case HotOp::kMessagesSent:
      return "messages_sent";
    case HotOp::kMessagesDelivered:
      return "messages_delivered";
    case HotOp::kMessagesSnooped:
      return "messages_snooped";
    case HotOp::kCacheOps:
      return "cache_ops";
    case HotOp::kModelFits:
      return "model_fits";
    case HotOp::kElectionRounds:
      return "election_rounds";
    case HotOp::kMaintenanceRounds:
      return "maintenance_rounds";
    case HotOp::kQueriesExecuted:
      return "queries_executed";
    case HotOp::kCount:
      break;
  }
  return "unknown";
}

const char* ProfPhaseName(ProfPhase phase) {
  switch (phase) {
    case ProfPhase::kElection:
      return "election";
    case ProfPhase::kMaintenanceRound:
      return "maintenance_round";
    case ProfPhase::kQueryExecution:
      return "query_execution";
    case ProfPhase::kNetworkBuild:
      return "network_build";
    case ProfPhase::kCount:
      break;
  }
  return "unknown";
}

Profiler& Profiler::Global() {
  static Profiler instance;
  return instance;
}

double Profiler::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double Profiler::Rate(HotOp op) const {
  const double seconds = ElapsedSeconds();
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(count(op)) / seconds;
}

void Profiler::Reset() {
  for (std::atomic<uint64_t>& c : counters_) {
    c.store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(phase_mutex_);
  for (LogHistogram& h : wall_us_) h.Reset();
  for (LogHistogram& h : cpu_us_) h.Reset();
  epoch_ = std::chrono::steady_clock::now();
}

std::string Profiler::ToTable() const {
  std::ostringstream out;
  const double seconds = ElapsedSeconds();
  out << "hot-path counters (" << TablePrinter::Num(seconds, 1)
      << "s since reset):\n";
  TablePrinter counters({"operation", "count", "per second"});
  for (size_t i = 0; i < kNumHotOps; ++i) {
    const HotOp op = static_cast<HotOp>(i);
    counters.AddRow({HotOpName(op), std::to_string(count(op)),
                     TablePrinter::Num(Rate(op), 1)});
  }
  counters.Print(out);
  out << "\nphase latencies (wall microseconds):\n";
  TablePrinter phases(
      {"phase", "count", "p50", "p95", "p99", "max", "cpu p50"});
  for (size_t i = 0; i < kNumProfPhases; ++i) {
    const ProfPhase phase = static_cast<ProfPhase>(i);
    const LogHistogram& wall = wall_us(phase);
    const LogHistogram& cpu = cpu_us(phase);
    phases.AddRow({ProfPhaseName(phase), std::to_string(wall.count()),
                   TablePrinter::Num(wall.Percentile(50), 1),
                   TablePrinter::Num(wall.Percentile(95), 1),
                   TablePrinter::Num(wall.Percentile(99), 1),
                   TablePrinter::Num(wall.max_seen(), 1),
                   TablePrinter::Num(cpu.Percentile(50), 1)});
  }
  phases.Print(out);
  return out.str();
}

void Profiler::ExportTo(MetricRegistry* registry) const {
  if (registry == nullptr) return;
  for (size_t i = 0; i < kNumHotOps; ++i) {
    const HotOp op = static_cast<HotOp>(i);
    registry->GetCounter(std::string("profiler.") + HotOpName(op))
        ->Inc(count(op));
  }
  for (size_t i = 0; i < kNumProfPhases; ++i) {
    const ProfPhase phase = static_cast<ProfPhase>(i);
    const std::string base =
        std::string("profiler.") + ProfPhaseName(phase) + ".wall_us.";
    const LogHistogram& wall = wall_us(phase);
    registry->GetGauge(base + "count")
        ->Set(static_cast<double>(wall.count()));
    registry->GetGauge(base + "p50")->Set(wall.Percentile(50));
    registry->GetGauge(base + "p95")->Set(wall.Percentile(95));
    registry->GetGauge(base + "p99")->Set(wall.Percentile(99));
    registry->GetGauge(base + "max")->Set(wall.max_seen());
  }
}

double ScopedPhaseTimer::ThreadCpuMicros() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

ScopedPhaseTimer::ScopedPhaseTimer(ProfPhase phase)
    : profiler_(Profiler::Active()), phase_(phase) {
  if (profiler_ != nullptr) {
    wall_start_ = std::chrono::steady_clock::now();
    cpu_start_us_ = ThreadCpuMicros();
  }
}

ScopedPhaseTimer::~ScopedPhaseTimer() {
  if (profiler_ == nullptr) return;
  const double wall_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - wall_start_)
          .count();
  const double cpu_us = ThreadCpuMicros() - cpu_start_us_;
  profiler_->RecordPhase(phase_, wall_us, std::max(cpu_us, 0.0));
}

}  // namespace snapq::obs
