#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace snapq {

namespace {
/// Enough for a burst of deliveries in a 100-node broadcast round without
/// growing the heap vector mid-simulation.
constexpr size_t kInitialCapacity = 256;
}  // namespace

EventQueue::EventQueue() { heap_.c.reserve(kInitialCapacity); }

void EventQueue::ScheduleAt(Time t, Action action) {
  SNAPQ_CHECK_GE(t, now_);
  heap_.push(Event{t, next_seq_++, std::move(action)});
}

void EventQueue::Reserve(size_t n) {
  if (n > heap_.c.capacity()) heap_.c.reserve(n);
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // std::priority_queue::top() is const; moving the action out is safe
  // because we pop immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  ev.action();
  return true;
}

void EventQueue::RunUntil(Time t) {
  while (!heap_.empty() && heap_.top().time <= t) {
    RunNext();
  }
  now_ = std::max(now_, t);
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace snapq
