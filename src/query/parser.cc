#include "query/parser.h"

#include <optional>
#include <vector>

#include "common/string_util.h"
#include "query/lexer.h"

namespace snapq {
namespace {

/// Parser state: a cursor over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QuerySpec> Parse();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return Error(std::string("expected keyword ") + std::string(kw));
    }
    return Status::Ok();
  }
  Status Expect(TokenType t, const char* what) {
    if (!Peek().Is(t)) return Error(std::string("expected ") + what);
    ++pos_;
    return Status::Ok();
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu (near '%s')", msg.c_str(), Peek().offset,
                  Peek().text.c_str()));
  }

  Result<SelectItem> ParseSelectItem();
  Result<double> ParseDuration();
  Status ParseWhere(QuerySpec* spec);
  Status ParseSampling(QuerySpec* spec);
  Status ParseSnapshot(QuerySpec* spec);
  static std::optional<AggregateFunction> AggregateFromName(
      const std::string& name);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

std::optional<AggregateFunction> Parser::AggregateFromName(
    const std::string& name) {
  if (EqualsIgnoreCase(name, "sum")) return AggregateFunction::kSum;
  if (EqualsIgnoreCase(name, "avg")) return AggregateFunction::kAvg;
  if (EqualsIgnoreCase(name, "min")) return AggregateFunction::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggregateFunction::kMax;
  if (EqualsIgnoreCase(name, "count")) return AggregateFunction::kCount;
  return std::nullopt;
}

Result<SelectItem> Parser::ParseSelectItem() {
  if (!Peek().Is(TokenType::kIdentifier)) {
    return Error("expected column or aggregate");
  }
  const std::string name = Advance().text;
  const std::optional<AggregateFunction> agg = AggregateFromName(name);
  if (agg.has_value() && Peek().Is(TokenType::kLeftParen)) {
    ++pos_;  // '('
    SelectItem item;
    item.aggregate = *agg;
    if (Peek().Is(TokenType::kStar)) {
      ++pos_;
      item.column = "*";
    } else if (Peek().Is(TokenType::kIdentifier)) {
      item.column = Advance().text;
    } else {
      return Error("expected column inside aggregate");
    }
    SNAPQ_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
    return item;
  }
  SelectItem item;
  item.column = name;
  return item;
}

Result<double> Parser::ParseDuration() {
  if (!Peek().Is(TokenType::kNumber)) {
    return Error("expected duration");
  }
  const double value = Advance().number;
  double scale = 1.0;  // default: seconds == simulation time units
  if (Peek().Is(TokenType::kIdentifier)) {
    const std::string& unit = Peek().text;
    if (EqualsIgnoreCase(unit, "ms")) {
      scale = 1e-3;
    } else if (EqualsIgnoreCase(unit, "s") || EqualsIgnoreCase(unit, "sec") ||
               EqualsIgnoreCase(unit, "second") ||
               EqualsIgnoreCase(unit, "seconds")) {
      scale = 1.0;
    } else if (EqualsIgnoreCase(unit, "min") ||
               EqualsIgnoreCase(unit, "minute") ||
               EqualsIgnoreCase(unit, "minutes")) {
      scale = 60.0;
    } else if (EqualsIgnoreCase(unit, "hour") ||
               EqualsIgnoreCase(unit, "hours") ||
               EqualsIgnoreCase(unit, "h")) {
      scale = 3600.0;
    } else {
      // Not a unit: leave the identifier for the next production.
      return value;
    }
    ++pos_;
  }
  return value * scale;
}

Status Parser::ParseWhere(QuerySpec* spec) {
  if (!ConsumeKeyword("where")) return Status::Ok();
  SNAPQ_RETURN_IF_ERROR(ExpectKeyword("loc"));
  SNAPQ_RETURN_IF_ERROR(ExpectKeyword("in"));
  if (Peek().IsKeyword("rect")) {
    ++pos_;
    SNAPQ_RETURN_IF_ERROR(Expect(TokenType::kLeftParen, "'('"));
    double coords[4];
    for (int i = 0; i < 4; ++i) {
      if (i > 0) SNAPQ_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
      if (!Peek().Is(TokenType::kNumber)) return Error("expected coordinate");
      coords[i] = Advance().number;
    }
    SNAPQ_RETURN_IF_ERROR(Expect(TokenType::kRightParen, "')'"));
    const Rect r{coords[0], coords[1], coords[2], coords[3]};
    if (!r.IsValid()) {
      return Status::ParseError("RECT coordinates must satisfy min <= max");
    }
    spec->region = r;
    return Status::Ok();
  }
  if (Peek().Is(TokenType::kIdentifier)) {
    spec->region_name = Advance().text;
    return Status::Ok();
  }
  return Error("expected region name or RECT(...)");
}

Status Parser::ParseSampling(QuerySpec* spec) {
  if (!ConsumeKeyword("sample")) return Status::Ok();
  SNAPQ_RETURN_IF_ERROR(ExpectKeyword("interval"));
  Result<double> interval = ParseDuration();
  if (!interval.ok()) return interval.status();
  spec->sample_interval = *interval;
  if (ConsumeKeyword("for")) {
    Result<double> duration = ParseDuration();
    if (!duration.ok()) return duration.status();
    spec->duration = *duration;
  }
  return Status::Ok();
}

Status Parser::ParseSnapshot(QuerySpec* spec) {
  if (!ConsumeKeyword("use")) return Status::Ok();
  SNAPQ_RETURN_IF_ERROR(ExpectKeyword("snapshot"));
  spec->use_snapshot = true;
  if (ConsumeKeyword("error")) {
    if (!Peek().Is(TokenType::kNumber)) {
      return Error("expected threshold after ERROR");
    }
    const double t = Advance().number;
    if (t <= 0.0) {
      return Status::ParseError("snapshot error threshold must be positive");
    }
    spec->snapshot_threshold = t;
  }
  return Status::Ok();
}

Result<QuerySpec> Parser::Parse() {
  QuerySpec spec;
  if (ConsumeKeyword("explain")) {
    spec.explain = ExplainMode::kPlan;
    if (ConsumeKeyword("analyze")) spec.explain = ExplainMode::kAnalyze;
    if (Peek().IsKeyword("explain")) {
      return Error("EXPLAIN cannot be nested");
    }
  }
  SNAPQ_RETURN_IF_ERROR(ExpectKeyword("select"));
  if (Peek().Is(TokenType::kStar)) {
    ++pos_;
    spec.select.push_back(SelectItem{"*", AggregateFunction::kNone});
  } else {
    while (true) {
      Result<SelectItem> item = ParseSelectItem();
      if (!item.ok()) return item.status();
      spec.select.push_back(*item);
      if (!Peek().Is(TokenType::kComma)) break;
      ++pos_;
    }
  }
  SNAPQ_RETURN_IF_ERROR(ExpectKeyword("from"));
  if (!Peek().Is(TokenType::kIdentifier)) {
    return Error("expected table name");
  }
  spec.table = Advance().text;

  SNAPQ_RETURN_IF_ERROR(ParseWhere(&spec));
  SNAPQ_RETURN_IF_ERROR(ParseSampling(&spec));
  SNAPQ_RETURN_IF_ERROR(ParseSnapshot(&spec));

  if (!Peek().Is(TokenType::kEnd)) {
    return Error("unexpected trailing input");
  }
  // Semantic checks: at most one aggregate, and no mixing of aggregates
  // with (non-loc) plain columns.
  size_t num_aggs = 0;
  for (const SelectItem& item : spec.select) {
    if (item.aggregate != AggregateFunction::kNone) ++num_aggs;
  }
  if (num_aggs > 1) {
    return Status::ParseError("at most one aggregate per query");
  }
  if (num_aggs == 1) {
    for (const SelectItem& item : spec.select) {
      if (item.aggregate == AggregateFunction::kNone &&
          !EqualsIgnoreCase(item.column, "loc")) {
        return Status::ParseError(
            "cannot mix aggregates with plain columns (except loc)");
      }
    }
  }
  return spec;
}

}  // namespace

Result<QuerySpec> ParseQuery(std::string_view input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace snapq
