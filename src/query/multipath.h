// Multipath sketch aggregation — the [3] baseline end to end: the sink
// floods a request that stamps every node with its hop distance (ring);
// collection then proceeds ring by ring, each node broadcasting its
// OR-merged sum-sketch once. Because merges are idempotent, every copy a
// lower-ring neighbor catches is useful and duplicates cost nothing:
// robustness to loss comes from path diversity instead of retransmission.
//
// The §2 trade-off this makes measurable: every node transmits every
// epoch (N broadcasts per aggregate) and the answer carries the sketch's
// approximation error, whereas a snapshot query touches only the
// representatives and answers with model-accurate values.
#ifndef SNAPQ_QUERY_MULTIPATH_H_
#define SNAPQ_QUERY_MULTIPATH_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/geometry.h"
#include "query/sketch.h"
#include "sim/simulator.h"
#include "snapshot/agent.h"

namespace snapq {

struct MultipathResult {
  /// The sketch estimate of SUM at the sink; nullopt when the sink is
  /// dead.
  std::optional<double> estimate;
  /// Nodes that transmitted (everything that heard the request).
  size_t participants = 0;
  uint64_t request_messages = 0;
  uint64_t reply_messages = 0;
};

struct MultipathConfig {
  Time max_depth = 16;
  size_t num_bitmaps = 32;
};

/// Runs SUM queries as ring-scheduled sketch broadcasts. Claims the
/// agents' query handler while alive (mutually exclusive with
/// InNetworkAggregator).
class MultipathSketchAggregator {
 public:
  MultipathSketchAggregator(
      Simulator* sim, std::vector<std::unique_ptr<SnapshotAgent>>* agents,
      const MultipathConfig& config = {});
  ~MultipathSketchAggregator();

  MultipathSketchAggregator(const MultipathSketchAggregator&) = delete;
  MultipathSketchAggregator& operator=(const MultipathSketchAggregator&) =
      delete;

  /// One SUM aggregation over `region` rooted at `sink`; advances the
  /// simulator to the round's deadline.
  MultipathResult Execute(const Rect& region, NodeId sink);

 private:
  struct NodeState {
    bool saw_request = false;
    Time depth = 0;
    std::unique_ptr<SumSketch> sketch;
    bool transmitted = false;
  };

  void OnQueryMessage(NodeId self, const Message& msg);
  void BroadcastSketch(NodeId self);

  Simulator* const sim_;
  std::vector<std::unique_ptr<SnapshotAgent>>* const agents_;
  const MultipathConfig config_;

  int64_t query_id_ = 0;
  Rect region_{};
  NodeId sink_ = kInvalidNode;
  Time start_ = 0;
  std::vector<NodeState> states_;
  bool active_ = false;
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_MULTIPATH_H_
