// Acceptance bar for the accuracy-audit hook, twin of explain_alloc_test:
//
//  * a null ExecutionOptions::audit must add ZERO heap allocations to the
//    snapshot query path (one pointer compare, nothing else);
//  * an *installed* auditor must also add zero steady-state allocations —
//    everything is preallocated at construction and the journal's
//    disabled Emit is a single branch, so auditing production queries is
//    free on the allocator.
//
// Enforced by replacing the global allocator with a counting one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "obs/accuracy.h"
#include "obs/metric_registry.h"
#include "query/executor.h"
#include "sim/simulator.h"
#include "snapshot/election.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapq {
namespace {

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  std::unique_ptr<QueryExecutor> executor;
};

Net MakeNet() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  SimConfig sim_config;
  sim_config.energy.initial_battery = 1e9;
  Net net;
  net.sim = std::make_unique<Simulator>(
      std::vector<Point>{{0.1, 0.1}, {0.3, 0.1}, {0.5, 0.1}, {0.7, 0.1}},
      std::vector<double>(4, 10.0), sim_config);
  for (NodeId i = 0; i < 4; ++i) {
    net.agents.push_back(std::make_unique<SnapshotAgent>(
        i, net.sim.get(), config, 900 + i));
    net.agents.back()->Install();
    net.agents.back()->SetMeasurement(10.0 + i);
  }
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      if (i == j) continue;
      const double vi = net.agents[i]->measurement();
      const double vj = net.agents[j]->measurement();
      net.agents[i]->models().cache().Observe(j, vi - 1, vj - 1, 0);
      net.agents[i]->models().cache().Observe(j, vi + 1, vj + 1, 0);
    }
  }
  RunGlobalElection(*net.sim, net.agents, net.sim->now(), config);
  net.executor = std::make_unique<QueryExecutor>(
      net.sim.get(), &net.agents,
      Catalog::WithStandardRegions(Rect::UnitSquare()));
  return net;
}

const Rect kAll{0.0, 0.0, 1.0, 1.0};

/// Steady-state allocations of `rounds` snapshot query executions.
uint64_t CountQueryAllocations(QueryExecutor& executor,
                               const ExecutionOptions& options, int rounds) {
  for (int i = 0; i < 8; ++i) {
    executor.ExecuteRegion(kAll, /*use_snapshot=*/true,
                           AggregateFunction::kSum, options);
  }
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < rounds; ++i) {
    executor.ExecuteRegion(kAll, /*use_snapshot=*/true,
                           AggregateFunction::kSum, options);
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(AuditAllocTest, AuditingAddsNoSteadyStateAllocationsToQueries) {
  // Baseline: the hookless steady-state cost, measured twice for
  // determinism (same recipe as explain_alloc_test).
  Net a = MakeNet();
  Net b = MakeNet();
  ExecutionOptions options;
  const uint64_t first = CountQueryAllocations(*a.executor, options, 64);
  const uint64_t second = CountQueryAllocations(*b.executor, options, 64);
  ASSERT_EQ(first, second);

  // With an installed auditor the steady-state cost must be IDENTICAL:
  // the auditor preallocates at construction (outside the measured
  // window) and BeginRound/ObserveEstimate/EndRound never allocate while
  // the journal is disabled. This is stronger than "disabled is free" —
  // enabled auditing is allocation-free on the query path too.
  Net c = MakeNet();
  obs::MetricRegistry registry;
  obs::AccuracyAuditor auditor({}, /*num_nodes=*/4, &registry);
  ExecutionOptions audited;
  audited.audit = &auditor;
  audited.audit_threshold = 1.0;
  const uint64_t with_audit = CountQueryAllocations(*c.executor, audited, 64);
  EXPECT_EQ(with_audit, first);
  EXPECT_GT(auditor.audited_total(), 0u);  // the hook really ran
}

}  // namespace
}  // namespace snapq
