// Golden test freezing the `.energymap.json` schema. The document is
// consumed by tools/energy_report.py (including the CI savings gate), so
// a change here is a cross-tool schema change: update kEnergyMapSchemaVersion,
// the golden below, and energy_report.py together.
#include <gtest/gtest.h>

#include <string>

#include "net/energy.h"
#include "obs/energy_ledger.h"
#include "obs/json.h"
#include "obs/metric_registry.h"

namespace snapq::obs {
namespace {

/// A tiny deterministic ledger exercising every section of the document:
/// a traced election exchange, a traced query reply, a cache charge, a
/// direct drain, a forced-kill discard and one death.
EnergyLedgerSnapshot GoldenSnapshot() {
  static MetricRegistry registry;
  EnergyModel model;
  model.initial_battery = 8.0;
  EnergyLedger ledger(model, 2, &registry);
  ledger.RecordMessage(0, MessageType::kInvitation, EnergyDirection::kTx, 1.0,
                       /*root_slot=*/0);
  ledger.RecordMessage(1, MessageType::kInvitation, EnergyDirection::kRx, 0.25,
                       /*root_slot=*/0);
  ledger.RecordCacheOp(1, 0.125);
  ledger.RecordMessage(1, MessageType::kQueryReply, EnergyDirection::kTx, 0.5,
                       /*root_slot=*/3);
  ledger.RecordDirect(0, 0.5);
  ledger.RecordKillDiscard(0, 6.5);
  ledger.RecordDeath(0, 7);
  ledger.UpdateGauges(9);
  return ledger.TakeSnapshot();
}

std::string GoldenJson() {
  EnergyMapMeta meta;
  meta.benchmark = "golden";
  meta.git_sha = "deadbeef";
  meta.quick = true;
  meta.t = 9;
  meta.extras = {{"alpha", 0.5}};
  return EnergyMapToJson(GoldenSnapshot(), {{0.25, 0.75}, {0.5, 0.5}}, meta);
}

constexpr char kGolden[] = R"({
  "schema_version": 1,
  "kind": "snapq-energymap",
  "benchmark": "golden",
  "git_sha": "deadbeef",
  "quick": true,
  "t": 9,
  "runs": 1,
  "num_nodes": 2,
  "unlimited": false,
  "initial_battery": 8,
  "totals": {
    "drained": 8.875,
    "remaining": 7.125,
    "deaths": 1,
    "by_cause": {"election": 1.25, "maintenance": 0, "data": 0, "query": 0.5, "cache": 0.125, "direct": 0.5, "killed": 6.5},
    "by_direction": {"tx": 1.5, "rx": 0.25, "snoop": 0},
    "by_root_kind": {"election": 1.25, "reelection": 0, "heartbeat_round": 0, "query": 0.5, "violation": 0, "untraced": 7.125}
  },
  "forecast": {"first_death_tick": 7, "coverage_knee_tick": -1},
  "extras": {"alpha": 0.5},
  "nodes": [
    {"id": 0, "x": 0.25, "y": 0.75, "remaining": 0, "drained": 8, "deaths": 1, "by_cause": {"election": 1, "maintenance": 0, "data": 0, "query": 0, "cache": 0, "direct": 0.5, "killed": 6.5}},
    {"id": 1, "x": 0.5, "y": 0.5, "remaining": 7.125, "drained": 0.875, "deaths": 0, "by_cause": {"election": 0.25, "maintenance": 0, "data": 0, "query": 0.5, "cache": 0.125, "direct": 0, "killed": 0}}
  ]
}
)";

TEST(EnergyMapSchemaTest, GoldenDocumentIsFrozen) {
  EXPECT_EQ(GoldenJson(), kGolden);
}

TEST(EnergyMapSchemaTest, GoldenDocumentIsValidJson) {
  EXPECT_TRUE(ValidateJson(GoldenJson()));
}

TEST(EnergyMapSchemaTest, ConservationHoldsInTheDocumentItself) {
  // The golden scenario drains + retains exactly the two batteries: the
  // sidecar's totals must re-sum to num_nodes * initial_battery.
  const EnergyLedgerSnapshot snap = GoldenSnapshot();
  double remaining = 0.0;
  for (double r : snap.remaining) remaining += r;
  EXPECT_EQ(snap.TotalDrained() + remaining, 2 * 8.0);
}

TEST(EnergyMapSchemaTest, UnlimitedBatteryNeverEmitsInfinity) {
  static MetricRegistry registry;
  EnergyLedger ledger(EnergyModel::Unlimited(), 1, &registry);
  ledger.RecordMessage(0, MessageType::kData, EnergyDirection::kTx, 2.0);
  EnergyMapMeta meta;
  meta.benchmark = "unlimited";
  const std::string json =
      EnergyMapToJson(ledger.TakeSnapshot(), {{0.0, 0.0}}, meta);
  EXPECT_TRUE(ValidateJson(json));
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("null"), std::string::npos);
  EXPECT_NE(json.find("\"unlimited\": true"), std::string::npos);
  EXPECT_NE(json.find("\"initial_battery\": -1"), std::string::npos);
}

}  // namespace
}  // namespace snapq::obs
