// Quickstart: build a simulated deployment, train neighbor models, elect a
// network snapshot and compare a regular query against a snapshot query.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "api/network.h"
#include "data/random_walk.h"

using namespace snapq;

int main() {
  // 1. A deployment: 100 nodes in the unit square, everyone in radio range.
  NetworkConfig config;
  config.num_nodes = 100;
  config.snapshot.threshold = 1.0;  // T: tolerate |error| <= 1 (sse metric)
  config.seed = 42;
  SensorNetwork net(config);

  // 2. Sensor data: a 10-class correlated random walk (the paper's
  //    synthetic workload).
  Rng data_rng(7);
  RandomWalkConfig walk;
  walk.num_nodes = 100;
  walk.num_classes = 10;
  walk.horizon = 101;
  Result<Dataset> data =
      Dataset::Create(GenerateRandomWalk(walk, data_rng).series);
  if (!net.AttachDataset(std::move(*data)).ok()) return 1;

  // 3. Model training: for the first 10 time units every node announces its
  //    reading; neighbors cache (own, neighbor) value pairs and fit linear
  //    correlation models.
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(100);

  // 4. Representative discovery: a localized election (at most five
  //    messages per node) picks a small set of representatives.
  const ElectionStats stats = net.RunElection(100);
  std::printf("snapshot: %zu representatives cover %zu passive nodes "
              "(avg %.1f msgs/node)\n",
              stats.num_active, stats.num_passive,
              stats.avg_messages_per_node);

  // 5. Queries: USE SNAPSHOT answers from the representatives only.
  const Result<QueryResult> regular =
      net.Query("SELECT avg(value) FROM sensors WHERE loc IN NORTH_HALF");
  const Result<QueryResult> snap = net.Query(
      "SELECT avg(value) FROM sensors WHERE loc IN NORTH_HALF USE SNAPSHOT");
  if (!regular.ok() || !snap.ok()) return 1;

  std::printf("regular : avg=%.2f from %zu participating nodes\n",
              *regular->aggregate, regular->participants);
  std::printf("snapshot: avg=%.2f from %zu participating nodes "
              "(%.0f%% fewer)\n",
              *snap->aggregate, snap->participants,
              100.0 * (1.0 - static_cast<double>(snap->participants) /
                                 static_cast<double>(regular->participants)));
  return 0;
}
