file(REMOVE_RECURSE
  "CMakeFiles/innetwork_test.dir/query/innetwork_test.cc.o"
  "CMakeFiles/innetwork_test.dir/query/innetwork_test.cc.o.d"
  "innetwork_test"
  "innetwork_test.pdb"
  "innetwork_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innetwork_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
