#!/usr/bin/env python3
"""Validate, render and export *.topo.json topology sidecars.

Three modes (combinable; validation always runs first):

  topo_report.py FILE
      human report: structural summary, churn extras, per-cluster table
      and an ASCII spatial map (component digits, 'x' dead, '!'
      articulation node, 'o' bridge endpoint, 'R' representative).

  topo_report.py FILE --validate [--max-partitions N] [--json PATH]
      schema-check the sidecar (the tools-check CI job gates on this).
      --max-partitions additionally fails (exit 1) when the component
      count exceeds N. --json writes a machine-readable verdict object to
      PATH ("-" for stdout) regardless of outcome — schema violations
      included — so CI consumes one JSON document instead of scraping
      stdout.

  topo_report.py FILE --dot PATH
      Graphviz DOT export: nodes positioned by deployment coordinates and
      colored by component, observed links as edges (weak links dashed
      red), bridges bold, articulation nodes double-circled.

Exits 0 on success, 1 on a failed --max-partitions verdict, 2 on schema
violation. The schema is the one frozen by src/obs/topo.h
(schema_version 1, kind "snapq-topo") and pinned by
tests/obs/topo_schema_test.cc — update all three together.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
KIND = "snapq-topo"

TOP_FIELDS = {"schema_version": int, "kind": str, "benchmark": str,
              "git_sha": str, "quick": bool, "t": int, "num_nodes": int,
              "live": int, "summary": dict, "clusters": list,
              "bridges": list, "articulation": list, "extras": dict,
              "nodes": list, "links": list}
SUMMARY_FIELDS = {"partitions": int, "bridges": int,
                  "articulation_nodes": int, "isolated": int,
                  "avg_degree": float, "max_degree": int, "weak_links": int,
                  "links_observed": int}
CLUSTER_FIELDS = {"rep": int, "size": int, "radius": float, "depth": int}
NODE_FIELDS = {"id": int, "x": float, "y": float, "alive": bool,
               "degree": int, "component": int, "rep": int}
LINK_FIELDS = {"from": int, "to": int, "deliveries": int, "snoops": int,
               "losses": int, "ewma": float, "last": int}

WEAK_EWMA = 0.5  # render threshold only; the monitor's is configurable


def _is_number(value, want):
    if isinstance(value, bool):
        return want is bool
    if want is float:
        return isinstance(value, (int, float))
    return isinstance(value, want)


def _check_fields(obj, fields, where, errors):
    for key, want in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing field '{key}'")
        elif not _is_number(obj[key], want):
            errors.append(f"{where}: field '{key}' is "
                          f"{type(obj[key]).__name__}, wanted {want.__name__}")
    for key in obj:
        if key not in fields:
            errors.append(f"{where}: unknown field '{key}'")


def validate(doc, path):
    """Returns a list of schema-violation strings (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    _check_fields(doc, TOP_FIELDS, path, errors)
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"{path}: schema_version "
                      f"{doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    if doc.get("kind") != KIND:
        errors.append(f"{path}: kind {doc.get('kind')!r} != {KIND!r}")

    summary = doc.get("summary", {})
    if isinstance(summary, dict):
        _check_fields(summary, SUMMARY_FIELDS, f"{path}:summary", errors)

    for i, c in enumerate(doc.get("clusters", [])
                          if isinstance(doc.get("clusters"), list) else []):
        where = f"{path}:clusters[{i}]"
        if isinstance(c, dict):
            _check_fields(c, CLUSTER_FIELDS, where, errors)
        else:
            errors.append(f"{where}: not an object")

    for i, b in enumerate(doc.get("bridges", [])
                          if isinstance(doc.get("bridges"), list) else []):
        if not (isinstance(b, list) and len(b) == 2
                and all(isinstance(v, int) for v in b)):
            errors.append(f"{path}:bridges[{i}]: not an [u, v] pair")

    for i, a in enumerate(doc.get("articulation", [])
                          if isinstance(doc.get("articulation"), list)
                          else []):
        if not isinstance(a, int):
            errors.append(f"{path}:articulation[{i}]: not an int")

    extras = doc.get("extras", {})
    if isinstance(extras, dict):
        for key, value in extras.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{path}:extras.{key}: not a number")

    nodes = doc.get("nodes", [])
    live = 0
    isolated = 0
    components = set()
    if isinstance(nodes, list):
        if isinstance(doc.get("num_nodes"), int) \
                and len(nodes) != doc["num_nodes"]:
            errors.append(f"{path}: {len(nodes)} node entries != num_nodes "
                          f"{doc['num_nodes']}")
        for i, n in enumerate(nodes):
            where = f"{path}:nodes[{i}]"
            if not isinstance(n, dict):
                errors.append(f"{where}: not an object")
                continue
            _check_fields(n, NODE_FIELDS, where, errors)
            if n.get("alive") is True:
                live += 1
                if n.get("degree") == 0:
                    isolated += 1
                if isinstance(n.get("component"), int):
                    if n["component"] < 0:
                        errors.append(f"{where}: live node with component "
                                      f"{n['component']}")
                    else:
                        components.add(n["component"])
            elif n.get("alive") is False and n.get("component") != -1:
                errors.append(f"{where}: dead node with component "
                              f"{n.get('component')!r} (wanted -1)")
    # Cross-checks: the summary must agree with the per-node detail.
    if isinstance(summary, dict):
        checks = [("live (top-level)", doc.get("live"), live),
                  ("summary.partitions", summary.get("partitions"),
                   len(components)),
                  ("summary.isolated", summary.get("isolated"), isolated),
                  ("summary.bridges", summary.get("bridges"),
                   len(doc.get("bridges", []))),
                  ("summary.articulation_nodes",
                   summary.get("articulation_nodes"),
                   len(doc.get("articulation", []))),
                  ("summary.links_observed", summary.get("links_observed"),
                   len(doc.get("links", [])))]
        for label, claimed, actual in checks:
            if isinstance(claimed, int) and claimed != actual:
                errors.append(f"{path}: {label} {claimed} != derived "
                              f"{actual}")

    for i, l in enumerate(doc.get("links", [])
                          if isinstance(doc.get("links"), list) else []):
        where = f"{path}:links[{i}]"
        if isinstance(l, dict):
            _check_fields(l, LINK_FIELDS, where, errors)
        else:
            errors.append(f"{where}: not an object")
    return errors


def component_char(component):
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"
    return digits[component % len(digits)]


def ascii_map(doc, width=64, height=24):
    """Renders the deployment as a character grid. Overlapping nodes keep
    the highest-priority marker: dead > articulation > bridge endpoint >
    representative > component digit."""
    nodes = doc["nodes"]
    if not nodes:
        return "(no nodes)\n"
    xs = [n["x"] for n in nodes]
    ys = [n["y"] for n in nodes]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    articulation = set(doc["articulation"])
    bridge_ends = {v for pair in doc["bridges"] for v in pair}
    reps = {c["rep"] for c in doc["clusters"]}

    def priority(n):
        if not n["alive"]:
            return 4, "x"
        if n["id"] in articulation:
            return 3, "!"
        if n["id"] in bridge_ends:
            return 2, "o"
        if n["id"] in reps:
            return 1, "R"
        return 0, component_char(n["component"])

    grid = [["." for _ in range(width)] for _ in range(height)]
    rank = [[-1 for _ in range(width)] for _ in range(height)]
    for n in nodes:
        col = min(width - 1, int((n["x"] - x0) / xspan * (width - 1)))
        # Row 0 is the top of the terminal but the max-y edge of the field.
        row = min(height - 1,
                  int((y1 - n["y"]) / yspan * (height - 1)))
        p, ch = priority(n)
        if p > rank[row][col]:
            rank[row][col] = p
            grid[row][col] = ch

    lines = ["".join(r) for r in grid]
    lines.append("legend: digit=component  R=representative  "
                 "o=bridge endpoint  !=articulation  x=dead")
    return "\n".join(lines) + "\n"


def report(doc):
    s = doc["summary"]
    out = [f"{doc['benchmark']} @t={doc['t']} "
           f"(git {doc['git_sha']}{', quick' if doc['quick'] else ''})",
           f"  nodes       {doc['live']} live / {doc['num_nodes']} "
           f"({s['isolated']} isolated)",
           f"  partitions  {s['partitions']}",
           f"  degree      avg {s['avg_degree']:.1f}, max {s['max_degree']}",
           f"  cut         {s['bridges']} bridges, "
           f"{s['articulation_nodes']} articulation nodes",
           f"  links       {s['links_observed']} observed, "
           f"{s['weak_links']} weak"]
    for key, value in doc["extras"].items():
        out.append(f"  extras.{key} = {value:g}")
    if doc["clusters"]:
        out.append("  clusters (rep, size, radius, depth):")
        for c in doc["clusters"]:
            depth = "broken" if c["depth"] < 0 else str(c["depth"])
            out.append(f"    rep {c['rep']:>4}  size {c['size']:>4}  "
                       f"radius {c['radius']:.2f}  depth {depth}")
    weak = [l for l in doc["links"]
            if 0 <= l["ewma"] < WEAK_EWMA]
    weak.sort(key=lambda l: l["ewma"])
    if weak:
        out.append(f"  weakest links (ewma < {WEAK_EWMA}):")
        for l in weak[:5]:
            out.append(f"    {l['from']} -> {l['to']}  ewma "
                       f"{l['ewma']:.2f}  ({l['deliveries']} ok, "
                       f"{l['losses']} lost)")
    return "\n".join(out) + "\n\n" + ascii_map(doc)


def to_dot(doc):
    """Graphviz DOT (neato-friendly: fixed node positions)."""
    articulation = set(doc["articulation"])
    bridges = {tuple(sorted(pair)) for pair in doc["bridges"]}
    palette = ["#4c72b0", "#dd8452", "#55a868", "#c44e52", "#8172b3",
               "#937860", "#da8bc3", "#8c8c8c", "#ccb974", "#64b5cd"]
    out = ["graph topo {", "  layout=neato;", "  node [shape=circle, "
           "style=filled, fontsize=8, width=0.25, fixedsize=true];"]
    for n in doc["nodes"]:
        color = ("#dddddd" if not n["alive"]
                 else palette[n["component"] % len(palette)])
        shape = ("doublecircle" if n["id"] in articulation else "circle")
        out.append(f'  n{n["id"]} [label="{n["id"]}", '
                   f'pos="{n["x"]:.4f},{n["y"]:.4f}!", '
                   f'fillcolor="{color}", shape={shape}];')
    # Observed links, collapsed to undirected (worst ewma wins).
    seen = {}
    for l in doc["links"]:
        key = tuple(sorted((l["from"], l["to"])))
        ewma = l["ewma"]
        if key not in seen or (0 <= ewma < seen[key]):
            seen[key] = ewma
    for (u, v), ewma in sorted(seen.items()):
        style = []
        if (u, v) in bridges:
            style.append("penwidth=3")
        if 0 <= ewma < WEAK_EWMA:
            style.append('color="#c44e52", style=dashed')
        out.append(f"  n{u} -- n{v}"
                   + (f" [{', '.join(style)}]" if style else "") + ";")
    # Bridges the observer never saw traffic on still render (bold, grey).
    for (u, v) in sorted(bridges - set(seen)):
        out.append(f'  n{u} -- n{v} [penwidth=3, color="#8c8c8c"];')
    out.append("}")
    return "\n".join(out) + "\n"


def write_json_verdict(dest, payload):
    text = json.dumps(payload, indent=2) + "\n"
    if dest == "-":
        sys.stdout.write(text)
    else:
        with open(dest, "w", encoding="utf-8") as f:
            f.write(text)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="*.topo.json sidecar")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check only (no report)")
    parser.add_argument("--max-partitions", type=int, default=None,
                        help="with --validate, exit 1 when the partition "
                             "count exceeds this")
    parser.add_argument("--json", metavar="PATH",
                        help="with --validate, write a machine-readable "
                             "verdict object to PATH ('-' for stdout)")
    parser.add_argument("--dot", metavar="PATH",
                        help="write a Graphviz DOT rendering to PATH")
    args = parser.parse_args()

    if (args.json or args.max_partitions is not None) and not args.validate:
        parser.error("--json/--max-partitions require --validate")

    try:
        with open(args.file, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        doc, errors = None, [f"cannot read {args.file}: {e}"]
    else:
        errors = validate(doc, args.file)

    if args.validate:
        for e in errors:
            print(f"schema error: {e}", file=sys.stderr)
        valid = not errors
        partitions = doc["summary"]["partitions"] if valid else 0
        over = (valid and args.max_partitions is not None
                and partitions > args.max_partitions)
        if valid:
            print(f"{args.file}: valid (schema {SCHEMA_VERSION}, "
                  f"{doc['num_nodes']} nodes, {partitions} partition(s), "
                  f"{len(doc['links'])} links)")
            if over:
                print(f"PARTITIONED: {partitions} > "
                      f"--max-partitions {args.max_partitions}")
        exit_code = 2 if not valid else (1 if over else 0)
        if args.json:
            write_json_verdict(args.json, {
                "file": args.file,
                "valid": valid,
                "schema_version": SCHEMA_VERSION,
                "nodes": doc["num_nodes"] if valid else 0,
                "partitions": partitions,
                "bridges": doc["summary"]["bridges"] if valid else 0,
                "links": len(doc["links"]) if valid else 0,
                "errors": errors,
                "exit_code": exit_code,
            })
        return exit_code

    if errors:
        for e in errors:
            print(f"schema error: {e}", file=sys.stderr)
        return 2
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as f:
            f.write(to_dot(doc))
        print(f"wrote {args.dot}")
        return 0
    print(report(doc), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
