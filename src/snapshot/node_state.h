// Node protocol state shared by the election and maintenance logic, plus
// the SnapshotView value type that captures an elected snapshot for query
// processing and analysis.
#ifndef SNAPQ_SNAPSHOT_NODE_STATE_H_
#define SNAPQ_SNAPSHOT_NODE_STATE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "net/node_id.h"

namespace snapq {

/// §5: a node's status flag. Initially undefined; the refinement rules set
/// it to ACTIVE (represents a non-empty set including itself, answers
/// snapshot queries) or PASSIVE (represented by another node, stays idle).
enum class NodeMode {
  kUndefined,
  kActive,
  kPassive,
};

const char* NodeModeName(NodeMode mode);

/// Immutable capture of the network's representation state after an
/// election (or at any instant during maintenance). Index = NodeId.
class SnapshotView {
 public:
  struct NodeInfo {
    NodeMode mode = NodeMode::kUndefined;
    /// Who this node believes represents it (self id when unrepresented).
    NodeId representative = kInvalidNode;
    /// This node's election epoch when it last chose its representative.
    int64_t epoch = 0;
    /// Nodes this node believes it represents -> the epoch it recorded.
    std::map<NodeId, int64_t> represents;
    /// False when the node is dead (battery exhausted / killed).
    bool alive = true;
  };

  explicit SnapshotView(std::vector<NodeInfo> nodes)
      : nodes_(std::move(nodes)) {}

  size_t num_nodes() const { return nodes_.size(); }
  const NodeInfo& node(NodeId id) const { return nodes_[id]; }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }

  /// Number of ACTIVE nodes: the snapshot size n1 the paper plots.
  size_t CountActive() const;

  /// Number of PASSIVE nodes.
  size_t CountPassive() const;

  /// Nodes still UNDEFINED (should be zero after a completed election).
  size_t CountUndefined() const;

  /// Spurious representatives (§3, Fig 13): nodes holding at least one
  /// stale represents-entry — they believe they represent some N_j whose
  /// own record points to a different (or newer-epoch) representative.
  size_t CountSpurious() const;

  /// True when node `rep` holds a *current* (non-stale) representation of
  /// node `j`.
  bool RepresentsCurrently(NodeId rep, NodeId j) const;

  /// The nodes that answer a snapshot query on behalf of `j` (j itself when
  /// ACTIVE, else its current representative); kInvalidNode when nobody
  /// would answer (e.g. all stale).
  NodeId ResponderFor(NodeId j) const;

 private:
  std::vector<NodeInfo> nodes_;
};

}  // namespace snapq

#endif  // SNAPQ_SNAPSHOT_NODE_STATE_H_
