// Regression coverage for >65536-node networks: id/index arithmetic must
// not narrow (the historical risk points are the packed link_loss_ key
// from * num_nodes + to, which crosses 2^32 near n = 66k, and any uint16
// intermediate), and construction/connectivity must stay sub-quadratic —
// these tests would time out long before failing if a brute-force O(n^2)
// path sneaks back in.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/rng.h"
#include "net/link_model.h"
#include "net/topology.h"

namespace snapq {
namespace {

TEST(LinkModelScaleTest, SeventyThousandNodesBuildExactRows) {
  // 70,000 nodes on a jitter-free 265x265 grid in the unit square; range
  // 1.1 cell widths reaches exactly the four orthogonal neighbors
  // (diagonal is sqrt(2) ~ 1.414 cells away).
  const size_t n = 70000;
  const size_t cols = 265;
  Rng rng(1);
  const std::vector<Point> positions =
      PlaceGrid(n, Rect{0.0, 0.0, 1.0, 1.0}, 0.0, rng);
  const double cell_w = 1.0 / static_cast<double>(cols);
  LinkModel lm(positions, std::vector<double>(n, 1.1 * cell_w), 0.0);
  ASSERT_EQ(lm.num_nodes(), n);

  // Interior node 66000 sits at row 249, column 15 — past the 2^16 id
  // boundary where narrowed arithmetic would wrap.
  const NodeId interior = 66000;
  const std::span<const NodeId> row = lm.Reachable(interior);
  const std::vector<NodeId> expected = {interior - 265, interior - 1,
                                        interior + 1, interior + 265};
  ASSERT_EQ(row.size(), expected.size());
  for (size_t k = 0; k < expected.size(); ++k) EXPECT_EQ(row[k], expected[k]);

  // Corner node 0 has exactly {1, 265}.
  const std::span<const NodeId> corner = lm.Reachable(0);
  ASSERT_EQ(corner.size(), 2u);
  EXPECT_EQ(corner[0], 1u);
  EXPECT_EQ(corner[1], 265u);

  EXPECT_TRUE(lm.CanReach(interior, interior + 1));
  EXPECT_FALSE(lm.CanReach(interior, interior + 266));  // diagonal
}

TEST(LinkModelScaleTest, LinkLossKeysDoNotCollideAbove65536) {
  // from * n + to for (69999, 0) is ~4.9e9 — past 2^32. Under uint32
  // arithmetic 69999*70000 wraps to 604962704, which is (8642, 22704)'s
  // key: a narrowed key type would make that pair inherit the override.
  const size_t n = 70000;
  const size_t cols = 265;
  Rng rng(2);
  const std::vector<Point> positions =
      PlaceGrid(n, Rect{0.0, 0.0, 1.0, 1.0}, 0.0, rng);
  const double cell_w = 1.0 / static_cast<double>(cols);
  LinkModel lm(positions, std::vector<double>(n, 1.1 * cell_w), 0.0);

  lm.SetLinkLoss(69999, 0, 1.0);
  Rng sample_rng(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(lm.SampleLoss(69999, 0, sample_rng));
  }
  // The uint32-wrap alias pair must still see the base probability (0.0).
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(lm.SampleLoss(8642, 22704, sample_rng));
    EXPECT_FALSE(lm.SampleLoss(0, 69999, sample_rng));  // reverse direction
  }
}

TEST(LinkModelScaleTest, TwoComponentPlacementDisconnectsFast) {
  // Two 10,000-node grids 100 units apart with a range that connects each
  // grid internally but cannot bridge the gap. Before adjacency-walking
  // IsConnected, this placement was the slow path: every frontier node
  // paid an O(n) CanReach sweep. Now it is O(n + edges) and finishes in
  // well under a second even in debug builds.
  const size_t half = 10000;
  Rng rng(5);
  std::vector<Point> positions =
      PlaceGrid(half, Rect{0.0, 0.0, 1.0, 1.0}, 0.0, rng);
  const std::vector<Point> far_cluster =
      PlaceGrid(half, Rect{100.0, 100.0, 101.0, 101.0}, 0.0, rng);
  positions.insert(positions.end(), far_cluster.begin(), far_cluster.end());

  const double cell_w = 1.0 / 100.0;  // cols = ceil(sqrt(10000)) = 100
  LinkModel lm(positions, std::vector<double>(2 * half, 1.5 * cell_w), 0.0);
  EXPECT_FALSE(lm.IsConnected());

  // Sanity: a single grid with the same range is connected.
  LinkModel one(PlaceGrid(half, Rect{0.0, 0.0, 1.0, 1.0}, 0.0, rng),
                std::vector<double>(half, 1.5 * cell_w), 0.0);
  EXPECT_TRUE(one.IsConnected());
}

TEST(LinkModelScaleTest, SetPositionStaysLocalAtScale) {
  // Moving one node in a 70k network must not rebuild the world: a burst
  // of moves completes instantly when the patch set is O(k), and the
  // patched rows match a from-scratch model at the final placement.
  const size_t n = 70000;
  const size_t cols = 265;
  Rng rng(7);
  std::vector<Point> positions =
      PlaceGrid(n, Rect{0.0, 0.0, 1.0, 1.0}, 0.0, rng);
  const double cell_w = 1.0 / static_cast<double>(cols);
  const std::vector<double> ranges(n, 1.1 * cell_w);
  LinkModel lm(positions, ranges, 0.0);

  for (int m = 0; m < 200; ++m) {
    const NodeId id = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    const Point target{rng.NextDouble(), rng.NextDouble()};
    lm.SetPosition(id, target);
    positions[id] = target;
  }

  const LinkModel fresh(positions, ranges, 0.0);
  for (int probe = 0; probe < 500; ++probe) {
    const NodeId id = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    const std::span<const NodeId> a = lm.Reachable(id);
    const std::span<const NodeId> b = fresh.Reachable(id);
    ASSERT_EQ(a.size(), b.size()) << "row " << id;
    for (size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k], b[k]) << "row " << id << " elem " << k;
    }
  }
}

}  // namespace
}  // namespace snapq
