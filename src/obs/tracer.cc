#include "obs/tracer.h"

#include <algorithm>
#include <utility>

namespace snapq::obs {

const char* TraceRootKindName(TraceRootKind kind) {
  switch (kind) {
    case TraceRootKind::kElection:
      return "election";
    case TraceRootKind::kReelection:
      return "reelection";
    case TraceRootKind::kHeartbeatRound:
      return "heartbeat_round";
    case TraceRootKind::kQuery:
      return "query";
    case TraceRootKind::kViolation:
      return "violation";
  }
  return "?";
}

const char* TraceSpanKindName(TraceSpanKind kind) {
  switch (kind) {
    case TraceSpanKind::kRoot:
      return "root";
    case TraceSpanKind::kMessage:
      return "message";
    case TraceSpanKind::kPhase:
      return "phase";
    case TraceSpanKind::kInstant:
      return "instant";
  }
  return "?";
}

Tracer::Tracer(const TracerConfig& config)
    : config_(config), rng_(config.seed) {
  spans_.reserve(std::min<size_t>(config_.max_spans, 1024));
}

TraceContext Tracer::StartTrace(TraceRootKind kind, NodeId node, Time t,
                                int64_t value, const TraceContext& link) {
  if (!enabled()) return {};
  if (config_.sampling < 1.0 && !rng_.Bernoulli(config_.sampling)) return {};
  TraceSpan root;
  root.trace_id = next_trace_id_++;
  root.span_id = next_span_id_++;
  root.kind = TraceSpanKind::kRoot;
  root.root_kind = kind;
  root.name = TraceRootKindName(kind);
  root.node = node;
  root.start = t;
  root.end = t;
  root.value = value;
  root.link_trace_id = link.trace_id;
  root.link_span_id = link.span_id;
  const uint64_t trace_id = root.trace_id;
  const uint64_t span_id = root.span_id;
  if (Append(std::move(root)) == nullptr) return {};
  ++num_traces_;
  root_index_[trace_id] = span_index_[span_id];
  return TraceContext{trace_id, span_id, 0};
}

TraceContext Tracer::BeginMessageSpan(const TraceContext& parent,
                                      MessageType type, NodeId from, Time t) {
  if (!parent.sampled()) return {};
  TraceSpan span;
  span.trace_id = parent.trace_id;
  span.span_id = next_span_id_++;
  span.parent_span_id = parent.span_id;
  span.kind = TraceSpanKind::kMessage;
  span.msg_type = type;
  span.name = MessageTypeName(type);
  span.node = from;
  span.start = t;
  span.end = t;
  const uint64_t span_id = span.span_id;
  if (Append(std::move(span)) == nullptr) {
    // Budget exhausted: keep propagating the parent so later spans (if any
    // budget frees via Clear) still attach to a recorded ancestor.
    return parent;
  }
  ExtendRoot(parent.trace_id, t);
  return TraceContext{parent.trace_id, span_id, parent.span_id};
}

void Tracer::RecordDelivery(const TraceContext& ctx, NodeId node, Time t,
                            RadioEventKind outcome) {
  if (!ctx.sampled()) return;
  const auto it = span_index_.find(ctx.span_id);
  if (it == span_index_.end()) return;
  TraceSpan& span = spans_[it->second];
  span.deliveries.push_back(TraceDelivery{node, t, outcome});
  span.end = std::max(span.end, t);
  ExtendRoot(ctx.trace_id, t);
}

void Tracer::RecordInstant(const TraceContext& parent, std::string name,
                           NodeId node, Time t, int64_t value) {
  if (!parent.sampled()) return;
  TraceSpan span;
  span.trace_id = parent.trace_id;
  span.span_id = next_span_id_++;
  span.parent_span_id = parent.span_id;
  span.kind = TraceSpanKind::kInstant;
  span.name = std::move(name);
  span.node = node;
  span.start = t;
  span.end = t;
  span.value = value;
  if (Append(std::move(span)) != nullptr) ExtendRoot(parent.trace_id, t);
}

void Tracer::RecordPhase(const TraceContext& parent, std::string name,
                         Time begin, Time end) {
  if (!parent.sampled()) return;
  TraceSpan span;
  span.trace_id = parent.trace_id;
  span.span_id = next_span_id_++;
  span.parent_span_id = parent.span_id;
  span.kind = TraceSpanKind::kPhase;
  span.name = std::move(name);
  span.start = begin;
  span.end = end;
  if (Append(std::move(span)) != nullptr) ExtendRoot(parent.trace_id, end);
}

const TraceSpan* Tracer::FindSpan(uint64_t span_id) const {
  const auto it = span_index_.find(span_id);
  return it == span_index_.end() ? nullptr : &spans_[it->second];
}

int Tracer::RootKindIndex(uint64_t trace_id) const {
  const auto it = root_index_.find(trace_id);
  if (it == root_index_.end()) return -1;
  return static_cast<int>(spans_[it->second].root_kind);
}

std::vector<uint64_t> Tracer::TraceIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(root_index_.size());
  for (const TraceSpan& span : spans_) {
    if (span.kind == TraceSpanKind::kRoot) ids.push_back(span.trace_id);
  }
  return ids;
}

std::vector<const TraceSpan*> Tracer::SpansOfTrace(uint64_t trace_id) const {
  std::vector<const TraceSpan*> out;
  for (const TraceSpan& span : spans_) {
    if (span.trace_id == trace_id) out.push_back(&span);
  }
  return out;
}

void Tracer::Clear() {
  spans_.clear();
  span_index_.clear();
  root_index_.clear();
  dropped_ = 0;
}

TraceSpan* Tracer::Append(TraceSpan span) {
  if (spans_.size() >= config_.max_spans) {
    ++dropped_;
    return nullptr;
  }
  const uint64_t span_id = span.span_id;
  spans_.push_back(std::move(span));
  span_index_[span_id] = spans_.size() - 1;
  return &spans_.back();
}

void Tracer::ExtendRoot(uint64_t trace_id, Time t) {
  const auto it = root_index_.find(trace_id);
  if (it == root_index_.end()) return;
  TraceSpan& root = spans_[it->second];
  root.end = std::max(root.end, t);
}

}  // namespace snapq::obs
