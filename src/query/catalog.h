// The catalog: named spatial regions ("SOUTH_EAST_QUADRANT") and the
// sensors-table schema the parser's output is validated against. Nodes are
// location-aware (§3.1); regions resolve to rectangles over the deployment
// area.
#ifndef SNAPQ_QUERY_CATALOG_H_
#define SNAPQ_QUERY_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace snapq {

/// Region + schema registry. Lookups are case-insensitive.
class Catalog {
 public:
  Catalog() = default;

  /// A catalog pre-populated with the quadrants/halves of `area` (e.g.
  /// SOUTH_EAST_QUADRANT, NORTH_HALF, EVERYWHERE). Convention: north = +y,
  /// east = +x.
  static Catalog WithStandardRegions(const Rect& area);

  /// Registers (or replaces) a named region.
  void RegisterRegion(const std::string& name, const Rect& rect);

  /// Resolves a region name; NotFound if absent.
  Result<Rect> LookupRegion(const std::string& name) const;

  /// Registered region names (uppercased), sorted.
  std::vector<std::string> RegionNames() const;

  /// Registers a measurement column name (e.g. "temperature"); "loc" and
  /// "value" are always valid.
  void RegisterMeasurementColumn(const std::string& name);

  /// True when `name` is a queryable column.
  bool IsValidColumn(const std::string& name) const;

 private:
  std::map<std::string, Rect> regions_;          // keys uppercased
  std::map<std::string, bool> measurement_cols_;  // keys uppercased
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_CATALOG_H_
