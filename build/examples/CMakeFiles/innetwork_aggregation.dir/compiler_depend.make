# Empty compiler generated dependencies file for innetwork_aggregation.
# This may be replaced when dependencies are built.
