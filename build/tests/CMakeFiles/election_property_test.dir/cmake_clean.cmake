file(REMOVE_RECURSE
  "CMakeFiles/election_property_test.dir/snapshot/election_property_test.cc.o"
  "CMakeFiles/election_property_test.dir/snapshot/election_property_test.cc.o.d"
  "election_property_test"
  "election_property_test.pdb"
  "election_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
