// Acceptance bar for the tracing hot path: with no tracer attached and
// with a tracer attached at sampling 0, the simulator's message path must
// allocate EXACTLY the same — zero tracer-attributable heap allocations.
// Enforced by replacing the global allocator with a counting one and
// running the identical workload under both setups.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/tracer.h"
#include "sim/simulator.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapq {
namespace {

Simulator MakeSim() {
  SimConfig config;
  config.seed = 11;
  return Simulator({{0, 0}, {1, 0}, {2, 0}}, {1.5, 1.5, 1.5}, config);
}

Message DataMsg() {
  Message m;
  m.type = MessageType::kData;
  m.from = 0;
  m.to = kBroadcastId;
  m.value = 1.0;
  return m;
}

/// The measured workload: direct sends, scheduled sends (exercises the
/// ScheduleAt wrap decision), and handler-driven replies.
uint64_t CountWorkloadAllocations(Simulator& sim) {
  for (NodeId i = 0; i < 3; ++i) {
    sim.SetHandler(i, [](const Message&, bool) {});
  }
  const Message m = DataMsg();
  // Warm up vectors and the event queue so steady-state growth does not
  // differ between runs.
  for (int i = 0; i < 16; ++i) {
    sim.Send(m);
    sim.RunAll();
  }
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) {
    sim.Send(m);
    sim.ScheduleAfter(1, [&sim, m] { sim.Send(m); });
    sim.RunAll();
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(TraceAllocTest, SamplingZeroAddsNoHeapAllocationsToMessagePath) {
  Simulator plain = MakeSim();
  const uint64_t without_tracer = CountWorkloadAllocations(plain);

  Simulator traced = MakeSim();
  obs::TracerConfig config;
  config.sampling = 0.0;
  obs::Tracer tracer(config);
  traced.SetTracer(&tracer);
  const uint64_t with_disabled_tracer = CountWorkloadAllocations(traced);

  EXPECT_GT(without_tracer, 0u);  // the harness must measure something
  EXPECT_EQ(with_disabled_tracer, without_tracer);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TraceAllocTest, SampledTracingDoesAllocate) {
  // Sanity check that the counting harness sees tracer work when it is
  // actually on: a traced root makes the same workload allocate more.
  Simulator traced = MakeSim();
  obs::TracerConfig config;
  config.sampling = 1.0;
  obs::Tracer tracer(config);
  traced.SetTracer(&tracer);

  Simulator plain = MakeSim();
  const uint64_t without_tracer = CountWorkloadAllocations(plain);

  const TraceContext root = traced.MintTraceRoot(
      obs::TraceRootKind::kQuery, kInvalidNode);
  ASSERT_TRUE(root.sampled());
  Simulator::TraceScope scope(traced, root);
  const uint64_t with_tracing = CountWorkloadAllocations(traced);
  EXPECT_GT(with_tracing, without_tracer);
  EXPECT_FALSE(tracer.spans().empty());
}

}  // namespace
}  // namespace snapq
