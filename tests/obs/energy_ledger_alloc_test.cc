// Acceptance bar for the energy ledger's memory discipline (same global
// new/delete harness as timeseries_alloc_test): every Record* call and
// UpdateGauges must be allocation-free once constructed (cells, series
// and gauge handles are preallocated), and the simulator's charge sites
// must stay allocation-free in steady state BOTH without a ledger (the
// single null-pointer branch) and with one attached.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/energy.h"
#include "obs/energy_ledger.h"
#include "obs/metric_registry.h"
#include "sim/simulator.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapq {
namespace {

uint64_t Allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

constexpr int kIterations = 10000;

TEST(EnergyLedgerAllocTest, RecordAndUpdateGaugesNeverAllocate) {
  obs::MetricRegistry registry;
  EnergyModel model;
  model.initial_battery = 1e9;  // no deaths during the loop
  obs::EnergyLedger ledger(model, 100, &registry);

  ledger.UpdateGauges(0);  // warm-up (lazy libc machinery, if any)
  const uint64_t before = Allocations();
  for (Time t = 1; t <= kIterations; ++t) {
    const NodeId node = static_cast<NodeId>(t % 100);
    ledger.RecordMessage(node, MessageType::kHeartbeat,
                         obs::EnergyDirection::kTx, 1.0, /*root_slot=*/2);
    ledger.RecordMessage(node, MessageType::kData, obs::EnergyDirection::kRx,
                         0.25);
    ledger.RecordCacheOp(node, 0.1);
    ledger.RecordDirect(node, 0.5);
    ledger.UpdateGauges(t);
  }
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_GT(ledger.total_drained(), 0.0);
}

/// Steady-state charge-site loop shared by the with/without-ledger cases:
/// a broadcast (tx + rx charges), a cache op and a direct drain per tick.
uint64_t RunChargeSites(Simulator& sim) {
  Message msg;
  msg.type = MessageType::kData;
  msg.from = 0;
  msg.to = kBroadcastId;
  // Warm-up: fills the delivery pool and any lazy queue capacity.
  for (int i = 0; i < kIterations; ++i) {
    sim.Send(msg);
    sim.ChargeCacheOp(1);
    sim.Drain(1, 0.01);
    sim.RunAll();
  }
  const uint64_t before = Allocations();
  for (int i = 0; i < kIterations; ++i) {
    sim.Send(msg);
    sim.ChargeCacheOp(1);
    sim.Drain(1, 0.01);
    sim.RunAll();
  }
  return Allocations() - before;
}

TEST(EnergyLedgerAllocTest, ChargeSitesAreAllocationFreeWithoutALedger) {
  SimConfig config;
  config.energy.initial_battery = 1e9;
  Simulator sim({{0, 0}, {1, 0}}, {2.0, 2.0}, config);
  EXPECT_EQ(RunChargeSites(sim), 0u);
  EXPECT_EQ(sim.energy_ledger(), nullptr);
}

TEST(EnergyLedgerAllocTest, ChargeSitesAreAllocationFreeWithALedger) {
  SimConfig config;
  config.energy.initial_battery = 1e9;
  Simulator sim({{0, 0}, {1, 0}}, {2.0, 2.0}, config);
  obs::EnergyLedger ledger(config.energy, sim.num_nodes(), &sim.registry());
  sim.SetEnergyLedger(&ledger);
  EXPECT_EQ(RunChargeSites(sim), 0u);
  EXPECT_GT(ledger.total_drained(), 0.0);
  EXPECT_GT(ledger.CauseJoules(obs::EnergyCause::kData), 0.0);
  EXPECT_GT(ledger.CauseJoules(obs::EnergyCause::kCache), 0.0);
}

}  // namespace
}  // namespace snapq
