// Protocol message taxonomy. One struct covers all message kinds; the
// payload fields used depend on the type (documented per enumerator). This
// mirrors how a real TinyOS packet would carry a small fixed header plus a
// type-specific payload.
#ifndef SNAPQ_NET_MESSAGE_H_
#define SNAPQ_NET_MESSAGE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "net/node_id.h"
#include "net/trace_context.h"

namespace snapq {

/// All message kinds exchanged by the snapshot protocol and the query layer.
enum class MessageType {
  /// Election/maintenance: "I am looking for representatives"; `value` is
  /// the sender's current measurement, `epoch` its election epoch.
  kInvitation,
  /// Election: `ids` is the sender's Cand_nodes list (nodes it can
  /// represent); `aux` is the number of nodes it already represents (used
  /// by maintenance-time scoring, zero during initial discovery).
  kCandList,
  /// Election: sender accepts addressee as its representative.
  kAccept,
  /// Refinement Rule-2: sender tells addressee to stop representing it.
  kRecall,
  /// Refinement Rule-3: sender asks addressee to stay ACTIVE.
  kStayActive,
  /// Representative acknowledgment: `ids` lists all nodes the sender
  /// currently represents (single broadcast replacing per-node acks).
  kRepAck,
  /// Maintenance: passive node reports `value` (its current measurement) to
  /// its representative.
  kHeartbeat,
  /// Maintenance: representative answers a heartbeat with its estimate in
  /// `value`.
  kHeartbeatReply,
  /// Maintenance: a low-energy representative resigns; `ids` lists the
  /// nodes it releases.
  kResign,
  /// A measurement announcement / query response carrying `value`;
  /// snoopable by neighbors for model building.
  kData,
  /// Query layer: request propagated down the routing tree.
  kQueryRequest,
  /// Query layer: (partial) result propagated up the routing tree.
  kQueryReply,
  /// Sentinel — keep last, never sent. Sizes the per-type arrays (metric
  /// counters, loss injection) so adding a message type above cannot
  /// silently truncate them.
  kMessageTypeCount,
};

/// Number of real message types (the sentinel itself excluded).
inline constexpr size_t kNumMessageTypes =
    static_cast<size_t>(MessageType::kMessageTypeCount);

/// Stable name for logging/traces.
const char* MessageTypeName(MessageType type);

/// A radio message. Physically every transmission is a broadcast; `to`
/// narrows the intended recipient (other nodes in range may still snoop).
struct Message {
  MessageType type = MessageType::kData;
  NodeId from = kInvalidNode;
  NodeId to = kBroadcastId;
  /// Election epoch, used to detect spurious (stale) representatives; the
  /// paper suggests time-stamps or a continuous query's epoch-id (§3).
  int64_t epoch = 0;
  double value = 0.0;
  double aux = 0.0;
  std::vector<NodeId> ids;
  /// Parallel to `ids` where present (e.g. kRepAck carries the election
  /// epoch of each represented node for stale-representative cleanup).
  std::vector<int64_t> epochs;
  /// Parallel to `ids` where present (kHeartbeatReply: a representative
  /// answers all of a round's heartbeats with one broadcast carrying each
  /// member's estimate — the same batching §5 applies to acknowledgments).
  std::vector<double> values;
  /// Causal context. Senders normally leave this default-initialized: the
  /// simulator stamps each delivered copy with the message's span so
  /// handlers inherit the sender's trace. Not counted in SizeBytes() —
  /// real deployments ship trace ids only when sampling, and the paper's
  /// byte accounting predates tracing.
  TraceContext trace;

  /// Approximate wire size, for byte-level accounting: a TinyOS-style 7-byte
  /// header + payload (4-byte floats per the paper's cache accounting,
  /// 2-byte node ids).
  size_t SizeBytes() const;

  std::string ToString() const;
};

}  // namespace snapq

#endif  // SNAPQ_NET_MESSAGE_H_
