file(REMOVE_RECURSE
  "libsnapq_api.a"
)
