#include "common/inline_function.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace snapq {
namespace {

using Fn32 = InlineFunction<32>;

TEST(InlineFunctionTest, DefaultConstructedIsEmpty) {
  Fn32 f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());  // nothing on the heap
}

TEST(InlineFunctionTest, SmallCaptureStoresInline) {
  int hits = 0;
  Fn32 f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, CaptureAtExactCapacityStaysInline) {
  struct Exact {
    std::array<char, 32> payload{};
    void operator()() { payload[0] = 1; }
  };
  static_assert(sizeof(Exact) == 32);
  Fn32 f = Exact{};
  EXPECT_TRUE(f.is_inline());
  f();
}

TEST(InlineFunctionTest, LargeCaptureFallsBackToHeap) {
  std::array<char, 64> big{};
  big[0] = 7;
  int result = 0;
  Fn32 f = [big, &result] { result = big[0]; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_EQ(result, 7);
}

TEST(InlineFunctionTest, ThrowingMoveCtorForcesHeapStorage) {
  // Inline storage requires nothrow relocation (heap sifting moves
  // events); a callable whose move can throw must go to the heap even
  // though it fits the buffer.
  struct ThrowyMove {
    ThrowyMove() = default;
    ThrowyMove(ThrowyMove&&) noexcept(false) {}
    void operator()() {}
  };
  static_assert(sizeof(ThrowyMove) <= 32);
  Fn32 f = ThrowyMove{};
  EXPECT_FALSE(f.is_inline());
  f();
}

TEST(InlineFunctionTest, MoveConstructTransfersAndEmptiesSource) {
  int hits = 0;
  Fn32 a = [&hits] { ++hits; };
  Fn32 b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunctionTest, MoveAssignDestroysPreviousTarget) {
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> watch = tracked;
  Fn32 target = [tracked] {};
  tracked.reset();
  EXPECT_FALSE(watch.expired());  // alive inside `target`

  int hits = 0;
  target = Fn32([&hits] { ++hits; });
  EXPECT_TRUE(watch.expired());  // old capture destroyed by assignment
  target();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunctionTest, DestructorReleasesInlineCapture) {
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> watch = tracked;
  {
    Fn32 f = [tracked] {};
    EXPECT_TRUE(f.is_inline());
    tracked.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, DestructorReleasesHeapCapture) {
  auto tracked = std::make_shared<int>(0);
  std::weak_ptr<int> watch = tracked;
  {
    std::array<char, 64> pad{};
    Fn32 f = [tracked, pad] { (void)pad; };
    EXPECT_FALSE(f.is_inline());
    tracked.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, MovedFromCanBeReassignedAndInvoked) {
  int hits = 0;
  Fn32 a = [&hits] { ++hits; };
  Fn32 b = std::move(a);
  a = [&hits] { hits += 10; };  // NOLINT(bugprone-use-after-move)
  a();
  b();
  EXPECT_EQ(hits, 11);
}

TEST(InlineFunctionTest, HeapCallableSurvivesMove) {
  std::array<char, 64> big{};
  big[1] = 42;
  int result = 0;
  Fn32 a = [big, &result] { result = big[1]; };
  Fn32 b = std::move(a);
  EXPECT_FALSE(b.is_inline());
  b();
  EXPECT_EQ(result, 42);
}

}  // namespace
}  // namespace snapq
