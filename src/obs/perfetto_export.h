// Chrome trace-event JSON export of a Tracer's spans, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Layout: one process ("snapq"),
// one thread track per node (tid = node + 1) plus a "protocol" track
// (tid 0) for node-less root/phase spans. Each span becomes an "X"
// duration event; each message delivery becomes an "s"/"f" flow-event pair
// drawing an arrow from the sender's transmission to the receiver; losses
// become instant events on the would-be receiver's track. Sim ticks are
// rendered as milliseconds (ts is microseconds, scaled ×1000).
#ifndef SNAPQ_OBS_PERFETTO_EXPORT_H_
#define SNAPQ_OBS_PERFETTO_EXPORT_H_

#include <string>

#include "obs/tracer.h"

namespace snapq::obs {

/// Serializes all recorded spans as a Chrome trace-event JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}). One event per line,
/// so the output is also greppable.
std::string ExportChromeTrace(const Tracer& tracer);

/// Writes ExportChromeTrace(tracer) to `path`. Returns false on I/O error.
bool WriteChromeTraceFile(const Tracer& tracer, const std::string& path);

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_PERFETTO_EXPORT_H_
