// SnapshotHealthMonitor's rate derivation, including the warm-restart
// regression: a cumulative counter that goes backwards between samples
// must clamp the rate to 0, not underflow the unsigned subtraction.
#include "obs/health_monitor.h"

#include <gtest/gtest.h>

#include "obs/metric_registry.h"

namespace snapq::obs {
namespace {

HealthSample Sample(uint64_t violations, uint64_t reelections) {
  HealthSample s;
  s.num_nodes = 10;
  s.num_live = 10;
  s.num_active = 3;
  s.num_passive = 7;
  s.violations = violations;
  s.reelections = reelections;
  return s;
}

TEST(HealthMonitorTest, DerivesPerEpochRatesFromCumulativeCounts) {
  MetricRegistry registry;
  SnapshotHealthMonitor monitor(&registry);
  monitor.Observe(Sample(5, 2), 10);
  // First sample: the cumulative counts are the first epoch's rates.
  EXPECT_DOUBLE_EQ(monitor.violation_rate(), 5.0);
  EXPECT_DOUBLE_EQ(monitor.reelection_rate(), 2.0);
  monitor.Observe(Sample(9, 2), 20);
  EXPECT_DOUBLE_EQ(monitor.violation_rate(), 4.0);
  EXPECT_DOUBLE_EQ(monitor.reelection_rate(), 0.0);
  EXPECT_DOUBLE_EQ(monitor.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.violation_rate")->value(), 4.0);
}

TEST(HealthMonitorTest, CounterResetClampsRatesToZero) {
  MetricRegistry registry;
  SnapshotHealthMonitor monitor(&registry);
  monitor.Observe(Sample(100, 50), 10);
  // Warm restart: cumulative counts reset below the previous sample. The
  // unsigned difference would be ~2^64; the rate must clamp to 0 instead.
  monitor.Observe(Sample(3, 1), 20);
  EXPECT_DOUBLE_EQ(monitor.violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(monitor.reelection_rate(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.violation_rate")->value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.reelection_rate")->value(), 0.0);
  // The next interval differences against the reset baseline normally.
  monitor.Observe(Sample(10, 4), 30);
  EXPECT_DOUBLE_EQ(monitor.violation_rate(), 7.0);
  EXPECT_DOUBLE_EQ(monitor.reelection_rate(), 3.0);
}

}  // namespace
}  // namespace snapq::obs
