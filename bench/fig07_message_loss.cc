// Figure 7: number of representatives vs message-loss probability P_loss,
// at K = 1 (otherwise the Fig 6 setup). Loss hits both model training and
// every protocol message of the discovery phase.
//
// Paper shape: a handful of representatives up to moderate loss (4 at 30%
// in the paper), growing as loss climbs, collapsing toward N when most
// invitations are lost (~95%).
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"

SNAPQ_BENCHMARK(fig07_message_loss,
                "Figure 7: representatives vs message loss (K=1)") {
  using namespace snapq;
  bench::Driver driver(ctx, "Figure 7: representatives vs message loss (K=1)",
                       "N=100, range=sqrt(2), cache=2048B, T=1, sse, K=1");

  TablePrinter table({"P_loss", "representatives (n1)", "min", "max"});
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                      0.95}) {
    const RunningStats reps = MeanOverSeeds(
        static_cast<size_t>(ctx.repetitions), bench::kBaseSeed,
        [&](uint64_t seed) {
          SensitivityConfig config;
          config.num_classes = 1;
          config.loss_probability = loss;
          config.seed = seed;
          return static_cast<double>(
              RunSensitivityTrial(config).stats.num_active);
        },
        ctx.jobs);
    table.AddRow({TablePrinter::Num(loss, 2),
                  TablePrinter::Num(reps.mean(), 1),
                  TablePrinter::Num(reps.min(), 0),
                  TablePrinter::Num(reps.max(), 0)});
  }
  table.Print(std::cout);
}
