file(REMOVE_RECURSE
  "../bench/ablation_retries"
  "../bench/ablation_retries.pdb"
  "CMakeFiles/ablation_retries.dir/ablation_retries.cc.o"
  "CMakeFiles/ablation_retries.dir/ablation_retries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
