// Tunables of the snapshot protocol (election + maintenance).
#ifndef SNAPQ_SNAPSHOT_CONFIG_H_
#define SNAPQ_SNAPSHOT_CONFIG_H_

#include "model/cache_manager.h"
#include "model/error_metric.h"
#include "net/node_id.h"

namespace snapq {

/// Configuration shared by every node's protocol agent.
struct SnapshotConfig {
  /// The representation threshold T: N_i can represent N_j iff
  /// d(x_j, x̂_j) <= T.
  double threshold = 1.0;
  /// The application's error metric d() (the paper's experiments use sse).
  ErrorMetric metric = ErrorMetric::SumSquared();
  /// Sizing/policy of the per-node observation cache.
  CacheConfig cache;

  /// Refinement rounds a node waits before Rule-4 kicks in (the paper's
  /// MAX_WAIT, unspecified there). Measured in time units after the
  /// refinement phase starts. Only undecided nodes keep refining, so a
  /// generous window costs nothing under reliable communication but lets
  /// StayActive/ack retries converge under heavy message loss (Fig 7's
  /// robustness claim).
  Time max_wait = 40;
  /// Rule-4: an expired node stays UNDEFINED for another round with this
  /// probability (avoids synchronized ACTIVE stampedes).
  double p_wait = 0.5;
  /// Absolute bound on refinement length: after this many additional time
  /// units past max_wait, an UNDEFINED node deterministically goes ACTIVE.
  /// (Guarantees termination even under adversarial coin flips.)
  Time rule4_hard_cap = 24;
  /// Rule-3 retry: a node awaiting its representative's acknowledgment
  /// re-sends StayActive after this many time units (lost messages are
  /// retried "in the next iteration", §5). Acknowledgments are answered
  /// within the same time unit, so under reliable communication no retry
  /// ever fires and the Table-2 message bound holds.
  Time stay_active_resend = 1;

  /// Maintenance: heartbeat reply wait before counting a miss.
  Time heartbeat_timeout = 2;
  /// Consecutive missed heartbeat replies before the representative is
  /// declared failed and a local re-election starts. One lost round trip
  /// must not tear down a healthy representation on a lossy channel.
  int heartbeat_miss_limit = 3;
  /// A representative resigns when its battery falls below this fraction of
  /// the initial capacity (0 disables resignation).
  double resign_battery_fraction = 0.0;

  /// LEACH-style rotation (§5.1, citing [8]): a representative serves at
  /// most this many maintenance rounds, then steps down and sits out
  /// `rotation_cooldown` rounds before offering candidacy again, so the
  /// representative role (and its energy cost) rotates through the
  /// neighborhood. 0 disables rotation.
  int rotation_rounds = 0;
  int rotation_cooldown = 2;
};

}  // namespace snapq

#endif  // SNAPQ_SNAPSHOT_CONFIG_H_
