// The paper's standard experimental procedure (§6.1/§6.3), factored out so
// every bench driver runs exactly the same pipeline:
//
//   1. place N nodes uniformly in the unit square;
//   2. generate data — a K-class random walk (§6.1) or weather windows
//      (§6.3) — and feed it for `discovery_time` ticks;
//   3. during the first `train_ticks` ticks run a select-all query so every
//      node broadcasts its value and neighbors build models;
//   4. stay silent, then run representative discovery at `discovery_time`;
//   5. repeat over 10 seeds and average.
#ifndef SNAPQ_API_EXPERIMENT_H_
#define SNAPQ_API_EXPERIMENT_H_

#include <cmath>
#include <functional>
#include <memory>

#include "api/network.h"
#include "common/stats.h"
#include "data/random_walk.h"
#include "data/weather.h"

namespace snapq {

/// Workload selector.
enum class WorkloadKind {
  kRandomWalk,  ///< §6.1 synthetic K-class random walk
  kWeather,     ///< §6.3 wind-speed windows (synthetic substitute)
};

/// Parameters of one trial; defaults are the paper's first experiment.
struct SensitivityConfig {
  size_t num_nodes = 100;
  size_t num_classes = 10;  ///< K (random-walk workload only)
  double threshold = 1.0;   ///< T
  size_t cache_bytes = 2048;
  double transmission_range = std::sqrt(2.0);
  double loss_probability = 0.0;
  CachePolicy cache_policy = CachePolicy::kModelAware;
  PenaltyCurrency cache_penalty = PenaltyCurrency::kTotalBenefit;
  Time train_ticks = 10;
  Time discovery_time = 100;
  WorkloadKind workload = WorkloadKind::kRandomWalk;
  uint64_t seed = 1;
  /// When > 0, BuildSensitivityNetwork enables causal tracing with this
  /// sampling rate (bench drivers use it on their final repetition to
  /// write a `.trace.json` sidecar).
  double trace_sampling = 0.0;
};

/// A finished trial: the election stats plus the still-live network (for
/// follow-up queries, sse evaluation etc.).
struct SensitivityOutcome {
  ElectionStats stats;
  /// Traffic of the election phase alone (training broadcasts excluded):
  /// the Metrics delta between the discovery instant and quiescence.
  MetricsSnapshot election_traffic;
  std::unique_ptr<SensorNetwork> network;
};

/// Builds the network + dataset for `config` without running anything.
/// The dataset is attached and training broadcasts are scheduled.
std::unique_ptr<SensorNetwork> BuildSensitivityNetwork(
    const SensitivityConfig& config);

/// Runs the full §6.1 pipeline: build, train, silence, discover.
SensitivityOutcome RunSensitivityTrial(const SensitivityConfig& config);

/// Average sse of the representatives' estimates over all currently
/// represented nodes (Fig 12's metric). Zero when nothing is represented.
double AverageRepresentationSse(const SensorNetwork& network);

/// Runs `fn(seed)` for seeds base_seed .. base_seed+repeats-1 and returns
/// summary stats of the returned values (the paper averages 10 runs).
/// With jobs > 1 the seeds run concurrently on a thread pool
/// (exec::ParallelMap) — results and metric merges are reduced in seed
/// order, so any jobs value produces bit-identical stats to jobs == 1.
RunningStats MeanOverSeeds(size_t repeats, uint64_t base_seed,
                           const std::function<double(uint64_t)>& fn,
                           int jobs = 1);

}  // namespace snapq

#endif  // SNAPQ_API_EXPERIMENT_H_
