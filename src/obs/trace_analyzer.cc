#include "obs/trace_analyzer.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace snapq::obs {
namespace {

/// Longest root-to-leaf chain (in edges) of the trace's span tree.
size_t TreeDepth(const std::vector<const TraceSpan*>& spans) {
  std::unordered_map<uint64_t, const TraceSpan*> by_id;
  by_id.reserve(spans.size());
  for (const TraceSpan* s : spans) by_id[s->span_id] = s;
  std::unordered_map<uint64_t, size_t> memo;
  size_t max_depth = 0;
  for (const TraceSpan* s : spans) {
    // Walk up to the nearest memoized ancestor (or the root), then unwind.
    std::vector<uint64_t> chain;
    const TraceSpan* cur = s;
    size_t base = 0;
    while (cur != nullptr) {
      const auto it = memo.find(cur->span_id);
      if (it != memo.end()) {
        // The memoized ancestor is not in `chain`, so the first unwound
        // span sits one level below it.
        base = it->second + 1;
        break;
      }
      chain.push_back(cur->span_id);
      if (cur->parent_span_id == 0) break;
      const auto pit = by_id.find(cur->parent_span_id);
      cur = pit == by_id.end() ? nullptr : pit->second;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      memo[*it] = base;
      ++base;
    }
    if (base > 0) max_depth = std::max(max_depth, base - 1);
  }
  return max_depth;
}

}  // namespace

bool TraceReport::AllPass() const {
  for (const InvariantVerdict& v : verdicts) {
    if (!v.pass) return false;
  }
  return true;
}

std::string TraceReport::ToString() const {
  std::string out = StrFormat(
      "trace %llu (%s", static_cast<unsigned long long>(trace_id),
      TraceRootKindName(root_kind));
  if (root_node != kInvalidNode) out += StrFormat(" @node %u", root_node);
  out += StrFormat(
      ") t=[%lld,%lld] dur=%lld spans=%zu messages=%zu depth=%zu\n",
      static_cast<long long>(sim_start), static_cast<long long>(sim_end),
      static_cast<long long>(sim_duration()), num_spans, num_messages,
      max_depth);
  if (link_trace_id != 0) {
    out += StrFormat("  caused by trace %llu span %llu\n",
                     static_cast<unsigned long long>(link_trace_id),
                     static_cast<unsigned long long>(link_span_id));
  }
  if (num_messages > 0) {
    out += "  messages:";
    for (size_t i = 0; i < kNumMessageTypes; ++i) {
      if (messages_by_type[i] == 0) continue;
      out += StrFormat(
          " %s=%llu", MessageTypeName(static_cast<MessageType>(i)),
          static_cast<unsigned long long>(messages_by_type[i]));
    }
    out += '\n';
    out += StrFormat(
        "  radio: deliveries=%zu snoops=%zu losses=%zu; busiest node %u "
        "sent %llu\n",
        deliveries, snoops, losses, busiest_node,
        static_cast<unsigned long long>(max_messages_per_node));
  }
  for (const InvariantVerdict& v : verdicts) {
    out += StrFormat("  [%s] %s: %s\n", v.pass ? "PASS" : "FAIL",
                     v.invariant.c_str(), v.detail.c_str());
  }
  return out;
}

std::optional<TraceReport> TraceAnalyzer::Analyze(uint64_t trace_id) const {
  const std::vector<const TraceSpan*> spans = tracer_->SpansOfTrace(trace_id);
  if (spans.empty()) return std::nullopt;

  TraceReport report;
  report.trace_id = trace_id;
  report.sim_start = spans.front()->start;
  report.sim_end = spans.front()->end;
  const TraceSpan* root = nullptr;
  bool model_updated = false;
  uint64_t passive_responders = 0;
  uint64_t responders = 0;
  for (const TraceSpan* s : spans) {
    ++report.num_spans;
    report.sim_start = std::min(report.sim_start, s->start);
    report.sim_end = std::max(report.sim_end, s->end);
    switch (s->kind) {
      case TraceSpanKind::kRoot:
        root = s;
        break;
      case TraceSpanKind::kMessage: {
        ++report.num_messages;
        ++report.messages_by_type[static_cast<size_t>(s->msg_type)];
        ++report.messages_by_node[s->node];
        for (const TraceDelivery& d : s->deliveries) {
          switch (d.outcome) {
            case RadioEventKind::kDeliver:
              ++report.deliveries;
              break;
            case RadioEventKind::kSnoop:
              ++report.snoops;
              break;
            case RadioEventKind::kLoss:
              ++report.losses;
              break;
            case RadioEventKind::kSend:
              break;  // not a receiver-side outcome
          }
        }
        break;
      }
      case TraceSpanKind::kInstant:
        if (s->name == "query.respond") {
          ++responders;
          if (s->value != 0) ++passive_responders;
        } else if (s->name == "model.update") {
          model_updated = true;
        }
        break;
      case TraceSpanKind::kPhase:
        break;
    }
  }
  for (const auto& [node, count] : report.messages_by_node) {
    if (count > report.max_messages_per_node) {
      report.max_messages_per_node = count;
      report.busiest_node = node;
    }
  }
  report.max_depth = TreeDepth(spans);
  if (root != nullptr) {
    report.root_kind = root->root_kind;
    report.root_node = root->node;
    report.link_trace_id = root->link_trace_id;
    report.link_span_id = root->link_span_id;
  }

  // Invariant verdicts (only the checks that apply to this root kind).
  if (root != nullptr) {
    switch (root->root_kind) {
      case TraceRootKind::kElection:
      case TraceRootKind::kReelection: {
        InvariantVerdict v;
        v.invariant = "election.message_bound";
        v.pass = report.max_messages_per_node <= kElectionMessageBound;
        v.detail = StrFormat(
            "max %llu msgs/node (node %u), bound %llu",
            static_cast<unsigned long long>(report.max_messages_per_node),
            report.busiest_node,
            static_cast<unsigned long long>(kElectionMessageBound));
        report.verdicts.push_back(std::move(v));
        break;
      }
      case TraceRootKind::kQuery: {
        if (root->value != 0) {  // USE SNAPSHOT
          InvariantVerdict v;
          v.invariant = "query.snapshot_responders";
          v.pass = passive_responders == 0;
          v.detail = StrFormat(
              "%llu of %llu responders were passive",
              static_cast<unsigned long long>(passive_responders),
              static_cast<unsigned long long>(responders));
          report.verdicts.push_back(std::move(v));
        }
        break;
      }
      case TraceRootKind::kViolation: {
        InvariantVerdict v;
        v.invariant = "violation.termination";
        const uint64_t invitations = report.messages_by_type[static_cast<
            size_t>(MessageType::kInvitation)];
        v.pass = model_updated || invitations > 0;
        v.detail = StrFormat(
            "%s%llu re-election invitation(s)",
            model_updated ? "model updated; " : "",
            static_cast<unsigned long long>(invitations));
        report.verdicts.push_back(std::move(v));
        break;
      }
      case TraceRootKind::kHeartbeatRound:
        break;  // no standalone invariant; feeds the health monitor
    }
  }
  return report;
}

std::vector<TraceReport> TraceAnalyzer::AnalyzeAll() const {
  std::vector<TraceReport> reports;
  for (uint64_t id : tracer_->TraceIds()) {
    if (auto report = Analyze(id)) reports.push_back(std::move(*report));
  }
  return reports;
}

std::vector<const TraceSpan*> TraceAnalyzer::FindOrphans() const {
  std::vector<const TraceSpan*> orphans;
  for (const TraceSpan& span : tracer_->spans()) {
    if (span.parent_span_id == 0) continue;  // root
    if (tracer_->FindSpan(span.parent_span_id) == nullptr) {
      orphans.push_back(&span);
    }
  }
  return orphans;
}

}  // namespace snapq::obs
