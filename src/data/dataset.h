// Dataset: the mapping from node id to measurement series that feeds a
// simulation, plus CSV import/export so real traces (e.g. actual weather
// station data) can be substituted for the synthetic generators.
#ifndef SNAPQ_DATA_DATASET_H_
#define SNAPQ_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/timeseries.h"

namespace snapq {

/// A fixed-horizon dataset: `num_nodes` series of equal length.
class Dataset {
 public:
  Dataset() = default;

  /// Builds from per-node series. All series must have the same length.
  static Result<Dataset> Create(std::vector<TimeSeries> series);

  size_t num_nodes() const { return series_.size(); }
  size_t horizon() const {
    return series_.empty() ? 0 : series_.front().size();
  }

  /// Measurement of node `node` at time `t`.
  double Value(size_t node, size_t t) const {
    SNAPQ_DCHECK(node < series_.size());
    return series_[node].at(t);
  }

  const TimeSeries& Series(size_t node) const {
    SNAPQ_DCHECK(node < series_.size());
    return series_[node];
  }

  /// Writes as CSV: one row per time unit, one column per node, with a
  /// header "node0,node1,...".
  Status WriteCsv(const std::string& path) const;

  /// Reads the CSV format produced by WriteCsv (header optional: a first
  /// row that fails numeric parsing is treated as a header).
  static Result<Dataset> ReadCsv(const std::string& path);

 private:
  explicit Dataset(std::vector<TimeSeries> series)
      : series_(std::move(series)) {}
  std::vector<TimeSeries> series_;
};

}  // namespace snapq

#endif  // SNAPQ_DATA_DATASET_H_
