#include "data/weather.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace snapq {
namespace {

TEST(WeatherTest, SeriesLengthAndNonNegativity) {
  Rng rng(1);
  const TimeSeries s = GenerateStationSeries(WeatherConfig{}, 5000, rng);
  ASSERT_EQ(s.size(), 5000u);
  for (size_t t = 0; t < s.size(); ++t) {
    EXPECT_GE(s.at(t), 0.0);
  }
}

TEST(WeatherTest, CalibratedToPaperSummaryStats) {
  // §6.3 reports mean ~= 5.8 and average per-window variance ~= 2.8 over
  // 100 windows of 100 one-minute readings. The substitute matches the
  // mean and keeps per-window variance within an order of magnitude; the
  // representability structure (what Fig 11 actually exercises) takes
  // precedence over the marginal variance (see DESIGN.md §5).
  Rng rng(2);
  const auto windows = GenerateWeatherWindows(WeatherConfig{}, 100, 100, rng);
  ASSERT_EQ(windows.size(), 100u);
  RunningStats means, variances;
  for (const TimeSeries& w : windows) {
    const RunningStats s = w.Summarize();
    means.Add(s.mean());
    variances.Add(s.variance());
  }
  EXPECT_NEAR(means.mean(), 5.8, 1.5);
  EXPECT_GT(variances.mean(), 0.2);
  EXPECT_LT(variances.mean(), 8.0);
}

TEST(WeatherTest, WindowsAreNonOverlappingSlicesOfOneStation) {
  Rng rng(3);
  WeatherConfig cfg;
  const auto windows = GenerateWeatherWindows(cfg, 10, 50, rng);
  // Regenerate the station with an identically-seeded stream: the windows
  // must be a permutation of its consecutive slices.
  Rng rng2(3);
  const TimeSeries station = GenerateStationSeries(cfg, 500, rng2);
  for (const TimeSeries& w : windows) {
    bool found = false;
    for (size_t k = 0; k < 10 && !found; ++k) {
      bool match = true;
      for (size_t t = 0; t < 50; ++t) {
        if (w.at(t) != station.at(k * 50 + t)) {
          match = false;
          break;
        }
      }
      found = match;
    }
    EXPECT_TRUE(found);
  }
}

TEST(WeatherTest, WindowsAssignmentIsAPermutation) {
  Rng rng(4);
  const auto windows = GenerateWeatherWindows(WeatherConfig{}, 20, 10, rng);
  // All windows distinct (first elements differ with overwhelming
  // probability for a continuous-state process).
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i + 1; j < windows.size(); ++j) {
      EXPECT_NE(windows[i].at(0), windows[j].at(0));
    }
  }
}

TEST(WeatherTest, DiurnalCycleModulatesMean) {
  Rng rng(5);
  WeatherConfig cfg;
  cfg.diurnal_amplitude = 3.0;
  cfg.noise_sigma = 0.05;
  cfg.gust_probability = 0.0;
  cfg.reversion = 0.2;  // track the cycle closely
  const TimeSeries s = GenerateStationSeries(cfg, 2 * 1440, rng);
  // Mean around the daily peak (t ~ 360) should exceed the mean around the
  // trough (t ~ 1080).
  RunningStats peak, trough;
  for (size_t t = 300; t < 420; ++t) peak.Add(s.at(t));
  for (size_t t = 1020; t < 1140; ++t) trough.Add(s.at(t));
  EXPECT_GT(peak.mean(), trough.mean() + 2.0);
}

TEST(WeatherTest, GustsIncreaseMaxima) {
  WeatherConfig calm;
  calm.gust_probability = 0.0;
  WeatherConfig gusty;
  gusty.gust_probability = 0.02;
  Rng r1(6), r2(6);
  const TimeSeries a = GenerateStationSeries(calm, 3000, r1);
  const TimeSeries b = GenerateStationSeries(gusty, 3000, r2);
  EXPECT_GT(b.Summarize().max(), a.Summarize().max());
}

TEST(WeatherTest, Deterministic) {
  Rng r1(7), r2(7);
  const auto a = GenerateWeatherWindows(WeatherConfig{}, 5, 20, r1);
  const auto b = GenerateWeatherWindows(WeatherConfig{}, 5, 20, r2);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t t = 0; t < a[i].size(); ++t) {
      ASSERT_DOUBLE_EQ(a[i].at(t), b[i].at(t));
    }
  }
}

}  // namespace
}  // namespace snapq
