#include "query/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"
#include "obs/accuracy.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "query/aggregation.h"
#include "query/parser.h"
#include "query/predicate.h"

namespace snapq {
namespace {

/// Later election epoch wins; self-reports carry +inf epoch; ties break
/// toward the larger reporter id (deterministic).
bool Supersedes(const QueryClaim& a, const QueryClaim& b) {
  if (a.epoch != b.epoch) return a.epoch > b.epoch;
  return a.reporter > b.reporter;
}

}  // namespace

QueryExecutor::QueryExecutor(
    Simulator* sim, std::vector<std::unique_ptr<SnapshotAgent>>* agents,
    Catalog catalog)
    : sim_(sim), agents_(agents), catalog_(std::move(catalog)) {
  SNAPQ_CHECK(sim != nullptr && agents != nullptr);
  SNAPQ_CHECK_EQ(sim->num_nodes(), agents->size());
}

Result<QueryResult> QueryExecutor::ExecuteSql(const std::string& sql,
                                              const ExecutionOptions& options) {
  Result<QuerySpec> spec = ParseQuery(sql);
  if (!spec.ok()) return spec.status();
  return Execute(*spec, options);
}

Result<QueryResult> QueryExecutor::Execute(const QuerySpec& spec,
                                           const ExecutionOptions& options) {
  if (spec.explain != ExplainMode::kNone) {
    return Status::InvalidArgument(
        "EXPLAIN statements do not execute directly; run them through "
        "ExplainQuery/ExplainSql (api: SensorNetwork::Explain)");
  }
  SNAPQ_RETURN_IF_ERROR(ValidateColumns(spec, catalog_));
  const Rect everywhere{-1e300, -1e300, 1e300, 1e300};
  Result<Rect> region = ResolveRegion(spec, catalog_, everywhere);
  if (!region.ok()) return region.status();
  if (options.audit != nullptr && spec.snapshot_threshold.has_value() &&
      !options.audit_threshold.has_value()) {
    // Audited rounds must be judged against the query's effective T: carry
    // the per-query USE SNAPSHOT ERROR override down to ExecuteRegion.
    ExecutionOptions audited = options;
    audited.audit_threshold = spec.snapshot_threshold;
    return ExecuteRegion(*region, spec.use_snapshot, spec.TheAggregate(),
                         audited);
  }
  return ExecuteRegion(*region, spec.use_snapshot, spec.TheAggregate(),
                       options);
}

std::vector<NodeId> QueryExecutor::CollectResponders(const Rect& region,
                                                     bool use_snapshot) const {
  std::vector<NodeId> responders;
  const size_t n = agents_->size();
  for (NodeId i = 0; i < n; ++i) {
    if (!sim_->alive(i)) continue;
    const SnapshotAgent& agent = *(*agents_)[i];
    const bool in_region = region.Contains(sim_->links().position(i));
    if (!use_snapshot) {
      if (in_region) responders.push_back(i);
      continue;
    }
    // Snapshot rule (§3.1): respond when (i) not represented and matching,
    // or (ii) representing a matching node.
    if (in_region && agent.mode() != NodeMode::kPassive) {
      responders.push_back(i);
      continue;
    }
    for (const auto& [j, e] : agent.represents()) {
      if (region.Contains(sim_->links().position(j))) {
        responders.push_back(i);
        break;
      }
    }
  }
  return responders;
}

QueryResult QueryExecutor::ExecuteRegion(const Rect& region,
                                         bool use_snapshot,
                                         AggregateFunction aggregate,
                                         const ExecutionOptions& options) {
  const size_t n = agents_->size();
  SNAPQ_CHECK_LT(options.sink, n);
  obs::ProfCount(obs::HotOp::kQueriesExecuted);
  obs::ScopedPhaseTimer phase_timer(obs::ProfPhase::kQueryExecution);
  obs::Span span(&sim_->registry(), "query.execute");
  // Root cause: the injected query. `value` records the USE SNAPSHOT flag
  // so the analyzer knows which invariant applies.
  const TraceContext qroot = sim_->MintTraceRoot(
      obs::TraceRootKind::kQuery, options.sink, use_snapshot ? 1 : 0);
  span.AttachTrace(sim_->tracer(), qroot);
  span.BeginSim(sim_->now());
  Simulator::TraceScope trace_scope(*sim_, qroot);
  QueryResult result;

  // Coverage denominator: every placed node matching the predicate (dead
  // included — an infinite-battery network would have heard them all).
  std::vector<bool> matching(n, false);
  for (NodeId i = 0; i < n; ++i) {
    if (region.Contains(sim_->links().position(i))) {
      matching[i] = true;
      ++result.matching_nodes;
    }
  }

  std::vector<bool> alive(n, false);
  for (NodeId i = 0; i < n; ++i) {
    alive[i] = sim_->alive(i);
    if (use_snapshot && options.passive_nodes_sleep && i != options.sink &&
        (*agents_)[i]->mode() == NodeMode::kPassive) {
      alive[i] = false;  // sleeping: neither responds nor routes
    }
  }

  std::vector<bool> favor;
  const std::vector<bool>* favor_ptr = nullptr;
  if (options.favor_representatives) {
    favor.assign(n, false);
    for (NodeId i = 0; i < n; ++i) {
      favor[i] = (*agents_)[i]->mode() == NodeMode::kActive;
    }
    favor_ptr = &favor;
  }
  const RoutingTree tree =
      RoutingTree::Build(sim_->links(), alive, options.sink, favor_ptr);

  const std::vector<NodeId> responders =
      CollectResponders(region, use_snapshot);

  // Participants: responders that can reach the sink, plus the routers on
  // their paths (the paper counts routing nodes as participants).
  std::vector<bool> participates(n, false);
  std::vector<NodeId> reachable_responders;
  for (NodeId r : responders) {
    if (!tree.IsReachable(r)) continue;  // never hears the request
    reachable_responders.push_back(r);
    for (NodeId on_path : tree.PathToSink(r)) {
      participates[on_path] = true;
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    if (participates[i]) ++result.participants;
  }
  result.responders = reachable_responders.size();
  if (qroot.sampled()) {
    // One instant per responder; `value` flags a PASSIVE responder, which
    // breaks the snapshot invariant (representatives answer for members).
    for (NodeId r : reachable_responders) {
      const bool passive = (*agents_)[r]->mode() == NodeMode::kPassive;
      sim_->tracer()->RecordInstant(qroot, "query.respond", r, sim_->now(),
                                    passive ? 1 : 0);
    }
  }

  obs::MetricRegistry& reg = sim_->registry();
  reg.GetCounter("query.executions")->Inc();
  if (use_snapshot) reg.GetCounter("query.snapshot_executions")->Inc();
  const std::vector<double> node_buckets{0, 1, 2, 5, 10, 20, 50, 100, 200,
                                         500};
  reg.GetHistogram("query.participants", node_buckets)
      ->Observe(static_cast<double>(result.participants));
  reg.GetHistogram("query.responders", node_buckets)
      ->Observe(static_cast<double>(result.responders));

  // kQueryReply transmissions this round induces: one per participant, the
  // sink excluded (it hands the result to the base station radio-free).
  const size_t replies =
      result.participants - (participates[options.sink] ? 1u : 0u);

  if (options.charge_energy) {
    // One transmission per participant: its partial aggregate / row batch
    // sent one hop up the tree. Attributed per node in the registry so
    // Fig-10-style runs can split election vs maintenance vs query drain.
    const double tx = sim_->config().energy.tx_cost;
    for (NodeId i = 0; i < n; ++i) {
      if (!participates[i] || i == options.sink) continue;
      // DrainAs lands the joules in the energy ledger's kQueryReply/tx
      // cell, matching the CountSent attribution below.
      sim_->DrainAs(i, tx, MessageType::kQueryReply);
      sim_->metrics().CountSent(MessageType::kQueryReply);
      reg.GetCounter("query.energy.tx", i)->Inc();
    }
    reg.GetGauge("query.energy.drained")->Add(tx * static_cast<double>(replies));
  }

  // Collect measurements, deduplicating multiple claims per node by latest
  // election epoch (spurious-representative filtering, §3).
  std::map<NodeId, QueryClaim> claims;
  CollectClaims(use_snapshot, reachable_responders, matching, &claims);

  result.covered_nodes = claims.size();
  result.coverage =
      result.matching_nodes == 0
          ? 1.0
          : static_cast<double>(result.covered_nodes) /
                static_cast<double>(result.matching_nodes);

  if (options.audit != nullptr && use_snapshot) {
    // Shadow ground-truth audit: judge every estimated claim against the
    // represented node's true current reading under the deployment's error
    // metric and the query's effective T. The auditor's observe path is
    // allocation-free; a null hook costs the branch above and nothing else.
    obs::AccuracyAuditor& audit = *options.audit;
    const SnapshotConfig& snap_config = (*agents_)[0]->config();
    const double threshold =
        options.audit_threshold.value_or(snap_config.threshold);
    audit.BeginRound(obs::AuditSource::kQuery,
                     static_cast<int64_t>(options.sink), threshold,
                     sim_->now());
    for (const auto& [j, claim] : claims) {
      if (!claim.estimated) continue;
      const double truth = (*agents_)[j]->measurement();
      audit.ObserveEstimate(j, claim.reporter, claim.value - truth,
                            snap_config.metric.Distance(truth, claim.value));
    }
    audit.EndRound();
  }

  sim_->journal().Emit("query.plan", sim_->now(), [&](obs::JournalEvent& e) {
    size_t estimated = 0;
    double max_abs_error = 0.0;
    for (const auto& [j, claim] : claims) {
      if (!claim.estimated) continue;
      ++estimated;
      const double err =
          std::abs(claim.value - (*agents_)[j]->measurement());
      if (err > max_abs_error) max_abs_error = err;
    }
    e.Node(options.sink)
        .Bool("use_snapshot", use_snapshot)
        .Bool("passive_sleep", options.passive_nodes_sleep)
        .Int("matching", static_cast<int64_t>(result.matching_nodes))
        .Int("responders", static_cast<int64_t>(result.responders))
        .Int("participants", static_cast<int64_t>(result.participants))
        .Int("covered", static_cast<int64_t>(result.covered_nodes))
        .Int("estimated", static_cast<int64_t>(estimated))
        .Num("max_abs_error", max_abs_error);
  });

  // Answers.
  if (aggregate != AggregateFunction::kNone) {
    PartialAggregate agg(aggregate);
    for (const auto& [j, claim] : claims) agg.AddValue(claim.value);
    result.aggregate = agg.Finalize();
    PartialAggregate truth(aggregate);
    for (NodeId i = 0; i < n; ++i) {
      if (matching[i]) truth.AddValue((*agents_)[i]->measurement());
    }
    result.true_aggregate = truth.Finalize();
  } else {
    result.rows.reserve(claims.size());
    for (const auto& [j, claim] : claims) {
      QueryRow row{j, claim.reporter, claim.value, claim.estimated, {}};
      if (claim.estimated) {
        row.model_error = claim.value - (*agents_)[j]->measurement();
      }
      result.rows.push_back(std::move(row));
    }
  }

  if (options.provenance != nullptr) {
    QueryProvenance& prov = *options.provenance;
    prov.matching_nodes = result.matching_nodes;
    prov.responders = result.responders;
    prov.participants = result.participants;
    prov.reachable_nodes = tree.CountReachable();
    prov.messages = replies;
    prov.energy = options.charge_energy
                      ? sim_->config().energy.tx_cost *
                            static_cast<double>(replies)
                      : 0.0;
    prov.tree_depth = -1;
    for (NodeId r : reachable_responders) {
      prov.tree_depth = std::max(prov.tree_depth, tree.depth(r));
    }
    prov.claims = std::move(claims);
    prov.depth.assign(n, -1);
    for (NodeId i = 0; i < n; ++i) prov.depth[i] = tree.depth(i);
  }

  span.EndSim(sim_->now());
  return result;
}

void QueryExecutor::CollectClaims(bool use_snapshot,
                                  const std::vector<NodeId>& responders,
                                  const std::vector<bool>& matching,
                                  std::map<NodeId, QueryClaim>* claims) const {
  for (NodeId r : responders) {
    const SnapshotAgent& agent = *(*agents_)[r];
    if (matching[r] &&
        (!use_snapshot || agent.mode() != NodeMode::kPassive)) {
      const QueryClaim self{r, kQueryClaimSelfEpoch, agent.measurement(),
                            false};
      auto [it, inserted] = claims->try_emplace(r, self);
      if (!inserted && Supersedes(self, it->second)) it->second = self;
    }
    if (!use_snapshot) continue;
    for (const auto& [j, e] : agent.represents()) {
      if (!matching[j]) continue;
      const std::optional<double> estimate = agent.EstimateFor(j);
      if (!estimate.has_value()) continue;
      const QueryClaim claim{r, e, *estimate, true};
      auto [it, inserted] = claims->try_emplace(j, claim);
      if (!inserted && Supersedes(claim, it->second)) it->second = claim;
    }
  }
}

QueryProvenance QueryExecutor::PlanRegion(
    const Rect& region, bool use_snapshot,
    const ExecutionOptions& options) const {
  const size_t n = agents_->size();
  SNAPQ_CHECK_LT(options.sink, n);
  QueryProvenance plan;

  std::vector<bool> matching(n, false);
  for (NodeId i = 0; i < n; ++i) {
    if (region.Contains(sim_->links().position(i))) {
      matching[i] = true;
      ++plan.matching_nodes;
    }
  }

  // Mirror ExecuteRegion's participation model exactly: the estimate and
  // the actuals must only diverge when the snapshot state itself changes
  // between planning and execution.
  std::vector<bool> alive(n, false);
  for (NodeId i = 0; i < n; ++i) {
    alive[i] = sim_->alive(i);
    if (use_snapshot && options.passive_nodes_sleep && i != options.sink &&
        (*agents_)[i]->mode() == NodeMode::kPassive) {
      alive[i] = false;
    }
  }
  std::vector<bool> favor;
  const std::vector<bool>* favor_ptr = nullptr;
  if (options.favor_representatives) {
    favor.assign(n, false);
    for (NodeId i = 0; i < n; ++i) {
      favor[i] = (*agents_)[i]->mode() == NodeMode::kActive;
    }
    favor_ptr = &favor;
  }
  const RoutingTree tree =
      RoutingTree::Build(sim_->links(), alive, options.sink, favor_ptr);

  const std::vector<NodeId> responders =
      CollectResponders(region, use_snapshot);
  std::vector<bool> participates(n, false);
  std::vector<NodeId> reachable_responders;
  for (NodeId r : responders) {
    if (!tree.IsReachable(r)) continue;
    reachable_responders.push_back(r);
    plan.tree_depth = std::max(plan.tree_depth, tree.depth(r));
    for (NodeId on_path : tree.PathToSink(r)) {
      participates[on_path] = true;
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    if (participates[i]) ++plan.participants;
  }
  plan.responders = reachable_responders.size();
  plan.reachable_nodes = tree.CountReachable();
  plan.messages =
      plan.participants - (participates[options.sink] ? 1u : 0u);
  plan.energy = options.charge_energy
                    ? sim_->config().energy.tx_cost *
                          static_cast<double>(plan.messages)
                    : 0.0;

  CollectClaims(use_snapshot, reachable_responders, matching, &plan.claims);
  plan.depth.assign(n, -1);
  for (NodeId i = 0; i < n; ++i) plan.depth[i] = tree.depth(i);
  return plan;
}

}  // namespace snapq
