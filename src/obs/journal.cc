#include "obs/journal.h"

#include <cmath>

#include "common/string_util.h"
#include "obs/json.h"

namespace snapq::obs {

JournalEvent& JournalEvent::Int(std::string_view key, int64_t value) {
  Field f;
  f.key = std::string(key);
  f.kind = Field::Kind::kInt;
  f.i = value;
  fields_.push_back(std::move(f));
  return *this;
}

JournalEvent& JournalEvent::Num(std::string_view key, double value) {
  Field f;
  f.key = std::string(key);
  f.kind = Field::Kind::kNum;
  f.d = value;
  fields_.push_back(std::move(f));
  return *this;
}

JournalEvent& JournalEvent::Str(std::string_view key,
                                std::string_view value) {
  Field f;
  f.key = std::string(key);
  f.kind = Field::Kind::kStr;
  f.s = std::string(value);
  fields_.push_back(std::move(f));
  return *this;
}

JournalEvent& JournalEvent::Bool(std::string_view key, bool value) {
  Field f;
  f.key = std::string(key);
  f.kind = Field::Kind::kBool;
  f.b = value;
  fields_.push_back(std::move(f));
  return *this;
}

const JournalEvent::Field* JournalEvent::Find(std::string_view key) const {
  for (const Field& f : fields_) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

std::optional<int64_t> JournalEvent::GetInt(std::string_view key) const {
  const Field* f = Find(key);
  if (f == nullptr || f->kind != Field::Kind::kInt) return std::nullopt;
  return f->i;
}

std::optional<double> JournalEvent::GetNum(std::string_view key) const {
  const Field* f = Find(key);
  if (f == nullptr) return std::nullopt;
  if (f->kind == Field::Kind::kNum) return f->d;
  if (f->kind == Field::Kind::kInt) return static_cast<double>(f->i);
  return std::nullopt;
}

std::optional<std::string> JournalEvent::GetStr(std::string_view key) const {
  const Field* f = Find(key);
  if (f == nullptr || f->kind != Field::Kind::kStr) return std::nullopt;
  return f->s;
}

std::optional<bool> JournalEvent::GetBool(std::string_view key) const {
  const Field* f = Find(key);
  if (f == nullptr || f->kind != Field::Kind::kBool) return std::nullopt;
  return f->b;
}

std::vector<std::pair<std::string, std::string>> JournalEvent::Fields()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(fields_.size());
  for (const Field& f : fields_) {
    const char* type = "?";
    switch (f.kind) {
      case Field::Kind::kInt:
        type = "int";
        break;
      case Field::Kind::kNum:
        type = "num";
        break;
      case Field::Kind::kStr:
        type = "str";
        break;
      case Field::Kind::kBool:
        type = "bool";
        break;
    }
    out.emplace_back(f.key, type);
  }
  return out;
}

std::string JournalEvent::ToJsonLine() const {
  std::string out = "{\"event\":\"";
  out += JsonEscape(name_);
  out += "\",\"t\":";
  out += StrFormat("%lld", static_cast<long long>(time_));
  for (const Field& f : fields_) {
    out += ",\"";
    out += JsonEscape(f.key);
    out += "\":";
    switch (f.kind) {
      case Field::Kind::kInt:
        out += StrFormat("%lld", static_cast<long long>(f.i));
        break;
      case Field::Kind::kNum:
        out += JsonNumber(f.d);
        break;
      case Field::Kind::kStr:
        out += '"';
        out += JsonEscape(f.s);
        out += '"';
        break;
      case Field::Kind::kBool:
        out += f.b ? "true" : "false";
        break;
    }
  }
  out += '}';
  return out;
}

std::optional<JournalEvent> JournalEvent::Parse(std::string_view line) {
  const auto object = ParseFlatJsonObject(line);
  if (!object.has_value()) return std::nullopt;
  const auto event_it = object->find("event");
  const auto time_it = object->find("t");
  if (event_it == object->end() ||
      event_it->second.kind != JsonValue::Kind::kString ||
      time_it == object->end() ||
      time_it->second.kind != JsonValue::Kind::kNumber) {
    return std::nullopt;
  }
  JournalEvent out(event_it->second.string, time_it->second.AsInt());
  for (const auto& [key, value] : *object) {
    if (key == "event" || key == "t") continue;
    switch (value.kind) {
      case JsonValue::Kind::kNumber:
        // Integral numbers parse back as Int fields — the common case for
        // node ids, epochs and counts — others as Num.
        if (value.number == std::floor(value.number) &&
            std::abs(value.number) < 9e15) {
          out.Int(key, value.AsInt());
        } else {
          out.Num(key, value.number);
        }
        break;
      case JsonValue::Kind::kString:
        out.Str(key, value.string);
        break;
      case JsonValue::Kind::kBool:
        out.Bool(key, value.boolean);
        break;
      case JsonValue::Kind::kNull:
        break;  // dropped; our writers never emit null fields
    }
  }
  return out;
}

FileJournalSink::FileJournalSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

FileJournalSink::~FileJournalSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileJournalSink::Write(const std::string& line) {
  if (file_ == nullptr) return;
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
}

void FileJournalSink::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void MemoryJournalSink::Write(const std::string& line) {
  lines_.push_back(line);
  if (max_lines_ > 0 && lines_.size() > max_lines_) {
    lines_.erase(lines_.begin(),
                 lines_.begin() +
                     static_cast<std::ptrdiff_t>(lines_.size() - max_lines_));
  }
}

void EventJournal::WriteEvent(const JournalEvent& event) {
  sink_->Write(event.ToJsonLine());
  ++emitted_;
}

}  // namespace snapq::obs
