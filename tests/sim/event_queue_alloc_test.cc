// Acceptance bar for the zero-allocation event hot path (same global
// new/delete harness as profiler_alloc_test): once the event queue's heap
// vector and the simulator's delivery pool are warm, scheduling an
// inline-sized action and delivering a broadcast message — vectors and
// all — must perform ZERO heap allocations, and the pooled Send path must
// keep the profiler's kMessagesSent accounting intact.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/profiler.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapq {
namespace {

uint64_t Allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(EventQueueAllocTest, InlineActionsScheduleWithZeroAllocations) {
  EventQueue queue;
  queue.Reserve(64);
  uint64_t fired = 0;
  // Warm-up: some standard libraries lazily allocate on first use of
  // unrelated machinery; one full schedule/run cycle flushes that out.
  queue.ScheduleAt(queue.now(), [&fired] { ++fired; });
  ASSERT_TRUE(queue.RunNext());

  const uint64_t before = Allocations();
  for (int i = 0; i < 1000; ++i) {
    queue.ScheduleAt(queue.now() + 1, [&fired] { ++fired; });
    ASSERT_TRUE(queue.RunNext());
  }
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_EQ(fired, 1001u);
}

TEST(EventQueueAllocTest, ReservedBurstSchedulesWithZeroAllocations) {
  EventQueue queue;
  queue.Reserve(256);
  uint64_t fired = 0;
  const uint64_t before = Allocations();
  for (int i = 0; i < 256; ++i) {
    queue.ScheduleAt(queue.now() + i, [&fired] { ++fired; });
  }
  queue.RunAll();
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_EQ(fired, 256u);
}

TEST(EventQueueAllocTest, OversizedCaptureFallsBackToOneHeapAllocation) {
  // Sanity check that the harness measures: a capture bigger than the
  // inline buffer must allocate (exactly once per schedule).
  EventQueue queue;
  queue.Reserve(8);
  std::array<char, EventQueue::kActionInlineBytes + 16> big{};
  uint64_t fired = 0;
  queue.ScheduleAt(queue.now(), [&fired] { ++fired; });  // warm-up
  ASSERT_TRUE(queue.RunNext());

  const uint64_t before = Allocations();
  queue.ScheduleAt(queue.now(), [big, &fired] {
    (void)big;
    ++fired;
  });
  ASSERT_TRUE(queue.RunNext());
  EXPECT_GE(Allocations() - before, 1u);
  EXPECT_EQ(fired, 2u);
}

Simulator MakeSim() {
  SimConfig config;
  config.seed = 7;
  // Pairwise in range: every broadcast reaches both other nodes.
  return Simulator({{0, 0}, {1, 0}, {2, 0}}, {2.5, 2.5, 2.5}, config);
}

/// A broadcast with every payload vector populated — the worst case for
/// the pooled Message copy (all three vectors must reuse capacity).
Message PayloadMsg() {
  Message m;
  m.type = MessageType::kRepAck;
  m.from = 0;
  m.to = kBroadcastId;
  m.value = 3.5;
  m.ids = {1, 2};
  m.epochs = {4, 5};
  m.values = {0.25, 0.75};
  return m;
}

TEST(EventQueueAllocTest, SteadyStateDeliveryIsAllocationFree) {
  obs::Profiler::Disable();
  Simulator sim = MakeSim();
  uint64_t delivered = 0;
  for (NodeId i = 0; i < 3; ++i) {
    sim.SetHandler(i, [&delivered](const Message&, bool) { ++delivered; });
  }
  const Message m = PayloadMsg();
  // Warm up the delivery pool, the pooled messages' vector capacities and
  // the event queue's backing vector.
  for (int i = 0; i < 16; ++i) {
    sim.Send(m);
    sim.RunAll();
  }

  const uint64_t before = Allocations();
  const uint64_t delivered_before = delivered;
  for (int i = 0; i < 512; ++i) {
    sim.Send(m);
    sim.RunAll();
  }
  EXPECT_EQ(Allocations() - before, 0u);
  // Each broadcast reaches the two other nodes in range.
  EXPECT_EQ(delivered - delivered_before, 1024u);
}

TEST(EventQueueAllocTest, PooledSendKeepsProfilerAccountingIntact) {
  obs::Profiler::Global().Reset();
  obs::Profiler::Enable();
  Simulator sim = MakeSim();
  for (NodeId i = 0; i < 3; ++i) {
    sim.SetHandler(i, [](const Message&, bool) {});
  }
  const Message m = PayloadMsg();
  const uint64_t sent_before =
      obs::Profiler::Global().count(obs::HotOp::kMessagesSent);
  for (int i = 0; i < 100; ++i) {
    sim.Send(m);
    sim.RunAll();
  }
  obs::Profiler::Disable();
  // One kMessagesSent per Send, regardless of pooling or fan-out.
  EXPECT_EQ(obs::Profiler::Global().count(obs::HotOp::kMessagesSent) -
                sent_before,
            100u);
  EXPECT_GE(obs::Profiler::Global().count(obs::HotOp::kMessagesDelivered),
            200u);
}

}  // namespace
}  // namespace snapq
