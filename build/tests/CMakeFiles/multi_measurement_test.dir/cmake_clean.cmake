file(REMOVE_RECURSE
  "CMakeFiles/multi_measurement_test.dir/model/multi_measurement_test.cc.o"
  "CMakeFiles/multi_measurement_test.dir/model/multi_measurement_test.cc.o.d"
  "multi_measurement_test"
  "multi_measurement_test.pdb"
  "multi_measurement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_measurement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
