file(REMOVE_RECURSE
  "CMakeFiles/snapq_api.dir/api/experiment.cc.o"
  "CMakeFiles/snapq_api.dir/api/experiment.cc.o.d"
  "CMakeFiles/snapq_api.dir/api/network.cc.o"
  "CMakeFiles/snapq_api.dir/api/network.cc.o.d"
  "libsnapq_api.a"
  "libsnapq_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
