#include "sim/trace.h"

#include "common/check.h"
#include "common/string_util.h"

namespace snapq {

std::string TraceEvent::ToString() const {
  std::string out;
  if (kind == Kind::kSend) {
    out = StrFormat("t=%-5lld %-7s %-14s from=%u epoch=%lld",
                    static_cast<long long>(time), TraceEventKindName(kind),
                    MessageTypeName(type), from,
                    static_cast<long long>(epoch));
  } else {
    out = StrFormat("t=%-5lld %-7s %-14s from=%u to=%u epoch=%lld",
                    static_cast<long long>(time), TraceEventKindName(kind),
                    MessageTypeName(type), from, node,
                    static_cast<long long>(epoch));
  }
  if (trace_id != 0) {
    out += StrFormat(" trace=%llu:%llu",
                     static_cast<unsigned long long>(trace_id),
                     static_cast<unsigned long long>(span_id));
  }
  return out;
}

TraceRecorder::TraceRecorder(size_t capacity) : buffer_(capacity) {
  SNAPQ_CHECK_GT(capacity, 0u);
}

void TraceRecorder::Record(const TraceEvent& event) {
  buffer_[next_] = event;
  next_ = (next_ + 1) % buffer_.size();
  if (count_ < buffer_.size()) ++count_;
  ++total_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const size_t start = (next_ + buffer_.size() - count_) % buffer_.size();
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::Filter(TraceEvent::Kind kind,
                                              MessageType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : Events()) {
    if (e.kind == kind && e.type == type) out.push_back(e);
  }
  return out;
}

std::string TraceRecorder::Dump(size_t limit) const {
  const std::vector<TraceEvent> events = Events();
  std::string out;
  const size_t begin = events.size() > limit ? events.size() - limit : 0;
  for (size_t i = begin; i < events.size(); ++i) {
    out += events[i].ToString();
    out += '\n';
  }
  return out;
}

void TraceRecorder::Clear() {
  next_ = 0;
  count_ = 0;
  total_ = 0;
}

}  // namespace snapq
