// Table 3: reduction in the number of nodes participating in a spatial
// snapshot query, versus regular execution. Setup (§6.2): for each query a
// random sink, a TAG-style aggregation tree, and the spatial predicate
// "loc in [x-W/2, x+W/2] x [y-W/2, y+W/2]" around a random point; 200
// random queries, T = 1; routing nodes count as participants.
//
// Paper values for reference:
//                 K=1            K=100
//   range:     0.2   0.7       0.2   0.7
//   W^2=0.01   11%   29%        3%    7%
//   W^2=0.1    38%   77%       16%   24%
//   W^2=0.5    52%   91%       23%   49%
//
// Every query is charged to the energy ledger (charge_energy; the
// sensitivity networks run an unlimited battery, so attribution changes
// nothing behaviorally), which turns the participation savings into a
// joules-per-answer figure and a spatial energy map. The per-cell savings
// land in the `.energymap.json` extras, where tools/energy_report.py
// gates them against the committed baseline in CI.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "query/executor.h"

namespace {

using namespace snapq;

/// One repetition's outcome: the savings ratio plus the ledger's joule
/// attribution of the query workload. The energy snapshot and layout ride
/// along so the driver can write the spatial map from the showcase rep.
struct RepOutcome {
  double savings = std::numeric_limits<double>::quiet_NaN();
  double regular_joules = 0.0;
  double snapshot_joules = 0.0;
  obs::EnergyLedgerSnapshot energy;
  std::vector<Point> positions;
  Time end = 0;
};

/// Seed-order fold of one Table-3 cell.
struct CellResult {
  double savings = 0.0;
  double regular_joules_per_query = 0.0;
  double snapshot_joules_per_query = 0.0;
  /// Rep 0's full outcome, for the sidecar.
  RepOutcome showcase;
};

/// Average savings (and ledger-attributed joules) of snapshot over regular
/// execution for one Table-3 cell, over `repetitions` independently
/// elected networks. Repetitions run in parallel; a rep with no regular
/// participants (possible only in degenerate quick runs) yields NaN and is
/// skipped in the seed-order fold.
CellResult CellFor(size_t num_classes, double range, double w_squared,
                   int repetitions, uint64_t base_seed, int queries,
                   int jobs) {
  auto reps = exec::ParallelMap<RepOutcome>(
      static_cast<size_t>(repetitions), jobs, [&](size_t r) {
        SensitivityConfig config;
        config.num_classes = num_classes;
        config.transmission_range = range;
        config.seed = base_seed + r;
        SensitivityOutcome outcome = RunSensitivityTrial(config);
        SensorNetwork& net = *outcome.network;
        // Attached after the trial's election, so the ledger sees exactly
        // the query workload below (the battery is unlimited — attribution
        // is pure bookkeeping here).
        obs::EnergyLedger& ledger = net.EnableEnergyLedger();

        Rng rng(config.seed ^ 0x51AB5EEDULL);
        const double w = std::sqrt(w_squared);
        uint64_t regular_total = 0;
        uint64_t snapshot_total = 0;
        RepOutcome rep;
        for (int q = 0; q < queries; ++q) {
          ExecutionOptions options;
          options.sink = static_cast<NodeId>(
              rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
          options.charge_energy = true;
          const Point center{rng.NextDouble(), rng.NextDouble()};
          const Rect region = Rect::CenteredSquare(center, w);
          double mark = ledger.total_drained();
          const QueryResult regular = net.executor().ExecuteRegion(
              region, /*use_snapshot=*/false, AggregateFunction::kSum,
              options);
          rep.regular_joules += ledger.total_drained() - mark;
          mark = ledger.total_drained();
          const QueryResult snap = net.executor().ExecuteRegion(
              region, /*use_snapshot=*/true, AggregateFunction::kSum,
              options);
          rep.snapshot_joules += ledger.total_drained() - mark;
          regular_total += regular.participants;
          snapshot_total += snap.participants;
        }
        if (regular_total != 0) {
          rep.savings = 1.0 - static_cast<double>(snapshot_total) /
                                  static_cast<double>(regular_total);
        }
        rep.energy = ledger.TakeSnapshot();
        rep.positions.reserve(net.num_nodes());
        for (NodeId id = 0; id < static_cast<NodeId>(net.num_nodes()); ++id) {
          rep.positions.push_back(net.position(id));
        }
        rep.end = net.now();
        return rep;
      });
  RunningStats savings, regular_j, snapshot_j;
  for (const RepOutcome& rep : reps) {
    if (!std::isnan(rep.savings)) savings.Add(rep.savings);
    if (queries > 0) {
      regular_j.Add(rep.regular_joules / queries);
      snapshot_j.Add(rep.snapshot_joules / queries);
    }
  }
  CellResult cell;
  cell.savings = savings.mean();
  cell.regular_joules_per_query = regular_j.mean();
  cell.snapshot_joules_per_query = snapshot_j.mean();
  cell.showcase = std::move(reps.front());
  return cell;
}

/// Extras key for one cell's savings, e.g. "savings.k1.r07.w010"
/// (range and W^2 scaled to two/three digits to stay dot-free).
std::string SavingsKey(size_t k, double range, double w2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "savings.k%zu.r%02d.w%03d", k,
                static_cast<int>(range * 10 + 0.5),
                static_cast<int>(w2 * 100 + 0.5));
  return buf;
}

}  // namespace

SNAPQ_BENCHMARK(table3_query_savings,
                "Table 3: participation savings of snapshot queries") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Table 3: participation savings of snapshot queries",
      "N=100, T=1, sse; 200 random aggregate queries per cell, random "
      "sinks, TAG aggregation trees; savings = 1 - N_snapshot/N_regular");

  const int queries = static_cast<int>(ctx.Scaled(200));
  TablePrinter table({"query range", "K=1 r=0.2", "K=1 r=0.7", "K=100 r=0.2",
                      "K=100 r=0.7"});
  std::vector<std::pair<std::string, double>> extras;
  RunningStats savings_all;
  CellResult headline;  // K=1, r=0.7, W^2=0.1 — the paper's 77% cell
  for (double w2 : {0.01, 0.1, 0.5}) {
    std::vector<std::string> row = {"W^2 = " + TablePrinter::Num(w2, 2)};
    for (size_t k : {1u, 100u}) {
      for (double range : {0.2, 0.7}) {
        CellResult cell = CellFor(k, range, w2, ctx.repetitions,
                                  bench::kBaseSeed, queries, ctx.jobs);
        row.push_back(TablePrinter::Num(100.0 * cell.savings, 0) + "%");
        extras.emplace_back(SavingsKey(k, range, w2), cell.savings);
        savings_all.Add(cell.savings);
        if (k == 1 && range == 0.7 && w2 == 0.1) headline = std::move(cell);
      }
    }
    // Reorder: the loop above produced K1r02, K1r07, K100r02, K100r07 --
    // already the header order.
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Joules per answer, straight off the ledger, for the headline cell.
  std::printf(
      "\njoules per query (K=1, r=0.7, W^2=0.1): regular=%.2f "
      "snapshot=%.2f\n",
      headline.regular_joules_per_query, headline.snapshot_joules_per_query);
  extras.emplace_back("savings_mean", savings_all.mean());
  extras.emplace_back("joules_per_query_regular",
                      headline.regular_joules_per_query);
  extras.emplace_back("joules_per_query_snapshot",
                      headline.snapshot_joules_per_query);
  driver.WriteEnergyMap(headline.showcase.energy, headline.showcase.positions,
                        headline.showcase.end, std::move(extras));
}
