// Figure 6: number of representatives vs the number of random-walk
// classes K. Setup (§6.1): N = 100 nodes in the unit square, transmission
// range sqrt(2), P_loss = 0, cache 2048 bytes, T = 1, sse metric; 10 time
// units of training broadcasts, silence until t = 100, then discovery.
//
// Paper shape: K = 1 elects a single representative; past K ~ 15 the
// count plateaus well below N (paper: 17-25).
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"

SNAPQ_BENCHMARK(fig06_classes,
                "Figure 6: representatives vs number of classes K") {
  using namespace snapq;
  bench::Driver driver(ctx,
                       "Figure 6: representatives vs number of classes K",
                       "N=100, range=sqrt(2), P_loss=0, cache=2048B, T=1, "
                       "sse");

  TablePrinter table({"K", "representatives (n1)", "min", "max"});
  for (size_t k : {1u, 2u, 5u, 10u, 15u, 20u, 30u, 50u, 75u, 100u}) {
    const RunningStats reps = MeanOverSeeds(
        static_cast<size_t>(ctx.repetitions), bench::kBaseSeed,
        [&](uint64_t seed) {
          SensitivityConfig config;
          config.num_classes = k;
          config.seed = seed;
          return static_cast<double>(
              RunSensitivityTrial(config).stats.num_active);
        },
        ctx.jobs);
    table.AddRow({std::to_string(k), TablePrinter::Num(reps.mean(), 1),
                  TablePrinter::Num(reps.min(), 0),
                  TablePrinter::Num(reps.max(), 0)});
  }
  table.Print(std::cout);

  // One fully-traced repetition (K = 10, the paper's default) for the
  // `.trace.json` sidecar — the election's causal tree in Perfetto.
  if (ctx.write_sidecars) {
    SensitivityConfig config;
    config.seed = bench::kBaseSeed;
    config.trace_sampling = 1.0;
    const SensitivityOutcome outcome = RunSensitivityTrial(config);
    driver.WriteTrace(*outcome.network->tracer());
  }
}
