// The synthetic workload of the paper's sensitivity analysis (§6.1):
//
//   "For each node, we generated values following a random walk pattern,
//    each with a randomly assigned step size in the range (0..1]. The
//    initial value of each node was chosen uniformly in range [0..1000).
//    We then randomly partitioned the nodes into K classes. Nodes belonging
//    to the same class i were making a random step (upwards or downwards)
//    with the same probability P_move[i]. These probabilities were chosen
//    uniformly in range [0.2..1]."
//
// Nodes in the same class move in lock-step *direction decisions* (they
// share the class coin flips), which is what creates the cross-node linear
// correlation the models exploit: two same-class walks differ only by their
// per-node step size (a scale) and initial value (an offset).
#ifndef SNAPQ_DATA_RANDOM_WALK_H_
#define SNAPQ_DATA_RANDOM_WALK_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "data/timeseries.h"

namespace snapq {

/// Parameters for the random-walk generator. Defaults mirror §6.1.
struct RandomWalkConfig {
  size_t num_nodes = 100;
  size_t num_classes = 10;   ///< K
  size_t horizon = 100;      ///< number of time units generated
  double min_move_prob = 0.2;
  double max_move_prob = 1.0;
  double min_step = 0.0;     ///< step sizes drawn from (min_step, max_step]
  double max_step = 1.0;
  double initial_min = 0.0;
  double initial_max = 1000.0;
};

/// Output of the generator: one series per node plus the class assignment
/// (handy for tests that verify within-class correlation).
struct RandomWalkData {
  std::vector<TimeSeries> series;    ///< series[i] = node i's measurements
  std::vector<size_t> node_class;    ///< node -> class id in [0, K)
  std::vector<double> move_prob;     ///< class -> P_move
  std::vector<double> step_size;     ///< node -> step size
};

/// Generates the §6.1 workload. All randomness comes from `rng`.
///
/// Each time unit, class i draws one Bernoulli(P_move[i]) "do we move" coin
/// and one direction coin; every node of the class that moves applies the
/// shared direction scaled by its own step size. This follows the paper's
/// description ("nodes belonging to the same class were making a random
/// step ... with the same probability") in the strong-correlation reading:
/// at K=1 a single representative must be able to cover all 100 nodes
/// (Figure 6), which requires shared direction decisions, not merely shared
/// probabilities.
RandomWalkData GenerateRandomWalk(const RandomWalkConfig& config, Rng& rng);

}  // namespace snapq

#endif  // SNAPQ_DATA_RANDOM_WALK_H_
