file(REMOVE_RECURSE
  "CMakeFiles/snapq_snapshot.dir/snapshot/agent.cc.o"
  "CMakeFiles/snapq_snapshot.dir/snapshot/agent.cc.o.d"
  "CMakeFiles/snapq_snapshot.dir/snapshot/election.cc.o"
  "CMakeFiles/snapq_snapshot.dir/snapshot/election.cc.o.d"
  "CMakeFiles/snapq_snapshot.dir/snapshot/maintenance.cc.o"
  "CMakeFiles/snapq_snapshot.dir/snapshot/maintenance.cc.o.d"
  "CMakeFiles/snapq_snapshot.dir/snapshot/multi_resolution.cc.o"
  "CMakeFiles/snapq_snapshot.dir/snapshot/multi_resolution.cc.o.d"
  "CMakeFiles/snapq_snapshot.dir/snapshot/node_state.cc.o"
  "CMakeFiles/snapq_snapshot.dir/snapshot/node_state.cc.o.d"
  "libsnapq_snapshot.a"
  "libsnapq_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
