#include "obs/slo.h"

#include <cstdlib>
#include <utility>

#include "common/string_util.h"
#include "obs/json.h"

namespace snapq::obs {
namespace {

const char* StatName(SloRule::Stat stat) {
  switch (stat) {
    case SloRule::Stat::kValue:
      return "value";
    case SloRule::Stat::kEwma:
      return "ewma";
    case SloRule::Stat::kSlope:
      return "slope";
  }
  return "?";
}

/// Pops the next whitespace-delimited token off `rest`.
std::string_view NextToken(std::string_view& rest) {
  rest = StripWhitespace(rest);
  size_t end = 0;
  while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  const std::string_view token = rest.substr(0, end);
  rest = rest.substr(end);
  return token;
}

double EvalStat(const TimeSeries& series, SloRule::Stat stat) {
  switch (stat) {
    case SloRule::Stat::kValue:
      return series.last();
    case SloRule::Stat::kEwma:
      return series.ewma();
    case SloRule::Stat::kSlope:
      return series.Slope();
  }
  return 0.0;
}

}  // namespace

std::string SloRule::ToString() const {
  std::string out = metric;
  out += ' ';
  out += StatName(stat);
  out += op == Op::kGe ? " >= " : " <= ";
  out += JsonNumber(threshold);
  if (for_ticks > 0) {
    out += " for ";
    out += std::to_string(for_ticks);
  }
  return out;
}

std::optional<SloRule> SloRule::Parse(std::string_view text) {
  SloRule rule;
  std::string_view rest = text;
  const std::string_view metric = NextToken(rest);
  if (metric.empty()) return std::nullopt;
  rule.metric = std::string(metric);

  const std::string_view stat = NextToken(rest);
  if (EqualsIgnoreCase(stat, "value")) {
    rule.stat = Stat::kValue;
  } else if (EqualsIgnoreCase(stat, "ewma")) {
    rule.stat = Stat::kEwma;
  } else if (EqualsIgnoreCase(stat, "slope")) {
    rule.stat = Stat::kSlope;
  } else {
    return std::nullopt;
  }

  // ">" and "<" are accepted as aliases: thresholds are doubles, so the
  // strict and non-strict forms are operationally indistinguishable and
  // rule text pasted from dashboards should not bounce on the difference.
  const std::string_view op = NextToken(rest);
  if (op == ">=" || op == ">") {
    rule.op = Op::kGe;
  } else if (op == "<=" || op == "<") {
    rule.op = Op::kLe;
  } else {
    return std::nullopt;
  }

  const std::string_view threshold = NextToken(rest);
  if (threshold.empty()) return std::nullopt;
  char* end = nullptr;
  const std::string threshold_str(threshold);
  rule.threshold = std::strtod(threshold_str.c_str(), &end);
  if (end == threshold_str.c_str() || *end != '\0') return std::nullopt;

  rest = StripWhitespace(rest);
  if (rest.empty()) return rule;
  const std::string_view kw = NextToken(rest);
  if (!EqualsIgnoreCase(kw, "for")) return std::nullopt;
  const std::string_view ticks = NextToken(rest);
  const std::string ticks_str(ticks);
  const long parsed = std::strtol(ticks_str.c_str(), &end, 10);
  if (end == ticks_str.c_str() || *end != '\0' || parsed < 0) {
    return std::nullopt;
  }
  rule.for_ticks = static_cast<Time>(parsed);
  if (!StripWhitespace(rest).empty()) return std::nullopt;
  return rule;
}

SloWatchdog::SloWatchdog(const TelemetryRecorder* recorder,
                         EventJournal* journal)
    : recorder_(recorder), journal_(journal) {}

void SloWatchdog::AddRule(const SloRule& rule) {
  RuleState state;
  state.rule = rule;
  states_.push_back(std::move(state));
  rules_.push_back(rule);
}

bool SloWatchdog::AddRule(std::string_view text) {
  std::optional<SloRule> rule = SloRule::Parse(text);
  if (!rule.has_value()) return false;
  AddRule(*rule);
  return true;
}

void SloWatchdog::Evaluate(Time t) {
  for (RuleState& state : states_) {
    const TimeSeries* series = recorder_->series(state.rule.metric);
    if (series == nullptr || series->num_samples() == 0) continue;
    const double observed = EvalStat(*series, state.rule.stat);
    const bool holds = state.rule.op == SloRule::Op::kGe
                           ? observed >= state.rule.threshold
                           : observed <= state.rule.threshold;
    if (holds) {
      state.violated_since = kNotViolating;
      state.fired = false;
      continue;
    }
    if (state.violated_since == kNotViolating) state.violated_since = t;
    if (state.fired || t - state.violated_since < state.rule.for_ticks) {
      continue;
    }
    state.fired = true;
    SloBreach breach;
    breach.rule = state.rule;
    breach.violated_since = state.violated_since;
    breach.confirmed_at = t;
    breach.observed = observed;
    breaches_.push_back(breach);
    if (journal_ != nullptr) {
      journal_->Emit("slo.breach", t, [&](JournalEvent& e) {
        e.Str("rule", breach.rule.ToString())
            .Str("metric", breach.rule.metric)
            .Str("stat", StatName(breach.rule.stat))
            .Num("observed", breach.observed)
            .Num("threshold", breach.rule.threshold)
            .Int("since", breach.violated_since);
      });
    }
    if (on_breach_) on_breach_(breach);
  }
}

size_t SloWatchdog::BreachesFor(std::string_view metric) const {
  size_t n = 0;
  for (const SloBreach& breach : breaches_) {
    if (breach.rule.metric == metric) ++n;
  }
  return n;
}

std::string SloWatchdog::ToString() const {
  if (states_.empty()) return "slo: no rules\n";
  std::string out;
  for (const RuleState& state : states_) {
    const TimeSeries* series = recorder_->series(state.rule.metric);
    const char* status = "NO DATA";
    double observed = 0.0;
    if (series != nullptr && series->num_samples() > 0) {
      observed = EvalStat(*series, state.rule.stat);
      status = state.fired                             ? "BREACH"
               : state.violated_since != kNotViolating ? "violating"
                                                       : "ok";
    }
    out += StrFormat("  %-9s %s (now %.4g)\n", status,
                     state.rule.ToString().c_str(), observed);
  }
  out += StrFormat("  %zu confirmed breach(es)\n", breaches_.size());
  return out;
}

}  // namespace snapq::obs
