#include "obs/health_monitor.h"

#include "common/string_util.h"

namespace snapq::obs {

SnapshotHealthMonitor::SnapshotHealthMonitor(MetricRegistry* registry,
                                             EventJournal* journal)
    : journal_(journal),
      gauges_(registry,
              {"health.coverage", "health.violation_rate",
               "health.reelection_rate", "health.spurious_reps",
               "health.model_staleness"}),
      samples_counter_(registry->GetCounter("health.samples")) {}

void SnapshotHealthMonitor::Observe(const HealthSample& sample, Time t) {
  if (num_samples_ > 0) {
    // Clamp to 0 when a cumulative count went backwards: a warm restart
    // (agents reinstalled, counters reset) would otherwise make the
    // unsigned subtraction underflow into an absurd rate.
    violation_rate_ =
        sample.violations >= last_.violations
            ? static_cast<double>(sample.violations - last_.violations)
            : 0.0;
    reelection_rate_ =
        sample.reelections >= last_.reelections
            ? static_cast<double>(sample.reelections - last_.reelections)
            : 0.0;
  } else {
    // First sample: the cumulative counts are the first epoch's rates.
    violation_rate_ = static_cast<double>(sample.violations);
    reelection_rate_ = static_cast<double>(sample.reelections);
  }
  last_ = sample;
  last_time_ = t;
  ++num_samples_;

  gauges_.Set(kCoverage, coverage());
  gauges_.Set(kViolationRate, violation_rate_);
  gauges_.Set(kReelectionRate, reelection_rate_);
  gauges_.Set(kSpurious, static_cast<double>(sample.num_spurious));
  gauges_.Set(kStaleness, sample.mean_model_staleness);
  samples_counter_->Inc();

  if (journal_ != nullptr) {
    journal_->Emit("health.sample", t, [&](JournalEvent& e) {
      e.Int("live", static_cast<int64_t>(sample.num_live))
          .Int("active", static_cast<int64_t>(sample.num_active))
          .Int("passive", static_cast<int64_t>(sample.num_passive))
          .Int("undefined", static_cast<int64_t>(sample.num_undefined))
          .Int("spurious", static_cast<int64_t>(sample.num_spurious))
          .Num("coverage", coverage())
          .Num("violation_rate", violation_rate_)
          .Num("reelection_rate", reelection_rate_)
          .Num("staleness", sample.mean_model_staleness);
    });
  }
}

double SnapshotHealthMonitor::coverage() const {
  if (last_.num_live == 0) return 1.0;
  return static_cast<double>(last_.num_active + last_.num_passive) /
         static_cast<double>(last_.num_live);
}

std::string SnapshotHealthMonitor::ToString() const {
  if (num_samples_ == 0) return "health: no samples yet\n";
  std::string out = StrFormat(
      "health @t=%lld (%llu samples)\n",
      static_cast<long long>(last_time_),
      static_cast<unsigned long long>(num_samples_));
  out += StrFormat(
      "  coverage      %.3f (%llu active + %llu passive / %llu live, "
      "%llu undefined)\n",
      coverage(), static_cast<unsigned long long>(last_.num_active),
      static_cast<unsigned long long>(last_.num_passive),
      static_cast<unsigned long long>(last_.num_live),
      static_cast<unsigned long long>(last_.num_undefined));
  out += StrFormat("  violations    %.0f this epoch (%llu total)\n",
                   violation_rate_,
                   static_cast<unsigned long long>(last_.violations));
  out += StrFormat("  re-elections  %.0f this epoch (%llu total)\n",
                   reelection_rate_,
                   static_cast<unsigned long long>(last_.reelections));
  out += StrFormat("  spurious reps %llu\n",
                   static_cast<unsigned long long>(last_.num_spurious));
  out += StrFormat("  staleness     %.1f ticks (mean, per represented "
                   "member)\n",
                   last_.mean_model_staleness);
  return out;
}

}  // namespace snapq::obs
