// The BENCH.json report model. The snapq_bench harness fills one
// BenchReport per run; ToJson() emits the canonical document that
// tools/bench_compare.py diffs across commits, so its field names and
// types are a frozen schema (DESIGN.md §10; the golden test in
// tests/bench/bench_report_test.cc pins it).
#ifndef SNAPQ_BENCH_BENCH_REPORT_H_
#define SNAPQ_BENCH_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace snapq::bench {

inline constexpr int kBenchSchemaVersion = 1;

/// Outlier-aware aggregate over the harness repetitions of one benchmark.
/// The median is the headline value (robust to a cold-cache or
/// descheduled repetition); mean/min/max document the spread so a
/// regression diff can tell noise from drift.
struct StatSummary {
  double median = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  int reps = 0;

  static StatSummary FromSamples(std::vector<double> samples);
};

/// One profiler phase's wall-latency distribution, merged across the
/// harness repetitions.
struct PhaseLatency {
  std::string phase;
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct BenchmarkResult {
  std::string name;
  StatSummary wall_ms;
  StatSummary cpu_ms;
  /// Hot-op totals from one repetition (the drivers are seeded, so every
  /// repetition counts the same work).
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// counter / median wall seconds, keyed "<op>_per_sec".
  std::vector<std::pair<std::string, double>> throughput;
  std::vector<PhaseLatency> latency_us;
  /// Peak resident set after this benchmark ran (monotone across the
  /// process, so per-benchmark values only ever grow).
  int64_t peak_rss_kb = 0;
};

struct BenchReport {
  std::string git_sha;
  std::string timestamp;  // ISO-8601 UTC, e.g. "2026-02-03T04:05:06Z"
  bool quick = false;
  int harness_repetitions = 0;  // timed runs per benchmark
  int driver_repetitions = 0;   // seeds per data point inside a driver
  std::vector<BenchmarkResult> benchmarks;

  std::string ToJson() const;
};

/// Commit to stamp into the report: $SNAPQ_GIT_SHA, else $GITHUB_SHA,
/// else `git rev-parse HEAD`, else "unknown".
std::string GitSha();

/// Current UTC time in the timestamp format above.
std::string IsoTimestamp();

/// Peak resident set size of this process, in kilobytes (getrusage).
int64_t PeakRssKb();

}  // namespace snapq::bench

#endif  // SNAPQ_BENCH_BENCH_REPORT_H_
