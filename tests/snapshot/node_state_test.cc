#include "snapshot/node_state.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

using NodeInfo = SnapshotView::NodeInfo;

NodeInfo Active(NodeId self) {
  NodeInfo info;
  info.mode = NodeMode::kActive;
  info.representative = self;
  return info;
}

NodeInfo Passive(NodeId rep, int64_t epoch = 1) {
  NodeInfo info;
  info.mode = NodeMode::kPassive;
  info.representative = rep;
  info.epoch = epoch;
  return info;
}

TEST(NodeModeTest, Names) {
  EXPECT_STREQ(NodeModeName(NodeMode::kUndefined), "UNDEFINED");
  EXPECT_STREQ(NodeModeName(NodeMode::kActive), "ACTIVE");
  EXPECT_STREQ(NodeModeName(NodeMode::kPassive), "PASSIVE");
}

TEST(SnapshotViewTest, CountsByMode) {
  NodeInfo rep = Active(0);
  rep.represents = {{1, 1}, {2, 1}};
  SnapshotView view({rep, Passive(0), Passive(0), NodeInfo{}});
  EXPECT_EQ(view.num_nodes(), 4u);
  EXPECT_EQ(view.CountActive(), 1u);
  EXPECT_EQ(view.CountPassive(), 2u);
  EXPECT_EQ(view.CountUndefined(), 1u);
}

TEST(SnapshotViewTest, DeadNodesExcludedFromCounts) {
  NodeInfo dead = Active(0);
  dead.alive = false;
  SnapshotView view({dead, Passive(0)});
  EXPECT_EQ(view.CountActive(), 0u);
  EXPECT_EQ(view.CountPassive(), 1u);
}

TEST(SnapshotViewTest, CurrentRepresentationMatchesEpochs) {
  NodeInfo rep = Active(0);
  rep.represents = {{1, 5}};
  SnapshotView view({rep, Passive(0, 5)});
  EXPECT_TRUE(view.RepresentsCurrently(0, 1));
}

TEST(SnapshotViewTest, StaleWhenEpochMoved) {
  NodeInfo rep = Active(0);
  rep.represents = {{1, 5}};
  // Node 1 re-elected (epoch 6) and now points at node 0 again... but the
  // holder recorded epoch 5, so the old entry is stale.
  SnapshotView view({rep, Passive(0, 6)});
  EXPECT_FALSE(view.RepresentsCurrently(0, 1));
}

TEST(SnapshotViewTest, StaleWhenRepresentativeChanged) {
  NodeInfo rep0 = Active(0);
  rep0.represents = {{2, 1}};
  NodeInfo rep1 = Active(1);
  rep1.represents = {{2, 2}};
  SnapshotView view({rep0, rep1, Passive(1, 2)});
  EXPECT_FALSE(view.RepresentsCurrently(0, 2));
  EXPECT_TRUE(view.RepresentsCurrently(1, 2));
  EXPECT_EQ(view.CountSpurious(), 1u);  // node 0 holds a stale entry
}

TEST(SnapshotViewTest, SelfIsAlwaysCurrent) {
  SnapshotView view({Active(0)});
  EXPECT_TRUE(view.RepresentsCurrently(0, 0));
}

TEST(SnapshotViewTest, SpuriousCountsNodesNotEntries) {
  NodeInfo rep = Active(0);
  rep.represents = {{1, 9}, {2, 9}};  // both stale
  SnapshotView view({rep, Passive(3, 1), Passive(3, 1), Active(3)});
  EXPECT_EQ(view.CountSpurious(), 1u);
}

TEST(SnapshotViewTest, ResponderForActiveIsSelf) {
  SnapshotView view({Active(0)});
  EXPECT_EQ(view.ResponderFor(0), 0u);
}

TEST(SnapshotViewTest, ResponderForPassiveIsCurrentRep) {
  NodeInfo rep = Active(0);
  rep.represents = {{1, 3}};
  SnapshotView view({rep, Passive(0, 3)});
  EXPECT_EQ(view.ResponderFor(1), 0u);
}

TEST(SnapshotViewTest, ResponderMissingWhenRepDead) {
  NodeInfo rep = Active(0);
  rep.represents = {{1, 3}};
  rep.alive = false;
  SnapshotView view({rep, Passive(0, 3)});
  EXPECT_EQ(view.ResponderFor(1), kInvalidNode);
}

TEST(SnapshotViewTest, ResponderMissingWhenEntryStale) {
  NodeInfo rep = Active(0);
  rep.represents = {{1, 2}};  // stale: node 1 is at epoch 3
  SnapshotView view({rep, Passive(0, 3)});
  EXPECT_EQ(view.ResponderFor(1), kInvalidNode);
}

TEST(SnapshotViewTest, DeadUnrepresentedNodeHasNoResponder) {
  NodeInfo dead = Active(0);
  dead.alive = false;
  SnapshotView view({dead});
  EXPECT_EQ(view.ResponderFor(0), kInvalidNode);
}

}  // namespace
}  // namespace snapq
