// Multi-measurement support (§3): "In practice there can be as many
// measurements as the number of sensing elements installed on a node. Our
// framework will still apply in such cases. The only necessary
// modification is the addition of a measurement_id during model
// computation."
//
// MultiSensorStore keys the shared observation cache by (neighbor id,
// measurement id): all measurements compete for the same byte budget, and
// the §4 benefit-driven replacement automatically allots more pairs to the
// measurements whose models gain the most.
#ifndef SNAPQ_MODEL_MULTI_MEASUREMENT_H_
#define SNAPQ_MODEL_MULTI_MEASUREMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "model/cache_manager.h"
#include "model/error_metric.h"
#include "net/node_id.h"

namespace snapq {

/// Identifies one sensing element on a node (temperature = 0, humidity =
/// 1, ...). Up to 256 measurements per node.
using MeasurementId = uint8_t;

/// Per-node model state for multi-sensor nodes. Mirrors ModelStore's API
/// with a MeasurementId threaded through; models correlate measurement m
/// of a neighbor with measurement m of this node.
class MultiSensorStore {
 public:
  /// `num_measurements` sensing elements per node; the cache budget in
  /// `cache_config` is shared across all of them.
  MultiSensorStore(NodeId self, size_t num_measurements,
                   const CacheConfig& cache_config);

  NodeId self() const { return self_; }
  size_t num_measurements() const { return own_values_.size(); }

  /// Updates this node's current reading of measurement `m`.
  void SetOwnValue(MeasurementId m, double value, Time t);
  double own_value(MeasurementId m) const;

  /// Records neighbor `j`'s reading of measurement `m`, paired with this
  /// node's own current reading of the same measurement.
  CacheManager::Action Observe(NodeId j, MeasurementId m, double y, Time t);

  /// Estimate of neighbor j's measurement m; nullopt without a model.
  std::optional<double> Estimate(NodeId j, MeasurementId m) const;

  /// §3 representation predicate for one measurement.
  bool CanRepresent(NodeId j, MeasurementId m, double actual_y,
                    const ErrorMetric& metric, double threshold) const;

  /// A node can represent a multi-sensor neighbor only when *every*
  /// measurement is within its threshold (thresholds[m] pairs with
  /// actual[m]).
  bool CanRepresentAll(NodeId j, const std::vector<double>& actuals,
                       const ErrorMetric& metric,
                       const std::vector<double>& thresholds) const;

  CacheManager& cache() { return cache_; }
  const CacheManager& cache() const { return cache_; }

 private:
  /// Packs (node, measurement) into the cache key space. Node ids are
  /// bounded by kBroadcastId >> 8 — comfortably above any deployment this
  /// simulator hosts.
  static NodeId PackKey(NodeId j, MeasurementId m);

  NodeId self_;
  CacheManager cache_;
  std::vector<double> own_values_;
  std::vector<Time> own_times_;
};

}  // namespace snapq

#endif  // SNAPQ_MODEL_MULTI_MEASUREMENT_H_
