#include "query/aggregation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace snapq {
namespace {

TEST(PartialAggregateTest, Sum) {
  PartialAggregate agg(AggregateFunction::kSum);
  agg.AddValue(1.5);
  agg.AddValue(-0.5);
  agg.AddValue(4.0);
  EXPECT_DOUBLE_EQ(agg.Finalize(), 5.0);
  EXPECT_EQ(agg.count(), 3u);
}

TEST(PartialAggregateTest, Avg) {
  PartialAggregate agg(AggregateFunction::kAvg);
  agg.AddValue(2.0);
  agg.AddValue(4.0);
  EXPECT_DOUBLE_EQ(agg.Finalize(), 3.0);
}

TEST(PartialAggregateTest, MinMax) {
  PartialAggregate mn(AggregateFunction::kMin);
  PartialAggregate mx(AggregateFunction::kMax);
  for (double v : {3.0, -1.0, 7.0}) {
    mn.AddValue(v);
    mx.AddValue(v);
  }
  EXPECT_DOUBLE_EQ(mn.Finalize(), -1.0);
  EXPECT_DOUBLE_EQ(mx.Finalize(), 7.0);
}

TEST(PartialAggregateTest, Count) {
  PartialAggregate agg(AggregateFunction::kCount);
  for (int i = 0; i < 5; ++i) agg.AddValue(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(agg.Finalize(), 5.0);
}

TEST(PartialAggregateTest, EmptyStates) {
  EXPECT_DOUBLE_EQ(PartialAggregate(AggregateFunction::kSum).Finalize(), 0.0);
  EXPECT_DOUBLE_EQ(PartialAggregate(AggregateFunction::kAvg).Finalize(), 0.0);
  EXPECT_DOUBLE_EQ(PartialAggregate(AggregateFunction::kCount).Finalize(),
                   0.0);
  EXPECT_TRUE(
      std::isinf(PartialAggregate(AggregateFunction::kMin).Finalize()));
}

TEST(PartialAggregateTest, MergeEqualsFlatAggregation) {
  // TAG correctness: merging partials must equal aggregating the union.
  Rng rng(3);
  for (AggregateFunction f :
       {AggregateFunction::kSum, AggregateFunction::kAvg,
        AggregateFunction::kMin, AggregateFunction::kMax,
        AggregateFunction::kCount}) {
    PartialAggregate whole(f);
    PartialAggregate left(f), right(f);
    for (int i = 0; i < 100; ++i) {
      const double v = rng.Gaussian(0, 10);
      whole.AddValue(v);
      (i % 3 == 0 ? left : right).AddValue(v);
    }
    left.Merge(right);
    EXPECT_NEAR(left.Finalize(), whole.Finalize(), 1e-9)
        << AggregateFunctionName(f);
    EXPECT_EQ(left.count(), whole.count());
  }
}

TEST(PartialAggregateTest, MergeIsAssociativeOnChains) {
  // Simulates a deep routing tree: fold one value per hop.
  PartialAggregate acc(AggregateFunction::kAvg);
  PartialAggregate flat(AggregateFunction::kAvg);
  for (int i = 1; i <= 20; ++i) {
    PartialAggregate hop(AggregateFunction::kAvg);
    hop.AddValue(i);
    acc.Merge(hop);
    flat.AddValue(i);
  }
  EXPECT_DOUBLE_EQ(acc.Finalize(), flat.Finalize());
}

TEST(PartialAggregateDeathTest, NoneIsNotAggregatable) {
  EXPECT_DEATH(PartialAggregate(AggregateFunction::kNone), "SNAPQ_CHECK");
}

TEST(PartialAggregateDeathTest, MergeRequiresSameFunction) {
  PartialAggregate a(AggregateFunction::kSum);
  PartialAggregate b(AggregateFunction::kMax);
  EXPECT_DEATH(a.Merge(b), "SNAPQ_CHECK");
}

TEST(AggregateFunctionNameTest, Names) {
  EXPECT_STREQ(AggregateFunctionName(AggregateFunction::kSum), "sum");
  EXPECT_STREQ(AggregateFunctionName(AggregateFunction::kNone), "none");
}

}  // namespace
}  // namespace snapq
