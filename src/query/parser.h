// Recursive-descent parser for the query dialect; see ast.h for the
// grammar by example. Errors carry byte offsets.
#ifndef SNAPQ_QUERY_PARSER_H_
#define SNAPQ_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/ast.h"

namespace snapq {

/// Parses one query. Grammar (keywords case-insensitive):
///
///   statement  := [EXPLAIN [ANALYZE]] query
///   query      := SELECT items FROM ident [where] [sampling] [snapshot]
///   items      := '*' | item (',' item)*
///   item       := ident | agg '(' (ident | '*') ')'
///   agg        := SUM | AVG | MIN | MAX | COUNT
///   where      := WHERE LOC IN (ident | rect)
///   rect       := RECT '(' num ',' num ',' num ',' num ')'
///   sampling   := SAMPLE INTERVAL duration [FOR duration]
///   duration   := number [unit]            (unit: ms|s|sec|min|hour)
///   snapshot   := USE SNAPSHOT [ERROR number]
///
/// Durations are converted to simulation time units (1 unit = 1 second).
Result<QuerySpec> ParseQuery(std::string_view input);

}  // namespace snapq

#endif  // SNAPQ_QUERY_PARSER_H_
