// Topology & churn observatory: the network-structure counterpart of the
// health monitor. The paper's economy rests on the radio graph — a
// representative answers for the nodes it can hear, so one severed or
// lossy link silently degrades snapshot coverage — yet nothing so far
// observed the graph itself. Three pieces close that gap:
//
//  * LinkObserver — fixed-memory per-directed-link statistics (deliveries,
//    snoops, losses, EWMA delivery ratio, last-activity tick) fed from the
//    simulator's delivery/loss/snoop sites. Cost model (the repo's
//    observability contract): with no observer attached each site pays a
//    single null-pointer branch; with one attached each outcome is a
//    fixed-capacity open-addressing probe plus a handful of writes — ZERO
//    heap allocations either way (pinned by topo_alloc_test).
//
//  * AnalyzeTopology — a point-in-time TopologySnapshot combining
//    LinkModel reachability with liveness and cluster membership:
//    partition count (connected components of the undirected closure, the
//    same relation LinkModel::IsConnected uses), bridge links and
//    articulation nodes (aggregation single points of failure, via one
//    iterative Tarjan DFS), degree distribution, isolated-node count, and
//    per-cluster radius / BFS tree depth.
//
//  * ChurnTracker — sweep-differenced representation dynamics: how often
//    nodes change representative (flaps), how often new representatives
//    appear (elections, bucketed into a spatial grid for per-region
//    rates), and how long representatives hold the role (tenure
//    histogram).
//
// TopologyMonitor owns all three and publishes through ordinary registry
// gauges —
//
//   topo.partitions          connected components among live nodes
//   topo.bridges             undirected edges whose loss splits a component
//   topo.articulation_nodes  nodes whose death splits a component
//   topo.avg_degree          mean undirected degree over live nodes
//   topo.isolated_nodes      live nodes with no live neighbor
//   topo.weak_links          observed links with EWMA delivery below the
//                            configured threshold
//   topo.live_nodes          live-node count at the sample
//   topo.links_observed      distinct directed links seen by the observer
//   churn.rep_tenure_p50     median completed representative tenure (ticks;
//                            ongoing tenures stand in while none completed)
//   churn.flap_rate          nodes whose representative changed since the
//                            previous sweep
//   churn.election_rate      nodes that became representatives since the
//                            previous sweep
//
// — so the telemetry recorder, the SLO grammar ("topo.partitions value
// <= 1 for 20") and the flight-recorder blackbox pick them up with zero
// new plumbing. Each sample also emits one frozen-schema `topo.sample`
// journal event, and TopoMapToJson renders the schema-v1 `*.topo.json`
// sidecar consumed by tools/topo_report.py.
//
// Layering: obs depends on net (LinkModel, node ids) and common only. The
// snapshot/protocol layer never appears here — the api layer fills a plain
// ClusterView (alive / is-representative / representative-of) per sweep,
// mirroring snapshot/health_probe.h.
#ifndef SNAPQ_OBS_TOPO_H_
#define SNAPQ_OBS_TOPO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "net/link_model.h"
#include "net/node_id.h"
#include "obs/gauge_pack.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"
#include "obs/profiler.h"

namespace snapq::obs {

// ---------------------------------------------------------------------------
// LinkObserver

/// Observed statistics of one directed link. `attempts` are addressed
/// transmissions only (delivered + lost), matching the Metrics façade;
/// snoops are overheard copies and tracked separately. The EWMA delivery
/// ratio folds 1 (delivered) / 0 (lost) per addressed outcome with
/// kLinkEwmaAlpha; -1 until the first addressed outcome.
struct LinkStats {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint64_t deliveries = 0;
  uint64_t snoops = 0;
  uint64_t losses = 0;
  double ewma_delivery = -1.0;
  Time last_activity = -1;

  uint64_t attempts() const { return deliveries + losses; }
};

/// EWMA smoothing factor for the per-link delivery ratio: ~the last 20
/// outcomes dominate, so a link that turns lossy crosses a 0.5 weak-link
/// threshold within a handful of losses.
inline constexpr double kLinkEwmaAlpha = 0.1;

/// Fixed-memory per-directed-link observer. All storage (an open-
/// addressing hash table keyed by from*num_nodes+to, linear probing) is
/// allocated at construction; links beyond `max_links` are counted in
/// dropped_records() and otherwise ignored, so the message path never
/// allocates. Attach with Simulator::SetLinkObserver.
class LinkObserver {
 public:
  /// `max_links` caps distinct directed links tracked; 0 sizes
  /// automatically (every ordered pair, capped at kDefaultMaxLinks).
  explicit LinkObserver(size_t num_nodes, size_t max_links = 0);

  /// Auto-capacity cap: beyond this many directed links the tails are
  /// dropped (64k links ~ 4 MB of table).
  static constexpr size_t kDefaultMaxLinks = 65536;

  // -- Hot path (one probe + a few writes; never allocates) ------------------

  void RecordDelivery(NodeId from, NodeId to, Time now);
  void RecordSnoop(NodeId from, NodeId to, Time now);
  void RecordLoss(NodeId from, NodeId to, Time now);

  // -- Reads -----------------------------------------------------------------

  size_t num_nodes() const { return num_nodes_; }
  /// Distinct directed links currently tracked.
  size_t num_links() const { return num_links_; }
  size_t capacity() const { return max_links_; }
  /// Record attempts discarded because the table was at capacity.
  uint64_t dropped_records() const { return dropped_; }

  /// The stats of one directed link, or nullptr when never observed.
  const LinkStats* Find(NodeId from, NodeId to) const;

  /// Every tracked link, sorted by (from, to) — the deterministic order
  /// the sidecar and reports use.
  std::vector<LinkStats> SortedLinks() const;

  /// Tracked links with at least `min_attempts` addressed outcomes and an
  /// EWMA delivery ratio below `threshold`.
  size_t CountWeakLinks(double threshold, uint64_t min_attempts) const;

 private:
  /// The link's slot, inserting on first touch; nullptr when the table is
  /// at capacity and the link is new.
  LinkStats* Touch(NodeId from, NodeId to, Time now);

  size_t num_nodes_;
  size_t max_links_;
  size_t table_mask_;  // table_.size() - 1 (power of two)
  std::vector<LinkStats> table_;
  size_t num_links_ = 0;
  uint64_t dropped_ = 0;
};

// ---------------------------------------------------------------------------
// ClusterView — plain-data representation state, filled by the api layer.

struct ClusterView {
  std::vector<uint8_t> alive;
  /// Node currently holds the representative role (mode ACTIVE).
  std::vector<uint8_t> is_rep;
  /// The node each node is represented by (itself when unrepresented).
  std::vector<NodeId> representative;

  /// Resizes every vector to `n`; entries must be refilled per sweep.
  void Resize(size_t n);
  size_t num_nodes() const { return alive.size(); }
};

// ---------------------------------------------------------------------------
// TopologySnapshot

/// Per-cluster structure: the representative, its member count (including
/// itself), the maximum euclidean rep->member distance, and the maximum
/// BFS hop depth from the rep to a member over the live undirected graph
/// (-1 when some member is unreachable — a broken cluster).
struct ClusterTopoStats {
  NodeId rep = kInvalidNode;
  uint64_t size = 0;
  double radius = 0.0;
  int64_t depth = 0;
};

/// One point-in-time structural analysis. Self-contained (carries the
/// per-node detail) so the sidecar can be rendered from it alone.
struct TopologySnapshot {
  Time t = 0;
  size_t num_nodes = 0;
  size_t num_live = 0;
  size_t partitions = 0;
  size_t isolated = 0;
  double avg_degree = 0.0;
  size_t max_degree = 0;
  /// Filled by the monitor from observer data (0 in bare analyses).
  size_t weak_links = 0;

  /// Per node: undirected degree among live nodes (0 when dead).
  std::vector<uint32_t> degree;
  /// Per node: connected-component id (-1 when dead). Component ids are
  /// assigned in ascending order of their lowest member id.
  std::vector<int32_t> component;
  /// Per node: the representative recorded in the analyzed ClusterView.
  std::vector<NodeId> representative;
  std::vector<uint8_t> alive;
  /// Undirected bridge edges (u < v), sorted.
  std::vector<std::pair<NodeId, NodeId>> bridges;
  /// Articulation nodes, sorted.
  std::vector<NodeId> articulation;
  /// One entry per live representative, sorted by rep id.
  std::vector<ClusterTopoStats> clusters;
};

/// Analyzes the live undirected closure of `links` (edge u~v iff either
/// direction is in range — the relation LinkModel::IsConnected uses)
/// under the liveness and membership recorded in `view`.
TopologySnapshot AnalyzeTopology(const LinkModel& links,
                                 const ClusterView& view, Time now);

// ---------------------------------------------------------------------------
// ChurnTracker

/// Sweep-differenced representation dynamics. Feed it the same ClusterView
/// the analyzer consumes, once per telemetry sample:
///
///   flap       a live node's representative differs from the previous
///              sweep's;
///   election   a live node holds the representative role it did not hold
///              the previous sweep (bucketed into a grid x grid spatial
///              region for per-region rates);
///   tenure     ticks from a node gaining the role to losing it (or
///              dying), recorded in a log-bucketed histogram.
///
/// Registry instruments: churn.flap_rate / churn.election_rate /
/// churn.rep_tenure_p50 gauges, churn.flaps / churn.elections /
/// churn.tenures_completed counters, and one churn.region_elections
/// counter per grid cell (labeled {node=<cell>}, row-major). Observe is
/// allocation-free after construction.
class ChurnTracker {
 public:
  ChurnTracker(size_t num_nodes, size_t grid, MetricRegistry* registry);

  /// Ingests one sweep at sim-time `now`. `links` supplies node positions
  /// for region bucketing (the bounding box is latched on first sweep).
  void Observe(const ClusterView& view, const LinkModel& links, Time now);

  uint64_t flaps_total() const { return flaps_; }
  uint64_t elections_total() const { return elections_; }
  uint64_t completed_tenures() const { return completed_; }
  /// Count since the previous sweep (the published gauge values).
  double flap_rate() const { return flap_rate_; }
  double election_rate() const { return election_rate_; }
  /// Median completed tenure in ticks; while none completed, the median
  /// ongoing tenure (0 when nothing was ever active).
  double tenure_p50() const { return tenure_p50_; }
  const LogHistogram& tenure_histogram() const { return tenure_hist_; }
  size_t grid() const { return grid_; }
  /// Cumulative elections in grid cell (row-major `cell`).
  uint64_t RegionElections(size_t cell) const;

 private:
  size_t RegionOf(const Point& p) const;
  void UpdateTenureP50(Time now);

  const size_t num_nodes_;
  const size_t grid_;
  GaugePack gauges_;
  Counter* flaps_counter_;
  Counter* elections_counter_;
  Counter* tenures_counter_;
  std::vector<Counter*> region_counters_;  // grid_ * grid_, row-major
  LogHistogram tenure_hist_;

  std::vector<NodeId> prev_rep_;
  std::vector<uint8_t> prev_is_rep_;
  std::vector<Time> active_since_;      // -1 while not holding the role
  std::vector<double> tenure_scratch_;  // preallocated for the p50
  bool first_sweep_ = true;
  Rect bounds_ = Rect::UnitSquare();  // latched from positions on first sweep
  uint64_t flaps_ = 0;
  uint64_t elections_ = 0;
  uint64_t completed_ = 0;
  double flap_rate_ = 0.0;
  double election_rate_ = 0.0;
  double tenure_p50_ = 0.0;
};

// ---------------------------------------------------------------------------
// TopologyMonitor

struct TopologyConfig {
  /// Distinct directed links the observer tracks (0 = auto; see
  /// LinkObserver).
  size_t max_links = 0;
  /// A link with at least `weak_min_attempts` addressed outcomes and an
  /// EWMA delivery ratio below `weak_threshold` counts as weak.
  double weak_threshold = 0.5;
  uint64_t weak_min_attempts = 8;
  /// Churn region grid is `churn_grid` x `churn_grid` cells.
  size_t churn_grid = 4;
};

/// Owns the observer, the churn tracker and the latest snapshot; publishes
/// the topo.* gauges and the `topo.sample` journal event once per Sample.
/// One per simulation (not thread-safe, like the registry). Attach the
/// observer with Simulator::SetLinkObserver(&monitor.link_observer()).
class TopologyMonitor {
 public:
  TopologyMonitor(const TopologyConfig& config, size_t num_nodes,
                  MetricRegistry* registry, EventJournal* journal = nullptr);

  LinkObserver& link_observer() { return observer_; }
  const LinkObserver& link_observer() const { return observer_; }
  ChurnTracker& churn() { return churn_; }
  const ChurnTracker& churn() const { return churn_; }

  /// The view the caller refills before each Sample (preallocated to the
  /// node count at construction).
  ClusterView& mutable_view() { return view_; }

  /// Analyzes the topology under the current view, feeds the churn
  /// tracker, publishes every gauge and emits `topo.sample`. Returns the
  /// stored snapshot (valid until the next Sample).
  const TopologySnapshot& Sample(const LinkModel& links, Time now);

  /// The most recent snapshot (empty before the first Sample).
  const TopologySnapshot& last() const { return snapshot_; }
  uint64_t num_samples() const { return num_samples_; }
  const TopologyConfig& config() const { return config_; }

  /// One-screen summary: structure, churn and the weakest observed links
  /// (shell `\topo`).
  std::string ToString() const;

 private:
  const TopologyConfig config_;
  LinkObserver observer_;
  ChurnTracker churn_;
  ClusterView view_;
  TopologySnapshot snapshot_;
  GaugePack gauges_;
  Counter* samples_counter_;
  EventJournal* journal_;
  uint64_t num_samples_ = 0;
};

// ---------------------------------------------------------------------------
// Sidecar

struct TopoMapMeta {
  std::string benchmark;
  std::string git_sha;
  bool quick = false;
  Time t = 0;
  /// Driver-specific scalars ("partitions_r0.2", ...), emitted in order
  /// under the "extras" key.
  std::vector<std::pair<std::string, double>> extras;
};

inline constexpr int kTopoMapSchemaVersion = 1;

/// Renders the schema-versioned `*.topo.json` document: metadata, the
/// structural summary, churn totals, per-cluster stats, bridge /
/// articulation lists, one entry per node (position, liveness, degree,
/// component, representative) and the observed links sorted by (from, to).
/// `positions` must have one entry per node; `links` is typically
/// LinkObserver::SortedLinks() (pass {} when nothing was observed).
/// Golden-frozen in topo_schema_test; consumed by tools/topo_report.py.
std::string TopoMapToJson(const TopologySnapshot& snap,
                          const std::vector<Point>& positions,
                          const std::vector<LinkStats>& links,
                          const TopoMapMeta& meta);

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_TOPO_H_
