// Acceptance bar for the telemetry engine's memory discipline (same
// global new/delete harness as event_queue_alloc_test): a disabled
// recorder must be a single branch — ZERO heap allocations — and an
// enabled one must sample every probe kind (gauge, counter rate, RSS,
// callback) allocation-free once constructed, because every ring is
// preallocated and instrument pointers are cached. The flight-recorder
// ring must likewise reach an allocation-free steady state once its
// string slots are warm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/metric_registry.h"
#include "obs/timeseries.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapq::obs {
namespace {

uint64_t Allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(TimeSeriesAllocTest, PushNeverAllocates) {
  TimeSeries series;  // rings preallocated at construction
  const uint64_t before = Allocations();
  // Far past both ring capacities, through several compactions.
  for (Time t = 0; t < 100000; ++t) {
    series.Push(t, static_cast<double>(t % 97));
  }
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_EQ(series.num_samples(), 100000u);
}

TEST(TimeSeriesAllocTest, EnabledSamplingIsAllocationFree) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("g");
  Counter* counter = registry.GetCounter("c");
  TelemetryRecorder recorder({}, &registry);
  recorder.TrackGauge("g");
  recorder.TrackCounterRate("c");
  recorder.TrackRss();
  double probe_value = 0.0;
  recorder.TrackProbe("p", [&probe_value] { return probe_value; });

  gauge->Set(1.0);
  recorder.SampleNow(0);  // warm-up (lazy libc machinery, if any)

  const uint64_t before = Allocations();
  for (Time t = 1; t <= 10000; ++t) {
    gauge->Set(static_cast<double>(t));
    counter->Inc(3);
    probe_value = static_cast<double>(t);
    recorder.SampleNow(t);
  }
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_EQ(recorder.num_samples(), 10001u);
  EXPECT_DOUBLE_EQ(recorder.series("c.rate")->last(), 3.0);
}

TEST(TimeSeriesAllocTest, DisabledRecorderIsASingleBranch) {
  MetricRegistry registry;
  TelemetryRecorder recorder({}, &registry);
  recorder.TrackGauge("g");
  recorder.TrackRss();
  recorder.set_enabled(false);

  const uint64_t before = Allocations();
  for (Time t = 0; t < 10000; ++t) recorder.SampleNow(t);
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_EQ(recorder.num_samples(), 0u);
}

TEST(TimeSeriesAllocTest, FlightRecorderSteadyStateIsAllocationFree) {
  FlightRecorder ring(64);
  const std::string line(120, 'x');
  // Warm-up: grow every slot's string capacity once around the ring.
  for (int i = 0; i < 128; ++i) ring.Write(line);

  const uint64_t before = Allocations();
  for (int i = 0; i < 1000; ++i) ring.Write(line);
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_EQ(ring.size(), 64u);
  EXPECT_EQ(ring.total_written(), 1128u);
}

}  // namespace
}  // namespace snapq::obs
