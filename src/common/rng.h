// Deterministic random number generation. Every stochastic component in the
// simulator draws from a stream derived from a single root seed, so that
// whole experiments are bit-reproducible and tests can assert exact results.
#ifndef SNAPQ_COMMON_RNG_H_
#define SNAPQ_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string_view>

namespace snapq {

/// SplitMix64 step: used for seed derivation / stream splitting. Public so
/// tests can verify stream independence properties.
uint64_t SplitMix64(uint64_t& state);

/// A seedable random stream. Wraps mt19937_64 with convenience samplers used
/// across the codebase. Copyable (copies duplicate the stream state).
class Rng {
 public:
  /// Seeds the stream from `seed` via SplitMix64 expansion (avoids the
  /// poor-seeding pitfalls of passing small seeds straight to mt19937).
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal draw.
  double Gaussian() { return Gaussian(0.0, 1.0); }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// A new independent stream split off this one. Child streams are
  /// decorrelated from the parent and from each other.
  Rng Split();

  /// A new stream derived from this one and a label; the same label always
  /// yields the same child (order-independent derivation for named
  /// subsystems).
  Rng SplitNamed(std::string_view label) const;

  /// Raw 64 bits, for callers that need them.
  uint64_t NextUint64();

  std::mt19937_64& engine() { return engine_; }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace snapq

#endif  // SNAPQ_COMMON_RNG_H_
