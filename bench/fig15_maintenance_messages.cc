// Figure 15: average number of protocol messages per node per snapshot
// update, for the Figure 14 runs. Only maintenance/election traffic counts
// (heartbeats, replies, invitations, candidate lists, accepts, recalls,
// acks) — not the query data flowing between updates.
//
// Paper shape: the longer range produces more messages per update (more
// nodes answer an invitation): ~4.5 at range 0.7 vs ~2 at 0.2, both well
// below the six-message bound of §5.1.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "longrun_common.h"

SNAPQ_BENCHMARK(fig15_maintenance_messages,
                "Figure 15: messages per node per snapshot update") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Figure 15: messages per node per snapshot update (weather data)",
      "same runs as Figure 14; protocol messages only");

  const Time horizon = ctx.Scaled(bench::kLongHorizon);
  const int reps = static_cast<int>(ctx.Scaled(bench::kLongRepetitions));

  TablePrinter table(
      {"range", "avg msgs/node/update", "max round avg", "min round avg"});
  for (double range : {0.2, 0.7}) {
    const auto per_run =
        exec::ParallelMap<std::vector<MaintenanceRoundStats>>(
            static_cast<size_t>(reps), ctx.jobs, [&](size_t r) {
              return bench::RunLongMaintenance(
                  range, bench::kBaseSeed + r, horizon);
            });
    RunningStats per_round;
    for (const auto& rounds : per_run) {
      for (const MaintenanceRoundStats& s : rounds) {
        per_round.Add(s.avg_messages_per_node);
      }
    }
    table.AddRow({TablePrinter::Num(range, 1),
                  TablePrinter::Num(per_round.mean(), 2),
                  TablePrinter::Num(per_round.max(), 2),
                  TablePrinter::Num(per_round.min(), 2)});
  }
  table.Print(std::cout);
  std::printf("\n(§5.1 bound: at most six protocol messages per maintained "
              "node per update)\n");
}
