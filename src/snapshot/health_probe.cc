#include "snapshot/health_probe.h"

#include "model/cache_line.h"
#include "snapshot/election.h"
#include "snapshot/node_state.h"

namespace snapq {

obs::HealthSample ProbeSnapshotHealth(
    Simulator& sim,
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents) {
  obs::HealthSample sample;
  sample.num_nodes = agents.size();

  const SnapshotView view = CaptureSnapshot(agents);
  for (const auto& agent : agents) {
    if (!sim.alive(agent->id())) continue;
    ++sample.num_live;
    switch (agent->mode()) {
      case NodeMode::kActive:
        ++sample.num_active;
        break;
      case NodeMode::kPassive:
        ++sample.num_passive;
        break;
      case NodeMode::kUndefined:
        ++sample.num_undefined;
        break;
    }
  }
  sample.num_spurious = view.CountSpurious();
  sample.violations = sim.registry().GetCounter("model.violations")->value();
  sample.reelections =
      sim.registry().GetCounter("maintenance.reelections")->value();

  // Mean staleness of the models backing current representations.
  const Time now = sim.now();
  double total_staleness = 0.0;
  uint64_t pairs = 0;
  for (const auto& agent : agents) {
    if (!sim.alive(agent->id())) continue;
    for (const auto& [member, epoch] : agent->represents()) {
      (void)epoch;
      if (!view.RepresentsCurrently(agent->id(), member)) continue;
      const CacheLine* line = agent->models().cache().Line(member);
      const Time seen =
          (line != nullptr && !line->empty()) ? line->newest().time : 0;
      total_staleness += static_cast<double>(now - seen);
      ++pairs;
    }
  }
  sample.mean_model_staleness =
      pairs > 0 ? total_staleness / static_cast<double>(pairs) : 0.0;
  return sample;
}

}  // namespace snapq
