file(REMOVE_RECURSE
  "CMakeFiles/spatial_field_test.dir/data/spatial_field_test.cc.o"
  "CMakeFiles/spatial_field_test.dir/data/spatial_field_test.cc.o.d"
  "spatial_field_test"
  "spatial_field_test.pdb"
  "spatial_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
