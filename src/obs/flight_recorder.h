// The flight recorder: a bounded ring of the most recent journal events,
// kept so that the moment a watchdog rule fires (or a paper-invariant
// check fails) the run can dump a `*.blackbox.json` — the breaching
// window's telemetry series, the SLO verdicts, the last N protocol events
// and the active trace ids — and a soak failure stays forensically
// debuggable after the process is gone.
//
// It is a JournalSink, so it tees transparently in front of whatever sink
// the journal already had (file, memory, none): install it with
// EventJournal::ReplaceSink and hand the previous sink to SetForward.
// Ring slots are std::strings whose capacity is reused, so steady-state
// recording does not grow memory.
#ifndef SNAPQ_OBS_FLIGHT_RECORDER_H_
#define SNAPQ_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/node_id.h"
#include "obs/journal.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"

namespace snapq::obs {

class FlightRecorder final : public JournalSink {
 public:
  explicit FlightRecorder(size_t capacity);

  void Write(const std::string& line) override;
  void Flush() override;

  /// Tee: every line is also forwarded to `next` (owned) — typically the
  /// sink the journal used before the recorder was installed.
  void SetForward(std::unique_ptr<JournalSink> next) {
    forward_ = std::move(next);
  }
  JournalSink* forward() { return forward_.get(); }
  /// Relinquishes the forward sink — the mid-run teardown counterpart of
  /// the splice: `journal.ReplaceSink(rec->TakeForward())` reinstates the
  /// original sink exactly once (the argument is fully evaluated before
  /// ReplaceSink destroys the recorder it returns).
  std::unique_ptr<JournalSink> TakeForward() { return std::move(forward_); }

  size_t capacity() const { return ring_.size(); }
  size_t size() const { return size_; }
  uint64_t total_written() const { return total_; }

  /// Visits retained lines oldest -> newest.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < size_; ++i) {
      fn(ring_[(start_ + i) % ring_.size()]);
    }
  }

 private:
  std::vector<std::string> ring_;
  size_t start_ = 0;
  size_t size_ = 0;
  uint64_t total_ = 0;
  std::unique_ptr<JournalSink> forward_;
};

/// Everything a blackbox dump captures beyond the journal ring. All
/// pointers are optional — absent subsystems emit empty sections.
struct BlackboxContext {
  std::string reason;  ///< "slo_breach", "invariant_failure", ...
  std::string benchmark;
  Time now = 0;
  const TelemetryRecorder* recorder = nullptr;
  const SloWatchdog* watchdog = nullptr;
  const Tracer* tracer = nullptr;
};

/// Writes the blackbox document (atomic replace). `recorder_ring` may be
/// null (no journal section). Returns false when the write failed.
bool WriteBlackbox(const FlightRecorder* recorder_ring,
                   const BlackboxContext& context, const std::string& path);

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_FLIGHT_RECORDER_H_
