file(REMOVE_RECURSE
  "CMakeFiles/snapq_data.dir/data/dataset.cc.o"
  "CMakeFiles/snapq_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/snapq_data.dir/data/random_walk.cc.o"
  "CMakeFiles/snapq_data.dir/data/random_walk.cc.o.d"
  "CMakeFiles/snapq_data.dir/data/spatial_field.cc.o"
  "CMakeFiles/snapq_data.dir/data/spatial_field.cc.o.d"
  "CMakeFiles/snapq_data.dir/data/timeseries.cc.o"
  "CMakeFiles/snapq_data.dir/data/timeseries.cc.o.d"
  "CMakeFiles/snapq_data.dir/data/weather.cc.o"
  "CMakeFiles/snapq_data.dir/data/weather.cc.o.d"
  "libsnapq_data.a"
  "libsnapq_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
