#include "sim/metrics.h"

#include "common/string_util.h"

namespace snapq {

void Metrics::Reset() { *this = Metrics(); }

std::string Metrics::ToString() const {
  std::string out = StrFormat(
      "messages: sent=%llu delivered=%llu lost=%llu cache_ops=%llu\n",
      static_cast<unsigned long long>(total_sent_),
      static_cast<unsigned long long>(total_delivered_),
      static_cast<unsigned long long>(total_lost_),
      static_cast<unsigned long long>(cache_ops_));
  for (size_t i = 0; i < kNumTypes; ++i) {
    if (sent_[i] == 0 && delivered_[i] == 0 && lost_[i] == 0) continue;
    out += StrFormat("  %-15s sent=%-8llu delivered=%-8llu lost=%llu\n",
                     MessageTypeName(static_cast<MessageType>(i)),
                     static_cast<unsigned long long>(sent_[i]),
                     static_cast<unsigned long long>(delivered_[i]),
                     static_cast<unsigned long long>(lost_[i]));
  }
  return out;
}

}  // namespace snapq
