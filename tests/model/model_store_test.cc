#include "model/model_store.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

CacheConfig SmallCache() {
  CacheConfig config;
  config.capacity_bytes = 64;  // 8 pairs
  return config;
}

TEST(ModelStoreTest, TracksOwnValue) {
  ModelStore store(3, SmallCache());
  EXPECT_EQ(store.self(), 3u);
  store.SetOwnValue(7.5, 42);
  EXPECT_DOUBLE_EQ(store.own_value(), 7.5);
  EXPECT_EQ(store.own_value_time(), 42);
}

TEST(ModelStoreTest, ObservePairsWithOwnValue) {
  ModelStore store(0, SmallCache());
  store.SetOwnValue(1.0, 0);
  store.Observe(5, 10.0, 0);
  store.SetOwnValue(2.0, 1);
  store.Observe(5, 20.0, 1);
  // Learned y = 10x: estimate at own value 3.0 is 30.
  store.SetOwnValue(3.0, 2);
  const std::optional<double> est = store.Estimate(5);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 30.0, 1e-9);
}

TEST(ModelStoreTest, EstimateWithoutHistoryIsNull) {
  ModelStore store(0, SmallCache());
  EXPECT_FALSE(store.Estimate(1).has_value());
}

TEST(ModelStoreTest, CanRepresentWithinThreshold) {
  ModelStore store(0, SmallCache());
  store.SetOwnValue(1.0, 0);
  store.Observe(5, 10.0, 0);
  store.SetOwnValue(2.0, 1);
  store.Observe(5, 20.0, 1);
  store.SetOwnValue(3.0, 2);
  const ErrorMetric sse = ErrorMetric::SumSquared();
  // Estimate is 30; actual 30.5 -> sse 0.25 <= 1.
  EXPECT_TRUE(store.CanRepresent(5, 30.5, sse, 1.0));
  // Actual 32 -> sse 4 > 1.
  EXPECT_FALSE(store.CanRepresent(5, 32.0, sse, 1.0));
}

TEST(ModelStoreTest, CanRepresentFalseWithoutModel) {
  ModelStore store(0, SmallCache());
  store.SetOwnValue(1.0, 0);
  EXPECT_FALSE(
      store.CanRepresent(9, 1.0, ErrorMetric::SumSquared(), 1000.0));
}

TEST(ModelStoreTest, DifferentMetricsDisagree) {
  ModelStore store(0, SmallCache());
  store.SetOwnValue(1.0, 0);
  store.Observe(5, 10.0, 0);
  store.SetOwnValue(2.0, 1);
  store.Observe(5, 20.0, 1);
  store.SetOwnValue(3.0, 2);
  // Estimate 30, actual 30.5: absolute err 0.5, sse 0.25, relative ~0.016.
  EXPECT_TRUE(store.CanRepresent(5, 30.5, ErrorMetric::Absolute(), 0.5));
  EXPECT_FALSE(store.CanRepresent(5, 30.5, ErrorMetric::Absolute(), 0.4));
  EXPECT_TRUE(store.CanRepresent(5, 30.5, ErrorMetric::Relative(), 0.02));
  EXPECT_FALSE(store.CanRepresent(5, 30.5, ErrorMetric::Relative(), 0.01));
}

}  // namespace
}  // namespace snapq
