// Microbenchmarks (google-benchmark) for the hot paths a sensor-node
// implementation would care about: model updates, cache admission,
// candidacy checks, plus whole-subsystem operations (election, routing
// tree, query execution, parsing).
#include <benchmark/benchmark.h>

#include <memory>

#include "api/experiment.h"
#include "model/cache_manager.h"
#include "net/topology.h"
#include "obs/journal.h"
#include "obs/metric_registry.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/parser.h"
#include "query/routing_tree.h"

namespace snapq {
namespace {

void BM_RegressionAddFit(benchmark::State& state) {
  Rng rng(1);
  RegressionStats stats;
  double x = 0.0;
  for (auto _ : state) {
    x += 0.5;
    stats.Add(x, 2.0 * x + rng.NextDouble());
    benchmark::DoNotOptimize(stats.Fit());
  }
}
BENCHMARK(BM_RegressionAddFit);

void BM_CacheObserve(benchmark::State& state) {
  const bool model_aware = state.range(0) == 0;
  CacheConfig config;
  config.capacity_bytes = 2048;
  config.policy =
      model_aware ? CachePolicy::kModelAware : CachePolicy::kRoundRobin;
  CacheManager cache(config);
  Rng rng(2);
  Time t = 0;
  for (auto _ : state) {
    const NodeId j = static_cast<NodeId>(rng.UniformInt(0, 98));
    benchmark::DoNotOptimize(
        cache.Observe(j, rng.Gaussian(0, 5), rng.Gaussian(0, 5), ++t));
  }
}
BENCHMARK(BM_CacheObserve)->Arg(0)->Arg(1)->ArgNames({"policy"});

void BM_CanRepresent(benchmark::State& state) {
  ModelStore store(0, CacheConfig{});
  store.SetOwnValue(1.0, 0);
  store.Observe(5, 10.0, 0);
  store.SetOwnValue(2.0, 1);
  store.Observe(5, 20.0, 1);
  const ErrorMetric metric = ErrorMetric::SumSquared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.CanRepresent(5, 30.5, metric, 1.0));
  }
}
BENCHMARK(BM_CanRepresent);

void BM_GlobalElection100Nodes(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SensitivityConfig config;
    config.num_classes = 10;
    config.seed = 7;
    auto net = BuildSensitivityNetwork(config);
    net->RunUntil(config.discovery_time);
    state.ResumeTiming();
    benchmark::DoNotOptimize(net->RunElection(config.discovery_time));
  }
}
BENCHMARK(BM_GlobalElection100Nodes)->Unit(benchmark::kMillisecond);

void BM_RoutingTreeBuild(benchmark::State& state) {
  Rng rng(3);
  const auto pts =
      PlaceUniform(static_cast<size_t>(state.range(0)), Rect::UnitSquare(),
                   rng);
  const LinkModel links(
      pts, std::vector<double>(static_cast<size_t>(state.range(0)), 0.3),
      0.0);
  const std::vector<bool> alive(static_cast<size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoutingTree::Build(links, alive, 0));
  }
}
BENCHMARK(BM_RoutingTreeBuild)->Arg(100)->Arg(400)->ArgNames({"nodes"});

void BM_SnapshotQuery(benchmark::State& state) {
  SensitivityConfig config;
  config.num_classes = 10;
  config.seed = 9;
  SensitivityOutcome outcome = RunSensitivityTrial(config);
  SensorNetwork& net = *outcome.network;
  Rng rng(4);
  for (auto _ : state) {
    ExecutionOptions options;
    options.sink = static_cast<NodeId>(rng.UniformInt(0, 99));
    const Point center{rng.NextDouble(), rng.NextDouble()};
    benchmark::DoNotOptimize(net.executor().ExecuteRegion(
        Rect::CenteredSquare(center, 0.32), /*use_snapshot=*/true,
        AggregateFunction::kSum, options));
  }
}
BENCHMARK(BM_SnapshotQuery);

// The same query round with a provenance hook attached: the per-round
// price EXPLAIN ANALYZE pays over plain execution (claims map copy,
// per-node depth vector). BM_SnapshotQuery is the null-hook baseline.
void BM_SnapshotQueryWithProvenance(benchmark::State& state) {
  SensitivityConfig config;
  config.num_classes = 10;
  config.seed = 9;
  SensitivityOutcome outcome = RunSensitivityTrial(config);
  SensorNetwork& net = *outcome.network;
  Rng rng(4);
  for (auto _ : state) {
    QueryProvenance prov;
    ExecutionOptions options;
    options.sink = static_cast<NodeId>(rng.UniformInt(0, 99));
    options.provenance = &prov;
    const Point center{rng.NextDouble(), rng.NextDouble()};
    benchmark::DoNotOptimize(net.executor().ExecuteRegion(
        Rect::CenteredSquare(center, 0.32), /*use_snapshot=*/true,
        AggregateFunction::kSum, options));
    benchmark::DoNotOptimize(prov.claims.size());
  }
}
BENCHMARK(BM_SnapshotQueryWithProvenance);

// A full EXPLAIN plan (no execution): predicate resolution + PlanRegion +
// per-node provenance rows. What an interactive EXPLAIN costs end to end.
void BM_ExplainPlan(benchmark::State& state) {
  SensitivityConfig config;
  config.num_classes = 10;
  config.seed = 9;
  SensitivityOutcome outcome = RunSensitivityTrial(config);
  SensorNetwork& net = *outcome.network;
  const QuerySpec spec =
      *ParseQuery("EXPLAIN SELECT avg(value) FROM sensors "
                  "WHERE loc IN RECT(0.25, 0.25, 0.75, 0.75) USE SNAPSHOT");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExplainQuery(net.executor(), spec, {}));
  }
}
BENCHMARK(BM_ExplainPlan);

// The observability layer's hot-path costs: a cached counter bump is what
// every Simulator::Send pays; a disabled journal emit is the price of an
// unobserved protocol event (must stay one branch — the field-building
// lambda never runs).
void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_ObsCounterInc);

// The Send hot path with tracing in its three states: detached, attached
// at sampling 0 (every cost must hide behind one branch — the acceptance
// bar is "no extra heap allocations", enforced by trace_alloc_test), and
// fully sampled (span + delivery records per transmission).
void BM_SimulatorSendTraced(benchmark::State& state) {
  Simulator sim({{0, 0}, {1, 0}, {2, 0}}, {1.5, 1.5, 1.5}, SimConfig{});
  obs::TracerConfig config;
  config.sampling = static_cast<double>(state.range(0)) / 100.0;
  config.max_spans = 1u << 20;
  obs::Tracer tracer(config);
  if (state.range(0) >= 0) sim.SetTracer(&tracer);
  Message m;
  m.type = MessageType::kData;
  m.from = 0;
  m.to = kBroadcastId;
  m.value = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Send(m));
    sim.RunAll();
    if (tracer.spans().size() > (1u << 19)) tracer.Clear();
  }
}
BENCHMARK(BM_SimulatorSendTraced)
    ->Arg(-1)   // no tracer attached
    ->Arg(0)    // tracer attached, sampling 0 (must match -1)
    ->Arg(100)  // sampling 1.0
    ->ArgNames({"sampling_pct"});

void BM_ObsJournalEmitDisabled(benchmark::State& state) {
  obs::EventJournal journal;  // no sink: disabled
  int64_t t = 0;
  for (auto _ : state) {
    journal.Emit("bench.event", ++t, [&](obs::JournalEvent& e) {
      e.Node(17).Int("expensive", t);
    });
    benchmark::DoNotOptimize(journal.events_emitted());
  }
}
BENCHMARK(BM_ObsJournalEmitDisabled);

void BM_ParseQuery(benchmark::State& state) {
  const std::string sql =
      "SELECT loc, avg(value) FROM sensors WHERE loc IN "
      "SOUTH_EAST_QUADRANT SAMPLE INTERVAL 1s FOR 5min USE SNAPSHOT "
      "ERROR 0.5";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseQuery(sql));
  }
}
BENCHMARK(BM_ParseQuery);

}  // namespace
}  // namespace snapq

BENCHMARK_MAIN();
