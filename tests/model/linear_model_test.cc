#include "model/linear_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace snapq {
namespace {

RegressionStats FromPairs(const std::vector<std::pair<double, double>>& ps) {
  RegressionStats s;
  for (const auto& [x, y] : ps) s.Add(x, y);
  return s;
}

double DirectSse(const std::vector<std::pair<double, double>>& ps,
                 const LinearModel& m) {
  double sum = 0.0;
  for (const auto& [x, y] : ps) {
    const double e = y - m.Estimate(x);
    sum += e * e;
  }
  return sum;
}

TEST(LinearModelTest, EstimateIsAffine) {
  const LinearModel m{2.0, -1.0};
  EXPECT_DOUBLE_EQ(m.Estimate(3.0), 5.0);
  EXPECT_DOUBLE_EQ(m.Estimate(0.0), -1.0);
}

TEST(RegressionStatsTest, EmptyFitsZeroModel) {
  RegressionStats s;
  EXPECT_EQ(s.Fit(), (LinearModel{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(s.AverageSse({1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(s.AverageNoAnswerSse(), 0.0);
}

TEST(RegressionStatsTest, SinglePairFitsConstant) {
  // Lemma 1 degenerate case: n = 1 -> a = 0, b = mean(y).
  RegressionStats s;
  s.Add(3.0, 7.0);
  const LinearModel m = s.Fit();
  EXPECT_DOUBLE_EQ(m.a, 0.0);
  EXPECT_DOUBLE_EQ(m.b, 7.0);
}

TEST(RegressionStatsTest, ConstantPredictorFitsMeanOfY) {
  // Lemma 1 degenerate case: x constant -> a = 0, b = mean(y).
  const RegressionStats s = FromPairs({{2.0, 1.0}, {2.0, 3.0}, {2.0, 5.0}});
  const LinearModel m = s.Fit();
  EXPECT_DOUBLE_EQ(m.a, 0.0);
  EXPECT_DOUBLE_EQ(m.b, 3.0);
}

TEST(RegressionStatsTest, ExactLineIsRecovered) {
  const RegressionStats s =
      FromPairs({{0.0, 1.0}, {1.0, 3.0}, {2.0, 5.0}, {-1.0, -1.0}});
  const LinearModel m = s.Fit();
  EXPECT_NEAR(m.a, 2.0, 1e-12);
  EXPECT_NEAR(m.b, 1.0, 1e-12);
  EXPECT_NEAR(s.SseSum(m), 0.0, 1e-9);
}

TEST(RegressionStatsTest, KnownTextbookRegression) {
  // y on x for {(1,2),(2,3),(3,5)}: a = 1.5, b = 10/3 - 1.5*2 = 1/3.
  const RegressionStats s = FromPairs({{1, 2}, {2, 3}, {3, 5}});
  const LinearModel m = s.Fit();
  EXPECT_NEAR(m.a, 1.5, 1e-12);
  EXPECT_NEAR(m.b, 1.0 / 3.0, 1e-12);
}

TEST(RegressionStatsTest, SseSumMatchesDirectComputation) {
  const std::vector<std::pair<double, double>> pairs = {
      {0.5, 1.2}, {1.5, 0.7}, {2.5, 3.1}, {3.0, 2.2}};
  const RegressionStats s = FromPairs(pairs);
  for (const LinearModel m :
       {LinearModel{0.0, 0.0}, LinearModel{1.0, 0.5}, LinearModel{-2.0, 3.0}}) {
    EXPECT_NEAR(s.SseSum(m), DirectSse(pairs, m), 1e-9);
  }
}

TEST(RegressionStatsTest, NoAnswerSseIsMeanOfSquares) {
  const RegressionStats s = FromPairs({{1, 2}, {2, -4}});
  EXPECT_DOUBLE_EQ(s.NoAnswerSseSum(), 20.0);
  EXPECT_DOUBLE_EQ(s.AverageNoAnswerSse(), 10.0);
}

TEST(RegressionStatsTest, BenefitIsNoAnswerMinusModelSse) {
  const RegressionStats s = FromPairs({{1, 2}, {2, 4}});
  const LinearModel perfect = s.Fit();
  EXPECT_NEAR(s.Benefit(perfect), s.AverageNoAnswerSse(), 1e-9);
  EXPECT_NEAR(s.BenefitSum(perfect), s.NoAnswerSseSum(), 1e-9);
}

TEST(RegressionStatsTest, RemoveUndoesAdd) {
  RegressionStats s = FromPairs({{1, 2}, {2, 3}, {3, 5}});
  s.Add(10.0, -7.0);
  s.Remove(10.0, -7.0);
  const LinearModel m = s.Fit();
  EXPECT_NEAR(m.a, 1.5, 1e-9);
  EXPECT_NEAR(m.b, 1.0 / 3.0, 1e-9);
  EXPECT_EQ(s.n(), 3u);
}

TEST(RegressionStatsTest, RemoveToEmptyResetsCleanly) {
  RegressionStats s;
  s.Add(1.0, 2.0);
  s.Remove(1.0, 2.0);
  EXPECT_EQ(s.n(), 0u);
  EXPECT_DOUBLE_EQ(s.sum_x(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum_yy(), 0.0);
}

TEST(RegressionStatsDeathTest, RemoveFromEmptyAborts) {
  RegressionStats s;
  EXPECT_DEATH(s.Remove(1.0, 1.0), "SNAPQ_CHECK");
}

// ---------------------------------------------------------------------------
// Property test: Lemma 1 optimality. The fitted (a*, b*) must not be beaten
// by any perturbed model on randomly generated pair sets.
// ---------------------------------------------------------------------------

class Lemma1Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1Property, FitMinimizesSse) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = static_cast<size_t>(rng.UniformInt(2, 30));
  std::vector<std::pair<double, double>> pairs;
  RegressionStats s;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(-50.0, 50.0);
    const double y = 3.0 * x - 7.0 + rng.Gaussian(0.0, 5.0);
    pairs.emplace_back(x, y);
    s.Add(x, y);
  }
  const LinearModel best = s.Fit();
  const double best_sse = DirectSse(pairs, best);
  for (int k = 0; k < 64; ++k) {
    LinearModel perturbed = best;
    perturbed.a += rng.UniformDouble(-1.0, 1.0);
    perturbed.b += rng.UniformDouble(-5.0, 5.0);
    EXPECT_GE(DirectSse(pairs, perturbed) + 1e-9, best_sse);
  }
  // Gradient check: partial derivatives vanish at the optimum.
  const double eps = 1e-6;
  const double up_a =
      DirectSse(pairs, {best.a + eps, best.b}) - best_sse;
  const double up_b =
      DirectSse(pairs, {best.a, best.b + eps}) - best_sse;
  EXPECT_GE(up_a, -1e-6);
  EXPECT_GE(up_b, -1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Lemma1Property,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace snapq
