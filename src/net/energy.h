// Energy accounting. The paper's model (§6.2): each node starts with a
// battery equal to the cost of 500 transmissions; running the cache
// maintenance algorithm costs one tenth of a transmission; nodes with an
// empty battery are dead (cannot send, receive or compute).
#ifndef SNAPQ_NET_ENERGY_H_
#define SNAPQ_NET_ENERGY_H_

#include <cstdint>
#include <limits>

namespace snapq {

/// Cost constants, in units of one transmission.
struct EnergyModel {
  double tx_cost = 1.0;
  /// The paper does not charge for receiving; configurable for ablations.
  double rx_cost = 0.0;
  /// One execution of the cache-maintenance algorithm (§6.2: "one tenth of
  /// the cost of transmitting a message", called an overestimate for Mica
  /// motes where 1 bit tx ~= 1000 CPU ops).
  double cache_op_cost = 0.1;
  /// Initial battery, in transmissions (§6.2: 500).
  double initial_battery = 500.0;

  /// An effectively infinite battery, for experiments that ignore energy.
  static EnergyModel Unlimited() {
    EnergyModel m;
    m.initial_battery = std::numeric_limits<double>::infinity();
    return m;
  }

  /// True when the model never kills a node (infinite initial battery).
  bool unlimited() const {
    return initial_battery == std::numeric_limits<double>::infinity();
  }
};

/// What one Battery::Consume call did. Distinguishing "this drain killed
/// the node" from "the node was already dead" lets the charge sites emit
/// node_death events exactly once per node.
enum class DrainOutcome : uint8_t {
  kOk = 0,       ///< charge applied, node still alive
  kDiedNow,      ///< charge (or overdraft) applied and emptied the battery
  kAlreadyDead,  ///< the node was dead before the call; nothing applied
};

/// Per-node battery with strict accounting: a drain either fits in the
/// remaining charge (and is applied) or kills the node.
class Battery {
 public:
  Battery() : remaining_(0.0) {}
  explicit Battery(double capacity) : remaining_(capacity) {}

  /// Attempts to consume `amount`. When `applied` is non-null it receives
  /// the charge actually drained: `amount` normally, the remaining charge
  /// on an overdraft kill, 0 when the node was already dead — so a ledger
  /// summing applied drains reproduces `initial - remaining()` exactly.
  DrainOutcome Consume(double amount, double* applied = nullptr);

  bool alive() const { return remaining_ > 0.0; }
  double remaining() const { return remaining_; }

  /// Immediately drains the battery (forced node failure).
  void Kill() { remaining_ = 0.0; }

 private:
  double remaining_;
};

}  // namespace snapq

#endif  // SNAPQ_NET_ENERGY_H_
