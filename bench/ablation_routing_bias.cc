// Ablation for the paper's §3.1 remark: "The probability of [a represented
// node routing for a query] can be reduced by having the routing protocol
// favor paths through representative nodes... This will result in further
// reduction in the number of sensor nodes used during snapshot queries
// than those presented in Table 3."
//
// This driver re-runs the Table-3 measurement with and without the
// representative-favoring routing-tree bias.
#include <cmath>
#include <iostream>
#include <limits>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "query/executor.h"

namespace {

using namespace snapq;

double SavingsFor(size_t num_classes, double range, double w_squared,
                  bool favor_reps, int repetitions, int queries, int jobs) {
  const auto samples = exec::ParallelMap<double>(
      static_cast<size_t>(repetitions), jobs, [&](size_t r) {
        SensitivityConfig config;
        config.num_classes = num_classes;
        config.transmission_range = range;
        config.seed = bench::kBaseSeed + r;
        SensitivityOutcome outcome = RunSensitivityTrial(config);
        SensorNetwork& net = *outcome.network;

        Rng rng(config.seed ^ 0x51AB5EEDULL);
        const double w = std::sqrt(w_squared);
        uint64_t regular_total = 0;
        uint64_t snapshot_total = 0;
        for (int q = 0; q < queries; ++q) {
          ExecutionOptions options;
          options.sink = static_cast<NodeId>(
              rng.UniformInt(0, static_cast<int64_t>(net.num_nodes()) - 1));
          options.favor_representatives = favor_reps;
          const Point center{rng.NextDouble(), rng.NextDouble()};
          const Rect region = Rect::CenteredSquare(center, w);
          regular_total += net.executor()
                               .ExecuteRegion(region, false,
                                              AggregateFunction::kSum, options)
                               .participants;
          snapshot_total += net.executor()
                                .ExecuteRegion(region, true,
                                               AggregateFunction::kSum,
                                               options)
                                .participants;
        }
        if (regular_total == 0) {
          return std::numeric_limits<double>::quiet_NaN();
        }
        return 1.0 - static_cast<double>(snapshot_total) /
                         static_cast<double>(regular_total);
      });
  RunningStats savings;
  for (double sample : samples) {
    if (!std::isnan(sample)) savings.Add(sample);
  }
  return savings.mean();
}

}  // namespace

SNAPQ_BENCHMARK(ablation_routing_bias,
                "Ablation: routing biased toward representatives") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Ablation: routing biased toward representatives (§3.1)",
      "Table-3 measurement (K=1, 200 queries) with plain vs "
      "representative-favoring aggregation trees");

  const int queries = static_cast<int>(ctx.Scaled(200));
  TablePrinter table({"query range", "range", "plain savings",
                      "rep-biased savings"});
  for (double w2 : {0.1, 0.5}) {
    for (double range : {0.2, 0.7}) {
      table.AddRow(
          {"W^2 = " + TablePrinter::Num(w2, 1), TablePrinter::Num(range, 1),
           TablePrinter::Num(
               100.0 * SavingsFor(1, range, w2, false, ctx.repetitions,
                                  queries, ctx.jobs),
               0) + "%",
           TablePrinter::Num(
               100.0 * SavingsFor(1, range, w2, true, ctx.repetitions,
                                  queries, ctx.jobs),
               0) + "%"});
    }
  }
  table.Print(std::cout);
}
