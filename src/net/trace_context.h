// Causal trace context carried by every protocol message. Modeled after
// W3C trace-context: a trace groups all work caused by one root event (an
// election trigger, a heartbeat round, a query injection, a detected model
// violation); spans form a tree under that root via parent_span_id.
//
// This header is dependency-free so both the wire layer (Message embeds a
// TraceContext) and the observability layer (the Tracer records spans) can
// share it without a cycle.
#ifndef SNAPQ_NET_TRACE_CONTEXT_H_
#define SNAPQ_NET_TRACE_CONTEXT_H_

#include <cstdint>

namespace snapq {

/// The one radio-event taxonomy shared by the legacy ring recorder
/// (sim/trace.h) and the causal tracer's per-message delivery records.
enum class RadioEventKind { kSend, kDeliver, kSnoop, kLoss };

/// Stable lowercase name ("send", "deliver", "snoop", "loss").
const char* RadioEventKindName(RadioEventKind kind);

/// Ids threaded through the protocol. All ids are minted by the Tracer;
/// id 0 means "absent": trace_id 0 = the message/event is not part of a
/// sampled trace, parent_span_id 0 = the span is a trace root.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool sampled() const { return trace_id != 0; }
};

}  // namespace snapq

#endif  // SNAPQ_NET_TRACE_CONTEXT_H_
