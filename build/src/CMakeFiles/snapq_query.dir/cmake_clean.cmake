file(REMOVE_RECURSE
  "CMakeFiles/snapq_query.dir/query/aggregation.cc.o"
  "CMakeFiles/snapq_query.dir/query/aggregation.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/ast.cc.o"
  "CMakeFiles/snapq_query.dir/query/ast.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/catalog.cc.o"
  "CMakeFiles/snapq_query.dir/query/catalog.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/continuous.cc.o"
  "CMakeFiles/snapq_query.dir/query/continuous.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/executor.cc.o"
  "CMakeFiles/snapq_query.dir/query/executor.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/innetwork.cc.o"
  "CMakeFiles/snapq_query.dir/query/innetwork.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/lexer.cc.o"
  "CMakeFiles/snapq_query.dir/query/lexer.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/multipath.cc.o"
  "CMakeFiles/snapq_query.dir/query/multipath.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/parser.cc.o"
  "CMakeFiles/snapq_query.dir/query/parser.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/predicate.cc.o"
  "CMakeFiles/snapq_query.dir/query/predicate.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/routing_tree.cc.o"
  "CMakeFiles/snapq_query.dir/query/routing_tree.cc.o.d"
  "CMakeFiles/snapq_query.dir/query/sketch.cc.o"
  "CMakeFiles/snapq_query.dir/query/sketch.cc.o.d"
  "libsnapq_query.a"
  "libsnapq_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
