// snapq_shell: an interactive shell over a simulated deployment. Loads a
// CSV dataset (one column per node; see Dataset::ReadCsv) or generates the
// paper's synthetic workload, trains models, elects a snapshot and then
// reads queries from stdin.
//
//   $ ./build/examples/snapq_shell [data.csv]
//   snapq> SELECT avg(value) FROM sensors WHERE loc IN NORTH_HALF USE SNAPSHOT
//   snapq> \snapshot
//   snapq> \quit
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "api/network.h"
#include "common/string_util.h"
#include "data/random_walk.h"
#include "obs/health_monitor.h"
#include "obs/journal.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "obs/trace_analyzer.h"
#include "obs/tracer.h"

using namespace snapq;

namespace {

void PrintResult(const QueryResult& r) {
  if (r.aggregate.has_value()) {
    std::printf("%.4f\n", *r.aggregate);
  } else {
    std::printf("%-5s %-5s %10s  %s\n", "loc", "by", "value", "");
    for (const QueryRow& row : r.rows) {
      if (row.model_error.has_value()) {
        std::printf("%-5u %-5u %10.4f  (estimated, err %+.4f)\n", row.loc,
                    row.reporter, row.value, *row.model_error);
      } else {
        std::printf("%-5u %-5u %10.4f  %s\n", row.loc, row.reporter,
                    row.value, row.estimated ? "(estimated)" : "");
      }
    }
  }
  std::printf("-- %zu participants, %zu responders, coverage %.0f%%\n",
              r.participants, r.responders, 100.0 * r.coverage);
}

void PrintSnapshot(SensorNetwork& net) {
  const SnapshotView view = net.Snapshot();
  std::printf("%zu representatives, %zu passive, %zu spurious\n",
              view.CountActive(), view.CountPassive(), view.CountSpurious());
  for (NodeId i = 0; i < net.num_nodes(); ++i) {
    if (view.node(i).mode != NodeMode::kActive) continue;
    std::printf("  rep %u at (%.2f, %.2f) represents %zu nodes\n", i,
                net.position(i).x, net.position(i).y,
                view.node(i).represents.size());
  }
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  SELECT ...            run a query (append USE SNAPSHOT to use the\n"
      "                        representatives; see README for the dialect)\n"
      "  EXPLAIN [ANALYZE] SELECT ...\n"
      "                        show the plan: predicate resolution, routing,\n"
      "                        per-node provenance and cost (ANALYZE also\n"
      "                        executes and joins estimated vs actual cost)\n"
      "  \\explain              EXPLAIN ANALYZE the last query\n"
      "  \\snapshot             show the current representative set\n"
      "  \\elect                re-run representative discovery\n"
      "  \\regions              list named regions\n"
      "  \\metrics [substr]     dump the metric registry (CSV), optionally\n"
      "                        filtered to names containing substr\n"
      "  \\journal [n]          show the last n journal events (default 20)\n"
      "  \\health               sample snapshot health (coverage, violation\n"
      "                        rate, spurious reps, model staleness), plus\n"
      "                        since-start trends and SLO rule status\n"
      "  \\accuracy             ground-truth audit: per-node error table\n"
      "                        (audited count, violations, mean/p95/max\n"
      "                        |error|) and the violation-rate sparkline\n"
      "  \\energy               energy ledger: per-cause joule attribution,\n"
      "                        remaining charge, deaths and lifetime\n"
      "                        forecasts, plus the burn-rate sparkline\n"
      "  \\topo                 topology & churn: partitions, bridges,\n"
      "                        articulation nodes, per-cluster radius/depth,\n"
      "                        weakest observed links and churn rates\n"
      "  \\timeline [substr]    sparkline every telemetry series (health,\n"
      "                        message rates, RSS), optionally filtered\n"
      "  \\trace [id]           list recorded causal traces, or show one\n"
      "                        trace's report with invariant verdicts\n"
      "  \\profile              hot-path profile since startup: operation\n"
      "                        counts/rates and phase latency percentiles\n"
      "  \\help                 this text\n"
      "  \\quit                 exit\n");
}

/// First whitespace-delimited token of `line` (keywords are
/// case-insensitive, so compare with EqualsIgnoreCase).
std::string_view FirstWord(std::string_view line) {
  const std::string_view stripped = StripWhitespace(line);
  const size_t space = stripped.find_first_of(" \t");
  return space == std::string_view::npos ? stripped : stripped.substr(0, space);
}

/// Unicode sparkline over the series' retained bin means (newest right),
/// normalized to the displayed window's envelope.
std::string Sparkline(const obs::TimeSeries& series, size_t width = 48) {
  static const char* const kBlocks[] = {"▁", "▂", "▃", "▄",
                                        "▅", "▆", "▇", "█"};
  const size_t bins = series.num_bins();
  if (bins == 0) return "(no samples)";
  const size_t first = bins > width ? bins - width : 0;
  double lo = series.bin(first).mean(), hi = lo;
  for (size_t i = first; i < bins; ++i) {
    lo = std::min(lo, series.bin(i).mean());
    hi = std::max(hi, series.bin(i).mean());
  }
  std::string out;
  for (size_t i = first; i < bins; ++i) {
    const double norm =
        hi > lo ? (series.bin(i).mean() - lo) / (hi - lo) : 0.5;
    out += kBlocks[std::min<size_t>(7, static_cast<size_t>(norm * 8.0))];
  }
  return out;
}

void PrintSeriesLine(const std::string& name, const obs::TimeSeries& s) {
  std::printf("  %-24s %s\n", name.c_str(), Sparkline(s).c_str());
  std::printf("  %-24s last %.4g  ewma %.4g  min %.4g  mean %.4g  max %.4g"
              "  slope %+.2e  (%llu samples)\n",
              "", s.last(), s.ewma(), s.min_seen(), s.mean(), s.max_seen(),
              s.Slope(), static_cast<unsigned long long>(s.num_samples()));
}

}  // namespace

int main(int argc, char** argv) {
  // Data: CSV if given, else the paper's K=10 random walk.
  Result<Dataset> data = [&]() -> Result<Dataset> {
    if (argc > 1) return Dataset::ReadCsv(argv[1]);
    Rng rng(7);
    RandomWalkConfig walk;
    walk.num_nodes = 100;
    walk.num_classes = 10;
    walk.horizon = 101;
    return Dataset::Create(GenerateRandomWalk(walk, rng).series);
  }();
  if (!data.ok()) {
    std::fprintf(stderr, "failed to load data: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  NetworkConfig config;
  config.num_nodes = data->num_nodes();
  config.snapshot.threshold = 1.0;
  config.seed = 42;
  // The paper's finite battery (500 transmissions) so the energy ledger
  // has real drains to attribute — the scripted bootstrap uses a small
  // fraction of it, so interactive sessions never start with dead nodes.
  config.energy = EnergyModel();
  SensorNetwork net(config);
  // The simulated deployment carries one reading per node; expose it under
  // the conventional measurement name too so `avg(temperature)` works.
  net.executor().catalog().RegisterMeasurementColumn("temperature");
  // Record protocol events (election transitions, cache evictions, query
  // plans) in memory for the \journal command. Installed before training
  // so the initial election is captured too.
  auto* journal_sink = static_cast<obs::MemoryJournalSink*>(
      net.sim().journal().SetSink(
          std::make_unique<obs::MemoryJournalSink>(10000)));
  // Trace every protocol root cause from the start so the initial election
  // (and later re-elections / queries) shows up under \trace.
  obs::Tracer& tracer = net.EnableTracing();
  // Telemetry: trend the health gauges, message rates and RSS from tick 0
  // (sampled every 5 ticks during the scripted phase; \health and
  // \timeline take a fresh sample on demand afterwards).
  obs::TelemetryConfig telemetry_config;
  telemetry_config.sample_interval = 5;
  net.EnableTelemetry(telemetry_config);
  // Ground-truth accuracy auditing: every query below is audited against
  // the configured T, and each telemetry sample sweeps the representation
  // state — \accuracy reads the result.
  net.EnableAccuracyAudit();
  // Per-joule drain attribution from tick 0 (\energy, and EXPLAIN ANALYZE
  // gains its per-query joule breakdown).
  net.EnableEnergyLedger();
  // Per-link delivery stats plus structural/churn analysis per telemetry
  // sample (\topo reads the result).
  net.EnableTopologyMonitor();
  // Profile from the start too, so \profile covers the initial election
  // and every interactive query.
  obs::Profiler::Enable();
  const Time horizon = static_cast<Time>(data->horizon());
  if (Status s = net.AttachDataset(std::move(*data)); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const Time train = std::min<Time>(10, horizon);
  net.ScheduleTrainingBroadcasts(0, train);
  net.ScheduleTelemetrySampling(0, horizon);
  net.RunUntil(horizon - 1);
  const ElectionStats stats = net.RunElection(horizon - 1);
  // SLO rules only make sense once a snapshot exists — installing them
  // here keeps the pre-election bootstrap (coverage 0 by definition)
  // from arming a spurious breach.
  net.AddSloRule("health.coverage value >= 0.5 for 50");
  net.AddSloRule("proc.rss_kb slope <= 64");
  std::printf("loaded %zu nodes, %lld time units; snapshot has %zu "
              "representatives (T=%.1f)\n",
              net.num_nodes(), static_cast<long long>(horizon),
              stats.num_active, config.snapshot.threshold);
  PrintHelp();

  std::string line;
  std::string last_query;  // last successful plain query, for \explain
  // Interactive queries drain the (finite) batteries like any deployed
  // workload would, so \energy attributes them and EXPLAIN ANALYZE's
  // joule column reflects what the query actually cost.
  ExecutionOptions exec_options;
  exec_options.charge_energy = true;
  std::printf("snapq> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\help") {
      PrintHelp();
    } else if (line == "\\snapshot") {
      PrintSnapshot(net);
    } else if (line == "\\elect") {
      const ElectionStats s = net.RunElection(net.now());
      std::printf("re-elected: %zu representatives (avg %.1f msgs/node)\n",
                  s.num_active, s.avg_messages_per_node);
    } else if (line == "\\regions") {
      for (const std::string& name : net.executor().catalog().RegionNames()) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (line.rfind("\\metrics", 0) == 0) {
      const std::string filter(
          StripWhitespace(std::string_view(line).substr(8)));
      std::istringstream csv(net.sim().registry().ToCsv());
      std::string row;
      bool first = true;
      while (std::getline(csv, row)) {
        // Always keep the CSV header; filter the data rows by substring.
        if (first || filter.empty() || row.find(filter) != std::string::npos) {
          std::printf("%s\n", row.c_str());
        }
        first = false;
      }
    } else if (line == "\\explain") {
      if (last_query.empty()) {
        std::printf("nothing to explain yet — run a query first, e.g.\n"
                    "  SELECT avg(value) FROM sensors USE SNAPSHOT\n"
                    "then \\explain replays it as EXPLAIN ANALYZE.\n");
      } else {
        const Result<ExplainReport> report =
            net.Explain("EXPLAIN ANALYZE " + last_query, exec_options);
        if (report.ok()) {
          std::printf("%s", report->ToString().c_str());
        } else {
          std::printf("error: %s\n", report.status().ToString().c_str());
        }
      }
    } else if (line == "\\profile") {
      std::printf("%s", obs::Profiler::Global().ToTable().c_str());
    } else if (line == "\\health") {
      net.SampleTelemetry();
      std::printf("%s", net.health_monitor()->ToString().c_str());
      std::printf("since start:\n");
      net.telemetry()->ForEachSeries([&](const std::string& name,
                                         const obs::TimeSeries& s) {
        if (name.rfind("health.", 0) != 0 || s.num_samples() == 0) return;
        const size_t breaches = net.watchdog()->BreachesFor(name);
        std::printf("  %-24s min %.4g  mean %.4g  max %.4g  (%zu breach%s)\n",
                    name.c_str(), s.min_seen(), s.mean(), s.max_seen(),
                    breaches, breaches == 1 ? "" : "es");
      });
      std::printf("%s", net.watchdog()->ToString().c_str());
    } else if (line == "\\accuracy") {
      net.SampleTelemetry();  // fresh sweep audit + telemetry sample
      std::printf("%s", net.accuracy_auditor()->ToTable().c_str());
      if (const obs::TimeSeries* s =
              net.telemetry()->series("accuracy.violation_rate")) {
        PrintSeriesLine("accuracy.violation_rate", *s);
      }
    } else if (line == "\\energy") {
      net.SampleTelemetry();  // fresh gauges + forecast series
      std::printf("%s", net.energy_ledger()->ToTable().c_str());
      if (const obs::TimeSeries* s =
              net.telemetry()->series("energy.burn_rate")) {
        PrintSeriesLine("energy.burn_rate", *s);
      }
    } else if (line == "\\topo") {
      net.SampleTelemetry();  // fresh topology analysis + churn sweep
      std::printf("%s", net.topology_monitor()->ToString().c_str());
      if (const obs::TimeSeries* s =
              net.telemetry()->series("topo.partitions")) {
        PrintSeriesLine("topo.partitions", *s);
      }
    } else if (line.rfind("\\timeline", 0) == 0) {
      net.SampleTelemetry();
      const std::string filter(
          StripWhitespace(std::string_view(line).substr(9)));
      bool any = false;
      net.telemetry()->ForEachSeries([&](const std::string& name,
                                         const obs::TimeSeries& s) {
        if (!filter.empty() && name.find(filter) == std::string::npos) return;
        PrintSeriesLine(name, s);
        any = true;
      });
      if (!any) {
        std::printf("no series matches '%s'\n", filter.c_str());
      } else {
        std::printf("-- %llu samples every %lld ticks (on demand after "
                    "t=%lld); \\timeline <substr> to filter\n",
                    static_cast<unsigned long long>(
                        net.telemetry()->num_samples()),
                    static_cast<long long>(
                        net.telemetry()->config().sample_interval),
                    static_cast<long long>(horizon));
      }
    } else if (line.rfind("\\trace", 0) == 0) {
      const obs::TraceAnalyzer analyzer(&tracer);
      uint64_t id = 0;
      if (line.size() > 7) {
        id = std::strtoull(line.c_str() + 7, nullptr, 10);
      }
      if (id == 0) {
        for (const obs::TraceReport& report : analyzer.AnalyzeAll()) {
          std::printf("  trace %llu  %-14s  %zu spans, %zu msgs, "
                      "[%lld..%lld]  %s\n",
                      static_cast<unsigned long long>(report.trace_id),
                      obs::TraceRootKindName(report.root_kind),
                      report.num_spans, report.num_messages,
                      static_cast<long long>(report.sim_start),
                      static_cast<long long>(report.sim_end),
                      report.AllPass() ? "PASS" : "FAIL");
        }
        std::printf("-- %llu traces, %zu spans (%llu dropped); "
                    "\\trace <id> for details\n",
                    static_cast<unsigned long long>(tracer.num_traces()),
                    tracer.spans().size(),
                    static_cast<unsigned long long>(tracer.dropped_spans()));
      } else if (std::optional<obs::TraceReport> report = analyzer.Analyze(id);
                 report.has_value()) {
        std::printf("%s", report->ToString().c_str());
      } else {
        std::printf("no trace %llu\n", static_cast<unsigned long long>(id));
      }
    } else if (line.rfind("\\journal", 0) == 0) {
      size_t limit = 20;
      if (line.size() > 9) {
        limit = static_cast<size_t>(std::strtoul(line.c_str() + 9, nullptr, 10));
        if (limit == 0) limit = 20;
      }
      const std::vector<std::string>& events = journal_sink->lines();
      const size_t start = events.size() > limit ? events.size() - limit : 0;
      for (size_t i = start; i < events.size(); ++i) {
        std::printf("%s\n", events[i].c_str());
      }
      std::printf("-- %llu events emitted (%zu retained)\n",
                  static_cast<unsigned long long>(
                      net.sim().journal().events_emitted()),
                  events.size());
    } else if (EqualsIgnoreCase(FirstWord(line), "explain")) {
      const Result<ExplainReport> report = net.Explain(line, exec_options);
      if (report.ok()) {
        std::printf("%s", report->ToString().c_str());
      } else {
        std::printf("error: %s\n", report.status().ToString().c_str());
      }
    } else if (!line.empty()) {
      const Result<QueryResult> r = net.Query(line, exec_options);
      if (r.ok()) {
        PrintResult(*r);
        last_query = line;
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    }
    std::printf("snapq> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
