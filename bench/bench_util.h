// Shared helpers for the experiment drivers in bench/. Each driver
// regenerates one table or figure of the paper and prints the same
// rows/series the paper reports (averaged over the paper's 10 repetitions).
#ifndef SNAPQ_BENCH_BENCH_UTIL_H_
#define SNAPQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/metric_registry.h"

namespace snapq::bench {

/// Number of repetitions per data point (§6.1: "We repeated each
/// experiment ten times and present the average values").
inline constexpr int kRepetitions = 10;
inline constexpr uint64_t kBaseSeed = 1;

inline void PrintHeader(const char* experiment, const char* setup) {
  std::printf("=== %s ===\n", experiment);
  std::printf("%s\n", setup);
  std::printf("(averages over %d seeded repetitions)\n\n", kRepetitions);
}

/// Writes the process-wide metric registry (every trial merges its
/// simulation registry into it) as a machine-readable sidecar next to the
/// binary: `<argv0>.metrics.json`. Called at the end of every driver's
/// main() so each table/figure run leaves its instruments on disk.
inline void WriteMetricsSidecar(const char* argv0) {
  const std::string path = std::string(argv0) + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << obs::GlobalMetrics().ToJson() << '\n';
  std::printf("\nmetrics sidecar: %s\n", path.c_str());
}

}  // namespace snapq::bench

#endif  // SNAPQ_BENCH_BENCH_UTIL_H_
