#include "net/spatial_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace snapq {
namespace {

/// Fibonacci/splitmix-style scramble of the packed cell key. Cell keys are
/// highly structured (adjacent coordinates differ in one bit position), so
/// the multiply-xor spread matters for linear probing.
uint64_t HashKey(uint64_t key) {
  uint64_t h = key * 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return h;
}

size_t NextPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

/// Keep the +/-1 neighbor arithmetic of queries overflow-free.
constexpr int32_t kCoordClamp = 1 << 30;

}  // namespace

SpatialIndex::SpatialIndex(std::span<const Point> positions,
                           double cell_edge) {
  SNAPQ_CHECK_GT(cell_edge, 0.0);
  cell_edge_ = cell_edge;
  inv_cell_edge_ = 1.0 / cell_edge;
  num_nodes_ = positions.size();
  const size_t capacity = NextPow2(positions.size() + positions.size() / 2);
  slot_key_.assign(capacity, 0);
  slot_bucket_.assign(capacity, -1);
  // Node ids are inserted in ascending order, so every bucket is born
  // sorted; Move preserves the order with positional insert/erase.
  for (size_t i = 0; i < positions.size(); ++i) {
    Insert(static_cast<NodeId>(i), positions[i]);
  }
}

int32_t SpatialIndex::CellCoord(double v) const {
  const double c = std::floor(v * inv_cell_edge_);
  if (c <= static_cast<double>(-kCoordClamp)) return -kCoordClamp;
  if (c >= static_cast<double>(kCoordClamp)) return kCoordClamp;
  return static_cast<int32_t>(c);
}

const std::vector<NodeId>* SpatialIndex::FindBucket(uint64_t key) const {
  const size_t mask = slot_key_.size() - 1;
  size_t s = static_cast<size_t>(HashKey(key)) & mask;
  while (true) {
    const int32_t b = slot_bucket_[s];
    if (b < 0) return nullptr;
    if (slot_key_[s] == key) return &buckets_[static_cast<size_t>(b)];
    s = (s + 1) & mask;
  }
}

std::vector<NodeId>& SpatialIndex::EnsureBucket(uint64_t key) {
  if ((occupied_ + 1) * 10 > slot_key_.size() * 7) GrowTable();
  const size_t mask = slot_key_.size() - 1;
  size_t s = static_cast<size_t>(HashKey(key)) & mask;
  while (true) {
    const int32_t b = slot_bucket_[s];
    if (b < 0) {
      slot_key_[s] = key;
      slot_bucket_[s] = static_cast<int32_t>(buckets_.size());
      ++occupied_;
      buckets_.emplace_back();
      return buckets_.back();
    }
    if (slot_key_[s] == key) return buckets_[static_cast<size_t>(b)];
    s = (s + 1) & mask;
  }
}

void SpatialIndex::GrowTable() {
  std::vector<uint64_t> old_key = std::move(slot_key_);
  std::vector<int32_t> old_bucket = std::move(slot_bucket_);
  const size_t capacity = old_key.size() * 2;
  slot_key_.assign(capacity, 0);
  slot_bucket_.assign(capacity, -1);
  const size_t mask = capacity - 1;
  for (size_t i = 0; i < old_key.size(); ++i) {
    if (old_bucket[i] < 0) continue;
    size_t s = static_cast<size_t>(HashKey(old_key[i])) & mask;
    while (slot_bucket_[s] >= 0) s = (s + 1) & mask;
    slot_key_[s] = old_key[i];
    slot_bucket_[s] = old_bucket[i];
  }
}

void SpatialIndex::Insert(NodeId id, const Point& p) {
  std::vector<NodeId>& bucket = EnsureBucket(KeyOf(p));
  bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), id), id);
}

void SpatialIndex::Move(NodeId id, const Point& from, const Point& to) {
  const uint64_t old_key = KeyOf(from);
  const uint64_t new_key = KeyOf(to);
  if (old_key == new_key) return;
  std::vector<NodeId>& old_bucket = EnsureBucket(old_key);
  const auto it =
      std::lower_bound(old_bucket.begin(), old_bucket.end(), id);
  SNAPQ_CHECK(it != old_bucket.end() && *it == id);
  old_bucket.erase(it);
  std::vector<NodeId>& new_bucket = EnsureBucket(new_key);
  new_bucket.insert(
      std::lower_bound(new_bucket.begin(), new_bucket.end(), id), id);
}

std::span<const NodeId> SpatialIndex::CellOf(const Point& p) const {
  const std::vector<NodeId>* bucket = FindBucket(KeyOf(p));
  if (bucket == nullptr) return {};
  return *bucket;
}

}  // namespace snapq
