#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace snapq {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  SNAPQ_CHECK(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank =
      p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double SampleSet::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

}  // namespace snapq
