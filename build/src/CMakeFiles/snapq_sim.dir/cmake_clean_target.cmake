file(REMOVE_RECURSE
  "libsnapq_sim.a"
)
