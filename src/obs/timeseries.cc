#include "obs/timeseries.h"

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/check.h"

namespace snapq::obs {

void SeriesBin::Merge(const SeriesBin& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  t_first = std::min(t_first, other.t_first);
  t_last = std::max(t_last, other.t_last);
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  count += other.count;
}

TimeSeries::TimeSeries(const TimeSeriesConfig& config) : config_(config) {
  SNAPQ_CHECK_GT(config.raw_capacity, 0u);
  SNAPQ_CHECK_GT(config.ewma_alpha, 0.0);
  raw_.resize(config.raw_capacity);
  hist_.resize(config.history_capacity);
  hist_slots_.resize(config.history_capacity, 0);
}

void TimeSeries::Push(Time t, double value) {
  if (num_samples_ == 0) {
    ewma_ = value;
    min_ = value;
    max_ = value;
  } else {
    ewma_ += config_.ewma_alpha * (value - ewma_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  last_ = value;
  last_time_ = t;
  ++num_samples_;

  if (raw_size_ == raw_.size()) EvictOldestRaw();
  raw_[(raw_start_ + raw_size_) % raw_.size()] = SeriesBin::FromSample(t, value);
  ++raw_size_;
}

void TimeSeries::EvictOldestRaw() {
  const SeriesBin oldest = raw_[raw_start_];
  raw_start_ = (raw_start_ + 1) % raw_.size();
  --raw_size_;
  if (hist_.empty()) return;  // history disabled: oldest data is dropped

  if (hist_size_ > 0) {
    const size_t tail = hist_size_ - 1;
    if (hist_slots_[(hist_start_ + tail) % hist_.size()] < bin_stride_) {
      HistAt(tail).Merge(oldest);
      ++hist_slots_[(hist_start_ + tail) % hist_.size()];
      return;
    }
  }
  if (hist_size_ == hist_.size()) {
    CompactHistory();
    // Compaction doubled the stride, so the (possibly merged) tail bin now
    // has room — except when two exactly-full bins merged into one
    // exactly-full bin, in which case size halved and appending fits.
    const size_t tail = hist_size_ - 1;
    if (hist_slots_[(hist_start_ + tail) % hist_.size()] < bin_stride_) {
      HistAt(tail).Merge(oldest);
      ++hist_slots_[(hist_start_ + tail) % hist_.size()];
      return;
    }
  }
  SNAPQ_CHECK_LT(hist_size_, hist_.size());
  const size_t slot = (hist_start_ + hist_size_) % hist_.size();
  hist_[slot] = oldest;
  hist_slots_[slot] = 1;
  ++hist_size_;
}

void TimeSeries::CompactHistory() {
  // Normalize the ring so pairwise merging can run linearly in place.
  std::rotate(hist_.begin(), hist_.begin() + static_cast<long>(hist_start_),
              hist_.end());
  std::rotate(hist_slots_.begin(),
              hist_slots_.begin() + static_cast<long>(hist_start_),
              hist_slots_.end());
  hist_start_ = 0;
  const size_t new_size = (hist_size_ + 1) / 2;
  for (size_t i = 0; i < new_size; ++i) {
    SeriesBin merged = hist_[2 * i];
    uint32_t slots = hist_slots_[2 * i];
    if (2 * i + 1 < hist_size_) {
      merged.Merge(hist_[2 * i + 1]);
      slots += hist_slots_[2 * i + 1];
    }
    hist_[i] = merged;
    hist_slots_[i] = slots;
  }
  hist_size_ = new_size;
  bin_stride_ *= 2;
}

const SeriesBin& TimeSeries::bin(size_t i) const {
  SNAPQ_CHECK_LT(i, num_bins());
  if (i < hist_size_) return HistAt(i);
  return raw_[(raw_start_ + (i - hist_size_)) % raw_.size()];
}

Time TimeSeries::retained_since() const {
  return num_bins() == 0 ? 0 : bin(0).t_first;
}

double TimeSeries::Slope() const {
  const size_t n = num_bins();
  if (n < 2) return 0.0;
  // Least squares of bin mean against bin mid-time.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const SeriesBin& b = bin(i);
    const double x = 0.5 * (static_cast<double>(b.t_first) +
                            static_cast<double>(b.t_last));
    const double y = b.mean();
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

bool TimeSeries::MergeFrom(const TimeSeries& other) {
  if (raw_size_ != other.raw_size_ || hist_size_ != other.hist_size_ ||
      bin_stride_ != other.bin_stride_) {
    return false;
  }
  for (size_t i = 0; i < hist_size_; ++i) {
    HistAt(i).Merge(other.HistAt(i));
  }
  for (size_t i = 0; i < raw_size_; ++i) {
    raw_[(raw_start_ + i) % raw_.size()].Merge(
        other.raw_[(other.raw_start_ + i) % other.raw_.size()]);
  }
  const double n1 = static_cast<double>(num_samples_);
  const double n2 = static_cast<double>(other.num_samples_);
  if (n1 + n2 > 0.0) {
    ewma_ = (ewma_ * n1 + other.ewma_ * n2) / (n1 + n2);
    last_ = (last_ * n1 + other.last_ * n2) / (n1 + n2);
  }
  if (other.num_samples_ > 0) {
    min_ = num_samples_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = num_samples_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  num_samples_ += other.num_samples_;
  last_time_ = std::max(last_time_, other.last_time_);
  return true;
}

TelemetryRecorder::TelemetryRecorder(const TelemetryConfig& config,
                                     MetricRegistry* registry)
    : config_(config), registry_(registry) {
  SNAPQ_CHECK_GT(config.sample_interval, 0);
  SNAPQ_CHECK_GT(config.max_series, 0u);
  probes_.reserve(config.max_series);
  const long page = ::sysconf(_SC_PAGESIZE);
  page_kb_ = page > 0 ? static_cast<double>(page) / 1024.0 : 4.0;
}

TelemetryRecorder::~TelemetryRecorder() {
  if (statm_fd_ >= 0) ::close(statm_fd_);
}

TimeSeries* TelemetryRecorder::AddProbe(Probe probe) {
  for (Probe& existing : probes_) {
    if (existing.name == probe.name) return &existing.series;
  }
  // Reallocation would invalidate the series pointers already handed out.
  SNAPQ_CHECK_LT(probes_.size(), config_.max_series);
  probes_.push_back(std::move(probe));
  return &probes_.back().series;
}

TimeSeries* TelemetryRecorder::TrackGauge(const std::string& name) {
  Probe probe;
  probe.name = name;
  probe.kind = Probe::Kind::kGauge;
  probe.gauge = registry_->GetGauge(name);
  probe.series = TimeSeries(config_.series);
  return AddProbe(std::move(probe));
}

TimeSeries* TelemetryRecorder::TrackCounterRate(const std::string& name) {
  Probe probe;
  probe.name = name + ".rate";
  probe.kind = Probe::Kind::kCounterRate;
  probe.counter = registry_->GetCounter(name);
  probe.series = TimeSeries(config_.series);
  return AddProbe(std::move(probe));
}

TimeSeries* TelemetryRecorder::TrackRss() {
  Probe probe;
  probe.name = "proc.rss_kb";
  probe.kind = Probe::Kind::kRss;
  probe.series = TimeSeries(config_.series);
  if (statm_fd_ < 0) {
    statm_fd_ = ::open("/proc/self/statm", O_RDONLY | O_CLOEXEC);
  }
  return AddProbe(std::move(probe));
}

TimeSeries* TelemetryRecorder::TrackProbe(const std::string& name,
                                          std::function<double()> fn) {
  Probe probe;
  probe.name = name;
  probe.kind = Probe::Kind::kCallback;
  probe.fn = std::move(fn);
  probe.series = TimeSeries(config_.series);
  return AddProbe(std::move(probe));
}

double TelemetryRecorder::ReadRssKb() const {
  if (statm_fd_ >= 0) {
    char buf[128];
    const ssize_t n = ::pread(statm_fd_, buf, sizeof(buf) - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      // statm: size resident shared text lib data dt (pages).
      char* end = nullptr;
      (void)std::strtol(buf, &end, 10);  // size
      const long resident = std::strtol(end, &end, 10);
      if (resident > 0) return static_cast<double>(resident) * page_kb_;
    }
  }
  rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<double>(usage.ru_maxrss);  // already KB on Linux
  }
  return 0.0;
}

void TelemetryRecorder::SampleNow(Time t) {
  if (!enabled_) return;
  for (Probe& probe : probes_) {
    double value = 0.0;
    switch (probe.kind) {
      case Probe::Kind::kGauge:
        value = probe.gauge->value();
        break;
      case Probe::Kind::kCounterRate: {
        const uint64_t cur = probe.counter->value();
        // A counter reset (warm restart, registry Reset) would make the
        // delta wrap; clamp to a flat interval instead.
        value = cur >= probe.prev
                    ? static_cast<double>(cur - probe.prev)
                    : 0.0;
        probe.prev = cur;
        break;
      }
      case Probe::Kind::kRss:
        value = ReadRssKb();
        break;
      case Probe::Kind::kCallback:
        value = probe.fn();
        break;
    }
    probe.series.Push(t, value);
  }
  ++num_samples_;
  last_sample_time_ = t;
}

const TimeSeries* TelemetryRecorder::series(std::string_view name) const {
  for (const Probe& probe : probes_) {
    if (probe.name == name) return &probe.series;
  }
  return nullptr;
}

bool TelemetryRecorder::MergeFrom(const TelemetryRecorder& other) {
  if (probes_.size() != other.probes_.size()) return false;
  for (size_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i].name != other.probes_[i].name) return false;
  }
  // Dry-run the shape checks so a failure cannot leave a partial merge.
  for (size_t i = 0; i < probes_.size(); ++i) {
    TimeSeries trial = probes_[i].series;
    if (!trial.MergeFrom(other.probes_[i].series)) return false;
  }
  for (size_t i = 0; i < probes_.size(); ++i) {
    SNAPQ_CHECK(probes_[i].series.MergeFrom(other.probes_[i].series));
  }
  num_samples_ = std::max(num_samples_, other.num_samples_);
  last_sample_time_ = std::max(last_sample_time_, other.last_sample_time_);
  return true;
}

}  // namespace snapq::obs
