#!/usr/bin/env python3
"""Validate and summarize `.energymap.json` sidecars.

    energy_report.py MAP.json
        schema-check the sidecar, print the per-cause joule summary and an
        ASCII spatial heatmap of where the network spent its energy.

    energy_report.py MAP.json --baseline bench/baseline/energy_savings.json
        additionally gate the savings ratios the driver recorded in the
        sidecar's `extras` against the committed baseline: every baseline
        key must be present and must not fall more than `tolerance` below
        its committed value. This is the CI regression gate on Table 3's
        snapshot-vs-regular participation savings.

    energy_report.py MAP.json --json [...]
        emit a machine-readable verdict instead of the human report.

Exit status: 0 ok, 1 gate regression, 2 schema violation / unreadable
input. The schema is the one frozen by src/obs/energy_ledger.h
(kEnergyMapSchemaVersion) and pinned by tests/obs/energy_map_schema_test
-- update all three together.
"""

import argparse
import json
import math
import os
import sys

SCHEMA_VERSION = 1
KIND = "snapq-energymap"

CAUSES = ["election", "maintenance", "data", "query", "cache", "direct",
          "killed"]
DIRECTIONS = ["tx", "rx", "snoop"]
ROOT_KINDS = ["election", "reelection", "heartbeat_round", "query",
              "violation", "untraced"]
NODE_FIELDS = ["id", "x", "y", "remaining", "drained", "deaths", "by_cause"]

HEAT_RAMP = " .:-=+*#%@"
GRID_W = 24
GRID_H = 12


def _num(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_cause_object(obj, where, errors):
    if not isinstance(obj, dict):
        errors.append(f"{where}: not an object")
        return
    if list(obj.keys()) != CAUSES:
        errors.append(f"{where}: keys {list(obj.keys())} != {CAUSES}")
        return
    for key, value in obj.items():
        if not _num(value):
            errors.append(f"{where}.{key}: not a number")


def validate(doc):
    """Returns a list of schema violations (empty when valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]

    def field(name, pred, desc):
        if name not in doc:
            errors.append(f"missing field '{name}'")
            return None
        if not pred(doc[name]):
            errors.append(f"field '{name}' is not {desc}")
            return None
        return doc[name]

    version = field("schema_version", lambda v: isinstance(v, int), "an int")
    if version is not None and version != SCHEMA_VERSION:
        errors.append(f"schema_version {version} != {SCHEMA_VERSION}")
    kind = field("kind", lambda v: isinstance(v, str), "a string")
    if kind is not None and kind != KIND:
        errors.append(f"kind '{kind}' != '{KIND}'")
    field("benchmark", lambda v: isinstance(v, str), "a string")
    field("git_sha", lambda v: isinstance(v, str), "a string")
    field("quick", lambda v: isinstance(v, bool), "a bool")
    field("t", lambda v: isinstance(v, int), "an int")
    runs = field("runs", lambda v: isinstance(v, int) and v >= 1,
                 "a positive int")
    num_nodes = field("num_nodes", lambda v: isinstance(v, int) and v >= 0,
                      "a non-negative int")
    field("unlimited", lambda v: isinstance(v, bool), "a bool")
    field("initial_battery", _num, "a number")

    totals = field("totals", lambda v: isinstance(v, dict), "an object")
    if totals is not None:
        for key in ("drained", "remaining"):
            if not _num(totals.get(key)):
                errors.append(f"totals.{key}: not a number")
        if not isinstance(totals.get("deaths"), int):
            errors.append("totals.deaths: not an int")
        _check_cause_object(totals.get("by_cause"), "totals.by_cause", errors)
        by_dir = totals.get("by_direction")
        if not isinstance(by_dir, dict) or list(by_dir.keys()) != DIRECTIONS:
            errors.append(f"totals.by_direction: keys != {DIRECTIONS}")
        by_root = totals.get("by_root_kind")
        if not isinstance(by_root, dict) or list(by_root.keys()) != ROOT_KINDS:
            errors.append(f"totals.by_root_kind: keys != {ROOT_KINDS}")

    forecast = field("forecast", lambda v: isinstance(v, dict), "an object")
    if forecast is not None:
        for key in ("first_death_tick", "coverage_knee_tick"):
            if not _num(forecast.get(key)):
                errors.append(f"forecast.{key}: not a number")

    extras = field("extras", lambda v: isinstance(v, dict), "an object")
    if extras is not None:
        for key, value in extras.items():
            if not _num(value):
                errors.append(f"extras.{key}: not a number")

    nodes = field("nodes", lambda v: isinstance(v, list), "a list")
    if nodes is not None:
        if num_nodes is not None and len(nodes) != num_nodes:
            errors.append(f"nodes: {len(nodes)} rows != num_nodes "
                          f"{num_nodes}")
        for i, row in enumerate(nodes):
            if not isinstance(row, dict) or list(row.keys()) != NODE_FIELDS:
                errors.append(f"nodes[{i}]: keys != {NODE_FIELDS}")
                continue
            if row["id"] != i:
                errors.append(f"nodes[{i}]: id {row['id']} out of order")
            for key in ("x", "y", "remaining", "drained"):
                if not _num(row[key]):
                    errors.append(f"nodes[{i}].{key}: not a number")
            if not isinstance(row["deaths"], int):
                errors.append(f"nodes[{i}].deaths: not an int")
            _check_cause_object(row["by_cause"], f"nodes[{i}].by_cause",
                                errors)

    # Internal consistency: the per-node map and the cause breakdown must
    # both re-sum to the drained total (the ledger's conservation
    # invariant, modulo JSON number formatting).
    if not errors and nodes and totals is not None:
        drained = totals["drained"]
        tol = 1e-6 * max(1.0, abs(drained))
        node_sum = sum(row["drained"] for row in nodes)
        if not math.isclose(node_sum, drained, abs_tol=tol):
            errors.append(f"sum(nodes.drained)={node_sum!r} != "
                          f"totals.drained={drained!r}")
        cause_sum = sum(totals["by_cause"].values())
        if not math.isclose(cause_sum, drained, abs_tol=tol):
            errors.append(f"sum(totals.by_cause)={cause_sum!r} != "
                          f"totals.drained={drained!r}")
    return errors


def gate_against_baseline(doc, baseline):
    """Returns (failures, checked) for the savings gate."""
    failures = []
    tolerance = baseline.get("tolerance", 0.05)
    extras = doc.get("extras", {})
    want = baseline.get("savings", {})
    for key, committed in sorted(want.items()):
        current = extras.get(key)
        if current is None:
            failures.append(f"{key}: missing from sidecar extras")
        elif current < committed - tolerance:
            failures.append(f"{key}: {current:.3f} < baseline "
                            f"{committed:.3f} - tol {tolerance:.3f}")
    return failures, len(want)


def heatmap(doc):
    """ASCII spatial map of drained joules; 'X' marks cells with deaths."""
    nodes = doc["nodes"]
    if not nodes:
        return "(no nodes)"
    grid = [[0.0] * GRID_W for _ in range(GRID_H)]
    died = [[False] * GRID_W for _ in range(GRID_H)]
    for row in nodes:
        gx = min(GRID_W - 1, max(0, int(row["x"] * GRID_W)))
        gy = min(GRID_H - 1, max(0, int(row["y"] * GRID_H)))
        grid[gy][gx] += row["drained"]
        if row["deaths"] > 0:
            died[gy][gx] = True
    peak = max(max(r) for r in grid)
    lines = ["+" + "-" * GRID_W + "+"]
    for gy in range(GRID_H - 1, -1, -1):  # y grows upward
        cells = []
        for gx in range(GRID_W):
            if died[gy][gx]:
                cells.append("X")
            elif peak <= 0.0:
                cells.append(" ")
            else:
                level = grid[gy][gx] / peak
                idx = min(len(HEAT_RAMP) - 1, int(level * len(HEAT_RAMP)))
                cells.append(HEAT_RAMP[idx])
        lines.append("|" + "".join(cells) + "|")
    lines.append("+" + "-" * GRID_W + "+")
    lines.append(f"drained joules per cell, peak={peak:.2f}; "
                 "X = node death in cell")
    return "\n".join(lines)


def human_report(doc):
    totals = doc["totals"]
    print(f"energymap: {doc['benchmark']} "
          f"(git {doc['git_sha'][:12]}, t={doc['t']}, runs={doc['runs']}, "
          f"{'quick' if doc['quick'] else 'full'})")
    battery = ("unlimited" if doc["unlimited"]
               else f"{doc['initial_battery']:g} J/node")
    print(f"nodes: {doc['num_nodes']}, battery: {battery}")
    print(f"drained: {totals['drained']:.2f} J/run, "
          f"deaths: {totals['deaths']}")
    print("\nby cause (J/run):")
    drained = totals["drained"]
    for cause in CAUSES:
        joules = totals["by_cause"][cause]
        if joules <= 0.0:
            continue
        share = 100.0 * joules / drained if drained > 0 else 0.0
        print(f"  {cause:<12} {joules:12.2f}  {share:5.1f}%")
    by_dir = totals["by_direction"]
    print("by direction (J/run): " +
          ", ".join(f"{d}={by_dir[d]:.2f}" for d in DIRECTIONS))
    traced = {k: v for k, v in totals["by_root_kind"].items() if v > 0.0}
    if traced:
        print("by trace root (J/run): " +
              ", ".join(f"{k}={v:.2f}" for k, v in traced.items()))
    forecast = doc["forecast"]
    for key, label in (("first_death_tick", "first death"),
                       ("coverage_knee_tick", "coverage knee")):
        tick = forecast[key]
        print(f"forecast {label}: " +
              (f"~t={tick:.0f}" if tick >= 0 else "beyond horizon"))
    if doc["extras"]:
        print("\nextras:")
        for key, value in doc["extras"].items():
            print(f"  {key} = {value:g}")
    print("\nspatial heat (drained J):")
    print(heatmap(doc))


def main():
    parser = argparse.ArgumentParser(
        description="Validate, summarize and gate .energymap.json sidecars")
    parser.add_argument("map", help="path to the .energymap.json sidecar")
    parser.add_argument("--baseline",
                        help="committed savings baseline to gate against")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable verdict")
    args = parser.parse_args()

    try:
        with open(args.map) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.map}: {err}", file=sys.stderr)
        return 2

    errors = validate(doc)
    failures, checked = [], 0
    if not errors and args.baseline:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot read {args.baseline}: {err}",
                  file=sys.stderr)
            return 2
        failures, checked = gate_against_baseline(doc, baseline)

    if args.json:
        verdict = {
            "ok": not errors and not failures,
            "schema_errors": errors,
            "gate": {"checked": checked, "failures": failures},
        }
        print(json.dumps(verdict, indent=2))
    else:
        if errors:
            for err in errors:
                print(f"schema: {err}", file=sys.stderr)
        else:
            human_report(doc)
            if checked:
                print(f"\nsavings gate: {checked} cell(s) checked, "
                      f"{len(failures)} regression(s)")
                for failure in failures:
                    print(f"  REGRESSION {failure}")
    if errors:
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped through head/less that closed early — not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
