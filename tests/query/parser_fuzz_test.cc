// Parser robustness: randomized token soup must never crash, hang or
// return anything but a clean ParseError/valid spec; random mutations of
// valid queries must behave likewise.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "query/parser.h"

namespace snapq {
namespace {

const char* const kFragments[] = {
    "SELECT", "FROM",  "WHERE", "loc",    "IN",       "RECT",
    "sensors", "value", "sum",  "avg",    "min",      "max",
    "count",   "(",     ")",    ",",      "*",        "USE",
    "SNAPSHOT", "ERROR", "SAMPLE", "INTERVAL", "FOR", "1",
    "2.5",     "-3",    "1e9",  "0",      "s",        "min",
    "ms",      "hour",  "NORTH_HALF", "_x", "x_1",    "banana",
    "EXPLAIN", "ANALYZE",
};

std::string RandomQuery(Rng& rng, int max_tokens) {
  std::string out;
  const int n = static_cast<int>(rng.UniformInt(0, max_tokens));
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += kFragments[rng.UniformInt(
        0, static_cast<int64_t>(std::size(kFragments)) - 1)];
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, TokenSoupNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    const std::string q = RandomQuery(rng, 24);
    const Result<QuerySpec> spec = ParseQuery(q);
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kParseError) << q;
    } else {
      // A parsed spec must round-trip through its own printer.
      EXPECT_TRUE(ParseQuery(spec->ToString()).ok()) << spec->ToString();
    }
  }
}

TEST_P(ParserFuzz, MutatedValidQueriesNeverCrash) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const std::string base =
      "SELECT avg(value) FROM sensors WHERE loc IN RECT(0, 0, 1, 1) "
      "SAMPLE INTERVAL 1s FOR 5min USE SNAPSHOT ERROR 0.5";
  for (int i = 0; i < 2000; ++i) {
    std::string q = base;
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(q.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          q.erase(pos, 1);
          break;
        case 1:
          q.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
          break;
        default:
          q[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
      }
    }
    const Result<QuerySpec> spec = ParseQuery(q);  // must not crash
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kParseError);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace snapq
