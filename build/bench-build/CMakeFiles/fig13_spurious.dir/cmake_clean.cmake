file(REMOVE_RECURSE
  "../bench/fig13_spurious"
  "../bench/fig13_spurious.pdb"
  "CMakeFiles/fig13_spurious.dir/fig13_spurious.cc.o"
  "CMakeFiles/fig13_spurious.dir/fig13_spurious.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_spurious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
