// Self-healing demonstration: representatives fail (battery death and
// forced kills), the network detects it through heartbeats and re-elects
// locally; snapshot queries keep answering for dead nodes through their
// representatives' models.
//
//   $ ./build/examples/self_healing
#include <cstdio>

#include "api/network.h"
#include "data/random_walk.h"

using namespace snapq;

namespace {

void Report(SensorNetwork& net, const char* label) {
  const SnapshotView view = net.Snapshot();
  size_t alive = 0;
  for (NodeId i = 0; i < net.num_nodes(); ++i) {
    if (net.sim().alive(i)) ++alive;
  }
  const Result<QueryResult> q = net.Query(
      "SELECT count(*) FROM sensors WHERE loc IN EVERYWHERE USE SNAPSHOT");
  std::printf("%-28s alive=%zu reps=%zu coverage=%.0f%%\n", label, alive,
              view.CountActive(), q.ok() ? 100.0 * q->coverage : 0.0);
}

}  // namespace

int main() {
  NetworkConfig config;
  config.num_nodes = 60;
  config.transmission_range = 0.7;
  config.snapshot.threshold = 1.0;
  config.snapshot.heartbeat_miss_limit = 1;
  config.seed = 99;
  SensorNetwork net(config);

  Rng data_rng(3);
  RandomWalkConfig walk;
  walk.num_nodes = 60;
  walk.num_classes = 3;
  walk.horizon = 2001;
  Result<Dataset> data =
      Dataset::Create(GenerateRandomWalk(walk, data_rng).series);
  if (!net.AttachDataset(std::move(*data)).ok()) return 1;

  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(50);
  net.RunElection(50);
  net.ScheduleMaintenance(net.now() + 50, 2000, 50);
  Report(net, "after discovery:");

  // Kill every current representative at t=300.
  net.sim().ScheduleAt(300, [&net] {
    const SnapshotView view = net.Snapshot();
    for (NodeId i = 0; i < net.num_nodes(); ++i) {
      if (view.node(i).mode == NodeMode::kActive) {
        net.sim().Kill(i);
      }
    }
  });
  net.RunUntil(310);
  Report(net, "representatives killed:");

  // Heartbeats time out at the next maintenance round; members re-elect.
  net.RunUntil(460);
  Report(net, "after self-healing:");

  // A dead *passive* node stays covered through its representative. (Node
  // 0 is the query sink, so pick a victim elsewhere.)
  const SnapshotView view = net.Snapshot();
  for (NodeId i = 1; i < net.num_nodes(); ++i) {
    if (view.node(i).mode == NodeMode::kPassive && net.sim().alive(i)) {
      net.sim().Kill(i);
      std::printf("\nkilled passive node %u; its representative %u answers "
                  "for it:\n", i, view.node(i).representative);
      break;
    }
  }
  net.RunUntil(470);
  Report(net, "after passive-node death:");
  return 0;
}
