#include "obs/accuracy.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace snapq::obs {

const char* AuditSourceName(AuditSource source) {
  switch (source) {
    case AuditSource::kQuery:
      return "query";
    case AuditSource::kSweep:
      return "sweep";
  }
  return "?";
}

AccuracyAuditor::AccuracyAuditor(const AccuracyAuditConfig& config,
                                 size_t num_nodes, MetricRegistry* registry,
                                 EventJournal* journal)
    : config_(config),
      num_nodes_(num_nodes),
      journal_(journal),
      gauges_(registry,
              {"accuracy.violation_rate", "accuracy.budget_burn",
               "accuracy.max_abs_error", "accuracy.mean_abs_error"}),
      audited_counter_(registry->GetCounter("accuracy.audited")),
      violations_counter_(registry->GetCounter("accuracy.violations")),
      rounds_counter_(registry->GetCounter("accuracy.rounds")),
      reporter_violations_(num_nodes, 0) {
  SNAPQ_CHECK_GT(config.window, 0);
  if (config_.per_node) {
    node_hist_.resize(num_nodes);
    node_violations_.assign(num_nodes, 0);
    node_last_error_.assign(num_nodes, 0.0);
  }
}

void AccuracyAuditor::BeginRound(AuditSource source, int64_t origin,
                                 double threshold, Time t) {
  SNAPQ_CHECK(!in_round_);
  if (t >= window_start_ + config_.window) {
    // Tumble: realign the window grid to cover `t` and reset its counters.
    window_start_ += ((t - window_start_) / config_.window) * config_.window;
    window_audited_ = 0;
    window_violations_ = 0;
  }
  in_round_ = true;
  round_source_ = source;
  round_origin_ = origin;
  round_threshold_ = threshold;
  round_time_ = t;
  round_audited_ = 0;
  round_violations_ = 0;
  round_sum_abs_ = 0.0;
  round_max_abs_ = 0.0;
}

void AccuracyAuditor::ObserveEstimate(NodeId node, NodeId reporter,
                                      double signed_error, double distance) {
  SNAPQ_CHECK(in_round_);
  const double abs_error = std::abs(signed_error);
  error_hist_.Observe(abs_error);
  ++round_audited_;
  round_sum_abs_ += abs_error;
  if (abs_error > round_max_abs_) round_max_abs_ = abs_error;
  const bool violation = distance > round_threshold_;
  if (violation) {
    ++round_violations_;
    if (reporter < reporter_violations_.size()) {
      ++reporter_violations_[reporter];
    }
  }
  if (config_.per_node && node < node_hist_.size()) {
    node_hist_[node].Observe(abs_error);
    node_last_error_[node] = signed_error;
    if (violation) ++node_violations_[node];
  }
}

void AccuracyAuditor::EndRound() {
  SNAPQ_CHECK(in_round_);
  in_round_ = false;
  audited_ += round_audited_;
  violations_ += round_violations_;
  ++rounds_;
  window_audited_ += round_audited_;
  window_violations_ += round_violations_;
  audited_counter_->Inc(round_audited_);
  violations_counter_->Inc(round_violations_);
  rounds_counter_->Inc();
  UpdateGauges();
  if (journal_ == nullptr) return;
  journal_->Emit("accuracy_audit", round_time_, [&](JournalEvent& e) {
    const double mean_abs =
        round_audited_ == 0
            ? 0.0
            : round_sum_abs_ / static_cast<double>(round_audited_);
    e.Int("node", round_origin_)
        .Str("source", AuditSourceName(round_source_))
        .Num("threshold", round_threshold_)
        .Int("audited", static_cast<int64_t>(round_audited_))
        .Int("violations", static_cast<int64_t>(round_violations_))
        .Num("max_abs_error", round_max_abs_)
        .Num("mean_abs_error", mean_abs)
        .Num("violation_rate", violation_rate())
        .Num("budget_burn", budget_burn());
  });
}

double AccuracyAuditor::violation_rate() const {
  return window_audited_ == 0
             ? 0.0
             : static_cast<double>(window_violations_) /
                   static_cast<double>(window_audited_);
}

double AccuracyAuditor::budget_burn() const {
  return config_.error_budget <= 0.0 ? 0.0
                                     : violation_rate() / config_.error_budget;
}

void AccuracyAuditor::UpdateGauges() {
  gauges_.Set(kViolationRate, violation_rate());
  gauges_.Set(kBudgetBurn, budget_burn());
  gauges_.Set(kMaxAbsError, error_hist_.max_seen());
  gauges_.Set(kMeanAbsError, error_hist_.mean());
}

AuditNodeStats AccuracyAuditor::NodeStats(NodeId node) const {
  AuditNodeStats stats;
  if (!config_.per_node || node >= node_hist_.size()) return stats;
  const LogHistogram& hist = node_hist_[node];
  stats.audited = hist.count();
  stats.violations = node_violations_[node];
  stats.last_error = node_last_error_[node];
  stats.mean_abs_error = hist.mean();
  stats.p95_abs_error = hist.Percentile(95.0);
  stats.max_abs_error = hist.max_seen();
  return stats;
}

uint64_t AccuracyAuditor::ReporterViolations(NodeId reporter) const {
  return reporter < reporter_violations_.size()
             ? reporter_violations_[reporter]
             : 0;
}

std::string AccuracyAuditor::ToTable() const {
  std::ostringstream os;
  TablePrinter table(
      {"node", "audited", "viol", "last e", "mean|e|", "p95|e|", "max|e|"});
  for (NodeId i = 0; i < node_hist_.size(); ++i) {
    const AuditNodeStats stats = NodeStats(i);
    if (stats.audited == 0) continue;
    table.AddRow({StrFormat("%zu", static_cast<size_t>(i)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        stats.audited)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        stats.violations)),
                  TablePrinter::Num(stats.last_error, 4),
                  TablePrinter::Num(stats.mean_abs_error, 4),
                  TablePrinter::Num(stats.p95_abs_error, 4),
                  TablePrinter::Num(stats.max_abs_error, 4)});
  }
  if (table.row_count() == 0) {
    os << "accuracy: nothing audited yet\n";
  } else {
    table.Print(os);
  }
  os << StrFormat(
      "-- %llu audited, %llu violations over %llu rounds; "
      "window violation rate %.4g (budget %.4g, burn %.4g)\n",
      static_cast<unsigned long long>(audited_),
      static_cast<unsigned long long>(violations_),
      static_cast<unsigned long long>(rounds_), violation_rate(),
      config_.error_budget, budget_burn());
  return os.str();
}

}  // namespace snapq::obs
