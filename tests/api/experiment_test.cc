// Shape tests on the paper's experimental pipeline: these assert the
// qualitative results of §6 (monotonicity, plateaus, robustness) on
// reduced-size instances so the full suite stays fast.
#include "api/experiment.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(SensitivityTrialTest, SingleClassElectsSingleRepresentative) {
  // Fig 6 anchor point: K=1 -> one representative for the whole network.
  SensitivityConfig config;
  config.num_classes = 1;
  config.seed = 3;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  EXPECT_EQ(outcome.stats.num_active, 1u);
  EXPECT_EQ(outcome.stats.num_passive, 99u);
  EXPECT_EQ(outcome.stats.num_undefined, 0u);
}

TEST(SensitivityTrialTest, RepresentativesGrowWithClassesThenPlateau) {
  // Fig 6 shape on a reduced instance.
  auto reps_for = [](size_t k) {
    SensitivityConfig config;
    config.num_classes = k;
    config.seed = 11;
    return RunSensitivityTrial(config).stats.num_active;
  };
  const size_t r1 = reps_for(1);
  const size_t r10 = reps_for(10);
  const size_t r100 = reps_for(100);
  EXPECT_LT(r1, r10);
  EXPECT_LE(r10, r100 + 5);  // plateau: allow noise
  EXPECT_LT(r100, 60u);      // far below N=100
}

TEST(SensitivityTrialTest, MessageBoundHolds) {
  SensitivityConfig config;
  config.num_classes = 5;
  config.seed = 2;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  EXPECT_LE(outcome.stats.max_messages_per_node, 5.0);
}

TEST(SensitivityTrialTest, LossyNetworkStillSettles) {
  // Fig 7: even at high loss, discovery completes and finds a small set.
  SensitivityConfig config;
  config.num_classes = 1;
  config.loss_probability = 0.5;
  config.seed = 5;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  EXPECT_EQ(outcome.stats.num_undefined, 0u);
  EXPECT_LT(outcome.stats.num_active, 50u);
}

TEST(SensitivityTrialTest, ModelAwareCacheBeatsRoundRobinWhenTight) {
  // Fig 8 anchor: around 1KB the model-aware manager needs far fewer
  // representatives than round-robin. Averaged over a few seeds.
  auto mean_reps = [](CachePolicy policy) {
    const RunningStats stats = MeanOverSeeds(5, 21, [&](uint64_t seed) {
      SensitivityConfig config;
      config.num_classes = 10;
      config.cache_bytes = 1100;
      config.cache_policy = policy;
      config.seed = seed;
      return static_cast<double>(
          RunSensitivityTrial(config).stats.num_active);
    });
    return stats.mean();
  };
  EXPECT_LT(mean_reps(CachePolicy::kModelAware),
            mean_reps(CachePolicy::kRoundRobin));
}

TEST(SensitivityTrialTest, ShorterRangeMeansMoreRepresentatives) {
  // Fig 9 shape: representatives shrink as the transmission range grows.
  auto reps_for = [](double range) {
    SensitivityConfig config;
    config.num_classes = 5;
    config.transmission_range = range;
    config.seed = 13;
    return RunSensitivityTrial(config).stats.num_active;
  };
  EXPECT_GT(reps_for(0.3), reps_for(1.4));
}

TEST(SensitivityTrialTest, WeatherWorkloadRunsAndShrinksWithThreshold) {
  // Fig 11 shape: larger T -> fewer representatives (weather substitute).
  auto reps_for = [](double threshold) {
    SensitivityConfig config;
    config.workload = WorkloadKind::kWeather;
    config.threshold = threshold;
    config.seed = 17;
    return RunSensitivityTrial(config).stats.num_active;
  };
  const size_t tight = reps_for(0.1);
  const size_t loose = reps_for(10.0);
  EXPECT_LT(loose, tight);
  EXPECT_LE(loose, 15u);  // a small fraction of the 100-node network
}

TEST(SensitivityTrialTest, RepresentationErrorBelowThreshold) {
  // Fig 12 shape: measured sse of the representatives' estimates stays
  // below (in practice well below) the threshold T.
  SensitivityConfig config;
  config.workload = WorkloadKind::kWeather;
  config.threshold = 1.0;
  config.seed = 19;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  const double sse = AverageRepresentationSse(*outcome.network);
  EXPECT_LE(sse, config.threshold);
}

TEST(MeanOverSeedsTest, AveragesAcrossSeeds) {
  const RunningStats stats = MeanOverSeeds(
      4, 10, [](uint64_t seed) { return static_cast<double>(seed); });
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 11.5);
  EXPECT_DOUBLE_EQ(stats.min(), 10.0);
  EXPECT_DOUBLE_EQ(stats.max(), 13.0);
}

TEST(BuildSensitivityNetworkTest, AttachesDatasetAndTraining) {
  SensitivityConfig config;
  config.seed = 23;
  const auto net = BuildSensitivityNetwork(config);
  ASSERT_NE(net->dataset(), nullptr);
  EXPECT_EQ(net->dataset()->num_nodes(), 100u);
  EXPECT_EQ(net->dataset()->horizon(), 101u);
}

// Property sweep over loss rates (Fig 7/13 shape): discovery always
// settles; spurious representatives stay rare.
class LossRobustness : public ::testing::TestWithParam<double> {};

TEST_P(LossRobustness, DiscoveryRobustUnderLoss) {
  SensitivityConfig config;
  config.num_classes = 1;
  config.loss_probability = GetParam();
  config.seed = 31;
  const SensitivityOutcome outcome = RunSensitivityTrial(config);
  EXPECT_EQ(outcome.stats.num_undefined, 0u);
  // Spurious representatives (lost Rule-2 recalls) stay a minority even at
  // extreme loss. (Fig 13 reports single digits at range 0.2; the full
  // sqrt(2) connectivity used here produces more candidate relationships
  // and hence more opportunities for stale ones.)
  EXPECT_LE(outcome.stats.num_spurious, 30u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossRobustness,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.95));

}  // namespace
}  // namespace snapq
