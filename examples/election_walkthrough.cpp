// The paper's worked example (§5, Figures 3 and 4), replayed step by step
// on the real protocol implementation. Eight nodes, the candidate lists of
// Figure 3, and the refinement rules of Figure 5 produce exactly the final
// snapshot of Figure 4: representatives N3, N4, N7.
//
//   $ ./build/examples/election_walkthrough
#include <cstdio>
#include <memory>
#include <vector>

#include "snapshot/election.h"

using namespace snapq;

namespace {

/// Injects history so `rep` can predict `target` exactly (a slope-1 line
/// through their current values).
void Teach(std::vector<std::unique_ptr<SnapshotAgent>>& agents, NodeId rep,
           NodeId target) {
  const double vi = agents[rep]->measurement();
  const double vj = agents[target]->measurement();
  agents[rep]->models().cache().Observe(target, vi - 1.0, vj - 1.0, 0);
  agents[rep]->models().cache().Observe(target, vi + 1.0, vj + 1.0, 0);
}

const char* PaperName(NodeId id) {
  static const char* names[] = {"N1", "N2", "N3", "N4",
                                "N5", "N6", "N7", "N8"};
  return names[id];
}

}  // namespace

int main() {
  // Eight nodes, all within radio range of each other.
  std::vector<Point> positions;
  for (int i = 0; i < 8; ++i) {
    positions.push_back({0.1 * i, 0.0});
  }
  Simulator sim(std::move(positions), std::vector<double>(8, 10.0), {});
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  SnapshotConfig config;
  for (NodeId i = 0; i < 8; ++i) {
    agents.push_back(std::make_unique<SnapshotAgent>(i, &sim, config, i));
    agents.back()->Install();
    agents.back()->SetMeasurement(100.0 + 10.0 * i);
  }

  // Figure 3's candidate relations (paper N1..N8 = ids 0..7):
  //   Cand_1={N2}  Cand_3={N4,N6}  Cand_4={N1,N2,N3,N5}
  //   Cand_5={N8}  Cand_6={N7}     Cand_7={N8}
  std::printf("Teaching the Figure-3 candidate relations...\n");
  Teach(agents, 0, 1);
  Teach(agents, 2, 3);
  Teach(agents, 2, 5);
  Teach(agents, 3, 0);
  Teach(agents, 3, 1);
  Teach(agents, 3, 2);
  Teach(agents, 3, 4);
  Teach(agents, 4, 7);
  Teach(agents, 5, 6);
  Teach(agents, 6, 7);

  std::printf("Running the discovery protocol (Table 2 + Figure 5)...\n\n");
  const ElectionStats stats = RunGlobalElection(sim, agents, 0, config);

  const SnapshotView view = CaptureSnapshot(agents);
  for (NodeId i = 0; i < 8; ++i) {
    const auto& info = view.node(i);
    std::printf("%s: %-7s", PaperName(i), NodeModeName(info.mode));
    if (info.mode == NodeMode::kPassive) {
      std::printf(" represented by %s", PaperName(info.representative));
    } else if (!info.represents.empty()) {
      std::printf(" represents {");
      bool first = true;
      for (const auto& [j, epoch] : info.represents) {
        std::printf("%s%s", first ? "" : ", ", PaperName(j));
        first = false;
      }
      std::printf("}");
    }
    std::printf("   (%llu messages sent)\n",
                static_cast<unsigned long long>(sim.messages_sent_by(i)));
  }
  std::printf("\n%zu representatives, %zu passive nodes; "
              "max %g messages per node (Table 2 bound: 5)\n",
              stats.num_active, stats.num_passive,
              stats.max_messages_per_node);
  std::printf("Figure 4 expects: representatives N3, N4, N7 with "
              "N4->{N1,N2,N5}, N3->{N6}, N7->{N8}\n");
  return 0;
}
