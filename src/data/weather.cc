#include "data/weather.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace snapq {

TimeSeries GenerateStationSeries(const WeatherConfig& config, size_t length,
                                 Rng& rng) {
  TimeSeries out;
  double x = config.mean;
  double gust = 0.0;
  bool windy = false;
  for (size_t t = 0; t < length; ++t) {
    if (rng.Bernoulli(windy ? config.windy_to_calm_probability
                            : config.calm_to_windy_probability)) {
      windy = !windy;
    }
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(t % config.diurnal_period) /
                         static_cast<double>(config.diurnal_period);
    const double local_mean =
        config.mean + config.diurnal_amplitude * std::sin(phase);
    const double sigma =
        config.noise_sigma *
        (windy ? config.windy_sigma_factor : config.calm_sigma_factor);
    x += config.reversion * (local_mean - x) + rng.Gaussian(0.0, sigma);
    if (windy && rng.Bernoulli(config.gust_probability)) {
      gust += config.gust_magnitude * rng.UniformDouble(0.5, 1.5);
    }
    gust *= config.gust_decay;
    // Wind speed is non-negative.
    out.Append(std::max(0.0, x + gust));
  }
  return out;
}

std::vector<TimeSeries> GenerateWeatherWindows(const WeatherConfig& config,
                                               size_t num_nodes,
                                               size_t window, Rng& rng) {
  SNAPQ_CHECK_GT(num_nodes, 0u);
  SNAPQ_CHECK_GT(window, 0u);
  const TimeSeries station =
      GenerateStationSeries(config, num_nodes * window, rng);

  // Random assignment of the non-overlapping windows to nodes.
  std::vector<size_t> order(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) order[i] = i;
  for (size_t i = num_nodes; i > 1; --i) {
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  std::vector<TimeSeries> out(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    out[i] = station.Slice(order[i] * window, window);
  }
  return out;
}

}  // namespace snapq
