// The hot-path profiler: log-bucketed latency histograms with fixed
// memory, scoped CPU+wall timers, and operation counters for the rates
// the ROADMAP's perf work cares about (messages simulated/sec, model
// fits/sec, election rounds/sec). Complements the MetricRegistry the same
// way a sampling profiler complements accounting ledgers:
//
//  * the registry is per-simulation and answers "how many protocol
//    messages did this trial send" — experiment semantics;
//  * the profiler is process-wide and answers "how fast does the
//    simulator itself run" — engine performance, fed into BENCH.json by
//    the snapq_bench harness.
//
// Design constraints, in order:
//  * disabled cost: instrumentation sites call Profiler::Active(), a
//    single relaxed pointer load; when no profiler is enabled that is the
//    entire cost — no allocation, no lock, no histogram touch (enforced
//    by the allocation-counting test, like the tracer's);
//  * enabled cost: counters are fixed arrays indexed by enum (one add),
//    histograms are fixed arrays bucketed with frexp (no log call, no
//    sorting, no allocation ever after construction);
//  * fixed memory: a LogHistogram is ~1.7 KB regardless of how many
//    observations it absorbs (quantile-sketch style: Medians and Beyond /
//    HDR histogram lineage).
//
// Thread-safety: unlike MetricRegistry (whose parallel story is the
// per-task sink indirection), the profiler is a process-wide singleton
// that worker threads hit concurrently during a --jobs N sweep. Counters
// are relaxed atomics (a relaxed fetch_add is as cheap as the plain add
// was on x86/ARM, and the final counts are exact regardless of
// interleaving); RecordPhase takes a mutex, which is fine because phases
// fire at most a few thousand times per experiment. Enable/Disable flip
// an atomic pointer. Readers (ToTable/ExportTo) are only called after
// workers join, so histogram reads need no lock.
#ifndef SNAPQ_OBS_PROFILER_H_
#define SNAPQ_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace snapq::obs {

class MetricRegistry;

/// Log-bucketed histogram with exact count/sum/min/max and percentile
/// estimates accurate to one bucket (buckets grow by 2^(1/4) ~ 19%, so a
/// reported p50/p95/p99 is within 19% of the exact order statistic, and
/// exact for single-valued buckets). Fixed memory, no sorting, values
/// outside the covered range saturate into the edge buckets (never UB).
class LogHistogram {
 public:
  /// Sub-buckets per power of two.
  static constexpr int kSubBuckets = 4;
  /// Smallest resolvable value: 2^kMinExp. Anything below (including 0
  /// and negatives) lands in the underflow bucket 0.
  static constexpr int kMinExp = -10;
  /// Largest resolvable value: 2^kMaxExp. Anything above saturates into
  /// the top bucket (max() stays exact).
  static constexpr int kMaxExp = 40;
  static constexpr int kNumBuckets =
      (kMaxExp - kMinExp) * kSubBuckets + 1;  // +1 underflow

  LogHistogram() = default;

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min_seen() const { return count_ == 0 ? 0.0 : min_; }
  double max_seen() const { return count_ == 0 ? 0.0 : max_; }

  /// Estimated value at percentile `pct` in [0, 100]: walks the buckets
  /// to the target rank and interpolates inside the bucket, clamped to
  /// [min_seen, max_seen] (a single sample is therefore exact). Empty
  /// histogram: 0.
  double Percentile(double pct) const;

  /// Bucket i covers [LowerBound(i), UpperBound(i)); bucket 0 starts at 0
  /// and the top bucket absorbs everything >= 2^kMaxExp.
  static double BucketLowerBound(int index);
  static double BucketUpperBound(int index);
  static int BucketIndex(double v);

  const std::array<uint64_t, static_cast<size_t>(kNumBuckets)>& buckets()
      const {
    return buckets_;
  }

  /// Adds `other`'s observations. Bucket-exact: merging then reading
  /// percentiles equals bucketing the concatenated samples.
  void MergeFrom(const LogHistogram& other);
  void Reset();

 private:
  std::array<uint64_t, static_cast<size_t>(kNumBuckets)> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Hot-path operations the profiler counts. Fixed enum (not strings) so a
/// count is one array add — extend here when instrumenting a new path.
enum class HotOp : uint8_t {
  kMessagesSent = 0,   ///< Simulator::Send transmissions
  kMessagesDelivered,  ///< addressed deliveries (handler ran or dropped)
  kMessagesSnooped,    ///< overheard unicasts
  kCacheOps,           ///< cache-maintenance CPU charges
  kModelFits,          ///< FitForMetric calls (LS + IRLS refits)
  kElectionRounds,     ///< RunGlobalElection invocations
  kMaintenanceRounds,  ///< MaintenanceDriver rounds
  kQueriesExecuted,    ///< QueryExecutor::ExecuteRegion rounds
  kCount
};
constexpr size_t kNumHotOps = static_cast<size_t>(HotOp::kCount);
/// Stable snake_case name ("messages_sent"), used in BENCH.json and the
/// registry export.
const char* HotOpName(HotOp op);

/// Coarse phases measured with scoped CPU+wall timers. Kept to phases that
/// run at most a few thousand times per experiment so the two clock reads
/// per side stay invisible.
enum class ProfPhase : uint8_t {
  kElection = 0,
  kMaintenanceRound,
  kQueryExecution,
  kNetworkBuild,  ///< deployment wiring incl. the link-model/index build
  kCount
};
constexpr size_t kNumProfPhases = static_cast<size_t>(ProfPhase::kCount);
const char* ProfPhaseName(ProfPhase phase);

class Profiler {
 public:
  Profiler() { Reset(); }
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The enabled profiler, or nullptr when profiling is off. This is the
  /// only call instrumentation sites make on the fast path.
  static Profiler* Active() { return active_.load(std::memory_order_relaxed); }
  /// The process-wide instance Enable() installs (exists even while
  /// disabled, so exporters and the shell can read the last session).
  static Profiler& Global();
  static void Enable() { active_.store(&Global(), std::memory_order_relaxed); }
  static void Disable() { active_.store(nullptr, std::memory_order_relaxed); }
  static bool enabled() { return Active() != nullptr; }

  void Count(HotOp op, uint64_t delta = 1) {
    counters_[static_cast<size_t>(op)].fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  uint64_t count(HotOp op) const {
    return counters_[static_cast<size_t>(op)].load(std::memory_order_relaxed);
  }

  void RecordPhase(ProfPhase phase, double wall_us, double cpu_us) {
    std::lock_guard<std::mutex> lock(phase_mutex_);
    wall_us_[static_cast<size_t>(phase)].Observe(wall_us);
    cpu_us_[static_cast<size_t>(phase)].Observe(cpu_us);
  }
  const LogHistogram& wall_us(ProfPhase phase) const {
    return wall_us_[static_cast<size_t>(phase)];
  }
  const LogHistogram& cpu_us(ProfPhase phase) const {
    return cpu_us_[static_cast<size_t>(phase)];
  }

  /// Wall seconds since the last Reset() — the denominator for rates.
  double ElapsedSeconds() const;
  /// count(op) / ElapsedSeconds() (0 before any time has passed).
  double Rate(HotOp op) const;

  /// Zeroes counters and histograms and restarts the rate epoch.
  void Reset();

  /// Human-readable counter + phase-latency tables (the shell's \profile).
  std::string ToTable() const;

  /// Folds the profile into a registry: counters as
  /// "profiler.<op>" counters, phase percentiles as
  /// "profiler.<phase>.wall_us.p50" (p95/p99/max/count) gauges.
  void ExportTo(MetricRegistry* registry) const;

 private:
  static std::atomic<Profiler*> active_;

  std::array<std::atomic<uint64_t>, kNumHotOps> counters_{};
  mutable std::mutex phase_mutex_;
  std::array<LogHistogram, kNumProfPhases> wall_us_{};
  std::array<LogHistogram, kNumProfPhases> cpu_us_{};
  std::chrono::steady_clock::time_point epoch_{};
};

/// Counts `op` on the active profiler; a pointer load + branch when
/// profiling is disabled.
inline void ProfCount(HotOp op, uint64_t delta = 1) {
  if (Profiler* p = Profiler::Active()) p->Count(op, delta);
}

/// RAII CPU+wall timer for one ProfPhase occurrence. Inert (two pointer
/// loads) when profiling is disabled at construction.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(ProfPhase phase);
  ~ScopedPhaseTimer();
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  /// Thread CPU time in microseconds (CLOCK_THREAD_CPUTIME_ID).
  static double ThreadCpuMicros();

 private:
  Profiler* profiler_;
  ProfPhase phase_;
  std::chrono::steady_clock::time_point wall_start_{};
  double cpu_start_us_ = 0.0;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_PROFILER_H_
