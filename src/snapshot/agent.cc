#include "snapshot/agent.h"

#include <utility>

#include "common/check.h"

namespace snapq {

SnapshotAgent::SnapshotAgent(NodeId id, Simulator* sim,
                             const SnapshotConfig& config, uint64_t seed)
    : id_(id), sim_(sim), config_(config), rng_(seed),
      models_(id, config.cache), rep_(id) {
  SNAPQ_CHECK(sim != nullptr);
  SNAPQ_CHECK_LT(id, sim->num_nodes());
  models_.cache().BindObservability(&sim->registry(), &sim->journal(), id);
}

void SnapshotAgent::Install() {
  sim_->SetHandler(id_, [this](const Message& msg, bool snooped) {
    HandleMessage(msg, snooped);
  });
}

void SnapshotAgent::SetMeasurement(double value) {
  models_.SetOwnValue(value, sim_->now());
}

void SnapshotAgent::BroadcastValue() {
  Message msg;
  msg.type = MessageType::kData;
  msg.from = id_;
  msg.to = kBroadcastId;
  msg.value = measurement();
  msg.epoch = epoch_;
  sim_->Send(msg);
}

SnapshotView::NodeInfo SnapshotAgent::Info() const {
  SnapshotView::NodeInfo info;
  info.mode = mode_;
  info.representative = rep_;
  info.epoch = epoch_;
  info.represents = represents_;
  info.alive = sim_->alive(id_);
  return info;
}

// ---------------------------------------------------------------------------
// Model building
// ---------------------------------------------------------------------------

void SnapshotAgent::ObserveNeighbor(NodeId j, double value) {
  models_.Observe(j, value, sim_->now());
  sim_->ChargeCacheOp(id_);
}

// ---------------------------------------------------------------------------
// Election
// ---------------------------------------------------------------------------

void SnapshotAgent::BeginElection(Time t0) {
  SNAPQ_CHECK_GE(t0, sim_->now());
  sim_->ScheduleAt(t0, [this] {
    if (!sim_->alive(id_)) return;
    // Network-wide discovery: representation state starts from scratch.
    represents_.clear();
    prior_rep_ = kInvalidNode;
    resigned_ = false;
    StartElectionRound(sim_->now());
  });
}

void SnapshotAgent::BeginLocalReelection() {
  if (electing_ || !sim_->alive(id_)) return;
  sim_->registry().GetCounter("maintenance.reelections")->Inc();
  sim_->journal().Emit("maintenance.reelect", sim_->now(),
                       [this](obs::JournalEvent& e) {
                         e.Node(id_).Epoch(epoch_);
                       });
  // Keep the causal chain when a traced event (heartbeat round, violation,
  // resignation) triggered us; otherwise this re-election is its own root.
  TraceContext ctx = sim_->current_trace();
  if (!ctx.sampled()) {
    ctx = sim_->MintTraceRoot(obs::TraceRootKind::kReelection, id_);
  }
  Simulator::TraceScope scope(*sim_, ctx);
  prior_rep_ = (rep_ != id_) ? rep_ : kInvalidNode;
  StartElectionRound(sim_->now());
}

void SnapshotAgent::StartElectionRound(Time t0) {
  SNAPQ_CHECK_EQ(t0, sim_->now());
  electing_ = true;
  mode_ = NodeMode::kUndefined;
  ++epoch_;
  rep_ = id_;  // tentative: a node represents itself by default
  offers_.clear();
  heard_cand_len_.clear();
  my_cand_len_ = 0;
  recall_sent_ = false;
  stay_active_last_ = -1;
  rep_ack_seen_ = false;
  awaiting_reply_ = false;
  heartbeat_misses_ = 0;
  acked_.clear();
  last_ack_broadcast_ = -1;

  SendInvitation();
  const int64_t election_epoch = epoch_;
  sim_->ScheduleAfter(2, [this, election_epoch] {
    if (epoch_ == election_epoch) RunSelection();
  });
  refine_deadline_ = t0 + 3 + config_.max_wait;
  hard_deadline_ = refine_deadline_ + config_.rule4_hard_cap;
  ScheduleRefinement(t0 + 3);
}

void SnapshotAgent::SendInvitation() {
  Message msg;
  msg.type = MessageType::kInvitation;
  msg.from = id_;
  msg.to = kBroadcastId;
  msg.value = measurement();
  msg.epoch = epoch_;
  sim_->Send(msg);
}

bool SnapshotAgent::OffersCandidacy() const {
  if (resigned_ || cooldown_rounds_ > 0) return false;
  // During its own election a node is a peer candidate (network discovery);
  // otherwise only established representatives volunteer (keeps the
  // snapshot from growing during maintenance).
  return electing_ || mode_ == NodeMode::kActive;
}

void SnapshotAgent::OnInvitation(const Message& msg) {
  const NodeId j = msg.from;
  if (j == id_) return;
  // Candidacy is evaluated against the existing model. Invitations are
  // control traffic: the paper builds models from snooped *data* messages
  // and heartbeats (§3), so the carried value is not folded into the cache
  // — during re-election storms every node would otherwise pay a cache-op
  // per overheard invitation, dwarfing the radio costs the snapshot saves.
  if (OffersCandidacy() &&
      models_.CanRepresent(j, msg.value, config_.metric, config_.threshold)) {
    pending_cands_[j] = msg.epoch;
    ScheduleCandBroadcast();
  }
}

void SnapshotAgent::ScheduleCandBroadcast() {
  if (cand_broadcast_scheduled_) return;
  cand_broadcast_scheduled_ = true;
  sim_->ScheduleAfter(1, [this] { BroadcastCandList(); });
}

void SnapshotAgent::BroadcastCandList() {
  cand_broadcast_scheduled_ = false;
  if (pending_cands_.empty() || !sim_->alive(id_)) {
    pending_cands_.clear();
    return;
  }
  Message msg;
  msg.type = MessageType::kCandList;
  msg.from = id_;
  msg.to = kBroadcastId;
  msg.epoch = epoch_;
  msg.aux = static_cast<double>(represents_.size());
  msg.ids.reserve(pending_cands_.size());
  for (const auto& [j, e] : pending_cands_) msg.ids.push_back(j);
  my_cand_len_ = msg.ids.size();
  pending_cands_.clear();
  sim_->Send(msg);
}

void SnapshotAgent::OnCandList(const Message& msg) {
  heard_cand_len_[msg.from] = msg.ids.size();
  if (!electing_ || mode_ != NodeMode::kUndefined) return;
  for (NodeId candidate_of : msg.ids) {
    if (candidate_of == id_) {
      // §5.1 scoring: list length plus the number of nodes the sender
      // already represents (aux is zero during initial discovery).
      offers_[msg.from] =
          Offer{static_cast<double>(msg.ids.size()) + msg.aux,
                msg.ids.size()};
      break;
    }
  }
}

void SnapshotAgent::RunSelection() {
  if (!electing_ || mode_ != NodeMode::kUndefined || !sim_->alive(id_)) {
    return;
  }
  NodeId best = kInvalidNode;
  double best_score = -1.0;
  for (const auto& [candidate, offer] : offers_) {
    const bool better =
        offer.score > best_score ||
        (offer.score == best_score && candidate > best);
    if (better) {
      best = candidate;
      best_score = offer.score;
    }
  }
  if (best != kInvalidNode) {
    rep_ = best;
    sim_->journal().Emit("election.select", sim_->now(),
                         [&](obs::JournalEvent& e) {
                           e.Node(id_).Epoch(epoch_).Int(
                               "rep", static_cast<int64_t>(best));
                         });
    Message msg;
    msg.type = MessageType::kAccept;
    msg.from = id_;
    msg.to = best;
    msg.epoch = epoch_;
    sim_->Send(msg);
  } else {
    rep_ = id_;
  }
  // Release the representative this node had before re-electing
  // (maintenance); a lost recall here produces a spurious representative.
  if (prior_rep_ != kInvalidNode && prior_rep_ != rep_) {
    SendRecall(prior_rep_);
  }
  prior_rep_ = kInvalidNode;
}

void SnapshotAgent::OnAccept(const Message& msg) {
  if (mode_ == NodeMode::kPassive) return;  // passive nodes never represent
  represents_[msg.from] = msg.epoch;
}

void SnapshotAgent::ScheduleRefinement(Time t) {
  if (refinement_scheduled_) return;
  refinement_scheduled_ = true;
  sim_->ScheduleAt(t, [this] { RefinementTick(); });
}

void SnapshotAgent::RefinementTick() {
  refinement_scheduled_ = false;
  if (!electing_ || !sim_->alive(id_)) return;
  const Time now = sim_->now();

  // Rule-0: break mutual-representation ties by Cand-list length, then id.
  if (mode_ == NodeMode::kUndefined && rep_ != id_ &&
      represents_.count(rep_) > 0) {
    const auto it = heard_cand_len_.find(rep_);
    const size_t other_len = it == heard_cand_len_.end() ? 0 : it->second;
    if (my_cand_len_ > other_len ||
        (my_cand_len_ == other_len && id_ > rep_)) {
      BecomeActive();
    }
  }
  // Rule-1: unrepresented nodes stay active.
  if (mode_ == NodeMode::kUndefined && rep_ == id_) {
    BecomeActive();
  }
  // Rule-2: an ACTIVE node recalls any representative it still has.
  // (Normally handled inside BecomeActive; this covers nodes activated
  // through other paths.)
  if (mode_ == NodeMode::kActive && rep_ != id_ && !recall_sent_) {
    SendRecall(rep_);
    rep_ = id_;
  }
  // Rule-3: represented leaf nodes ask their representative to stay ACTIVE
  // and await the acknowledgment before turning PASSIVE. An acknowledgment
  // broadcast overheard *before* this node qualified for Rule-3 (e.g. while
  // it still represented someone) already proves the representative knows
  // about it and is ACTIVE — no notify round trip needed. Otherwise a lost
  // message or acknowledgment is retried ("reconsider in the next
  // iteration", §5).
  if (mode_ == NodeMode::kUndefined && rep_ != id_ && represents_.empty()) {
    if (rep_ack_seen_) {
      BecomePassive();
    } else if (stay_active_last_ < 0 ||
               now >= stay_active_last_ + config_.stay_active_resend) {
      stay_active_last_ = now;
      Message msg;
      msg.type = MessageType::kStayActive;
      msg.from = id_;
      msg.to = rep_;
      msg.epoch = epoch_;
      sim_->Send(msg);
    }
  }
  // Rule-4: clean up. After MAX_WAIT an undecided node goes ACTIVE with
  // probability 1 - P_wait per round (and deterministically at the hard
  // cap, guaranteeing termination).
  if (mode_ == NodeMode::kUndefined && now >= refine_deadline_) {
    if (now >= hard_deadline_ || !rng_.Bernoulli(config_.p_wait)) {
      BecomeActive();
    }
  }

  if (mode_ == NodeMode::kUndefined) {
    ScheduleRefinement(now + 1);
  } else {
    electing_ = false;
  }
}

void SnapshotAgent::BecomeActive() {
  if (mode_ == NodeMode::kActive) return;
  mode_ = NodeMode::kActive;
  electing_ = false;
  sim_->journal().Emit("election.mode", sim_->now(),
                       [this](obs::JournalEvent& e) {
                         e.Node(id_).Epoch(epoch_).Str("mode", "active");
                       });
  // Rule-2 follow-through: an ACTIVE node must not be represented.
  if (rep_ != id_ && !recall_sent_) {
    SendRecall(rep_);
  }
  rep_ = id_;
}

void SnapshotAgent::BecomePassive() {
  if (mode_ == NodeMode::kPassive) return;
  mode_ = NodeMode::kPassive;
  electing_ = false;
  sim_->journal().Emit("election.mode", sim_->now(),
                       [this](obs::JournalEvent& e) {
                         e.Node(id_).Epoch(epoch_).Str("mode", "passive");
                       });
}

void SnapshotAgent::SendRecall(NodeId old_rep) {
  recall_sent_ = true;
  Message msg;
  msg.type = MessageType::kRecall;
  msg.from = id_;
  msg.to = old_rep;
  msg.epoch = epoch_;
  sim_->Send(msg);
}

void SnapshotAgent::OnRecall(const Message& msg) {
  represents_.erase(msg.from);
}

void SnapshotAgent::OnStayActive(const Message& msg) {
  if (mode_ == NodeMode::kPassive) {
    // §5: modes never flip PASSIVE -> ACTIVE during refinement. The sender
    // will fall back to Rule-4.
    return;
  }
  // Heal a lost Accept: a StayActive implies the sender elected us.
  represents_.insert({msg.from, msg.epoch});
  BecomeActive();
  // Skip the ack only when a broadcast covering this sender went out in
  // this very time unit — the sender will hear it (its StayActive merely
  // crossed ours in flight). A StayActive arriving on a *later* tick from
  // an already-acked member means the broadcast was lost: ack again.
  const auto acked = acked_.find(msg.from);
  const bool covered_this_tick = acked != acked_.end() &&
                                 acked->second == msg.epoch &&
                                 last_ack_broadcast_ == sim_->now();
  if (!covered_this_tick) {
    ScheduleRepAck();
  }
}

void SnapshotAgent::ScheduleRepAck() {
  if (ack_scheduled_) return;
  ack_scheduled_ = true;
  // Same time unit, after the tick's remaining deliveries: one broadcast
  // acknowledges every member that pinged this tick.
  sim_->ScheduleAfter(0, [this] { BroadcastRepAck(); });
}

void SnapshotAgent::BroadcastRepAck() {
  ack_scheduled_ = false;
  if (!sim_->alive(id_)) return;
  // One broadcast acknowledges every represented node at once (§5,
  // footnote: cheaper than individual acknowledgments).
  Message msg;
  msg.type = MessageType::kRepAck;
  msg.from = id_;
  msg.to = kBroadcastId;
  msg.epoch = epoch_;
  msg.ids.reserve(represents_.size());
  msg.epochs.reserve(represents_.size());
  for (const auto& [j, e] : represents_) {
    msg.ids.push_back(j);
    msg.epochs.push_back(e);
  }
  acked_ = represents_;
  last_ack_broadcast_ = sim_->now();
  sim_->Send(msg);
}

void SnapshotAgent::OnRepAck(const Message& msg) {
  SNAPQ_CHECK_EQ(msg.ids.size(), msg.epochs.size());
  for (size_t i = 0; i < msg.ids.size(); ++i) {
    const NodeId j = msg.ids[i];
    const int64_t e = msg.epochs[i];
    if (j == id_) {
      // Rule-3 acknowledgment: our representative confirmed. The PASSIVE
      // transition keeps Rule-3's full precondition — in particular a node
      // that still represents members must stay in play, or they would be
      // stranded; it remembers the confirmation for when they leave.
      if (mode_ == NodeMode::kUndefined && rep_ == msg.from && e == epoch_) {
        rep_ack_seen_ = true;
        if (represents_.empty()) BecomePassive();
      }
      continue;
    }
    // Spurious-representative self-correction (§3): if another node
    // acknowledges representing j at a newer epoch, our claim is stale.
    const auto it = represents_.find(j);
    if (it != represents_.end() && msg.from != id_ && e > it->second) {
      represents_.erase(it);
    }
  }
}

// ---------------------------------------------------------------------------
// Maintenance (§5.1)
// ---------------------------------------------------------------------------

void SnapshotAgent::MaintenanceTick() {
  if (!sim_->alive(id_)) return;

  // LEACH-style rotation (§5.1): after serving rotation_rounds consecutive
  // rounds, a representative steps down and sits out a cooldown so the
  // energy cost of the role rotates through the neighborhood.
  if (cooldown_rounds_ > 0) --cooldown_rounds_;
  if (config_.rotation_rounds > 0 && mode_ == NodeMode::kActive &&
      !represents_.empty()) {
    if (++rounds_served_ >= config_.rotation_rounds) {
      Message msg;
      msg.type = MessageType::kResign;
      msg.from = id_;
      msg.to = kBroadcastId;
      msg.epoch = epoch_;
      for (const auto& [j, e] : represents_) msg.ids.push_back(j);
      sim_->journal().Emit(
          "maintenance.resign", sim_->now(), [&](obs::JournalEvent& e) {
            e.Node(id_).Epoch(epoch_).Str("reason", "rotation").Int(
                "members", static_cast<int64_t>(represents_.size()));
          });
      sim_->Send(msg);
      represents_.clear();
      rounds_served_ = 0;
      cooldown_rounds_ = config_.rotation_cooldown;
    }
  } else if (mode_ != NodeMode::kActive || represents_.empty()) {
    rounds_served_ = 0;
  }

  // Energy-based resignation: a depleted representative steps down and
  // ignores invitations from then on; released nodes re-elect.
  if (config_.resign_battery_fraction > 0.0 && mode_ == NodeMode::kActive &&
      !resigned_ && !represents_.empty()) {
    const double initial = sim_->config().energy.initial_battery;
    if (sim_->battery(id_).remaining() <
        config_.resign_battery_fraction * initial) {
      Message msg;
      msg.type = MessageType::kResign;
      msg.from = id_;
      msg.to = kBroadcastId;
      msg.epoch = epoch_;
      for (const auto& [j, e] : represents_) msg.ids.push_back(j);
      sim_->journal().Emit(
          "maintenance.resign", sim_->now(), [&](obs::JournalEvent& e) {
            e.Node(id_).Epoch(epoch_).Str("reason", "energy").Int(
                "members", static_cast<int64_t>(represents_.size()));
          });
      sim_->Send(msg);
      resigned_ = true;
      represents_.clear();
    }
  }

  if (electing_) return;

  switch (mode_) {
    case NodeMode::kActive:
      // A lone active (represents only itself) periodically looks for a
      // representative of its own.
      if (represents_.empty()) BeginLocalReelection();
      break;
    case NodeMode::kPassive: {
      if (rep_ == id_ || rep_ == kInvalidNode) {
        BeginLocalReelection();
        break;
      }
      // Heartbeat: report our value; the representative answers with its
      // estimate, which we check against the threshold.
      heartbeat_value_ = measurement();
      awaiting_reply_ = true;
      Message msg;
      msg.type = MessageType::kHeartbeat;
      msg.from = id_;
      msg.to = rep_;
      msg.value = heartbeat_value_;
      msg.epoch = epoch_;
      sim_->Send(msg);
      const int64_t sent_epoch = epoch_;
      sim_->ScheduleAfter(config_.heartbeat_timeout, [this, sent_epoch] {
        CheckHeartbeatReply(sent_epoch);
      });
      break;
    }
    case NodeMode::kUndefined:
      BeginLocalReelection();
      break;
  }
}

void SnapshotAgent::OnHeartbeat(const Message& msg, bool snooped) {
  if (snooped) {
    ObserveNeighbor(msg.from, msg.value);
    return;
  }
  if (resigned_ || mode_ != NodeMode::kActive) {
    // Stay silent; the sender times out and re-elects.
    ObserveNeighbor(msg.from, msg.value);
    return;
  }
  represents_.insert({msg.from, msg.epoch});  // heal a lost Accept
  // Record the *pre-update* estimate so the accuracy check is honest, then
  // fine-tune the model with the reported value (§3). All heartbeats of a
  // round are answered with one batched broadcast — a representative with
  // many members would otherwise burn its battery on unicast replies.
  const std::optional<double> estimate = models_.Estimate(msg.from);
  if (estimate.has_value()) {
    pending_replies_[msg.from] = *estimate;
    if (!reply_scheduled_) {
      reply_scheduled_ = true;
      sim_->ScheduleAfter(0, [this] { BroadcastHeartbeatReplies(); });
    }
  }
  ObserveNeighbor(msg.from, msg.value);
}

void SnapshotAgent::BroadcastHeartbeatReplies() {
  reply_scheduled_ = false;
  if (pending_replies_.empty() || !sim_->alive(id_)) {
    pending_replies_.clear();
    return;
  }
  Message reply;
  reply.type = MessageType::kHeartbeatReply;
  reply.from = id_;
  reply.to = kBroadcastId;
  reply.ids.reserve(pending_replies_.size());
  reply.values.reserve(pending_replies_.size());
  for (const auto& [member, estimate] : pending_replies_) {
    reply.ids.push_back(member);
    reply.values.push_back(estimate);
  }
  pending_replies_.clear();
  sim_->Send(reply);
}

void SnapshotAgent::OnHeartbeatReply(const Message& msg) {
  if (!awaiting_reply_ || msg.from != rep_) return;
  // Batched reply: find this node's estimate; an omitted entry means the
  // representative has no model for us (treated as a miss -> timeout).
  SNAPQ_CHECK_EQ(msg.ids.size(), msg.values.size());
  for (size_t i = 0; i < msg.ids.size(); ++i) {
    if (msg.ids[i] != id_) continue;
    awaiting_reply_ = false;
    heartbeat_misses_ = 0;
    // An out-of-bounds estimate means the model failed (data drift), not
    // the channel: re-elect immediately (§3). The violation becomes its
    // own trace root, causally linked to the heartbeat exchange that
    // detected it, so the analyzer can tie re-election traffic back to the
    // model breach (fig13-style spurious-reconfiguration forensics).
    if (config_.metric.Distance(heartbeat_value_, msg.values[i]) >
        config_.threshold) {
      sim_->registry().GetCounter("model.violations")->Inc();
      sim_->journal().Emit(
          "model.violation", sim_->now(), [&](obs::JournalEvent& e) {
            e.Node(id_).Epoch(epoch_)
                .Int("rep", static_cast<int64_t>(msg.from))
                .Num("reported", heartbeat_value_)
                .Num("estimate", msg.values[i]);
          });
      const TraceContext vctx =
          sim_->MintTraceRoot(obs::TraceRootKind::kViolation, id_);
      Simulator::TraceScope scope(*sim_, vctx);
      BeginLocalReelection();
    }
    return;
  }
}

void SnapshotAgent::CheckHeartbeatReply(int64_t sent_epoch) {
  if (!awaiting_reply_ || epoch_ != sent_epoch) return;
  awaiting_reply_ = false;
  // No answer: either the representative failed or the round trip was
  // lost. Tolerate a few consecutive misses before tearing down the
  // representation.
  if (++heartbeat_misses_ >= config_.heartbeat_miss_limit) {
    heartbeat_misses_ = 0;
    BeginLocalReelection();
  }
}

void SnapshotAgent::OnResign(const Message& msg) {
  represents_.erase(msg.from);
  if (rep_ == msg.from && mode_ == NodeMode::kPassive) {
    BeginLocalReelection();
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void SnapshotAgent::HandleMessage(const Message& msg, bool snooped) {
  if (!sim_->alive(id_)) return;
  switch (msg.type) {
    case MessageType::kInvitation:
      OnInvitation(msg);
      return;
    case MessageType::kCandList:
      if (!snooped) OnCandList(msg);
      return;
    case MessageType::kAccept:
      if (!snooped) OnAccept(msg);
      return;
    case MessageType::kRecall:
      if (!snooped) OnRecall(msg);
      return;
    case MessageType::kStayActive:
      if (!snooped) OnStayActive(msg);
      return;
    case MessageType::kRepAck:
      OnRepAck(msg);
      return;
    case MessageType::kHeartbeat:
      OnHeartbeat(msg, snooped);
      return;
    case MessageType::kHeartbeatReply:
      if (!snooped) OnHeartbeatReply(msg);
      return;
    case MessageType::kResign:
      OnResign(msg);
      return;
    case MessageType::kData:
      ObserveNeighbor(msg.from, msg.value);
      return;
    case MessageType::kQueryRequest:
    case MessageType::kQueryReply:
      // Query traffic belongs to the query layer (e.g. the message-level
      // in-network aggregator).
      if (!snooped && query_handler_) query_handler_(msg);
      return;
    case MessageType::kMessageTypeCount:
      return;  // sentinel, never sent
  }
}

}  // namespace snapq
