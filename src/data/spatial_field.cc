#include "data/spatial_field.h"

#include <cmath>

#include "common/check.h"

namespace snapq {

std::vector<TimeSeries> GenerateSpatialField(
    const SpatialFieldConfig& config, const std::vector<Point>& positions,
    Rng& rng) {
  SNAPQ_CHECK_GT(config.num_drivers, 0u);
  SNAPQ_CHECK_GT(config.correlation_length, 0.0);
  const size_t n = positions.size();

  // Driver centers spread over the bounding box of the deployment.
  Rect bounds{positions.empty() ? 0.0 : positions[0].x,
              positions.empty() ? 0.0 : positions[0].y,
              positions.empty() ? 0.0 : positions[0].x,
              positions.empty() ? 0.0 : positions[0].y};
  for (const Point& p : positions) {
    bounds.min_x = std::min(bounds.min_x, p.x);
    bounds.min_y = std::min(bounds.min_y, p.y);
    bounds.max_x = std::max(bounds.max_x, p.x);
    bounds.max_y = std::max(bounds.max_y, p.y);
  }
  std::vector<Point> centers(config.num_drivers);
  for (Point& c : centers) {
    c.x = rng.UniformDouble(bounds.min_x, bounds.max_x + 1e-9);
    c.y = rng.UniformDouble(bounds.min_y, bounds.max_y + 1e-9);
  }

  // Per-node driver weights.
  const double two_l2 =
      2.0 * config.correlation_length * config.correlation_length;
  std::vector<std::vector<double>> weights(n);
  std::vector<double> offsets(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i].resize(config.num_drivers);
    double total = 0.0;
    for (size_t k = 0; k < config.num_drivers; ++k) {
      weights[i][k] =
          std::exp(-DistanceSquared(positions[i], centers[k]) / two_l2);
      total += weights[i][k];
    }
    if (config.normalize_weights) {
      if (total > 1e-300) {
        for (double& w : weights[i]) w /= total;
      } else {
        // All drivers numerically out of reach: follow the nearest one.
        size_t nearest = 0;
        for (size_t k = 1; k < config.num_drivers; ++k) {
          if (DistanceSquared(positions[i], centers[k]) <
              DistanceSquared(positions[i], centers[nearest])) {
            nearest = k;
          }
        }
        for (double& w : weights[i]) w = 0.0;
        weights[i][nearest] = 1.0;
      }
    }
    offsets[i] = rng.UniformDouble(0.0, config.offset_max);
  }

  // Drivers evolve as random walks; nodes project them.
  std::vector<double> drivers(config.num_drivers, 0.0);
  std::vector<TimeSeries> out(n);
  for (size_t t = 0; t < config.horizon; ++t) {
    if (t > 0) {
      for (double& d : drivers) {
        if (rng.Bernoulli(config.driver_move_probability)) {
          d += rng.Gaussian(0.0, config.driver_sigma);
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      double v = offsets[i];
      for (size_t k = 0; k < config.num_drivers; ++k) {
        v += weights[i][k] * drivers[k];
      }
      if (config.observation_noise > 0.0) {
        v += rng.Gaussian(0.0, config.observation_noise);
      }
      out[i].Append(v);
    }
  }
  return out;
}

double SeriesCorrelation(const TimeSeries& a, const TimeSeries& b) {
  SNAPQ_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  double sa = 0.0, sb = 0.0;
  for (size_t t = 0; t < n; ++t) {
    sa += a.at(t);
    sb += b.at(t);
  }
  const double ma = sa / static_cast<double>(n);
  const double mb = sb / static_cast<double>(n);
  double cab = 0.0, caa = 0.0, cbb = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double da = a.at(t) - ma;
    const double db = b.at(t) - mb;
    cab += da * db;
    caa += da * da;
    cbb += db * db;
  }
  if (caa <= 0.0 || cbb <= 0.0) return 0.0;
  return cab / std::sqrt(caa * cbb);
}

}  // namespace snapq
