// Node placement generators for building simulated deployments.
#ifndef SNAPQ_NET_TOPOLOGY_H_
#define SNAPQ_NET_TOPOLOGY_H_

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

namespace snapq {

/// Uniform-random placement of `n` nodes in `area` (the paper's setup:
/// 100 nodes in the unit square).
std::vector<Point> PlaceUniform(size_t n, const Rect& area, Rng& rng);

/// Regular grid placement (ceil(sqrt(n)) columns), jittered by
/// `jitter_fraction` of the cell size. Useful for controlled tests.
std::vector<Point> PlaceGrid(size_t n, const Rect& area,
                             double jitter_fraction, Rng& rng);

/// Clustered placement: `num_clusters` uniform cluster centers, nodes
/// Gaussian-scattered around them. Models dense pockets of redundant nodes
/// (the redundancy motivation of [2,7]).
std::vector<Point> PlaceClustered(size_t n, size_t num_clusters,
                                  double cluster_stddev, const Rect& area,
                                  Rng& rng);

}  // namespace snapq

#endif  // SNAPQ_NET_TOPOLOGY_H_
