#include "net/link_model.h"

#include <algorithm>
#include <type_traits>

#include "common/check.h"

namespace snapq {
namespace {

// 100k-node safety audit: the packed link_loss_ key from * num_nodes + to
// needs headroom for num_nodes^2, which a 64-bit key has exactly when the
// id type stays within 32 bits. Anyone widening NodeId must widen the key.
static_assert(std::is_unsigned_v<NodeId>, "packed keys assume unsigned ids");
static_assert(sizeof(uint64_t) >= 2 * sizeof(NodeId),
              "link_loss_ key from * num_nodes + to would overflow");

double MaxRange(const std::vector<double>& ranges) {
  double max_range = 0.0;
  for (const double r : ranges) max_range = std::max(max_range, r);
  return max_range;
}

}  // namespace

LinkModel::LinkModel(std::vector<Point> positions, std::vector<double> ranges,
                     double loss_probability)
    : positions_(std::move(positions)),
      ranges_(std::move(ranges)),
      loss_probability_(loss_probability),
      max_range_(MaxRange(ranges_)),
      index_(positions_, max_range_ > 0.0 ? max_range_ : 1.0) {
  SNAPQ_CHECK_EQ(positions_.size(), ranges_.size());
  SNAPQ_CHECK(loss_probability_ >= 0.0 && loss_probability_ <= 1.0);
  const size_t n = positions_.size();
  // Ids must stay below the broadcast/invalid sentinels.
  SNAPQ_CHECK_LE(n, static_cast<size_t>(kBroadcastId));
  row_offset_.resize(n);
  row_length_.resize(n);
  overlay_index_.assign(n, -1);
  std::vector<NodeId> row;
  for (NodeId i = 0; i < n; ++i) {
    BuildRow(i, &row);
    row_offset_[i] = adjacency_.size();
    row_length_[i] = static_cast<uint32_t>(row.size());
    adjacency_.insert(adjacency_.end(), row.begin(), row.end());
  }
}

void LinkModel::BuildRow(NodeId id, std::vector<NodeId>* out) const {
  out->clear();
  const Point& p = positions_[id];
  const double r = ranges_[id];
  const double r2 = r * r;
  index_.ForEachCandidate(p, r, [&](NodeId j) {
    if (j != id && DistanceSquared(p, positions_[j]) <= r2) {
      out->push_back(j);
    }
  });
  // Candidates arrive in per-cell order; the adjacency invariant (and the
  // historical brute-force build) is ascending id order.
  std::sort(out->begin(), out->end());
}

bool LinkModel::CanReach(NodeId from, NodeId to) const {
  SNAPQ_DCHECK(from < num_nodes() && to < num_nodes());
  if (from == to) return false;
  const double r = ranges_[from];
  return DistanceSquared(positions_[from], positions_[to]) <= r * r;
}

bool LinkModel::SampleLoss(NodeId from, NodeId to, Rng& rng) const {
  double p = loss_probability_;
  if (!link_loss_.empty()) {
    const auto it = link_loss_.find(static_cast<uint64_t>(from) * num_nodes() +
                                    to);
    if (it != link_loss_.end()) p = it->second;
  }
  return rng.Bernoulli(p);
}

void LinkModel::SetLinkLoss(NodeId from, NodeId to, double loss_probability) {
  SNAPQ_CHECK(loss_probability >= 0.0 && loss_probability <= 1.0);
  link_loss_[static_cast<uint64_t>(from) * num_nodes() + to] =
      loss_probability;
}

std::vector<NodeId>& LinkModel::MutableRow(NodeId id) {
  const int32_t overlay = overlay_index_[id];
  if (overlay >= 0) return overlay_rows_[static_cast<size_t>(overlay)];
  overlay_index_[id] = static_cast<int32_t>(overlay_rows_.size());
  const NodeId* base = adjacency_.data() + row_offset_[id];
  overlay_rows_.emplace_back(base, base + row_length_[id]);
  return overlay_rows_.back();
}

void LinkModel::Compact() {
  const size_t n = num_nodes();
  std::vector<NodeId> flat;
  flat.reserve(adjacency_.size());
  std::vector<uint64_t> offsets(n);
  std::vector<uint32_t> lengths(n);
  for (NodeId i = 0; i < n; ++i) {
    const std::span<const NodeId> row = Reachable(i);
    offsets[i] = flat.size();
    lengths[i] = static_cast<uint32_t>(row.size());
    flat.insert(flat.end(), row.begin(), row.end());
  }
  adjacency_ = std::move(flat);
  row_offset_ = std::move(offsets);
  row_length_ = std::move(lengths);
  overlay_rows_.clear();
  std::fill(overlay_index_.begin(), overlay_index_.end(), -1);
}

void LinkModel::SetPosition(NodeId id, const Point& position) {
  SNAPQ_CHECK_LT(id, num_nodes());
  const Point old = positions_[id];
  positions_[id] = position;
  index_.Move(id, old, position);

  // Rebuild the mover's own row from the grid.
  std::vector<NodeId> row;
  BuildRow(id, &row);
  MutableRow(id) = std::move(row);

  // Patch every other row's membership of the mover. Only nodes within
  // the maximum transmission range of the old or the new position can
  // possibly gain or lose the link, and the grid hands us exactly those.
  std::vector<NodeId> candidates;
  const auto collect = [&](NodeId j) {
    if (j != id) candidates.push_back(j);
  };
  index_.ForEachCandidate(old, max_range_, collect);
  index_.ForEachCandidate(position, max_range_, collect);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const NodeId j : candidates) {
    const double rj = ranges_[j];
    const bool now_reachable =
        DistanceSquared(positions_[j], position) <= rj * rj;
    const std::span<const NodeId> row_j = Reachable(j);
    const auto it = std::lower_bound(row_j.begin(), row_j.end(), id);
    const bool was_reachable = it != row_j.end() && *it == id;
    if (now_reachable == was_reachable) continue;
    std::vector<NodeId>& mutable_row = MutableRow(j);
    const auto mit =
        std::lower_bound(mutable_row.begin(), mutable_row.end(), id);
    if (now_reachable) {
      mutable_row.insert(mit, id);
    } else {
      mutable_row.erase(mit);
    }
  }

  // Keep the overlay small: fold it back into the flat array once it
  // covers a fraction of the rows (contents are unchanged by this).
  if (overlay_rows_.size() > std::max<size_t>(64, num_nodes() / 4)) {
    Compact();
  }
}

bool LinkModel::IsConnected() const {
  const size_t n = num_nodes();
  if (n == 0) return true;
  // The undirected closure (i ~ j if either can reach the other) needs
  // in-edges too, so build the transpose of the stored adjacency: one
  // counting pass, one fill pass — O(n + edges), no distance tests.
  std::vector<uint64_t> rev_offset(n + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    for (const NodeId j : Reachable(i)) ++rev_offset[j + 1];
  }
  for (size_t i = 1; i <= n; ++i) rev_offset[i] += rev_offset[i - 1];
  std::vector<NodeId> rev(rev_offset[n]);
  std::vector<uint64_t> cursor(rev_offset.begin(), rev_offset.end() - 1);
  for (NodeId i = 0; i < n; ++i) {
    for (const NodeId j : Reachable(i)) {
      rev[cursor[j]++] = i;
    }
  }

  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    const auto visit = [&](NodeId v) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    };
    for (const NodeId v : Reachable(u)) visit(v);
    const NodeId* in = rev.data() + rev_offset[u];
    const size_t in_count = rev_offset[u + 1] - rev_offset[u];
    for (size_t k = 0; k < in_count; ++k) visit(in[k]);
  }
  return visited == n;
}

}  // namespace snapq
