#include "api/experiment.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "exec/parallel_sweep.h"
#include "obs/metric_registry.h"

namespace snapq {

std::unique_ptr<SensorNetwork> BuildSensitivityNetwork(
    const SensitivityConfig& config) {
  NetworkConfig net_config;
  net_config.num_nodes = config.num_nodes;
  net_config.transmission_range = config.transmission_range;
  net_config.loss_probability = config.loss_probability;
  net_config.snapshot.threshold = config.threshold;
  net_config.snapshot.cache.capacity_bytes = config.cache_bytes;
  net_config.snapshot.cache.policy = config.cache_policy;
  net_config.snapshot.cache.penalty = config.cache_penalty;
  net_config.seed = config.seed;

  auto network = std::make_unique<SensorNetwork>(net_config);
  if (config.trace_sampling > 0.0) {
    obs::TracerConfig tracer_config;
    tracer_config.sampling = config.trace_sampling;
    tracer_config.seed = config.seed;
    network->EnableTracing(tracer_config);
  }

  Rng data_rng = Rng(config.seed).SplitNamed("data");
  std::vector<TimeSeries> series;
  switch (config.workload) {
    case WorkloadKind::kRandomWalk: {
      RandomWalkConfig walk;
      walk.num_nodes = config.num_nodes;
      walk.num_classes = config.num_classes;
      walk.horizon = static_cast<size_t>(config.discovery_time) + 1;
      series = GenerateRandomWalk(walk, data_rng).series;
      break;
    }
    case WorkloadKind::kWeather: {
      WeatherConfig weather;
      series = GenerateWeatherWindows(
          weather, config.num_nodes,
          static_cast<size_t>(config.discovery_time) + 1, data_rng);
      break;
    }
  }
  Result<Dataset> dataset = Dataset::Create(std::move(series));
  SNAPQ_CHECK(dataset.ok());
  const Status attached = network->AttachDataset(std::move(*dataset));
  SNAPQ_CHECK(attached.ok());
  network->ScheduleTrainingBroadcasts(0, config.train_ticks);
  return network;
}

SensitivityOutcome RunSensitivityTrial(const SensitivityConfig& config) {
  SensitivityOutcome outcome;
  outcome.network = BuildSensitivityNetwork(config);
  // Training + silence: run up to the discovery instant, then elect.
  outcome.network->RunUntil(config.discovery_time);
  const MetricsSnapshot before = outcome.network->sim().metrics().Snapshot();
  outcome.stats = outcome.network->RunElection(config.discovery_time);
  outcome.election_traffic =
      outcome.network->sim().metrics().Delta(before);
  // Fold the trial's instruments into the ambient metric sink — the
  // process-wide registry normally, or a per-task registry under a
  // parallel sweep — so bench drivers export one merged sidecar across
  // seeds (counters and histograms add; gauges keep the high-watermark).
  obs::MetricSink().MergeFrom(outcome.network->sim().registry());
  return outcome;
}

double AverageRepresentationSse(const SensorNetwork& network) {
  RunningStats errors;
  const size_t n = network.num_nodes();
  for (NodeId j = 0; j < n; ++j) {
    const SnapshotAgent& node = network.agent(j);
    if (node.mode() != NodeMode::kPassive) continue;
    const NodeId rep = node.representative();
    if (rep == j || rep == kInvalidNode) continue;
    const std::optional<double> estimate =
        network.agent(rep).EstimateFor(j);
    if (!estimate.has_value()) continue;
    const double err = node.measurement() - *estimate;
    errors.Add(err * err);
  }
  return errors.mean();
}

RunningStats MeanOverSeeds(size_t repeats, uint64_t base_seed,
                           const std::function<double(uint64_t)>& fn,
                           int jobs) {
  // Trials run in parallel, but the Welford accumulator folds the raw
  // per-seed samples in seed order on this thread — RunningStats::Merge
  // is not bitwise-identical to sequential Add, so replaying the samples
  // is what keeps --jobs N equal to --jobs 1 down to the last ULP.
  const std::vector<double> samples = exec::ParallelMap<double>(
      repeats, jobs,
      [&fn, base_seed](size_t r) { return fn(base_seed + r); });
  RunningStats stats;
  for (double sample : samples) stats.Add(sample);
  return stats;
}

}  // namespace snapq
