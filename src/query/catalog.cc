#include "query/catalog.h"

#include "common/string_util.h"

namespace snapq {

Catalog Catalog::WithStandardRegions(const Rect& area) {
  Catalog catalog;
  const double mx = (area.min_x + area.max_x) / 2.0;
  const double my = (area.min_y + area.max_y) / 2.0;
  catalog.RegisterRegion("EVERYWHERE", area);
  catalog.RegisterRegion("NORTH_HALF",
                         Rect{area.min_x, my, area.max_x, area.max_y});
  catalog.RegisterRegion("SOUTH_HALF",
                         Rect{area.min_x, area.min_y, area.max_x, my});
  catalog.RegisterRegion("EAST_HALF",
                         Rect{mx, area.min_y, area.max_x, area.max_y});
  catalog.RegisterRegion("WEST_HALF",
                         Rect{area.min_x, area.min_y, mx, area.max_y});
  catalog.RegisterRegion("NORTH_EAST_QUADRANT",
                         Rect{mx, my, area.max_x, area.max_y});
  catalog.RegisterRegion("NORTH_WEST_QUADRANT",
                         Rect{area.min_x, my, mx, area.max_y});
  catalog.RegisterRegion("SOUTH_EAST_QUADRANT",
                         Rect{mx, area.min_y, area.max_x, my});
  catalog.RegisterRegion("SOUTH_WEST_QUADRANT",
                         Rect{area.min_x, area.min_y, mx, my});
  return catalog;
}

void Catalog::RegisterRegion(const std::string& name, const Rect& rect) {
  regions_[ToUpper(name)] = rect;
}

Result<Rect> Catalog::LookupRegion(const std::string& name) const {
  const auto it = regions_.find(ToUpper(name));
  if (it == regions_.end()) {
    return Status::NotFound("unknown region: " + name);
  }
  return it->second;
}

std::vector<std::string> Catalog::RegionNames() const {
  std::vector<std::string> names;
  names.reserve(regions_.size());
  for (const auto& [name, rect] : regions_) names.push_back(name);
  return names;
}

void Catalog::RegisterMeasurementColumn(const std::string& name) {
  measurement_cols_[ToUpper(name)] = true;
}

bool Catalog::IsValidColumn(const std::string& name) const {
  if (EqualsIgnoreCase(name, "loc") || EqualsIgnoreCase(name, "value") ||
      name == "*") {
    return true;
  }
  return measurement_cols_.count(ToUpper(name)) > 0;
}

}  // namespace snapq
