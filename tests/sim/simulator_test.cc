#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace snapq {
namespace {

/// Three nodes in a line, unit spacing; `range` picks the connectivity.
Simulator MakeLine(double range, SimConfig config = {}) {
  return Simulator({{0, 0}, {1, 0}, {2, 0}}, {range, range, range}, config);
}

Message DataMsg(NodeId from, double value, NodeId to = kBroadcastId) {
  Message m;
  m.type = MessageType::kData;
  m.from = from;
  m.to = to;
  m.value = value;
  return m;
}

TEST(SimulatorTest, BroadcastReachesNeighborsInRange) {
  Simulator sim = MakeLine(1.0);
  std::vector<int> received(3, 0);
  for (NodeId i = 0; i < 3; ++i) {
    sim.SetHandler(i, [&received, i](const Message&, bool) { ++received[i]; });
  }
  sim.Send(DataMsg(0, 1.0));
  sim.RunAll();
  EXPECT_EQ(received[0], 0);  // no self-delivery
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 0);  // out of range
}

TEST(SimulatorTest, UnicastDeliversOnlyToAddressee) {
  Simulator sim = MakeLine(5.0);
  std::vector<int> received(3, 0);
  for (NodeId i = 0; i < 3; ++i) {
    sim.SetHandler(i, [&received, i](const Message&, bool) { ++received[i]; });
  }
  sim.Send(DataMsg(0, 1.0, /*to=*/2));
  sim.RunAll();
  EXPECT_EQ(received[1], 0);  // in range but not addressed, no snooping
  EXPECT_EQ(received[2], 1);
}

TEST(SimulatorTest, SnoopingOverhearsUnicasts) {
  SimConfig config;
  config.snoop_probability = 1.0;
  Simulator sim = MakeLine(5.0, config);
  int snooped = 0, direct = 0;
  sim.SetHandler(1, [&](const Message&, bool s) { s ? ++snooped : ++direct; });
  sim.SetHandler(2, [&](const Message&, bool s) { s ? ++snooped : ++direct; });
  sim.Send(DataMsg(0, 1.0, /*to=*/2));
  sim.RunAll();
  EXPECT_EQ(direct, 1);   // node 2
  EXPECT_EQ(snooped, 1);  // node 1 overheard
  EXPECT_EQ(sim.metrics().snooped(MessageType::kData), 1u);
}

TEST(SimulatorTest, LossDropsDeliveries) {
  SimConfig config;
  config.loss_probability = 1.0;
  Simulator sim = MakeLine(5.0, config);
  int received = 0;
  sim.SetHandler(1, [&](const Message&, bool) { ++received; });
  sim.Send(DataMsg(0, 1.0));
  sim.RunAll();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(sim.metrics().total_lost(), 2u);  // both receivers dropped
  EXPECT_EQ(sim.metrics().total_sent(), 1u);
}

TEST(SimulatorTest, SendingChargesTransmitCost) {
  SimConfig config;
  config.energy.initial_battery = 2.0;
  Simulator sim = MakeLine(1.0, config);
  EXPECT_TRUE(sim.Send(DataMsg(0, 1.0)));
  EXPECT_DOUBLE_EQ(sim.battery(0).remaining(), 1.0);
  EXPECT_TRUE(sim.Send(DataMsg(0, 1.0)));  // final transmission
  EXPECT_FALSE(sim.alive(0));
  EXPECT_FALSE(sim.Send(DataMsg(0, 1.0)));  // dead nodes cannot send
  EXPECT_EQ(sim.metrics().total_sent(), 2u);
}

TEST(SimulatorTest, DeadNodesDoNotReceive) {
  Simulator sim = MakeLine(5.0);
  int received = 0;
  sim.SetHandler(1, [&](const Message&, bool) { ++received; });
  sim.Kill(1);
  sim.Send(DataMsg(0, 1.0));
  sim.RunAll();
  EXPECT_EQ(received, 0);
}

TEST(SimulatorTest, CacheOpChargesTenthOfTransmission) {
  SimConfig config;
  config.energy.initial_battery = 1.0;
  Simulator sim = MakeLine(1.0, config);
  sim.ChargeCacheOp(0);
  EXPECT_NEAR(sim.battery(0).remaining(), 0.9, 1e-12);
  EXPECT_EQ(sim.metrics().cache_ops(), 1u);
}

TEST(SimulatorTest, PerNodeSentCounters) {
  Simulator sim = MakeLine(1.0);
  sim.Send(DataMsg(0, 1.0));
  sim.Send(DataMsg(0, 2.0));
  sim.Send(DataMsg(1, 3.0));
  EXPECT_EQ(sim.messages_sent_by(0), 2u);
  EXPECT_EQ(sim.messages_sent_by(1), 1u);
  EXPECT_EQ(sim.messages_sent_by(2), 0u);
  sim.ResetPerNodeCounters();
  EXPECT_EQ(sim.messages_sent_by(0), 0u);
}

TEST(SimulatorTest, DeliveryHappensAtSendTime) {
  Simulator sim = MakeLine(1.0);
  Time delivered_at = -1;
  sim.SetHandler(1, [&](const Message&, bool) { delivered_at = sim.now(); });
  sim.ScheduleAt(7, [&] { sim.Send(DataMsg(0, 1.0)); });
  sim.RunAll();
  EXPECT_EQ(delivered_at, 7);
}

TEST(SimulatorTest, MessageCopiedIntoDelivery) {
  Simulator sim = MakeLine(1.0);
  double got = 0.0;
  sim.SetHandler(1, [&](const Message& m, bool) { got = m.value; });
  {
    Message m = DataMsg(0, 42.0);
    sim.Send(m);
    m.value = -1.0;  // mutation after Send must not affect delivery
  }
  sim.RunAll();
  EXPECT_DOUBLE_EQ(got, 42.0);
}

TEST(SimulatorTest, ScheduleAfterUsesRelativeTime) {
  Simulator sim = MakeLine(1.0);
  Time fired = -1;
  sim.ScheduleAt(5, [&] {
    sim.ScheduleAfter(3, [&] { fired = sim.now(); });
  });
  sim.RunAll();
  EXPECT_EQ(fired, 8);
}

TEST(SimulatorTest, ReceiveCostConfigurable) {
  SimConfig config;
  config.energy.initial_battery = 10.0;
  config.energy.rx_cost = 0.5;
  Simulator sim = MakeLine(1.0, config);
  sim.Send(DataMsg(0, 1.0));
  sim.RunAll();
  EXPECT_DOUBLE_EQ(sim.battery(1).remaining(), 9.5);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    SimConfig config;
    config.loss_probability = 0.5;
    config.seed = seed;
    Simulator sim({{0, 0}, {0.5, 0}, {1, 0}}, {2.0, 2.0, 2.0}, config);
    int received = 0;
    for (NodeId i = 0; i < 3; ++i) {
      sim.SetHandler(i, [&](const Message&, bool) { ++received; });
    }
    for (int k = 0; k < 100; ++k) sim.Send(DataMsg(0, k));
    sim.RunAll();
    return received;
  };
  EXPECT_EQ(run(9), run(9));
  // Not a hard guarantee, but overwhelmingly likely for 200 Bernoulli draws:
  EXPECT_NE(run(9), run(10));
}

}  // namespace
}  // namespace snapq
