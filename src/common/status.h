// Lightweight Status / Result<T> error-handling types, modeled after the
// conventions used by production database codebases (no exceptions on
// fallible paths; errors are values).
#ifndef SNAPQ_COMMON_STATUS_H_
#define SNAPQ_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/check.h"

namespace snapq {

// Canonical error space. Kept deliberately small; the code is the machine
// readable part, the message is for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kParseError,
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (empty
/// message); carries a code + message on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// a failed result aborts (programming error).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors
  // absl::StatusOr ergonomics.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {
    SNAPQ_CHECK(!std::get<Status>(repr_).ok());  // OK carries no value.
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& value() const& {
    SNAPQ_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    SNAPQ_CHECK(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    SNAPQ_CHECK(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace snapq

/// Propagates a non-OK status to the caller.
#define SNAPQ_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::snapq::Status _snapq_status = (expr);  \
    if (!_snapq_status.ok()) {               \
      return _snapq_status;                  \
    }                                        \
  } while (0)

#endif  // SNAPQ_COMMON_STATUS_H_
