#include "sim/trace.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace snapq {
namespace {

TraceEvent Ev(TraceEvent::Kind kind, Time t, MessageType type = {}) {
  TraceEvent e;
  e.kind = kind;
  e.time = t;
  e.type = type;
  return e;
}

TEST(TraceRecorderTest, RecordsInOrder) {
  TraceRecorder trace(8);
  trace.Record(Ev(TraceEvent::Kind::kSend, 1));
  trace.Record(Ev(TraceEvent::Kind::kDeliver, 2));
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 1);
  EXPECT_EQ(events[1].time, 2);
  EXPECT_EQ(trace.total_recorded(), 2u);
}

TEST(TraceRecorderTest, RingBufferOverwritesOldest) {
  TraceRecorder trace(3);
  for (Time t = 0; t < 10; ++t) {
    trace.Record(Ev(TraceEvent::Kind::kSend, t));
  }
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 7);
  EXPECT_EQ(events[2].time, 9);
  EXPECT_EQ(trace.total_recorded(), 10u);
}

TEST(TraceRecorderTest, FilterByKindAndType) {
  TraceRecorder trace(16);
  trace.Record(Ev(TraceEvent::Kind::kSend, 1, MessageType::kInvitation));
  trace.Record(Ev(TraceEvent::Kind::kDeliver, 1, MessageType::kInvitation));
  trace.Record(Ev(TraceEvent::Kind::kSend, 2, MessageType::kAccept));
  const auto sends =
      trace.Filter(TraceEvent::Kind::kSend, MessageType::kInvitation);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].time, 1);
}

TEST(TraceRecorderTest, DumpAndClear) {
  TraceRecorder trace(8);
  trace.Record(Ev(TraceEvent::Kind::kLoss, 5, MessageType::kRecall));
  const std::string dump = trace.Dump();
  EXPECT_NE(dump.find("loss"), std::string::npos);
  EXPECT_NE(dump.find("Recall"), std::string::npos);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_TRUE(trace.Events().empty());
}

TEST(TraceRecorderTest, DumpRespectsLimit) {
  TraceRecorder trace(64);
  for (Time t = 0; t < 20; ++t) {
    trace.Record(Ev(TraceEvent::Kind::kSend, t));
  }
  const std::string dump = trace.Dump(5);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 5);
  EXPECT_NE(dump.find("t=19"), std::string::npos);
  EXPECT_EQ(dump.find("t=14 "), std::string::npos);
}

TEST(TraceRecorderTest, DumpAndTotalAgreeAfterWraparound) {
  // Regression guard for the ring buffer: once the buffer has wrapped,
  // Dump(limit) must still show the newest events and total_recorded()
  // must keep counting everything ever recorded, not just the retained
  // window.
  TraceRecorder trace(4);
  for (Time t = 0; t < 11; ++t) {
    trace.Record(Ev(TraceEvent::Kind::kSend, t));
  }
  EXPECT_EQ(trace.total_recorded(), 11u);
  EXPECT_EQ(trace.size(), 4u);

  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().time, 7);
  EXPECT_EQ(events.back().time, 10);

  // Dump(limit) returns the `limit` newest retained events, in order.
  const std::string dump = trace.Dump(2);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
  EXPECT_NE(dump.find("t=9"), std::string::npos);
  EXPECT_NE(dump.find("t=10"), std::string::npos);
  EXPECT_EQ(dump.find("t=8"), std::string::npos);
  // A limit beyond the retained window degrades to the full window, and
  // the count it can show stays consistent with size(), not
  // total_recorded().
  const std::string all = trace.Dump(100);
  EXPECT_EQ(static_cast<size_t>(std::count(all.begin(), all.end(), '\n')),
            trace.size());
}

TEST(SimulatorTraceTest, RecordsSendsDeliveriesAndLosses) {
  SimConfig config;
  Simulator sim({{0, 0}, {1, 0}, {2, 0}}, {1.0, 1.0, 1.0}, config);
  TraceRecorder trace(64);
  sim.SetTrace(&trace);
  sim.mutable_links().SetLinkLoss(1, 2, 1.0);

  Message m;
  m.type = MessageType::kData;
  m.from = 1;
  m.to = kBroadcastId;
  sim.Send(m);
  sim.RunAll();

  // One send, one delivery (to node 0), one loss (to node 2).
  EXPECT_EQ(trace.Filter(TraceEvent::Kind::kSend, MessageType::kData).size(),
            1u);
  const auto delivered =
      trace.Filter(TraceEvent::Kind::kDeliver, MessageType::kData);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].node, 0u);
  const auto lost =
      trace.Filter(TraceEvent::Kind::kLoss, MessageType::kData);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].node, 2u);
}

TEST(SimulatorTraceTest, SnoopedDeliveriesTaggedSeparately) {
  SimConfig config;
  config.snoop_probability = 1.0;
  Simulator sim({{0, 0}, {1, 0}, {2, 0}}, {5.0, 5.0, 5.0}, config);
  TraceRecorder trace(64);
  sim.SetTrace(&trace);
  Message m;
  m.type = MessageType::kHeartbeat;
  m.from = 0;
  m.to = 1;
  sim.Send(m);
  sim.RunAll();
  EXPECT_EQ(
      trace.Filter(TraceEvent::Kind::kDeliver, MessageType::kHeartbeat)
          .size(),
      1u);
  EXPECT_EQ(
      trace.Filter(TraceEvent::Kind::kSnoop, MessageType::kHeartbeat).size(),
      1u);
}

TEST(SimulatorTraceTest, DetachStopsRecording) {
  Simulator sim({{0, 0}, {1, 0}}, {1.0, 1.0}, SimConfig{});
  TraceRecorder trace(8);
  sim.SetTrace(&trace);
  Message m;
  m.from = 0;
  sim.Send(m);
  sim.SetTrace(nullptr);
  sim.Send(m);
  sim.RunAll();
  EXPECT_EQ(trace.Filter(TraceEvent::Kind::kSend, MessageType::kData).size(),
            1u);
}

TEST(TraceRecorderDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(TraceRecorder trace(0), "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
