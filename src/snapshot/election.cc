#include "snapshot/election.h"

#include <algorithm>

#include "common/check.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace snapq {

SnapshotView CaptureSnapshot(
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents) {
  std::vector<SnapshotView::NodeInfo> infos;
  infos.reserve(agents.size());
  for (const auto& agent : agents) {
    infos.push_back(agent->Info());
  }
  return SnapshotView(std::move(infos));
}

ElectionStats SummarizeSnapshot(
    Simulator& sim,
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents) {
  const SnapshotView view = CaptureSnapshot(agents);
  ElectionStats stats;
  stats.num_active = view.CountActive();
  stats.num_passive = view.CountPassive();
  stats.num_undefined = view.CountUndefined();
  stats.num_spurious = view.CountSpurious();

  size_t live = 0;
  uint64_t total_msgs = 0;
  uint64_t max_msgs = 0;
  for (const auto& agent : agents) {
    if (!sim.alive(agent->id())) continue;
    ++live;
    const uint64_t sent = sim.messages_sent_by(agent->id());
    total_msgs += sent;
    max_msgs = std::max(max_msgs, sent);
  }
  if (live > 0) {
    stats.avg_messages_per_node =
        static_cast<double>(total_msgs) / static_cast<double>(live);
  }
  stats.max_messages_per_node = static_cast<double>(max_msgs);
  return stats;
}

ElectionStats RunGlobalElection(
    Simulator& sim,
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents, Time t0,
    const SnapshotConfig& config) {
  SNAPQ_CHECK_GE(t0, sim.now());
  obs::ProfCount(obs::HotOp::kElectionRounds);
  obs::ScopedPhaseTimer phase_timer(obs::ProfPhase::kElection);
  obs::Span span(&sim.registry(), "election");
  span.BeginSim(t0);
  sim.journal().Emit("election.start", t0, [&](obs::JournalEvent& e) {
    e.Int("nodes", static_cast<int64_t>(agents.size()));
  });
  // Root cause: the whole discovery (every invitation, candidate list and
  // refinement message) hangs off this trace.
  const TraceContext root =
      sim.MintTraceRoot(obs::TraceRootKind::kElection, kInvalidNode);
  span.AttachTrace(sim.tracer(), root);
  {
    Simulator::TraceScope scope(sim, root);
    sim.ScheduleAt(t0, [&sim] { sim.ResetPerNodeCounters(); });
    for (const auto& agent : agents) {
      agent->BeginElection(t0);
    }
  }
  // Refinement ends by the Rule-4 hard cap; two extra units cover in-flight
  // acknowledgments scheduled on the final tick.
  const Time bound = t0 + 3 + config.max_wait + config.rule4_hard_cap + 2;
  sim.RunUntil(bound);
  span.EndSim(sim.now());

  const ElectionStats stats = SummarizeSnapshot(sim, agents);

  // Per-node election cost (the paper's §4 bound: at most 6 messages per
  // node). Gauges so a later election overwrites, and so cross-run merges
  // keep the high-watermark; the histogram accumulates the distribution.
  obs::MetricRegistry& reg = sim.registry();
  reg.GetCounter("election.runs")->Inc();
  obs::Histogram* per_node = reg.GetHistogram(
      "election.messages_per_node", {0, 1, 2, 3, 4, 5, 6, 8, 12, 16});
  for (const auto& agent : agents) {
    if (!sim.alive(agent->id())) continue;
    const double sent =
        static_cast<double>(sim.messages_sent_by(agent->id()));
    reg.GetGauge("election.messages_sent", agent->id())->Set(sent);
    per_node->Observe(sent);
  }
  reg.GetGauge("election.snapshot_size")
      ->Set(static_cast<double>(stats.num_active));

  sim.journal().Emit("election.done", sim.now(), [&](obs::JournalEvent& e) {
    e.Int("active", static_cast<int64_t>(stats.num_active))
        .Int("passive", static_cast<int64_t>(stats.num_passive))
        .Int("undefined", static_cast<int64_t>(stats.num_undefined))
        .Int("spurious", static_cast<int64_t>(stats.num_spurious))
        .Num("avg_messages_per_node", stats.avg_messages_per_node)
        .Num("max_messages_per_node", stats.max_messages_per_node);
  });
  return stats;
}

}  // namespace snapq
