// Extension study (§5.1, citing LEACH [8]): rotating the representative
// role to drain energy uniformly. Re-runs the Figure-10 lifetime
// experiment with rotation on vs off and reports the coverage area under
// the curve.
#include <cmath>
#include <iostream>

#include "api/network.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "data/random_walk.h"
#include "exec/parallel_sweep.h"
#include "query/executor.h"

namespace {

using namespace snapq;

constexpr Time kFullHorizon = 9000;
constexpr Time kQueryStart = 90;
constexpr int kBuckets = 10;
constexpr int kFullRepetitions = 3;

std::vector<double> RunCoverageCurve(int rotation_rounds, uint64_t seed,
                                     Time horizon) {
  NetworkConfig config;
  config.num_nodes = 100;
  config.transmission_range = 0.7;
  config.energy = EnergyModel();
  config.snapshot.threshold = 1.0;
  config.snapshot.heartbeat_miss_limit = 1;
  config.snapshot.rotation_rounds = rotation_rounds;
  config.seed = seed;
  SensorNetwork net(config);

  Rng data_rng = Rng(seed).SplitNamed("data");
  RandomWalkConfig walk;
  walk.num_nodes = 100;
  walk.num_classes = 1;
  walk.horizon = static_cast<size_t>(horizon) + 1;
  Result<Dataset> dataset =
      Dataset::Create(GenerateRandomWalk(walk, data_rng).series);
  SNAPQ_CHECK(dataset.ok());
  SNAPQ_CHECK(net.AttachDataset(std::move(*dataset)).ok());
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(20);
  net.RunElection(20);
  net.ScheduleMaintenance(net.now() + 100, horizon, 100);

  Rng query_rng = Rng(seed).SplitNamed("queries");
  const double w = std::sqrt(0.1);
  std::vector<RunningStats> buckets(kBuckets);
  for (Time t = kQueryStart; t < horizon; ++t) {
    net.RunUntil(t);
    ExecutionOptions options;
    NodeId sink = static_cast<NodeId>(query_rng.UniformInt(0, 99));
    for (int tries = 0; tries < 200 && !net.sim().alive(sink); ++tries) {
      sink = static_cast<NodeId>(query_rng.UniformInt(0, 99));
    }
    options.sink = sink;
    options.charge_energy = true;
    const Point center{query_rng.NextDouble(), query_rng.NextDouble()};
    const QueryResult result = net.executor().ExecuteRegion(
        Rect::CenteredSquare(center, w), /*use_snapshot=*/true,
        AggregateFunction::kSum, options);
    if (result.matching_nodes > 0) {
      const size_t b = static_cast<size_t>(
          (t - kQueryStart) * kBuckets / (horizon - kQueryStart));
      buckets[std::min<size_t>(b, kBuckets - 1)].Add(result.coverage);
    }
  }
  obs::MetricSink().MergeFrom(net.sim().registry());
  std::vector<double> out;
  out.reserve(kBuckets);
  for (const RunningStats& b : buckets) out.push_back(b.mean());
  return out;
}

}  // namespace

SNAPQ_BENCHMARK(ablation_rotation,
                "Extension: LEACH-style representative rotation") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Extension: LEACH-style representative rotation (§5.1)",
      "Fig 10 snapshot run; representatives rotate every 3 maintenance "
      "rounds vs never");

  const Time horizon =
      std::max<Time>(ctx.Scaled(kFullHorizon), kQueryStart + kBuckets);
  const int reps = static_cast<int>(ctx.Scaled(kFullRepetitions));

  // Even task indices run without rotation, odd with, seed-major — the
  // old serial order, so the index-ordered fold reproduces it exactly.
  const auto curves = exec::ParallelMap<std::vector<double>>(
      static_cast<size_t>(reps) * 2, ctx.jobs, [&](size_t i) {
        const uint64_t seed = bench::kBaseSeed + static_cast<uint64_t>(i / 2);
        return RunCoverageCurve((i % 2) == 1 ? 3 : 0, seed, horizon);
      });
  std::vector<RunningStats> off(kBuckets), on(kBuckets);
  for (size_t i = 0; i < curves.size(); ++i) {
    std::vector<RunningStats>& curve = (i % 2) == 1 ? on : off;
    for (int k = 0; k < kBuckets; ++k) {
      curve[static_cast<size_t>(k)].Add(curves[i][static_cast<size_t>(k)]);
    }
  }

  TablePrinter table({"time bucket", "no rotation", "rotation (3 rounds)"});
  double area_off = 0.0, area_on = 0.0;
  for (int k = 0; k < kBuckets; ++k) {
    area_off += off[static_cast<size_t>(k)].mean();
    area_on += on[static_cast<size_t>(k)].mean();
    table.AddRow({std::to_string(k + 1),
                  TablePrinter::Num(100.0 * off[static_cast<size_t>(k)].mean(), 1) + "%",
                  TablePrinter::Num(100.0 * on[static_cast<size_t>(k)].mean(), 1) + "%"});
  }
  table.Print(std::cout);
  std::printf("\narea under curve: no rotation=%.2f rotation=%.2f (of %d)\n",
              area_off, area_on, kBuckets);
}
