#!/usr/bin/env python3
"""Validate and diff BENCH.json performance reports.

Two modes:

  bench_compare.py --validate CURRENT.json [--min-benchmarks N]
      schema-check one report (CI gates on this).

  bench_compare.py BASELINE.json CURRENT.json [--warn-only] [tolerances]
      schema-check both, then compare per-benchmark wall time, throughput
      and peak RSS against percentage tolerances. Each wall line carries
      the baseline/current speedup factor; wall and peak-RSS changes past
      the tolerance in the good direction print as "[improved]" notes.
      Exits 1 on regression unless --warn-only; schema violations always
      exit 2.

With --fail-on-regression, counter mismatches are regressions instead of
notes: the hot-op counters are fully seeded, so two reports of the same
tree must agree exactly. This is the determinism gate for the parallel
experiment engine — a `--jobs 1` and a `--jobs N` run must produce
bit-identical counter sets, only their wall clocks may differ.

The schema is the one frozen by bench/bench_report.h (schema_version 1)
and pinned by tests/bench/bench_report_test.cc — update all three
together.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1

SUMMARY_FIELDS = {"median": float, "mean": float, "min": float, "max": float,
                  "reps": int}
LATENCY_FIELDS = {"count": int, "p50": float, "p95": float, "p99": float,
                  "max": float}
TOP_FIELDS = {"schema_version": int, "git_sha": str, "timestamp": str,
              "quick": bool, "harness_repetitions": int,
              "driver_repetitions": int, "benchmarks": list}


def _is_number(value, want):
    # ints are acceptable where floats are expected (JSON has one number
    # type); bool is a subclass of int in Python and never acceptable.
    if isinstance(value, bool):
        return want is bool
    if want is float:
        return isinstance(value, (int, float))
    return isinstance(value, want)


def _check_fields(obj, fields, where, errors):
    for key, want in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing field '{key}'")
        elif not _is_number(obj[key], want):
            errors.append(f"{where}: field '{key}' is "
                          f"{type(obj[key]).__name__}, wanted {want.__name__}")
    for key in obj:
        if key not in fields:
            errors.append(f"{where}: unknown field '{key}'")


def validate(report, path, min_benchmarks):
    """Returns a list of schema-violation strings (empty = valid)."""
    errors = []
    if not isinstance(report, dict):
        return [f"{path}: top level is not an object"]
    _check_fields(report, TOP_FIELDS, path, errors)
    if report.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"{path}: schema_version "
                      f"{report.get('schema_version')!r} != {SCHEMA_VERSION}")
    benchmarks = report.get("benchmarks", [])
    if isinstance(benchmarks, list):
        if len(benchmarks) < min_benchmarks:
            errors.append(f"{path}: only {len(benchmarks)} benchmarks, "
                          f"wanted >= {min_benchmarks}")
        for b in benchmarks:
            where = f"{path}:{b.get('name', '?') if isinstance(b, dict) else '?'}"
            if not isinstance(b, dict):
                errors.append(f"{where}: benchmark entry is not an object")
                continue
            _check_fields(b, {"name": str, "wall_ms": dict, "cpu_ms": dict,
                              "counters": dict, "throughput": dict,
                              "latency_us": dict, "peak_rss_kb": int},
                          where, errors)
            for key in ("wall_ms", "cpu_ms"):
                if isinstance(b.get(key), dict):
                    _check_fields(b[key], SUMMARY_FIELDS, f"{where}.{key}",
                                  errors)
            for key, value in b.get("counters", {}).items() \
                    if isinstance(b.get("counters"), dict) else []:
                if not _is_number(value, int):
                    errors.append(f"{where}.counters.{key}: not an integer")
            for key, value in b.get("throughput", {}).items() \
                    if isinstance(b.get("throughput"), dict) else []:
                if not _is_number(value, float):
                    errors.append(f"{where}.throughput.{key}: not a number")
            for key, value in b.get("latency_us", {}).items() \
                    if isinstance(b.get("latency_us"), dict) else []:
                if isinstance(value, dict):
                    _check_fields(value, LATENCY_FIELDS,
                                  f"{where}.latency_us.{key}", errors)
                else:
                    errors.append(f"{where}.latency_us.{key}: not an object")
    return errors


def pct_change(old, new):
    """Percentage change, or None when it is undefined (zero baseline,
    nonzero current): the old float("inf") rendered as a bogus "+inf%"
    and poisoned tolerance comparisons."""
    if old == 0:
        return 0.0 if new == 0 else None
    return 100.0 * (new - old) / old


def fmt_delta(delta):
    return "new: zero baseline" if delta is None else f"{delta:+.1f}%"


def compare(base, cur, args):
    """Returns (regressions, notes) as lists of message strings."""
    regressions, notes = [], []
    base_by_name = {b["name"]: b for b in base["benchmarks"]}
    cur_by_name = {b["name"]: b for b in cur["benchmarks"]}

    for name in sorted(set(base_by_name) - set(cur_by_name)):
        notes.append(f"{name}: present in baseline only")
    for name in sorted(set(cur_by_name) - set(base_by_name)):
        notes.append(f"{name}: new benchmark (no baseline)")
    if base.get("quick") != cur.get("quick"):
        notes.append("quick-mode mismatch between reports; wall/throughput "
                     "comparison is apples-to-oranges")

    for name in sorted(set(base_by_name) & set(cur_by_name)):
        b, c = base_by_name[name], cur_by_name[name]

        delta = pct_change(b["wall_ms"]["median"], c["wall_ms"]["median"])
        old_wall, new_wall = b["wall_ms"]["median"], c["wall_ms"]["median"]
        speedup = f", {old_wall / new_wall:.2f}x speedup" if new_wall > 0 \
            else ""
        line = (f"{name}: wall {old_wall:.1f} -> {new_wall:.1f} ms "
                f"({fmt_delta(delta)}{speedup})")
        if delta is None:
            # A zero baseline cannot be compared against a tolerance; flag
            # the measurement explicitly instead of failing on "+inf%".
            notes.append(line)
        elif delta > args.wall_tol:
            regressions.append(line)
        elif delta < -args.wall_tol:
            notes.append(line + " [improved]")

        for key, old in b["throughput"].items():
            new = c["throughput"].get(key)
            if new is None or old == 0:
                continue
            delta = pct_change(old, new)
            if delta < -args.throughput_tol:
                regressions.append(f"{name}: throughput {key} "
                                   f"{old:.0f} -> {new:.0f} ({delta:+.1f}%)")

        delta = pct_change(b["peak_rss_kb"], c["peak_rss_kb"])
        line = (f"{name}: peak RSS {b['peak_rss_kb']} -> "
                f"{c['peak_rss_kb']} KB ({fmt_delta(delta)})")
        if delta is None:
            notes.append(line)
        elif delta > args.rss_tol:
            regressions.append(line)
        elif delta < -args.rss_tol:
            notes.append(line + " [improved]")

        for key, old in b["counters"].items():
            new = c["counters"].get(key)
            if new is not None and new != old:
                msg = f"{name}: counter {key} {old} -> {new} " \
                      "(seeded work changed)"
                if args.fail_on_regression:
                    regressions.append(msg)
                else:
                    notes.append(msg)
    return regressions, notes


def load(path, min_benchmarks):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    errors = validate(report, path, min_benchmarks)
    if errors:
        for e in errors:
            print(f"schema error: {e}", file=sys.stderr)
        sys.exit(2)
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH.json (or the only "
                        "file with --validate)")
    parser.add_argument("current", nargs="?", help="current BENCH.json")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check only, no comparison")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="treat counter mismatches as regressions "
                             "(determinism gate: seeded runs must agree "
                             "exactly)")
    parser.add_argument("--min-benchmarks", type=int, default=1,
                        help="fail validation below this many benchmarks")
    parser.add_argument("--wall-tol", type=float, default=25.0,
                        help="%% wall-time growth tolerated (default 25)")
    parser.add_argument("--throughput-tol", type=float, default=25.0,
                        help="%% throughput drop tolerated (default 25)")
    parser.add_argument("--rss-tol", type=float, default=15.0,
                        help="%% peak-RSS growth tolerated (default 15)")
    args = parser.parse_args()

    if args.validate:
        if args.current:
            parser.error("--validate takes a single file")
        report = load(args.baseline, args.min_benchmarks)
        print(f"{args.baseline}: valid (schema {SCHEMA_VERSION}, "
              f"{len(report['benchmarks'])} benchmarks, "
              f"git {report['git_sha']})")
        return 0

    if not args.current:
        parser.error("need BASELINE and CURRENT (or --validate)")
    base = load(args.baseline, args.min_benchmarks)
    cur = load(args.current, args.min_benchmarks)

    regressions, notes = compare(base, cur, args)
    for n in notes:
        print(f"note: {n}")
    for r in regressions:
        print(f"REGRESSION: {r}")
    print(f"compared {len(cur['benchmarks'])} benchmarks: "
          f"{len(regressions)} regression(s)")
    if regressions and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
