#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(MetricsTest, StartsAtZero) {
  Metrics m;
  EXPECT_EQ(m.total_sent(), 0u);
  EXPECT_EQ(m.total_delivered(), 0u);
  EXPECT_EQ(m.total_lost(), 0u);
  EXPECT_EQ(m.cache_ops(), 0u);
}

TEST(MetricsTest, CountsPerType) {
  Metrics m;
  m.CountSent(MessageType::kInvitation);
  m.CountSent(MessageType::kInvitation);
  m.CountSent(MessageType::kAccept);
  m.CountDelivered(MessageType::kInvitation);
  m.CountLost(MessageType::kAccept);
  EXPECT_EQ(m.sent(MessageType::kInvitation), 2u);
  EXPECT_EQ(m.sent(MessageType::kAccept), 1u);
  EXPECT_EQ(m.delivered(MessageType::kInvitation), 1u);
  EXPECT_EQ(m.lost(MessageType::kAccept), 1u);
  EXPECT_EQ(m.total_sent(), 3u);
  EXPECT_EQ(m.total_delivered(), 1u);
  EXPECT_EQ(m.total_lost(), 1u);
}

TEST(MetricsTest, SnoopedCountsSeparately) {
  Metrics m;
  m.CountSnooped(MessageType::kHeartbeat);
  EXPECT_EQ(m.snooped(MessageType::kHeartbeat), 1u);
  EXPECT_EQ(m.delivered(MessageType::kHeartbeat), 0u);
}

TEST(MetricsTest, ResetClearsEverything) {
  Metrics m;
  m.CountSent(MessageType::kData);
  m.CountCacheOp();
  m.Reset();
  EXPECT_EQ(m.total_sent(), 0u);
  EXPECT_EQ(m.cache_ops(), 0u);
  EXPECT_EQ(m.sent(MessageType::kData), 0u);
}

TEST(MetricsTest, ToStringListsActiveTypesOnly) {
  Metrics m;
  m.CountSent(MessageType::kRecall);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("Recall"), std::string::npos);
  EXPECT_EQ(s.find("Heartbeat"), std::string::npos);
}

TEST(MetricsTest, SnapshotCapturesCurrentValues) {
  Metrics m;
  m.CountSent(MessageType::kInvitation);
  m.CountDelivered(MessageType::kInvitation);
  m.CountCacheOp();
  const MetricsSnapshot snap = m.Snapshot();
  EXPECT_EQ(snap.sent[static_cast<size_t>(MessageType::kInvitation)], 1u);
  EXPECT_EQ(snap.total_sent, 1u);
  EXPECT_EQ(snap.total_delivered, 1u);
  EXPECT_EQ(snap.cache_ops, 1u);
  // The snapshot is a value: later counts don't change it.
  m.CountSent(MessageType::kAccept);
  EXPECT_EQ(snap.total_sent, 1u);
}

TEST(MetricsTest, DeltaIsolatesOnePhase) {
  Metrics m;
  m.CountSent(MessageType::kData);  // training traffic
  m.CountSent(MessageType::kData);
  const MetricsSnapshot before = m.Snapshot();
  m.CountSent(MessageType::kInvitation);  // the phase under measurement
  m.CountLost(MessageType::kAccept);
  m.CountSnooped(MessageType::kHeartbeat);
  const MetricsSnapshot delta = m.Delta(before);
  EXPECT_EQ(delta.sent[static_cast<size_t>(MessageType::kData)], 0u);
  EXPECT_EQ(delta.sent[static_cast<size_t>(MessageType::kInvitation)], 1u);
  EXPECT_EQ(delta.lost[static_cast<size_t>(MessageType::kAccept)], 1u);
  EXPECT_EQ(delta.snooped[static_cast<size_t>(MessageType::kHeartbeat)], 1u);
  EXPECT_EQ(delta.total_sent, 1u);
  EXPECT_EQ(delta.total_lost, 1u);
}

TEST(MetricsTest, FacadeOverExternalRegistryExportsNamedCounters) {
  obs::MetricRegistry registry;
  Metrics m(&registry);
  m.CountSent(MessageType::kInvitation);
  m.CountSent(MessageType::kInvitation);
  EXPECT_EQ(registry.GetCounter("net.sent.invitation")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("net.sent")->value(), 2u);
  // Resetting through the façade clears the registry instruments too.
  m.Reset();
  EXPECT_EQ(registry.GetCounter("net.sent.invitation")->value(), 0u);
}

}  // namespace
}  // namespace snapq
