file(REMOVE_RECURSE
  "../bench/fig15_maintenance_messages"
  "../bench/fig15_maintenance_messages.pdb"
  "CMakeFiles/fig15_maintenance_messages.dir/fig15_maintenance_messages.cc.o"
  "CMakeFiles/fig15_maintenance_messages.dir/fig15_maintenance_messages.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_maintenance_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
