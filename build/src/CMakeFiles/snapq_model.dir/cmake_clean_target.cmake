file(REMOVE_RECURSE
  "libsnapq_model.a"
)
