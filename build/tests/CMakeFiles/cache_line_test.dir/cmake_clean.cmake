file(REMOVE_RECURSE
  "CMakeFiles/cache_line_test.dir/model/cache_line_test.cc.o"
  "CMakeFiles/cache_line_test.dir/model/cache_line_test.cc.o.d"
  "cache_line_test"
  "cache_line_test.pdb"
  "cache_line_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_line_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
