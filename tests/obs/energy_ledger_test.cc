#include "obs/energy_ledger.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "net/energy.h"
#include "net/message.h"
#include "obs/metric_registry.h"

namespace snapq::obs {
namespace {

EnergyModel SmallBattery(double capacity) {
  EnergyModel m;
  m.initial_battery = capacity;
  return m;
}

TEST(EnergyCauseTest, EveryMessageTypeRollsUpIntoAProtocolPhase) {
  EXPECT_EQ(EnergyCauseOf(MessageType::kInvitation), EnergyCause::kElection);
  EXPECT_EQ(EnergyCauseOf(MessageType::kCandList), EnergyCause::kElection);
  EXPECT_EQ(EnergyCauseOf(MessageType::kAccept), EnergyCause::kElection);
  EXPECT_EQ(EnergyCauseOf(MessageType::kRecall), EnergyCause::kElection);
  EXPECT_EQ(EnergyCauseOf(MessageType::kStayActive), EnergyCause::kElection);
  EXPECT_EQ(EnergyCauseOf(MessageType::kRepAck), EnergyCause::kElection);
  EXPECT_EQ(EnergyCauseOf(MessageType::kHeartbeat), EnergyCause::kMaintenance);
  EXPECT_EQ(EnergyCauseOf(MessageType::kHeartbeatReply),
            EnergyCause::kMaintenance);
  EXPECT_EQ(EnergyCauseOf(MessageType::kResign), EnergyCause::kMaintenance);
  EXPECT_EQ(EnergyCauseOf(MessageType::kData), EnergyCause::kData);
  EXPECT_EQ(EnergyCauseOf(MessageType::kQueryRequest), EnergyCause::kQuery);
  EXPECT_EQ(EnergyCauseOf(MessageType::kQueryReply), EnergyCause::kQuery);
}

TEST(EnergyLedgerTest, MessageDrainLandsInTheRightCell) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(10.0), 3, &registry);

  ledger.RecordMessage(1, MessageType::kHeartbeat, EnergyDirection::kTx, 1.0);
  ledger.RecordMessage(2, MessageType::kHeartbeat, EnergyDirection::kRx, 0.25);
  ledger.RecordMessage(0, MessageType::kData, EnergyDirection::kSnoop, 0.25);

  EXPECT_EQ(ledger.cell(1, EnergyLedger::CellIndex(EnergyDirection::kTx,
                                                   MessageType::kHeartbeat)),
            1.0);
  EXPECT_EQ(ledger.cell(2, EnergyLedger::CellIndex(EnergyDirection::kRx,
                                                   MessageType::kHeartbeat)),
            0.25);
  EXPECT_EQ(ledger.cell(0, EnergyLedger::CellIndex(EnergyDirection::kSnoop,
                                                   MessageType::kData)),
            0.25);
  EXPECT_EQ(ledger.drained(1), 1.0);
  EXPECT_EQ(ledger.remaining(1), 9.0);
  EXPECT_EQ(ledger.total_drained(), 1.5);
  EXPECT_EQ(ledger.CauseJoules(EnergyCause::kMaintenance), 1.25);
  EXPECT_EQ(ledger.CauseJoules(EnergyCause::kData), 0.25);
}

TEST(EnergyLedgerTest, NonMessageSitesUseTheTrailingCells) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(10.0), 2, &registry);

  ledger.RecordCacheOp(0, 0.125);
  ledger.RecordDirect(0, 0.5);
  ledger.RecordKillDiscard(1, 7.75);

  EXPECT_EQ(ledger.cell(0, EnergyLedger::CacheCell()), 0.125);
  EXPECT_EQ(ledger.cell(0, EnergyLedger::DirectCell()), 0.5);
  EXPECT_EQ(ledger.cell(1, EnergyLedger::KilledCell()), 7.75);
  EXPECT_EQ(ledger.CauseJoules(EnergyCause::kCache), 0.125);
  EXPECT_EQ(ledger.CauseJoules(EnergyCause::kDirect), 0.5);
  EXPECT_EQ(ledger.CauseJoules(EnergyCause::kKilled), 7.75);
  EXPECT_EQ(ledger.remaining(1), 10.0 - 7.75);
}

TEST(EnergyLedgerTest, KillDiscardOfAnInfiniteBatteryIsIgnored) {
  MetricRegistry registry;
  EnergyLedger ledger(EnergyModel::Unlimited(), 1, &registry);
  ledger.RecordKillDiscard(0, std::numeric_limits<double>::infinity());
  EXPECT_EQ(ledger.total_drained(), 0.0);
  EXPECT_EQ(ledger.cell(0, EnergyLedger::KilledCell()), 0.0);
}

TEST(EnergyLedgerTest, RootSlotAttributionFoldsInvalidSlotsIntoUntraced) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(10.0), 1, &registry);

  ledger.RecordMessage(0, MessageType::kInvitation, EnergyDirection::kTx, 1.0,
                       /*root_slot=*/0);  // election root
  ledger.RecordCacheOp(0, 0.5, /*root_slot=*/3);  // query root
  ledger.RecordDirect(0, 0.25, /*root_slot=*/-1);
  ledger.RecordMessage(0, MessageType::kData, EnergyDirection::kTx, 0.125,
                       /*root_slot=*/99);  // out of range

  EXPECT_EQ(ledger.RootKindJoules(0), 1.0);
  EXPECT_EQ(ledger.RootKindJoules(3), 0.5);
  EXPECT_EQ(ledger.RootKindJoules(kEnergyUntracedSlot), 0.375);
}

TEST(EnergyLedgerTest, FirstDeathWinsAndDeathsAreCounted) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(10.0), 2, &registry);
  EXPECT_EQ(ledger.death_tick(0), -1);
  ledger.RecordDeath(0, 7);
  ledger.RecordDeath(0, 9);  // ignored: already dead
  ledger.RecordDeath(1, 11);
  EXPECT_EQ(ledger.death_tick(0), 7);
  EXPECT_EQ(ledger.death_tick(1), 11);
  EXPECT_EQ(ledger.deaths(), 2u);
}

TEST(EnergyLedgerTest, UpdateGaugesPublishesDrainAndBurnRate) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(100.0), 2, &registry);

  ledger.RecordMessage(0, MessageType::kData, EnergyDirection::kTx, 4.0);
  ledger.UpdateGauges(0);
  ledger.RecordMessage(1, MessageType::kData, EnergyDirection::kTx, 6.0);
  ledger.UpdateGauges(2);

  EXPECT_EQ(registry.GetGauge("energy.drained")->value(), 10.0);
  EXPECT_EQ(registry.GetGauge("energy.burn_rate")->value(), 3.0);  // 6 / 2
  EXPECT_EQ(registry.GetGauge("energy.cause.data")->value(), 10.0);
  EXPECT_EQ(registry.GetGauge("energy.remaining_total")->value(), 190.0);
  EXPECT_EQ(registry.GetGauge("energy.remaining_min")->value(), 94.0);
}

TEST(EnergyLedgerTest, DecliningChargeProjectsAFirstDeathTick) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(100.0), 1, &registry);
  // Burn 1 J/tick: the least-squares trend should project the remaining
  // 90 J to run out ~90 ticks past the last sample.
  for (Time t = 0; t <= 10; ++t) {
    if (t > 0) {
      ledger.RecordMessage(0, MessageType::kData, EnergyDirection::kTx, 1.0);
    }
    ledger.UpdateGauges(t);
  }
  EXPECT_NEAR(ledger.first_death_tick(), 100.0, 1.0);
  EXPECT_NEAR(ledger.coverage_knee_tick(), 100.0, 1.0);
}

TEST(EnergyLedgerTest, ActualDeathDominatesTheProjection) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(100.0), 1, &registry);
  ledger.RecordDeath(0, 17);
  ledger.UpdateGauges(20);
  EXPECT_EQ(ledger.first_death_tick(), 17.0);
}

TEST(EnergyLedgerTest, UnlimitedModelSkipsRemainingAndForecastGauges) {
  MetricRegistry registry;
  EnergyLedger ledger(EnergyModel::Unlimited(), 2, &registry);
  ledger.RecordMessage(0, MessageType::kData, EnergyDirection::kTx, 1.0);
  ledger.UpdateGauges(5);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json.find("energy.remaining_total"), std::string::npos);
  EXPECT_EQ(json.find("energy.remaining_min"), std::string::npos);
  EXPECT_EQ(json.find("energy.first_death_tick"), std::string::npos);
  EXPECT_EQ(json.find("energy.coverage_knee_tick"), std::string::npos);
  // The drain-side gauges stay: they are finite even without a battery.
  EXPECT_NE(json.find("energy.drained"), std::string::npos);
  EXPECT_EQ(ledger.first_death_tick(), -1.0);
  EXPECT_EQ(ledger.coverage_knee_tick(), -1.0);
}

TEST(EnergyLedgerSnapshotTest, SnapshotCapturesTheLedger) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(10.0), 2, &registry);
  ledger.RecordMessage(0, MessageType::kHeartbeat, EnergyDirection::kTx, 1.0,
                       /*root_slot=*/2);
  ledger.RecordCacheOp(1, 0.5);
  ledger.RecordDeath(1, 42);
  ledger.UpdateGauges(50);

  const EnergyLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.runs, 1u);
  EXPECT_EQ(snap.num_nodes, 2u);
  EXPECT_EQ(snap.initial_battery, 10.0);
  EXPECT_EQ(snap.TotalDrained(), 1.5);
  EXPECT_EQ(snap.TotalDeaths(), 1u);
  EXPECT_EQ(snap.deaths[0], 0u);
  EXPECT_EQ(snap.deaths[1], 1u);
  EXPECT_EQ(snap.NodeCauseJoules(0, EnergyCause::kMaintenance), 1.0);
  EXPECT_EQ(snap.NodeCauseJoules(1, EnergyCause::kCache), 0.5);
  EXPECT_EQ(snap.CauseJoules(EnergyCause::kMaintenance), 1.0);
  EXPECT_EQ(snap.DirectionJoules(EnergyDirection::kTx), 1.0);
  EXPECT_EQ(snap.root_kind[2], 1.0);
  EXPECT_EQ(snap.remaining[0], 9.0);
  EXPECT_EQ(snap.first_death_runs, 1u);
  EXPECT_EQ(snap.first_death_sum, 42.0);
}

TEST(EnergyLedgerSnapshotTest, MergeFromAddsIndexwise) {
  MetricRegistry registry;
  EnergyLedger a(SmallBattery(10.0), 2, &registry);
  EnergyLedger b(SmallBattery(10.0), 2, &registry);
  a.RecordMessage(0, MessageType::kData, EnergyDirection::kTx, 1.0);
  a.RecordDeath(0, 5);
  b.RecordMessage(0, MessageType::kData, EnergyDirection::kTx, 0.5);
  b.RecordCacheOp(1, 0.25);

  EnergyLedgerSnapshot merged = a.TakeSnapshot();
  ASSERT_TRUE(merged.MergeFrom(b.TakeSnapshot()));
  EXPECT_EQ(merged.runs, 2u);
  EXPECT_EQ(merged.TotalDrained(), 1.75);
  EXPECT_EQ(merged.NodeCauseJoules(0, EnergyCause::kData), 1.5);
  EXPECT_EQ(merged.NodeCauseJoules(1, EnergyCause::kCache), 0.25);
  EXPECT_EQ(merged.deaths[0], 1u);
  EXPECT_EQ(merged.TotalDeaths(), 1u);
  // remaining sums across runs (reported as the per-run mean downstream).
  EXPECT_EQ(merged.remaining[0], 9.0 + 9.5);
}

TEST(EnergyLedgerSnapshotTest, MergeFromRejectsShapeMismatch) {
  MetricRegistry registry;
  EnergyLedger a(SmallBattery(10.0), 2, &registry);
  EnergyLedger b(SmallBattery(10.0), 3, &registry);
  EnergyLedger c(SmallBattery(20.0), 2, &registry);
  EnergyLedgerSnapshot snap = a.TakeSnapshot();
  EXPECT_FALSE(snap.MergeFrom(b.TakeSnapshot()));  // node count differs
  EXPECT_FALSE(snap.MergeFrom(c.TakeSnapshot()));  // battery differs
  EXPECT_EQ(snap.runs, 1u);                        // left untouched
}

TEST(EnergyLedgerTest, ToTableNamesEveryActiveCause) {
  MetricRegistry registry;
  EnergyLedger ledger(SmallBattery(10.0), 1, &registry);
  ledger.RecordMessage(0, MessageType::kInvitation, EnergyDirection::kTx, 2.0);
  ledger.RecordCacheOp(0, 0.5);
  const std::string table = ledger.ToTable();
  EXPECT_NE(table.find("election"), std::string::npos);
  EXPECT_NE(table.find("cache"), std::string::npos);
  EXPECT_NE(table.find("tx="), std::string::npos);
}

}  // namespace
}  // namespace snapq::obs
