file(REMOVE_RECURSE
  "CMakeFiles/snapq_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/snapq_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/snapq_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/snapq_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/snapq_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/snapq_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/snapq_sim.dir/sim/trace.cc.o"
  "CMakeFiles/snapq_sim.dir/sim/trace.cc.o.d"
  "libsnapq_sim.a"
  "libsnapq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
