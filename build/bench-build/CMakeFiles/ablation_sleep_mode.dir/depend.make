# Empty dependencies file for ablation_sleep_mode.
# This may be replaced when dependencies are built.
