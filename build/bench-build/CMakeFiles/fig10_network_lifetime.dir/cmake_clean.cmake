file(REMOVE_RECURSE
  "../bench/fig10_network_lifetime"
  "../bench/fig10_network_lifetime.pdb"
  "CMakeFiles/fig10_network_lifetime.dir/fig10_network_lifetime.cc.o"
  "CMakeFiles/fig10_network_lifetime.dir/fig10_network_lifetime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_network_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
