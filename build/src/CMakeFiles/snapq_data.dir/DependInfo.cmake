
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/snapq_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/snapq_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/random_walk.cc" "src/CMakeFiles/snapq_data.dir/data/random_walk.cc.o" "gcc" "src/CMakeFiles/snapq_data.dir/data/random_walk.cc.o.d"
  "/root/repo/src/data/spatial_field.cc" "src/CMakeFiles/snapq_data.dir/data/spatial_field.cc.o" "gcc" "src/CMakeFiles/snapq_data.dir/data/spatial_field.cc.o.d"
  "/root/repo/src/data/timeseries.cc" "src/CMakeFiles/snapq_data.dir/data/timeseries.cc.o" "gcc" "src/CMakeFiles/snapq_data.dir/data/timeseries.cc.o.d"
  "/root/repo/src/data/weather.cc" "src/CMakeFiles/snapq_data.dir/data/weather.cc.o" "gcc" "src/CMakeFiles/snapq_data.dir/data/weather.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snapq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
