#include "net/topology.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(PlaceUniformTest, AllInsideArea) {
  Rng rng(1);
  const Rect area{0.5, 1.0, 2.5, 3.0};
  const auto pts = PlaceUniform(500, area, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const Point& p : pts) {
    EXPECT_TRUE(area.Contains(p));
  }
}

TEST(PlaceUniformTest, SpreadsOverQuadrants) {
  Rng rng(2);
  const Rect area = Rect::UnitSquare();
  const auto pts = PlaceUniform(1000, area, rng);
  int q[4] = {0, 0, 0, 0};
  for (const Point& p : pts) {
    ++q[(p.x >= 0.5 ? 1 : 0) + (p.y >= 0.5 ? 2 : 0)];
  }
  for (int c : q) {
    EXPECT_GT(c, 150);  // roughly uniform
  }
}

TEST(PlaceUniformTest, Deterministic) {
  Rng r1(3), r2(3);
  const auto a = PlaceUniform(10, Rect::UnitSquare(), r1);
  const auto b = PlaceUniform(10, Rect::UnitSquare(), r2);
  EXPECT_EQ(a, b);
}

TEST(PlaceGridTest, NoJitterIsRegular) {
  Rng rng(4);
  const auto pts = PlaceGrid(4, Rect::UnitSquare(), 0.0, rng);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[0].x, 0.25);
  EXPECT_DOUBLE_EQ(pts[0].y, 0.25);
  EXPECT_DOUBLE_EQ(pts[3].x, 0.75);
  EXPECT_DOUBLE_EQ(pts[3].y, 0.75);
}

TEST(PlaceGridTest, NonSquareCountStaysInArea) {
  Rng rng(5);
  const auto pts = PlaceGrid(7, Rect::UnitSquare(), 0.3, rng);
  ASSERT_EQ(pts.size(), 7u);
  for (const Point& p : pts) {
    EXPECT_TRUE(Rect::UnitSquare().Contains(p));
  }
}

TEST(PlaceGridTest, ZeroNodes) {
  Rng rng(6);
  EXPECT_TRUE(PlaceGrid(0, Rect::UnitSquare(), 0.0, rng).empty());
}

TEST(PlaceClusteredTest, StaysInAreaAndClusters) {
  Rng rng(7);
  const auto pts = PlaceClustered(200, 4, 0.02, Rect::UnitSquare(), rng);
  ASSERT_EQ(pts.size(), 200u);
  for (const Point& p : pts) {
    EXPECT_TRUE(Rect::UnitSquare().Contains(p));
  }
  // With tiny stddev, nodes of the same cluster are close: check that the
  // average distance between consecutive same-cluster nodes is small.
  double total = 0.0;
  int count = 0;
  for (size_t i = 0; i + 4 < pts.size(); i += 4) {
    total += Distance(pts[i], pts[i + 4]);
    ++count;
  }
  EXPECT_LT(total / count, 0.2);
}

}  // namespace
}  // namespace snapq
