// Multi-resolution snapshots (§3.1): each threshold T yields a snapshot at
// a different "resolution". A registry of snapshots keyed by threshold lets
// a query with its own error tolerance T_q be answered by the snapshot with
// the largest registered T <= T_q — valid because a representative within T
// is a fortiori within any larger tolerance, and the larger T is, the
// smaller (cheaper) the snapshot.
#ifndef SNAPQ_SNAPSHOT_MULTI_RESOLUTION_H_
#define SNAPQ_SNAPSHOT_MULTI_RESOLUTION_H_

#include <map>
#include <vector>

#include "snapshot/node_state.h"

namespace snapq {

/// Threshold-indexed snapshot registry.
class MultiResolutionRegistry {
 public:
  /// Registers (or replaces) the snapshot elected for `threshold`.
  void Register(double threshold, SnapshotView view);

  /// The registered snapshot best suited to a query tolerating error
  /// `query_threshold`: the one with the largest threshold <= the query's.
  /// Returns nullptr when no registered snapshot is tight enough.
  const SnapshotView* Resolve(double query_threshold) const;

  /// The tightest registered snapshot (smallest threshold); per §3.1 it can
  /// answer *every* query whose threshold is >= its own. Returns nullptr
  /// when empty.
  const SnapshotView* Tightest() const;

  /// Ascending registered thresholds.
  std::vector<double> Thresholds() const;

  size_t size() const { return snapshots_.size(); }
  bool empty() const { return snapshots_.empty(); }

 private:
  std::map<double, SnapshotView> snapshots_;
};

}  // namespace snapq

#endif  // SNAPQ_SNAPSHOT_MULTI_RESOLUTION_H_
