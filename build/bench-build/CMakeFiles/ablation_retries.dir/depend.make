# Empty dependencies file for ablation_retries.
# This may be replaced when dependencies are built.
