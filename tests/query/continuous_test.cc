#include "query/continuous.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "query/parser.h"

namespace snapq {
namespace {

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  std::unique_ptr<QueryExecutor> executor;
  std::unique_ptr<ContinuousQueryRunner> runner;

  explicit Net(size_t n = 4) {
    std::vector<Point> positions;
    for (size_t i = 0; i < n; ++i) {
      positions.push_back({0.1 * static_cast<double>(i) + 0.05, 0.5});
    }
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, 10.0),
                                      SimConfig{});
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<SnapshotAgent>(
          i, sim.get(), SnapshotConfig{}, 30 + i));
      agents.back()->Install();
      agents.back()->SetMeasurement(static_cast<double>(i));
    }
    executor = std::make_unique<QueryExecutor>(
        sim.get(), &agents,
        Catalog::WithStandardRegions(Rect::UnitSquare()));
    runner = std::make_unique<ContinuousQueryRunner>(sim.get(),
                                                     executor.get());
  }
};

TEST(ContinuousQueryTest, SingleShotWithoutInterval) {
  Net net;
  std::vector<EpochResult> epochs;
  const Result<int64_t> n = net.runner->ScheduleSql(
      "SELECT sum(value) FROM sensors", 5, {},
      [&](const EpochResult& e) { epochs.push_back(e); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  net.sim->RunAll();
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_EQ(epochs[0].epoch, 0);
  EXPECT_EQ(epochs[0].time, 5);
  EXPECT_DOUBLE_EQ(*epochs[0].result.aggregate, 0.0 + 1.0 + 2.0 + 3.0);
}

TEST(ContinuousQueryTest, EpochCountFromIntervalAndDuration) {
  Net net;
  std::vector<EpochResult> epochs;
  // 1s interval for 5s -> 5 epochs.
  const Result<int64_t> n = net.runner->ScheduleSql(
      "SELECT count(*) FROM sensors SAMPLE INTERVAL 1s FOR 5s", 0, {},
      [&](const EpochResult& e) { epochs.push_back(e); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5);
  net.sim->RunAll();
  ASSERT_EQ(epochs.size(), 5u);
  for (int64_t e = 0; e < 5; ++e) {
    EXPECT_EQ(epochs[static_cast<size_t>(e)].epoch, e);
    EXPECT_EQ(epochs[static_cast<size_t>(e)].time, e);
  }
}

TEST(ContinuousQueryTest, PaperQueryShape) {
  // "SAMPLE INTERVAL 1sec for 5min" -> 300 epochs.
  Net net;
  int rounds = 0;
  const Result<int64_t> n = net.runner->ScheduleSql(
      "SELECT loc, value FROM sensors SAMPLE INTERVAL 1s FOR 5min", 0, {},
      [&](const EpochResult&) { ++rounds; });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 300);
  net.sim->RunAll();
  EXPECT_EQ(rounds, 300);
}

TEST(ContinuousQueryTest, EpochsObserveChangingData) {
  Net net;
  std::vector<double> sums;
  ASSERT_TRUE(net.runner
                  ->ScheduleSql(
                      "SELECT sum(value) FROM sensors SAMPLE INTERVAL 2s "
                      "FOR 6s",
                      0, {},
                      [&](const EpochResult& e) {
                        sums.push_back(*e.result.aggregate);
                      })
                  .ok());
  // Bump node 0's reading between epochs.
  net.sim->ScheduleAt(1, [&net] { net.agents[0]->SetMeasurement(100.0); });
  net.sim->ScheduleAt(3, [&net] { net.agents[0]->SetMeasurement(200.0); });
  net.sim->RunAll();
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_DOUBLE_EQ(sums[0], 6.0);
  EXPECT_DOUBLE_EQ(sums[1], 106.0);
  EXPECT_DOUBLE_EQ(sums[2], 206.0);
}

TEST(ContinuousQueryTest, SubUnitIntervalClampedToOneTick) {
  Net net;
  const Result<int64_t> n = net.runner->ScheduleSql(
      "SELECT count(*) FROM sensors SAMPLE INTERVAL 100 ms FOR 1s", 0, {},
      {});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10);   // 10 epochs...
  net.sim->RunAll();
  EXPECT_EQ(net.sim->now(), 9);  // ...spaced one tick apart
}

TEST(ContinuousQueryTest, RejectsPastStart) {
  Net net;
  net.sim->RunUntil(10);
  const Result<int64_t> n = net.runner->ScheduleSql(
      "SELECT count(*) FROM sensors", 5, {}, {});
  EXPECT_FALSE(n.ok());
}

TEST(ContinuousQueryTest, RejectsBadQueryUpFront) {
  Net net;
  EXPECT_FALSE(
      net.runner->ScheduleSql("SELECT humidity FROM sensors", 0, {}, {})
          .ok());
  EXPECT_FALSE(net.runner
                   ->ScheduleSql(
                       "SELECT value FROM sensors WHERE loc IN ATLANTIS", 0,
                       {}, {})
                   .ok());
  EXPECT_FALSE(net.runner->ScheduleSql("garbage", 0, {}, {}).ok());
}

TEST(ContinuousQueryTest, SnapshotClausePassesThrough) {
  Net net;
  // Make nodes 0..2 passive under node 3.
  for (NodeId j = 0; j < 3; ++j) {
    const double vi = net.agents[3]->measurement();
    const double vj = net.agents[j]->measurement();
    net.agents[3]->models().cache().Observe(j, vi - 1, vj - 1, 0);
    net.agents[3]->models().cache().Observe(j, vi + 1, vj + 1, 0);
  }
  for (auto& agent : net.agents) agent->BeginElection(0);
  net.sim->RunAll();

  std::vector<size_t> responders;
  ASSERT_TRUE(net.runner
                  ->ScheduleSql(
                      "SELECT sum(value) FROM sensors SAMPLE INTERVAL 1s "
                      "FOR 3s USE SNAPSHOT",
                      net.sim->now(), {},
                      [&](const EpochResult& e) {
                        responders.push_back(e.result.responders);
                      })
                  .ok());
  net.sim->RunAll();
  ASSERT_EQ(responders.size(), 3u);
  for (size_t r : responders) {
    EXPECT_EQ(r, 1u);  // only the representative answers, every epoch
  }
}

}  // namespace
}  // namespace snapq
