// The fixed-memory telemetry engine: ring wraparound must fold old
// samples into history (never drop them — the retained-count invariant),
// compaction must double the bin stride, trends (ewma/envelope/slope)
// must survive downsampling, counter rates must clamp on reset, and the
// timeline JSON the whole thing serializes to must stay well-formed.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/json.h"
#include "obs/metric_registry.h"
#include "obs/slo.h"
#include "obs/timeline.h"

namespace snapq::obs {
namespace {

TimeSeriesConfig SmallConfig(size_t raw, size_t hist) {
  TimeSeriesConfig config;
  config.raw_capacity = raw;
  config.history_capacity = hist;
  return config;
}

uint64_t RetainedCount(const TimeSeries& s) {
  uint64_t count = 0;
  for (size_t i = 0; i < s.num_bins(); ++i) count += s.bin(i).count;
  return count;
}

TEST(TimeSeriesTest, AggregatesTrackPushedValues) {
  TimeSeries s(SmallConfig(8, 8));
  s.Push(0, 2.0);
  s.Push(1, 6.0);
  s.Push(2, 4.0);
  EXPECT_EQ(s.num_samples(), 3u);
  EXPECT_DOUBLE_EQ(s.last(), 4.0);
  EXPECT_EQ(s.last_time(), 2);
  EXPECT_DOUBLE_EQ(s.min_seen(), 2.0);
  EXPECT_DOUBLE_EQ(s.max_seen(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  // EWMA seeded at the first value, alpha 0.1.
  EXPECT_NEAR(s.ewma(), 2.0 + 0.1 * 4.0 + 0.1 * (4.0 - 2.4), 1e-12);
}

TEST(TimeSeriesTest, WraparoundFoldsIntoHistoryKeepingEverySample) {
  TimeSeries s(SmallConfig(4, 4));
  for (Time t = 0; t < 100; ++t) {
    s.Push(t, static_cast<double>(t));
    // The count invariant holds after EVERY push: bins merge, never drop.
    ASSERT_EQ(RetainedCount(s), s.num_samples()) << "at t=" << t;
  }
  EXPECT_EQ(s.num_samples(), 100u);
  EXPECT_EQ(RetainedCount(s), 100u);
  // Bins are in time order, oldest first, and span the full range.
  EXPECT_EQ(s.retained_since(), 0);
  Time prev_end = -1;
  for (size_t i = 0; i < s.num_bins(); ++i) {
    EXPECT_GT(s.bin(i).t_first, prev_end);
    EXPECT_GE(s.bin(i).t_last, s.bin(i).t_first);
    prev_end = s.bin(i).t_last;
  }
  EXPECT_EQ(prev_end, 99);
}

TEST(TimeSeriesTest, CompactionDoublesTheStride) {
  TimeSeries s(SmallConfig(2, 2));
  EXPECT_EQ(s.history_stride(), 1u);
  // 2 raw + 2*1 history = 4 samples before the first compaction.
  for (Time t = 0; t < 64; ++t) s.Push(t, 1.0);
  EXPECT_GT(s.history_stride(), 1u);
  // Stride only ever doubles.
  const size_t stride = s.history_stride();
  EXPECT_EQ(stride & (stride - 1), 0u) << "stride " << stride;
  EXPECT_EQ(RetainedCount(s), 64u);
}

TEST(TimeSeriesTest, CadenceNotDividingCapacityKeepsInvariant) {
  // 7 raw + 5 history with a cadence of 3 ticks: nothing lines up, the
  // invariant must hold anyway.
  TimeSeries s(SmallConfig(7, 5));
  Time t = 0;
  for (int i = 0; i < 1000; ++i) {
    s.Push(t, std::sin(0.1 * static_cast<double>(i)));
    t += 3;
    ASSERT_EQ(RetainedCount(s), s.num_samples()) << "at i=" << i;
  }
  EXPECT_EQ(s.num_samples(), 1000u);
  EXPECT_LE(s.num_bins(), 12u);
}

TEST(TimeSeriesTest, HistoryDisabledDropsOldSamples) {
  TimeSeries s(SmallConfig(4, 0));
  for (Time t = 0; t < 10; ++t) s.Push(t, static_cast<double>(t));
  EXPECT_EQ(s.num_samples(), 10u);
  EXPECT_EQ(s.num_bins(), 4u);       // raw ring only
  EXPECT_EQ(RetainedCount(s), 4u);   // invariant waived by config
  EXPECT_EQ(s.retained_since(), 6);  // oldest retained sample
}

TEST(TimeSeriesTest, SlopeRecoversALinearTrend) {
  TimeSeries s(SmallConfig(16, 16));
  for (Time t = 0; t < 500; ++t) {
    s.Push(t, 10.0 + 2.5 * static_cast<double>(t));
  }
  // Downsampled bins average a linear series symmetrically, so the
  // least-squares slope comes back almost exactly.
  EXPECT_NEAR(s.Slope(), 2.5, 0.01);

  TimeSeries flat(SmallConfig(16, 16));
  for (Time t = 0; t < 500; ++t) flat.Push(t, 7.0);
  EXPECT_NEAR(flat.Slope(), 0.0, 1e-9);
}

TEST(TimeSeriesTest, MergeFoldsSameShapeSeries) {
  TimeSeries a(SmallConfig(4, 4));
  TimeSeries b(SmallConfig(4, 4));
  for (Time t = 0; t < 50; ++t) {
    a.Push(t, 1.0);
    b.Push(t, 3.0);
  }
  ASSERT_TRUE(a.MergeFrom(b));
  EXPECT_EQ(a.num_samples(), 100u);
  EXPECT_EQ(RetainedCount(a), 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min_seen(), 1.0);
  EXPECT_DOUBLE_EQ(a.max_seen(), 3.0);
  // Equal sample counts fold ewma/last as the midpoint.
  EXPECT_DOUBLE_EQ(a.last(), 2.0);
}

TEST(TimeSeriesTest, MergeRejectsShapeMismatchAndLeavesTargetUntouched) {
  TimeSeries a(SmallConfig(4, 4));
  TimeSeries b(SmallConfig(4, 4));
  for (Time t = 0; t < 50; ++t) a.Push(t, 1.0);
  for (Time t = 0; t < 10; ++t) b.Push(t, 9.0);  // different shape
  EXPECT_FALSE(a.MergeFrom(b));
  EXPECT_EQ(a.num_samples(), 50u);
  EXPECT_DOUBLE_EQ(a.max_seen(), 1.0);
}

TEST(TelemetryRecorderTest, SamplesGaugesCountersAndProbes) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("g");
  Counter* counter = registry.GetCounter("c");

  TelemetryConfig config;
  config.sample_interval = 10;
  TelemetryRecorder rec(config, &registry);
  rec.TrackGauge("g");
  rec.TrackCounterRate("c");
  double probe_value = 0.0;
  rec.TrackProbe("p", [&probe_value] { return probe_value; });

  gauge->Set(0.5);
  counter->Inc(7);
  probe_value = 42.0;
  rec.SampleNow(10);
  counter->Inc(3);
  rec.SampleNow(20);

  EXPECT_EQ(rec.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(rec.series("g")->last(), 0.5);
  // Counter rates are per-interval deltas under "<name>.rate".
  EXPECT_EQ(rec.series("c"), nullptr);
  ASSERT_NE(rec.series("c.rate"), nullptr);
  EXPECT_DOUBLE_EQ(rec.series("c.rate")->last(), 3.0);
  EXPECT_DOUBLE_EQ(rec.series("c.rate")->min_seen(), 3.0);
  EXPECT_DOUBLE_EQ(rec.series("c.rate")->max_seen(), 7.0);
  EXPECT_DOUBLE_EQ(rec.series("p")->last(), 42.0);
}

TEST(TelemetryRecorderTest, CounterResetClampsToZeroRate) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("c");
  TelemetryRecorder rec({}, &registry);
  rec.TrackCounterRate("c");

  counter->Inc(100);
  rec.SampleNow(10);
  counter->Reset();  // warm restart
  counter->Inc(5);
  rec.SampleNow(20);
  // 5 < 100: the delta would underflow; it must clamp to 0, not 2^64-95.
  EXPECT_DOUBLE_EQ(rec.series("c.rate")->last(), 0.0);
  rec.SampleNow(30);
  EXPECT_DOUBLE_EQ(rec.series("c.rate")->last(), 0.0);
  counter->Inc(4);
  rec.SampleNow(40);
  EXPECT_DOUBLE_EQ(rec.series("c.rate")->last(), 4.0);
}

TEST(TelemetryRecorderTest, DisabledRecorderSamplesNothing) {
  MetricRegistry registry;
  TelemetryRecorder rec({}, &registry);
  rec.TrackGauge("g");
  rec.set_enabled(false);
  rec.SampleNow(10);
  EXPECT_EQ(rec.num_samples(), 0u);
  EXPECT_EQ(rec.series("g")->num_samples(), 0u);
}

TEST(TelemetryRecorderTest, TrackingTwiceReturnsTheSameSeries) {
  MetricRegistry registry;
  TelemetryRecorder rec({}, &registry);
  TimeSeries* first = rec.TrackGauge("g");
  EXPECT_EQ(rec.TrackGauge("g"), first);
  EXPECT_EQ(rec.num_series(), 1u);
}

TEST(TelemetryRecorderTest, RssSeriesReportsAPlausibleResidentSet) {
  MetricRegistry registry;
  TelemetryRecorder rec({}, &registry);
  rec.TrackRss();
  rec.SampleNow(1);
  // Any live process is resident somewhere between 1 MB and 100 GB.
  EXPECT_GT(rec.series("proc.rss_kb")->last(), 1024.0);
  EXPECT_LT(rec.series("proc.rss_kb")->last(), 100.0 * 1024 * 1024);
}

TEST(TelemetryRecorderTest, MergeFoldsJobSplitRecorders) {
  MetricRegistry ra, rb;
  ra.GetGauge("g")->Set(1.0);
  rb.GetGauge("g")->Set(5.0);
  TelemetryRecorder a({}, &ra), b({}, &rb);
  a.TrackGauge("g");
  b.TrackGauge("g");
  for (Time t = 0; t < 30; ++t) {
    a.SampleNow(t);
    b.SampleNow(t);
  }
  ASSERT_TRUE(a.MergeFrom(b));
  EXPECT_DOUBLE_EQ(a.series("g")->mean(), 3.0);
  EXPECT_EQ(a.series("g")->num_samples(), 60u);

  // Mismatched probe sets refuse to merge.
  TelemetryRecorder c({}, &ra);
  c.TrackGauge("other");
  EXPECT_FALSE(a.MergeFrom(c));
}

TEST(TimelineTest, TimelineJsonIsWellFormedAndCarriesTheSchema) {
  MetricRegistry registry;
  registry.GetGauge("g")->Set(2.0);
  TelemetryRecorder rec({}, &registry);
  rec.TrackGauge("g");
  for (Time t = 0; t < 300; ++t) rec.SampleNow(t);

  SloWatchdog watchdog(&rec);
  watchdog.AddRule("g value >= 10 for 5");  // will breach
  for (Time t = 300; t < 320; ++t) watchdog.Evaluate(t);

  TimelineMeta meta;
  meta.benchmark = "unit \"test\"";  // escaping must hold
  meta.horizon = 320;
  const std::string json = TimelineToJson(rec, &watchdog, meta);
  EXPECT_TRUE(ValidateJson(json)) << json;
  EXPECT_NE(json.find("\"kind\": \"snapq-timeline\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"breach\""), std::string::npos);

  // Without a watchdog the document still validates with a pass verdict.
  const std::string bare = TimelineToJson(rec, nullptr, meta);
  EXPECT_TRUE(ValidateJson(bare)) << bare;
  EXPECT_NE(bare.find("\"verdict\": \"pass\""), std::string::npos);
}

}  // namespace
}  // namespace snapq::obs
