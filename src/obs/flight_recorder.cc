#include "obs/flight_recorder.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json.h"
#include "obs/timeline.h"

namespace snapq::obs {

FlightRecorder::FlightRecorder(size_t capacity) {
  SNAPQ_CHECK_GT(capacity, 0u);
  ring_.resize(capacity);
}

void FlightRecorder::Write(const std::string& line) {
  // Assignment into the ring slot reuses its capacity, so steady-state
  // recording of similarly-sized lines does not allocate.
  if (size_ == ring_.size()) {
    ring_[start_] = line;
    start_ = (start_ + 1) % ring_.size();
  } else {
    ring_[(start_ + size_) % ring_.size()] = line;
    ++size_;
  }
  ++total_;
  if (forward_ != nullptr) forward_->Write(line);
}

void FlightRecorder::Flush() {
  if (forward_ != nullptr) forward_->Flush();
}

bool WriteBlackbox(const FlightRecorder* recorder_ring,
                   const BlackboxContext& context, const std::string& path) {
  std::string out = "{\"schema_version\": 1";
  out += ", \"kind\": \"snapq-blackbox\"";
  out += ", \"reason\": \"" + JsonEscape(context.reason) + "\"";
  out += ", \"benchmark\": \"" + JsonEscape(context.benchmark) + "\"";
  out += ", \"t\": " + std::to_string(context.now);

  out += ", \"slo\": ";
  if (context.watchdog != nullptr) {
    AppendSloJson(*context.watchdog, &out);
  } else {
    out += "{\"rules\": [], \"breaches\": [], \"verdict\": \"pass\"}";
  }

  out += ", \"series\": ";
  if (context.recorder != nullptr) {
    AppendSeriesJson(*context.recorder, &out);
  } else {
    out += "{}";
  }

  // Active trace ids: the distinct trace ids of the most recent spans, so
  // the dump links back into the causal trace store.
  out += ", \"traces\": [";
  if (context.tracer != nullptr) {
    std::vector<uint64_t> ids;
    const std::vector<TraceSpan>& spans = context.tracer->spans();
    for (size_t i = spans.size(); i-- > 0 && ids.size() < 16;) {
      const uint64_t id = spans[i].trace_id;
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        ids.push_back(id);
      }
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(ids[i]);
    }
  }
  out += "]";

  // The retained journal window, newest last. Lines are JSONL records
  // produced by the journal, so they embed verbatim.
  out += ", \"journal\": [";
  if (recorder_ring != nullptr) {
    bool first = true;
    recorder_ring->ForEach([&](const std::string& line) {
      if (!first) out += ", ";
      first = false;
      out += line;
    });
  }
  out += "]}";
  return WriteTextFileAtomic(path, out);
}

}  // namespace snapq::obs
