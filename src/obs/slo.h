// Declarative SLO rules over telemetry series, and the watchdog that
// evaluates them. A rule states a condition that must hold, in a one-line
// text form the shell, bench drivers and config files share:
//
//   health.coverage value >= 0.9 for 500
//   health.violation_rate ewma <= 3
//   proc.rss_kb slope <= 1.5
//
// i.e. `<metric> <stat> <op> <threshold> [for <ticks>]` with stat one of
// value (latest sample), ewma, or slope (least-squares trend of the
// retained window, units per tick). `for <ticks>` is a sustain window:
// the condition must be continuously violated that long before the
// watchdog confirms a breach — a single bad sample during a loss burst is
// not an incident, 500 ticks below the coverage floor is.
//
// Each confirmed breach is recorded as a verdict (and "slo.breach"
// journal event), re-arming only after the rule recovers; the breach
// callback is where the flight recorder's blackbox dump hooks in.
#ifndef SNAPQ_OBS_SLO_H_
#define SNAPQ_OBS_SLO_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/node_id.h"
#include "obs/journal.h"
#include "obs/timeseries.h"

namespace snapq::obs {

struct SloRule {
  enum class Stat { kValue, kEwma, kSlope };
  enum class Op { kGe, kLe };

  std::string metric;
  Stat stat = Stat::kValue;
  Op op = Op::kGe;
  double threshold = 0.0;
  /// Violation must sustain this many ticks before a breach confirms
  /// (0 = confirm on the first violating sample).
  Time for_ticks = 0;

  /// The canonical one-line text form (parses back with Parse).
  std::string ToString() const;
  /// Parses the text form above; nullopt on malformed input.
  static std::optional<SloRule> Parse(std::string_view text);
};

/// One confirmed SLO breach.
struct SloBreach {
  SloRule rule;
  Time violated_since = 0;  ///< first violating sample of this episode
  Time confirmed_at = 0;    ///< when the sustain window elapsed
  double observed = 0.0;    ///< the rule's stat at confirmation time
};

/// Evaluates a rule set against a TelemetryRecorder after each sample.
class SloWatchdog {
 public:
  /// `journal` (optional) receives one "slo.breach" event per verdict.
  explicit SloWatchdog(const TelemetryRecorder* recorder,
                       EventJournal* journal = nullptr);

  /// Adds a rule. The metric need not be tracked yet — rules against an
  /// unknown series simply do not fire until it appears.
  void AddRule(const SloRule& rule);
  /// Parses and adds; returns false on a malformed rule string.
  bool AddRule(std::string_view text);

  /// Invoked after each confirmed breach (blackbox dump hook).
  using BreachCallback = std::function<void(const SloBreach&)>;
  void SetBreachCallback(BreachCallback callback) {
    on_breach_ = std::move(callback);
  }

  /// Evaluates every rule at sim-time `t` (call after SampleNow).
  void Evaluate(Time t);

  size_t num_rules() const { return rules_.size(); }
  const std::vector<SloRule>& rules() const { return rules_; }
  const std::vector<SloBreach>& breaches() const { return breaches_; }
  bool healthy() const { return breaches_.empty(); }
  /// Confirmed breaches of rules on `metric` (shell \health trend lines).
  size_t BreachesFor(std::string_view metric) const;

  /// One-line-per-rule status table (shell, soak driver summary).
  std::string ToString() const;

 private:
  struct RuleState {
    SloRule rule;
    /// First violating sample time of the current episode; kNotViolating
    /// when the rule currently holds.
    Time violated_since = kNotViolating;
    bool fired = false;  ///< breach already confirmed this episode
  };
  static constexpr Time kNotViolating = -1;

  const TelemetryRecorder* recorder_;
  EventJournal* journal_;
  std::vector<RuleState> states_;
  std::vector<SloRule> rules_;
  std::vector<SloBreach> breaches_;
  BreachCallback on_breach_;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_SLO_H_
