// Battery tri-state transitions (ok / died-now / already-dead) at every
// simulator charge site. The paper's §6.2 rules pinned here: a node may
// die on its final transmission, which still goes out; dead nodes neither
// send nor receive; and each death is reported exactly once — as a
// net.node_deaths count, a ledger death tick, and one frozen-schema
// node_death journal event naming the charge site that killed the node.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/energy_ledger.h"
#include "obs/journal.h"
#include "sim/simulator.h"

namespace snapq {
namespace {

Message DataMsg(NodeId from, NodeId to = kBroadcastId) {
  Message m;
  m.type = MessageType::kData;
  m.from = from;
  m.to = to;
  return m;
}

/// Two nodes in range; `battery` is the initial charge, `rx` the receive
/// cost (the paper's default is 0 — receiving is free).
Simulator MakePair(double battery, double rx = 0.0) {
  SimConfig config;
  config.energy.initial_battery = battery;
  config.energy.rx_cost = rx;
  return Simulator({{0.0, 0.0}, {1.0, 0.0}}, {2.0, 2.0}, config);
}

/// The `cause` field of every node_death event captured by `sink`.
std::vector<std::string> DeathCauses(const obs::MemoryJournalSink& sink) {
  std::vector<std::string> causes;
  for (const std::string& line : sink.lines()) {
    const auto event = obs::JournalEvent::Parse(line);
    if (event.has_value() && event->name() == "node_death") {
      causes.push_back(event->GetStr("cause").value_or("?"));
    }
  }
  return causes;
}

TEST(NodeDeathTest, FinalTransmissionGoesOutAndKillsTheSender) {
  Simulator sim = MakePair(/*battery=*/1.0);
  int received = 0;
  sim.SetHandler(1, [&](const Message&, bool) { ++received; });

  EXPECT_TRUE(sim.Send(DataMsg(0)));  // exact overdraft: dies transmitting
  sim.RunAll();
  EXPECT_EQ(received, 1);  // the dying transmission was delivered
  EXPECT_FALSE(sim.alive(0));
  EXPECT_EQ(sim.battery(0).remaining(), 0.0);
  EXPECT_EQ(sim.metrics().node_deaths(), 1u);

  EXPECT_FALSE(sim.Send(DataMsg(0)));  // dead nodes cannot send
  sim.RunAll();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sim.metrics().node_deaths(), 1u);  // reported exactly once
}

TEST(NodeDeathTest, ReceiveChargeCanKillAndDeadNodesStopReceiving) {
  // rx costs 1.5x a transmission so the receiver dies first: node 1 is
  // spent after three receptions (3 x 1.5 = 4.5), while four sends only
  // cost node 0 4.0 of its 4.5.
  Simulator sim = MakePair(/*battery=*/4.5, /*rx=*/1.5);
  int received = 0;
  sim.SetHandler(1, [&](const Message&, bool) { ++received; });

  sim.Send(DataMsg(0, /*to=*/1));
  sim.Send(DataMsg(0, /*to=*/1));
  sim.RunAll();
  EXPECT_EQ(received, 2);
  EXPECT_TRUE(sim.alive(1));

  sim.Send(DataMsg(0, /*to=*/1));  // third rx spends the battery: dies
  sim.RunAll();
  EXPECT_EQ(received, 3);  // the killing delivery is still handled
  EXPECT_FALSE(sim.alive(1));
  EXPECT_EQ(sim.metrics().node_deaths(), 1u);

  sim.Send(DataMsg(0, /*to=*/1));  // dead nodes cannot receive
  sim.RunAll();
  EXPECT_EQ(received, 3);
  EXPECT_TRUE(sim.alive(0));  // the sender outlives all four sends
  EXPECT_EQ(sim.metrics().node_deaths(), 1u);
}

TEST(NodeDeathTest, CacheOpChargeCanKill) {
  Simulator sim = MakePair(/*battery=*/0.15);
  sim.ChargeCacheOp(0);  // 0.1 of 0.15
  EXPECT_TRUE(sim.alive(0));
  sim.ChargeCacheOp(0);  // overdraft
  EXPECT_FALSE(sim.alive(0));
  sim.ChargeCacheOp(0);  // already dead: no-op
  EXPECT_EQ(sim.battery(0).remaining(), 0.0);
  EXPECT_EQ(sim.metrics().node_deaths(), 1u);
  EXPECT_EQ(sim.registry().GetCounter("net.node_deaths")->value(), 1u);
}

TEST(NodeDeathTest, DirectDrainAndKillReportOnce) {
  Simulator sim = MakePair(/*battery=*/2.0);
  obs::EnergyLedger ledger(sim.config().energy, sim.num_nodes(),
                           &sim.registry());
  sim.SetEnergyLedger(&ledger);

  sim.Drain(0, 5.0);  // overdraft kill via the direct site
  EXPECT_FALSE(sim.alive(0));
  EXPECT_EQ(ledger.death_tick(0), sim.now());
  // Only the 2.0 that existed was applied — conservation, not the ask.
  EXPECT_EQ(ledger.drained(0), 2.0);

  sim.Kill(1);  // forced kill discards the full remaining charge
  EXPECT_FALSE(sim.alive(1));
  EXPECT_EQ(ledger.cell(1, obs::EnergyLedger::KilledCell()), 2.0);
  sim.Kill(1);  // idempotent
  EXPECT_EQ(sim.metrics().node_deaths(), 2u);
  EXPECT_EQ(ledger.deaths(), 2u);
}

TEST(NodeDeathTest, JournalNamesTheChargeSiteThatKilled) {
  Simulator sim = MakePair(/*battery=*/1.0, /*rx=*/1.0);
  auto* sink = static_cast<obs::MemoryJournalSink*>(
      sim.journal().SetSink(std::make_unique<obs::MemoryJournalSink>()));

  sim.Send(DataMsg(0, /*to=*/1));  // node 0 dies tx, node 1 dies rx
  sim.RunAll();
  ASSERT_EQ(DeathCauses(*sink).size(), 2u);
  EXPECT_EQ(DeathCauses(*sink)[0], "tx");
  EXPECT_EQ(DeathCauses(*sink)[1], "rx");
  EXPECT_EQ(sim.metrics().node_deaths(), 2u);
}

TEST(NodeDeathTest, UnlimitedBatteryNeverDies) {
  SimConfig config;  // default energy is Unlimited()
  Simulator sim({{0.0, 0.0}, {1.0, 0.0}}, {2.0, 2.0}, config);
  for (int i = 0; i < 1000; ++i) {
    sim.Send(DataMsg(0));
    sim.ChargeCacheOp(0);
  }
  sim.RunAll();
  EXPECT_TRUE(sim.alive(0));
  EXPECT_EQ(sim.metrics().node_deaths(), 0u);
}

}  // namespace
}  // namespace snapq
