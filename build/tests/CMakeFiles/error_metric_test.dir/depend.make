# Empty dependencies file for error_metric_test.
# This may be replaced when dependencies are built.
