// Error metrics d(x, x̂) from §3. A node N_i can represent N_j when
// d(x_j, x̂_j) <= T for the application-chosen metric d and threshold T.
#ifndef SNAPQ_MODEL_ERROR_METRIC_H_
#define SNAPQ_MODEL_ERROR_METRIC_H_

#include <string>

namespace snapq {

enum class ErrorMetricKind {
  /// (x - x̂)^2 — the metric used throughout the paper's experiments.
  kSumSquared,
  /// |x - x̂|
  kAbsolute,
  /// |x - x̂| / max(s, |x|), with sanity bound s > 0 for x == 0.
  kRelative,
};

const char* ErrorMetricKindName(ErrorMetricKind kind);

/// A configured error metric. Cheap value type.
class ErrorMetric {
 public:
  /// `sanity_bound` is only used by the relative metric; must be > 0.
  explicit ErrorMetric(ErrorMetricKind kind, double sanity_bound = 1e-6);

  static ErrorMetric SumSquared() {
    return ErrorMetric(ErrorMetricKind::kSumSquared);
  }
  static ErrorMetric Absolute() {
    return ErrorMetric(ErrorMetricKind::kAbsolute);
  }
  static ErrorMetric Relative(double sanity_bound = 1e-6) {
    return ErrorMetric(ErrorMetricKind::kRelative, sanity_bound);
  }

  /// d(actual, estimate). Non-negative; zero iff estimate == actual (up to
  /// the relative metric's scaling).
  double Distance(double actual, double estimate) const;

  /// True iff the estimate is within threshold: d(actual, estimate) <= t.
  bool Within(double actual, double estimate, double t) const {
    return Distance(actual, estimate) <= t;
  }

  ErrorMetricKind kind() const { return kind_; }
  double sanity_bound() const { return sanity_bound_; }

  std::string ToString() const;

 private:
  ErrorMetricKind kind_;
  double sanity_bound_;
};

}  // namespace snapq

#endif  // SNAPQ_MODEL_ERROR_METRIC_H_
