file(REMOVE_RECURSE
  "../bench/ablation_innetwork_loss"
  "../bench/ablation_innetwork_loss.pdb"
  "CMakeFiles/ablation_innetwork_loss.dir/ablation_innetwork_loss.cc.o"
  "CMakeFiles/ablation_innetwork_loss.dir/ablation_innetwork_loss.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_innetwork_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
