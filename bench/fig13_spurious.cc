// Figure 13: spurious representatives (stale "I still represent N_j"
// beliefs caused by lost Rule-2 recalls) and total representatives vs
// message loss, on the weather workload with T = 0.1 and transmission
// range 0.2 (§6.3).
//
// Paper shape: spurious representatives stay few, and their count drops
// again at extreme loss rates because most invitations are lost and fewer
// Rule-2 situations arise.
#include <iostream>
#include <utility>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"

SNAPQ_BENCHMARK(fig13_spurious,
                "Figure 13: spurious representatives vs message loss") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Figure 13: spurious representatives vs message loss (weather data)",
      "N=100, T=0.1, sse, range=0.2, cache=2048B");

  TablePrinter table({"P_loss", "total representatives", "spurious"});
  for (double loss :
       {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const auto samples = exec::ParallelMap<std::pair<double, double>>(
        static_cast<size_t>(ctx.repetitions), ctx.jobs, [&](size_t r) {
          SensitivityConfig config;
          config.workload = WorkloadKind::kWeather;
          config.threshold = 0.1;
          config.transmission_range = 0.2;
          config.loss_probability = loss;
          config.seed = bench::kBaseSeed + static_cast<uint64_t>(r);
          const SensitivityOutcome outcome = RunSensitivityTrial(config);
          return std::pair<double, double>(
              static_cast<double>(outcome.stats.num_active),
              static_cast<double>(outcome.stats.num_spurious));
        });
    RunningStats total, spurious;
    for (const auto& [active, spur] : samples) {
      total.Add(active);
      spurious.Add(spur);
    }
    table.AddRow({TablePrinter::Num(loss, 2),
                  TablePrinter::Num(total.mean(), 1),
                  TablePrinter::Num(spurious.mean(), 1)});
  }
  table.Print(std::cout);

  // One fully-traced repetition at heavy loss for the `.trace.json`
  // sidecar: the causal trees behind the spurious-representative counts
  // (violation roots, re-elections, lost recalls) viewable in Perfetto.
  if (ctx.write_sidecars) {
    SensitivityConfig config;
    config.workload = WorkloadKind::kWeather;
    config.threshold = 0.1;
    config.transmission_range = 0.2;
    config.loss_probability = 0.5;
    config.seed = bench::kBaseSeed;
    config.trace_sampling = 1.0;
    const SensitivityOutcome outcome = RunSensitivityTrial(config);
    driver.WriteTrace(*outcome.network->tracer());
  }
}
