// Bridges the protocol layer to the obs::SnapshotHealthMonitor: builds a
// HealthSample from the agents' live state (mode census from a snapshot
// capture, cumulative violation/re-election counters from the registry,
// and model staleness from the representatives' caches).
#ifndef SNAPQ_SNAPSHOT_HEALTH_PROBE_H_
#define SNAPQ_SNAPSHOT_HEALTH_PROBE_H_

#include <memory>
#include <vector>

#include "obs/health_monitor.h"
#include "sim/simulator.h"
#include "snapshot/agent.h"

namespace snapq {

/// Samples snapshot health right now. Staleness is the mean over all
/// current representation pairs (rep r, member j) of now() minus the time
/// r last observed j (pairs with no cached observation contribute the
/// full sim time — the rep is flying blind on that member).
obs::HealthSample ProbeSnapshotHealth(
    Simulator& sim, const std::vector<std::unique_ptr<SnapshotAgent>>& agents);

}  // namespace snapq

#endif  // SNAPQ_SNAPSHOT_HEALTH_PROBE_H_
