#include "net/topology.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace snapq {

std::vector<Point> PlaceUniform(size_t n, const Rect& area, Rng& rng) {
  SNAPQ_CHECK(area.IsValid());
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Point{rng.UniformDouble(area.min_x, area.max_x),
                        rng.UniformDouble(area.min_y, area.max_y)});
  }
  return out;
}

std::vector<Point> PlaceGrid(size_t n, const Rect& area,
                             double jitter_fraction, Rng& rng) {
  SNAPQ_CHECK(area.IsValid());
  SNAPQ_CHECK_GE(jitter_fraction, 0.0);
  std::vector<Point> out;
  out.reserve(n);
  if (n == 0) return out;
  const size_t cols =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const size_t rows = (n + cols - 1) / cols;
  const double cell_w = area.Width() / static_cast<double>(cols);
  const double cell_h = area.Height() / static_cast<double>(rows);
  for (size_t i = 0; i < n; ++i) {
    const size_t r = i / cols;
    const size_t c = i % cols;
    double x = area.min_x + (static_cast<double>(c) + 0.5) * cell_w;
    double y = area.min_y + (static_cast<double>(r) + 0.5) * cell_h;
    if (jitter_fraction > 0.0) {
      x += rng.UniformDouble(-jitter_fraction, jitter_fraction) * cell_w;
      y += rng.UniformDouble(-jitter_fraction, jitter_fraction) * cell_h;
    }
    out.push_back(Point{std::clamp(x, area.min_x, area.max_x),
                        std::clamp(y, area.min_y, area.max_y)});
  }
  return out;
}

std::vector<Point> PlaceClustered(size_t n, size_t num_clusters,
                                  double cluster_stddev, const Rect& area,
                                  Rng& rng) {
  SNAPQ_CHECK(area.IsValid());
  SNAPQ_CHECK_GT(num_clusters, 0u);
  std::vector<Point> centers = PlaceUniform(num_clusters, area, rng);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point& c = centers[i % num_clusters];
    const double x = c.x + rng.Gaussian(0.0, cluster_stddev);
    const double y = c.y + rng.Gaussian(0.0, cluster_stddev);
    out.push_back(Point{std::clamp(x, area.min_x, area.max_x),
                        std::clamp(y, area.min_y, area.max_y)});
  }
  return out;
}

}  // namespace snapq
