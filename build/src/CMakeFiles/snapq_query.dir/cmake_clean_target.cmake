file(REMOVE_RECURSE
  "libsnapq_query.a"
)
