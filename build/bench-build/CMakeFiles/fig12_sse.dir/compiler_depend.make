# Empty compiler generated dependencies file for fig12_sse.
# This may be replaced when dependencies are built.
