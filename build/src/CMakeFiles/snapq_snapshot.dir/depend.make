# Empty dependencies file for snapq_snapshot.
# This may be replaced when dependencies are built.
