
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cache_line.cc" "src/CMakeFiles/snapq_model.dir/model/cache_line.cc.o" "gcc" "src/CMakeFiles/snapq_model.dir/model/cache_line.cc.o.d"
  "/root/repo/src/model/cache_manager.cc" "src/CMakeFiles/snapq_model.dir/model/cache_manager.cc.o" "gcc" "src/CMakeFiles/snapq_model.dir/model/cache_manager.cc.o.d"
  "/root/repo/src/model/error_metric.cc" "src/CMakeFiles/snapq_model.dir/model/error_metric.cc.o" "gcc" "src/CMakeFiles/snapq_model.dir/model/error_metric.cc.o.d"
  "/root/repo/src/model/linear_model.cc" "src/CMakeFiles/snapq_model.dir/model/linear_model.cc.o" "gcc" "src/CMakeFiles/snapq_model.dir/model/linear_model.cc.o.d"
  "/root/repo/src/model/model_store.cc" "src/CMakeFiles/snapq_model.dir/model/model_store.cc.o" "gcc" "src/CMakeFiles/snapq_model.dir/model/model_store.cc.o.d"
  "/root/repo/src/model/multi_measurement.cc" "src/CMakeFiles/snapq_model.dir/model/multi_measurement.cc.o" "gcc" "src/CMakeFiles/snapq_model.dir/model/multi_measurement.cc.o.d"
  "/root/repo/src/model/robust_fit.cc" "src/CMakeFiles/snapq_model.dir/model/robust_fit.cc.o" "gcc" "src/CMakeFiles/snapq_model.dir/model/robust_fit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snapq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
