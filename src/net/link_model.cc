#include "net/link_model.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace snapq {

LinkModel::LinkModel(std::vector<Point> positions, std::vector<double> ranges,
                     double loss_probability)
    : positions_(std::move(positions)),
      ranges_(std::move(ranges)),
      loss_probability_(loss_probability) {
  SNAPQ_CHECK_EQ(positions_.size(), ranges_.size());
  SNAPQ_CHECK(loss_probability_ >= 0.0 && loss_probability_ <= 1.0);
  const size_t n = positions_.size();
  reachable_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    const double r2 = ranges_[i] * ranges_[i];
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      if (DistanceSquared(positions_[i], positions_[j]) <= r2) {
        reachable_[i].push_back(j);
      }
    }
  }
}

bool LinkModel::CanReach(NodeId from, NodeId to) const {
  SNAPQ_DCHECK(from < num_nodes() && to < num_nodes());
  if (from == to) return false;
  const double r = ranges_[from];
  return DistanceSquared(positions_[from], positions_[to]) <= r * r;
}

bool LinkModel::SampleLoss(NodeId from, NodeId to, Rng& rng) const {
  double p = loss_probability_;
  if (!link_loss_.empty()) {
    const auto it = link_loss_.find(static_cast<uint64_t>(from) * num_nodes() +
                                    to);
    if (it != link_loss_.end()) p = it->second;
  }
  return rng.Bernoulli(p);
}

void LinkModel::SetLinkLoss(NodeId from, NodeId to, double loss_probability) {
  SNAPQ_CHECK(loss_probability >= 0.0 && loss_probability <= 1.0);
  link_loss_[static_cast<uint64_t>(from) * num_nodes() + to] =
      loss_probability;
}

void LinkModel::SetPosition(NodeId id, const Point& position) {
  SNAPQ_CHECK_LT(id, num_nodes());
  positions_[id] = position;
  const size_t n = num_nodes();
  // Rebuild the mover's own row.
  reachable_[id].clear();
  const double r2 = ranges_[id] * ranges_[id];
  for (NodeId j = 0; j < n; ++j) {
    if (j != id && DistanceSquared(positions_[id], positions_[j]) <= r2) {
      reachable_[id].push_back(j);
    }
  }
  // Patch every other row's membership of the mover.
  for (NodeId i = 0; i < n; ++i) {
    if (i == id) continue;
    auto& row = reachable_[i];
    const bool now_reachable =
        DistanceSquared(positions_[i], positions_[id]) <=
        ranges_[i] * ranges_[i];
    const auto it = std::find(row.begin(), row.end(), id);
    const bool was_reachable = it != row.end();
    if (now_reachable && !was_reachable) {
      // Keep rows sorted by id (construction order) for determinism.
      row.insert(std::lower_bound(row.begin(), row.end(), id), id);
    } else if (!now_reachable && was_reachable) {
      row.erase(it);
    }
  }
}

bool LinkModel::IsConnected() const {
  const size_t n = num_nodes();
  if (n == 0) return true;
  // BFS over the undirected closure of reachability (i~j if either can
  // reach the other).
  std::vector<bool> seen(n, false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v = 0; v < n; ++v) {
      if (!seen[v] && (CanReach(u, v) || CanReach(v, u))) {
        seen[v] = true;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == n;
}

}  // namespace snapq
