// A move-only `void()` callable with small-buffer optimization: callables
// whose state fits `InlineBytes` (and is nothrow-movable) live inside the
// object — constructing, moving and invoking them performs no heap
// allocation. Larger callables fall back to a single heap allocation,
// exactly like std::function, so no caller ever has to size its captures
// to a limit.
//
// Built for the simulator's event hot path: EventQueue stores one of
// these per pending event, and Simulator::Send's pooled delivery closure
// (two pointers) fits inline with room to spare — so a simulated message
// delivery costs zero allocations (tests/sim/event_queue_alloc_test.cc
// pins this). Kept in common/ because nothing about it is sim-specific.
#ifndef SNAPQ_COMMON_INLINE_FUNCTION_H_
#define SNAPQ_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace snapq {

template <size_t InlineBytes>
class InlineFunction {
 public:
  InlineFunction() noexcept = default;

  /// Wraps any `void()` callable. Stored inline when `sizeof(F)` fits and
  /// F is nothrow-move-constructible (the move is what priority-queue
  /// sifting does, so it must not throw); heap-allocated otherwise.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Destroy(); }

  /// Invokes the wrapped callable. Undefined when empty (checked builds
  /// die on the null ops table like any null call would).
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable's state lives in the inline buffer (empty
  /// functions count as inline: there is nothing on the heap).
  bool is_inline() const noexcept {
    return ops_ == nullptr || ops_->inline_storage;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool FitsInline() {
    return sizeof(Fn) <= InlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*std::launder(static_cast<Fn*>(storage)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) noexcept {
        std::launder(static_cast<Fn*>(storage))->~Fn();
      },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* storage) {
        (**std::launder(static_cast<Fn**>(storage)))();
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(static_cast<Fn**>(src)));
      },
      [](void* storage) noexcept {
        delete *std::launder(static_cast<Fn**>(storage));
      },
      /*inline_storage=*/false,
  };

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  static_assert(InlineBytes >= sizeof(void*),
                "inline buffer must at least hold the heap-fallback pointer");

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace snapq

#endif  // SNAPQ_COMMON_INLINE_FUNCTION_H_
