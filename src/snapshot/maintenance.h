// Snapshot maintenance driver (§5.1): schedules periodic maintenance rounds
// across all agents — passive heartbeats, lone-active invitations,
// energy-based resignations — and reports per-round message statistics
// (Fig 14/15 plot snapshot size and messages per node per update).
#ifndef SNAPQ_SNAPSHOT_MAINTENANCE_H_
#define SNAPQ_SNAPSHOT_MAINTENANCE_H_

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "snapshot/agent.h"
#include "snapshot/node_state.h"

namespace snapq {

/// Per-round observation delivered to the callback.
struct MaintenanceRoundStats {
  Time round_start = 0;
  size_t snapshot_size = 0;  ///< ACTIVE nodes after the round settles
  size_t num_spurious = 0;
  double avg_messages_per_node = 0.0;
};

/// Drives maintenance rounds every `interval` time units. The harness still
/// owns data updates and query traffic; the driver only triggers
/// MaintenanceTick() and measures each round.
class MaintenanceDriver {
 public:
  using RoundCallback = std::function<void(const MaintenanceRoundStats&)>;

  MaintenanceDriver(Simulator* sim,
                    std::vector<std::unique_ptr<SnapshotAgent>>* agents,
                    Time interval);

  /// Schedules rounds at first_round, first_round + interval, ... while
  /// round_start < horizon. Measurement of a round happens `settle` time
  /// units after it starts (default: half the interval, capped at 20),
  /// when re-elections have quiesced.
  void ScheduleRounds(Time first_round, Time horizon,
                      RoundCallback callback);

  Time interval() const { return interval_; }

 private:
  void RunRound(Time round_start, Time horizon, RoundCallback callback);

  Simulator* const sim_;
  std::vector<std::unique_ptr<SnapshotAgent>>* const agents_;
  const Time interval_;
};

}  // namespace snapq

#endif  // SNAPQ_SNAPSHOT_MAINTENANCE_H_
