#include "model/cache_line.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(CacheLineTest, StartsEmpty) {
  CacheLine line;
  EXPECT_TRUE(line.empty());
  EXPECT_EQ(line.size(), 0u);
  EXPECT_EQ(line.stats().n(), 0u);
}

TEST(CacheLineTest, PushMaintainsOrderOldestFirst) {
  CacheLine line;
  line.PushNewest({1.0, 2.0, 10});
  line.PushNewest({3.0, 4.0, 11});
  EXPECT_EQ(line.size(), 2u);
  EXPECT_EQ(line.oldest().time, 10);
  EXPECT_EQ(line.newest().time, 11);
}

TEST(CacheLineTest, PopOldestRemovesFront) {
  CacheLine line;
  line.PushNewest({1.0, 2.0, 10});
  line.PushNewest({3.0, 4.0, 11});
  const ObservationPair p = line.PopOldest();
  EXPECT_EQ(p.time, 10);
  EXPECT_EQ(line.size(), 1u);
  EXPECT_EQ(line.oldest().time, 11);
}

TEST(CacheLineTest, StatsTrackPushesAndPops) {
  CacheLine line;
  line.PushNewest({1.0, 2.0, 0});
  line.PushNewest({2.0, 4.0, 1});
  line.PushNewest({3.0, 6.0, 2});
  EXPECT_EQ(line.stats().n(), 3u);
  EXPECT_DOUBLE_EQ(line.stats().sum_x(), 6.0);
  EXPECT_DOUBLE_EQ(line.stats().sum_y(), 12.0);
  line.PopOldest();
  EXPECT_EQ(line.stats().n(), 2u);
  EXPECT_DOUBLE_EQ(line.stats().sum_x(), 5.0);
}

TEST(CacheLineTest, FitModelSeesExactLine) {
  CacheLine line;
  line.PushNewest({0.0, 1.0, 0});
  line.PushNewest({1.0, 3.0, 1});
  const LinearModel m = line.FitModel();
  EXPECT_NEAR(m.a, 2.0, 1e-12);
  EXPECT_NEAR(m.b, 1.0, 1e-12);
}

TEST(CacheLineDeathTest, PopFromEmptyAborts) {
  CacheLine line;
  EXPECT_DEATH(line.PopOldest(), "SNAPQ_CHECK");
}

TEST(CacheLineTest, PairsExposedInOrder) {
  CacheLine line;
  for (int i = 0; i < 5; ++i) {
    line.PushNewest({static_cast<double>(i), 0.0, i});
  }
  int expected = 0;
  for (const ObservationPair& p : line.pairs()) {
    EXPECT_EQ(p.time, expected++);
  }
}

}  // namespace
}  // namespace snapq
