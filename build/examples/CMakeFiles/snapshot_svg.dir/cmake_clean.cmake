file(REMOVE_RECURSE
  "CMakeFiles/snapshot_svg.dir/snapshot_svg.cpp.o"
  "CMakeFiles/snapshot_svg.dir/snapshot_svg.cpp.o.d"
  "snapshot_svg"
  "snapshot_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
