// SnapshotAgent: the per-node protocol state machine. It binds the model
// store (§4) to the simulator's radio and implements:
//
//   * model building by snooping value broadcasts (kData), invitations and
//     heartbeats (§3);
//   * the representative-discovery protocol of Table 2 — invitation,
//     model-evaluation/candidate lists, initial selection — and the five
//     refinement rules of Figure 5, including the Rule-4 randomized
//     fallback (§5);
//   * snapshot maintenance (§5.1): heartbeats with estimate checking, local
//     re-election with load-aware candidate scoring, energy-based
//     resignation, and epoch-based spurious-representative cleanup.
#ifndef SNAPQ_SNAPSHOT_AGENT_H_
#define SNAPQ_SNAPSHOT_AGENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "model/model_store.h"
#include "net/message.h"
#include "net/node_id.h"
#include "sim/simulator.h"
#include "snapshot/config.h"
#include "snapshot/node_state.h"

namespace snapq {

/// One protocol agent per sensor node. The owning harness must call
/// Install() once to hook the agent into the simulator, and keep the
/// agent's measurement fresh via SetMeasurement().
class SnapshotAgent {
 public:
  SnapshotAgent(NodeId id, Simulator* sim, const SnapshotConfig& config,
                uint64_t seed);

  SnapshotAgent(const SnapshotAgent&) = delete;
  SnapshotAgent& operator=(const SnapshotAgent&) = delete;
  SnapshotAgent(SnapshotAgent&&) = delete;

  /// Registers this agent's message handler with the simulator.
  void Install();

  // -- Data plane -----------------------------------------------------------

  /// Updates the node's current sensor reading (timestamped sim->now()).
  void SetMeasurement(double value);
  double measurement() const { return models_.own_value(); }

  /// Broadcasts the current measurement as a kData message (query response
  /// or periodic announcement); neighbors snoop it to build models.
  void BroadcastValue();

  // -- Election -------------------------------------------------------------

  /// Joins a network-wide discovery starting at absolute time t0 >= now():
  /// invitation at t0, initial selection at t0+2, refinement from t0+3.
  void BeginElection(Time t0);

  /// Starts a local re-election right now (maintenance §5.1): broadcast an
  /// invitation, collect offers scored by |Cand_nodes| + current load,
  /// select, refine.
  void BeginLocalReelection();

  // -- Maintenance ----------------------------------------------------------

  /// One maintenance round (§5.1): passive nodes heartbeat their
  /// representative; lone-active nodes broadcast invitations; low-battery
  /// representatives resign.
  void MaintenanceTick();

  // -- State accessors ------------------------------------------------------

  NodeId id() const { return id_; }
  NodeMode mode() const { return mode_; }
  /// The protocol configuration this agent runs (threshold T, error
  /// metric, cache policy) — EXPLAIN reads it to judge model errors.
  const SnapshotConfig& config() const { return config_; }
  /// This node's current representative (its own id when unrepresented).
  NodeId representative() const { return rep_; }
  /// Nodes this node believes it represents -> their election epochs.
  const std::map<NodeId, int64_t>& represents() const { return represents_; }
  int64_t epoch() const { return epoch_; }
  bool resigned() const { return resigned_; }
  /// Rounds left on the post-rotation candidacy cooldown.
  int rotation_cooldown_remaining() const { return cooldown_rounds_; }
  /// ACTIVE and representing nobody but itself.
  bool IsLoneActive() const {
    return mode_ == NodeMode::kActive && represents_.empty();
  }

  ModelStore& models() { return models_; }
  const ModelStore& models() const { return models_; }

  /// The model-based estimate of neighbor j's current measurement.
  std::optional<double> EstimateFor(NodeId j) const {
    return models_.Estimate(j);
  }

  /// This node's row of a SnapshotView.
  SnapshotView::NodeInfo Info() const;

  /// Hook for the query layer: kQueryRequest/kQueryReply deliveries are
  /// forwarded here (the agent itself only handles protocol traffic).
  using QueryHandler = std::function<void(const Message&)>;
  void SetQueryHandler(QueryHandler handler) {
    query_handler_ = std::move(handler);
  }

 private:
  // Message dispatch.
  void HandleMessage(const Message& msg, bool snooped);
  void OnInvitation(const Message& msg);
  void OnCandList(const Message& msg);
  void OnAccept(const Message& msg);
  void OnRecall(const Message& msg);
  void OnStayActive(const Message& msg);
  void OnRepAck(const Message& msg);
  void OnHeartbeat(const Message& msg, bool snooped);
  void OnHeartbeatReply(const Message& msg);
  void OnResign(const Message& msg);

  /// Feeds a heard neighbor value into the model cache (and charges the
  /// cache-maintenance CPU cost).
  void ObserveNeighbor(NodeId j, double value);

  /// Whether this node offers candidacy in response to an invitation:
  /// electing nodes (network discovery) and ACTIVE non-resigned nodes
  /// (maintenance); PASSIVE bystanders stay silent.
  bool OffersCandidacy() const;

  // Election internals.
  void StartElectionRound(Time t0);
  void SendInvitation();
  void ScheduleCandBroadcast();
  void BroadcastCandList();
  void RunSelection();
  void ScheduleRefinement(Time t);
  void RefinementTick();
  void ScheduleRepAck();
  void BroadcastRepAck();
  void BecomeActive();
  void BecomePassive();
  void SendRecall(NodeId old_rep);
  void CheckHeartbeatReply(int64_t sent_epoch);
  void BroadcastHeartbeatReplies();

  const NodeId id_;
  Simulator* const sim_;
  const SnapshotConfig config_;
  Rng rng_;
  ModelStore models_;

  // Representation state.
  NodeMode mode_ = NodeMode::kUndefined;
  NodeId rep_;             // my representative; == id_ when self-represented
  int64_t epoch_ = 0;      // bumped every time this node seeks representation
  std::map<NodeId, int64_t> represents_;

  // Election transients (valid while electing_).
  struct Offer {
    double score = 0.0;     // |Cand_nodes| + already-representing
    size_t list_len = 0;    // |Cand_nodes| alone (Rule-0 comparisons)
  };
  bool electing_ = false;
  Time refine_deadline_ = 0;   // Rule-4 randomization starts here
  Time hard_deadline_ = 0;     // deterministic ACTIVE fallback
  std::map<NodeId, Offer> offers_;
  std::map<NodeId, size_t> heard_cand_len_;
  size_t my_cand_len_ = 0;
  /// Inviting nodes this node can represent (id -> inviter's epoch).
  std::map<NodeId, int64_t> pending_cands_;
  bool cand_broadcast_scheduled_ = false;
  bool ack_scheduled_ = false;
  /// Members (id -> epoch) covered by the most recent RepAck broadcast. A
  /// StayActive arriving in the same time unit as a broadcast that already
  /// covered its sender needs no further ack (the sender will hear that
  /// broadcast); a *later* StayActive from an acked member means the
  /// broadcast was lost, so we ack again.
  std::map<NodeId, int64_t> acked_;
  Time last_ack_broadcast_ = -1;
  bool recall_sent_ = false;
  /// Rule-3 bookkeeping: when StayActive was last sent (< 0 = never this
  /// election). Re-sent every config.stay_active_resend units until the
  /// acknowledgment arrives.
  Time stay_active_last_ = -1;
  /// True once this election's representative acknowledged us (directly or
  /// via an overheard RepAck broadcast listing this node).
  bool rep_ack_seen_ = false;
  bool refinement_scheduled_ = false;
  /// Representative to release once a new selection lands (maintenance).
  NodeId prior_rep_ = kInvalidNode;

  // Maintenance transients.
  bool awaiting_reply_ = false;
  double heartbeat_value_ = 0.0;
  int heartbeat_misses_ = 0;
  bool resigned_ = false;
  /// LEACH-style rotation bookkeeping: consecutive maintenance rounds
  /// served as a representative, and rounds left on the post-rotation
  /// cooldown (no candidacy while > 0).
  int rounds_served_ = 0;
  int cooldown_rounds_ = 0;
  /// Heartbeats received this tick (member -> pre-update estimate); one
  /// broadcast answers them all.
  std::map<NodeId, double> pending_replies_;
  bool reply_scheduled_ = false;
  QueryHandler query_handler_;
};

}  // namespace snapq

#endif  // SNAPQ_SNAPSHOT_AGENT_H_
