#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace snapq {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) {
    return Status::ParseError("empty string is not a number");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in number: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::ParseError("number out of range: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) {
    return Status::ParseError("empty string is not an integer");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: '" + buf +
                              "'");
  }
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace snapq
