#include "net/message.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(MessageTest, TypeNamesAreStable) {
  EXPECT_STREQ(MessageTypeName(MessageType::kInvitation), "Invitation");
  EXPECT_STREQ(MessageTypeName(MessageType::kCandList), "CandList");
  EXPECT_STREQ(MessageTypeName(MessageType::kHeartbeat), "Heartbeat");
  EXPECT_STREQ(MessageTypeName(MessageType::kQueryReply), "QueryReply");
}

TEST(MessageTest, DefaultsAreBroadcastData) {
  Message m;
  EXPECT_EQ(m.type, MessageType::kData);
  EXPECT_EQ(m.to, kBroadcastId);
  EXPECT_EQ(m.from, kInvalidNode);
}

TEST(MessageTest, SizeOfScalarMessages) {
  Message m;
  m.type = MessageType::kInvitation;
  EXPECT_EQ(m.SizeBytes(), 7u + 4u);
  m.type = MessageType::kAccept;
  EXPECT_EQ(m.SizeBytes(), 7u);
  m.type = MessageType::kRecall;
  EXPECT_EQ(m.SizeBytes(), 7u);
}

TEST(MessageTest, SizeGrowsWithIdList) {
  Message m;
  m.type = MessageType::kCandList;
  EXPECT_EQ(m.SizeBytes(), 7u + 1u);
  m.ids = {1, 2, 3};
  EXPECT_EQ(m.SizeBytes(), 7u + 1u + 6u);
}

TEST(MessageTest, RepAckCountsEpochs) {
  Message m;
  m.type = MessageType::kRepAck;
  m.ids = {1, 2};
  m.epochs = {5, 6};
  EXPECT_EQ(m.SizeBytes(), 7u + 1u + 8u);
}

TEST(MessageTest, ToStringMentionsTypeAndEndpoints) {
  Message m;
  m.type = MessageType::kHeartbeat;
  m.from = 3;
  m.to = 9;
  m.value = 1.25;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("Heartbeat"), std::string::npos);
  EXPECT_NE(s.find("from=3"), std::string::npos);
  EXPECT_NE(s.find("to=9"), std::string::npos);
}

TEST(NodeIdTest, SentinelsAreDistinct) {
  EXPECT_NE(kInvalidNode, kBroadcastId);
}

}  // namespace
}  // namespace snapq
