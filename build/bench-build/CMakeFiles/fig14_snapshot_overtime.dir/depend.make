# Empty dependencies file for fig14_snapshot_overtime.
# This may be replaced when dependencies are built.
