#!/usr/bin/env python3
"""Validate and diff *.timeline.json telemetry sidecars.

Two modes:

  timeline_check.py --validate CURRENT.json [--require-pass] [--min-series N]
                    [--json PATH]
      schema-check one sidecar (the soak-smoke CI job gates on this).
      --require-pass additionally fails (exit 1) when the SLO verdict is
      "breach". --json writes a machine-readable verdict object to PATH
      ("-" for stdout) regardless of outcome — schema violations included —
      so CI consumes one JSON document instead of scraping stdout.

  timeline_check.py BASELINE.json CURRENT.json [--tol PCT]
      schema-check both, then compare per-series all-time mean and max
      against a percentage tolerance, and flag any series whose slope sign
      flipped from flat/negative to positive (a new upward trend — the
      memory-leak smell for proc.rss_kb). Exits 1 on regression or breach,
      2 on schema violation, 0 otherwise.

The schema is the one frozen by src/obs/timeline.h (schema_version 1,
kind "snapq-timeline") and pinned by tests/obs/timeseries_test.cc —
update all three together.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
KIND = "snapq-timeline"

TOP_FIELDS = {"schema_version": int, "kind": str, "benchmark": str,
              "git_sha": str, "quick": bool, "horizon": int,
              "sample_interval": int, "samples": int, "series": dict,
              "slo": dict}
SERIES_FIELDS = {"last": float, "ewma": float, "min": float, "max": float,
                 "mean": float, "slope": float, "samples": int, "bins": list}
BIN_FIELDS = {"t0": int, "t1": int, "min": float, "max": float,
              "mean": float, "count": int}
SLO_FIELDS = {"rules": list, "breaches": list, "verdict": str}
BREACH_FIELDS = {"rule": str, "metric": str, "since": int, "confirmed": int,
                 "observed": float, "threshold": float}


def _is_number(value, want):
    if isinstance(value, bool):
        return want is bool
    if want is float:
        return isinstance(value, (int, float))
    return isinstance(value, want)


def _check_fields(obj, fields, where, errors):
    for key, want in fields.items():
        if key not in obj:
            errors.append(f"{where}: missing field '{key}'")
        elif not _is_number(obj[key], want):
            errors.append(f"{where}: field '{key}' is "
                          f"{type(obj[key]).__name__}, wanted {want.__name__}")
    for key in obj:
        if key not in fields:
            errors.append(f"{where}: unknown field '{key}'")


def validate(doc, path, min_series):
    """Returns a list of schema-violation strings (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    _check_fields(doc, TOP_FIELDS, path, errors)
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"{path}: schema_version "
                      f"{doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    if doc.get("kind") != KIND:
        errors.append(f"{path}: kind {doc.get('kind')!r} != {KIND!r}")

    series = doc.get("series", {})
    if isinstance(series, dict):
        if len(series) < min_series:
            errors.append(f"{path}: only {len(series)} series, "
                          f"wanted >= {min_series}")
        for name, s in series.items():
            where = f"{path}:series.{name}"
            if not isinstance(s, dict):
                errors.append(f"{where}: not an object")
                continue
            _check_fields(s, SERIES_FIELDS, where, errors)
            bins = s.get("bins", [])
            if not isinstance(bins, list):
                continue
            retained = 0
            prev_t1 = None
            for i, b in enumerate(bins):
                bwhere = f"{where}.bins[{i}]"
                if not isinstance(b, dict):
                    errors.append(f"{bwhere}: not an object")
                    continue
                _check_fields(b, BIN_FIELDS, bwhere, errors)
                if isinstance(b.get("count"), int):
                    retained += b["count"]
                if isinstance(b.get("t0"), int) and isinstance(
                        b.get("t1"), int):
                    if b["t1"] < b["t0"]:
                        errors.append(f"{bwhere}: t1 {b['t1']} < t0 {b['t0']}")
                    if prev_t1 is not None and b["t0"] < prev_t1:
                        errors.append(f"{bwhere}: bins out of time order "
                                      f"(t0 {b['t0']} < previous t1 "
                                      f"{prev_t1})")
                    prev_t1 = b["t1"]
            # The count invariant: bins merge, they never drop, so the
            # retained mass must equal the all-time sample count.
            if isinstance(s.get("samples"), int) and retained != s["samples"]:
                errors.append(f"{where}: retained bin count {retained} != "
                              f"samples {s['samples']}")

    slo = doc.get("slo", {})
    if isinstance(slo, dict):
        _check_fields(slo, SLO_FIELDS, f"{path}:slo", errors)
        if slo.get("verdict") not in ("pass", "breach"):
            errors.append(f"{path}:slo: verdict {slo.get('verdict')!r} "
                          "not 'pass'/'breach'")
        for rule in slo.get("rules", []) \
                if isinstance(slo.get("rules"), list) else []:
            if not isinstance(rule, str):
                errors.append(f"{path}:slo.rules: entry is not a string")
        for i, b in enumerate(slo.get("breaches", [])) \
                if isinstance(slo.get("breaches"), list) else []:
            if isinstance(b, dict):
                _check_fields(b, BREACH_FIELDS, f"{path}:slo.breaches[{i}]",
                              errors)
            else:
                errors.append(f"{path}:slo.breaches[{i}]: not an object")
        breaches = slo.get("breaches")
        if slo.get("verdict") == "pass" and isinstance(breaches, list) \
                and breaches:
            errors.append(f"{path}:slo: verdict 'pass' with "
                          f"{len(breaches)} breach(es)")
    return errors


def pct_change(old, new):
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return 100.0 * (new - old) / old


def compare(base, cur, args):
    """Returns (regressions, notes) as lists of message strings."""
    regressions, notes = [], []
    base_series, cur_series = base["series"], cur["series"]

    for name in sorted(set(base_series) - set(cur_series)):
        notes.append(f"{name}: present in baseline only")
    for name in sorted(set(cur_series) - set(base_series)):
        notes.append(f"{name}: new series (no baseline)")
    if base.get("quick") != cur.get("quick"):
        notes.append("quick-mode mismatch between sidecars; comparison is "
                     "apples-to-oranges")

    if cur["slo"]["verdict"] == "breach":
        for b in cur["slo"]["breaches"]:
            regressions.append(f"SLO breach: {b['rule']} "
                               f"(observed {b['observed']:.4g} at "
                               f"t={b['confirmed']})")

    for name in sorted(set(base_series) & set(cur_series)):
        b, c = base_series[name], cur_series[name]
        for stat in ("mean", "max"):
            delta = pct_change(b[stat], c[stat])
            line = (f"{name}: {stat} {b[stat]:.4g} -> {c[stat]:.4g} "
                    f"({delta:+.1f}%)")
            if abs(delta) > args.tol:
                if delta > 0:
                    regressions.append(line)
                else:
                    notes.append(line + " [improved]")
        # A slope that turns positive means the series started trending up
        # where the baseline was flat or falling.
        if b["slope"] <= args.slope_eps < c["slope"] - args.slope_eps:
            regressions.append(f"{name}: slope {b['slope']:.4g} -> "
                               f"{c['slope']:.4g} (new upward trend)")
    return regressions, notes


def load_lenient(path, min_series):
    """Returns (doc_or_None, error_strings); never exits."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"cannot read {path}: {e}"]
    return doc, validate(doc, path, min_series)


def load(path, min_series):
    doc, errors = load_lenient(path, min_series)
    if errors:
        for e in errors:
            print(f"schema error: {e}", file=sys.stderr)
        sys.exit(2)
    return doc


def write_json_verdict(dest, payload):
    text = json.dumps(payload, indent=2) + "\n"
    if dest == "-":
        sys.stdout.write(text)
    else:
        with open(dest, "w", encoding="utf-8") as f:
            f.write(text)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline timeline sidecar (or the "
                        "only file with --validate)")
    parser.add_argument("current", nargs="?", help="current timeline sidecar")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check only, no comparison")
    parser.add_argument("--require-pass", action="store_true",
                        help="with --validate, exit 1 when the SLO verdict "
                             "is 'breach'")
    parser.add_argument("--min-series", type=int, default=1,
                        help="fail validation below this many series")
    parser.add_argument("--tol", type=float, default=50.0,
                        help="%% per-series mean/max growth tolerated "
                             "(default 50)")
    parser.add_argument("--slope-eps", type=float, default=1e-6,
                        help="slope magnitude treated as flat")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--json", metavar="PATH",
                        help="with --validate, write a machine-readable "
                             "verdict object to PATH ('-' for stdout)")
    args = parser.parse_args()

    if args.json and not args.validate:
        parser.error("--json requires --validate")

    if args.validate:
        if args.current:
            parser.error("--validate takes a single file")
        doc, errors = load_lenient(args.baseline, args.min_series)
        for e in errors:
            print(f"schema error: {e}", file=sys.stderr)
        valid = not errors
        verdict = doc["slo"]["verdict"] if valid else "invalid"
        breaches = doc["slo"]["breaches"] if valid else []
        if valid:
            print(f"{args.baseline}: valid (schema {SCHEMA_VERSION}, "
                  f"{len(doc['series'])} series, {doc['samples']} samples, "
                  f"slo {verdict})")
            if args.require_pass and verdict != "pass":
                for b in breaches:
                    print(f"SLO breach: {b['rule']} (observed "
                          f"{b['observed']:.4g} at t={b['confirmed']})")
        exit_code = 2 if not valid else (
            1 if args.require_pass and verdict != "pass" else 0)
        if args.json:
            write_json_verdict(args.json, {
                "file": args.baseline,
                "valid": valid,
                "schema_version": SCHEMA_VERSION,
                "series": len(doc["series"]) if valid else 0,
                "samples": doc["samples"] if valid else 0,
                "verdict": verdict,
                "breaches": breaches,
                "errors": errors,
                "exit_code": exit_code,
            })
        return exit_code

    if not args.current:
        parser.error("need BASELINE and CURRENT (or --validate)")
    base = load(args.baseline, args.min_series)
    cur = load(args.current, args.min_series)

    regressions, notes = compare(base, cur, args)
    for n in notes:
        print(f"note: {n}")
    for r in regressions:
        print(f"REGRESSION: {r}")
    print(f"compared {len(cur['series'])} series: "
          f"{len(regressions)} regression(s)")
    if regressions and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
