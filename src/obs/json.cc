#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace snapq::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

namespace {

/// Cursor over the input; all Parse* helpers advance it past what they
/// consumed and return false on malformed input.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  bool ConsumeWord(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }
};

bool ParseString(Cursor& c, std::string* out) {
  if (!c.Consume('"')) return false;
  out->clear();
  while (!c.AtEnd()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') return true;
    if (ch != '\\') {
      *out += ch;
      continue;
    }
    if (c.AtEnd()) return false;
    const char esc = c.text[c.pos++];
    switch (esc) {
      case '"':
        *out += '"';
        break;
      case '\\':
        *out += '\\';
        break;
      case '/':
        *out += '/';
        break;
      case 'n':
        *out += '\n';
        break;
      case 'r':
        *out += '\r';
        break;
      case 't':
        *out += '\t';
        break;
      case 'u': {
        if (c.pos + 4 > c.text.size()) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.text[c.pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        // Our writers only escape control characters; anything else in the
        // BMP is passed through as a replacement to keep the parser simple.
        *out += code < 0x80 ? static_cast<char>(code) : '?';
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated
}

bool ParseValue(Cursor& c, JsonValue* out) {
  c.SkipSpace();
  if (c.AtEnd()) return false;
  const char ch = c.Peek();
  if (ch == '"') {
    out->kind = JsonValue::Kind::kString;
    return ParseString(c, &out->string);
  }
  if (ch == 't') {
    out->kind = JsonValue::Kind::kBool;
    out->boolean = true;
    return c.ConsumeWord("true");
  }
  if (ch == 'f') {
    out->kind = JsonValue::Kind::kBool;
    out->boolean = false;
    return c.ConsumeWord("false");
  }
  if (ch == 'n') {
    out->kind = JsonValue::Kind::kNull;
    return c.ConsumeWord("null");
  }
  // Number: delegate to strtod over the remaining text.
  const std::string rest(c.text.substr(c.pos));
  char* end = nullptr;
  const double v = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) return false;
  c.pos += static_cast<size_t>(end - rest.c_str());
  out->kind = JsonValue::Kind::kNumber;
  out->number = v;
  return true;
}

}  // namespace

std::optional<std::map<std::string, JsonValue>> ParseFlatJsonObject(
    std::string_view text) {
  Cursor c{text};
  c.SkipSpace();
  if (!c.Consume('{')) return std::nullopt;
  std::map<std::string, JsonValue> out;
  c.SkipSpace();
  if (c.Consume('}')) {
    c.SkipSpace();
    return c.AtEnd() ? std::optional(out) : std::nullopt;
  }
  while (true) {
    c.SkipSpace();
    std::string key;
    if (!ParseString(c, &key)) return std::nullopt;
    c.SkipSpace();
    if (!c.Consume(':')) return std::nullopt;
    JsonValue value;
    if (!ParseValue(c, &value)) return std::nullopt;
    out[std::move(key)] = std::move(value);
    c.SkipSpace();
    if (c.Consume(',')) continue;
    if (c.Consume('}')) break;
    return std::nullopt;
  }
  c.SkipSpace();
  if (!c.AtEnd()) return std::nullopt;
  return out;
}

namespace {

/// Recursive-descent syntax check over the full JSON grammar. `depth`
/// guards against stack exhaustion on adversarial input.
bool CheckValue(std::string_view text, size_t& i, int depth);

bool CheckSpace(std::string_view text, size_t& i) {
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
          text[i] == '\r')) {
    ++i;
  }
  return true;
}

bool CheckLiteral(std::string_view text, size_t& i, std::string_view lit) {
  if (text.substr(i, lit.size()) != lit) return false;
  i += lit.size();
  return true;
}

bool CheckString(std::string_view text, size_t& i) {
  if (i >= text.size() || text[i] != '"') return false;
  ++i;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
    if (c == '\\') {
      ++i;
      if (i >= text.size()) return false;
      const char esc = text[i];
      if (esc == 'u') {
        if (i + 4 >= text.size()) return false;
        for (int k = 1; k <= 4; ++k) {
          const char h = text[i + static_cast<size_t>(k)];
          const bool hex = (h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                           (h >= 'A' && h <= 'F');
          if (!hex) return false;
        }
        i += 4;
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                 esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
        return false;
      }
    }
    ++i;
  }
  return false;  // unterminated
}

bool CheckNumber(std::string_view text, size_t& i) {
  const size_t start = i;
  if (i < text.size() && text[i] == '-') ++i;
  size_t digits = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    ++i;
    ++digits;
  }
  if (digits == 0) return false;
  if (digits > 1 && text[start + (text[start] == '-' ? 1u : 0u)] == '0') {
    return false;  // leading zero
  }
  if (i < text.size() && text[i] == '.') {
    ++i;
    size_t frac = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      ++i;
      ++frac;
    }
    if (frac == 0) return false;
  }
  if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
    size_t exp = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      ++i;
      ++exp;
    }
    if (exp == 0) return false;
  }
  return true;
}

bool CheckObject(std::string_view text, size_t& i, int depth) {
  ++i;  // consume '{'
  CheckSpace(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
    return true;
  }
  while (true) {
    CheckSpace(text, i);
    if (!CheckString(text, i)) return false;
    CheckSpace(text, i);
    if (i >= text.size() || text[i] != ':') return false;
    ++i;
    if (!CheckValue(text, i, depth)) return false;
    CheckSpace(text, i);
    if (i >= text.size()) return false;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
}

bool CheckArray(std::string_view text, size_t& i, int depth) {
  ++i;  // consume '['
  CheckSpace(text, i);
  if (i < text.size() && text[i] == ']') {
    ++i;
    return true;
  }
  while (true) {
    if (!CheckValue(text, i, depth)) return false;
    CheckSpace(text, i);
    if (i >= text.size()) return false;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == ']') {
      ++i;
      return true;
    }
    return false;
  }
}

bool CheckValue(std::string_view text, size_t& i, int depth) {
  if (depth > 64) return false;
  CheckSpace(text, i);
  if (i >= text.size()) return false;
  switch (text[i]) {
    case '{':
      return CheckObject(text, i, depth + 1);
    case '[':
      return CheckArray(text, i, depth + 1);
    case '"':
      return CheckString(text, i);
    case 't':
      return CheckLiteral(text, i, "true");
    case 'f':
      return CheckLiteral(text, i, "false");
    case 'n':
      return CheckLiteral(text, i, "null");
    default:
      return CheckNumber(text, i);
  }
}

}  // namespace

bool ValidateJson(std::string_view text) {
  size_t i = 0;
  if (!CheckValue(text, i, 0)) return false;
  CheckSpace(text, i);
  return i == text.size();
}

}  // namespace snapq::obs
