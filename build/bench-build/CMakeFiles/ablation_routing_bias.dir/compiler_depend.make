# Empty compiler generated dependencies file for ablation_routing_bias.
# This may be replaced when dependencies are built.
