#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(MetricsTest, StartsAtZero) {
  Metrics m;
  EXPECT_EQ(m.total_sent(), 0u);
  EXPECT_EQ(m.total_delivered(), 0u);
  EXPECT_EQ(m.total_lost(), 0u);
  EXPECT_EQ(m.cache_ops(), 0u);
}

TEST(MetricsTest, CountsPerType) {
  Metrics m;
  m.CountSent(MessageType::kInvitation);
  m.CountSent(MessageType::kInvitation);
  m.CountSent(MessageType::kAccept);
  m.CountDelivered(MessageType::kInvitation);
  m.CountLost(MessageType::kAccept);
  EXPECT_EQ(m.sent(MessageType::kInvitation), 2u);
  EXPECT_EQ(m.sent(MessageType::kAccept), 1u);
  EXPECT_EQ(m.delivered(MessageType::kInvitation), 1u);
  EXPECT_EQ(m.lost(MessageType::kAccept), 1u);
  EXPECT_EQ(m.total_sent(), 3u);
  EXPECT_EQ(m.total_delivered(), 1u);
  EXPECT_EQ(m.total_lost(), 1u);
}

TEST(MetricsTest, SnoopedCountsSeparately) {
  Metrics m;
  m.CountSnooped(MessageType::kHeartbeat);
  EXPECT_EQ(m.snooped(MessageType::kHeartbeat), 1u);
  EXPECT_EQ(m.delivered(MessageType::kHeartbeat), 0u);
}

TEST(MetricsTest, ResetClearsEverything) {
  Metrics m;
  m.CountSent(MessageType::kData);
  m.CountCacheOp();
  m.Reset();
  EXPECT_EQ(m.total_sent(), 0u);
  EXPECT_EQ(m.cache_ops(), 0u);
  EXPECT_EQ(m.sent(MessageType::kData), 0u);
}

TEST(MetricsTest, ToStringListsActiveTypesOnly) {
  Metrics m;
  m.CountSent(MessageType::kRecall);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("Recall"), std::string::npos);
  EXPECT_EQ(s.find("Heartbeat"), std::string::npos);
}

}  // namespace
}  // namespace snapq
