#include "model/cache_manager.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace snapq {
namespace {

CacheConfig PairsConfig(size_t pairs,
                        CachePolicy policy = CachePolicy::kModelAware) {
  CacheConfig config;
  config.capacity_bytes = pairs * 8;
  config.bytes_per_pair = 8;
  config.policy = policy;
  return config;
}

using Action = CacheManager::Action;

TEST(CacheConfigTest, PaperSizing) {
  // 2048 bytes of 4-byte-float pairs = 256 pairs.
  CacheConfig config;
  EXPECT_EQ(config.capacity_pairs(), 256u);
}

TEST(CacheManagerTest, InsertsFreelyUntilFull) {
  CacheManager cache(PairsConfig(3));
  EXPECT_EQ(cache.Observe(1, 0.0, 1.0, 0), Action::kInsertedFree);
  EXPECT_EQ(cache.Observe(2, 0.0, 2.0, 0), Action::kInsertedFree);
  EXPECT_EQ(cache.Observe(3, 0.0, 3.0, 0), Action::kInsertedFree);
  EXPECT_EQ(cache.used_pairs(), 3u);
  EXPECT_EQ(cache.num_lines(), 3u);
}

TEST(CacheManagerTest, NewcomerEvictsRoundRobinWhenFull) {
  CacheManager cache(PairsConfig(2));
  cache.Observe(1, 0.0, 1.0, 0);
  cache.Observe(2, 0.0, 2.0, 0);
  // Node 3 is a newcomer; §4: round-robin victim, not benefit-driven.
  EXPECT_EQ(cache.Observe(3, 0.0, 3.0, 1), Action::kInsertedNewcomer);
  EXPECT_EQ(cache.used_pairs(), 2u);
  EXPECT_NE(cache.Line(3), nullptr);
  // Exactly one of lines 1/2 was evicted (emptied lines are erased).
  EXPECT_EQ(cache.num_lines(), 2u);
}

TEST(CacheManagerTest, NewcomerRoundRobinCyclesThroughVictims) {
  CacheManager cache(PairsConfig(3));
  cache.Observe(1, 0.0, 1.0, 0);
  cache.Observe(2, 0.0, 2.0, 0);
  cache.Observe(3, 0.0, 3.0, 0);
  EXPECT_EQ(cache.Observe(4, 0.0, 4.0, 1), Action::kInsertedNewcomer);
  EXPECT_EQ(cache.Observe(5, 0.0, 5.0, 1), Action::kInsertedNewcomer);
  // Victims rotated: 1 then 2 are gone, 3 survives.
  EXPECT_EQ(cache.Line(1), nullptr);
  EXPECT_EQ(cache.Line(2), nullptr);
  EXPECT_NE(cache.Line(3), nullptr);
}

TEST(CacheManagerTest, NewcomerWithNoOtherLineIsRejected) {
  CacheManager cache(PairsConfig(0));
  EXPECT_EQ(cache.Observe(1, 0.0, 1.0, 0), Action::kRejected);
  EXPECT_EQ(cache.num_lines(), 0u);
}

TEST(CacheManagerTest, RejectsWhenCurrentModelAlreadyExplainsEverything) {
  // Line holds an exact linear relation and the new pair lies on it: the
  // current model keeps maximal benefit -> reject.
  CacheManager cache(PairsConfig(2));
  cache.Observe(7, 1.0, 2.0, 0);
  cache.Observe(7, 2.0, 4.0, 1);
  EXPECT_EQ(cache.Observe(7, 3.0, 6.0, 2), Action::kRejected);
  EXPECT_EQ(cache.Line(7)->size(), 2u);
}

TEST(CacheManagerTest, TimeShiftsAwayFromStaleRegime) {
  // One stale outlier pair plus the start of a clean y = x regime: the
  // shifted window beats both keeping the cache as-is and (with no other
  // line to steal from) augmenting, so the oldest pair is dropped.
  CacheManager cache(PairsConfig(2));
  cache.Observe(7, 1.0, 100.0, 0);  // stale regime
  cache.Observe(7, 2.0, 2.0, 1);    // new regime begins
  const Action a = cache.Observe(7, 4.0, 4.0, 2);
  EXPECT_EQ(a, Action::kTimeShifted);
  EXPECT_EQ(cache.Line(7)->size(), 2u);
  EXPECT_EQ(cache.Line(7)->oldest().time, 1);
  // The resulting model tracks the fresh regime.
  const std::optional<double> est = cache.Estimate(7, 3.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 3.0, 1e-9);
}

TEST(CacheManagerTest, AugmentStealsFromWorthlessLine) {
  CacheManager cache(PairsConfig(4));
  // Line 1: worthless history — y == 0 pairs carry zero benefit.
  cache.Observe(1, 5.0, 0.0, 0);
  cache.Observe(1, 6.0, 0.0, 1);
  // Line 2: two pairs of a noisy non-degenerate relation.
  cache.Observe(2, 1.0, 3.0, 0);
  cache.Observe(2, 2.0, 4.9, 1);
  // A third pair for line 2 that improves its fit: should augment by
  // evicting from line 1 (penalty 0 < gain).
  const Action a = cache.Observe(2, 3.0, 7.2, 2);
  EXPECT_EQ(a, Action::kAugmented);
  EXPECT_EQ(cache.Line(2)->size(), 3u);
  EXPECT_EQ(cache.Line(1)->size(), 1u);
  EXPECT_EQ(cache.used_pairs(), 4u);
}

TEST(CacheManagerTest, HealthyLinesResistEviction) {
  CacheManager cache(PairsConfig(4));
  // Line 1: large-magnitude exact line -> huge eviction penalty.
  cache.Observe(1, 1.0, 100.0, 0);
  cache.Observe(1, 2.0, 200.0, 1);
  // Line 2: small noisy line wants to grow.
  cache.Observe(2, 1.0, 1.0, 0);
  cache.Observe(2, 2.0, 1.9, 1);
  const Action a = cache.Observe(2, 3.0, 3.2, 2);
  // Gain is tiny compared to line 1's penalty: no cross-line eviction.
  EXPECT_NE(a, Action::kAugmented);
  EXPECT_EQ(cache.Line(1)->size(), 2u);
}

TEST(CacheManagerTest, ModelForEmptyNeighborIsNull) {
  CacheManager cache(PairsConfig(4));
  EXPECT_FALSE(cache.ModelFor(9).has_value());
  EXPECT_FALSE(cache.Estimate(9, 1.0).has_value());
}

TEST(CacheManagerTest, EstimateUsesFittedModel) {
  CacheManager cache(PairsConfig(4));
  cache.Observe(3, 1.0, 10.0, 0);
  cache.Observe(3, 2.0, 20.0, 1);
  const std::optional<double> est = cache.Estimate(3, 4.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 40.0, 1e-9);
}

TEST(CacheManagerTest, CachedNeighborsSorted) {
  CacheManager cache(PairsConfig(8));
  cache.Observe(5, 0.0, 1.0, 0);
  cache.Observe(2, 0.0, 1.0, 0);
  cache.Observe(9, 0.0, 1.0, 0);
  const std::vector<NodeId> ids = cache.CachedNeighbors();
  EXPECT_EQ(ids, (std::vector<NodeId>{2, 5, 9}));
}

TEST(RoundRobinPolicyTest, EvictsGloballyOldest) {
  CacheManager cache(PairsConfig(3, CachePolicy::kRoundRobin));
  cache.Observe(1, 0.0, 1.0, 0);
  cache.Observe(2, 0.0, 2.0, 1);
  cache.Observe(3, 0.0, 3.0, 2);
  // Full: inserting for node 4 evicts node 1's pair (globally oldest).
  cache.Observe(4, 0.0, 4.0, 3);
  EXPECT_EQ(cache.Line(1), nullptr);
  EXPECT_NE(cache.Line(4), nullptr);
  EXPECT_EQ(cache.used_pairs(), 3u);
  // Next eviction takes node 2's pair.
  cache.Observe(5, 0.0, 5.0, 4);
  EXPECT_EQ(cache.Line(2), nullptr);
}

TEST(RoundRobinPolicyTest, AlwaysAdmits) {
  CacheManager cache(PairsConfig(2, CachePolicy::kRoundRobin));
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const NodeId j = static_cast<NodeId>(rng.UniformInt(1, 5));
    const Action a = cache.Observe(j, rng.NextDouble(), rng.NextDouble(), i);
    EXPECT_NE(a, Action::kRejected);
    EXPECT_LE(cache.used_pairs(), 2u);
  }
}

TEST(CacheManagerTest, CapacityNeverExceeded) {
  CacheManager cache(PairsConfig(5));
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const NodeId j = static_cast<NodeId>(rng.UniformInt(1, 12));
    cache.Observe(j, rng.UniformDouble(0, 10), rng.UniformDouble(0, 10), i);
    ASSERT_LE(cache.used_pairs(), 5u);
    // used_pairs must equal the sum over lines.
    size_t total = 0;
    for (NodeId id : cache.CachedNeighbors()) {
      total += cache.Line(id)->size();
    }
    ASSERT_EQ(total, cache.used_pairs());
  }
}

TEST(CacheManagerTest, TotalBenefitNonNegativeForFittedModels) {
  CacheManager cache(PairsConfig(6));
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const NodeId j = static_cast<NodeId>(rng.UniformInt(1, 4));
    cache.Observe(j, rng.Gaussian(0, 3), rng.Gaussian(0, 3), i);
  }
  // A least-squares fit never does worse than predicting nothing... on its
  // own line's data, since b = mean(y) is available.
  EXPECT_GE(cache.TotalBenefit(), -1e-9);
}

TEST(CacheActionNameTest, Names) {
  EXPECT_STREQ(CacheActionName(Action::kRejected), "rejected");
  EXPECT_STREQ(CacheActionName(Action::kAugmented), "augmented");
  EXPECT_STREQ(CacheActionName(Action::kInsertedNewcomer),
               "inserted-newcomer");
}

// ---------------------------------------------------------------------------
// Property sweep: with exactly-collinear same-class data (the K=1 workload)
// the model-aware cache must keep >= 2 pairs for every neighbor it has seen
// at least twice with distinct predictor values — the precondition for the
// paper's "one representative for the whole network" result.
// ---------------------------------------------------------------------------

class CollinearRetention : public ::testing::TestWithParam<size_t> {};

TEST_P(CollinearRetention, KeepsTwoPairsPerNeighbor) {
  const size_t num_neighbors = GetParam();
  // Capacity: 2.5 pairs per neighbor, mimicking the paper's 2048B / 99.
  CacheManager cache(PairsConfig(num_neighbors * 5 / 2));
  Rng rng(static_cast<uint64_t>(num_neighbors));
  // Shared random walk: x_i = walk, x_j = scale_j * walk + offset_j.
  std::vector<double> scale(num_neighbors), offset(num_neighbors);
  for (size_t j = 0; j < num_neighbors; ++j) {
    scale[j] = rng.UniformDouble(0.1, 1.0);
    offset[j] = rng.UniformDouble(0.0, 1000.0);
  }
  double walk = 500.0;
  for (Time t = 0; t < 10; ++t) {
    walk += rng.Bernoulli(0.7) ? (rng.Bernoulli(0.5) ? 1.0 : -1.0) : 0.0;
    for (size_t j = 0; j < num_neighbors; ++j) {
      cache.Observe(static_cast<NodeId>(j + 1), walk,
                    scale[j] * walk + offset[j], t);
    }
  }
  size_t well_trained = 0;
  for (NodeId id : cache.CachedNeighbors()) {
    if (cache.Line(id)->size() >= 2) ++well_trained;
  }
  // At least 90% of neighbors keep a usable (2+ pair) history.
  EXPECT_GE(well_trained * 10, num_neighbors * 9);
}

INSTANTIATE_TEST_SUITE_P(NeighborCounts, CollinearRetention,
                         ::testing::Values(4, 10, 25, 50, 99));

}  // namespace
}  // namespace snapq
