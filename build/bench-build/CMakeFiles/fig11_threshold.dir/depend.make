# Empty dependencies file for fig11_threshold.
# This may be replaced when dependencies are built.
