#include "net/energy.h"

namespace snapq {

bool Battery::Consume(double amount) {
  if (remaining_ <= 0.0) return false;
  if (amount > remaining_) {
    remaining_ = 0.0;
    return false;
  }
  remaining_ -= amount;
  return true;
}

}  // namespace snapq
