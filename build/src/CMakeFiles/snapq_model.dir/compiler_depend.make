# Empty compiler generated dependencies file for snapq_model.
# This may be replaced when dependencies are built.
