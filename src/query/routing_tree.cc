#include "query/routing_tree.h"

#include <algorithm>

#include "common/check.h"

namespace snapq {

RoutingTree RoutingTree::Build(const LinkModel& links,
                               const std::vector<bool>& alive, NodeId sink,
                               const std::vector<bool>* favor) {
  const size_t n = links.num_nodes();
  SNAPQ_CHECK_EQ(alive.size(), n);
  SNAPQ_CHECK_LT(sink, n);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<int> depth(n, -1);
  if (!alive[sink]) {
    return RoutingTree(sink, std::move(parent), std::move(depth));
  }

  // BFS layer by layer. Within a layer, candidate parents are considered in
  // (favored-first, then ascending-id) order so parent choice is
  // deterministic and optionally biased toward representatives.
  depth[sink] = 0;
  std::vector<NodeId> layer{sink};
  while (!layer.empty()) {
    std::vector<NodeId> ordered;
    ordered.reserve(layer.size());
    if (favor != nullptr) {
      for (NodeId u : layer) {
        if ((*favor)[u]) ordered.push_back(u);
      }
      for (NodeId u : layer) {
        if (!(*favor)[u]) ordered.push_back(u);
      }
    } else {
      ordered = layer;
    }
    std::vector<NodeId> next;
    for (NodeId u : ordered) {
      // A usable tree edge needs both directions: u -> v for dissemination,
      // v -> u for the reply.
      for (NodeId v : links.Reachable(u)) {
        if (!alive[v] || depth[v] >= 0 || !links.CanReach(v, u)) continue;
        depth[v] = depth[u] + 1;
        parent[v] = u;
        next.push_back(v);
      }
    }
    // Keep ascending-id order within the next layer for determinism.
    std::sort(next.begin(), next.end());
    layer = std::move(next);
  }
  return RoutingTree(sink, std::move(parent), std::move(depth));
}

size_t RoutingTree::CountReachable() const {
  size_t count = 0;
  for (const int d : depth_) {
    if (d >= 0) ++count;
  }
  return count;
}

int RoutingTree::MaxDepth() const {
  int max_depth = 0;
  for (const int d : depth_) max_depth = std::max(max_depth, d);
  return max_depth;
}

std::vector<NodeId> RoutingTree::PathToSink(NodeId id) const {
  std::vector<NodeId> path;
  if (!IsReachable(id)) return path;
  NodeId cur = id;
  while (cur != kInvalidNode) {
    path.push_back(cur);
    if (cur == sink_) break;
    cur = parent_[cur];
  }
  SNAPQ_CHECK(!path.empty() && path.back() == sink_);
  return path;
}

}  // namespace snapq
