#include "snapshot/multi_resolution.h"

#include <utility>

#include "common/check.h"

namespace snapq {

void MultiResolutionRegistry::Register(double threshold, SnapshotView view) {
  SNAPQ_CHECK_GT(threshold, 0.0);
  snapshots_.insert_or_assign(threshold, std::move(view));
}

const SnapshotView* MultiResolutionRegistry::Resolve(
    double query_threshold) const {
  // Largest registered threshold <= query_threshold.
  auto it = snapshots_.upper_bound(query_threshold);
  if (it == snapshots_.begin()) return nullptr;
  --it;
  return &it->second;
}

const SnapshotView* MultiResolutionRegistry::Tightest() const {
  if (snapshots_.empty()) return nullptr;
  return &snapshots_.begin()->second;
}

std::vector<double> MultiResolutionRegistry::Thresholds() const {
  std::vector<double> out;
  out.reserve(snapshots_.size());
  for (const auto& [t, v] : snapshots_) out.push_back(t);
  return out;
}

}  // namespace snapq
