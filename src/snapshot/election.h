// Network-wide representative discovery: drives every agent through the
// Table-2 phases and collects the resulting snapshot.
#ifndef SNAPQ_SNAPSHOT_ELECTION_H_
#define SNAPQ_SNAPSHOT_ELECTION_H_

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "snapshot/agent.h"
#include "snapshot/node_state.h"

namespace snapq {

/// Summary of a discovery run.
struct ElectionStats {
  size_t num_active = 0;
  size_t num_passive = 0;
  size_t num_undefined = 0;  // should be 0 among live nodes
  size_t num_spurious = 0;
  /// Messages sent per live node during the election (all types).
  double avg_messages_per_node = 0.0;
  double max_messages_per_node = 0.0;
};

/// Captures the current representation state of all agents.
SnapshotView CaptureSnapshot(
    const std::vector<std::unique_ptr<SnapshotAgent>>& agents);

/// Runs a network-wide discovery starting at time t0 (>= sim.now()): every
/// live agent broadcasts an invitation at t0, selection happens at t0+2 and
/// the refinement rules run until every node settles (bounded by the
/// Rule-4 hard cap of `config`, which must match the agents'). Per-node
/// message counters are reset at t0 so the returned stats cover exactly
/// this election. The simulator is advanced only to the election's bound;
/// unrelated events scheduled further out stay pending.
ElectionStats RunGlobalElection(
    Simulator& sim, const std::vector<std::unique_ptr<SnapshotAgent>>& agents,
    Time t0, const SnapshotConfig& config);

/// Stats of the agents' current state without running anything.
ElectionStats SummarizeSnapshot(
    Simulator& sim, const std::vector<std::unique_ptr<SnapshotAgent>>& agents);

}  // namespace snapq

#endif  // SNAPQ_SNAPSHOT_ELECTION_H_
