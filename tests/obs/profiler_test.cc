// Unit tests for the hot-path profiler: log-histogram edge cases (the
// BENCH.json percentiles depend on them), counter/rate mechanics, scoped
// phase timers and the registry export.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/metric_registry.h"

namespace snapq::obs {
namespace {

TEST(LogHistogramTest, EmptyHistogramReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min_seen(), 0.0);
  EXPECT_EQ(h.max_seen(), 0.0);
  for (double pct : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(pct), 0.0) << "pct=" << pct;
  }
}

TEST(LogHistogramTest, SingleSampleIsExactAtEveryPercentile) {
  LogHistogram h;
  h.Observe(123.4);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min_seen(), 123.4);
  EXPECT_EQ(h.max_seen(), 123.4);
  // Interpolation is clamped to [min, max], so one sample is exact even
  // though its bucket spans ~19%.
  for (double pct : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(pct), 123.4) << "pct=" << pct;
  }
}

TEST(LogHistogramTest, PercentilesAreWithinOneBucketOfExact) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min_seen(), 1.0);
  EXPECT_EQ(h.max_seen(), 1000.0);
  // Bucket resolution is 2^(1/4) ~ 1.19; allow that relative error both
  // ways around the exact order statistics.
  const struct {
    double pct, exact;
  } cases[] = {{50.0, 500.0}, {95.0, 950.0}, {99.0, 990.0}};
  for (const auto& c : cases) {
    const double got = h.Percentile(c.pct);
    EXPECT_GE(got, c.exact / 1.19) << "pct=" << c.pct;
    EXPECT_LE(got, c.exact * 1.19) << "pct=" << c.pct;
  }
  EXPECT_EQ(h.Percentile(100.0), 1000.0);
}

TEST(LogHistogramTest, SaturatesBeyondTopBucketWithoutCorruption) {
  LogHistogram h;
  h.Observe(1e30);  // way past 2^40
  h.Observe(3e30);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_seen(), 3e30);
  EXPECT_EQ(h.min_seen(), 1e30);
  // Both land in the top bucket; percentiles stay inside [min, max].
  const double p50 = h.Percentile(50);
  EXPECT_GE(p50, 1e30);
  EXPECT_LE(p50, 3e30);
  uint64_t total = 0;
  for (uint64_t b : h.buckets()) total += b;
  EXPECT_EQ(total, 2u);
}

TEST(LogHistogramTest, UnderflowZeroNegativeAndNanLandInBucketZero) {
  LogHistogram h;
  h.Observe(0.0);
  h.Observe(-5.0);                                 // clamped to 0
  h.Observe(std::numeric_limits<double>::quiet_NaN());  // treated as 0
  h.Observe(1e-9);                                 // below 2^-10
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 4u);
  EXPECT_EQ(h.min_seen(), 0.0);
  // All mass is in the underflow bucket; the interpolated percentile is
  // clamped to the observed range [0, 1e-9].
  EXPECT_GE(h.Percentile(50), 0.0);
  EXPECT_LE(h.Percentile(50), 1e-9);
}

TEST(LogHistogramTest, MergeEqualsConcatenation) {
  // Bucket-exact claim: merging two histograms must give identical bucket
  // counts, min/max, and therefore identical percentiles, as observing
  // the concatenated samples in one histogram.
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(0.5 + 13.7 * i);
    b.push_back(100000.0 / (1 + i));
  }
  LogHistogram ha, hb, merged, concat;
  for (double v : a) {
    ha.Observe(v);
    concat.Observe(v);
  }
  for (double v : b) {
    hb.Observe(v);
    concat.Observe(v);
  }
  merged.MergeFrom(ha);
  merged.MergeFrom(hb);
  EXPECT_EQ(merged.count(), concat.count());
  EXPECT_EQ(merged.min_seen(), concat.min_seen());
  EXPECT_EQ(merged.max_seen(), concat.max_seen());
  EXPECT_DOUBLE_EQ(merged.sum(), concat.sum());
  EXPECT_EQ(merged.buckets(), concat.buckets());
  for (double pct : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(merged.Percentile(pct), concat.Percentile(pct))
        << "pct=" << pct;
  }
}

TEST(LogHistogramTest, MergeFromEmptyKeepsMinMax) {
  LogHistogram h, empty;
  h.Observe(7.0);
  h.MergeFrom(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min_seen(), 7.0);
  EXPECT_EQ(h.max_seen(), 7.0);
}

TEST(LogHistogramTest, BucketBoundsBracketTheirValues) {
  for (double v : {0.01, 0.5, 1.0, 3.0, 1024.0, 123456.7}) {
    const int index = LogHistogram::BucketIndex(v);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, LogHistogram::kNumBuckets);
    EXPECT_LE(LogHistogram::BucketLowerBound(index), v) << "v=" << v;
    EXPECT_GT(LogHistogram::BucketUpperBound(index), v) << "v=" << v;
  }
}

TEST(ProfilerTest, CountersAccumulateAndReset) {
  Profiler profiler;
  profiler.Count(HotOp::kModelFits, 3);
  profiler.Count(HotOp::kModelFits);
  EXPECT_EQ(profiler.count(HotOp::kModelFits), 4u);
  EXPECT_EQ(profiler.count(HotOp::kMessagesSent), 0u);
  profiler.Reset();
  EXPECT_EQ(profiler.count(HotOp::kModelFits), 0u);
}

TEST(ProfilerTest, ProfCountRespectsEnableDisable) {
  Profiler::Disable();
  Profiler::Global().Reset();
  ProfCount(HotOp::kMessagesSent);
  EXPECT_EQ(Profiler::Global().count(HotOp::kMessagesSent), 0u);
  Profiler::Enable();
  ProfCount(HotOp::kMessagesSent, 5);
  EXPECT_EQ(Profiler::Global().count(HotOp::kMessagesSent), 5u);
  Profiler::Disable();
}

TEST(ProfilerTest, ScopedPhaseTimerRecordsOnlyWhenEnabled) {
  Profiler::Global().Reset();
  Profiler::Disable();
  { ScopedPhaseTimer timer(ProfPhase::kElection); }
  EXPECT_EQ(Profiler::Global().wall_us(ProfPhase::kElection).count(), 0u);

  Profiler::Enable();
  {
    ScopedPhaseTimer timer(ProfPhase::kElection);
    // Some measurable work.
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + std::sqrt(i);
  }
  Profiler::Disable();
  const LogHistogram& wall = Profiler::Global().wall_us(ProfPhase::kElection);
  EXPECT_EQ(wall.count(), 1u);
  EXPECT_GT(wall.max_seen(), 0.0);
  EXPECT_EQ(Profiler::Global().cpu_us(ProfPhase::kElection).count(), 1u);
}

TEST(ProfilerTest, HotOpAndPhaseNamesAreStable) {
  // These strings are BENCH.json keys — changing one is a schema break.
  EXPECT_STREQ(HotOpName(HotOp::kMessagesSent), "messages_sent");
  EXPECT_STREQ(HotOpName(HotOp::kMessagesDelivered), "messages_delivered");
  EXPECT_STREQ(HotOpName(HotOp::kMessagesSnooped), "messages_snooped");
  EXPECT_STREQ(HotOpName(HotOp::kCacheOps), "cache_ops");
  EXPECT_STREQ(HotOpName(HotOp::kModelFits), "model_fits");
  EXPECT_STREQ(HotOpName(HotOp::kElectionRounds), "election_rounds");
  EXPECT_STREQ(HotOpName(HotOp::kMaintenanceRounds), "maintenance_rounds");
  EXPECT_STREQ(HotOpName(HotOp::kQueriesExecuted), "queries_executed");
  EXPECT_STREQ(ProfPhaseName(ProfPhase::kElection), "election");
  EXPECT_STREQ(ProfPhaseName(ProfPhase::kMaintenanceRound),
               "maintenance_round");
  EXPECT_STREQ(ProfPhaseName(ProfPhase::kQueryExecution), "query_execution");
  EXPECT_STREQ(ProfPhaseName(ProfPhase::kNetworkBuild), "network_build");
}

TEST(ProfilerTest, ExportToWritesCountersAndPercentileGauges) {
  Profiler profiler;
  profiler.Count(HotOp::kMessagesSent, 7);
  profiler.RecordPhase(ProfPhase::kElection, 100.0, 90.0);
  MetricRegistry registry;
  profiler.ExportTo(&registry);
  EXPECT_EQ(registry.GetCounter("profiler.messages_sent")->value(), 7u);
  EXPECT_EQ(registry.GetGauge("profiler.election.wall_us.count")->value(),
            1.0);
  EXPECT_EQ(registry.GetGauge("profiler.election.wall_us.p50")->value(),
            100.0);
  EXPECT_EQ(registry.GetGauge("profiler.election.wall_us.max")->value(),
            100.0);
  profiler.ExportTo(nullptr);  // must not crash
}

TEST(ProfilerTest, ToTableMentionsEveryOpAndPhase) {
  Profiler profiler;
  profiler.Count(HotOp::kCacheOps, 2);
  const std::string table = profiler.ToTable();
  for (size_t i = 0; i < kNumHotOps; ++i) {
    EXPECT_NE(table.find(HotOpName(static_cast<HotOp>(i))),
              std::string::npos);
  }
  for (size_t i = 0; i < kNumProfPhases; ++i) {
    EXPECT_NE(table.find(ProfPhaseName(static_cast<ProfPhase>(i))),
              std::string::npos);
  }
}

}  // namespace
}  // namespace snapq::obs
