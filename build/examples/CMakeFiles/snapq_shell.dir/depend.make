# Empty dependencies file for snapq_shell.
# This may be replaced when dependencies are built.
