// Shared driver for Figures 14 and 15 (§6.3): a long-running network over
// 5,000-value weather series per node. The snapshot is updated by the
// maintenance protocol every 100 time units; between updates random
// spatial queries run and nodes snoop 5% of their neighbors' (unicast)
// query responses to fine-tune their models.
#ifndef SNAPQ_BENCH_LONGRUN_COMMON_H_
#define SNAPQ_BENCH_LONGRUN_COMMON_H_

#include <cmath>
#include <vector>

#include "api/network.h"
#include "data/weather.h"

namespace snapq::bench {

constexpr Time kLongHorizon = 5000;
constexpr Time kUpdateInterval = 100;
constexpr Time kLongDiscovery = 20;
constexpr int kLongRepetitions = 5;

/// Runs the §6.3 long experiment at the given transmission range and
/// returns the per-update maintenance stats (snapshot size, messages per
/// node, spurious count). `horizon` defaults to the paper's 5,000 time
/// units; quick harness passes shrink it (ctx.Scaled(kLongHorizon)).
inline std::vector<MaintenanceRoundStats> RunLongMaintenance(
    double transmission_range, uint64_t seed, Time horizon = kLongHorizon) {
  NetworkConfig config;
  config.num_nodes = 100;
  config.transmission_range = transmission_range;
  config.snoop_probability = 0.05;
  config.snapshot.threshold = 0.1;
  config.seed = seed;
  SensorNetwork net(config);

  Rng data_rng = Rng(seed).SplitNamed("weather-long");
  Result<Dataset> dataset = Dataset::Create(GenerateWeatherWindows(
      WeatherConfig{}, 100, static_cast<size_t>(horizon) + 1,
      data_rng));
  SNAPQ_CHECK(dataset.ok());
  SNAPQ_CHECK(net.AttachDataset(std::move(*dataset)).ok());

  // Train, then discover the initial snapshot.
  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(kLongDiscovery);
  net.RunElection(kLongDiscovery);

  // Query traffic between updates: every tick ~10 random nodes answer a
  // drill-through query by unicasting their reading toward the sink;
  // neighbors snoop these messages with probability 5%.
  Rng query_rng = Rng(seed).SplitNamed("queries-long");
  const double w = std::sqrt(0.1);
  for (Time t = net.now() + 1; t < horizon; ++t) {
    net.sim().ScheduleAt(t, [&net, &query_rng, w] {
      const Point center{query_rng.NextDouble(), query_rng.NextDouble()};
      const Rect region = Rect::CenteredSquare(center, w);
      const NodeId sink =
          static_cast<NodeId>(query_rng.UniformInt(0, 99));
      for (NodeId i = 0; i < net.num_nodes(); ++i) {
        if (i == sink || !region.Contains(net.position(i))) continue;
        Message msg;
        msg.type = MessageType::kData;
        msg.from = i;
        msg.to = sink;
        msg.value = net.agent(i).measurement();
        net.sim().Send(msg);
      }
    });
  }

  std::vector<MaintenanceRoundStats> rounds;
  net.ScheduleMaintenance(
      net.now() + kUpdateInterval, horizon, kUpdateInterval,
      [&rounds](const MaintenanceRoundStats& s) { rounds.push_back(s); });
  net.RunAll();
  obs::MetricSink().MergeFrom(net.sim().registry());
  return rounds;
}

}  // namespace snapq::bench

#endif  // SNAPQ_BENCH_LONGRUN_COMMON_H_
