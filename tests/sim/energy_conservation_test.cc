// The ledger's conservation invariant, property-tested under a randomized
// 100-node workload (election, maintenance, queries, loss, snooping,
// forced kills, direct drains): per node, the ledger's remaining-charge
// mirror equals the battery BITWISE, and the attribution cells re-sum to
// `initial_battery - remaining` EXACTLY — no epsilon. The costs are
// dyadic rationals (1, 1/4, 1/8), so every partial sum is exactly
// representable and the invariant is independent of summation order.
//
// The same workloads also pin --jobs determinism: folding per-run
// snapshots in task-index order must produce a bit-identical energy map
// whether the runs executed on 1 worker or 4.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/network.h"
#include "data/random_walk.h"
#include "exec/parallel_sweep.h"
#include "obs/energy_ledger.h"
#include "query/executor.h"

namespace snapq {
namespace {

constexpr size_t kNodes = 100;
constexpr Time kHorizon = 200;

/// Builds a deployment with dyadic energy costs, runs a mixed workload
/// seeded by `seed`, checks the conservation invariant against the live
/// batteries, and returns the ledger snapshot for cross-run folding.
obs::EnergyLedgerSnapshot RunWorkload(uint64_t seed) {
  NetworkConfig config;
  config.num_nodes = kNodes;
  config.transmission_range = 0.5;
  config.loss_probability = 0.1;
  config.snoop_probability = 0.3;
  config.energy.tx_cost = 1.0;
  config.energy.rx_cost = 0.25;
  config.energy.cache_op_cost = 0.125;
  config.energy.initial_battery = 500.0;
  config.snapshot.threshold = 1.0;
  config.snapshot.heartbeat_miss_limit = 1;
  config.seed = seed;
  SensorNetwork net(config);
  obs::EnergyLedger& ledger = net.EnableEnergyLedger();

  Rng data_rng = Rng(seed).SplitNamed("data");
  RandomWalkConfig walk;
  walk.num_nodes = kNodes;
  walk.num_classes = 4;
  walk.horizon = static_cast<size_t>(kHorizon) + 1;
  Result<Dataset> dataset =
      Dataset::Create(GenerateRandomWalk(walk, data_rng).series);
  SNAPQ_CHECK(dataset.ok());
  SNAPQ_CHECK(net.AttachDataset(std::move(*dataset)).ok());

  net.ScheduleTrainingBroadcasts(0, 10);
  net.RunUntil(20);
  net.RunElection(20);  // advances sim time while the rounds settle
  net.ScheduleMaintenance(net.now() + 25, kHorizon, 25);

  Rng rng = Rng(seed).SplitNamed("workload");
  for (Time t = net.now() + 5; t < kHorizon; t += 5) {
    net.RunUntil(t);
    // A query through the executor (per-reply DrainAs charges).
    ExecutionOptions options;
    options.charge_energy = true;
    NodeId sink = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(kNodes) - 1));
    for (int tries = 0; tries < 50 && !net.sim().alive(sink); ++tries) {
      sink = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<int64_t>(kNodes) - 1));
    }
    options.sink = sink;
    const Point center{rng.NextDouble(), rng.NextDouble()};
    net.executor().ExecuteRegion(Rect::CenteredSquare(center, 0.4),
                                 /*use_snapshot=*/rng.NextDouble() < 0.5,
                                 AggregateFunction::kSum, options);
    // Direct drains with dyadic amounts; large ones force overdraft kills
    // (the applied charge is then the remainder, still dyadic).
    const NodeId victim = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(kNodes) - 1));
    net.sim().Drain(victim, rng.NextDouble() < 0.2 ? 256.0 : 0.5);
    // Occasional forced kill (discarded charge lands in the killed cell).
    if (rng.NextDouble() < 0.05) {
      net.sim().Kill(static_cast<NodeId>(
          rng.UniformInt(0, static_cast<int64_t>(kNodes) - 1)));
    }
  }
  net.RunUntil(kHorizon);
  ledger.UpdateGauges(net.now());

  // -- The invariant: exact, bitwise, no epsilon ---------------------------
  double cells_total = 0.0;
  for (NodeId i = 0; i < static_cast<NodeId>(kNodes); ++i) {
    const double battery = net.sim().battery(i).remaining();
    EXPECT_EQ(ledger.remaining(i), battery) << "node " << i;
    double cell_sum = 0.0;
    for (size_t c = 0; c < obs::kEnergyCellsPerNode; ++c) {
      cell_sum += ledger.cell(i, c);
    }
    EXPECT_EQ(cell_sum, 500.0 - battery) << "node " << i;
    EXPECT_EQ(ledger.drained(i), cell_sum) << "node " << i;
    EXPECT_EQ(net.sim().alive(i), ledger.death_tick(i) < 0) << "node " << i;
    cells_total += cell_sum;
  }
  EXPECT_EQ(ledger.total_drained(), cells_total);
  // The workload's big drains and kills must actually have killed nodes,
  // or the died-now/already-dead paths were never exercised.
  EXPECT_GT(ledger.deaths(), 0u);
  EXPECT_EQ(ledger.deaths(), net.sim().metrics().node_deaths());

  return ledger.TakeSnapshot();
}

TEST(EnergyConservationTest, AttributedDrainsSumToBatteryDrainExactly) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    SCOPED_TRACE(seed);
    RunWorkload(seed);
  }
}

TEST(EnergyConservationTest, JobsFoldingIsBitIdentical) {
  const auto fold = [](int jobs) {
    auto snaps = exec::ParallelMap<obs::EnergyLedgerSnapshot>(
        4, jobs, [](size_t i) { return RunWorkload(100 + i); });
    obs::EnergyLedgerSnapshot merged = snaps[0];
    for (size_t i = 1; i < snaps.size(); ++i) {
      EXPECT_TRUE(merged.MergeFrom(snaps[i]));
    }
    obs::EnergyMapMeta meta;
    meta.benchmark = "jobs_identity";
    meta.git_sha = "test";
    meta.t = kHorizon;
    return EnergyMapToJson(merged,
                           std::vector<Point>(kNodes, Point{0.0, 0.0}), meta);
  };
  const std::string serial = fold(1);
  const std::string parallel = fold(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"runs\": 4"), std::string::npos);
}

}  // namespace
}  // namespace snapq
