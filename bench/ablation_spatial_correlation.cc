// Extension study: snapshot size vs *spatial* correlation length. The
// paper's motivation is that neighboring nodes see correlated values, but
// its synthetic workload assigns correlation classes independent of
// geometry. With a distance-decaying field, the snapshot shrinks as the
// correlation length grows — at long lengths one representative per radio
// neighborhood suffices; at short lengths nobody can represent anybody.
#include <iostream>

#include "api/network.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "data/spatial_field.h"
#include "exec/parallel_sweep.h"
#include "net/topology.h"

namespace {

using namespace snapq;

double MeanReps(double correlation_length, double range, int repetitions,
                int jobs) {
  const auto samples = exec::ParallelMap<double>(
      static_cast<size_t>(repetitions), jobs, [&](size_t r) {
        const uint64_t seed = bench::kBaseSeed + r;
        NetworkConfig config;
        config.num_nodes = 100;
        config.transmission_range = range;
        config.snapshot.threshold = 1.0;
        config.seed = seed;
        SensorNetwork net(config);

        std::vector<Point> positions;
        for (NodeId i = 0; i < 100; ++i) positions.push_back(net.position(i));
        Rng data_rng = Rng(seed).SplitNamed("field");
        SpatialFieldConfig field;
        field.horizon = 101;
        field.correlation_length = correlation_length;
        Result<Dataset> dataset = Dataset::Create(
            GenerateSpatialField(field, positions, data_rng));
        SNAPQ_CHECK(dataset.ok());
        SNAPQ_CHECK(net.AttachDataset(std::move(*dataset)).ok());
        net.ScheduleTrainingBroadcasts(0, 10);
        net.RunUntil(100);
        const double active =
            static_cast<double>(net.RunElection(100).num_active);
        obs::MetricSink().MergeFrom(net.sim().registry());
        return active;
      });
  RunningStats reps;
  for (double sample : samples) reps.Add(sample);
  return reps.mean();
}

}  // namespace

SNAPQ_BENCHMARK(ablation_spatial_correlation,
                "Extension: representatives vs spatial correlation length") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Extension: representatives vs spatial correlation length",
      "N=100, T=1, sse, distance-decaying low-rank field; longer "
      "correlation length = smoother field = fewer representatives");

  TablePrinter table({"correlation length", "reps (range=0.4)",
                      "reps (range=sqrt(2))"});
  for (double length : {0.05, 0.1, 0.2, 0.4, 0.8, 2.0}) {
    table.AddRow(
        {TablePrinter::Num(length, 2),
         TablePrinter::Num(MeanReps(length, 0.4, ctx.repetitions, ctx.jobs),
                           1),
         TablePrinter::Num(
             MeanReps(length, 1.4142, ctx.repetitions, ctx.jobs), 1)});
  }
  table.Print(std::cout);
}
