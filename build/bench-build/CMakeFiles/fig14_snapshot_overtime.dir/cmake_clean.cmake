file(REMOVE_RECURSE
  "../bench/fig14_snapshot_overtime"
  "../bench/fig14_snapshot_overtime.pdb"
  "CMakeFiles/fig14_snapshot_overtime.dir/fig14_snapshot_overtime.cc.o"
  "CMakeFiles/fig14_snapshot_overtime.dir/fig14_snapshot_overtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_snapshot_overtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
