# Empty dependencies file for fig06_classes.
# This may be replaced when dependencies are built.
