file(REMOVE_RECURSE
  "../bench/fig09_transmission_range"
  "../bench/fig09_transmission_range.pdb"
  "CMakeFiles/fig09_transmission_range.dir/fig09_transmission_range.cc.o"
  "CMakeFiles/fig09_transmission_range.dir/fig09_transmission_range.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_transmission_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
