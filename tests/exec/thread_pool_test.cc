#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace snapq::exec {
namespace {

TEST(ThreadPoolTest, ThreadCountIsClampedToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1u);
  ThreadPool negative(-4);
  EXPECT_EQ(negative.num_threads(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 1000;
  std::atomic<int> runs{0};
  std::mutex mutex;
  std::set<int> seen;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([i, &runs, &mutex, &seen] {
      runs.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(i);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(runs.load(), kTasks);       // exactly once: no dup...
  EXPECT_EQ(seen.size(), size_t{kTasks});  // ...and none skipped
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();
  pool.WaitIdle();
}

TEST(ThreadPoolTest, WaitIdleCanBeReusedAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.WaitIdle();
    EXPECT_EQ(runs.load(), (batch + 1) * 40);
  }
}

TEST(ThreadPoolTest, IdleWorkersStealFromABusyVictim) {
  // Block the pool with long tasks on most queues, then flood the rest:
  // with round-robin dealing, some of the quick tasks land behind a
  // blocker and can only finish promptly if another worker steals them.
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  std::atomic<int> quick_runs{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  constexpr int kQuick = 64;
  for (int i = 0; i < kQuick; ++i) {
    pool.Submit(
        [&quick_runs] { quick_runs.fetch_add(1, std::memory_order_relaxed); });
  }
  // All quick tasks must complete while the blockers still hold their
  // workers (bounded wait, generous for slow CI).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (quick_runs.load(std::memory_order_relaxed) < kQuick &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(quick_runs.load(), kQuick);
  release.store(true, std::memory_order_release);
  pool.WaitIdle();
}

TEST(ThreadPoolTest, FirstExceptionIsRethrownFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([i, &runs] {
      runs.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("trial 3 failed");
    });
  }
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // A throwing task does not kill its worker or lose sibling tasks.
  EXPECT_EQ(runs.load(), 10);
}

TEST(ThreadPoolTest, PoolIsUsableAfterATaskThrew) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);

  std::atomic<int> runs{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();  // the rethrown error was consumed; no stale rethrow
  EXPECT_EQ(runs.load(), 20);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> runs{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
    // No WaitIdle: the destructor must complete the backlog, not drop it.
  }
  EXPECT_EQ(runs.load(), kTasks);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsTasksInSubmissionOrder) {
  // With one worker (and the submitter never racing it for the front of
  // the deque), execution order is submission order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mutex;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([i, &order, &mutex] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    });
  }
  pool.WaitIdle();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace snapq::exec
