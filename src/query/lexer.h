// Tokenizer for the query dialect. Keywords are case-insensitive;
// identifiers keep their original spelling. Numbers may carry a duration
// unit suffix (1s, 5min) which the lexer splits into number + identifier.
#ifndef SNAPQ_QUERY_LEXER_H_
#define SNAPQ_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace snapq {

enum class TokenType {
  kIdentifier,
  kNumber,
  kComma,
  kLeftParen,
  kRightParen,
  kStar,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     ///< original spelling (identifiers/numbers)
  double number = 0.0;  ///< value for kNumber
  size_t offset = 0;    ///< byte offset in the input, for error messages

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword test.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes `input`. Fails with kParseError on unexpected characters.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace snapq

#endif  // SNAPQ_QUERY_LEXER_H_
