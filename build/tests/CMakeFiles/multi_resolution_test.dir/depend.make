# Empty dependencies file for multi_resolution_test.
# This may be replaced when dependencies are built.
