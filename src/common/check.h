// Invariant-checking macros. snapq follows a no-exceptions policy on hot
// paths; programming errors abort with a diagnostic instead.
#ifndef SNAPQ_COMMON_CHECK_H_
#define SNAPQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace snapq::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "SNAPQ_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace snapq::internal

// Always-on invariant check (enabled in release builds too; these guard
// protocol invariants whose violation would silently corrupt experiments).
#define SNAPQ_CHECK(expr)                                        \
  do {                                                           \
    if (!(expr)) {                                               \
      ::snapq::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                            \
  } while (0)

#define SNAPQ_CHECK_GE(a, b) SNAPQ_CHECK((a) >= (b))
#define SNAPQ_CHECK_GT(a, b) SNAPQ_CHECK((a) > (b))
#define SNAPQ_CHECK_LE(a, b) SNAPQ_CHECK((a) <= (b))
#define SNAPQ_CHECK_LT(a, b) SNAPQ_CHECK((a) < (b))
#define SNAPQ_CHECK_EQ(a, b) SNAPQ_CHECK((a) == (b))
#define SNAPQ_CHECK_NE(a, b) SNAPQ_CHECK((a) != (b))

// Debug-only check for tight loops.
#ifdef NDEBUG
#define SNAPQ_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define SNAPQ_DCHECK(expr) SNAPQ_CHECK(expr)
#endif

#endif  // SNAPQ_COMMON_CHECK_H_
