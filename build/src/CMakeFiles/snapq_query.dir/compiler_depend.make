# Empty compiler generated dependencies file for snapq_query.
# This may be replaced when dependencies are built.
