# Empty compiler generated dependencies file for ablation_cache_penalty.
# This may be replaced when dependencies are built.
