// The benchmark registry behind the unified `snapq_bench` harness. Every
// experiment driver registers itself with SNAPQ_BENCHMARK(name, desc) and
// receives a RunContext instead of parsing argv, so the same body serves
// three callers:
//
//   * its standalone binary (`./build/bench/fig06_classes`) via
//     StandaloneMain — unchanged behavior, sidecars included;
//   * the unified harness (`./build/bench/snapq_bench --filter fig06`)
//     which times it, profiles it and emits BENCH.json;
//   * quick CI passes (`--quick` / SNAPQ_REPETITIONS=1) that scale the
//     repetitions and horizons down by ~10x.
#ifndef SNAPQ_BENCH_BENCH_REGISTRY_H_
#define SNAPQ_BENCH_BENCH_REGISTRY_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace snapq::bench {

/// Everything a driver body is allowed to depend on. Drivers must take
/// repetition counts and horizons from here (not file-level constants) so
/// quick mode and the SNAPQ_REPETITIONS override reach them.
struct RunContext {
  /// Registered benchmark name (also the sidecar basename in harness
  /// runs).
  std::string name;
  /// Path of the running binary (argv[0]) in standalone runs; empty under
  /// the harness. Used only for sidecar placement.
  std::string argv0;
  /// Quick mode: one repetition, horizons divided by 10.
  bool quick = false;
  /// The paper's per-data-point repetitions (kRepetitions), after the
  /// SNAPQ_REPETITIONS env override; 1 in quick mode.
  int repetitions = 10;
  /// Whether the driver should leave `.metrics.json`/`.trace.json`
  /// sidecars (standalone: yes; harness: only with --sidecars).
  bool write_sidecars = true;
  /// Worker threads for the per-seed trial loops (exec::ParallelMap).
  /// 1 = serial (bit-identical reference behavior); the harness and
  /// standalone mains default it to --jobs / SNAPQ_JOBS / hardware
  /// concurrency via exec::ResolveJobs.
  int jobs = 1;
  /// Driver verdict: a body that detects a failure (an SLO breach in the
  /// soak driver, a violated invariant) sets this non-zero and keeps
  /// running. StandaloneMain and the harness propagate the worst verdict
  /// as the process exit code. Mutable so the body can set it through the
  /// const context reference.
  mutable int exit_code = 0;

  /// Scales a driver-internal count or horizon for quick mode: full
  /// normally, max(1, full / 10) when quick.
  int64_t Scaled(int64_t full) const {
    return quick ? std::max<int64_t>(1, full / 10) : full;
  }
};

using BenchFn = void (*)(const RunContext&);

struct BenchInfo {
  const char* name;
  const char* description;
  BenchFn fn;
};

/// Process-wide list of registered benchmarks, ordered by name.
class Registry {
 public:
  static Registry& Instance();

  /// Called by SNAPQ_BENCHMARK at static-init time. Returns true (the
  /// macro binds it to a dummy bool).
  bool Add(const char* name, const char* description, BenchFn fn);

  const std::vector<BenchInfo>& benchmarks() const { return benchmarks_; }
  const BenchInfo* Find(const std::string& name) const;

 private:
  std::vector<BenchInfo> benchmarks_;
};

/// main() of a standalone driver binary: runs every benchmark linked into
/// it (one, for the per-figure binaries) with full repetitions and
/// sidecars. Accepts --quick.
int StandaloneMain(int argc, char** argv);

}  // namespace snapq::bench

/// Defines and registers one benchmark body:
///
///   SNAPQ_BENCHMARK(fig06_classes, "Figure 6: representatives vs K") {
///     bench::Driver driver(ctx, "...", "...");
///     ... use ctx.repetitions / ctx.Scaled(...) ...
///   }
#define SNAPQ_BENCHMARK(id, desc)                                         \
  static void SnapqBenchRun_##id(const ::snapq::bench::RunContext& ctx);  \
  [[maybe_unused]] static const bool snapq_bench_registered_##id =        \
      ::snapq::bench::Registry::Instance().Add(#id, desc,                 \
                                               &SnapqBenchRun_##id);      \
  static void SnapqBenchRun_##id(const ::snapq::bench::RunContext& ctx)

#endif  // SNAPQ_BENCH_BENCH_REGISTRY_H_
