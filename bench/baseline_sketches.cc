// Baseline comparison (§2): counting sketches with multipath aggregation
// [3] vs TAG trees [11] vs snapshot queries, on whole-network SUM under
// message loss. Three columns the paper's argument predicts:
//
//   * the TAG tree is cheap per answer but fragile (lost subtrees);
//   * multipath sketches are loss-robust but pay N broadcasts per epoch
//     and carry the FM approximation error even at zero loss ("sketches
//     would require continuous rebroadcasting of values for updates, thus
//     defeating the purpose of reducing resource consumption");
//   * snapshot queries answer from a handful of representatives with
//     model-accurate values; loss only matters on the short paths the few
//     data carriers use.
#include <cmath>
#include <iostream>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "query/innetwork.h"
#include "query/multipath.h"

namespace {

using namespace snapq;

struct Row {
  RunningStats error;     // relative SUM error
  RunningStats messages;  // data messages per query
};

void Measure(double loss, int repetitions, int queries, Row* tree, Row* sketch,
             Row* snapshot) {
  for (int r = 0; r < repetitions; ++r) {
    SensitivityConfig config;
    config.workload = WorkloadKind::kWeather;  // non-negative readings,
                                               // as FM sum sketches need
    config.threshold = 0.5;
    config.transmission_range = 0.35;
    config.loss_probability = loss;
    config.seed = bench::kBaseSeed + static_cast<uint64_t>(r);
    SensitivityOutcome outcome = RunSensitivityTrial(config);
    SensorNetwork& net = *outcome.network;
    Rng rng(config.seed ^ 0xBA5E11AE5ULL);

    double truth = 0.0;
    for (NodeId i = 0; i < net.num_nodes(); ++i) {
      truth += net.agent(i).measurement();
    }
    auto record = [&](Row* row, double answer, uint64_t msgs) {
      row->error.Add(std::abs(answer - truth) / std::abs(truth));
      row->messages.Add(static_cast<double>(msgs));
    };

    for (int q = 0; q < queries; ++q) {
      const NodeId sink = static_cast<NodeId>(rng.UniformInt(0, 99));
      {
        InNetworkAggregator agg(&net.sim(), &net.agents());
        const InNetworkResult t = agg.Execute(
            Rect::UnitSquare(), AggregateFunction::kSum, sink, false);
        record(tree, t.aggregate.value_or(0.0), t.reply_messages);
        const InNetworkResult s = agg.Execute(
            Rect::UnitSquare(), AggregateFunction::kSum, sink, true);
        record(snapshot, s.aggregate.value_or(0.0), s.reply_messages);
      }
      {
        MultipathSketchAggregator agg(&net.sim(), &net.agents());
        const MultipathResult m = agg.Execute(Rect::UnitSquare(), sink);
        record(sketch, m.estimate.value_or(0.0), m.reply_messages);
      }
    }
  }
}

}  // namespace

SNAPQ_BENCHMARK(baseline_sketches,
                "Baseline: TAG tree vs multipath sketches vs snapshot") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Baseline: TAG tree vs multipath sketches [3] vs snapshot queries",
      "N=100, weather workload, T=0.5, range=0.35 (multi-hop), "
      "whole-network SUM; relative error and data messages per query. "
      "The sketch sums ceil(v), a ~+5%% systematic bias at wind scale.");

  const int reps = static_cast<int>(ctx.Scaled(5));
  const int queries = static_cast<int>(ctx.Scaled(20));
  TablePrinter table({"P_loss", "tree err", "sketch err", "snapshot err",
                      "tree msgs", "sketch msgs", "snapshot msgs"});
  for (double loss : {0.0, 0.1, 0.2, 0.3}) {
    Row tree, sketch, snapshot;
    Measure(loss, reps, queries, &tree, &sketch, &snapshot);
    table.AddRow({TablePrinter::Num(loss, 1),
                  TablePrinter::Num(100.0 * tree.error.mean(), 1) + "%",
                  TablePrinter::Num(100.0 * sketch.error.mean(), 1) + "%",
                  TablePrinter::Num(100.0 * snapshot.error.mean(), 1) + "%",
                  TablePrinter::Num(tree.messages.mean(), 0),
                  TablePrinter::Num(sketch.messages.mean(), 0),
                  TablePrinter::Num(snapshot.messages.mean(), 0)});
  }
  table.Print(std::cout);
  std::printf("\n(data messages only; all three pay ~N request/flood "
              "messages per epoch. The snapshot additionally amortizes its "
              "election over the query stream.)\n");
}
