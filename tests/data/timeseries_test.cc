#include "data/timeseries.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(TimeSeriesTest, EmptyByDefault) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(TimeSeriesTest, AppendAndAccess) {
  TimeSeries s;
  s.Append(1.5);
  s.Append(-2.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0), 1.5);
  EXPECT_DOUBLE_EQ(s[1], -2.0);
}

TEST(TimeSeriesTest, ConstructFromVector) {
  TimeSeries s({1.0, 2.0, 3.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.at(2), 3.0);
}

TEST(TimeSeriesTest, SummarizeMatchesValues) {
  TimeSeries s({2.0, 4.0, 6.0});
  const RunningStats stats = s.Summarize();
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 6.0);
}

TEST(TimeSeriesTest, SliceExtractsWindow) {
  TimeSeries s({0.0, 1.0, 2.0, 3.0, 4.0});
  const TimeSeries w = s.Slice(1, 3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.at(0), 1.0);
  EXPECT_DOUBLE_EQ(w.at(2), 3.0);
}

TEST(TimeSeriesTest, SliceFullRangeAndEmpty) {
  TimeSeries s({5.0, 6.0});
  EXPECT_EQ(s.Slice(0, 2).size(), 2u);
  EXPECT_EQ(s.Slice(2, 0).size(), 0u);
}

TEST(TimeSeriesDeathTest, SliceOutOfBoundsAborts) {
  TimeSeries s({1.0});
  EXPECT_DEATH(s.Slice(0, 2), "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
