file(REMOVE_RECURSE
  "../bench/fig08_cache_size"
  "../bench/fig08_cache_size.pdb"
  "CMakeFiles/fig08_cache_size.dir/fig08_cache_size.cc.o"
  "CMakeFiles/fig08_cache_size.dir/fig08_cache_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
