#include "sim/metrics.h"

#include <cctype>

#include "common/string_util.h"

namespace snapq {
namespace {

/// "Invitation" -> "invitation": registry names are lowercase by
/// convention (see DESIGN.md, Observability).
std::string LowerTypeName(MessageType type) {
  std::string name = MessageTypeName(type);
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name;
}

}  // namespace

Metrics::Metrics()
    : owned_(std::make_unique<obs::MetricRegistry>()),
      registry_(owned_.get()) {
  BindInstruments();
}

Metrics::Metrics(obs::MetricRegistry* registry) : registry_(registry) {
  BindInstruments();
}

void Metrics::BindInstruments() {
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    const std::string suffix = LowerTypeName(static_cast<MessageType>(i));
    sent_[i] = registry_->GetCounter("net.sent." + suffix);
    delivered_[i] = registry_->GetCounter("net.delivered." + suffix);
    lost_[i] = registry_->GetCounter("net.lost." + suffix);
    snooped_[i] = registry_->GetCounter("net.snooped." + suffix);
  }
  total_sent_ = registry_->GetCounter("net.sent");
  total_delivered_ = registry_->GetCounter("net.delivered");
  total_lost_ = registry_->GetCounter("net.lost");
  cache_ops_ = registry_->GetCounter("net.cache_ops");
  node_deaths_ = registry_->GetCounter("net.node_deaths");
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snap;
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    snap.sent[i] = sent_[i]->value();
    snap.delivered[i] = delivered_[i]->value();
    snap.lost[i] = lost_[i]->value();
    snap.snooped[i] = snooped_[i]->value();
  }
  snap.total_sent = total_sent_->value();
  snap.total_delivered = total_delivered_->value();
  snap.total_lost = total_lost_->value();
  snap.cache_ops = cache_ops_->value();
  snap.node_deaths = node_deaths_->value();
  return snap;
}

MetricsSnapshot Metrics::Delta(const MetricsSnapshot& since) const {
  MetricsSnapshot delta = Snapshot();
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    delta.sent[i] -= since.sent[i];
    delta.delivered[i] -= since.delivered[i];
    delta.lost[i] -= since.lost[i];
    delta.snooped[i] -= since.snooped[i];
  }
  delta.total_sent -= since.total_sent;
  delta.total_delivered -= since.total_delivered;
  delta.total_lost -= since.total_lost;
  delta.cache_ops -= since.cache_ops;
  delta.node_deaths -= since.node_deaths;
  return delta;
}

void Metrics::Reset() {
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    sent_[i]->Reset();
    delivered_[i]->Reset();
    lost_[i]->Reset();
    snooped_[i]->Reset();
  }
  total_sent_->Reset();
  total_delivered_->Reset();
  total_lost_->Reset();
  cache_ops_->Reset();
  node_deaths_->Reset();
}

std::string Metrics::ToString() const {
  std::string out = StrFormat(
      "messages: sent=%llu delivered=%llu lost=%llu cache_ops=%llu\n",
      static_cast<unsigned long long>(total_sent()),
      static_cast<unsigned long long>(total_delivered()),
      static_cast<unsigned long long>(total_lost()),
      static_cast<unsigned long long>(cache_ops()));
  for (size_t i = 0; i < kNumMessageTypes; ++i) {
    if (sent_[i]->value() == 0 && delivered_[i]->value() == 0 &&
        lost_[i]->value() == 0) {
      continue;
    }
    out += StrFormat("  %-15s sent=%-8llu delivered=%-8llu lost=%llu\n",
                     MessageTypeName(static_cast<MessageType>(i)),
                     static_cast<unsigned long long>(sent_[i]->value()),
                     static_cast<unsigned long long>(delivered_[i]->value()),
                     static_cast<unsigned long long>(lost_[i]->value()));
  }
  return out;
}

}  // namespace snapq
