// Scale tier: fig14-style snapshot-over-time at 1k / 10k / 100k nodes —
// the payoff benchmark for the uniform-grid spatial index and the CSR
// adjacency. Density is held constant as n grows (the paper's 0.2 range
// on 100 nodes, scaled by sqrt(100/n), keeps the expected degree at
// ~12.6), so the adjacency build is O(n * k) and the per-round protocol
// work is O(n); the three BENCH.json entries — wall/RSS plus the
// `network_build` phase latency — document the sub-quadratic scaling
// (the brute-force O(n^2) build would make 100k nodes ~100x more
// expensive per node than 10k instead of ~1x).
//
// The workload mirrors Figure 14: train models, elect representatives,
// then run maintenance rounds over a smoothly drifting spatially
// correlated field (two latent drivers with Gaussian distance weights,
// closed-form — O(n) memory at any horizon, no 100k-row dataset). Every
// value is seeded and closed-form, so the tables and all hot-op counters
// are bit-identical for any --jobs.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include "api/network.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "obs/profiler.h"

namespace snapq::bench {
namespace {

constexpr Time kTrainingTicks = 10;
constexpr Time kRoundInterval = 20;
/// Upper bound on the election's refinement window (max_wait + rule4 cap
/// + slack); data updates are pre-scheduled through it.
constexpr Time kElectionSlack = 80;

struct TierRun {
  ElectionStats election;
  std::vector<MaintenanceRoundStats> rounds;
  size_t edges = 0;
};

/// One seeded deployment at `n` nodes: build, train, elect, maintain.
TierRun RunTier(size_t n, uint64_t seed, int num_rounds) {
  NetworkConfig config;
  config.num_nodes = n;
  config.transmission_range =
      0.2 * std::sqrt(100.0 / static_cast<double>(n));
  config.snoop_probability = 0.05;
  config.snapshot.threshold = 0.1;
  config.seed = seed;

  std::unique_ptr<SensorNetwork> net;
  {
    obs::ScopedPhaseTimer build_timer(obs::ProfPhase::kNetworkBuild);
    net = std::make_unique<SensorNetwork>(config);
  }

  TierRun run;
  const LinkModel& links = net->sim().links();
  for (NodeId i = 0; i < n; ++i) run.edges += links.Reachable(i).size();

  // Spatially correlated field, closed-form: two latent drivers at fixed
  // centers, per-node Gaussian distance weights plus a smooth offset.
  // Neighboring nodes are near-affine transforms of each other — the
  // regime the snapshot protocol targets — with no per-node series stored.
  std::vector<double> w1(n), w2(n), offset(n);
  for (NodeId i = 0; i < n; ++i) {
    const Point& p = net->position(i);
    const double l2 = 2.0 * 0.3 * 0.3;
    const double d1 = (p.x - 0.25) * (p.x - 0.25) + (p.y - 0.3) * (p.y - 0.3);
    const double d2 = (p.x - 0.75) * (p.x - 0.75) + (p.y - 0.7) * (p.y - 0.7);
    w1[i] = std::exp(-d1 / l2);
    w2[i] = std::exp(-d2 / l2);
    offset[i] = 40.0 + 20.0 * p.x + 10.0 * p.y;
  }
  const Time data_horizon = kTrainingTicks + kElectionSlack +
                            (static_cast<Time>(num_rounds) + 2) *
                                kRoundInterval;
  std::vector<double> values(n);
  SensorNetwork* raw = net.get();
  for (Time t = 0; t < data_horizon; ++t) {
    // Scheduled before any protocol event, so within every tick readings
    // are refreshed first (stable FIFO tie-break at equal times).
    net->sim().ScheduleAt(t, [raw, t, &w1, &w2, &offset, &values] {
      const double d1 = 10.0 * std::sin(0.13 * static_cast<double>(t));
      const double d2 = 10.0 * std::cos(0.07 * static_cast<double>(t) + 1.0);
      for (size_t i = 0; i < values.size(); ++i) {
        values[i] = offset[i] + w1[i] * d1 + w2[i] * d2;
      }
      raw->SetMeasurements(values);
    });
  }

  net->ScheduleTrainingBroadcasts(0, kTrainingTicks);
  net->RunUntil(kTrainingTicks);
  run.election = net->RunElection(kTrainingTicks);

  const Time first = net->now() + kRoundInterval;
  const Time horizon =
      first + static_cast<Time>(num_rounds) * kRoundInterval;
  net->ScheduleMaintenance(
      first, horizon, kRoundInterval,
      [&run](const MaintenanceRoundStats& s) { run.rounds.push_back(s); });
  net->RunAll();
  obs::MetricSink().MergeFrom(net->sim().registry());
  return run;
}

void RunScaleSweep(const RunContext& ctx, size_t n) {
  char setup[160];
  std::snprintf(setup, sizeof(setup),
                "N=%zu, range=0.2*sqrt(100/N) (degree ~12.6), T=0.1, sse, "
                "update every %lld units",
                n, static_cast<long long>(kRoundInterval));
  Driver driver(ctx, "Scale sweep: snapshot over time", setup);

  const int num_rounds = static_cast<int>(ctx.Scaled(10));
  // One deployment at the 100k tier (a second one only adds memory, not
  // information); two seeds below it so the seed loop exercises the
  // parallel engine the same way the figure drivers do.
  const int seeds = n >= 100000 ? 1 : 2;
  const auto runs = exec::ParallelMap<TierRun>(
      static_cast<size_t>(seeds), ctx.jobs,
      [&](size_t s) { return RunTier(n, kBaseSeed + s, num_rounds); });

  double edges = 0.0, active = 0.0, election_msgs = 0.0;
  for (const TierRun& run : runs) {
    edges += static_cast<double>(run.edges);
    active += static_cast<double>(run.election.num_active);
    election_msgs += run.election.avg_messages_per_node;
  }
  edges /= seeds;
  active /= seeds;
  election_msgs /= seeds;
  std::printf("nodes %zu  directed edges %.0f  mean degree %.2f\n", n, edges,
              edges / static_cast<double>(n));
  std::printf("election: snapshot size %.1f  msgs/node %.2f\n\n", active,
              election_msgs);

  TablePrinter table({"round", "start", "snapshot size", "spurious",
                      "msgs/node"});
  const size_t rounds =
      runs.empty() ? 0 : runs.front().rounds.size();
  for (size_t r = 0; r < rounds; ++r) {
    double start = 0.0, size = 0.0, spurious = 0.0, msgs = 0.0;
    int have = 0;
    for (const TierRun& run : runs) {
      if (r >= run.rounds.size()) continue;
      ++have;
      start += static_cast<double>(run.rounds[r].round_start);
      size += static_cast<double>(run.rounds[r].snapshot_size);
      spurious += static_cast<double>(run.rounds[r].num_spurious);
      msgs += run.rounds[r].avg_messages_per_node;
    }
    if (have == 0) continue;
    table.AddRow({std::to_string(r), TablePrinter::Num(start / have, 0),
                  TablePrinter::Num(size / have, 1),
                  TablePrinter::Num(spurious / have, 1),
                  TablePrinter::Num(msgs / have, 2)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace snapq::bench

SNAPQ_BENCHMARK(scale_sweep_n001k,
                "Scale tier: fig14-style maintenance at 1k nodes") {
  snapq::bench::RunScaleSweep(ctx, 1000);
}

SNAPQ_BENCHMARK(scale_sweep_n010k,
                "Scale tier: fig14-style maintenance at 10k nodes") {
  snapq::bench::RunScaleSweep(ctx, 10000);
}

SNAPQ_BENCHMARK(scale_sweep_n100k,
                "Scale tier: fig14-style maintenance at 100k nodes") {
  snapq::bench::RunScaleSweep(ctx, 100000);
}
