#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace snapq {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble(-3.5, 2.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.25);
  }
}

TEST(RngTest, UniformDoubleMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 2,3,4,5 hit
}

TEST(RngTest, UniformIntSinglePoint) {
  Rng rng(14);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Split();
  // Child continues deterministically and differs from parent's stream.
  Rng parent2(21);
  Rng child2 = parent2.Split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child.NextUint64(), child2.NextUint64());
  }
}

TEST(RngTest, SplitNamedIsStableAndOrderIndependent) {
  Rng a(33);
  Rng b(33);
  // Consume some draws from b only; named splits must still agree.
  b.NextUint64();
  b.NextUint64();
  Rng child_a = a.SplitNamed("placement");
  Rng child_b = b.SplitNamed("placement");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_a.NextUint64(), child_b.NextUint64());
  }
}

TEST(RngTest, SplitNamedDifferentLabelsDiffer) {
  Rng a(33);
  Rng c1 = a.SplitNamed("alpha");
  Rng c2 = a.SplitNamed("beta");
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (c1.NextUint64() != c2.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SplitMix64Test, KnownSequenceAdvancesState) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  EXPECT_EQ(state, 0x9E3779B97F4A7C15ULL);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace snapq
