#include "model/error_metric.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace snapq {

const char* ErrorMetricKindName(ErrorMetricKind kind) {
  switch (kind) {
    case ErrorMetricKind::kSumSquared:
      return "sse";
    case ErrorMetricKind::kAbsolute:
      return "absolute";
    case ErrorMetricKind::kRelative:
      return "relative";
  }
  return "unknown";
}

ErrorMetric::ErrorMetric(ErrorMetricKind kind, double sanity_bound)
    : kind_(kind), sanity_bound_(sanity_bound) {
  SNAPQ_CHECK_GT(sanity_bound_, 0.0);
}

double ErrorMetric::Distance(double actual, double estimate) const {
  const double diff = actual - estimate;
  switch (kind_) {
    case ErrorMetricKind::kSumSquared:
      return diff * diff;
    case ErrorMetricKind::kAbsolute:
      return std::abs(diff);
    case ErrorMetricKind::kRelative:
      return std::abs(diff) / std::max(sanity_bound_, std::abs(actual));
  }
  return 0.0;
}

std::string ErrorMetric::ToString() const {
  if (kind_ == ErrorMetricKind::kRelative) {
    return StrFormat("relative(s=%g)", sanity_bound_);
  }
  return ErrorMetricKindName(kind_);
}

}  // namespace snapq
