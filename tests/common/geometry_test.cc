#include "common/geometry.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(DistanceTest, BasicPythagoras) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
}

TEST(DistanceTest, ZeroForIdenticalPoints) {
  const Point p{0.3, -2.7};
  EXPECT_DOUBLE_EQ(Distance(p, p), 0.0);
}

TEST(DistanceTest, Symmetry) {
  const Point a{1.5, 2.0}, b{-0.5, 7.25};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(RectTest, ContainsIsClosedOnAllSides) {
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(r.Contains({0.0, 0.0}));
  EXPECT_TRUE(r.Contains({1.0, 1.0}));
  EXPECT_TRUE(r.Contains({0.5, 0.5}));
  EXPECT_FALSE(r.Contains({1.0001, 0.5}));
  EXPECT_FALSE(r.Contains({0.5, -0.0001}));
}

TEST(RectTest, CenteredSquareMatchesPaperFilter) {
  // "loc in [x-W/2, x+W/2] x [y-W/2, y+W/2]"
  const Rect r = Rect::CenteredSquare({0.5, 0.5}, 0.2);
  EXPECT_DOUBLE_EQ(r.min_x, 0.4);
  EXPECT_DOUBLE_EQ(r.max_x, 0.6);
  EXPECT_DOUBLE_EQ(r.min_y, 0.4);
  EXPECT_DOUBLE_EQ(r.max_y, 0.6);
  EXPECT_NEAR(r.Area(), 0.04, 1e-12);
}

TEST(RectTest, UnitSquare) {
  const Rect u = Rect::UnitSquare();
  EXPECT_DOUBLE_EQ(u.Area(), 1.0);
  EXPECT_TRUE(u.IsValid());
}

TEST(RectTest, IntersectsOverlapping) {
  const Rect a{0, 0, 1, 1};
  const Rect b{0.5, 0.5, 2, 2};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
}

TEST(RectTest, IntersectsTouchingEdgesCounts) {
  const Rect a{0, 0, 1, 1};
  const Rect b{1, 0, 2, 1};
  EXPECT_TRUE(a.Intersects(b));
}

TEST(RectTest, DisjointDoNotIntersect) {
  const Rect a{0, 0, 1, 1};
  const Rect b{1.1, 1.1, 2, 2};
  EXPECT_FALSE(a.Intersects(b));
}

TEST(RectTest, DegenerateRectIsValidAndContainsItsPoint) {
  const Rect p{0.5, 0.5, 0.5, 0.5};
  EXPECT_TRUE(p.IsValid());
  EXPECT_TRUE(p.Contains({0.5, 0.5}));
  EXPECT_DOUBLE_EQ(p.Area(), 0.0);
}

TEST(RectTest, InvalidWhenMinExceedsMax) {
  const Rect r{1.0, 0.0, 0.0, 1.0};
  EXPECT_FALSE(r.IsValid());
}

TEST(RectTest, ToStringIsHumanReadable) {
  const Rect r{0, 0, 1, 1};
  EXPECT_EQ(r.ToString(), "[0.0000,1.0000]x[0.0000,1.0000]");
}

}  // namespace
}  // namespace snapq
