// Fixed-memory time-series telemetry: periodically samples selected
// MetricRegistry instruments (plus process RSS) along sim-time into
// ring-buffered series, so hour-long soak runs can be trended without the
// memory footprint growing with the horizon.
//
// Each TimeSeries keeps two rings:
//
//   * a raw head — the most recent samples at full resolution;
//   * a downsampled history — older samples folded into min/max/sum/count
//     bins. When the history ring fills, adjacent bins merge pairwise and
//     the bin stride doubles, so total retained memory stays constant no
//     matter how long the run is (sample count is preserved: bins merge,
//     they never drop).
//
// On top of the retained window every series derives trend state on the
// fly: an EWMA, the all-time min/max envelope, and a least-squares slope
// over the retained bins (what the "rss slope ~ 0" memory-flatness SLO
// evaluates).
//
// The TelemetryRecorder owns one series per tracked probe (gauge value,
// counter per-interval rate with reset clamping, process RSS, or a custom
// callback). Probes cache their instrument pointers and all rings are
// preallocated, so a SampleNow() tick performs zero heap allocations —
// and a disabled recorder is a single branch, adding nothing to the paths
// that drive it.
#ifndef SNAPQ_OBS_TIMESERIES_H_
#define SNAPQ_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/node_id.h"
#include "obs/metric_registry.h"

namespace snapq::obs {

/// One downsampled bucket of a series: the envelope and mass of the
/// samples it absorbed over [t_first, t_last].
struct SeriesBin {
  Time t_first = 0;
  Time t_last = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  uint64_t count = 0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Absorbs `other` (envelope union, mass addition, time-range union).
  void Merge(const SeriesBin& other);
  static SeriesBin FromSample(Time t, double value) {
    return SeriesBin{t, t, value, value, value, 1};
  }
};

struct TimeSeriesConfig {
  /// Most recent samples kept at full resolution.
  size_t raw_capacity = 128;
  /// Downsampled bins kept behind the raw head. 0 disables history (old
  /// samples are dropped instead of folded — the retained-count invariant
  /// no longer holds).
  size_t history_capacity = 128;
  /// EWMA smoothing factor in (0, 1]; higher tracks faster.
  double ewma_alpha = 0.1;
};

/// A fixed-memory series of (sim-time, value) samples. All storage is
/// allocated at construction; Push never allocates.
class TimeSeries {
 public:
  explicit TimeSeries(const TimeSeriesConfig& config = {});

  void Push(Time t, double value);

  // -- All-time aggregates (survive downsampling untouched) -----------------
  uint64_t num_samples() const { return num_samples_; }
  double last() const { return last_; }
  Time last_time() const { return last_time_; }
  double ewma() const { return ewma_; }
  double min_seen() const { return num_samples_ == 0 ? 0.0 : min_; }
  double max_seen() const { return num_samples_ == 0 ? 0.0 : max_; }
  double mean() const {
    return num_samples_ == 0 ? 0.0
                             : sum_ / static_cast<double>(num_samples_);
  }

  // -- Retained window -------------------------------------------------------
  /// Bins oldest -> newest: downsampled history first, then the raw head
  /// (raw bins have count 1 unless the series was merged).
  size_t num_bins() const { return hist_size_ + raw_size_; }
  const SeriesBin& bin(size_t i) const;
  /// Raw evictions a full history bin spans (doubles on each compaction).
  size_t history_stride() const { return bin_stride_; }
  /// Start of the oldest retained bin (0 when empty).
  Time retained_since() const;

  /// Least-squares slope (value units per sim-time tick) of the retained
  /// bin means; 0 with fewer than two bins. This is what memory-flatness
  /// SLOs evaluate ("proc.rss_kb slope <= x").
  double Slope() const;

  /// Folds another trial's series in (parallel --jobs folding): bins merge
  /// index-wise, so both series must have the same retained shape — equal
  /// raw/history sizes and history stride, i.e. the same sample cadence
  /// and count. Returns false (and leaves this series untouched) on a
  /// shape mismatch. EWMA/last fold as sample-count-weighted means.
  bool MergeFrom(const TimeSeries& other);

 private:
  void EvictOldestRaw();
  void CompactHistory();
  SeriesBin& HistAt(size_t i) { return hist_[(hist_start_ + i) % hist_.size()]; }
  const SeriesBin& HistAt(size_t i) const {
    return hist_[(hist_start_ + i) % hist_.size()];
  }

  TimeSeriesConfig config_;
  std::vector<SeriesBin> raw_;  // ring of size config_.raw_capacity
  size_t raw_start_ = 0;
  size_t raw_size_ = 0;
  std::vector<SeriesBin> hist_;  // ring of size config_.history_capacity
  std::vector<uint32_t> hist_slots_;  // raw evictions each bin absorbed
  size_t hist_start_ = 0;
  size_t hist_size_ = 0;
  size_t bin_stride_ = 1;

  uint64_t num_samples_ = 0;
  double last_ = 0.0;
  Time last_time_ = 0;
  double ewma_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

struct TelemetryConfig {
  /// Sim-time ticks between samples (the SensorNetwork scheduling hook and
  /// the per-interval counter rates both use it).
  Time sample_interval = 10;
  /// Ring sizing shared by every tracked series.
  TimeSeriesConfig series;
  /// Probe slots preallocated at construction; Track* calls beyond this
  /// are a programmer error (series pointers must stay stable).
  size_t max_series = 32;
  /// Journal events the flight recorder retains (SensorNetwork wiring).
  size_t flight_recorder_capacity = 512;
  /// Where the blackbox dump goes when a watchdog rule fires; empty
  /// disables dumping (SensorNetwork wiring).
  std::string blackbox_path;
  /// The "benchmark" attribution stamped into blackbox dumps.
  std::string blackbox_label = "sensor_network";
};

/// Samples a fixed set of probes into one TimeSeries each.
class TelemetryRecorder {
 public:
  TelemetryRecorder(const TelemetryConfig& config, MetricRegistry* registry);
  ~TelemetryRecorder();
  TelemetryRecorder(const TelemetryRecorder&) = delete;
  TelemetryRecorder& operator=(const TelemetryRecorder&) = delete;

  // Probe registration. The returned series pointer is stable for the
  // recorder's lifetime. Registering the same name twice returns the
  // existing series.

  /// Samples the gauge's current value under the gauge's name.
  TimeSeries* TrackGauge(const std::string& name);
  /// Samples the counter's per-interval delta as "<name>.rate". Deltas are
  /// clamped at zero so a counter reset (warm restart, registry Reset)
  /// yields a flat interval instead of an underflowed spike.
  TimeSeries* TrackCounterRate(const std::string& name);
  /// Samples this process's current resident set as "proc.rss_kb"
  /// (/proc/self/statm via a kept-open fd — no allocation per sample;
  /// falls back to the getrusage peak where /proc is unavailable).
  TimeSeries* TrackRss();
  /// Samples `fn()` under `name` (health probes, test injection).
  TimeSeries* TrackProbe(const std::string& name, std::function<double()> fn);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Samples every probe at sim-time `t`. A single branch when disabled;
  /// zero heap allocations when enabled (rings are preallocated).
  void SampleNow(Time t);

  size_t num_series() const { return probes_.size(); }
  const TimeSeries* series(std::string_view name) const;
  uint64_t num_samples() const { return num_samples_; }
  Time last_sample_time() const { return last_sample_time_; }
  const TelemetryConfig& config() const { return config_; }

  /// Visits (name, series) pairs in registration order.
  template <typename Fn>
  void ForEachSeries(Fn&& fn) const {
    for (const Probe& probe : probes_) fn(probe.name, probe.series);
  }

  /// Folds another recorder in (parallel --jobs folding): probes must
  /// match by name and registration order, and every series pair must be
  /// shape-compatible (see TimeSeries::MergeFrom). Returns false (leaving
  /// this recorder untouched) otherwise.
  bool MergeFrom(const TelemetryRecorder& other);

 private:
  struct Probe {
    enum class Kind { kGauge, kCounterRate, kRss, kCallback };
    std::string name;
    Kind kind = Kind::kGauge;
    const Gauge* gauge = nullptr;
    const Counter* counter = nullptr;
    std::function<double()> fn;
    uint64_t prev = 0;  // counter value at the previous sample
    TimeSeries series;
  };

  TimeSeries* AddProbe(Probe probe);
  double ReadRssKb() const;

  TelemetryConfig config_;
  MetricRegistry* registry_;
  std::vector<Probe> probes_;  // reserved to max_series: pointers stable
  bool enabled_ = true;
  uint64_t num_samples_ = 0;
  Time last_sample_time_ = 0;
  int statm_fd_ = -1;
  double page_kb_ = 4.0;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_TIMESERIES_H_
