// Satellite regression: an unlimited energy model must not leak infinite
// gauges into telemetry. remaining_total/remaining_min and the forecast
// ticks are infinity when the battery is unbounded, and TrackGauge on
// them would serialize `null` into every timeline sidecar — so
// TrackEnergySeries skips them for EnergyModel::Unlimited() and tracks
// the full set only for finite batteries, in either enable order.
#include <gtest/gtest.h>

#include <string>

#include "api/network.h"
#include "obs/timeline.h"
#include "obs/timeseries.h"

namespace snapq {
namespace {

NetworkConfig SmallConfig() {
  NetworkConfig config;
  config.num_nodes = 4;
  config.transmission_range = 2.0;  // fully connected unit square
  config.seed = 11;
  return config;
}

TEST(EnergyTelemetryTest, UnlimitedModelSkipsRemainingAndForecastSeries) {
  NetworkConfig config = SmallConfig();  // default energy is Unlimited()
  SensorNetwork net(config);
  obs::TelemetryRecorder& recorder = net.EnableTelemetry();
  net.EnableEnergyLedger();  // ledger second: hook runs from here

  EXPECT_NE(recorder.series("energy.drained"), nullptr);
  EXPECT_NE(recorder.series("energy.burn_rate"), nullptr);
  EXPECT_NE(recorder.series("net.node_deaths.rate"), nullptr);
  EXPECT_EQ(recorder.series("energy.remaining_total"), nullptr);
  EXPECT_EQ(recorder.series("energy.remaining_min"), nullptr);
  EXPECT_EQ(recorder.series("energy.first_death_tick"), nullptr);
  EXPECT_EQ(recorder.series("energy.coverage_knee_tick"), nullptr);

  net.RunElection(0);
  net.SampleTelemetry();
  net.RunUntil(10);
  net.SampleTelemetry();

  obs::TimelineMeta meta;
  meta.benchmark = "energy_telemetry_test";
  meta.horizon = net.now();
  const std::string timeline = obs::TimelineToJson(recorder, nullptr, meta);
  EXPECT_EQ(timeline.find("remaining_total"), std::string::npos);
  EXPECT_EQ(timeline.find("inf"), std::string::npos);
  EXPECT_EQ(timeline.find("null"), std::string::npos);
}

TEST(EnergyTelemetryTest, FiniteModelTracksTheFullSeriesSet) {
  NetworkConfig config = SmallConfig();
  config.energy = EnergyModel();  // finite: 500-transmission battery
  SensorNetwork net(config);
  net.EnableEnergyLedger();  // ledger first: hook runs from EnableTelemetry
  obs::TelemetryRecorder& recorder = net.EnableTelemetry();

  for (const char* name :
       {"energy.drained", "energy.burn_rate", "net.node_deaths.rate",
        "energy.remaining_total", "energy.remaining_min",
        "energy.first_death_tick", "energy.coverage_knee_tick"}) {
    EXPECT_NE(recorder.series(name), nullptr) << name;
  }

  net.RunElection(0);
  net.energy_ledger()->UpdateGauges(net.now());
  net.SampleTelemetry();

  obs::TimelineMeta meta;
  meta.benchmark = "energy_telemetry_test";
  meta.horizon = net.now();
  const std::string timeline = obs::TimelineToJson(recorder, nullptr, meta);
  EXPECT_NE(timeline.find("energy.remaining_total"), std::string::npos);
  EXPECT_EQ(timeline.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace snapq
