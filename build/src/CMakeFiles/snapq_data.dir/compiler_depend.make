# Empty compiler generated dependencies file for snapq_data.
# This may be replaced when dependencies are built.
