// The parallel sweep runner: fans N independent trials (one per
// (config, seed) pair) out over a work-stealing ThreadPool and reduces
// their results in *index order*, so a `--jobs N` sweep is bit-identical
// to `--jobs 1` — same seeds, same per-trial RNG streams, same elected
// representatives, same aggregate floats.
//
// Determinism contract (DESIGN.md §12):
//  * a task is one whole trial owning its Simulator/SensorNetwork — no
//    shared mutable state crosses task boundaries during the run;
//  * anything a trial merges into the ambient obs::MetricSink() is
//    captured in a per-task MetricRegistry instead (installed via
//    ScopedMetricSink for the task's duration) and folded into the
//    caller's sink in task-index order after the join;
//  * return values come back as a vector in index order, so callers fold
//    per-seed samples into RunningStats & friends sequentially on the
//    calling thread — float addition order never depends on scheduling.
//
// jobs == 1 runs every task inline on the calling thread (no pool, no
// worker threads): today's serial behavior, exactly.
#ifndef SNAPQ_EXEC_PARALLEL_SWEEP_H_
#define SNAPQ_EXEC_PARALLEL_SWEEP_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "obs/metric_registry.h"

namespace snapq::exec {

/// Number of hardware threads (at least 1).
int HardwareJobs();

/// Resolves a job-count request: `requested` > 0 wins; otherwise the
/// SNAPQ_JOBS environment variable (if set to a positive integer);
/// otherwise HardwareJobs(). The result is always >= 1.
int ResolveJobs(int requested);

namespace internal {
/// Runs body(0..n-1), each exactly once, across min(jobs, n) pool workers
/// (inline on the calling thread when jobs == 1 or n <= 1). Blocks until
/// all complete; rethrows the first exception a task raised.
void RunIndexed(size_t n, int jobs, const std::function<void(size_t)>& body);
}  // namespace internal

/// Runs fn(i) for i in [0, n) with `jobs` workers and returns the results
/// in index order. Each task runs under its own MetricRegistry sink; the
/// per-task sinks are folded into the caller's ambient obs::MetricSink()
/// in index order after all tasks finish. R must be default-constructible
/// and movable.
template <typename R>
std::vector<R> ParallelMap(size_t n, int jobs,
                           const std::function<R(size_t)>& fn) {
  std::vector<R> results(n);
  std::vector<obs::MetricRegistry> sinks(n);
  internal::RunIndexed(n, jobs, [&](size_t i) {
    obs::ScopedMetricSink scoped(&sinks[i]);
    results[i] = fn(i);
  });
  obs::MetricRegistry& ambient = obs::MetricSink();
  for (size_t i = 0; i < n; ++i) ambient.MergeFrom(sinks[i]);
  return results;
}

}  // namespace snapq::exec

#endif  // SNAPQ_EXEC_PARALLEL_SWEEP_H_
