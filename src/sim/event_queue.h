// Deterministic discrete-event queue. Events at the same time fire in the
// order they were scheduled (FIFO tie-breaking via a monotonically
// increasing sequence number), which keeps whole-simulation runs
// bit-reproducible for a given seed.
#ifndef SNAPQ_SIM_EVENT_QUEUE_H_
#define SNAPQ_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/node_id.h"

namespace snapq {

/// Priority queue of (time, seq, action) triples ordered by time then seq.
class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `action` at absolute time `t`. Requires t >= now().
  void ScheduleAt(Time t, std::function<void()> action);

  /// Runs the earliest pending event, advancing the clock to its time.
  /// Returns false when the queue is empty.
  bool RunNext();

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void RunUntil(Time t);

  /// Runs to exhaustion.
  void RunAll();

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  Time now() const { return now_; }

 private:
  struct Event {
    Time time;
    uint64_t seq;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
  Time now_ = 0;
};

}  // namespace snapq

#endif  // SNAPQ_SIM_EVENT_QUEUE_H_
