#include "query/predicate.h"

namespace snapq {

Result<Rect> ResolveRegion(const QuerySpec& spec, const Catalog& catalog,
                           const Rect& default_region) {
  if (spec.region.has_value()) return *spec.region;
  if (spec.region_name.has_value()) {
    return catalog.LookupRegion(*spec.region_name);
  }
  return default_region;
}

Status ValidateColumns(const QuerySpec& spec, const Catalog& catalog) {
  for (const SelectItem& item : spec.select) {
    // count(*) is the only aggregate over '*'.
    if (item.column == "*" &&
        item.aggregate != AggregateFunction::kNone &&
        item.aggregate != AggregateFunction::kCount) {
      return Status::InvalidArgument("only count(*) may aggregate '*'");
    }
    if (!catalog.IsValidColumn(item.column)) {
      return Status::InvalidArgument("unknown column: " + item.column);
    }
  }
  return Status::Ok();
}

}  // namespace snapq
