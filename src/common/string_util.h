// Small string helpers shared by the query parser and CSV I/O.
#ifndef SNAPQ_COMMON_STRING_UTIL_H_
#define SNAPQ_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace snapq {

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `delim`, keeping empty fields. "a,,b" -> {"a", "", "b"}.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// ASCII case-insensitive equality (query keywords are case-insensitive).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII letters.
std::string ToUpper(std::string_view s);

/// Parses a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Parses a non-negative integer; rejects trailing garbage and overflow.
Result<int64_t> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace snapq

#endif  // SNAPQ_COMMON_STRING_UTIL_H_
