#include "model/error_metric.h"

#include <gtest/gtest.h>

namespace snapq {
namespace {

TEST(ErrorMetricTest, SumSquared) {
  const ErrorMetric m = ErrorMetric::SumSquared();
  EXPECT_DOUBLE_EQ(m.Distance(5.0, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(m.Distance(3.0, 5.0), 4.0);
  EXPECT_DOUBLE_EQ(m.Distance(2.0, 2.0), 0.0);
}

TEST(ErrorMetricTest, Absolute) {
  const ErrorMetric m = ErrorMetric::Absolute();
  EXPECT_DOUBLE_EQ(m.Distance(5.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(m.Distance(-1.0, 1.0), 2.0);
}

TEST(ErrorMetricTest, RelativeScalesByActual) {
  const ErrorMetric m = ErrorMetric::Relative();
  EXPECT_DOUBLE_EQ(m.Distance(10.0, 9.0), 0.1);
  EXPECT_DOUBLE_EQ(m.Distance(-10.0, -9.0), 0.1);
}

TEST(ErrorMetricTest, RelativeSanityBoundAvoidsDivisionByZero) {
  const ErrorMetric m = ErrorMetric::Relative(0.5);
  // actual == 0: divide by max(s, 0) = s.
  EXPECT_DOUBLE_EQ(m.Distance(0.0, 1.0), 2.0);
}

TEST(ErrorMetricTest, RelativeUsesActualWhenLargerThanBound) {
  const ErrorMetric m = ErrorMetric::Relative(0.5);
  EXPECT_DOUBLE_EQ(m.Distance(2.0, 1.0), 0.5);
}

TEST(ErrorMetricTest, WithinThreshold) {
  const ErrorMetric m = ErrorMetric::SumSquared();
  EXPECT_TRUE(m.Within(5.0, 4.1, 1.0));   // 0.81 <= 1
  EXPECT_TRUE(m.Within(5.0, 4.0, 1.0));   // boundary: 1.0 <= 1
  EXPECT_FALSE(m.Within(5.0, 3.9, 1.0));  // 1.21 > 1
}

TEST(ErrorMetricTest, NamesAndToString) {
  EXPECT_STREQ(ErrorMetricKindName(ErrorMetricKind::kSumSquared), "sse");
  EXPECT_STREQ(ErrorMetricKindName(ErrorMetricKind::kAbsolute), "absolute");
  EXPECT_EQ(ErrorMetric::SumSquared().ToString(), "sse");
  EXPECT_NE(ErrorMetric::Relative(0.1).ToString().find("relative"),
            std::string::npos);
}

TEST(ErrorMetricDeathTest, NonPositiveSanityBoundAborts) {
  EXPECT_DEATH(ErrorMetric::Relative(0.0), "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
