#include "common/geometry.h"

#include <cstdio>

namespace snapq {

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Rect Rect::CenteredSquare(const Point& center, double w) {
  const double half = w / 2.0;
  return Rect{center.x - half, center.y - half, center.x + half,
              center.y + half};
}

std::string Rect::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.4f,%.4f]x[%.4f,%.4f]", min_x, max_x,
                min_y, max_y);
  return buf;
}

}  // namespace snapq
