// The flight recorder ring and the blackbox dump: bounded retention,
// transparent tee-through to the previous sink, and a well-formed
// blackbox document carrying the breaching window's journal events.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/json.h"
#include "obs/metric_registry.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace snapq::obs {
namespace {

std::vector<std::string> Retained(const FlightRecorder& rec) {
  std::vector<std::string> lines;
  rec.ForEach([&lines](const std::string& line) { lines.push_back(line); });
  return lines;
}

TEST(FlightRecorderTest, RingKeepsTheLastNLinesInOrder) {
  FlightRecorder rec(3);
  for (int i = 0; i < 10; ++i) rec.Write("line" + std::to_string(i));
  EXPECT_EQ(rec.capacity(), 3u);
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total_written(), 10u);
  EXPECT_EQ(Retained(rec),
            (std::vector<std::string>{"line7", "line8", "line9"}));
}

TEST(FlightRecorderTest, TeesEveryLineToTheForwardSink) {
  auto forward = std::make_unique<MemoryJournalSink>();
  MemoryJournalSink* forward_raw = forward.get();
  FlightRecorder rec(2);
  rec.SetForward(std::move(forward));
  for (int i = 0; i < 5; ++i) rec.Write("l" + std::to_string(i));
  // The ring is bounded; the forward sink sees everything.
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(forward_raw->lines().size(), 5u);
}

TEST(FlightRecorderTest, SplicesInFrontOfAJournalSinkViaReplaceSink) {
  EventJournal journal;
  auto* old_sink = static_cast<MemoryJournalSink*>(
      journal.SetSink(std::make_unique<MemoryJournalSink>()));

  auto recorder = std::make_unique<FlightRecorder>(8);
  FlightRecorder* rec = recorder.get();
  rec->SetForward(journal.ReplaceSink(std::move(recorder)));

  journal.Emit("e", 1, [](JournalEvent& e) { e.Int("k", 1); });
  journal.Emit("e", 2, [](JournalEvent& e) { e.Int("k", 2); });
  EXPECT_EQ(rec->size(), 2u);
  // The previous sink still receives every line through the tee.
  EXPECT_EQ(old_sink->lines().size(), 2u);
  EXPECT_EQ(Retained(*rec), old_sink->lines());
}

TEST(FlightRecorderTest, DoubleSpliceTeesEachLineToTheOriginalSinkOnce) {
  // Two recorders spliced in sequence (e.g. EnableTelemetry called while
  // another tee is already installed) must chain, not fork: the newest
  // ring sees the line first, forwards to the older ring, which forwards
  // to the original sink — each line lands there exactly once.
  EventJournal journal;
  auto* original = static_cast<MemoryJournalSink*>(
      journal.SetSink(std::make_unique<MemoryJournalSink>()));

  auto first = std::make_unique<FlightRecorder>(8);
  FlightRecorder* inner = first.get();
  inner->SetForward(journal.ReplaceSink(std::move(first)));

  auto second = std::make_unique<FlightRecorder>(8);
  FlightRecorder* outer = second.get();
  outer->SetForward(journal.ReplaceSink(std::move(second)));

  for (int i = 0; i < 3; ++i) {
    journal.Emit("e", i, [i](JournalEvent& e) { e.Int("k", i); });
  }
  EXPECT_EQ(outer->size(), 3u);
  EXPECT_EQ(inner->size(), 3u);
  ASSERT_EQ(original->lines().size(), 3u);  // once each, no duplication
  EXPECT_EQ(Retained(*outer), original->lines());
  EXPECT_EQ(Retained(*inner), original->lines());
}

TEST(FlightRecorderTest, TakeForwardTeardownRestoresTheOriginalSinkOnce) {
  // Mid-run teardown: relinquish the recorder's forward sink and splice it
  // back as the journal's sink. The original sink must come back exactly
  // once (no line lost, none duplicated) and the recorder — destroyed by
  // the ReplaceSink return value going out of scope — must stop seeing
  // traffic. TakeForward evaluates fully before ReplaceSink destroys the
  // recorder, so the unsplice is safe in one expression.
  EventJournal journal;
  auto* original = static_cast<MemoryJournalSink*>(
      journal.SetSink(std::make_unique<MemoryJournalSink>()));

  auto recorder = std::make_unique<FlightRecorder>(8);
  FlightRecorder* rec = recorder.get();
  rec->SetForward(journal.ReplaceSink(std::move(recorder)));

  journal.Emit("e", 1, [](JournalEvent& e) { e.Int("k", 1); });
  EXPECT_EQ(rec->size(), 1u);
  EXPECT_EQ(original->lines().size(), 1u);

  journal.ReplaceSink(rec->TakeForward());  // rec is dead past this point
  EXPECT_TRUE(journal.enabled());

  journal.Emit("e", 2, [](JournalEvent& e) { e.Int("k", 2); });
  ASSERT_EQ(original->lines().size(), 2u);
  std::optional<JournalEvent> event = JournalEvent::Parse(original->lines()[1]);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->name(), "e");
  EXPECT_EQ(event->GetInt("k"), 2);
}

TEST(FlightRecorderTest, InstallingOnADisabledJournalEnablesIt) {
  EventJournal journal;
  EXPECT_FALSE(journal.enabled());
  auto recorder = std::make_unique<FlightRecorder>(4);
  FlightRecorder* rec = recorder.get();
  rec->SetForward(journal.ReplaceSink(std::move(recorder)));  // old = null
  EXPECT_TRUE(journal.enabled());
  EXPECT_EQ(rec->forward(), nullptr);
  journal.Emit("e", 1);
  EXPECT_EQ(rec->size(), 1u);
}

TEST(FlightRecorderTest, BlackboxDumpIsWellFormedAndCarriesTheJournal) {
  MetricRegistry registry;
  registry.GetGauge("g")->Set(1.0);
  TelemetryRecorder telemetry({}, &registry);
  telemetry.TrackGauge("g");
  for (Time t = 0; t < 50; ++t) telemetry.SampleNow(t);

  SloWatchdog watchdog(&telemetry);
  watchdog.AddRule("g value >= 5 for 3");
  for (Time t = 50; t < 60; ++t) watchdog.Evaluate(t);
  ASSERT_FALSE(watchdog.healthy());

  // 20 events through a 16-slot ring: the dump must hold the last 16.
  FlightRecorder ring(16);
  for (int i = 0; i < 20; ++i) {
    JournalEvent e("proto.step", i);
    e.Int("n", i);
    ring.Write(e.ToJsonLine());
  }

  BlackboxContext ctx;
  ctx.reason = "slo_breach: test";
  ctx.benchmark = "unit";
  ctx.now = 59;
  ctx.recorder = &telemetry;
  ctx.watchdog = &watchdog;

  const std::string path = ::testing::TempDir() + "blackbox_test.json";
  ASSERT_TRUE(WriteBlackbox(&ring, ctx, path));

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  std::remove(path.c_str());

  EXPECT_TRUE(ValidateJson(doc)) << doc;
  EXPECT_NE(doc.find("\"kind\": \"snapq-blackbox\""), std::string::npos);
  EXPECT_NE(doc.find("\"reason\": \"slo_breach: test\""), std::string::npos);
  EXPECT_NE(doc.find("\"verdict\": \"breach\""), std::string::npos);
  // The retained journal window is embedded verbatim: the ring holds the
  // last 16 of 20 events, so event 4 is the oldest present.
  EXPECT_EQ(doc.find("\"n\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"n\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"n\":19"), std::string::npos);
}

TEST(FlightRecorderTest, BlackboxHandlesAbsentSubsystems) {
  BlackboxContext ctx;
  ctx.reason = "invariant_failure";
  const std::string path = ::testing::TempDir() + "blackbox_empty.json";
  ASSERT_TRUE(WriteBlackbox(nullptr, ctx, path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  EXPECT_TRUE(ValidateJson(buf.str())) << buf.str();
}

}  // namespace
}  // namespace snapq::obs
