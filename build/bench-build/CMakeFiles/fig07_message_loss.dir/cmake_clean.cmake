file(REMOVE_RECURSE
  "../bench/fig07_message_loss"
  "../bench/fig07_message_loss.pdb"
  "CMakeFiles/fig07_message_loss.dir/fig07_message_loss.cc.o"
  "CMakeFiles/fig07_message_loss.dir/fig07_message_loss.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_message_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
