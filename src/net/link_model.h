// Radio link model: who can hear whom, and which transmissions are lost.
//
// Reachability is range-based and potentially asymmetric (per-node
// transmission ranges; the paper notes the neighbor relation "is, in
// general, not symmetric"). Message loss is i.i.d. Bernoulli per (message,
// receiver) with probability P_loss, optionally overridden per directed
// link to model obstacles.
#ifndef SNAPQ_NET_LINK_MODEL_H_
#define SNAPQ_NET_LINK_MODEL_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "net/node_id.h"

namespace snapq {

/// Immutable placement + ranges; precomputes reachability lists.
class LinkModel {
 public:
  /// `positions[i]` and `ranges[i]` describe node i. Loss probability
  /// applies to every delivery unless overridden per link.
  LinkModel(std::vector<Point> positions, std::vector<double> ranges,
            double loss_probability);

  size_t num_nodes() const { return positions_.size(); }
  const Point& position(NodeId id) const { return positions_[id]; }
  double range(NodeId id) const { return ranges_[id]; }
  double loss_probability() const { return loss_probability_; }

  /// Nodes within transmission range of `from` (excluding `from` itself):
  /// the nodes that physically hear a broadcast by `from`, before loss.
  const std::vector<NodeId>& Reachable(NodeId from) const {
    return reachable_[from];
  }

  /// True iff `to` is within `from`'s transmission range.
  bool CanReach(NodeId from, NodeId to) const;

  /// Samples whether a transmission from->to is lost (true = lost).
  bool SampleLoss(NodeId from, NodeId to, Rng& rng) const;

  /// Overrides the loss probability of the directed link from->to (e.g. an
  /// obstacle in the direct path, §3's spurious-representative scenario).
  void SetLinkLoss(NodeId from, NodeId to, double loss_probability);

  /// Moves node `id` to `position` and recomputes the affected
  /// reachability (mobility is one of the network dynamics §3 calls out).
  void SetPosition(NodeId id, const Point& position);

  /// True if the undirected connectivity graph is connected (used by
  /// experiments to reject degenerate placements, §6.1 notes ranges below
  /// 0.2 often disconnect a 100-node network).
  bool IsConnected() const;

 private:
  std::vector<Point> positions_;
  std::vector<double> ranges_;
  double loss_probability_;
  std::vector<std::vector<NodeId>> reachable_;
  /// Directed link overrides, keyed by from * num_nodes + to.
  std::unordered_map<uint64_t, double> link_loss_;
};

}  // namespace snapq

#endif  // SNAPQ_NET_LINK_MODEL_H_
