// Acceptance bar for the link observer's memory discipline (same global
// new/delete harness as energy_ledger_alloc_test): every Record* call
// must be allocation-free once constructed (the open-addressing table is
// preallocated, first touches included), and the simulator's message path
// must stay allocation-free in steady state BOTH without an observer (the
// single null-pointer branch) and with one attached.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/topo.h"
#include "sim/simulator.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapq {
namespace {

uint64_t Allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

constexpr int kIterations = 10000;

TEST(TopoAllocTest, RecordSitesNeverAllocateEvenOnFirstTouch) {
  obs::LinkObserver observer(100);
  const uint64_t before = Allocations();
  // No warm-up: first touches insert into the preallocated table and must
  // be just as allocation-free as steady-state updates.
  for (int i = 0; i < kIterations; ++i) {
    const NodeId from = static_cast<NodeId>(i % 100);
    const NodeId to = static_cast<NodeId>((i + 1 + i / 100) % 100);
    observer.RecordDelivery(from, to, i);
    observer.RecordLoss(to, from, i);
    observer.RecordSnoop(from, to, i);
  }
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_GT(observer.num_links(), 0u);
}

TEST(TopoAllocTest, OverflowPathNeverAllocates) {
  obs::LinkObserver observer(100, /*max_links=*/4);
  for (int i = 0; i < 8; ++i) {
    observer.RecordDelivery(static_cast<NodeId>(i), 99, 0);  // fill + spill
  }
  const uint64_t before = Allocations();
  for (int i = 0; i < kIterations; ++i) {
    observer.RecordDelivery(static_cast<NodeId>(i % 100), 98, i);
  }
  EXPECT_EQ(Allocations() - before, 0u);
  EXPECT_GT(observer.dropped_records(), 0u);
}

/// Steady-state message loop shared by the with/without-observer cases: a
/// broadcast (delivery records), an addressed unicast under loss (loss
/// records) and snooping enabled, per tick.
uint64_t RunMessagePath(Simulator& sim) {
  Message broadcast;
  broadcast.type = MessageType::kData;
  broadcast.from = 0;
  broadcast.to = kBroadcastId;
  Message unicast;
  unicast.type = MessageType::kHeartbeat;
  unicast.from = 1;
  unicast.to = 0;
  // Warm-up: fills the delivery pool and any lazy queue capacity.
  for (int i = 0; i < kIterations; ++i) {
    sim.Send(broadcast);
    sim.Send(unicast);
    sim.RunAll();
  }
  const uint64_t before = Allocations();
  for (int i = 0; i < kIterations; ++i) {
    sim.Send(broadcast);
    sim.Send(unicast);
    sim.RunAll();
  }
  return Allocations() - before;
}

SimConfig LossySnoopingConfig() {
  SimConfig config;
  config.energy.initial_battery = 1e9;
  config.loss_probability = 0.3;   // exercises RecordLoss
  config.snoop_probability = 0.5;  // exercises RecordSnoop
  return config;
}

TEST(TopoAllocTest, MessagePathAllocationFreeWithoutAnObserver) {
  Simulator sim({{0, 0}, {1, 0}, {0, 1}}, {2.0, 2.0, 2.0},
                LossySnoopingConfig());
  EXPECT_EQ(RunMessagePath(sim), 0u);
  EXPECT_EQ(sim.link_observer(), nullptr);
}

TEST(TopoAllocTest, MessagePathAllocationFreeWithAnObserver) {
  Simulator sim({{0, 0}, {1, 0}, {0, 1}}, {2.0, 2.0, 2.0},
                LossySnoopingConfig());
  obs::LinkObserver observer(sim.num_nodes());
  sim.SetLinkObserver(&observer);
  EXPECT_EQ(RunMessagePath(sim), 0u);
  EXPECT_GT(observer.num_links(), 0u);
  // The lossy run must have fed all three record sites.
  const std::vector<obs::LinkStats> links = observer.SortedLinks();
  uint64_t deliveries = 0, losses = 0, snoops = 0;
  for (const obs::LinkStats& l : links) {
    deliveries += l.deliveries;
    losses += l.losses;
    snoops += l.snoops;
  }
  EXPECT_GT(deliveries, 0u);
  EXPECT_GT(losses, 0u);
  EXPECT_GT(snoops, 0u);
}

}  // namespace
}  // namespace snapq
