# Empty dependencies file for snapq_sim.
# This may be replaced when dependencies are built.
