// Extension study (§5's severe-energy mode): passive nodes sleep entirely
// — they do not even route. Reports the extra participation savings and
// the coverage cost of the disconnections it causes, across transmission
// ranges (shorter range = longer routes = more routing work by passive
// nodes to save, but also more disconnection risk).
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "api/experiment.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel_sweep.h"
#include "query/executor.h"

namespace {

using namespace snapq;

struct SleepOutcome {
  double savings = 0.0;   // participation savings vs regular execution
  double coverage = 0.0;  // average coverage of the snapshot queries
};

/// One repetition's raw results: the savings sample (NaN when no regular
/// participants) and the per-query coverage samples, in query order.
struct SleepRepSamples {
  double savings = 0.0;
  std::vector<double> coverage;
};

SleepOutcome Measure(double range, bool sleep, int repetitions, int queries,
                     int jobs) {
  const auto per_rep = exec::ParallelMap<SleepRepSamples>(
      static_cast<size_t>(repetitions), jobs, [&](size_t r) {
        SensitivityConfig config;
        config.num_classes = 1;
        config.transmission_range = range;
        config.seed = bench::kBaseSeed + r;
        SensitivityOutcome outcome = RunSensitivityTrial(config);
        SensorNetwork& net = *outcome.network;
        Rng rng(config.seed ^ 0x517EEBULL);
        SleepRepSamples samples;
        uint64_t regular_total = 0;
        uint64_t snapshot_total = 0;
        for (int q = 0; q < queries; ++q) {
          ExecutionOptions options;
          options.sink = static_cast<NodeId>(rng.UniformInt(0, 99));
          options.passive_nodes_sleep = sleep;
          const Point center{rng.NextDouble(), rng.NextDouble()};
          const Rect region = Rect::CenteredSquare(center, std::sqrt(0.1));
          const QueryResult regular = net.executor().ExecuteRegion(
              region, false, AggregateFunction::kSum, options);
          const QueryResult snap = net.executor().ExecuteRegion(
              region, true, AggregateFunction::kSum, options);
          regular_total += regular.participants;
          snapshot_total += snap.participants;
          if (snap.matching_nodes > 0) {
            samples.coverage.push_back(snap.coverage);
          }
        }
        samples.savings =
            regular_total > 0
                ? 1.0 - static_cast<double>(snapshot_total) /
                            static_cast<double>(regular_total)
                : std::numeric_limits<double>::quiet_NaN();
        return samples;
      });
  RunningStats savings, coverage;
  for (const SleepRepSamples& samples : per_rep) {
    if (!std::isnan(samples.savings)) savings.Add(samples.savings);
    for (double c : samples.coverage) coverage.Add(c);
  }
  return SleepOutcome{savings.mean(), coverage.mean()};
}

}  // namespace

SNAPQ_BENCHMARK(ablation_sleep_mode,
                "Extension: passive nodes sleeping through queries") {
  using namespace snapq;
  bench::Driver driver(
      ctx, "Extension: passive nodes sleeping through queries (§5)",
      "K=1, W^2=0.1, 200 queries; snapshot execution with passive nodes "
      "routing (default) vs sleeping");

  const int queries = static_cast<int>(ctx.Scaled(200));
  TablePrinter table({"range", "savings (routing)", "savings (sleeping)",
                      "coverage (routing)", "coverage (sleeping)"});
  for (double range : {0.3, 0.5, 0.7}) {
    const SleepOutcome awake =
        Measure(range, false, ctx.repetitions, queries, ctx.jobs);
    const SleepOutcome asleep =
        Measure(range, true, ctx.repetitions, queries, ctx.jobs);
    table.AddRow({TablePrinter::Num(range, 1),
                  TablePrinter::Num(100.0 * awake.savings, 0) + "%",
                  TablePrinter::Num(100.0 * asleep.savings, 0) + "%",
                  TablePrinter::Num(100.0 * awake.coverage, 0) + "%",
                  TablePrinter::Num(100.0 * asleep.coverage, 0) + "%"});
  }
  table.Print(std::cout);
}
