# Empty dependencies file for multi_measurement_test.
# This may be replaced when dependencies are built.
