#include "query/ast.h"

#include "common/string_util.h"

namespace snapq {

const char* AggregateFunctionName(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kNone:
      return "none";
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kAvg:
      return "avg";
    case AggregateFunction::kMin:
      return "min";
    case AggregateFunction::kMax:
      return "max";
    case AggregateFunction::kCount:
      return "count";
  }
  return "?";
}

const char* ExplainModeName(ExplainMode mode) {
  switch (mode) {
    case ExplainMode::kNone:
      return "none";
    case ExplainMode::kPlan:
      return "explain";
    case ExplainMode::kAnalyze:
      return "explain analyze";
  }
  return "?";
}

bool QuerySpec::IsAggregate() const {
  for (const SelectItem& item : select) {
    if (item.aggregate != AggregateFunction::kNone) return true;
  }
  return false;
}

AggregateFunction QuerySpec::TheAggregate() const {
  for (const SelectItem& item : select) {
    if (item.aggregate != AggregateFunction::kNone) return item.aggregate;
  }
  return AggregateFunction::kNone;
}

std::string QuerySpec::ToString() const {
  std::string out;
  if (explain == ExplainMode::kPlan) {
    out += "EXPLAIN ";
  } else if (explain == ExplainMode::kAnalyze) {
    out += "EXPLAIN ANALYZE ";
  }
  out += "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i != 0) out += ", ";
    if (select[i].aggregate != AggregateFunction::kNone) {
      out += AggregateFunctionName(select[i].aggregate);
      out += "(" + select[i].column + ")";
    } else {
      out += select[i].column;
    }
  }
  out += " FROM " + table;
  if (region_name.has_value()) {
    out += " WHERE loc IN " + *region_name;
  } else if (region.has_value()) {
    out += StrFormat(" WHERE loc IN RECT(%g, %g, %g, %g)", region->min_x,
                     region->min_y, region->max_x, region->max_y);
  }
  if (sample_interval > 0.0) {
    out += StrFormat(" SAMPLE INTERVAL %g", sample_interval);
    if (duration > 0.0) out += StrFormat(" FOR %g", duration);
  }
  if (use_snapshot) {
    out += " USE SNAPSHOT";
    if (snapshot_threshold.has_value()) {
      out += StrFormat(" ERROR %g", *snapshot_threshold);
    }
  }
  return out;
}

}  // namespace snapq
