// FM/PCSA sketch and multipath aggregation tests (the [3] baseline).
#include "query/sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "net/topology.h"
#include "query/innetwork.h"
#include "query/multipath.h"

namespace snapq {
namespace {

TEST(FmSketchTest, EmptyEstimatesNearZero) {
  FmSketch s(32);
  EXPECT_LT(s.EstimateCount(), 64.0);  // m/phi with zero mean R
}

TEST(FmSketchTest, InsertIsIdempotent) {
  FmSketch s(16);
  for (int i = 0; i < 100; ++i) s.InsertItem(42);
  FmSketch once(16);
  once.InsertItem(42);
  EXPECT_EQ(s, once);
}

TEST(FmSketchTest, EstimateWithinPcsaErrorBand) {
  // PCSA with 32 bitmaps: typical relative error ~1.3/sqrt(32) ~= 23%;
  // assert a generous 40% band across two decades of cardinality.
  for (uint64_t n : {500u, 5000u, 50000u}) {
    FmSketch s(32);
    for (uint64_t i = 0; i < n; ++i) {
      s.InsertItem(i * 2654435761ULL);
    }
    const double estimate = s.EstimateCount();
    EXPECT_GT(estimate, 0.6 * static_cast<double>(n)) << n;
    EXPECT_LT(estimate, 1.4 * static_cast<double>(n)) << n;
  }
}

TEST(FmSketchTest, MergeEqualsUnion) {
  FmSketch a(16), b(16), both(16);
  for (uint64_t i = 0; i < 1000; ++i) {
    a.InsertItem(i);
    both.InsertItem(i);
  }
  for (uint64_t i = 500; i < 1500; ++i) {
    b.InsertItem(i);
    both.InsertItem(i);
  }
  a.Merge(b);
  EXPECT_EQ(a, both);  // OR merge is exactly the union of bitmaps
}

TEST(FmSketchTest, MergeIsCommutativeAndIdempotent) {
  FmSketch a(8), b(8);
  for (uint64_t i = 0; i < 200; ++i) a.InsertItem(i * 3);
  for (uint64_t i = 0; i < 200; ++i) b.InsertItem(i * 7);
  FmSketch ab = a;
  ab.Merge(b);
  FmSketch ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
  FmSketch twice = ab;
  twice.Merge(ab);
  EXPECT_EQ(twice, ab);
}

TEST(FmSketchTest, WireRoundTrip) {
  FmSketch s(8);
  for (uint64_t i = 0; i < 50; ++i) s.InsertItem(i);
  const FmSketch back = FmSketch::FromWire(s.bitmaps());
  EXPECT_EQ(back, s);
}

TEST(SumSketchTest, SumEstimateTracksTotal) {
  SumSketch s(32);
  double truth = 0.0;
  for (NodeId i = 0; i < 50; ++i) {
    const double v = 100.0 + 10.0 * i;
    s.AddValue(i, v);
    truth += std::ceil(v);
  }
  const double estimate = s.EstimateSum();
  EXPECT_GT(estimate, 0.6 * truth);
  EXPECT_LT(estimate, 1.4 * truth);
}

TEST(SumSketchTest, DisjointNodesMerge) {
  SumSketch a(32), b(32), both(32);
  a.AddValue(1, 500.0);
  both.AddValue(1, 500.0);
  b.AddValue(2, 700.0);
  both.AddValue(2, 700.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateSum(), both.EstimateSum());
}

TEST(SumSketchDeathTest, NegativeValueAborts) {
  SumSketch s(8);
  EXPECT_DEATH(s.AddValue(0, -1.0), "SNAPQ_CHECK");
}

// ---------------------------------------------------------------------------
// Multipath aggregation.
// ---------------------------------------------------------------------------

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;

  Net(size_t n, double spacing, double range, SimConfig sim_config = {}) {
    std::vector<Point> positions;
    for (size_t i = 0; i < n; ++i) {
      positions.push_back({spacing * static_cast<double>(i), 0.0});
    }
    sim = std::make_unique<Simulator>(std::move(positions),
                                      std::vector<double>(n, range),
                                      sim_config);
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<SnapshotAgent>(
          i, sim.get(), SnapshotConfig{}, 40 + i));
      agents.back()->Install();
      agents.back()->SetMeasurement(100.0 + 10.0 * i);
    }
  }

  double Truth() const {
    double t = 0.0;
    for (const auto& a : agents) t += a->measurement();
    return t;
  }
};

const Rect kAll{-1.0, -1.0, 100.0, 100.0};

TEST(MultipathTest, ZeroLossEstimateNearTruth) {
  Net net(20, 0.2, 0.45);
  MultipathSketchAggregator agg(net.sim.get(), &net.agents);
  const MultipathResult r = agg.Execute(kAll, 0);
  ASSERT_TRUE(r.estimate.has_value());
  EXPECT_GT(*r.estimate, 0.55 * net.Truth());
  EXPECT_LT(*r.estimate, 1.45 * net.Truth());
  EXPECT_EQ(r.participants, 20u);  // every node transmits every epoch
}

TEST(MultipathTest, RobustWhereTreeIsFragile) {
  // 2-D multi-hop deployment under 30% loss (the [3] setting): the tree
  // engine loses whole subtrees when a single parent edge drops; the
  // multipath sketch is caught by several lower-ring neighbors at once and
  // retains most of the mass. (On a 1-D chain every node is a cut vertex
  // and multipath diversity vanishes -- deliberately not tested here.)
  SimConfig sim_config;
  sim_config.loss_probability = 0.3;
  sim_config.seed = 9;
  Rng placement(4);
  std::vector<Point> positions =
      PlaceUniform(60, Rect::UnitSquare(), placement);
  auto sim = std::make_unique<Simulator>(
      std::move(positions), std::vector<double>(60, 0.25), sim_config);
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  double truth = 0.0;
  for (NodeId i = 0; i < 60; ++i) {
    agents.push_back(std::make_unique<SnapshotAgent>(
        i, sim.get(), SnapshotConfig{}, 40 + i));
    agents.back()->Install();
    agents.back()->SetMeasurement(100.0 + 10.0 * i);
    truth += 100.0 + 10.0 * i;
  }

  double tree_total = 0.0;
  {
    InNetworkAggregator tree(sim.get(), &agents);
    for (int q = 0; q < 10; ++q) {
      tree_total += tree.Execute(kAll, AggregateFunction::kSum, 0, false)
                        .aggregate.value_or(0.0);
    }
  }
  double sketch_total = 0.0;
  {
    MultipathSketchAggregator multipath(sim.get(), &agents);
    for (int q = 0; q < 10; ++q) {
      sketch_total += multipath.Execute(kAll, 0).estimate.value_or(0.0);
    }
  }
  EXPECT_GT(sketch_total, tree_total);
  EXPECT_GT(sketch_total / 10.0, 0.6 * truth);
}

TEST(MultipathTest, DeadSinkNoAnswer) {
  Net net(4, 0.2, 0.5);
  net.sim->Kill(0);
  MultipathSketchAggregator agg(net.sim.get(), &net.agents);
  const MultipathResult r = agg.Execute(kAll, 0);
  EXPECT_FALSE(r.estimate.has_value());
}

TEST(MultipathTest, RegionFiltersContributions) {
  Net net(10, 0.2, 0.45);
  MultipathSketchAggregator agg(net.sim.get(), &net.agents);
  // Only nodes 0..4 (x <= 0.8) are in region; truth = sum of their values.
  const Rect region{-1.0, -1.0, 0.85, 1.0};
  double truth = 0.0;
  for (NodeId i = 0; i <= 4; ++i) truth += net.agents[i]->measurement();
  const MultipathResult r = agg.Execute(region, 0);
  ASSERT_TRUE(r.estimate.has_value());
  EXPECT_GT(*r.estimate, 0.5 * truth);
  EXPECT_LT(*r.estimate, 1.5 * truth);
}

TEST(MultipathTest, BackToBackQueriesIndependent) {
  Net net(5, 0.2, 0.5);
  MultipathSketchAggregator agg(net.sim.get(), &net.agents);
  const MultipathResult a = agg.Execute(kAll, 0);
  const MultipathResult b = agg.Execute(kAll, 0);
  ASSERT_TRUE(a.estimate.has_value());
  ASSERT_TRUE(b.estimate.has_value());
  // Same inputs, fresh sketches: identical estimates.
  EXPECT_DOUBLE_EQ(*a.estimate, *b.estimate);
}

}  // namespace
}  // namespace snapq
