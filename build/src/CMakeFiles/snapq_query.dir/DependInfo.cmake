
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregation.cc" "src/CMakeFiles/snapq_query.dir/query/aggregation.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/aggregation.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/snapq_query.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/ast.cc.o.d"
  "/root/repo/src/query/catalog.cc" "src/CMakeFiles/snapq_query.dir/query/catalog.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/catalog.cc.o.d"
  "/root/repo/src/query/continuous.cc" "src/CMakeFiles/snapq_query.dir/query/continuous.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/continuous.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/snapq_query.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/executor.cc.o.d"
  "/root/repo/src/query/innetwork.cc" "src/CMakeFiles/snapq_query.dir/query/innetwork.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/innetwork.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/snapq_query.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/multipath.cc" "src/CMakeFiles/snapq_query.dir/query/multipath.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/multipath.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/snapq_query.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/snapq_query.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/routing_tree.cc" "src/CMakeFiles/snapq_query.dir/query/routing_tree.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/routing_tree.cc.o.d"
  "/root/repo/src/query/sketch.cc" "src/CMakeFiles/snapq_query.dir/query/sketch.cc.o" "gcc" "src/CMakeFiles/snapq_query.dir/query/sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snapq_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snapq_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
