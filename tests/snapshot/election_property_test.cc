// Election properties over randomized geometric topologies and model
// graphs: the invariants that must hold for *any* deployment, not just the
// curated scenarios.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology.h"
#include "snapshot/election.h"

namespace snapq {
namespace {

SnapshotConfig TestConfig() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 8;
  config.rule4_hard_cap = 16;
  return config;
}

struct RandomNet {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;

  RandomNet(uint64_t seed, size_t n, double range, double model_density,
            double loss = 0.0) {
    Rng rng(seed);
    Rng placement = rng.SplitNamed("placement");
    SimConfig sim_config;
    sim_config.loss_probability = loss;
    sim_config.seed = rng.SplitNamed("sim").NextUint64();
    sim = std::make_unique<Simulator>(
        PlaceUniform(n, Rect::UnitSquare(), placement),
        std::vector<double>(n, range), sim_config);
    Rng agent_seeds = rng.SplitNamed("agents");
    for (NodeId i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<SnapshotAgent>(
          i, sim.get(), TestConfig(), agent_seeds.NextUint64()));
      agents.back()->Install();
      agents.back()->SetMeasurement(rng.UniformDouble(0.0, 1000.0));
    }
    // Random model graph: each in-range ordered pair gets an exact model
    // with probability model_density.
    Rng models = rng.SplitNamed("models");
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j : sim->links().Reachable(i)) {
        if (!models.Bernoulli(model_density)) continue;
        const double vi = agents[i]->measurement();
        const double vj = agents[j]->measurement();
        agents[i]->models().cache().Observe(j, vi - 1, vj - 1, 0);
        agents[i]->models().cache().Observe(j, vi + 1, vj + 1, 0);
      }
    }
  }
};

class ElectionProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ElectionProperties, ZeroLossInvariants) {
  const uint64_t seed = GetParam();
  RandomNet net(seed, 40, 0.45, 0.6);
  const ElectionStats stats =
      RunGlobalElection(*net.sim, net.agents, 0, TestConfig());
  const SnapshotView view = CaptureSnapshot(net.agents);

  // 1. Every node decides.
  EXPECT_EQ(stats.num_undefined, 0u);
  // 2. Under reliable communication there are no spurious representatives.
  EXPECT_EQ(view.CountSpurious(), 0u);
  for (NodeId i = 0; i < 40; ++i) {
    const auto& info = view.node(i);
    if (info.mode == NodeMode::kPassive) {
      // 3. A passive node's representative is ACTIVE and in radio range.
      const NodeId rep = info.representative;
      EXPECT_EQ(view.node(rep).mode, NodeMode::kActive) << "node " << i;
      EXPECT_TRUE(net.sim->links().CanReach(rep, i)) << "node " << i;
      // 4. ...and acknowledges the representation.
      EXPECT_TRUE(view.RepresentsCurrently(rep, i)) << "node " << i;
      // 5. Passive nodes represent nobody.
      EXPECT_TRUE(info.represents.empty()) << "node " << i;
    } else {
      // 6. Active nodes represent themselves.
      EXPECT_EQ(info.representative, i) << "node " << i;
    }
    // 7. The Table-2 message bound.
    EXPECT_LE(net.sim->messages_sent_by(i), 5u) << "node " << i;
    // 8. Every node has a responder.
    EXPECT_NE(view.ResponderFor(i), kInvalidNode) << "node " << i;
  }
}

TEST_P(ElectionProperties, LossyInvariants) {
  const uint64_t seed = GetParam();
  RandomNet net(seed, 40, 0.45, 0.6, /*loss=*/0.35);
  const ElectionStats stats =
      RunGlobalElection(*net.sim, net.agents, 0, TestConfig());
  const SnapshotView view = CaptureSnapshot(net.agents);
  EXPECT_EQ(stats.num_undefined, 0u);
  for (NodeId i = 0; i < 40; ++i) {
    const auto& info = view.node(i);
    if (info.mode == NodeMode::kPassive) {
      // Under loss a passive node still never points at itself...
      EXPECT_NE(info.representative, i);
      // ...and stayed silent about representing others.
      EXPECT_TRUE(info.represents.empty());
    }
  }
}

TEST_P(ElectionProperties, RepeatedElectionsRemainStable) {
  const uint64_t seed = GetParam();
  RandomNet net(seed, 30, 0.5, 0.7);
  const ElectionStats first =
      RunGlobalElection(*net.sim, net.agents, 0, TestConfig());
  // Re-running the discovery from the settled state (fresh epochs) must
  // again settle everything, with a comparable snapshot size.
  const ElectionStats second = RunGlobalElection(
      *net.sim, net.agents, net.sim->now() + 1, TestConfig());
  EXPECT_EQ(second.num_undefined, 0u);
  EXPECT_EQ(first.num_active, second.num_active);
  EXPECT_EQ(CaptureSnapshot(net.agents).CountSpurious(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElectionProperties,
                         ::testing::Range<uint64_t>(1, 13));

TEST(ThresholdMonotonicityTest, LargerThresholdNeverNeedsMoreReps) {
  // Fig 11's monotonicity as a property: same data and placement, rising
  // T => (weakly) shrinking snapshot. Tested via separate universes per T
  // since an agent's threshold is fixed at construction.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    size_t prev = SIZE_MAX;
    for (double t : {0.5, 2.0, 8.0, 32.0}) {
      SnapshotConfig config = TestConfig();
      config.threshold = t;
      Rng rng(seed);
      Rng placement = rng.SplitNamed("placement");
      Simulator sim(PlaceUniform(30, Rect::UnitSquare(), placement),
                    std::vector<double>(30, 1.5), SimConfig{});
      std::vector<std::unique_ptr<SnapshotAgent>> agents;
      Rng agent_seeds = rng.SplitNamed("agents");
      Rng values = rng.SplitNamed("values");
      std::vector<double> v(30);
      for (NodeId i = 0; i < 30; ++i) {
        v[i] = values.UniformDouble(0.0, 100.0);
        agents.push_back(std::make_unique<SnapshotAgent>(
            i, &sim, config, agent_seeds.NextUint64()));
        agents.back()->Install();
        agents.back()->SetMeasurement(v[i]);
      }
      // Noisy models: predict neighbor j with a fixed per-pair error drawn
      // once (same across thresholds because the stream is recreated).
      Rng noise = rng.SplitNamed("noise");
      for (NodeId i = 0; i < 30; ++i) {
        for (NodeId j = 0; j < 30; ++j) {
          if (i == j) continue;
          const double err = noise.UniformDouble(-4.0, 4.0);
          agents[i]->models().cache().Observe(j, v[i] - 1,
                                              v[j] + err - 1, 0);
          agents[i]->models().cache().Observe(j, v[i] + 1,
                                              v[j] + err + 1, 0);
        }
      }
      const ElectionStats stats =
          RunGlobalElection(sim, agents, 0, config);
      EXPECT_LE(stats.num_active, prev)
          << "seed " << seed << " T " << t;
      prev = stats.num_active;
    }
  }
}

}  // namespace
}  // namespace snapq
