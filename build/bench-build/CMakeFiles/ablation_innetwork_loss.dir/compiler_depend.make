# Empty compiler generated dependencies file for ablation_innetwork_loss.
# This may be replaced when dependencies are built.
