# Empty compiler generated dependencies file for innetwork_test.
# This may be replaced when dependencies are built.
