// The metric registry: named counters, gauges and fixed-bucket histograms,
// optionally labeled by node ("election.messages_sent{node=17}"). The
// registry is the single source of truth for experiment accounting — the
// simulator's Metrics object is a thin façade over it, protocol layers
// register their own instruments, and the exporters (ToJson/ToCsv, bench
// sidecar files) read it back out.
//
// Design constraints, in order:
//  * hot-path cost: callers cache the Counter*/Gauge* returned by Get* at
//    registration time, so a counted event is one pointer-indirect
//    increment — no map lookup, no allocation, no branch on an "enabled"
//    flag;
//  * stable handles: instruments live in node-based maps, so pointers stay
//    valid for the registry's lifetime no matter how many instruments are
//    registered later;
//  * phase accounting: TakeSnapshot()/DeltaSince() capture counter and
//    gauge values between experiment phases without resetting anything;
//  * cross-run aggregation: MergeFrom() folds another registry in
//    (counters and histogram buckets add, gauges keep the maximum — a
//    high-watermark, which is what per-node message bounds need).
//
// Not thread-safe: the simulator is single-threaded by design; parallel
// experiment runs each own a registry and merge afterwards. The merge
// itself is kept deterministic by the sink indirection below: a trial
// merges into MetricSink() — normally GlobalMetrics(), but exec::
// ParallelMap installs a thread-local per-task registry via
// ScopedMetricSink and folds the task sinks into the ambient sink in
// task-index order after the join, so a --jobs N sweep produces
// bit-identical aggregates to the serial run.
#ifndef SNAPQ_OBS_METRIC_REGISTRY_H_
#define SNAPQ_OBS_METRIC_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/node_id.h"

namespace snapq::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time value (sizes, per-phase totals, high-watermarks).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  /// Keeps the larger of the current and proposed value.
  void SetMax(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// an implicit +inf bucket catches the rest. Bucket i counts observations
/// x <= bounds[i] (and > bounds[i-1]).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double x);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double max_seen() const { return max_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the +inf overflow bucket.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// Adds `other`'s observations; bucket bounds must match.
  void MergeFrom(const Histogram& other);
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Canonical flattened instrument name: `name` alone, or "name{node=17}"
/// for node-labeled instruments. Used by snapshots and the exporters.
std::string LabeledName(const std::string& name, NodeId node);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Instrument registration. Returns a stable handle; repeated calls with
  // the same name (and node) return the same instrument. Cache the pointer
  // on hot paths.
  Counter* GetCounter(const std::string& name);
  Counter* GetCounter(const std::string& name, NodeId node);
  Gauge* GetGauge(const std::string& name);
  Gauge* GetGauge(const std::string& name, NodeId node);
  /// `bounds` is used on first registration only; later calls with the
  /// same name ignore it.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Flattened (name -> value) capture of every counter and gauge.
  /// Histograms contribute their count and sum as "<name>.count" /
  /// "<name>.sum" so deltas cover them too.
  using Snapshot = std::map<std::string, double>;
  Snapshot TakeSnapshot() const;
  /// Current values minus `earlier` (instruments absent earlier count from
  /// zero; instruments absent now are omitted).
  Snapshot DeltaSince(const Snapshot& earlier) const;

  /// Folds `other` in: counters and histograms add, gauges keep the max.
  /// Histogram bucket layouts must match for shared names.
  void MergeFrom(const MetricRegistry& other);

  /// Zeroes every instrument; registrations (and handed-out pointers)
  /// stay valid.
  void Reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count":..,"sum":..,"max":..,"bounds":[..],"buckets":[..]}}}
  std::string ToJson() const;
  /// One instrument per line: kind,name,value (histograms emit count, sum
  /// and one line per bucket).
  std::string ToCsv() const;

  size_t num_instruments() const;

 private:
  // std::map keeps element addresses stable across inserts.
  std::map<std::string, Counter> counters_;
  std::map<std::string, std::map<NodeId, Counter>> node_counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::map<NodeId, Gauge>> node_gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Process-wide registry for cross-run aggregation: experiment drivers
/// merge each trial's simulator registry here, and the bench harness dumps
/// it into the `*.metrics.json` sidecar at exit.
MetricRegistry& GlobalMetrics();

/// Where trial results should merge: the innermost ScopedMetricSink on
/// this thread, or GlobalMetrics() when none is installed. Trial code
/// (RunSensitivityTrial, bench driver bodies) must merge through this so
/// parallel sweeps can capture per-task results and reduce them in a
/// deterministic order.
MetricRegistry& MetricSink();

/// RAII: installs `sink` as this thread's metric sink (nullptr restores
/// the GlobalMetrics() fallback) for the scope's lifetime.
class ScopedMetricSink {
 public:
  explicit ScopedMetricSink(MetricRegistry* sink);
  ~ScopedMetricSink();
  ScopedMetricSink(const ScopedMetricSink&) = delete;
  ScopedMetricSink& operator=(const ScopedMetricSink&) = delete;

 private:
  MetricRegistry* saved_;
};

}  // namespace snapq::obs

#endif  // SNAPQ_OBS_METRIC_REGISTRY_H_
