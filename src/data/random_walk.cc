#include "data/random_walk.h"

#include "common/check.h"

namespace snapq {

RandomWalkData GenerateRandomWalk(const RandomWalkConfig& config, Rng& rng) {
  SNAPQ_CHECK_GT(config.num_nodes, 0u);
  SNAPQ_CHECK_GT(config.num_classes, 0u);
  SNAPQ_CHECK_LE(config.num_classes, config.num_nodes);

  RandomWalkData data;
  data.node_class.resize(config.num_nodes);
  data.move_prob.resize(config.num_classes);
  data.step_size.resize(config.num_nodes);
  data.series.resize(config.num_nodes);

  for (size_t k = 0; k < config.num_classes; ++k) {
    data.move_prob[k] =
        rng.UniformDouble(config.min_move_prob, config.max_move_prob);
  }

  // Random partition: first make sure every class is non-empty (one node per
  // class), then assign the rest uniformly. This matches "randomly
  // partitioned the nodes into K classes" while guaranteeing exactly K
  // behaviour groups exist.
  std::vector<size_t> assignment(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    assignment[i] = i < config.num_classes
                        ? i
                        : static_cast<size_t>(rng.UniformInt(
                              0, static_cast<int64_t>(config.num_classes) - 1));
  }
  // Shuffle so class membership is not position-correlated.
  for (size_t i = config.num_nodes; i > 1; --i) {
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(assignment[i - 1], assignment[j]);
  }
  data.node_class = assignment;

  std::vector<double> current(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    // Step size in (min_step, max_step]: draw from [min,max) and mirror.
    data.step_size[i] = config.max_step -
                        rng.UniformDouble(0.0, config.max_step - config.min_step);
    current[i] = rng.UniformDouble(config.initial_min, config.initial_max);
    data.series[i].Append(current[i]);
  }

  // Per time unit, each class draws one "move?" coin and one direction coin;
  // members apply the shared direction scaled by their own step size. See
  // header for why the direction must be shared.
  for (size_t t = 1; t < config.horizon; ++t) {
    std::vector<double> direction(config.num_classes, 0.0);
    for (size_t k = 0; k < config.num_classes; ++k) {
      if (rng.Bernoulli(data.move_prob[k])) {
        direction[k] = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      }
    }
    for (size_t i = 0; i < config.num_nodes; ++i) {
      current[i] += direction[data.node_class[i]] * data.step_size[i];
      data.series[i].Append(current[i]);
    }
  }
  return data;
}

}  // namespace snapq
