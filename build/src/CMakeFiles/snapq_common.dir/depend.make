# Empty dependencies file for snapq_common.
# This may be replaced when dependencies are built.
