#include "data/spatial_field.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "net/topology.h"

namespace snapq {
namespace {

TEST(SpatialFieldTest, ShapesMatchInput) {
  Rng rng(1);
  const auto positions = PlaceUniform(12, Rect::UnitSquare(), rng);
  SpatialFieldConfig config;
  config.horizon = 40;
  const auto series = GenerateSpatialField(config, positions, rng);
  ASSERT_EQ(series.size(), 12u);
  for (const TimeSeries& s : series) {
    EXPECT_EQ(s.size(), 40u);
  }
}

TEST(SpatialFieldTest, NearbyNodesMoreCorrelatedThanDistant) {
  Rng rng(2);
  // Two tight clusters far apart.
  std::vector<Point> positions = {{0.05, 0.05}, {0.08, 0.06},
                                  {0.92, 0.93}, {0.95, 0.95}};
  SpatialFieldConfig config;
  config.horizon = 300;
  config.correlation_length = 0.15;
  config.offset_max = 10.0;
  const auto series = GenerateSpatialField(config, positions, rng);
  const double near_a = SeriesCorrelation(series[0], series[1]);
  const double near_b = SeriesCorrelation(series[2], series[3]);
  const double far = SeriesCorrelation(series[0], series[3]);
  EXPECT_GT(near_a, 0.95);
  EXPECT_GT(near_b, 0.95);
  EXPECT_LT(std::abs(far), near_a);
}

TEST(SpatialFieldTest, LargeCorrelationLengthCouplesEveryone) {
  Rng rng(3);
  const auto positions = PlaceUniform(10, Rect::UnitSquare(), rng);
  SpatialFieldConfig config;
  config.horizon = 300;
  config.correlation_length = 50.0;  // whole deployment shares the drivers
  const auto series = GenerateSpatialField(config, positions, rng);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(SeriesCorrelation(series[0], series[i]), 0.99) << i;
  }
}

TEST(SpatialFieldTest, ObservationNoiseReducesCorrelation) {
  std::vector<Point> positions = {{0.5, 0.5}, {0.52, 0.5}};
  SpatialFieldConfig clean;
  clean.horizon = 400;
  SpatialFieldConfig noisy = clean;
  noisy.observation_noise = 5.0;
  Rng r1(4), r2(4);
  const auto a = GenerateSpatialField(clean, positions, r1);
  const auto b = GenerateSpatialField(noisy, positions, r2);
  EXPECT_GT(SeriesCorrelation(a[0], a[1]),
            SeriesCorrelation(b[0], b[1]));
}

TEST(SpatialFieldTest, Deterministic) {
  Rng p(5);
  const auto positions = PlaceUniform(6, Rect::UnitSquare(), p);
  Rng r1(6), r2(6);
  const auto a = GenerateSpatialField({}, positions, r1);
  const auto b = GenerateSpatialField({}, positions, r2);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t t = 0; t < a[i].size(); ++t) {
      ASSERT_DOUBLE_EQ(a[i].at(t), b[i].at(t));
    }
  }
}

TEST(SeriesCorrelationTest, KnownValues) {
  const TimeSeries x({1, 2, 3, 4});
  const TimeSeries y({2, 4, 6, 8});
  EXPECT_NEAR(SeriesCorrelation(x, y), 1.0, 1e-12);
  const TimeSeries z({8, 6, 4, 2});
  EXPECT_NEAR(SeriesCorrelation(x, z), -1.0, 1e-12);
  const TimeSeries c({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(SeriesCorrelation(x, c), 0.0);  // degenerate
}

TEST(SeriesCorrelationDeathTest, LengthMismatchAborts) {
  const TimeSeries x({1, 2});
  const TimeSeries y({1, 2, 3});
  EXPECT_DEATH(SeriesCorrelation(x, y), "SNAPQ_CHECK");
}

}  // namespace
}  // namespace snapq
