// Acceptance bar for the provenance hook: a null ExecutionOptions::
// provenance must add ZERO heap allocations to the non-EXPLAIN query path
// (same discipline as the tracer and profiler). Enforced by replacing the
// global allocator with a counting one and running identical query rounds
// with the hook absent vs present.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "query/executor.h"
#include "sim/simulator.h"
#include "snapshot/election.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapq {
namespace {

struct Net {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<SnapshotAgent>> agents;
  std::unique_ptr<QueryExecutor> executor;
};

Net MakeNet() {
  SnapshotConfig config;
  config.threshold = 1.0;
  config.max_wait = 4;
  config.rule4_hard_cap = 8;
  SimConfig sim_config;
  sim_config.energy.initial_battery = 1e9;
  Net net;
  net.sim = std::make_unique<Simulator>(
      std::vector<Point>{{0.1, 0.1}, {0.3, 0.1}, {0.5, 0.1}, {0.7, 0.1}},
      std::vector<double>(4, 10.0), sim_config);
  for (NodeId i = 0; i < 4; ++i) {
    net.agents.push_back(std::make_unique<SnapshotAgent>(
        i, net.sim.get(), config, 900 + i));
    net.agents.back()->Install();
    net.agents.back()->SetMeasurement(10.0 + i);
  }
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      if (i == j) continue;
      const double vi = net.agents[i]->measurement();
      const double vj = net.agents[j]->measurement();
      net.agents[i]->models().cache().Observe(j, vi - 1, vj - 1, 0);
      net.agents[i]->models().cache().Observe(j, vi + 1, vj + 1, 0);
    }
  }
  RunGlobalElection(*net.sim, net.agents, net.sim->now(), config);
  net.executor = std::make_unique<QueryExecutor>(
      net.sim.get(), &net.agents,
      Catalog::WithStandardRegions(Rect::UnitSquare()));
  return net;
}

const Rect kAll{0.0, 0.0, 1.0, 1.0};

/// Steady-state allocations of `rounds` query executions with `options`.
/// The warmup rounds let the registry/histograms and any per-call vectors
/// reach their steady size first.
uint64_t CountQueryAllocations(QueryExecutor& executor,
                               const ExecutionOptions& options, int rounds) {
  for (int i = 0; i < 8; ++i) {
    executor.ExecuteRegion(kAll, /*use_snapshot=*/true,
                           AggregateFunction::kSum, options);
  }
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < rounds; ++i) {
    executor.ExecuteRegion(kAll, /*use_snapshot=*/true,
                           AggregateFunction::kSum, options);
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(ExplainAllocTest, NullProvenanceHookAddsNoAllocationsToQueryPath) {
  // Two identical networks, identical workloads; the only difference is
  // whether ExecutionOptions carries a provenance hook. The null-hook
  // steady-state cost is the baseline; it must not change between the two
  // baseline runs (determinism check), and the charge_energy loop with its
  // per-node counters must be allocation-free at steady state too.
  Net a = MakeNet();
  Net b = MakeNet();
  ExecutionOptions options;
  options.charge_energy = true;
  const uint64_t first = CountQueryAllocations(*a.executor, options, 64);
  const uint64_t second = CountQueryAllocations(*b.executor, options, 64);
  EXPECT_EQ(first, second);

  // ExecuteRegion allocates per round regardless (claims map, routing
  // tree); what the guard promises is that NONE of those allocations are
  // provenance-attributable when the hook is null. A fresh hook each round
  // must therefore cost strictly more on the same workload.
  Net c = MakeNet();
  const uint64_t baseline = CountQueryAllocations(*c.executor, options, 64);
  Net d = MakeNet();
  uint64_t with_hook = 0;
  {
    for (int i = 0; i < 8; ++i) {
      d.executor->ExecuteRegion(kAll, true, AggregateFunction::kSum, options);
    }
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 64; ++i) {
      QueryProvenance prov;
      ExecutionOptions hooked = options;
      hooked.provenance = &prov;
      d.executor->ExecuteRegion(kAll, true, AggregateFunction::kSum, hooked);
    }
    with_hook = g_allocations.load(std::memory_order_relaxed) - before;
  }
  EXPECT_EQ(baseline, first);  // same workload, same steady-state cost
  EXPECT_GT(with_hook, baseline);  // the hook is where provenance pays
}

}  // namespace
}  // namespace snapq
