// Spatially correlated measurement fields. The paper's motivation (§1, §3)
// is that *neighboring* nodes see correlated values — "collection of
// meteorological data, acoustic data etc." — yet its synthetic workload
// assigns correlation classes independently of geometry. This generator
// makes correlation a function of distance, so a node's best
// representatives are its radio neighbors, the regime the snapshot
// protocol is designed for.
//
// Model: a low-rank Gaussian-process-style field. `num_drivers` latent
// random-walk drivers d_k(t) sit at random centers c_k; node i's series is
//
//     x_i(t) = offset_i + sum_k w_ik * d_k(t),
//     w_ik   = exp(-|pos_i - c_k|^2 / (2 * correlation_length^2)).
//
// Nearby nodes share driver weights, so their series are near-affine
// transforms of each other; distant nodes see different driver mixes. The
// correlation length is the knob: large values approach the K=1 random
// walk (one representative suffices), small values decorrelate everything.
#ifndef SNAPQ_DATA_SPATIAL_FIELD_H_
#define SNAPQ_DATA_SPATIAL_FIELD_H_

#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "data/timeseries.h"

namespace snapq {

struct SpatialFieldConfig {
  size_t horizon = 100;
  /// Distance scale of the correlation decay (in deployment-area units).
  double correlation_length = 0.3;
  /// Number of latent drivers (field rank).
  size_t num_drivers = 8;
  /// Per-tick driver innovation scale.
  double driver_sigma = 1.0;
  /// Driver random walks move with this probability each tick.
  double driver_move_probability = 0.7;
  /// Per-node constant offset range (uniform in [0, offset_max)).
  double offset_max = 100.0;
  /// Per-node i.i.d. observation noise (0 = exact field).
  double observation_noise = 0.0;
  /// Normalize each node's driver weights to sum to 1, so the field
  /// amplitude is independent of the correlation length (otherwise short
  /// lengths collapse the signal toward the constant offset and every node
  /// becomes trivially representable).
  bool normalize_weights = true;
};

/// One series per position; all randomness from `rng`.
std::vector<TimeSeries> GenerateSpatialField(
    const SpatialFieldConfig& config, const std::vector<Point>& positions,
    Rng& rng);

/// Pearson correlation of two equal-length series (0 when degenerate);
/// exposed for tests and analysis.
double SeriesCorrelation(const TimeSeries& a, const TimeSeries& b);

}  // namespace snapq

#endif  // SNAPQ_DATA_SPATIAL_FIELD_H_
