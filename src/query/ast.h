// Parsed representation of the paper's declarative query dialect (§3.1):
//
//   SELECT loc, temperature
//   FROM sensors
//   WHERE loc IN SOUTH_EAST_QUADRANT
//   SAMPLE INTERVAL 1s FOR 5min
//   USE SNAPSHOT
//
// plus aggregates (SELECT sum(temperature) ...), literal rectangles
// (WHERE loc IN RECT(0.5, 0.0, 1.0, 0.5)), an optional per-query error
// threshold (USE SNAPSHOT ERROR 0.5, the §3.1 extension) and the
// EXPLAIN [ANALYZE] prefix that asks for the plan/provenance report
// instead of (or joined with) the answer.
#ifndef SNAPQ_QUERY_AST_H_
#define SNAPQ_QUERY_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace snapq {

/// Aggregate functions supported by in-network aggregation.
enum class AggregateFunction {
  kNone,  ///< drill-through: individual rows
  kSum,
  kAvg,
  kMin,
  kMax,
  kCount,
};

const char* AggregateFunctionName(AggregateFunction f);

/// EXPLAIN prefix: none (execute normally), plan only, or plan + execute
/// with estimated-vs-actual cost joining (EXPLAIN ANALYZE).
enum class ExplainMode {
  kNone,
  kPlan,
  kAnalyze,
};

const char* ExplainModeName(ExplainMode mode);

/// One SELECT-list entry: a bare column or agg(column).
struct SelectItem {
  std::string column;
  AggregateFunction aggregate = AggregateFunction::kNone;

  bool operator==(const SelectItem&) const = default;
};

/// A parsed query.
struct QuerySpec {
  /// EXPLAIN / EXPLAIN ANALYZE prefix; kNone for plain execution.
  ExplainMode explain = ExplainMode::kNone;

  std::vector<SelectItem> select;
  std::string table = "sensors";

  /// WHERE loc IN <name>: resolved against the region catalog.
  std::optional<std::string> region_name;
  /// WHERE loc IN RECT(...): a literal region.
  std::optional<Rect> region;

  /// SAMPLE INTERVAL, in time units; 0 = single-shot.
  double sample_interval = 0.0;
  /// FOR duration, in time units; 0 = single-shot.
  double duration = 0.0;

  /// USE SNAPSHOT present?
  bool use_snapshot = false;
  /// USE SNAPSHOT ERROR t — per-query threshold (§3.1 extension).
  std::optional<double> snapshot_threshold;

  /// True when the SELECT list contains an aggregate.
  bool IsAggregate() const;
  /// The (single) aggregate of the query; kNone for drill-through.
  AggregateFunction TheAggregate() const;

  std::string ToString() const;
};

}  // namespace snapq

#endif  // SNAPQ_QUERY_AST_H_
