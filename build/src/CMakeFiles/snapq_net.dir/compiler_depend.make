# Empty compiler generated dependencies file for snapq_net.
# This may be replaced when dependencies are built.
