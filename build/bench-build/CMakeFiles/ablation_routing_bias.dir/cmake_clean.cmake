file(REMOVE_RECURSE
  "../bench/ablation_routing_bias"
  "../bench/ablation_routing_bias.pdb"
  "CMakeFiles/ablation_routing_bias.dir/ablation_routing_bias.cc.o"
  "CMakeFiles/ablation_routing_bias.dir/ablation_routing_bias.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routing_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
