// The accuracy auditor's lossless invariant: with zero message loss and
// benign stationary data, representative discovery guarantees every
// estimate sits within its own threshold T — the auditor must therefore
// report a violation rate of exactly 0 and every audited |x - x^| within
// bound. This is the invariant CI's accuracy_audit gate enforces on real
// workloads; here it is pinned end to end through SensorNetwork (query
// hook injection, sweep audits, telemetry series) and through the §6.1
// weather pipeline the bench driver runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>

#include "api/experiment.h"
#include "api/network.h"
#include "obs/accuracy.h"

namespace snapq {
namespace {

/// A 4-node line network where every node reads 10+i and each pairwise
/// linear model reproduces the neighbor's value with a constant `bias`
/// (0 = exact models; after election, estimates are perfect).
std::unique_ptr<SensorNetwork> MakeLineNetwork(double bias) {
  NetworkConfig config;
  config.num_nodes = 4;
  config.transmission_range = 10.0;
  config.snapshot.threshold = 1.0;
  config.positions = {{0.1, 0.1}, {0.3, 0.1}, {0.5, 0.1}, {0.7, 0.1}};
  auto net = std::make_unique<SensorNetwork>(config);
  net->SetMeasurements({10.0, 11.0, 12.0, 13.0});
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      if (i == j) continue;
      const double vi = net->agent(i).measurement();
      const double vj = net->agent(j).measurement() + bias;
      net->agent(i).models().cache().Observe(j, vi - 1, vj - 1, 0);
      net->agent(i).models().cache().Observe(j, vi + 1, vj + 1, 0);
    }
  }
  net->RunElection(net->now());
  return net;
}

std::unique_ptr<SensorNetwork> MakeExactNetwork() {
  return MakeLineNetwork(0.0);
}

TEST(AccuracyInvariantTest, LosslessStationaryNetworkHasZeroViolations) {
  std::unique_ptr<SensorNetwork> net = MakeExactNetwork();
  obs::AccuracyAuditor& audit = net->EnableAccuracyAudit();

  // The query path: the network injects the auditor into every round.
  Result<QueryResult> result =
      net->Query("SELECT avg(value) FROM sensors USE SNAPSHOT");
  ASSERT_TRUE(result.ok());
  // The sweep path: every live representation entry, audited in place.
  net->AuditSnapshotNow();

  ASSERT_GT(audit.audited_total(), 0u);  // something was actually estimated
  EXPECT_EQ(audit.violations_total(), 0u);
  EXPECT_DOUBLE_EQ(audit.violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(audit.budget_burn(), 0.0);
  // Every audited |x - x^| within the effective bound: with exact models
  // the residual is zero, well inside T = 1.
  EXPECT_LE(audit.error_histogram().max_seen(),
            net->config().snapshot.threshold);
}

TEST(AccuracyInvariantTest, PerQueryThresholdOverrideReachesTheAuditor) {
  // Models are off by a constant 0.5, so every estimate sits at SSE
  // distance 0.25 from ground truth: fine under the deployment T = 1,
  // a violation under a per-query ERROR 0.1 override. The auditor must
  // judge each round against ITS effective T.
  std::unique_ptr<SensorNetwork> net = MakeLineNetwork(/*bias=*/0.5);
  obs::AccuracyAuditor& audit = net->EnableAccuracyAudit();

  ASSERT_TRUE(net->Query("SELECT avg(value) FROM sensors USE SNAPSHOT").ok());
  ASSERT_GT(audit.audited_total(), 0u);
  EXPECT_EQ(audit.violations_total(), 0u);  // 0.25 <= 1.0

  const uint64_t audited_before = audit.audited_total();
  ASSERT_TRUE(net->Query("SELECT avg(value) FROM sensors "
                         "USE SNAPSHOT ERROR 0.1")
                  .ok());
  const uint64_t audited_in_round = audit.audited_total() - audited_before;
  ASSERT_GT(audited_in_round, 0u);
  // Every estimate in the overridden round violates its tightened bound.
  EXPECT_EQ(audit.violations_total(), audited_in_round);
}

TEST(AccuracyInvariantTest, AccuracySeriesRideTelemetryWhicheverEnableOrder) {
  std::unique_ptr<SensorNetwork> net = MakeExactNetwork();
  net->EnableAccuracyAudit();
  net->EnableTelemetry({});
  net->SampleTelemetry();  // sweeps the audit, then samples the series
  const obs::TimeSeries* series =
      net->telemetry()->series("accuracy.violation_rate");
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->last(), 0.0);
  ASSERT_NE(net->telemetry()->series("accuracy.budget_burn"), nullptr);

  // The SLO grammar sees the auditor's gauges with no extra plumbing.
  EXPECT_TRUE(net->AddSloRule("accuracy.violation_rate value <= 0.05 for 2"));

  // Reverse order: telemetry first, auditing second.
  std::unique_ptr<SensorNetwork> other = MakeExactNetwork();
  other->EnableTelemetry({});
  other->EnableAccuracyAudit();
  other->SampleTelemetry();
  EXPECT_NE(other->telemetry()->series("accuracy.violation_rate"), nullptr);
}

TEST(AccuracyInvariantTest, WeatherPipelineAtZeroLossStaysWithinBudget) {
  // The exact run the bench driver gates on, one cell of it: §6.1 weather
  // pipeline, zero loss, audited at discovery time while the data is
  // frozen. Discovery only elects representations that honor T, so no
  // estimate may violate.
  SensitivityConfig config;
  config.workload = WorkloadKind::kWeather;
  config.threshold = 1.0;
  config.loss_probability = 0.0;
  config.seed = 7;
  SensitivityOutcome outcome = RunSensitivityTrial(config);
  SensorNetwork& net = *outcome.network;

  obs::AccuracyAuditor& audit = net.EnableAccuracyAudit();
  ASSERT_TRUE(net.Query("SELECT avg(value) FROM sensors USE SNAPSHOT").ok());
  net.AuditSnapshotNow();

  ASSERT_GT(audit.audited_total(), 0u);
  EXPECT_EQ(audit.violations_total(), 0u);
  EXPECT_DOUBLE_EQ(audit.violation_rate(), 0.0);
}

}  // namespace
}  // namespace snapq
