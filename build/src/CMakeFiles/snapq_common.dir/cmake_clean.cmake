file(REMOVE_RECURSE
  "CMakeFiles/snapq_common.dir/common/geometry.cc.o"
  "CMakeFiles/snapq_common.dir/common/geometry.cc.o.d"
  "CMakeFiles/snapq_common.dir/common/rng.cc.o"
  "CMakeFiles/snapq_common.dir/common/rng.cc.o.d"
  "CMakeFiles/snapq_common.dir/common/stats.cc.o"
  "CMakeFiles/snapq_common.dir/common/stats.cc.o.d"
  "CMakeFiles/snapq_common.dir/common/status.cc.o"
  "CMakeFiles/snapq_common.dir/common/status.cc.o.d"
  "CMakeFiles/snapq_common.dir/common/string_util.cc.o"
  "CMakeFiles/snapq_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/snapq_common.dir/common/table_printer.cc.o"
  "CMakeFiles/snapq_common.dir/common/table_printer.cc.o.d"
  "libsnapq_common.a"
  "libsnapq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
