#include "common/rng.h"

#include "common/check.h"

namespace snapq {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t s = seed;
  // Expand the seed into a full seed sequence for mt19937_64.
  std::seed_seq seq{SplitMix64(s), SplitMix64(s), SplitMix64(s),
                    SplitMix64(s), SplitMix64(s), SplitMix64(s)};
  engine_.seed(seq);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  SNAPQ_DCHECK(lo < hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SNAPQ_DCHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

Rng Rng::Split() { return Rng(NextUint64()); }

Rng Rng::SplitNamed(std::string_view label) const {
  // FNV-1a over the label, mixed with this stream's seed. Deterministic and
  // independent of how many draws the parent has made.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  uint64_t s = seed_ ^ h;
  return Rng(SplitMix64(s));
}

uint64_t Rng::NextUint64() { return engine_(); }

}  // namespace snapq
