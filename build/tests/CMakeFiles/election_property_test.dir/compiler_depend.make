# Empty compiler generated dependencies file for election_property_test.
# This may be replaced when dependencies are built.
